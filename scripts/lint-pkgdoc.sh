#!/bin/sh
# lint-pkgdoc.sh — fail if any Go package ships without a package doc
# comment. Godoc only renders a comment that sits immediately above the
# package clause in some file of the package, so that is exactly what we
# look for: at least one non-test .go file per package whose `package X`
# line is preceded by a `//` or `*/` comment line (no blank line between).
#
# Usage: scripts/lint-pkgdoc.sh   (from the repo root; CI runs it in the
# lint job alongside gofmt and staticcheck)
set -eu

status=0
for dir in $(go list -f '{{.Dir}}' ./...); do
	documented=0
	for f in "$dir"/*.go; do
		case "$f" in
		*_test.go) continue ;;
		esac
		if awk '
			/^package[ \t]/ { if (prev ~ /^\/\// || prev ~ /\*\/[ \t]*$/) found = 1; exit }
			{ prev = $0 }
			END { exit found ? 0 : 1 }
		' "$f"; then
			documented=1
			break
		fi
	done
	if [ "$documented" -eq 0 ]; then
		echo "missing package doc comment: $dir" >&2
		status=1
	fi
done
exit $status
