// Mixedworkload runs a Table 3 multi-programmed mix (four SPEC2006
// benchmarks on four cores) under the prior-work baselines and the LADDER
// variants, and reports per-core IPC plus weighted speedup — the paper's
// multi-programmed methodology (Section 6.2).
package main

import (
	"fmt"
	"log"

	"ladder"
)

func main() {
	const mix = "mix-7" // astar-lbm-bwaves-mcf
	const instr = 120_000

	fmt.Printf("multi-programmed workload %s, %d instructions per core\n", mix, instr)

	schemes := []string{
		ladder.SchemeBaseline,
		ladder.SchemeSplitReset,
		ladder.SchemeBLP,
		ladder.SchemeBasic,
		ladder.SchemeEst,
		ladder.SchemeHybrid,
		ladder.SchemeOracle,
	}

	var baseline *ladder.Result
	fmt.Printf("\n%-16s %8s %8s %8s %8s %10s %12s\n",
		"scheme", "core0", "core1", "core2", "core3", "speedup", "wr-svc (ns)")
	for _, s := range schemes {
		res, err := ladder.Run(ladder.Config{
			Workload:     mix,
			Scheme:       s,
			InstrPerCore: instr,
		})
		if err != nil {
			log.Fatal(err)
		}
		if s == ladder.SchemeBaseline {
			baseline = res
		}
		fmt.Printf("%-16s %8.3f %8.3f %8.3f %8.3f %9.2fx %12.1f\n",
			s,
			res.PerCoreIPC[0], res.PerCoreIPC[1], res.PerCoreIPC[2], res.PerCoreIPC[3],
			res.WeightedSpeedup(baseline),
			res.Stats.AvgWriteServiceNs())
	}
}
