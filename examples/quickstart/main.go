// Quickstart: simulate one write-heavy workload under the pessimistic
// baseline and under LADDER-Hybrid, and print the headline comparison —
// write service time, read latency and speedup.
package main

import (
	"fmt"
	"log"

	"ladder"
)

func main() {
	fmt.Println("LADDER quickstart: lbm under baseline vs LADDER-Hybrid")
	fmt.Println("(first run generates the 512x512 timing tables; takes a few seconds)")

	base, err := ladder.Run(ladder.Config{
		Workload:     "lbm",
		Scheme:       ladder.SchemeBaseline,
		InstrPerCore: 150_000,
	})
	if err != nil {
		log.Fatal(err)
	}
	hybrid, err := ladder.Run(ladder.Config{
		Workload:     "lbm",
		Scheme:       ladder.SchemeHybrid,
		InstrPerCore: 150_000,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\n%-24s %14s %14s\n", "", "baseline", "LADDER-Hybrid")
	fmt.Printf("%-24s %14.1f %14.1f\n", "write service (ns)",
		base.Stats.AvgWriteServiceNs(), hybrid.Stats.AvgWriteServiceNs())
	fmt.Printf("%-24s %14.1f %14.1f\n", "read latency (ns)",
		base.Stats.AvgReadLatencyNs(), hybrid.Stats.AvgReadLatencyNs())
	fmt.Printf("%-24s %14.3f %14.3f\n", "IPC", base.AvgIPC(), hybrid.AvgIPC())
	fmt.Printf("%-24s %14s %14.1f%%\n", "extra writes", "-",
		100*hybrid.Stats.ExtraWriteFraction())
	fmt.Printf("\nLADDER-Hybrid speedup over baseline: %.2fx\n", hybrid.WeightedSpeedup(base))
}
