// Latencyexplorer builds the RESET latency model for a custom crossbar
// and explores how write latency depends on location and content — the
// relationships in the paper's Figures 4 and 11. It demonstrates the
// circuit/timing API: calibrating a model from Table 1-style parameters
// and querying the generated 8x8x8 write-timing tables.
package main

import (
	"fmt"
	"log"

	"ladder"
	"ladder/internal/timing"
)

func main() {
	// A smaller crossbar keeps this example snappy; swap in
	// ladder.DefaultCrossbarParams() for the paper's 512x512 mat.
	params := ladder.DefaultCrossbarParams()
	params.N = 128

	ts, err := ladder.NewTables(params)
	if err != nil {
		log.Fatal(err)
	}
	gran := params.N / timing.Buckets

	fmt.Printf("crossbar %dx%d — calibrated RESET model t = C*exp(-k*Vd), k = %.2f /V\n",
		params.N, params.N, ts.Model.K)
	fmt.Printf("tWR range: %.0f–%.0f ns (Table 2)\n\n", ts.WL.LatNs[0][0][0], ts.WorstNs)

	fmt.Println("Content dependency (Figure 4b): latency vs wordline LRS count")
	near := ts.ContentCurve(0, 0)
	far := ts.ContentCurve(params.N-1, params.N-1)
	fmt.Printf("%-12s %12s %12s\n", "LRS cells", "near cell", "far cell")
	for cb := 0; cb < timing.Buckets; cb++ {
		fmt.Printf("%-12d %12.1f %12.1f\n", (cb+1)*gran-1, near[cb], far[cb])
	}

	fmt.Println("\nLocation dependency (Figure 11): latency at the four corners")
	for _, content := range []struct {
		label  string
		bucket int
	}{{"empty wordline", 0}, {"full wordline", timing.Buckets - 1}} {
		s := ts.Surface(content.bucket)
		fmt.Printf("  %-16s near/near %6.1f ns   near/far %6.1f ns   far/near %6.1f ns   far/far %6.1f ns\n",
			content.label, s[0][0], s[0][timing.Buckets-1], s[timing.Buckets-1][0], s[timing.Buckets-1][timing.Buckets-1])
	}

	// What a controller actually does: look up a specific write.
	fmt.Println("\nExample lookups (wordline index, bitline index, C_lrs -> tWR):")
	for _, q := range [][3]int{
		{0, 0, 0},
		{params.N / 2, params.N / 2, params.N / 4},
		{params.N - 1, params.N - 1, params.N - 1},
	} {
		fmt.Printf("  WL=%3d BL=%3d C=%3d -> %6.1f ns\n", q[0], q[1], q[2],
			ts.WL.Lookup(q[0], q[1], q[2]))
	}
}
