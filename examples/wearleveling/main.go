// Wearleveling reproduces the paper's Section 6.4 analysis: LADDER's
// metadata maintenance adds a few percent of write traffic, and once
// segment-based vertical wear leveling spreads all writes across the
// device, lifetime scales inversely with that traffic. The example runs
// LADDER-Hybrid with and without Start-Gap VWL, then feeds the measured
// write counts into the lifetime model.
package main

import (
	"fmt"
	"log"

	"ladder"
	"ladder/internal/wear"
)

func main() {
	const workload = "mcf"
	const instr = 3_000_000

	base, err := ladder.Run(ladder.Config{
		Workload: workload, Scheme: ladder.SchemeBaseline, InstrPerCore: instr,
	})
	if err != nil {
		log.Fatal(err)
	}
	hybrid, err := ladder.Run(ladder.Config{
		Workload: workload, Scheme: ladder.SchemeHybrid, InstrPerCore: instr,
	})
	if err != nil {
		log.Fatal(err)
	}
	leveled, err := ladder.Run(ladder.Config{
		Workload: workload, Scheme: ladder.SchemeHybrid, InstrPerCore: instr,
		WearLeveling: true,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("workload %s, scheme LADDER-Hybrid\n\n", workload)
	fmt.Printf("baseline writes          %d\n", base.Stats.DataWrites)
	fmt.Printf("hybrid data writes       %d\n", hybrid.Stats.DataWrites)
	fmt.Printf("hybrid metadata writes   %d (+%.1f%%)\n",
		hybrid.Stats.MetaWrites, 100*hybrid.Stats.ExtraWriteFraction())

	model := wear.DefaultLifetime()
	rel := model.RelativeLeveled(
		base.Stats.DataWrites,
		hybrid.Stats.DataWrites+hybrid.Stats.MetaWrites)
	fmt.Printf("\nrelative lifetime under ideal wear leveling: %.1f%% of baseline\n", 100*rel)
	fmt.Printf("(paper: LADDER-Hybrid retains 97.1%% with ~3%% extra writes)\n")

	fmt.Printf("\nwith Start-Gap VWL enabled:\n")
	fmt.Printf("gap moves                %d\n", leveled.GapMoves)
	fmt.Printf("IPC without VWL          %.4f\n", hybrid.AvgIPC())
	fmt.Printf("IPC with VWL             %.4f (%.1f%% of unleveled)\n",
		leveled.AvgIPC(), 100*leveled.AvgIPC()/hybrid.AvgIPC())
	fmt.Printf("max row writes (no WL)   %d of %d total — the hotspot VWL spreads\n",
		hybrid.MaxRowWrites, hybrid.TotalStoreWrites)
}
