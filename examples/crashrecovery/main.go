// Crashrecovery demonstrates the paper's Section 7 crash-consistency
// story: a power failure loses the dirty LRS-metadata cached in the
// memory controller, so the restored system overwrites the metadata
// region with conservative maximum values (lazy correction). Writes right
// after recovery use safe worst-case-ish timings; as blocks are
// rewritten, counters re-tighten and service times recover.
package main

import (
	"fmt"
	"log"

	"ladder"
)

func main() {
	const workload = "lbm"
	const instr = 200_000

	fmt.Printf("workload %s under LADDER-Est with a power failure at the midpoint\n\n", workload)

	clean, err := ladder.Run(ladder.Config{
		Workload: workload, Scheme: ladder.SchemeEst, InstrPerCore: instr,
	})
	if err != nil {
		log.Fatal(err)
	}
	crashed, err := ladder.Run(ladder.Config{
		Workload: workload, Scheme: ladder.SchemeEst, InstrPerCore: instr,
		CrashAtInstr: instr / 2,
		Verify:       true, // data integrity holds across the crash
	})
	if err != nil {
		log.Fatal(err)
	}

	pre, post := crashed.PreCrashStats, crashed.PostCrashStats
	fmt.Printf("%-36s %10.1f ns\n", "clean run avg write service", clean.Stats.AvgWriteServiceNs())
	fmt.Printf("%-36s %10.1f ns\n", "pre-crash avg write service", pre.AvgWriteServiceNs())
	fmt.Printf("%-36s %10.1f ns\n", "post-recovery avg write service", post.AvgWriteServiceNs())
	fmt.Printf("%-36s %10.1f counts\n", "pre-crash counter gap (est-true)", pre.AvgCounterDiff())
	fmt.Printf("%-36s %10.1f counts\n", "post-recovery counter gap", post.AvgCounterDiff())
	fmt.Println("\nThe post-recovery gap is large right after the conservative")
	fmt.Println("correction and shrinks as rewritten blocks refresh their partial")
	fmt.Println("counters; read-back verification passed, so no data was harmed.")
	fmt.Printf("\nspeedup over a worst-case baseline, clean vs crashed: ")
	base, err := ladder.Run(ladder.Config{
		Workload: workload, Scheme: ladder.SchemeBaseline, InstrPerCore: instr,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%.2fx vs %.2fx\n", clean.WeightedSpeedup(base), crashed.WeightedSpeedup(base))
}
