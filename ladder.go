// Package ladder is a full-system simulator for LADDER — the content- and
// location-aware write architecture for crossbar resistive memories of
// Chowdhuryy et al. (MICRO 2021) — together with every substrate the
// paper's evaluation depends on: an MNA-based crossbar circuit model, the
// RESET write-timing tables, a ReRAM main-memory model, a multi-channel
// memory controller with LRS-metadata management, trace-driven cores,
// synthetic SPEC/PARSEC-like workloads, dynamic energy metering and wear
// leveling.
//
// # Quick start
//
//	res, err := ladder.Run(ladder.Config{
//	    Workload: "lbm",
//	    Scheme:   ladder.SchemeHybrid,
//	})
//	fmt.Println(res.Stats.AvgWriteServiceNs())
//
// Compare schemes the way the paper's figures do:
//
//	grid, err := ladder.RunGrid(ladder.Options{Instr: 200_000},
//	    ladder.FigureSchemes())
//	for _, row := range grid.WriteServiceTime() { ... } // Figure 12
//
// The heavier machinery (circuit solvers, timing tables, schemes,
// controller) lives in the internal packages; this package re-exports the
// surface a downstream user needs. See DESIGN.md for the system map and
// EXPERIMENTS.md for paper-vs-measured results.
package ladder

import (
	"context"

	"ladder/internal/circuit"
	"ladder/internal/core"
	"ladder/internal/reram"
	"ladder/internal/sim"
	"ladder/internal/timeline"
	"ladder/internal/timing"
	"ladder/internal/trace"
	"ladder/internal/tracing"
)

// Re-exported simulation types.
type (
	// Config describes one simulation run; the zero value of every field
	// except Workload selects the paper's defaults.
	Config = sim.Config
	// Result carries one run's measurements.
	Result = sim.Result
	// Options scopes a multi-run experiment.
	Options = sim.Options
	// Grid holds per-(workload, scheme) results with figure derivations.
	Grid = sim.Grid
	// Row is one workload's series values.
	Row = sim.Row
	// EnergySplit is Figure 17's per-scheme read/write energy breakdown.
	EnergySplit = sim.EnergySplit
	// Report is one run's structured record: headline numbers plus the
	// full metrics snapshot (see docs/METRICS.md).
	Report = sim.Report
	// GridReport serializes a whole experiment grid.
	GridReport = sim.GridReport
	// LifetimeStudy holds a LifetimeSweep's per-combination cells.
	LifetimeStudy = sim.LifetimeStudy
	// LifetimeCell is one (gap period, spare pool) combination's averages.
	LifetimeCell = sim.LifetimeCell
	// LifetimeReport serializes a lifetime study.
	LifetimeReport = sim.LifetimeReport
	// BenchReport is the BENCH_*.json perf-snapshot document.
	BenchReport = sim.BenchReport
	// BenchProvenance stamps a BenchReport with the toolchain and host
	// parallelism it was measured under.
	BenchProvenance = sim.BenchProvenance
	// Timeline is a run's simulated-time telemetry: per-epoch metric
	// deltas recorded every Config.TimelineInterval cycles (see
	// docs/TIMELINE.md).
	Timeline = timeline.Timeline
	// TimelineEpoch is one closed sampling window of a Timeline.
	TimelineEpoch = timeline.Epoch
	// ProgressInfo is the periodic run-progress snapshot delivered to
	// Config.Progress.
	ProgressInfo = sim.ProgressInfo
	// GridProgress is the per-cell completion notice delivered to
	// Options.Progress during RunGrid.
	GridProgress = sim.GridProgress
	// SchemeFactory builds one controller's private write-scheme instance;
	// register one under a name with RegisterScheme.
	SchemeFactory = core.SchemeFactory
	// TraceCollector records transaction-lifecycle spans when
	// Config.TraceSample > 0 (Result.Trace); export with WriteChromeTrace
	// or WriteSlowestDigest. See docs/TRACING.md.
	TraceCollector = tracing.Collector
	// TraceSpan is one recorded transaction lifecycle.
	TraceSpan = tracing.Span
	// TraceSummary is the report-embedded accounting of a traced run.
	TraceSummary = tracing.Summary
)

// Scheme names.
const (
	SchemeBaseline   = sim.SchemeBaseline
	SchemeLocAware   = sim.SchemeLocAware
	SchemeOracle     = sim.SchemeOracle
	SchemeSplitReset = sim.SchemeSplitReset
	SchemeBLP        = sim.SchemeBLP
	SchemeBasic      = sim.SchemeBasic
	SchemeEst        = sim.SchemeEst
	SchemeEstNoShift = sim.SchemeEstNoShift
	SchemeHybrid     = sim.SchemeHybrid
)

// Run executes one simulation (see sim.Run).
func Run(cfg Config) (*Result, error) { return sim.Run(cfg) }

// NewReport freezes a run's Result into its serializable report form.
func NewReport(res *Result) *Report { return sim.NewReport(res) }

// NewGridReport freezes an experiment grid into its report form.
func NewGridReport(g *Grid) (*GridReport, error) { return sim.NewGridReport(g) }

// RunGrid simulates every workload under every scheme.
func RunGrid(opts Options, schemes []string) (*Grid, error) { return sim.RunGrid(opts, schemes) }

// RunGridCtx is RunGrid under a context: cancellation stops dispatching
// further cells and surfaces as an error.
func RunGridCtx(ctx context.Context, opts Options, schemes []string) (*Grid, error) {
	return sim.RunGridCtx(ctx, opts, schemes)
}

// RegisterScheme adds a custom write scheme to the global registry; the
// name becomes valid everywhere a built-in scheme name is (Config.Scheme,
// RunGrid scheme lists, cmd/laddersim -scheme). Registering a duplicate
// name panics. See core.RegisterScheme.
func RegisterScheme(name string, factory SchemeFactory) { core.RegisterScheme(name, factory) }

// Average appends an AVG row across workloads.
func Average(rows []Row) Row { return sim.Average(rows) }

// SchemeNames lists every supported scheme.
func SchemeNames() []string { return sim.SchemeNames() }

// FigureSchemes lists the schemes Figures 12/13/16 compare.
func FigureSchemes() []string { return sim.FigureSchemes() }

// Workloads lists all sixteen evaluation workloads (Table 3).
func Workloads() []string { return trace.AllWorkloads() }

// SingleWorkloads lists the eight single-programmed workloads.
func SingleWorkloads() []string { return append([]string(nil), trace.SingleWorkloads...) }

// RangeAblation runs the Section 7 dynamic-range study.
func RangeAblation(opts Options, scheme string, factor float64) ([]Row, error) {
	return sim.RangeAblation(opts, scheme, factor)
}

// WearLevelingImpact runs the Section 6.4 wear-leveling study.
func WearLevelingImpact(opts Options, scheme string) ([]Row, error) {
	return sim.WearLevelingImpact(opts, scheme)
}

// LifetimeSweep runs the decoder lifetime study: relative lifetime and
// IPC overhead across a gap-move period × spare-pool grid. Pass nil for
// the default grids. See docs/REMAP.md.
func LifetimeSweep(opts Options, scheme string, periods, spares []int) (*LifetimeStudy, error) {
	return sim.LifetimeSweep(opts, scheme, periods, spares)
}

// CrashRecoveryStudy runs the Section 7 crash-consistency scenario.
func CrashRecoveryStudy(opts Options, scheme string) ([]Row, error) {
	return sim.CrashRecoveryStudy(opts, scheme)
}

// VWLModeComparison contrasts segment- and line-based wear leveling
// (Section 6.4's metadata-locality argument).
func VWLModeComparison(opts Options, scheme string) ([]Row, error) {
	return sim.VWLModeComparison(opts, scheme)
}

// ReliabilitySweep runs the write-fault reliability study: retries per
// 1000 data writes for each scheme × base fault rate, keyed
// "scheme@rate". Pass nil for the default schemes and rates. See
// docs/FAULTS.md.
func ReliabilitySweep(opts Options, schemes []string, rates []float64) ([]Row, error) {
	return sim.ReliabilitySweep(opts, schemes, rates)
}

// CacheSizeSweep ablates the LRS-metadata cache size (Section 6.3's
// "<2% gain beyond 64 KB" observation). Pass nil for the default sizes.
func CacheSizeSweep(opts Options, scheme string, sizesKB []int) ([]Row, error) {
	return sim.CacheSizeSweep(opts, scheme, sizesKB)
}

// LowPrecisionSweep ablates LADDER-Hybrid's precision control register.
// Pass nil for the default row counts.
func LowPrecisionSweep(opts Options, rows []int) ([]Row, error) {
	return sim.LowPrecisionSweep(opts, rows)
}

// Timing-model surface.
type (
	// TableSet bundles the calibrated write-timing tables.
	TableSet = timing.TableSet
	// CrossbarParams are the circuit-level crossbar parameters (Table 1).
	CrossbarParams = circuit.Params
)

// DefaultCrossbarParams returns the paper's Table 1 crossbar.
func DefaultCrossbarParams() CrossbarParams { return circuit.DefaultParams() }

// DefaultTables returns the timing tables for the default crossbar,
// generated once per process (the generation sweeps the circuit model).
func DefaultTables() (*TableSet, error) { return timing.DefaultTableSet() }

// NewTables calibrates and generates timing tables for a custom crossbar.
func NewTables(p CrossbarParams) (*TableSet, error) { return timing.NewTableSet(p) }

// DefaultGeometry returns the paper's 16 GB memory organization.
func DefaultGeometry() reram.Geometry { return reram.DefaultGeometry() }

// MetadataOverheads reports the metadata storage cost of the three LADDER
// layouts as fractions of data capacity (Section 6.3).
func MetadataOverheads() (basic, est, hybrid float64) {
	l := core.NewLayout(reram.DefaultGeometry())
	return l.StorageOverheadBasic(), l.StorageOverheadEst(), l.StorageOverheadHybrid()
}

// ControllerOverheads reports the paper's Table 4 synthesis results for
// the LADDER controller logic (carried constants; see DESIGN.md).
func ControllerOverheads() []core.ModuleOverhead {
	return append([]core.ModuleOverhead(nil), core.Table4...)
}
