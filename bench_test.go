// Benchmark harness: one testing.B benchmark per table and figure of the
// paper's evaluation (Sections 5–7). Each benchmark regenerates its
// experiment's rows/series and prints them, so
//
//	go test -bench=. -benchmem
//
// reproduces the whole evaluation. The per-core instruction budget can be
// raised with LADDER_BENCH_INSTR (default 60000) for higher-fidelity
// sweeps; results are also reported as benchmark metrics.
package ladder_test

import (
	"fmt"
	"os"
	"strconv"
	"sync"
	"testing"

	"ladder"
	"ladder/internal/bits"
	"ladder/internal/core"
	"ladder/internal/sim"
	"ladder/internal/timing"
	"ladder/internal/trace"
)

func benchInstr() uint64 {
	if s := os.Getenv("LADDER_BENCH_INSTR"); s != "" {
		if v, err := strconv.ParseUint(s, 10, 64); err == nil && v > 0 {
			return v
		}
	}
	return 60_000
}

var (
	gridOnce sync.Once
	gridMain *ladder.Grid
	gridErr  error
)

// mainGrid runs the shared 16-workload × 7-scheme sweep behind Figures
// 12, 13, 14, 16, 17 and the Section 6 analyses, once per process.
func mainGrid(b *testing.B) *ladder.Grid {
	b.Helper()
	gridOnce.Do(func() {
		gridMain, gridErr = ladder.RunGrid(
			ladder.Options{Instr: benchInstr(), Seed: 42},
			ladder.FigureSchemes())
	})
	if gridErr != nil {
		b.Fatal(gridErr)
	}
	return gridMain
}

func printRows(title string, rows []ladder.Row, series []string) {
	fmt.Println("\n" + title)
	fmt.Printf("%-10s", "workload")
	for _, s := range series {
		fmt.Printf("%20s", s)
	}
	fmt.Println()
	all := append(append([]ladder.Row(nil), rows...), ladder.Average(rows))
	for _, r := range all {
		fmt.Printf("%-10s", r.Workload)
		for _, s := range series {
			fmt.Printf("%20.3f", r.Values[s])
		}
		fmt.Println()
	}
}

// BenchmarkFigure02Motivation regenerates Figure 2: normalized IPC under
// worst-case, location-aware and data/location-aware (Oracle) writes for
// the eight single-programmed workloads.
func BenchmarkFigure02Motivation(b *testing.B) {
	schemes := []string{ladder.SchemeBaseline, ladder.SchemeLocAware, ladder.SchemeOracle}
	var rows []ladder.Row
	for i := 0; i < b.N; i++ {
		grid, err := ladder.RunGrid(ladder.Options{
			Instr: benchInstr(), Seed: 42, Workloads: ladder.SingleWorkloads(),
		}, schemes)
		if err != nil {
			b.Fatal(err)
		}
		rows = grid.Speedup()
	}
	printRows("Figure 2 — normalized IPC", rows, schemes)
	avg := ladder.Average(rows)
	b.ReportMetric(avg.Values[ladder.SchemeLocAware], "locaware-speedup")
	b.ReportMetric(avg.Values[ladder.SchemeOracle], "oracle-speedup")
}

// BenchmarkFigure04LatencyVsContent regenerates Figure 4b: RESET latency
// as a function of wordline LRS percentage for a near and a far cell,
// from the circuit model.
func BenchmarkFigure04LatencyVsContent(b *testing.B) {
	var near, far []float64
	for i := 0; i < b.N; i++ {
		ts, err := ladder.DefaultTables()
		if err != nil {
			b.Fatal(err)
		}
		n := ladder.DefaultCrossbarParams().N
		near = ts.ContentCurve(0, 0)
		far = ts.ContentCurve(n-1, n-1)
	}
	fmt.Println("\nFigure 4b — RESET latency (ns) vs WL LRS percentage")
	fmt.Printf("%-10s %10s %10s\n", "LRS %", "near", "far")
	for cb := range near {
		fmt.Printf("%-10.0f %10.1f %10.1f\n", float64(cb+1)/float64(timing.Buckets)*100, near[cb], far[cb])
	}
	b.ReportMetric(far[timing.Buckets-1]/far[0], "far-cell-content-ratio")
}

// BenchmarkFigure11LatencySurface regenerates Figure 11: the RESET
// latency surface over (WL, BL) location at the all-'0's and all-'1's
// wordline patterns.
func BenchmarkFigure11LatencySurface(b *testing.B) {
	var empty, full [timing.Buckets][timing.Buckets]float64
	for i := 0; i < b.N; i++ {
		ts, err := ladder.DefaultTables()
		if err != nil {
			b.Fatal(err)
		}
		empty = ts.Surface(0)
		full = ts.Surface(timing.Buckets - 1)
	}
	for _, s := range []struct {
		name string
		data [timing.Buckets][timing.Buckets]float64
	}{{"all-0s", empty}, {"all-1s", full}} {
		fmt.Printf("\nFigure 11 — latency surface (ns), %s pattern\n", s.name)
		for wb := 0; wb < timing.Buckets; wb++ {
			for bb := 0; bb < timing.Buckets; bb++ {
				fmt.Printf("%8.1f", s.data[wb][bb])
			}
			fmt.Println()
		}
	}
	b.ReportMetric(full[timing.Buckets-1][timing.Buckets-1]/empty[0][0], "corner-dynamic-range")
}

// BenchmarkFigure12WriteServiceTime regenerates Figure 12: average write
// service time normalized to baseline for all schemes and workloads.
func BenchmarkFigure12WriteServiceTime(b *testing.B) {
	grid := mainGrid(b)
	var rows []ladder.Row
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows = grid.WriteServiceTime()
	}
	printRows("Figure 12 — normalized write service time", rows, grid.Schemes)
	avg := ladder.Average(rows)
	b.ReportMetric(avg.Values[ladder.SchemeHybrid], "hybrid-norm-service")
	b.ReportMetric(avg.Values[ladder.SchemeSplitReset], "splitreset-norm-service")
}

// BenchmarkFigure13ReadLatency regenerates Figure 13: average processor
// read latency normalized to baseline.
func BenchmarkFigure13ReadLatency(b *testing.B) {
	grid := mainGrid(b)
	var rows []ladder.Row
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows = grid.ReadLatency()
	}
	printRows("Figure 13 — normalized read latency", rows, grid.Schemes)
	avg := ladder.Average(rows)
	b.ReportMetric(avg.Values[ladder.SchemeHybrid], "hybrid-norm-read")
}

// BenchmarkFigure14ExtraTraffic regenerates Figure 14: additional reads
// and writes from LRS-metadata maintenance for the three LADDER variants.
func BenchmarkFigure14ExtraTraffic(b *testing.B) {
	grid := mainGrid(b)
	ladders := []string{ladder.SchemeBasic, ladder.SchemeEst, ladder.SchemeHybrid}
	var reads, writes []ladder.Row
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		reads = grid.ExtraReads()
		writes = grid.ExtraWrites()
	}
	printRows("Figure 14a — additional reads (fraction)", reads, ladders)
	printRows("Figure 14b — additional writes (fraction)", writes, ladders)
	ar, aw := ladder.Average(reads), ladder.Average(writes)
	b.ReportMetric(ar.Values[ladder.SchemeBasic], "basic-extra-reads")
	b.ReportMetric(ar.Values[ladder.SchemeHybrid], "hybrid-extra-reads")
	b.ReportMetric(aw.Values[ladder.SchemeHybrid], "hybrid-extra-writes")
}

// BenchmarkFigure15EstimationAccuracy regenerates Figure 15: the average
// gap between LADDER-Est's estimated C_lrs and the accurate counters,
// without (a) and with (b) intra-line bit shifting.
func BenchmarkFigure15EstimationAccuracy(b *testing.B) {
	var rows []ladder.Row
	for i := 0; i < b.N; i++ {
		grid, err := ladder.RunGrid(ladder.Options{Instr: benchInstr(), Seed: 42},
			[]string{ladder.SchemeEstNoShift, ladder.SchemeEst})
		if err != nil {
			b.Fatal(err)
		}
		rows = grid.CounterDiffs()
	}
	printRows("Figure 15 — C_lrs difference (Est − accurate)", rows, []string{"without-shift", "with-shift"})
	avg := ladder.Average(rows)
	b.ReportMetric(avg.Values["without-shift"], "diff-noshift")
	b.ReportMetric(avg.Values["with-shift"], "diff-shift")
}

// BenchmarkFigure16Speedup regenerates Figure 16: weighted speedup over
// the baseline for every scheme and workload.
func BenchmarkFigure16Speedup(b *testing.B) {
	grid := mainGrid(b)
	var rows []ladder.Row
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows = grid.Speedup()
	}
	printRows("Figure 16 — speedup over baseline", rows, grid.Schemes)
	avg := ladder.Average(rows)
	b.ReportMetric(avg.Values[ladder.SchemeHybrid], "hybrid-speedup")
	b.ReportMetric(avg.Values[ladder.SchemeOracle], "oracle-speedup")
	if avg.Values[ladder.SchemeOracle] > 0 {
		b.ReportMetric(avg.Values[ladder.SchemeHybrid]/avg.Values[ladder.SchemeOracle], "fraction-of-oracle")
	}
}

// BenchmarkFigure17DynamicEnergy regenerates Figure 17: dynamic memory
// energy normalized to baseline with the read/write split.
func BenchmarkFigure17DynamicEnergy(b *testing.B) {
	grid := mainGrid(b)
	var splits []ladder.EnergySplit
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		splits = grid.DynamicEnergy()
	}
	schemes := []string{ladder.SchemeSplitReset, ladder.SchemeBLP, ladder.SchemeBasic, ladder.SchemeEst, ladder.SchemeHybrid}
	fmt.Println("\nFigure 17 — dynamic energy normalized to baseline (total = read+write)")
	fmt.Printf("%-10s", "workload")
	for _, s := range schemes {
		fmt.Printf("%16s", s)
	}
	fmt.Println()
	totals := map[string]float64{}
	for _, es := range splits {
		fmt.Printf("%-10s", es.Workload)
		for _, s := range schemes {
			t := es.Read[s] + es.Write[s]
			totals[s] += t
			fmt.Printf("%16.3f", t)
		}
		fmt.Println()
	}
	fmt.Printf("%-10s", "AVG")
	for _, s := range schemes {
		fmt.Printf("%16.3f", totals[s]/float64(len(splits)))
	}
	fmt.Println()
	b.ReportMetric(totals[ladder.SchemeHybrid]/float64(len(splits)), "hybrid-norm-energy")
	b.ReportMetric(totals[ladder.SchemeBLP]/float64(len(splits)), "blp-norm-energy")
}

// BenchmarkTable04HardwareOverhead reports the controller hardware
// overheads (published synthesis constants; see DESIGN.md) and the
// analytic metadata storage overheads of Section 6.3.
func BenchmarkTable04HardwareOverhead(b *testing.B) {
	var basic, est, hybrid float64
	for i := 0; i < b.N; i++ {
		basic, est, hybrid = ladder.MetadataOverheads()
	}
	fmt.Println("\nTable 4 — controller hardware overhead (published constants)")
	for _, m := range ladder.ControllerOverheads() {
		fmt.Printf("%-32s %8.4f mm2 %8.2f mW %8.2f ns\n", m.Name, m.AreaMM2, m.PowerMW, m.LatencyNs)
	}
	fmt.Printf("\nSection 6.3 — metadata storage: basic %.4f%%, est %.4f%%, hybrid %.4f%%\n",
		100*basic, 100*est, 100*hybrid)
	fmt.Printf("timing tables on-chip: %d bytes\n", core.TimingTableBytes)
	b.ReportMetric(100*hybrid, "hybrid-storage-pct")
}

// BenchmarkSection64Lifetime regenerates the Section 6.4 analysis:
// relative lifetime under ideal wear leveling and the IPC cost of VWL.
func BenchmarkSection64Lifetime(b *testing.B) {
	grid := mainGrid(b)
	var life []ladder.Row
	var wearRows []ladder.Row
	for i := 0; i < b.N; i++ {
		life = grid.RelativeLifetime()
		var err error
		wearRows, err = ladder.WearLevelingImpact(ladder.Options{
			Instr: benchInstr(), Seed: 42,
			Workloads: []string{"lbm", "mcf", "mix-7"},
		}, ladder.SchemeHybrid)
		if err != nil {
			b.Fatal(err)
		}
	}
	printRows("Section 6.4 — relative lifetime under ideal wear leveling",
		life, []string{ladder.SchemeBasic, ladder.SchemeEst, ladder.SchemeHybrid})
	printRows("Section 6.4 — IPC ratio with VWL enabled (subset)",
		wearRows, []string{"ipc-ratio", "gap-moves"})
	avg := ladder.Average(life)
	b.ReportMetric(avg.Values[ladder.SchemeHybrid], "hybrid-rel-lifetime")
}

// BenchmarkSection7RangeAblation regenerates the Section 7 study: the
// benefit retained when the latency dynamic range shrinks 2×.
func BenchmarkSection7RangeAblation(b *testing.B) {
	var rows []ladder.Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = ladder.RangeAblation(ladder.Options{
			Instr: benchInstr(), Seed: 42,
			Workloads: []string{"lbm", "libq", "mcf", "mix-7"},
		}, ladder.SchemeEst, 2)
		if err != nil {
			b.Fatal(err)
		}
	}
	printRows("Section 7 — 2x range shrink (subset)", rows,
		[]string{"gain-full", "gain-shrunk", "retained"})
	b.ReportMetric(ladder.Average(rows).Values["retained"], "benefit-retained")
}

// BenchmarkFNWConstraint regenerates the Section 6.1 datum: the fraction
// of FNW flip opportunities canceled by LADDER's ones constraint.
func BenchmarkFNWConstraint(b *testing.B) {
	grid := mainGrid(b)
	var rows []ladder.Row
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows = grid.FNWCancellation()
	}
	printRows("Section 6.1 — FNW cancellations (fraction of units; paper <4%)",
		rows, []string{ladder.SchemeBasic, ladder.SchemeEst, ladder.SchemeHybrid})
	b.ReportMetric(ladder.Average(rows).Values[ladder.SchemeHybrid], "fnw-canceled-frac")
}

// BenchmarkSimulatorThroughput measures raw simulator speed (simulated
// instructions per second) — not a paper figure, but useful for sizing
// sweeps.
func BenchmarkSimulatorThroughput(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := ladder.Run(ladder.Config{
			Workload:     "astar",
			Scheme:       ladder.SchemeHybrid,
			InstrPerCore: 50_000,
			Seed:         int64(i),
		}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(50_000*float64(b.N)/b.Elapsed().Seconds(), "instr/s")
}

// BenchmarkWriteHeavyThroughput measures simulator speed on the paper's
// write-dominated workload (lbm, ~48% writes): long RESET pulses keep the
// banks busy for hundreds of cycles at a time, so this is the benchmark
// that shows what the event-driven engine buys over per-cycle ticking.
func BenchmarkWriteHeavyThroughput(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := ladder.Run(ladder.Config{
			Workload:     "lbm",
			Scheme:       ladder.SchemeHybrid,
			InstrPerCore: 50_000,
			Seed:         int64(i),
		}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(50_000*float64(b.N)/b.Elapsed().Seconds(), "instr/s")
}

// TestBenchHarnessSmoke keeps the bench harness itself under test: a tiny
// grid exercises every derivation path.
func TestBenchHarnessSmoke(t *testing.T) {
	grid, err := sim.RunGrid(sim.Options{Instr: 10_000, Seed: 1, Workloads: []string{"astar"}},
		[]string{sim.SchemeBaseline, sim.SchemeEst, sim.SchemeEstNoShift})
	if err != nil {
		t.Fatal(err)
	}
	if len(grid.WriteServiceTime()) != 1 || len(grid.ReadLatency()) != 1 ||
		len(grid.Speedup()) != 1 || len(grid.ExtraReads()) != 1 ||
		len(grid.DynamicEnergy()) != 1 || len(grid.CounterDiffs()) != 1 {
		t.Fatal("grid derivations incomplete")
	}
}

// BenchmarkSubgroupAblation studies the partial-counter estimator's
// tightness as a function of the subgroup count N (the paper empirically
// sets N = 4, Section 4.1): average overestimate (counts of 512) of the
// exact-subgroup bound versus the true C_lrs, on workload-shaped pages.
func BenchmarkSubgroupAblation(b *testing.B) {
	ns := []int{1, 2, 4, 8, 16}
	var avg map[int]float64
	for iter := 0; iter < b.N; iter++ {
		avg = map[int]float64{}
		samples := 0
		for _, wl := range []string{"astar", "lbm", "libq", "mcf"} {
			gen, err := trace.NewGenerator(trace.Profiles[wl], 42, 0)
			if err != nil {
				b.Fatal(err)
			}
			for page := 0; page < 20; page++ {
				lines := make([]bits.Line, 64)
				got := 0
				for got < 64 {
					a := gen.Next()
					if !a.Write {
						continue
					}
					lines[got] = a.Data
					got++
				}
				truth := bits.TrueCwLRS(lines)
				for _, n := range ns {
					avg[n] += float64(bits.EstimateCwLRSExactN(lines, n) - truth)
				}
				samples++
			}
		}
		for _, n := range ns {
			avg[n] /= float64(samples)
		}
	}
	fmt.Println("\nSubgroup-count ablation — mean overestimate of C_lrs (counts of 512)")
	for _, n := range ns {
		fmt.Printf("  N=%-3d %8.1f\n", n, avg[n])
	}
	b.ReportMetric(avg[4], "overestimate-N4")
	b.ReportMetric(avg[1], "overestimate-N1")
}

// BenchmarkTableGranularity quantifies Section 5's table-reduction claim:
// the latency inflation the 8×8×8 table adds over finer-grained tables,
// and the on-chip storage each would need.
func BenchmarkTableGranularity(b *testing.B) {
	p := ladder.DefaultCrossbarParams()
	var rows [][4]float64
	for i := 0; i < b.N; i++ {
		m, err := timing.Calibrate(p)
		if err != nil {
			b.Fatal(err)
		}
		fine, err := timing.GenerateN(p, m, 16, timing.TableOptions{Content: timing.WLContent})
		if err != nil {
			b.Fatal(err)
		}
		rows = rows[:0]
		for _, buckets := range []int{2, 4, 8} {
			coarse, err := timing.GenerateN(p, m, buckets, timing.TableOptions{Content: timing.WLContent})
			if err != nil {
				b.Fatal(err)
			}
			mean, max, err := timing.GranularityCost(coarse, fine)
			if err != nil {
				b.Fatal(err)
			}
			rows = append(rows, [4]float64{float64(buckets), float64(coarse.StorageBytes()), mean, max})
		}
	}
	fmt.Println("\nSection 5 — table granularity vs 16-bucket reference (paper: 8×8×8 costs <3% system impact)")
	fmt.Printf("%-10s %12s %12s %12s\n", "buckets", "storage B", "mean infl", "max infl")
	for _, r := range rows {
		fmt.Printf("%-10.0f %12.0f %11.1f%% %11.1f%%\n", r[0], r[1], 100*r[2], 100*r[3])
	}
	b.ReportMetric(100*rows[2][2], "mean-inflation-pct-8buckets")
}
