module ladder

go 1.22
