package compress

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestZeroLineFullyCompressible(t *testing.T) {
	line := make([]byte, LineSize)
	if !Compressible(line) {
		t.Fatal("zero line must be compressible")
	}
	if got := CompressedBits(line); got != 12 { // 16 zero words -> 2 run tokens
		t.Fatalf("zero line bits = %d, want 12", got)
	}
}

func TestRandomLineIncompressible(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	line := make([]byte, LineSize)
	r.Read(line)
	if Compressible(line) {
		t.Fatal("random line should not be compressible")
	}
}

func TestSmallIntegersCompressible(t *testing.T) {
	// An array of small positive ints (one per word) is the canonical
	// FPC-friendly payload.
	line := make([]byte, LineSize)
	for i := 0; i < LineSize; i += 4 {
		line[i] = byte(i % 7)
	}
	if !Compressible(line) {
		t.Fatal("small-int line must be compressible")
	}
}

func TestSignExtendedNegatives(t *testing.T) {
	line := make([]byte, LineSize)
	for i := 0; i < LineSize; i += 4 {
		// -3 as int32 little endian: fd ff ff ff
		line[i] = 0xfd
		line[i+1] = 0xff
		line[i+2] = 0xff
		line[i+3] = 0xff
	}
	if !Compressible(line) {
		t.Fatal("sign-extended negative words must be compressible")
	}
}

func TestRepeatedByteWords(t *testing.T) {
	line := make([]byte, LineSize)
	for i := range line {
		line[i] = 0xab
	}
	// Each word costs 3+8 bits -> 16*11 = 176 < 256.
	if !Compressible(line) {
		t.Fatal("repeated-byte line must be compressible")
	}
}

func TestCompressedBitsNeverExceedsRaw(t *testing.T) {
	f := func(data [LineSize]byte) bool {
		got := CompressedBits(data[:])
		// Worst case: 16 words x (3 + 32) bits.
		return got >= 0 && got <= words*(3+32)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSignExtends(t *testing.T) {
	cases := []struct {
		w    uint32
		n    uint
		want bool
	}{
		{0, 4, true},
		{7, 4, true},
		{8, 4, false},
		{0xfffffff8, 4, true}, // -8
		{0xfffffff7, 4, false},
		{0x7f, 8, true},
		{0x80, 8, false},
		{0xffffff80, 8, true},
	}
	for _, c := range cases {
		if got := signExtends(c.w, c.n); got != c.want {
			t.Errorf("signExtends(%#x, %d) = %v, want %v", c.w, c.n, got, c.want)
		}
	}
}

func TestZeroRunSharing(t *testing.T) {
	// 8 zero words then 8 incompressible words: one run token + 8 full.
	line := make([]byte, LineSize)
	r := rand.New(rand.NewSource(2))
	r.Read(line[32:])
	// Ensure the random tail really is incompressible per word by setting
	// high entropy top bytes.
	for i := 32; i < LineSize; i += 4 {
		line[i+3] = 0x5a
		line[i] = 0xa5
	}
	bits := CompressedBits(line)
	want := 6 + 8*(3+32)
	if bits != want {
		t.Fatalf("bits = %d, want %d", bits, want)
	}
}
