// Package compress implements Frequent Pattern Compression (FPC) for
// 64-byte memory lines. The Split-reset baseline (Xu et al., HPCA 2015)
// stores a compressible line in half the bitlines of each mat so the write
// completes in a single half-RESET phase; a line qualifies when its FPC
// encoding fits in half the line size.
package compress

import "encoding/binary"

// LineSize is the memory line size in bytes.
const LineSize = 64

// words is the number of 32-bit FPC words per line.
const words = LineSize / 4

// FPC pattern classes, in matching priority order. Sizes include the
// 3-bit prefix, rounded up to whole bits as in the original proposal.
const (
	patZeroRun      = iota // runs of all-zero words
	patSignExt4            // 4-bit sign-extended
	patSignExt8            // one byte, sign-extended
	patSignExt16           // halfword, sign-extended
	patHalfZeroPad         // halfword padded with zeros (upper half zero)
	patRepeatedByte        // word of one repeated byte
	patUncompressed
)

// encodedBits returns the FPC payload size in bits for a 32-bit word,
// excluding the 3-bit prefix, and the pattern class.
func encodedBits(w uint32) (bitsN, pattern int) {
	switch {
	case w == 0:
		return 0, patZeroRun
	case signExtends(w, 4):
		return 4, patSignExt4
	case signExtends(w, 8):
		return 8, patSignExt8
	case signExtends(w, 16):
		return 16, patSignExt16
	case w&0xffff0000 == 0:
		return 16, patHalfZeroPad
	case repeatedByte(w):
		return 8, patRepeatedByte
	default:
		return 32, patUncompressed
	}
}

// signExtends reports whether the low n bits of w sign-extend to the full
// 32-bit value.
func signExtends(w uint32, n uint) bool {
	shifted := int32(w) << (32 - n) >> (32 - n)
	return uint32(shifted) == w
}

// repeatedByte reports whether all four bytes of w are equal.
func repeatedByte(w uint32) bool {
	b := w & 0xff
	return w == b|b<<8|b<<16|b<<24
}

// CompressedBits returns the FPC-encoded size of the line in bits,
// including per-word prefixes. Zero-run words share one prefix per run
// with a 3-bit run length, as in the original scheme.
func CompressedBits(line []byte) int {
	total := 0
	zeroRun := 0
	flush := func() {
		for zeroRun > 0 {
			total += 3 + 3 // prefix + run length (up to 8 words per token)
			zeroRun -= 8
		}
		zeroRun = 0
	}
	for i := 0; i+4 <= len(line) && i < words*4; i += 4 {
		w := binary.LittleEndian.Uint32(line[i:])
		payload, pat := encodedBits(w)
		if pat == patZeroRun {
			zeroRun++
			continue
		}
		flush()
		total += 3 + payload
	}
	flush()
	return total
}

// Compressible reports whether the line's FPC encoding fits in half the
// line (the Split-reset criterion: the stored form occupies at most 4
// bitlines per mat).
func Compressible(line []byte) bool {
	return CompressedBits(line) <= LineSize*8/2
}
