// Package introspect serves live run state over HTTP so long
// experiments can be profiled and watched without killing them: Go's
// pprof endpoints plus a small set of JSON documents the simulation
// publishes as it runs (metrics-registry snapshots, run or grid
// progress, recent transaction spans).
//
// The server never reaches into live simulation state — that would race
// with the single-goroutine hot loop. Instead the simulation's progress
// hook (which runs on the simulation goroutine) freezes snapshots and
// hands them to Publish; handlers serve the last published copy. A
// published value must therefore not be mutated afterwards; everything
// the sim publishes (metrics.Snapshot, ProgressInfo, span slices) is
// built fresh per hook invocation. Components with their own internal
// locking can instead register function-backed documents (PublishFunc)
// that are re-evaluated per request, and mount whole sub-APIs on the
// same listener (Handle) — the seams the simulation-as-a-service mode
// builds on (internal/service, docs/SERVICE.md).
package introspect

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sort"
	"sync"
)

// Server is one introspection endpoint bound to a TCP address.
type Server struct {
	mu   sync.Mutex
	vals map[string]any

	mux  *http.ServeMux
	ln   net.Listener
	http *http.Server
}

// liveDoc marks a published value as function-backed: serveRoot calls it
// per request instead of serving a frozen copy. See PublishFunc.
type liveDoc func() any

// New starts a server on addr (e.g. ":6060"; use "127.0.0.1:0" for an
// ephemeral test port). The listener is bound synchronously — a bad
// address fails here, not later — and served in the background.
func New(addr string) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("introspect: %w", err)
	}
	s := &Server{vals: make(map[string]any), ln: ln}
	mux := http.NewServeMux()
	mux.HandleFunc("/", s.serveRoot)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	s.mux = mux
	s.http = &http.Server{Handler: mux}
	go s.http.Serve(ln) //nolint:errcheck // Serve always returns on Close
	return s, nil
}

// Addr returns the bound address (useful with ":0").
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the server immediately, dropping in-flight scrapes. Safe
// on a nil receiver, so callers can hold an optional *Server and defer
// Close unconditionally. Prefer Shutdown where a context is available.
func (s *Server) Close() error {
	if s == nil {
		return nil
	}
	return s.http.Close()
}

// Shutdown stops the server gracefully: the listener closes, in-flight
// requests (a pprof profile capture, a metrics scrape) run to completion,
// and only then does Shutdown return — unless ctx expires first, in
// which case the remaining connections are dropped and ctx's error is
// returned. Safe on a nil receiver.
func (s *Server) Shutdown(ctx context.Context) error {
	if s == nil {
		return nil
	}
	return s.http.Shutdown(ctx)
}

// Publish stores a named JSON document, replacing any previous value.
// The document becomes GET /<name>. Callers must not mutate v after
// publishing. Safe on a nil receiver (a no-op), so simulation hooks can
// publish unconditionally.
func (s *Server) Publish(name string, v any) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.vals[name] = v
	s.mu.Unlock()
}

// PublishFunc registers a function-backed document: every GET /<name>
// calls f and serves the fresh result, where Publish serves the stored
// value as of the last publish. Use it for state that changes outside
// the simulation's progress cadence (the job service's queue counters).
// f runs on HTTP handler goroutines and must be safe for concurrent
// calls; the value it returns must not be mutated afterwards. Safe on a
// nil receiver (a no-op).
func (s *Server) PublishFunc(name string, f func() any) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.vals[name] = liveDoc(f)
	s.mu.Unlock()
}

// Handle mounts an additional handler on the server's mux under the
// given pattern (http.ServeMux syntax, method patterns included) —
// the seam that lets the job-queue service share one listener with
// pprof and the published documents. Patterns must not collide with the
// built-in routes ("/", "/debug/pprof/..."); registration panics on a
// duplicate pattern, like http.ServeMux. Safe on a nil receiver.
func (s *Server) Handle(pattern string, h http.Handler) {
	if s == nil {
		return
	}
	s.mux.Handle(pattern, h)
}

// serveRoot serves "/" as an index of available documents and any
// published document by name.
func (s *Server) serveRoot(w http.ResponseWriter, r *http.Request) {
	name := r.URL.Path[1:]
	if name == "" {
		s.serveIndex(w)
		return
	}
	s.mu.Lock()
	v, ok := s.vals[name]
	s.mu.Unlock()
	if !ok {
		http.NotFound(w, r)
		return
	}
	if f, live := v.(liveDoc); live {
		v = f()
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // best-effort response body
}

// serveIndex lists the published documents and the pprof root.
func (s *Server) serveIndex(w http.ResponseWriter) {
	s.mu.Lock()
	names := make([]string, 0, len(s.vals))
	for n := range s.vals {
		names = append(names, n)
	}
	s.mu.Unlock()
	sort.Strings(names)
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintf(w, "ladder introspection\n\n")
	for _, n := range names {
		fmt.Fprintf(w, "  /%s\n", n)
	}
	fmt.Fprintf(w, "  /debug/pprof/\n")
}
