package introspect

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

func newTestServer(t *testing.T) *Server {
	t.Helper()
	srv, err := New("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv
}

func get(t *testing.T, srv *Server, path string) (int, string) {
	t.Helper()
	resp, err := http.Get("http://" + srv.Addr() + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

func TestPublishRoundTrip(t *testing.T) {
	srv := newTestServer(t)
	srv.Publish("progress", map[string]any{"cycle": 123})

	code, body := get(t, srv, "/progress")
	if code != http.StatusOK {
		t.Fatalf("GET /progress = %d, want 200", code)
	}
	var doc map[string]any
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatalf("non-JSON body %q: %v", body, err)
	}
	if doc["cycle"] != float64(123) {
		t.Errorf("round-tripped cycle = %v, want 123", doc["cycle"])
	}

	// Re-publishing replaces the value.
	srv.Publish("progress", map[string]any{"cycle": 456})
	_, body = get(t, srv, "/progress")
	if !strings.Contains(body, "456") {
		t.Errorf("re-published value not served: %s", body)
	}
}

func TestIndexListsNames(t *testing.T) {
	srv := newTestServer(t)
	srv.Publish("metrics", 1)
	srv.Publish("spans", 2)
	code, body := get(t, srv, "/")
	if code != http.StatusOK {
		t.Fatalf("GET / = %d, want 200", code)
	}
	for _, want := range []string{"metrics", "spans", "pprof"} {
		if !strings.Contains(body, want) {
			t.Errorf("index missing %q:\n%s", want, body)
		}
	}
}

func TestUnknownName404s(t *testing.T) {
	srv := newTestServer(t)
	if code, _ := get(t, srv, "/no-such-doc"); code != http.StatusNotFound {
		t.Errorf("GET /no-such-doc = %d, want 404", code)
	}
}

func TestPprofReachable(t *testing.T) {
	srv := newTestServer(t)
	code, body := get(t, srv, "/debug/pprof/")
	if code != http.StatusOK {
		t.Fatalf("GET /debug/pprof/ = %d, want 200", code)
	}
	if !strings.Contains(body, "goroutine") {
		t.Error("pprof index does not mention goroutine profile")
	}
}

func TestShutdownStopsServing(t *testing.T) {
	srv, err := New("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv.Publish("progress", 1)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("graceful shutdown with slack context: %v", err)
	}
	if _, err := http.Get("http://" + srv.Addr() + "/progress"); err == nil {
		t.Fatal("server still serving after Shutdown")
	}
}

func TestNilServerIsSafe(t *testing.T) {
	var srv *Server
	srv.Publish("x", 1)                    // must not panic
	srv.Close()                            // must not panic
	_ = srv.Shutdown(context.Background()) // must not panic
}
