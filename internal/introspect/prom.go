package introspect

import (
	"net/http"

	"ladder/internal/metrics"
)

// PromSource supplies one Prometheus scrape: a frozen snapshot, the
// labels shared by every sample, and any extra process-level samples.
// It runs on HTTP handler goroutines and must be safe for concurrent
// calls (freeze under the caller's own lock).
type PromSource func() (metrics.Snapshot, []metrics.PromLabel, []metrics.PromSample)

// PromHandler adapts a PromSource into the GET /metrics/prom endpoint:
// each scrape re-evaluates the source and renders it in the Prometheus
// text exposition format (metrics.WritePrometheus).
func PromHandler(source PromSource) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet && r.Method != http.MethodHead {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		snap, labels, extra := source()
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if r.Method == http.MethodHead {
			return
		}
		//nolint:errcheck // best-effort response body
		metrics.WritePrometheus(w, snap, labels, extra...)
	})
}
