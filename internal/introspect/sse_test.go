package introspect

import (
	"bufio"
	"bytes"
	"net/http"
	"strings"
	"testing"
	"time"

	"ladder/internal/metrics"
	"ladder/internal/metrics/promcheck"
)

// sseOpen subscribes to an SSE endpoint and returns a line reader over
// the stream plus a closer.
func sseOpen(t *testing.T, srv *Server, path string) (*bufio.Reader, func()) {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, "http://"+srv.Addr()+path, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		resp.Body.Close()
		t.Fatalf("GET %s = %d, want 200", path, resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		resp.Body.Close()
		t.Fatalf("Content-Type = %q, want text/event-stream", ct)
	}
	return bufio.NewReader(resp.Body), func() { resp.Body.Close() }
}

func TestBrokerStreamsEvents(t *testing.T) {
	srv := newTestServer(t)
	b := NewBroker(-1) // no keepalives: the data frames are the test
	srv.Handle("/timeline/events", b)

	r, done := sseOpen(t, srv, "/timeline/events")
	defer done()
	// Subscription happens inside the handler goroutine; wait for it.
	for i := 0; i < 200 && b.Subscribers() == 0; i++ {
		time.Sleep(5 * time.Millisecond)
	}
	if b.Subscribers() != 1 {
		t.Fatal("subscriber never registered")
	}

	b.Publish([]byte(`{"epoch":1}`))
	b.Publish([]byte(`{"epoch":2}`))

	var frames []string
	for len(frames) < 2 {
		line, err := r.ReadString('\n')
		if err != nil {
			t.Fatalf("stream ended early: %v (got %v)", err, frames)
		}
		if strings.HasPrefix(line, "data: ") {
			frames = append(frames, strings.TrimSpace(strings.TrimPrefix(line, "data: ")))
		}
	}
	if frames[0] != `{"epoch":1}` || frames[1] != `{"epoch":2}` {
		t.Errorf("frames = %v", frames)
	}
}

func TestBrokerKeepalive(t *testing.T) {
	srv := newTestServer(t)
	b := NewBroker(20 * time.Millisecond)
	srv.Handle("/events", b)

	r, done := sseOpen(t, srv, "/events")
	defer done()
	// With no events published, keepalive comments must still flow.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if time.Now().After(deadline) {
			t.Fatal("no keepalive within 2s")
		}
		line, err := r.ReadString('\n')
		if err != nil {
			t.Fatalf("stream ended: %v", err)
		}
		if strings.HasPrefix(line, ": keepalive") {
			return
		}
	}
}

func TestBrokerUnsubscribeOnDisconnect(t *testing.T) {
	srv := newTestServer(t)
	b := NewBroker(-1)
	srv.Handle("/events", b)

	_, done := sseOpen(t, srv, "/events")
	for i := 0; i < 200 && b.Subscribers() == 0; i++ {
		time.Sleep(5 * time.Millisecond)
	}
	done()
	for i := 0; i < 200 && b.Subscribers() != 0; i++ {
		time.Sleep(5 * time.Millisecond)
	}
	if n := b.Subscribers(); n != 0 {
		t.Fatalf("%d subscribers after disconnect", n)
	}
	// Publishing with no subscribers is a no-op, and a nil broker is safe.
	b.Publish([]byte("x"))
	var nb *Broker
	nb.Publish([]byte("x"))
}

func TestPromHandlerServesExposition(t *testing.T) {
	srv := newTestServer(t)
	reg := metrics.NewRegistry()
	reg.Counter("fault.retries").Add(5)
	srv.Handle("/metrics/prom", PromHandler(func() (metrics.Snapshot, []metrics.PromLabel, []metrics.PromSample) {
		return reg.Snapshot(), []metrics.PromLabel{{Name: "run", Value: "test"}}, nil
	}))

	code, body := get(t, srv, "/metrics/prom")
	if code != http.StatusOK {
		t.Fatalf("GET /metrics/prom = %d, want 200", code)
	}
	if !strings.Contains(body, `ladder_fault_retries_total{run="test"} 5`) {
		t.Errorf("exposition missing retry counter:\n%s", body)
	}
	if err := promcheck.Lint(bytes.NewReader([]byte(body))); err != nil {
		t.Errorf("served exposition fails lint: %v", err)
	}

	resp, err := http.Post("http://"+srv.Addr()+"/metrics/prom", "text/plain", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST /metrics/prom = %d, want 405", resp.StatusCode)
	}
}

// TestBrokerLastEventIDResume pins SSE resume: a client reconnecting
// with the standard Last-Event-ID header replays exactly the events it
// missed, in order, before rejoining the live stream.
func TestBrokerLastEventIDResume(t *testing.T) {
	srv := newTestServer(t)
	b := NewBroker(-1)
	srv.Handle("/timeline/events", b)

	b.Publish([]byte(`{"epoch":1}`))
	b.Publish([]byte(`{"epoch":2}`))
	b.Publish([]byte(`{"epoch":3}`))

	req, err := http.NewRequest(http.MethodGet, "http://"+srv.Addr()+"/timeline/events", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Last-Event-ID", "1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	r := bufio.NewReader(resp.Body)
	type frame struct{ id, data string }
	var frames []frame
	cur := frame{}
	for len(frames) < 2 {
		line, err := r.ReadString('\n')
		if err != nil {
			t.Fatalf("stream ended early: %v (got %v)", err, frames)
		}
		switch {
		case strings.HasPrefix(line, "id: "):
			cur.id = strings.TrimSpace(strings.TrimPrefix(line, "id: "))
		case strings.HasPrefix(line, "data: "):
			cur.data = strings.TrimSpace(strings.TrimPrefix(line, "data: "))
			frames = append(frames, cur)
			cur = frame{}
		}
	}
	want := []frame{{"2", `{"epoch":2}`}, {"3", `{"epoch":3}`}}
	for i, w := range want {
		if frames[i] != w {
			t.Fatalf("replayed frames = %v, want %v", frames, want)
		}
	}
}

// TestBrokerDropsSlowSubscriber pins the backpressure policy: a
// subscriber that stops draining is dropped (its channel closes, its
// stream ends) once its buffer fills, and Publish never blocks on it.
func TestBrokerDropsSlowSubscriber(t *testing.T) {
	b := NewBroker(-1)
	ch, _ := b.subscribe(0)
	if b.Subscribers() != 1 {
		t.Fatal("subscriber not registered")
	}
	// Fill the buffer and one more: the overflow publish must drop the
	// subscriber rather than block or silently skip forever.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < subBuffer+1; i++ {
			b.Publish([]byte("x"))
		}
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Publish blocked on a slow subscriber")
	}
	if n := b.Subscribers(); n != 0 {
		t.Fatalf("slow subscriber still registered (%d)", n)
	}
	// The channel is closed after its buffered backlog: drain to the end.
	for i := 0; ; i++ {
		if _, open := <-ch; !open {
			break
		}
		if i > subBuffer {
			t.Fatal("channel never closed")
		}
	}
	// The events the drop lost are still in the replay ring.
	if got := b.LastEventID(); got != uint64(subBuffer+1) {
		t.Fatalf("LastEventID = %d, want %d", got, subBuffer+1)
	}
}

// TestBrokerHistoryRingBounded checks replay memory stays bounded: only
// the newest historySize events are retained for resume.
func TestBrokerHistoryRingBounded(t *testing.T) {
	b := NewBroker(-1)
	for i := 0; i < historySize+10; i++ {
		b.Publish([]byte("x"))
	}
	ch, replay := b.subscribe(0)
	defer b.unsubscribe(ch)
	if len(replay) != historySize {
		t.Fatalf("replay length = %d, want %d", len(replay), historySize)
	}
	if first := replay[0].id; first != 11 {
		t.Fatalf("oldest retained id = %d, want 11", first)
	}
}
