package introspect

import (
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"time"
)

// subBuffer is each SSE subscriber's channel depth; a subscriber whose
// connection stalls past it is dropped (its stream ends) rather than
// stalling the publisher — it reconnects with Last-Event-ID and replays
// what it missed from the broker's history ring.
const subBuffer = 64

// DefaultSSEKeepalive is the comment-frame cadence for idle SSE
// streams. Proxies and load balancers reap silent connections; a
// keepalive comment every few seconds keeps the stream open without
// delivering any event to the client's handler.
const DefaultSSEKeepalive = 15 * time.Second

// historySize bounds the broker's event-replay ring: a reconnecting
// subscriber can resume across at most this many missed events before
// the gap is simply lost (it then restarts from the live stream).
const historySize = 256

// event is one published body stamped with its broker-assigned ID.
type event struct {
	id   uint64
	body []byte
}

// Broker fans published events out to Server-Sent-Events subscribers:
// the live half of the timeline endpoint (each closed epoch streams to
// every watcher) and anything else that wants a push feed.
//
// Delivery is hardened against slow consumers in both directions:
// Publish never blocks — a subscriber whose buffer fills is dropped
// (its stream ends) instead of stalling the publisher or silently
// losing interior events — and every frame carries an "id:" field, so
// a dropped or disconnected client that reconnects with the standard
// Last-Event-ID header replays the events it missed from a bounded
// history ring before rejoining the live stream.
type Broker struct {
	keepalive time.Duration

	mu     sync.Mutex
	subs   map[chan event]struct{}
	hist   []event // ring of the last historySize events, oldest first
	nextID uint64  // next event ID to assign (IDs start at 1)
}

// NewBroker returns a broker sending keepalive comments at the given
// cadence (0 = DefaultSSEKeepalive, negative = disabled).
func NewBroker(keepalive time.Duration) *Broker {
	if keepalive == 0 {
		keepalive = DefaultSSEKeepalive
	}
	return &Broker{keepalive: keepalive, subs: make(map[chan event]struct{})}
}

// Publish sends one event body (pre-marshaled JSON, no framing) to
// every subscriber, non-blocking: a subscriber whose buffer is full is
// dropped — its channel closes, ending its stream — so one stalled
// client can neither block the publisher nor accumulate unbounded
// backlog. The event enters the replay ring regardless, so the dropped
// client recovers it by reconnecting with Last-Event-ID. Safe on a nil
// broker and from any goroutine.
func (b *Broker) Publish(body []byte) {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.nextID++
	ev := event{id: b.nextID, body: body}
	b.hist = append(b.hist, ev)
	if len(b.hist) > historySize {
		b.hist = b.hist[len(b.hist)-historySize:]
	}
	for ch := range b.subs {
		select {
		case ch <- ev:
		default:
			delete(b.subs, ch)
			close(ch)
		}
	}
}

// Subscribers reports the current subscriber count.
func (b *Broker) Subscribers() int {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.subs)
}

// LastEventID reports the most recently assigned event ID (0 before the
// first publish).
func (b *Broker) LastEventID() uint64 {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.nextID
}

// subscribe registers a subscriber and atomically computes its replay:
// every retained event with ID greater than after, so a resuming client
// misses nothing between its last-seen event and the live stream.
func (b *Broker) subscribe(after uint64) (chan event, []event) {
	ch := make(chan event, subBuffer)
	b.mu.Lock()
	defer b.mu.Unlock()
	b.subs[ch] = struct{}{}
	var replay []event
	for _, ev := range b.hist {
		if ev.id > after {
			replay = append(replay, ev)
		}
	}
	return ch, replay
}

// unsubscribe removes a subscriber that is going away on its own. The
// channel is left to the garbage collector: only Publish closes
// channels (to signal a drop), so there is no double-close race.
func (b *Broker) unsubscribe(ch chan event) {
	b.mu.Lock()
	delete(b.subs, ch)
	b.mu.Unlock()
}

// ServeHTTP streams the broker's events as text/event-stream: one
// "id:" + "data:" frame per published body, a ": keepalive" comment on
// every idle keepalive period, until the client disconnects or falls
// far enough behind to be dropped. A request carrying the standard
// Last-Event-ID header resumes after that event, replaying missed
// events from the history ring first.
func (b *Broker) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	var after uint64
	if v := r.Header.Get("Last-Event-ID"); v != "" {
		// A malformed ID is treated as absent: the client starts live.
		after, _ = strconv.ParseUint(v, 10, 64)
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)
	fl.Flush()

	ch, replay := b.subscribe(after)
	defer b.unsubscribe(ch)
	for _, ev := range replay {
		writeSSE(w, ev)
	}
	if len(replay) > 0 {
		fl.Flush()
	}

	var keep <-chan time.Time
	if b.keepalive > 0 {
		t := time.NewTicker(b.keepalive)
		defer t.Stop()
		keep = t.C
	}
	for {
		select {
		case <-r.Context().Done():
			return
		case ev, open := <-ch:
			if !open {
				// Dropped for falling behind: end the stream so the client
				// reconnects with Last-Event-ID and replays the gap.
				return
			}
			writeSSE(w, ev)
			fl.Flush()
		case <-keep:
			fmt.Fprint(w, ": keepalive\n\n")
			fl.Flush()
		}
	}
}

// writeSSE frames one event: its ID line then its data line.
func writeSSE(w http.ResponseWriter, ev event) {
	fmt.Fprintf(w, "id: %d\ndata: %s\n\n", ev.id, ev.body)
}
