package introspect

import (
	"fmt"
	"net/http"
	"sync"
	"time"
)

// subBuffer is each SSE subscriber's channel depth; a subscriber whose
// connection stalls past it misses events rather than stalling the
// publisher.
const subBuffer = 64

// DefaultSSEKeepalive is the comment-frame cadence for idle SSE
// streams. Proxies and load balancers reap silent connections; a
// keepalive comment every few seconds keeps the stream open without
// delivering any event to the client's handler.
const DefaultSSEKeepalive = 15 * time.Second

// Broker fans published events out to Server-Sent-Events subscribers:
// the live half of the timeline endpoint (each closed epoch streams to
// every watcher) and anything else that wants a push feed. Publish
// never blocks — a slow subscriber drops events, not the simulation.
type Broker struct {
	keepalive time.Duration

	mu   sync.Mutex
	subs map[chan []byte]struct{}
}

// NewBroker returns a broker sending keepalive comments at the given
// cadence (0 = DefaultSSEKeepalive, negative = disabled).
func NewBroker(keepalive time.Duration) *Broker {
	if keepalive == 0 {
		keepalive = DefaultSSEKeepalive
	}
	return &Broker{keepalive: keepalive, subs: make(map[chan []byte]struct{})}
}

// Publish sends one event body (pre-marshaled JSON, no framing) to
// every subscriber, non-blocking: a subscriber whose buffer is full
// misses this event. Safe on a nil broker and from any goroutine.
func (b *Broker) Publish(body []byte) {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	for ch := range b.subs {
		select {
		case ch <- body:
		default:
		}
	}
}

// Subscribers reports the current subscriber count.
func (b *Broker) Subscribers() int {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.subs)
}

func (b *Broker) subscribe() chan []byte {
	ch := make(chan []byte, subBuffer)
	b.mu.Lock()
	b.subs[ch] = struct{}{}
	b.mu.Unlock()
	return ch
}

func (b *Broker) unsubscribe(ch chan []byte) {
	b.mu.Lock()
	delete(b.subs, ch)
	b.mu.Unlock()
}

// ServeHTTP streams the broker's events as text/event-stream: one
// "data:" frame per published body, a ": keepalive" comment on every
// idle keepalive period, until the client disconnects.
func (b *Broker) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)
	fl.Flush()

	ch := b.subscribe()
	defer b.unsubscribe(ch)

	var keep <-chan time.Time
	if b.keepalive > 0 {
		t := time.NewTicker(b.keepalive)
		defer t.Stop()
		keep = t.C
	}
	for {
		select {
		case <-r.Context().Done():
			return
		case body := <-ch:
			fmt.Fprintf(w, "data: %s\n\n", body)
			fl.Flush()
		case <-keep:
			fmt.Fprint(w, ": keepalive\n\n")
			fl.Flush()
		}
	}
}
