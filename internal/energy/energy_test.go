package energy

import (
	"math"
	"testing"
)

func TestDefaultParamsValid(t *testing.T) {
	if err := DefaultParams().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestNewMeterRejectsNegative(t *testing.T) {
	p := DefaultParams()
	p.ReadPerLineNJ = -1
	if _, err := NewMeter(p); err == nil {
		t.Fatal("expected error")
	}
}

func TestMeterAccumulates(t *testing.T) {
	m, err := NewMeter(Params{ReadPerLineNJ: 2, WritePulsePerNsNJ: 0.1, PerBitChangeNJ: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	m.Read()
	m.Read()
	m.Write(100, 10) // 0.1*100 + 0.5*10 = 15
	if m.Reads != 2 || m.Writes != 1 {
		t.Fatalf("counts %d/%d", m.Reads, m.Writes)
	}
	if math.Abs(m.ReadNJ-4) > 1e-12 {
		t.Fatalf("read energy %v", m.ReadNJ)
	}
	if math.Abs(m.WriteNJ-15) > 1e-12 {
		t.Fatalf("write energy %v", m.WriteNJ)
	}
	if math.Abs(m.TotalNJ()-19) > 1e-12 {
		t.Fatalf("total %v", m.TotalNJ())
	}
}

func TestShorterPulseSavesEnergy(t *testing.T) {
	m, _ := NewMeter(DefaultParams())
	m.Write(658, 100)
	worst := m.WriteNJ
	m2, _ := NewMeter(DefaultParams())
	m2.Write(29, 100)
	if m2.WriteNJ >= worst {
		t.Fatal("a faster RESET pulse must cost less energy")
	}
}
