// Package energy models dynamic memory energy at mat level, standing in
// for the paper's NVMain analysis (Section 6.3). Reads cost a fixed
// sensing/burst energy per line. Write energy has two components: the
// array biasing energy, proportional to how long the RESET pulse holds
// the crossbar biased (this is what variable-latency writes save), and a
// per-cell switching energy proportional to the number of bits actually
// changed (what Flip-N-Write saves).
package energy

import "errors"

// Params are the per-event energy coefficients in nanojoules. The
// absolute scale follows device-level numbers from Kawahara et al. (JSSC
// 2012) only loosely; the evaluation reports energies normalized to the
// baseline scheme, so only the ratios matter.
type Params struct {
	// ReadPerLineNJ is the energy of one 64-byte array read.
	ReadPerLineNJ float64
	// WritePulsePerNsNJ is the biasing power drawn while a RESET pulse is
	// applied (per nanosecond of programmed tWR).
	WritePulsePerNsNJ float64
	// PerBitChangeNJ is the switching energy per cell actually toggled.
	PerBitChangeNJ float64
}

// DefaultParams returns coefficients that put baseline write energy about
// an order of magnitude above read energy, matching the relative scales
// NVM energy studies report.
func DefaultParams() Params {
	return Params{
		ReadPerLineNJ:     2.0,
		WritePulsePerNsNJ: 0.06,
		PerBitChangeNJ:    0.05,
	}
}

// Validate reports whether the coefficients are usable.
func (p Params) Validate() error {
	if p.ReadPerLineNJ < 0 || p.WritePulsePerNsNJ < 0 || p.PerBitChangeNJ < 0 {
		return errors.New("energy: coefficients must be non-negative")
	}
	return nil
}

// Meter accumulates dynamic energy for one simulation.
type Meter struct {
	p Params
	// ReadNJ and WriteNJ are the accumulated read and write energies.
	ReadNJ, WriteNJ float64
	// Reads and Writes count the metered events.
	Reads, Writes uint64
}

// NewMeter returns a meter with the given coefficients.
func NewMeter(p Params) (*Meter, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &Meter{p: p}, nil
}

// Read meters one array read.
func (m *Meter) Read() {
	m.ReadNJ += m.p.ReadPerLineNJ
	m.Reads++
}

// Write meters one array write with the programmed pulse width and the
// number of cells toggled.
func (m *Meter) Write(pulseNs float64, bitsChanged int) {
	m.WriteNJ += m.p.WritePulsePerNsNJ*pulseNs + m.p.PerBitChangeNJ*float64(bitsChanged)
	m.Writes++
}

// TotalNJ returns the accumulated dynamic energy.
func (m *Meter) TotalNJ() float64 { return m.ReadNJ + m.WriteNJ }
