package engine

import "testing"

// pulseActor models a bank-like component: busy until a completion time,
// then idle. It records every cycle it was advanced at.
type pulseActor struct {
	busyUntil uint64
	advanced  []uint64
}

func (p *pulseActor) NextEventAt(now uint64) uint64 {
	if p.busyUntil > now {
		return p.busyUntil
	}
	return Horizon
}

func (p *pulseActor) Advance(now uint64) bool {
	p.advanced = append(p.advanced, now)
	if p.busyUntil != 0 && now >= p.busyUntil {
		p.busyUntil = 0
		return true // completion: activity wakes blocked peers
	}
	return false
}

// watcherActor is blocked (Horizon) until some peer's activity causes a
// cycle to be processed after it; it records when it ran.
type watcherActor struct{ advanced []uint64 }

func (w *watcherActor) NextEventAt(uint64) uint64 { return Horizon }
func (w *watcherActor) Advance(now uint64) bool   { w.advanced = append(w.advanced, now); return false }

func TestEngineSkipsDeadCyclesAndWakesOnActivity(t *testing.T) {
	e := New()
	p := &pulseActor{busyUntil: 1000}
	w := &watcherActor{}
	e.Add(p)
	e.Add(w)

	for e.Step() {
	}
	// Cycle 0 (initial), cycle 1000 (completion), cycle 1001 (post-activity
	// wake) — and nothing in between.
	want := []uint64{0, 1000, 1001}
	if len(p.advanced) != len(want) {
		t.Fatalf("advanced at %v, want %v", p.advanced, want)
	}
	for i, at := range want {
		if p.advanced[i] != at {
			t.Fatalf("advanced at %v, want %v", p.advanced, want)
		}
	}
	// Every processed cycle advances every actor, in order.
	if len(w.advanced) != len(p.advanced) {
		t.Fatalf("watcher advanced %v, pulse %v", w.advanced, p.advanced)
	}
	if e.Clock().Now() != 1001 {
		t.Fatalf("clock = %d, want 1001", e.Clock().Now())
	}
}

func TestEngineStepFalseWhenNoEvents(t *testing.T) {
	e := New()
	w := &watcherActor{}
	e.Add(w)
	if !e.Step() { // cycle 0
		t.Fatal("first step should process cycle 0")
	}
	if e.Step() {
		t.Fatal("blocked-only actor set should run out of events")
	}
}

func TestEngineProgressHook(t *testing.T) {
	e := New()
	p := &pulseActor{busyUntil: 2500}
	e.Add(p)
	var fired []uint64
	e.SetProgress(1000, func(now uint64) { fired = append(fired, now) })
	for e.Step() {
	}
	// Boundaries at 999, 1999 fall in the dead window; the hook must force
	// them to be processed anyway. 2999 is after the last event.
	want := []uint64{999, 1999}
	if len(fired) != len(want) || fired[0] != 999 || fired[1] != 1999 {
		t.Fatalf("progress fired at %v, want %v", fired, want)
	}
}

func TestEngineObserverHook(t *testing.T) {
	e := New()
	p := &pulseActor{busyUntil: 2500}
	e.Add(p)
	var progress, observer []uint64
	e.SetProgress(1000, func(now uint64) { progress = append(progress, now) })
	e.SetObserver(700, func(now uint64) { observer = append(observer, now) })
	for e.Step() {
	}
	// The observer's boundaries inside the live window: 699, 1399, 2099.
	// 2799 is after the last real event, so it never fires — an observer
	// must not keep a finished simulation alive.
	wantObs := []uint64{699, 1399, 2099}
	if len(observer) != len(wantObs) || observer[0] != 699 || observer[1] != 1399 || observer[2] != 2099 {
		t.Fatalf("observer fired at %v, want %v", observer, wantObs)
	}
	// The progress hook coexists, unchanged by the observer's presence.
	if len(progress) != 2 || progress[0] != 999 || progress[1] != 1999 {
		t.Fatalf("progress fired at %v, want [999 1999]", progress)
	}
	// Actor-visible cycles: observer boundaries are processed (dead)
	// cycles, so the pulse actor sees them too — the contract is that dead
	// cycles are state-neutral, not invisible.
	if e.Clock().Now() != 2501 {
		t.Fatalf("clock = %d, want 2501", e.Clock().Now())
	}
}

func TestEngineObserverSharedBoundaryOrder(t *testing.T) {
	e := New()
	p := &pulseActor{busyUntil: 1200}
	e.Add(p)
	var order []string
	e.SetProgress(500, func(uint64) { order = append(order, "progress") })
	e.SetObserver(500, func(uint64) { order = append(order, "observer") })
	for e.Step() {
	}
	// Boundaries 499 and 999 fire both hooks, in installation order.
	want := []string{"progress", "observer", "progress", "observer"}
	if len(order) != len(want) {
		t.Fatalf("hooks fired %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("hooks fired %v, want %v", order, want)
		}
	}
}

func TestEngineObserverZeroPeriodDisabled(t *testing.T) {
	e := New()
	w := &watcherActor{}
	e.Add(w)
	e.SetObserver(0, func(uint64) { t.Fatal("zero-period observer fired") })
	e.SetObserver(10, nil)
	for e.Step() {
	}
	if len(e.hooks) != 0 {
		t.Fatalf("disabled observers installed %d hooks", len(e.hooks))
	}
}

func TestEngineExternalScheduleAndStaleDiscard(t *testing.T) {
	e := New()
	w := &watcherActor{}
	e.Add(w)
	e.Schedule(5)
	e.Schedule(5) // duplicate: coalesced
	e.Schedule(3)
	for e.Step() {
	}
	want := []uint64{0, 3, 5}
	if len(w.advanced) != len(want) {
		t.Fatalf("advanced %v, want %v", w.advanced, want)
	}
	for i := range want {
		if w.advanced[i] != want[i] {
			t.Fatalf("advanced %v, want %v", w.advanced, want)
		}
	}
	// Scheduling into the processed past is discarded, not replayed.
	e.Schedule(2)
	if e.Step() {
		t.Fatal("stale event should be discarded")
	}
}

func TestClockMonotonic(t *testing.T) {
	var c Clock
	c.AdvanceTo(10)
	c.AdvanceTo(10)
	defer func() {
		if recover() == nil {
			t.Fatal("backwards clock should panic")
		}
	}()
	c.AdvanceTo(9)
}
