// Package engine is the discrete-event core of the simulator: a monotonic
// event queue on a min-heap, a simulation Clock, and an Engine that
// advances a fixed, ordered set of Actors only at cycles where something
// observable can happen — skipping the dead cycles a naive tick loop
// would burn inside multi-hundred-cycle RESET pulses.
//
// The contract that makes skipping sound (see docs/ARCHITECTURE.md,
// "Engine"):
//
//   - Advance(now) processes exactly one cycle and reports whether the
//     actor changed state in a way that may affect *other* actors
//     (completions, dispatches). Self-contained evolution (a core
//     retiring gap instructions) is not activity.
//   - NextEventAt(now) is the earliest cycle strictly after now at which
//     the actor's Advance would not be a no-op, assuming no other actor
//     acts first; Horizon means "nothing until someone wakes me".
//   - After any cycle with activity, the engine always processes the
//     next cycle too, so an actor blocked on another (a core stalled on
//     a full write queue) re-evaluates exactly when the blocker's state
//     has changed.
//
// Under that contract every cycle the engine skips is provably a no-op
// for every actor, so the event-driven run is cycle-identical to the
// seed tick loop (pinned by the golden test in internal/sim).
package engine

// Horizon is the "no scheduled event" sentinel: an event time later than
// any cycle a simulation can reach.
const Horizon = ^uint64(0)

// Event is one scheduled entry of an EventQueue.
type Event struct {
	// At is the cycle the event is due.
	At uint64
	// Payload is an opaque tag carried for the scheduler's benefit; the
	// queue never inspects it.
	Payload any

	seq uint64
}

// EventQueue is a stable min-heap of events ordered by (At, insertion
// order): Pop returns events in non-decreasing time, and events with
// equal timestamps come out in the order they were pushed.
type EventQueue struct {
	items []Event
	seq   uint64
}

// Len returns the number of queued events.
func (q *EventQueue) Len() int { return len(q.items) }

// Push schedules an event. Times may arrive in any order; the heap
// restores monotonic pop order.
func (q *EventQueue) Push(at uint64, payload any) {
	q.seq++
	q.items = append(q.items, Event{At: at, Payload: payload, seq: q.seq})
	q.up(len(q.items) - 1)
}

// Peek returns the earliest scheduled time without removing it.
func (q *EventQueue) Peek() (uint64, bool) {
	if len(q.items) == 0 {
		return 0, false
	}
	return q.items[0].At, true
}

// Pop removes and returns the earliest event (ties broken by insertion
// order).
func (q *EventQueue) Pop() (Event, bool) {
	if len(q.items) == 0 {
		return Event{}, false
	}
	top := q.items[0]
	last := len(q.items) - 1
	q.items[0] = q.items[last]
	q.items[last] = Event{} // release payload reference
	q.items = q.items[:last]
	if last > 0 {
		q.down(0)
	}
	return top, true
}

// less orders by time, then by insertion sequence for stability.
func (q *EventQueue) less(i, j int) bool {
	if q.items[i].At != q.items[j].At {
		return q.items[i].At < q.items[j].At
	}
	return q.items[i].seq < q.items[j].seq
}

func (q *EventQueue) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !q.less(i, parent) {
			return
		}
		q.items[i], q.items[parent] = q.items[parent], q.items[i]
		i = parent
	}
}

func (q *EventQueue) down(i int) {
	n := len(q.items)
	for {
		left := 2*i + 1
		if left >= n {
			return
		}
		least := left
		if right := left + 1; right < n && q.less(right, left) {
			least = right
		}
		if !q.less(least, i) {
			return
		}
		q.items[i], q.items[least] = q.items[least], q.items[i]
		i = least
	}
}
