package engine

import (
	"math/rand"
	"sort"
	"testing"
)

// TestQueuePopOrderProperty is the event-queue property test: draining
// the queue pops events in non-decreasing time order, and events with
// equal timestamps pop in push order (stability).
func TestQueuePopOrderProperty(t *testing.T) {
	for trial := 0; trial < 200; trial++ {
		rng := rand.New(rand.NewSource(int64(trial)))
		var q EventQueue
		n := 1 + rng.Intn(300)
		for i := 0; i < n; i++ {
			// Small time domain forces plenty of timestamp collisions.
			q.Push(uint64(rng.Intn(20)), i)
		}
		type tagged struct {
			at  uint64
			tag int
		}
		popped := make([]tagged, 0, n)
		for {
			ev, ok := q.Pop()
			if !ok {
				break
			}
			popped = append(popped, tagged{ev.At, ev.Payload.(int)})
		}
		if len(popped) != n {
			t.Fatalf("trial %d: popped %d of %d pushed", trial, len(popped), n)
		}
		for i := 1; i < n; i++ {
			if popped[i].at < popped[i-1].at {
				t.Fatalf("trial %d: pop order decreased: %d after %d",
					trial, popped[i].at, popped[i-1].at)
			}
			// Tags are assigned in push order, so within one timestamp they
			// must come out ascending (stability).
			if popped[i].at == popped[i-1].at && popped[i].tag < popped[i-1].tag {
				t.Fatalf("trial %d: unstable at t=%d: tag %d after %d",
					trial, popped[i].at, popped[i].tag, popped[i-1].tag)
			}
		}
	}
}

// TestQueuePopIsAlwaysMin interleaves pushes and pops and checks every
// pop returns the minimum of the queue's current contents.
func TestQueuePopIsAlwaysMin(t *testing.T) {
	for trial := 0; trial < 100; trial++ {
		rng := rand.New(rand.NewSource(1000 + int64(trial)))
		var q EventQueue
		var mirror []uint64
		for i := 0; i < 300; i++ {
			if q.Len() == 0 || rng.Intn(3) != 0 {
				at := uint64(rng.Intn(50))
				q.Push(at, nil)
				mirror = append(mirror, at)
				continue
			}
			ev, ok := q.Pop()
			if !ok {
				t.Fatalf("trial %d: pop failed with Len()=%d", trial, q.Len())
			}
			sort.Slice(mirror, func(a, b int) bool { return mirror[a] < mirror[b] })
			if ev.At != mirror[0] {
				t.Fatalf("trial %d: pop = %d, min = %d", trial, ev.At, mirror[0])
			}
			mirror = mirror[1:]
		}
		if q.Len() != len(mirror) {
			t.Fatalf("trial %d: queue len %d, mirror %d", trial, q.Len(), len(mirror))
		}
	}
}

func TestQueuePeekAndEmpty(t *testing.T) {
	var q EventQueue
	if _, ok := q.Peek(); ok {
		t.Fatal("peek on empty queue")
	}
	if _, ok := q.Pop(); ok {
		t.Fatal("pop on empty queue")
	}
	q.Push(7, nil)
	q.Push(3, nil)
	if at, ok := q.Peek(); !ok || at != 3 {
		t.Fatalf("peek = %d,%v want 3,true", at, ok)
	}
	if q.Len() != 2 {
		t.Fatalf("len = %d", q.Len())
	}
}
