//go:build !race

package engine

import "testing"

// TestEventQueueAllocFree pins the steady-state contract the min-push
// Step depends on: once the heap's backing array has grown to the
// simulation's working depth, push/pop churn allocates nothing. The race
// detector instruments allocations, so the file is excluded under -race.
func TestEventQueueAllocFree(t *testing.T) {
	var q EventQueue
	// Warm-up: grow the backing array past any depth the measured loop
	// reaches.
	for i := 0; i < 64; i++ {
		q.Push(uint64(i), nil)
	}
	for q.Len() > 0 {
		q.Pop()
	}
	now := uint64(0)
	if n := testing.AllocsPerRun(200, func() {
		q.Push(now+3, nil)
		q.Push(now+1, nil)
		q.Push(now+2, nil)
		for q.Len() > 0 {
			q.Pop()
		}
		now += 4
	}); n != 0 {
		t.Fatalf("queue push/pop allocates %.0f per cycle, want 0", n)
	}
}

// TestEngineStepAllocFree covers the full Step path with a trivial
// actor: one heap push per processed cycle, no per-actor garbage.
func TestEngineStepAllocFree(t *testing.T) {
	e := New()
	a := &tickActor{limit: 1 << 30}
	e.Add(a)
	// Warm-up.
	for i := 0; i < 16; i++ {
		if !e.Step() {
			t.Fatal("engine stalled during warm-up")
		}
	}
	if n := testing.AllocsPerRun(200, func() {
		if !e.Step() {
			t.Fatal("engine stalled")
		}
	}); n != 0 {
		t.Fatalf("Step allocates %.0f per cycle, want 0", n)
	}
}

// tickActor wants every cycle until its limit — the densest schedule the
// engine can see.
type tickActor struct {
	ticks uint64
	limit uint64
}

func (a *tickActor) NextEventAt(now uint64) uint64 {
	if a.ticks >= a.limit {
		return Horizon
	}
	return now + 1
}

func (a *tickActor) Advance(now uint64) bool {
	a.ticks++
	return false
}
