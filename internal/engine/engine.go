package engine

// Clock is the simulation's monotonic time source, in CPU cycles.
type Clock struct {
	now uint64
}

// Now returns the current cycle.
func (c *Clock) Now() uint64 { return c.now }

// AdvanceTo moves the clock forward to cycle t. Time never runs
// backwards; a violation is a scheduling bug, so it panics.
func (c *Clock) AdvanceTo(t uint64) {
	if t < c.now {
		panic("engine: clock moved backwards")
	}
	c.now = t
}

// Actor is a simulation component driven by the Engine. See the package
// comment for the contract that makes cycle skipping sound.
type Actor interface {
	// NextEventAt returns the earliest cycle strictly after now at which
	// this actor needs Advance called (assuming no other actor acts
	// first), or Horizon if it is blocked until another actor's activity
	// wakes it.
	NextEventAt(now uint64) uint64
	// Advance processes cycle now and reports whether the actor changed
	// state in a way that may affect other actors.
	Advance(now uint64) bool
}

// Engine drives an ordered set of actors through simulated time. Every
// processed cycle advances *all* actors in registration order — the
// ordering guarantee the cycle-identical refactor depends on — and the
// event queue decides which cycles need processing at all.
type Engine struct {
	clock  Clock
	actors []Actor
	q      EventQueue

	processed bool   // at least one cycle has been processed
	last      uint64 // last processed cycle (valid when processed)

	// hooks are the installed periodic callbacks (progress, observers),
	// fired in installation order at the top of their boundary cycles.
	hooks []periodicHook
}

// periodicHook is one installed periodic callback: fn fires at the top
// of every cycle t with (t+1) divisible by every, before any actor
// advances. next tracks the hook's next boundary cycle.
type periodicHook struct {
	every uint64
	fn    func(now uint64)
	next  uint64
}

// New returns an engine with its first cycle (0) scheduled.
func New() *Engine {
	e := &Engine{}
	e.q.Push(0, nil)
	return e
}

// Clock exposes the engine's clock. Actors may advance it mid-cycle
// (e.g. an embedded drain loop); the engine re-reads it between actor
// advances and discards events scheduled into the skipped-over past.
func (e *Engine) Clock() *Clock { return &e.clock }

// Add appends an actor. Registration order is advance order within each
// processed cycle.
func (e *Engine) Add(a Actor) { e.actors = append(e.actors, a) }

// Schedule requests that cycle t be processed (an external wakeup).
func (e *Engine) Schedule(t uint64) { e.q.Push(t, nil) }

// SetProgress installs a periodic progress callback: fn fires at the top
// of every cycle t with (t+1) divisible by every — i.e. once per `every`
// cycles — before any actor advances, and those cycles are always
// processed while the simulation has work left. With no callback
// installed the engine never wakes for progress, so the hook costs
// nothing when unused.
func (e *Engine) SetProgress(every uint64, fn func(now uint64)) {
	e.addHook(every, fn)
}

// SetObserver installs a second periodic callback with SetProgress's
// exact semantics, for observer-only instrumentation (the timeline
// epoch sampler). The separation is deliberate: an observer is NOT an
// actor — it fires before any actor advances, schedules nothing, and
// must not mutate simulation state, so installing one cannot change
// which cycles actors perceive or the order they advance in. Boundary
// cycles are only forced while a real event is pending, so an observer
// never keeps an otherwise-finished simulation alive, and the extra
// processed cycles are dead ones (no actor acts), which the engine
// contract already makes equivalent to skipping. Multiple hooks may
// coexist; at a shared boundary they fire in installation order.
func (e *Engine) SetObserver(every uint64, fn func(now uint64)) {
	e.addHook(every, fn)
}

// addHook registers one periodic callback. A zero period or nil
// callback installs nothing, keeping the unused path free.
func (e *Engine) addHook(every uint64, fn func(now uint64)) {
	if every == 0 || fn == nil {
		return
	}
	e.hooks = append(e.hooks, periodicHook{every: every, fn: fn, next: every - 1})
}

// nextHookAt returns the earliest pending hook boundary (Horizon when
// no hooks are installed).
func (e *Engine) nextHookAt() uint64 {
	next := Horizon
	for i := range e.hooks {
		if e.hooks[i].next < next {
			next = e.hooks[i].next
		}
	}
	return next
}

// nextTime pops the earliest useful scheduled time: duplicates and
// events at or before the last processed cycle (satisfied by a clock
// jump) are discarded. A pending hook boundary (progress, observer)
// earlier than the next real event is processed first (without
// consuming the event), so hooks keep firing through long dead windows
// but never keep an otherwise-finished simulation alive.
func (e *Engine) nextTime() (uint64, bool) {
	for {
		t, ok := e.q.Peek()
		if !ok {
			return 0, false
		}
		if e.processed && t <= e.last {
			e.q.Pop()
			continue
		}
		if h := e.nextHookAt(); h < t {
			return h, true
		}
		// Coalesce every entry for this cycle.
		for {
			e.q.Pop()
			nt, ok := e.q.Peek()
			if !ok || nt != t {
				break
			}
		}
		return t, true
	}
}

// Step advances simulated time to the next scheduled cycle and processes
// it: periodic hooks fire, then every actor advances in order, then
// each actor's next event is re-scheduled. Returns false when no events
// remain — with live actors that means the simulation is deadlocked, as
// a healthy system always has a next event.
func (e *Engine) Step() bool {
	t, ok := e.nextTime()
	if !ok {
		return false
	}
	e.clock.AdvanceTo(t)
	for i := range e.hooks {
		if (t+1)%e.hooks[i].every == 0 {
			e.hooks[i].fn(t)
		}
	}
	active := false
	for _, a := range e.actors {
		// Re-read the clock: an actor may legitimately advance it (an
		// embedded drain), and later actors must see the new time.
		if a.Advance(e.clock.Now()) {
			active = true
		}
	}
	now := e.clock.Now()
	e.processed = true
	e.last = now
	// Every actor just advanced, so each fresh NextEventAt subsumes any
	// event it scheduled earlier: pushing only the minimum keeps the heap
	// at O(1) churn per step instead of one push per actor. Stale entries
	// from external Schedule calls still pop first if earlier.
	next := Horizon
	for _, a := range e.actors {
		if n := a.NextEventAt(now); n < next {
			next = n
		}
	}
	if active && now+1 < next {
		next = now + 1
	}
	if next != Horizon {
		e.q.Push(next, nil)
	}
	for i := range e.hooks {
		if h := &e.hooks[i]; h.next <= now {
			h.next = ((now+1)/h.every+1)*h.every - 1
		}
	}
	return true
}
