package logging

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestNewFormats(t *testing.T) {
	var buf bytes.Buffer
	lg, err := New(FormatJSON, &buf)
	if err != nil {
		t.Fatal(err)
	}
	lg.Info("job started", "job", "abc123")
	var doc map[string]any
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("json format emitted non-JSON %q: %v", buf.String(), err)
	}
	if doc["msg"] != "job started" || doc["job"] != "abc123" {
		t.Errorf("json record = %v", doc)
	}

	buf.Reset()
	lg, err = New("", &buf)
	if err != nil {
		t.Fatal(err)
	}
	lg.Info("hello")
	if !strings.Contains(buf.String(), "msg=hello") {
		t.Errorf("text record = %q", buf.String())
	}

	if _, err := New("yaml", &buf); err == nil {
		t.Error("unknown format accepted")
	}
}

func TestDiscardDropsEverything(t *testing.T) {
	Discard().Error("nobody hears this")
}
