// Package logging builds the slog loggers the CLIs and the service
// share: one -log-format flag ("text" for humans, "json" for log
// pipelines), one construction path, stderr only — simulation results
// stay on stdout, so `laddersim ... | jq` keeps working regardless of
// log volume.
package logging

import (
	"fmt"
	"io"
	"log/slog"
)

// Formats accepted by New (the -log-format flag values).
const (
	FormatText = "text"
	FormatJSON = "json"
)

// New builds a logger writing to w in the given format. An empty format
// means text; anything else is a usage error.
func New(format string, w io.Writer) (*slog.Logger, error) {
	switch format {
	case "", FormatText:
		return slog.New(slog.NewTextHandler(w, nil)), nil
	case FormatJSON:
		return slog.New(slog.NewJSONHandler(w, nil)), nil
	}
	return nil, fmt.Errorf("logging: unknown format %q (want %s or %s)", format, FormatText, FormatJSON)
}

// Discard returns a logger that drops everything — the default for
// libraries whose caller supplied no logger.
func Discard() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, nil))
}
