package tracing

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// ticksPerUs converts engine cycles to the microseconds Chrome trace
// timestamps use: the simulation clock runs at 4 GHz (4 ticks per
// nanosecond, memctrl.TicksPerNs), so one microsecond is 4000 ticks.
const ticksPerUs = 4000.0

// corePID offsets core tracks away from channel tracks in the trace's
// process-ID space (channels are pid 0..N, cores pid 1000+i).
const corePID = 1000

// chromeEvent is one trace-event object. The field set follows the
// Chrome trace-event format's "X" (complete) and "M" (metadata) phases,
// the subset Perfetto and chrome://tracing both accept.
type chromeEvent struct {
	Name  string         `json:"name"`
	Phase string         `json:"ph"`
	Cat   string         `json:"cat,omitempty"`
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	TS    float64        `json:"ts"`
	Dur   float64        `json:"dur,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

// chromeTrace is the JSON-object container form of a trace file.
type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// track maps a span onto its (pid, tid) track: one process per channel
// with one thread per bank, and one process per core for stall spans.
func (s *Span) track() (pid, tid int) {
	if s.Kind == KindCoreStall {
		return corePID + int(s.Core), 0
	}
	return int(s.Channel), int(s.Bank)
}

// WriteChromeTrace exports every completed resident span as Chrome
// trace-event JSON. Each memory transaction renders as up to two
// complete slices on its channel/bank track — "queued" covering queue
// wait and the kind label covering dispatch to completion, carrying the
// resolved timing-table cell, programmed latency and drain flag as args
// — and each stall episode as one slice on its core track. Open spans
// are skipped: an export mid-run shows only finished work.
func (c *Collector) WriteChromeTrace(w io.Writer) error {
	doc := chromeTrace{TraceEvents: []chromeEvent{}, DisplayTimeUnit: "ns"}
	if c == nil {
		return json.NewEncoder(w).Encode(doc)
	}

	type trackKey struct{ pid, tid int }
	tracks := map[trackKey]bool{}
	c.eachDone(func(s *Span) {
		pid, tid := s.track()
		tracks[trackKey{pid, tid}] = true
		ts := float64(s.Enqueue) / ticksPerUs
		if q := s.QueueTicks(); q > 0 && s.Kind != KindCoreStall {
			doc.TraceEvents = append(doc.TraceEvents, chromeEvent{
				Name: "queued", Phase: "X", Cat: "queue",
				PID: pid, TID: tid, TS: ts, Dur: float64(q) / ticksPerUs,
				Args: map[string]any{"line": s.Line, "span": s.ID},
			})
		}
		args := map[string]any{"line": s.Line, "span": s.ID}
		if s.IsWrite() {
			args["lat_ns"] = s.LatNs
			args["wl_bucket"] = s.WLBucket
			args["bl_bucket"] = s.BLBucket
			args["clrs_bucket"] = s.ClrsBucket
			args["drain"] = s.Drain
		}
		doc.TraceEvents = append(doc.TraceEvents, chromeEvent{
			Name: s.Kind.String(), Phase: "X", Cat: "service",
			PID: pid, TID: tid,
			TS:   float64(s.Dispatch) / ticksPerUs,
			Dur:  float64(s.ServiceTicks()) / ticksPerUs,
			Args: args,
		})
	})

	// Name the tracks so Perfetto shows "channel 0 / bank 3" instead of
	// bare pids. Metadata order is irrelevant to viewers but sorted here
	// so exports are byte-stable.
	keys := make([]trackKey, 0, len(tracks))
	for k := range tracks {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].pid != keys[j].pid {
			return keys[i].pid < keys[j].pid
		}
		return keys[i].tid < keys[j].tid
	})
	meta := make([]chromeEvent, 0, 2*len(keys))
	seenPID := map[int]bool{}
	for _, k := range keys {
		if !seenPID[k.pid] {
			seenPID[k.pid] = true
			name := fmt.Sprintf("channel %d", k.pid)
			if k.pid >= corePID {
				name = fmt.Sprintf("core %d", k.pid-corePID)
			}
			meta = append(meta, chromeEvent{
				Name: "process_name", Phase: "M", PID: k.pid,
				Args: map[string]any{"name": name},
			})
		}
		name := fmt.Sprintf("bank %d", k.tid)
		if k.pid >= corePID {
			name = "stalls"
		}
		meta = append(meta, chromeEvent{
			Name: "thread_name", Phase: "M", PID: k.pid, TID: k.tid,
			Args: map[string]any{"name": name},
		})
	}
	doc.TraceEvents = append(meta, doc.TraceEvents...)
	return json.NewEncoder(w).Encode(doc)
}

// WriteSlowestDigest renders the slowest traced writes for humans: the
// "why was this write slow" answer — queue wait vs pulse split, the
// timing-table cell that priced it, and whether it dispatched during a
// write drain.
func (c *Collector) WriteSlowestDigest(w io.Writer) error {
	slow := c.Slowest()
	if _, err := fmt.Fprintf(w, "slowest traced writes (%d of %d sampled, 1-in-%d sampling)\n",
		len(slow), c.Sampled(), max(c.SampleEvery(), 1)); err != nil {
		return err
	}
	for i, s := range slow {
		drain := ""
		if s.Drain {
			drain = " drain"
		}
		kind := ""
		if s.Kind == KindMetaWrite {
			kind = " [meta]"
		}
		if _, err := fmt.Fprintf(w,
			"  #%-2d line %#x ch%d bank%d: %d ticks total (queue %d, service %d = %.1f ns pulse) cell %s%s%s enq@%d\n",
			i+1, s.Line, s.Channel, s.Bank,
			s.TotalTicks(), s.QueueTicks(), s.ServiceTicks(), s.LatNs,
			s.cell(), drain, kind, s.Enqueue); err != nil {
			return err
		}
	}
	return nil
}
