package tracing

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// lifecycle records one full transaction through the collector.
func lifecycle(c *Collector, kind Kind, enq, disp, done uint64) uint64 {
	ref := c.Begin(kind, 0, 1, -1, 42, enq)
	c.Dispatch(ref, disp, 100, 2, 3, 4, true)
	c.End(ref, done)
	return ref
}

func TestSpanLifecycle(t *testing.T) {
	c := NewCollector(Config{SampleEvery: 1, Capacity: 8})
	ref := lifecycle(c, KindDataWrite, 10, 30, 470)
	if ref == 0 {
		t.Fatal("Begin returned 0 with SampleEvery=1")
	}
	spans := c.Spans()
	if len(spans) != 1 {
		t.Fatalf("Spans() = %d spans, want 1", len(spans))
	}
	s := spans[0]
	if s.QueueTicks() != 20 || s.ServiceTicks() != 440 || s.TotalTicks() != 460 {
		t.Errorf("queue/service/total = %d/%d/%d, want 20/440/460",
			s.QueueTicks(), s.ServiceTicks(), s.TotalTicks())
	}
	if s.LatNs != 100 || s.WLBucket != 2 || s.BLBucket != 3 || s.ClrsBucket != 4 || !s.Drain {
		t.Errorf("dispatch parameters not recorded: %+v", s)
	}
	if got := c.Summary(); got.Seen != 1 || got.Sampled != 1 || got.Completed != 1 || got.Evicted != 0 {
		t.Errorf("summary = %+v", got)
	}
}

func TestSampling(t *testing.T) {
	c := NewCollector(Config{SampleEvery: 4, Capacity: 64})
	sampled := 0
	for i := 0; i < 100; i++ {
		if ref := c.Begin(KindDataRead, 0, 0, 0, uint64(i), uint64(i)); ref != 0 {
			sampled++
		}
	}
	if sampled != 25 {
		t.Errorf("sampled %d of 100 with 1-in-4 sampling, want 25", sampled)
	}
	if c.Seen() != 100 || c.Sampled() != 25 {
		t.Errorf("seen/sampled = %d/%d, want 100/25", c.Seen(), c.Sampled())
	}
}

// TestRingEviction checks that a wrapped ring drops updates addressed to
// evicted spans instead of corrupting the slot's new tenant.
func TestRingEviction(t *testing.T) {
	c := NewCollector(Config{SampleEvery: 1, Capacity: 4})
	first := c.Begin(KindDataWrite, 0, 0, -1, 1, 1)
	// Wrap the ring completely: the first span's slot is re-tenanted.
	for i := 0; i < 4; i++ {
		lifecycle(c, KindDataWrite, 100, 110, 120)
	}
	if c.Evicted() == 0 {
		t.Fatal("full wrap evicted nothing")
	}
	// A stale End must not complete (or corrupt) the new tenant.
	before := c.Completed()
	c.End(first, 999)
	if c.Completed() != before {
		t.Error("End on an evicted reference was not dropped")
	}
	for _, s := range c.Spans() {
		if s.Complete == 999 {
			t.Error("stale End mutated a re-tenanted slot")
		}
	}
}

func TestSlowestDigestRanksWritesOnly(t *testing.T) {
	c := NewCollector(Config{SampleEvery: 1, Capacity: 64, SlowestK: 2})
	lifecycle(c, KindDataWrite, 0, 10, 100)   // total 100
	lifecycle(c, KindDataWrite, 0, 10, 500)   // total 500
	lifecycle(c, KindMetaWrite, 0, 10, 300)   // total 300
	lifecycle(c, KindDataRead, 0, 10, 10_000) // reads never rank
	slow := c.Slowest()
	if len(slow) != 2 {
		t.Fatalf("Slowest() = %d spans, want 2", len(slow))
	}
	if slow[0].TotalTicks() != 500 || slow[1].TotalTicks() != 300 {
		t.Errorf("slowest order = %d, %d; want 500, 300", slow[0].TotalTicks(), slow[1].TotalTicks())
	}
	var buf bytes.Buffer
	if err := c.WriteSlowestDigest(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "slowest traced writes") {
		t.Errorf("digest missing header:\n%s", buf.String())
	}
}

func TestOpenSpansExcluded(t *testing.T) {
	c := NewCollector(Config{SampleEvery: 1, Capacity: 8})
	c.Begin(KindDataWrite, 0, 0, -1, 1, 1) // never completed
	lifecycle(c, KindDataWrite, 2, 3, 4)
	if got := len(c.Spans()); got != 1 {
		t.Errorf("Spans() = %d, want 1 (open span leaked)", got)
	}
}

func TestNilCollectorIsSafe(t *testing.T) {
	var c *Collector
	if ref := c.Begin(KindDataWrite, 0, 0, 0, 0, 0); ref != 0 {
		t.Error("nil Begin returned a reference")
	}
	c.Dispatch(1, 0, 0, 0, 0, 0, false)
	c.End(1, 0)
	if c.Spans() != nil || c.Recent(5) != nil || c.Slowest() != nil {
		t.Error("nil accessors returned data")
	}
	if s := c.Summary(); s.Seen != 0 {
		t.Error("nil Summary non-zero")
	}
	var buf bytes.Buffer
	if err := c.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("nil chrome trace is not valid JSON: %v", err)
	}
}

// TestChromeTraceShape validates the trace-event JSON a viewer consumes:
// an object with a traceEvents array holding metadata and X-phase slices
// on the expected tracks.
func TestChromeTraceShape(t *testing.T) {
	c := NewCollector(Config{SampleEvery: 1, Capacity: 64})
	lifecycle(c, KindDataWrite, 4000, 8000, 16000) // 1us queued, 2us service
	ref := c.Begin(KindCoreStall, -1, -1, 3, 0, 0)
	c.End(ref, 4000)

	var buf bytes.Buffer
	if err := c.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name  string         `json:"name"`
			Phase string         `json:"ph"`
			PID   int            `json:"pid"`
			TID   int            `json:"tid"`
			TS    float64        `json:"ts"`
			Dur   float64        `json:"dur"`
			Args  map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid trace JSON: %v", err)
	}
	byName := map[string]int{}
	for _, ev := range doc.TraceEvents {
		byName[ev.Name]++
		switch ev.Name {
		case "queued":
			if ev.TS != 1 || ev.Dur != 1 {
				t.Errorf("queued slice ts=%v dur=%v, want 1/1 us", ev.TS, ev.Dur)
			}
		case "write":
			if ev.TS != 2 || ev.Dur != 2 {
				t.Errorf("write slice ts=%v dur=%v, want 2/2 us", ev.TS, ev.Dur)
			}
			if ev.Args["lat_ns"] == nil {
				t.Error("write slice missing lat_ns arg")
			}
		case "stall":
			if ev.PID != corePID+3 {
				t.Errorf("stall pid = %d, want %d", ev.PID, corePID+3)
			}
		}
	}
	for _, want := range []string{"queued", "write", "stall", "process_name", "thread_name"} {
		if byName[want] == 0 {
			t.Errorf("trace has no %q event", want)
		}
	}
}

func TestRecent(t *testing.T) {
	c := NewCollector(Config{SampleEvery: 1, Capacity: 64})
	for i := uint64(0); i < 10; i++ {
		lifecycle(c, KindDataWrite, i, i+1, i+2)
	}
	r := c.Recent(3)
	if len(r) != 3 {
		t.Fatalf("Recent(3) = %d spans", len(r))
	}
	if r[0].Enqueue != 7 || r[2].Enqueue != 9 {
		t.Errorf("Recent returned wrong window: enqueues %d..%d, want 7..9", r[0].Enqueue, r[2].Enqueue)
	}
}

func TestKindJSONLabels(t *testing.T) {
	b, err := json.Marshal(KindSMBRead)
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != `"smb-read"` {
		t.Errorf("KindSMBRead marshals as %s", b)
	}
}
