// Package tracing records per-transaction lifecycle spans — the
// observability level below internal/metrics' aggregates. Where a
// histogram answers "what did RESET latency look like overall", a span
// answers "why did *this* write take 2632 cycles": it carries the
// enqueue, dispatch and completion cycle of one memory transaction, the
// resolved ⟨WL, BL, C_lrs⟩ timing-table bucket and programmed pulse
// latency, and whether the channel was in write-drain mode at dispatch.
// Core-stall episodes are recorded as spans too, so a Perfetto timeline
// shows the processor side starving against the memory side.
//
// Design constraints mirror package metrics, in order:
//
//   - Hot-path cost. A Collector is wired through the controller with a
//     single nil check per site; recording is a few stores into a
//     preallocated ring slot. Nothing allocates after construction, and
//     spans never feed back into simulation state, so enabling tracing
//     cannot perturb golden determinism.
//   - Bounded memory. Spans live in a fixed-capacity ring; once it
//     wraps, the oldest spans are overwritten (and counted as evicted).
//     Updates addressed to an evicted span are dropped via an ID check,
//     never misattributed to the slot's new tenant.
//   - Sampling. 1-in-N transaction sampling (deterministic, by arrival
//     order) keeps multi-minute runs tractable; N=1 traces everything.
//
// Exports: WriteChromeTrace emits the Chrome trace-event JSON loadable
// in Perfetto/chrome://tracing (one track per channel/bank and per
// core), WriteSlowestDigest prints the slowest-K traced writes, and
// Summary embeds the sampling accounting in run reports. See
// docs/TRACING.md.
package tracing

import (
	"encoding/json"
	"fmt"
	"sort"
)

// Kind classifies a span.
type Kind uint8

const (
	// KindDataWrite is a processor data write through the write queue.
	KindDataWrite Kind = iota
	// KindMetaWrite is an LRS-metadata writeback or maintenance write.
	KindMetaWrite
	// KindDataRead is a processor demand read.
	KindDataRead
	// KindSMBRead is a stale-memory-block read (LADDER-Basic).
	KindSMBRead
	// KindMetaRead is an LRS-metadata line fill.
	KindMetaRead
	// KindCoreStall is a processor-side episode: the span covers the
	// cycles a core could not retire (MLP window full or queue rejection).
	KindCoreStall
	// KindWriteRetry is one program-and-verify reissue of a failed data
	// RESET (fault-injection runs): the span covers the escalated pulse,
	// while the original KindDataWrite span stays open across retries.
	KindWriteRetry
)

// String returns the kind's track label.
func (k Kind) String() string {
	switch k {
	case KindDataWrite:
		return "write"
	case KindMetaWrite:
		return "meta-write"
	case KindDataRead:
		return "read"
	case KindSMBRead:
		return "smb-read"
	case KindMetaRead:
		return "meta-read"
	case KindCoreStall:
		return "stall"
	case KindWriteRetry:
		return "write-retry"
	}
	return "unknown"
}

// MarshalJSON serializes the kind as its label, keeping /spans and
// report output readable.
func (k Kind) MarshalJSON() ([]byte, error) { return json.Marshal(k.String()) }

// Span is one recorded transaction lifecycle. Cycle fields are engine
// clock values (CPU cycles at 4 GHz, 4 ticks per nanosecond); bucket
// fields are timing-table coordinates, -1 when the dimension does not
// apply (reads, schemes without content knowledge).
type Span struct {
	// ID is the collector-assigned monotone identifier (never 0).
	ID   uint64 `json:"id"`
	Kind Kind   `json:"kind"`
	// Channel and Bank place memory transactions; both are -1 for core
	// spans. Bank is the global bank index within the channel.
	Channel int16 `json:"channel"`
	Bank    int16 `json:"bank"`
	// Core is the requesting core (demand reads, stalls); -1 otherwise.
	Core int16 `json:"core"`
	// Line is the line address (or metadata key for metadata traffic).
	Line uint64 `json:"line"`
	// Enqueue, Dispatch and Complete are the lifecycle cycle stamps.
	// Stall spans use Enqueue == Dispatch = episode start.
	Enqueue  uint64 `json:"enqueue_tick"`
	Dispatch uint64 `json:"dispatch_tick"`
	Complete uint64 `json:"complete_tick"`
	// LatNs is the programmed pulse latency for writes (0 for reads and
	// stalls; bank occupancy additionally includes tRCD/tBURST).
	LatNs float64 `json:"lat_ns"`
	// WLBucket, BLBucket and ClrsBucket are the resolved timing-table
	// cell of a dispatched write (-1 when unknown).
	WLBucket   int8 `json:"wl_bucket"`
	BLBucket   int8 `json:"bl_bucket"`
	ClrsBucket int8 `json:"clrs_bucket"`
	// Drain reports whether the channel was in write-drain mode at
	// dispatch.
	Drain bool `json:"drain"`

	// done marks a completed span; open spans are excluded from every
	// accessor and export.
	done bool
}

// QueueTicks returns the cycles spent waiting in a queue.
func (s *Span) QueueTicks() uint64 { return s.Dispatch - s.Enqueue }

// ServiceTicks returns the cycles from dispatch to completion.
func (s *Span) ServiceTicks() uint64 { return s.Complete - s.Dispatch }

// TotalTicks returns the enqueue-to-completion lifetime.
func (s *Span) TotalTicks() uint64 { return s.Complete - s.Enqueue }

// IsWrite reports whether the span is a data or metadata write — the
// population the slowest-writes digest ranks.
func (s *Span) IsWrite() bool { return s.Kind == KindDataWrite || s.Kind == KindMetaWrite }

// Config sizes a Collector.
type Config struct {
	// SampleEvery traces one in every N transactions (<=1 = all).
	SampleEvery int
	// Capacity is the span ring size (0 = 65536).
	Capacity int
	// SlowestK is how many slowest writes survive ring eviction for the
	// end-of-run digest (0 = 16; negative disables).
	SlowestK int
}

// DefaultCapacity is the span ring size when Config.Capacity is zero.
const DefaultCapacity = 65536

// DefaultSlowestK is the slowest-writes digest size when Config.SlowestK
// is zero.
const DefaultSlowestK = 16

// Collector accumulates spans for one simulation run. Like a metrics
// Registry it is single-goroutine on the record path (a run is
// single-threaded); every method is safe on a nil receiver, so
// un-traced embeddings pay one branch per site.
type Collector struct {
	sampleEvery uint64
	ring        []Span

	seen      uint64 // transactions offered (sampling denominator)
	sampled   uint64 // spans begun
	completed uint64 // spans finished
	evicted   uint64 // ring slots overwritten while occupied

	nextID uint64

	// slowest keeps the K slowest completed writes by total lifetime,
	// sorted ascending, independent of ring eviction.
	slowest []Span
	k       int
}

// NewCollector builds a collector.
func NewCollector(cfg Config) *Collector {
	if cfg.SampleEvery < 1 {
		cfg.SampleEvery = 1
	}
	if cfg.Capacity <= 0 {
		cfg.Capacity = DefaultCapacity
	}
	k := cfg.SlowestK
	if k == 0 {
		k = DefaultSlowestK
	}
	if k < 0 {
		k = 0
	}
	return &Collector{
		sampleEvery: uint64(cfg.SampleEvery),
		ring:        make([]Span, cfg.Capacity),
		k:           k,
		slowest:     make([]Span, 0, k),
	}
}

// SampleEvery returns the sampling period (0 on a nil receiver).
func (c *Collector) SampleEvery() int {
	if c == nil {
		return 0
	}
	return int(c.sampleEvery)
}

// Seen returns the number of transactions offered to the collector.
func (c *Collector) Seen() uint64 {
	if c == nil {
		return 0
	}
	return c.seen
}

// Sampled returns the number of spans begun.
func (c *Collector) Sampled() uint64 {
	if c == nil {
		return 0
	}
	return c.sampled
}

// Completed returns the number of spans that reached completion.
func (c *Collector) Completed() uint64 {
	if c == nil {
		return 0
	}
	return c.completed
}

// Evicted returns how many spans the ring overwrote.
func (c *Collector) Evicted() uint64 {
	if c == nil {
		return 0
	}
	return c.evicted
}

// Begin offers one transaction to the collector and, when the sampling
// counter selects it, opens a span. The returned reference is 0 when the
// transaction was not sampled (or the receiver is nil); Dispatch/End
// ignore zero references, so call sites need no second branch.
func (c *Collector) Begin(kind Kind, channel, bank, core int, line uint64, now uint64) uint64 {
	if c == nil {
		return 0
	}
	c.seen++
	if c.seen%c.sampleEvery != 0 {
		return 0
	}
	c.nextID++
	id := c.nextID
	slot := &c.ring[(id-1)%uint64(len(c.ring))]
	if slot.ID != 0 {
		c.evicted++
	}
	*slot = Span{
		ID:         id,
		Kind:       kind,
		Channel:    int16(channel),
		Bank:       int16(bank),
		Core:       int16(core),
		Line:       line,
		Enqueue:    now,
		Dispatch:   now,
		WLBucket:   -1,
		BLBucket:   -1,
		ClrsBucket: -1,
	}
	c.sampled++
	return id
}

// span resolves a reference, returning nil for unsampled, evicted or
// foreign references.
func (c *Collector) span(ref uint64) *Span {
	if c == nil || ref == 0 {
		return nil
	}
	s := &c.ring[(ref-1)%uint64(len(c.ring))]
	if s.ID != ref {
		return nil
	}
	return s
}

// Dispatch stamps a span's dispatch cycle and resolved write parameters:
// the programmed latency, the timing-table cell (pass -1 for dimensions
// without meaning) and the channel's drain mode.
func (c *Collector) Dispatch(ref uint64, now uint64, latNs float64, wl, bl, clrs int, drain bool) {
	s := c.span(ref)
	if s == nil {
		return
	}
	s.Dispatch = now
	s.LatNs = latNs
	s.WLBucket, s.BLBucket, s.ClrsBucket = int8(wl), int8(bl), int8(clrs)
	s.Drain = drain
}

// End completes a span at the given cycle. Completed writes additionally
// compete for the slowest-K digest.
func (c *Collector) End(ref uint64, now uint64) {
	s := c.span(ref)
	if s == nil {
		return
	}
	s.Complete = now
	s.done = true
	c.completed++
	if c.k > 0 && s.IsWrite() {
		c.offerSlowest(*s)
	}
}

// offerSlowest inserts a completed write into the ascending slowest-K
// list, evicting the quickest when full. K is small, so insertion into a
// sorted slice beats heap bookkeeping.
func (c *Collector) offerSlowest(s Span) {
	d := s.TotalTicks()
	if len(c.slowest) == c.k {
		if d <= c.slowest[0].TotalTicks() {
			return
		}
		// Evict the quickest by shifting down in place: reslicing off the
		// front would walk the slice along its backing array and force the
		// append below to reallocate once the spare capacity runs out.
		copy(c.slowest, c.slowest[1:])
		c.slowest = c.slowest[:c.k-1]
	}
	i := sort.Search(len(c.slowest), func(i int) bool { return c.slowest[i].TotalTicks() > d })
	c.slowest = append(c.slowest, Span{})
	copy(c.slowest[i+1:], c.slowest[i:])
	c.slowest[i] = s
}

// Slowest returns the slowest completed writes, slowest first.
func (c *Collector) Slowest() []Span {
	if c == nil {
		return nil
	}
	out := make([]Span, len(c.slowest))
	for i, s := range c.slowest {
		out[len(out)-1-i] = s
	}
	return out
}

// Spans returns every completed span still resident in the ring, oldest
// first.
func (c *Collector) Spans() []Span {
	if c == nil {
		return nil
	}
	out := make([]Span, 0, len(c.ring))
	c.eachDone(func(s *Span) { out = append(out, *s) })
	return out
}

// Recent returns the newest n completed spans, oldest first.
func (c *Collector) Recent(n int) []Span {
	spans := c.Spans()
	if len(spans) > n {
		spans = spans[len(spans)-n:]
	}
	return spans
}

// eachDone visits resident completed spans in ID (arrival) order.
func (c *Collector) eachDone(fn func(*Span)) {
	if c.nextID == 0 {
		return
	}
	first := uint64(1)
	if c.nextID > uint64(len(c.ring)) {
		first = c.nextID - uint64(len(c.ring)) + 1
	}
	for id := first; id <= c.nextID; id++ {
		s := &c.ring[(id-1)%uint64(len(c.ring))]
		if s.ID == id && s.done {
			fn(s)
		}
	}
}

// Summary is the report-embedded accounting of one traced run.
type Summary struct {
	// SampleEvery is the 1-in-N sampling period.
	SampleEvery int `json:"sample_every"`
	// Seen counts transactions offered; Sampled of those got spans;
	// Completed of those finished; Evicted were overwritten by ring wrap.
	Seen      uint64 `json:"seen"`
	Sampled   uint64 `json:"sampled"`
	Completed uint64 `json:"completed"`
	Evicted   uint64 `json:"evicted"`
	// Slowest lists the slowest traced writes, slowest first.
	Slowest []Span `json:"slowest,omitempty"`
}

// Summary freezes the collector's accounting.
func (c *Collector) Summary() Summary {
	if c == nil {
		return Summary{}
	}
	return Summary{
		SampleEvery: int(c.sampleEvery),
		Seen:        c.seen,
		Sampled:     c.sampled,
		Completed:   c.completed,
		Evicted:     c.evicted,
		Slowest:     c.Slowest(),
	}
}

// cell formats the resolved timing-table coordinate.
func (s *Span) cell() string {
	if s.WLBucket < 0 {
		return "-"
	}
	if s.ClrsBucket < 0 {
		return fmt.Sprintf("⟨%d,%d,-⟩", s.WLBucket, s.BLBucket)
	}
	return fmt.Sprintf("⟨%d,%d,%d⟩", s.WLBucket, s.BLBucket, s.ClrsBucket)
}
