//go:build !race

package tracing

import "testing"

// TestSpanEmissionAllocFree pins the collector's hot-path contract from
// the package comment: after construction, Begin/Dispatch/End allocate
// nothing — spans land in the preallocated ring and the slowest-K digest
// shifts in place instead of walking off its backing array. The race
// detector instruments allocations, so the file is excluded under -race.
func TestSpanEmissionAllocFree(t *testing.T) {
	c := NewCollector(Config{SampleEvery: 1, Capacity: 1024, SlowestK: 16})
	// Warm-up: fill the slowest-K digest so the measured iterations
	// exercise the eviction path, not the initial growth.
	now := uint64(0)
	emit := func() {
		ref := c.Begin(KindDataWrite, 0, 0, -1, 0x40, now)
		c.Dispatch(ref, now+10, 152.5, 3, 2, 4, false)
		// Monotonically slower writes force an insert+evict every time.
		c.End(ref, now+20+now/8)
		now += 32
	}
	for i := 0; i < 64; i++ {
		emit()
	}
	if n := testing.AllocsPerRun(200, emit); n != 0 {
		t.Fatalf("span emission allocates %.0f per transaction, want 0", n)
	}
}

// TestStallSpanAllocFree covers the read/stall flavor (no digest
// competition) for completeness.
func TestStallSpanAllocFree(t *testing.T) {
	c := NewCollector(Config{SampleEvery: 1, Capacity: 256})
	now := uint64(0)
	if n := testing.AllocsPerRun(200, func() {
		ref := c.Begin(KindCoreStall, -1, -1, 0, 0, now)
		c.End(ref, now+5)
		now += 8
	}); n != 0 {
		t.Fatalf("stall span emission allocates %.0f per episode, want 0", n)
	}
}
