package memctrl

import (
	"math/rand"
	"sync"
	"testing"

	"ladder/internal/bits"
	"ladder/internal/circuit"
	"ladder/internal/core"
	"ladder/internal/energy"
	"ladder/internal/remap"
	"ladder/internal/reram"
	"ladder/internal/timing"
)

var (
	tablesOnce sync.Once
	testTables *timing.TableSet
	tablesErr  error
)

func testGeometry() reram.Geometry {
	return reram.Geometry{
		Channels:         2,
		RanksPerChannel:  2,
		BanksPerRank:     8,
		MatGroupsPerBank: 4,
		MatRows:          64,
	}
}

func testEnv(t *testing.T) *core.Env {
	t.Helper()
	tablesOnce.Do(func() {
		p := circuit.DefaultParams()
		p.N = 64
		testTables, tablesErr = timing.NewTableSet(p)
	})
	if tablesErr != nil {
		t.Fatal(tablesErr)
	}
	store, err := reram.NewStore(testGeometry())
	if err != nil {
		t.Fatal(err)
	}
	return &core.Env{Geom: testGeometry(), Store: store, Tables: testTables, Stats: &core.Stats{}}
}

type harness struct {
	env   *core.Env
	ctrl  *Controller
	meter *energy.Meter
	done  []*ReadReq
	now   uint64
}

func newHarness(t *testing.T, makeScheme func(*core.Env) core.Scheme) *harness {
	t.Helper()
	env := testEnv(t)
	meter, err := energy.NewMeter(energy.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	h := &harness{env: env, meter: meter}
	ctrl, err := NewController(DefaultConfig(), env, makeScheme(env), meter, func(r *ReadReq, _ uint64) {
		h.done = append(h.done, r)
	})
	if err != nil {
		t.Fatal(err)
	}
	h.ctrl = ctrl
	return h
}

func (h *harness) run(ticks int) {
	for i := 0; i < ticks; i++ {
		h.ctrl.Tick(h.now)
		h.now++
	}
}

func (h *harness) runUntilIdle(t *testing.T, maxTicks int) {
	t.Helper()
	for i := 0; i < maxTicks; i++ {
		if h.ctrl.Idle() {
			return
		}
		h.ctrl.Tick(h.now)
		h.now++
	}
	t.Fatalf("controller not idle after %d ticks (rdq=%d wrq=%d)", maxTicks, h.ctrl.ReadQueueLen(), h.ctrl.WriteQueueLen())
}

func baselineScheme(env *core.Env) core.Scheme { return core.NewBaseline(env) }

func estScheme(t *testing.T) func(*core.Env) core.Scheme {
	return func(env *core.Env) core.Scheme {
		s, err := core.NewEst(env)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := DefaultConfig()
	bad.WriteLowEntries = 60
	if err := bad.Validate(); err == nil {
		t.Fatal("low watermark above high should be rejected")
	}
	bad = DefaultConfig()
	bad.RDQSize = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("zero queue should be rejected")
	}
}

func TestReadCompletesWithFixedLatency(t *testing.T) {
	h := newHarness(t, baselineScheme)
	if !h.ctrl.EnqueueRead(0, 0, h.now) {
		t.Fatal("enqueue failed")
	}
	h.runUntilIdle(t, 10_000)
	if len(h.done) != 1 {
		t.Fatalf("reads done = %d", len(h.done))
	}
	// Unloaded read latency: tRCD + tCL + tBURST = 130 ticks = 32.5 ns.
	want := 32.5
	if got := h.env.Stats.AvgReadLatencyNs(); got < want || got > want+1 {
		t.Fatalf("read latency = %v ns, want ≈%v", got, want)
	}
}

func TestBaselineWriteTakesWorstCase(t *testing.T) {
	h := newHarness(t, baselineScheme)
	if !h.ctrl.EnqueueWrite(0, bits.Line{}, h.now) {
		t.Fatal("enqueue failed")
	}
	h.runUntilIdle(t, 100_000)
	// Service = tRCD + tWR(worst) + tBURST.
	want := h.env.Tables.WorstNs + float64(DefaultConfig().TRCD+DefaultConfig().TBurst)/TicksPerNs
	got := h.env.Stats.AvgWriteServiceNs()
	if got < want-1 || got > want+1 {
		t.Fatalf("write service = %v ns, want ≈%v", got, want)
	}
}

func TestWriteAppliesFNWAndPersists(t *testing.T) {
	h := newHarness(t, baselineScheme)
	var data bits.Line
	for i := range data {
		data[i] = byte(i)
	}
	h.ctrl.EnqueueWrite(5, data, h.now)
	h.runUntilIdle(t, 100_000)
	got, err := h.ctrl.ReadLineLogical(5)
	if err != nil {
		t.Fatal(err)
	}
	if got != data {
		t.Fatal("logical read-back mismatch after FNW")
	}
	if h.env.Stats.FNWUnits == 0 {
		t.Fatal("FNW accounting missing")
	}
}

func TestFNWReducesSecondWriteChanges(t *testing.T) {
	h := newHarness(t, baselineScheme)
	var dense bits.Line
	for i := range dense {
		dense[i] = 0xff
	}
	h.ctrl.EnqueueWrite(0, dense, h.now)
	h.runUntilIdle(t, 100_000)
	first := h.env.Stats.BitChanges
	// Writing the complement: classic FNW should flip every unit and pay
	// only the flip bits.
	h.ctrl.EnqueueWrite(0, bits.Line{}, h.now)
	h.runUntilIdle(t, 100_000)
	second := h.env.Stats.BitChanges - first
	if second > bits.FNWUnits {
		t.Fatalf("second write changed %d bits; FNW should cap at %d", second, bits.FNWUnits)
	}
	if got, err := h.ctrl.ReadLineLogical(0); err != nil || got != (bits.Line{}) {
		t.Fatalf("read-back after flip: %v %v", got, err)
	}
}

func TestBankSerializesOperations(t *testing.T) {
	h := newHarness(t, baselineScheme)
	// Two reads to the same wordline group (same bank): strictly
	// serialized.
	h.ctrl.EnqueueRead(0, 0, h.now)
	h.ctrl.EnqueueRead(0, 1, h.now)
	h.runUntilIdle(t, 10_000)
	if len(h.done) != 2 {
		t.Fatalf("reads done = %d", len(h.done))
	}
	perRead := 32.5
	if got := h.env.Stats.ReadLatencyNs; got < 3*perRead-1 {
		t.Fatalf("total latency %v suggests no serialization (want ≈%v)", got, 3*perRead)
	}
}

func TestParallelBanksOverlap(t *testing.T) {
	h := newHarness(t, baselineScheme)
	// Lines 0 and 2*64: rows 0 and 2 -> same channel walk? Row stride 1
	// changes channel; use rows 0 and 2 decoded on this controller
	// regardless (the controller does not check channel).
	h.ctrl.EnqueueRead(0, 0, h.now)
	h.ctrl.EnqueueRead(0, 2*reram.BlocksPerRow, h.now)
	h.runUntilIdle(t, 10_000)
	perRead := 32.5
	got := h.env.Stats.ReadLatencyNs
	if got > 2*perRead+2 {
		t.Fatalf("total latency %v suggests serialization across distinct banks", got)
	}
}

func TestWriteDrainModeEngagesAtWatermark(t *testing.T) {
	h := newHarness(t, baselineScheme)
	cfg := DefaultConfig()
	high := int(cfg.WriteHighFrac * float64(cfg.WRQSize)) // 54
	for i := 0; i < high+1; i++ {
		// Spread across rows to use many banks.
		if !h.ctrl.EnqueueWrite(uint64(i)*reram.BlocksPerRow, bits.Line{}, h.now) {
			t.Fatalf("write %d rejected", i)
		}
	}
	h.ctrl.Tick(h.now)
	if !h.ctrl.InWriteMode() {
		t.Fatal("controller should enter write mode above the high watermark")
	}
	// Queue a read: it must not complete while heavy draining is in
	// progress and banks are saturated with worst-case writes.
	h.ctrl.EnqueueRead(0, 0, h.now)
	h.run(400) // 100 ns: less than one write service
	if len(h.done) != 0 {
		t.Fatal("demand read serviced during early drain despite busy banks")
	}
	h.runUntilIdle(t, 2_000_000)
	if len(h.done) != 1 {
		t.Fatal("read eventually completes")
	}
	if h.ctrl.InWriteMode() {
		t.Fatal("drain should end below the low watermark")
	}
}

func TestWriteQueueBackpressure(t *testing.T) {
	h := newHarness(t, baselineScheme)
	cfg := DefaultConfig()
	accepted := 0
	for i := 0; i < cfg.WRQSize+10; i++ {
		if h.ctrl.EnqueueWrite(uint64(i), bits.Line{}, h.now) {
			accepted++
		}
	}
	if accepted != cfg.WRQSize {
		t.Fatalf("accepted %d writes, want %d", accepted, cfg.WRQSize)
	}
}

func TestReadQueueBackpressure(t *testing.T) {
	h := newHarness(t, baselineScheme)
	cfg := DefaultConfig()
	accepted := 0
	for i := 0; i < cfg.RDQSize+5; i++ {
		if h.ctrl.EnqueueRead(0, uint64(i), h.now) {
			accepted++
		}
	}
	if accepted != cfg.RDQSize {
		t.Fatalf("accepted %d reads, want %d", accepted, cfg.RDQSize)
	}
}

func TestEstEndToEndThroughController(t *testing.T) {
	h := newHarness(t, estScheme(t))
	var data bits.Line
	for i := range data {
		data[i] = byte(i * 3)
	}
	if !h.ctrl.EnqueueWrite(0, data, h.now) {
		t.Fatal("enqueue failed")
	}
	h.runUntilIdle(t, 1_000_000)
	if h.env.Stats.MetaReads != 1 {
		t.Fatalf("metadata reads = %d, want 1", h.env.Stats.MetaReads)
	}
	if h.env.Stats.SMBReads != 0 {
		t.Fatal("est must not issue SMB reads")
	}
	// The stored payload is shifted; the logical read path must recover
	// the original.
	got, err := h.ctrl.ReadLineLogical(0)
	if err != nil {
		t.Fatal(err)
	}
	if got != data {
		t.Fatal("round trip through shift+FNW failed")
	}
	// A second write to the same page hits the cached metadata line.
	if !h.ctrl.EnqueueWrite(1, data, h.now) {
		t.Fatal("enqueue failed")
	}
	h.runUntilIdle(t, 1_000_000)
	if h.env.Stats.MetaReads != 1 {
		t.Fatalf("second write should not refetch metadata (reads = %d)", h.env.Stats.MetaReads)
	}
	if h.env.Stats.MetaCacheHits == 0 {
		t.Fatal("expected metadata cache hit")
	}
}

func TestEstFasterThanBaselineOnSparseData(t *testing.T) {
	runOne := func(mk func(*core.Env) core.Scheme) float64 {
		h := newHarness(t, mk)
		var sparse bits.Line
		sparse[3] = 0x01
		for i := 0; i < 20; i++ {
			h.ctrl.EnqueueWrite(uint64(i), sparse, h.now)
			h.runUntilIdle(t, 1_000_000)
		}
		return h.env.Stats.AvgWriteServiceNs()
	}
	base := runOne(baselineScheme)
	est := runOne(estScheme(t))
	// Note: the 64×64 test crossbar exaggerates the partial-counter floor
	// (64 blocks × bound 1 saturates the content axis), so only the
	// ordering is asserted here; full-scale factor checks live in the sim
	// package tests.
	if est >= base {
		t.Fatalf("est %v ns should beat baseline %v ns on sparse data", est, base)
	}
}

func TestMetaWritebackTravelsThroughWriteQueue(t *testing.T) {
	h := newHarness(t, estScheme(t))
	// Touch many distinct pages so metadata lines churn and dirty
	// evictions occur. The test cache is the default 64 KB (1024 lines),
	// so exceed that footprint.
	var data bits.Line
	data[0] = 0xff
	pages := 1200
	for i := 0; i < pages; i++ {
		for !h.ctrl.EnqueueWrite(uint64(i)*reram.BlocksPerRow, data, h.now) {
			h.ctrl.Tick(h.now)
			h.now++
		}
		h.ctrl.Tick(h.now)
		h.now++
	}
	h.runUntilIdle(t, 20_000_000)
	if h.env.Stats.MetaWrites == 0 {
		t.Fatal("expected dirty metadata evictions")
	}
}

func TestEnergyMeterSeesTraffic(t *testing.T) {
	h := newHarness(t, baselineScheme)
	h.ctrl.EnqueueRead(0, 0, h.now)
	h.ctrl.EnqueueWrite(1, bits.Line{}, h.now)
	h.runUntilIdle(t, 100_000)
	if h.meter.Reads != 1 || h.meter.Writes != 1 {
		t.Fatalf("meter reads=%d writes=%d", h.meter.Reads, h.meter.Writes)
	}
	if h.meter.WriteNJ <= h.meter.ReadNJ {
		t.Fatal("a worst-case write should cost more than a read")
	}
}

func TestEnqueueMaintenanceOccupiesBank(t *testing.T) {
	h := newHarness(t, baselineScheme)
	loc, err := h.env.Geom.Decode(0)
	if err != nil {
		t.Fatal(err)
	}
	h.ctrl.EnqueueMaintenance(loc, h.now)
	if h.ctrl.Idle() {
		t.Fatal("maintenance write should keep the controller busy")
	}
	h.runUntilIdle(t, 100_000)
	// Maintenance writes are metered as array writes but are not data
	// writes.
	if h.env.Stats.DataWrites != 0 {
		t.Fatal("maintenance must not count as a data write")
	}
	if h.meter.Writes != 1 {
		t.Fatalf("meter writes = %d, want 1", h.meter.Writes)
	}
}

// TestDecoderGapShiftChangesTiming pins the decoder as the controller's
// single resolution point: rotating the start-gap mapping relocates the
// same logical write to a farther wordline, which a location-aware
// scheme must observe as a slower write.
func TestDecoderGapShiftChangesTiming(t *testing.T) {
	runOne := func(rotations int) float64 {
		env := testEnv(t)
		meter, err := energy.NewMeter(energy.DefaultParams())
		if err != nil {
			t.Fatal(err)
		}
		ctrl, err := NewController(DefaultConfig(), env, core.NewLocationAware(env), meter, nil)
		if err != nil {
			t.Fatal(err)
		}
		// ~64 segments so a full rotation count maps onto wordline offsets.
		segRows := int(env.Geom.Rows()) / 64
		dec, err := remap.NewDecoder(remap.Config{
			Geom:           env.Geom,
			TicksPerNs:     TicksPerNs,
			GapSegmentRows: segRows,
			GapPeriod:      1,
			SpareRows:      0,
		})
		if err != nil {
			t.Fatal(err)
		}
		ctrl.SetDecoder(dec)
		// One full rotation (segments+1 gap moves) advances every
		// segment's physical slot by one wordline.
		segments := int(env.Geom.Rows())/segRows + 1
		for i := 0; i < rotations*(segments+1); i++ {
			dec.RecordWrite()
		}
		ctrl.EnqueueWrite(0, bits.Line{}, 0)
		for i := uint64(0); !ctrl.Idle(); i++ {
			ctrl.Tick(i)
		}
		return env.Stats.AvgWriteServiceNs()
	}
	near := runOne(0)
	far := runOne(63)
	if far <= near {
		t.Fatalf("gap-rotated write %v ns should be slower than identity mapping %v ns", far, near)
	}
}

// TestDecoderSparePenaltyChargedAtDispatch pins the indirection-penalty
// model: an access to a spare-remapped row pays exactly the configured
// decoder latency on top of its normal service time, charged when the
// operation dispatches.
func TestDecoderSparePenaltyChargedAtDispatch(t *testing.T) {
	const penaltyNs = 10.0
	runOne := func(doRemap bool) float64 {
		h := newHarness(t, baselineScheme)
		dec, err := remap.NewDecoder(remap.Config{
			Geom:       h.env.Geom,
			TicksPerNs: TicksPerNs,
			SpareRows:  4,
			PenaltyNs:  penaltyNs,
		})
		if err != nil {
			t.Fatal(err)
		}
		h.ctrl.SetDecoder(dec)
		if doRemap {
			loc, err := h.env.Geom.Decode(0)
			if err != nil {
				t.Fatal(err)
			}
			if err := dec.RemapSpare(0, h.env.Geom.GlobalRow(loc), 0); err != nil {
				t.Fatal(err)
			}
		}
		h.ctrl.EnqueueWrite(0, bits.Line{}, h.now)
		h.runUntilIdle(t, 100_000)
		if doRemap {
			if st := dec.Stats(); st.PenaltyTicks == 0 {
				t.Fatal("remapped write charged no penalty ticks")
			}
		}
		return h.env.Stats.AvgWriteServiceNs()
	}
	base := runOne(false)
	remapped := runOne(true)
	if diff := remapped - base; diff < penaltyNs-0.5 || diff > penaltyNs+0.5 {
		t.Fatalf("remapped write pays %v ns extra, want ≈%v ns decoder penalty", diff, penaltyNs)
	}
}

func TestReadLatencyPercentilesPopulated(t *testing.T) {
	h := newHarness(t, baselineScheme)
	for i := uint64(0); i < 8; i++ {
		h.ctrl.EnqueueRead(0, i*64, h.now)
	}
	h.runUntilIdle(t, 100_000)
	if p := h.env.Stats.ReadLatencyPercentile(0.99); p <= 0 {
		t.Fatalf("p99 = %v", p)
	}
}

// TestControllerFuzzInvariants drives random interleavings of enqueues
// and ticks against every scheme and checks global invariants: queues
// stay bounded, the controller always drains to idle, every accepted
// write eventually persists, and read-backs decode to the written data.
func TestControllerFuzzInvariants(t *testing.T) {
	schemes := map[string]func(*core.Env) core.Scheme{
		"baseline": baselineScheme,
		"est":      estScheme(t),
		"basic": func(env *core.Env) core.Scheme {
			s, err := core.NewBasic(env)
			if err != nil {
				t.Fatal(err)
			}
			return s
		},
		"hybrid": func(env *core.Env) core.Scheme {
			s, err := core.NewHybrid(env)
			if err != nil {
				t.Fatal(err)
			}
			return s
		},
	}
	for name, mk := range schemes {
		t.Run(name, func(t *testing.T) {
			h := newHarness(t, mk)
			rng := rand.New(rand.NewSource(1234))
			expected := map[uint64]bits.Line{}
			cfg := DefaultConfig()
			lines := h.env.Geom.Lines()
			for step := 0; step < 30_000; step++ {
				switch rng.Intn(4) {
				case 0:
					line := uint64(rng.Intn(2000)) % lines
					var data bits.Line
					rng.Read(data[:])
					if h.ctrl.EnqueueWrite(line, data, h.now) {
						expected[line] = data
					}
				case 1:
					h.ctrl.EnqueueRead(0, uint64(rng.Intn(2000))%lines, h.now)
				default:
					h.ctrl.Tick(h.now)
					h.now++
				}
				if h.ctrl.ReadQueueLen() > cfg.RDQSize {
					t.Fatalf("step %d: RDQ overflow (%d)", step, h.ctrl.ReadQueueLen())
				}
				if h.ctrl.WriteQueueLen() > cfg.WRQSize {
					t.Fatalf("step %d: WRQ overflow (%d)", step, h.ctrl.WriteQueueLen())
				}
			}
			h.runUntilIdle(t, 50_000_000)
			for line, want := range expected {
				got, err := h.ctrl.ReadLineLogical(line)
				if err != nil {
					t.Fatal(err)
				}
				if got != want {
					t.Fatalf("line %d: read-back mismatch after fuzz", line)
				}
			}
			// The incremental LRS counters must still agree with a recount.
			inc, err := h.env.Store.RowCounters(0)
			if err != nil {
				t.Fatal(err)
			}
			rec, err := h.env.Store.RecountRow(0)
			if err != nil {
				t.Fatal(err)
			}
			if inc != rec {
				t.Fatal("row counters diverged from recount after fuzz")
			}
		})
	}
}
