// Package memctrl implements the per-channel ReRAM memory controller: a
// 32-entry read queue and 64-entry write queue, read-priority scheduling
// with write draining above an 85% high watermark (paper Table 2), bank
// timing, and the device-side datapath (Flip-N-Write bridge). It drives a
// core.Scheme to obtain per-write RESET latencies and to maintain the
// LRS-metadata machinery.
//
// A controller optionally attaches to a metrics.Registry (Instrument):
// queue-occupancy gauges, drain-mode counters, and a per-RESET latency
// histogram attributed to timing-table cells — the observable form of the
// paper's Figure 11 latency surface. See docs/METRICS.md for the catalog.
package memctrl

import (
	"fmt"
	"math"
	mathbits "math/bits"

	"ladder/internal/bits"
	"ladder/internal/core"
	"ladder/internal/energy"
	"ladder/internal/engine"
	"ladder/internal/fault"
	"ladder/internal/metrics"
	"ladder/internal/remap"
	"ladder/internal/reram"
	"ladder/internal/timing"
	"ladder/internal/tracing"
)

// TicksPerNs is the simulation resolution: 4 ticks per nanosecond, i.e.
// one tick per CPU cycle at 4 GHz.
const TicksPerNs = 4

// Config sizes the controller (paper Table 2).
type Config struct {
	// RDQSize and WRQSize bound the read and write queues.
	RDQSize, WRQSize int
	// WriteHighFrac is the write-queue occupancy that triggers write
	// drain mode (0.85).
	WriteHighFrac float64
	// WriteLowEntries is the occupancy at which drain mode ends.
	WriteLowEntries int
	// TRCD, TCL, TBurst are fixed timing components in ticks.
	TRCD, TCL, TBurst int
}

// DefaultConfig returns the paper's controller configuration: tRCD = tCL
// = 13.75 ns, tBURST = 5 ns, 85% write switching threshold.
func DefaultConfig() Config {
	return Config{
		RDQSize:         32,
		WRQSize:         64,
		WriteHighFrac:   0.85,
		WriteLowEntries: 16,
		TRCD:            55,
		TCL:             55,
		TBurst:          20,
	}
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	switch {
	case c.RDQSize <= 0 || c.WRQSize <= 0:
		return fmt.Errorf("memctrl: queue sizes must be positive")
	case c.WriteHighFrac <= 0 || c.WriteHighFrac > 1:
		return fmt.Errorf("memctrl: WriteHighFrac %v out of (0,1]", c.WriteHighFrac)
	case c.WriteLowEntries < 0 || float64(c.WriteLowEntries) >= c.WriteHighFrac*float64(c.WRQSize):
		return fmt.Errorf("memctrl: low watermark %d must sit below the high watermark", c.WriteLowEntries)
	case c.TRCD < 0 || c.TCL < 0 || c.TBurst < 0:
		return fmt.Errorf("memctrl: timing components must be non-negative")
	}
	return nil
}

// ReadKind classifies read-queue entries (the paper extends each entry
// with a type flag).
type ReadKind int

const (
	// ReadData is a processor demand read.
	ReadData ReadKind = iota
	// ReadSMB is a stale-memory-block read issued for LADDER-Basic.
	ReadSMB
	// ReadMeta is an LRS-metadata line read.
	ReadMeta
)

// ReadReq is one read-queue entry.
type ReadReq struct {
	Kind ReadKind
	// Line is the data line address (ReadData/ReadSMB) or the metadata
	// key (ReadMeta).
	Line uint64
	Loc  reram.Location
	// Core identifies the requesting core for demand reads.
	Core int
	// Target is the write-queue entry an SMB read feeds.
	Target *core.WriteRequest
	// EnqueueTick timestamps arrival.
	EnqueueTick uint64
	// TraceRef is the entry's tracing span reference (0 when unsampled).
	TraceRef uint64
}

// busyOp is an operation occupying a bank.
type busyOp struct {
	finish uint64
	read   *ReadReq
	write  *core.WriteRequest
	latNs  float64
	// retryRef is the tracing span of the escalated reissue pulse this op
	// represents (0 for first-attempt pulses). The original write span
	// stays open across the whole program-and-verify sequence.
	retryRef uint64
}

// ReadDoneFunc is invoked when a demand read's data returns.
type ReadDoneFunc func(req *ReadReq, now uint64)

// Controller is one channel's memory controller.
type Controller struct {
	cfg    Config
	env    *core.Env
	scheme core.Scheme
	meter  *energy.Meter

	rdq        []*ReadReq
	wrq        []*core.WriteRequest
	auxPending []*ReadReq           // aux reads awaiting RDQ space
	wbPending  []*core.WriteRequest // metadata writebacks awaiting WRQ space
	bankBusy   []uint64             // busy-until tick per bank
	inflight   []busyOp
	writeMode  bool
	onReadDone ReadDoneFunc

	// flips is the device-side FNW bridge state: the stored flip mask per
	// line address.
	flips map[uint64]uint8

	// freeReads/freeWrites recycle request objects: the controller retires
	// requests strictly after their last reference drops (reads at
	// delivery, writes after scheme completion), so the steady state
	// allocates nothing per transaction.
	freeReads  []*ReadReq
	freeWrites []*core.WriteRequest

	// dec, when set, is the programmable address decoder: the single
	// logical→physical resolution point on the access path (vertical
	// wear leveling applies here — the paper places wear-leveling
	// translation before LADDER, Figure 18a — and spare-row indirection
	// penalties are charged through it at dispatch).
	dec *remap.Decoder

	// inj, when set, injects write faults at pulse completion and drives
	// the program-and-verify retry loop. Nil keeps the datapath untouched
	// (one pointer test per write completion).
	inj *fault.Injector
	// reissue buffers escalated retry pulses created while
	// completeFinished iterates inflight; merged back after the loop so
	// the in-place filter never observes appends.
	reissue []busyOp
	// faultErr latches the first unrecoverable fault (spare-row pool
	// exhaustion); the simulation aborts on it.
	faultErr error

	banksPerRank int

	// Observability instruments (nil until Instrument is called; every
	// observation method is nil-safe). See docs/METRICS.md for the
	// catalog.
	instrumented bool
	mRDQOcc      *metrics.Gauge     // sampled read-queue occupancy
	mWRQOcc      *metrics.Gauge     // sampled write-queue occupancy
	mDrains      *metrics.Counter   // write-drain-mode entries
	mResetHist   *metrics.Histogram // per-data-RESET latency (ns)
	mResetCells  *metrics.Grid      // RESETs per timing-table (WL,BL) cell
	mMetaIssued  *metrics.Counter   // metadata/maintenance writes issued
	mFaults      *metrics.Counter   // injected write faults (transient + permanent)
	mRetries     *metrics.Counter   // program-and-verify reissues
	mRemaps      *metrics.Counter   // rows remapped to the spare pool
	mExhausted   *metrics.Counter   // writes whose retry budget ran out
	mRetryHist   *metrics.Histogram // escalated reissue-pulse latency (ns)

	// tr, when set, records sampled transaction-lifecycle spans (see
	// package tracing). Nil keeps the hot path at one pointer test per
	// enqueue/dispatch/complete.
	tr        *tracing.Collector
	trChannel int
}

// occupancySampleMask thins queue-occupancy sampling to one observation
// every 256 ticks (64 ns): dense enough to catch drain episodes, cheap
// enough to leave the per-tick cost unmeasurable.
const occupancySampleMask = 255

// ResetLatencyBounds returns the bucket upper edges for RESET-latency
// histograms: 32 ns resolution across the paper's 29–658 ns tWR window
// (Section 2; Figure 7 plots this distribution), plus an overflow bucket
// for shrunk-range or custom-crossbar runs that exceed it.
func ResetLatencyBounds() []float64 { return metrics.LinearBounds(32, 32, 21) }

// Instrument attaches the controller to a run's metric registry as
// channel `channel`, creating its per-channel instruments. Call once,
// before the first Tick; a controller never instrumented records
// nothing.
func (c *Controller) Instrument(reg *metrics.Registry, channel int) {
	if reg == nil {
		return
	}
	p := fmt.Sprintf("memctrl.ch%d.", channel)
	c.instrumented = true
	c.mRDQOcc = reg.Gauge(p + "rdq_occupancy")
	c.mWRQOcc = reg.Gauge(p + "wrq_occupancy")
	c.mDrains = reg.Counter(p + "drain_entries")
	c.mResetHist = reg.Histogram(p+"reset_latency_ns", ResetLatencyBounds())
	c.mResetCells = reg.Grid(p+"reset_table_cells", timing.Buckets, timing.Buckets)
	c.mMetaIssued = reg.Counter(p + "meta_writes_issued")
	if c.inj != nil {
		c.mFaults = reg.Counter(p + "write_faults")
		c.mRetries = reg.Counter(p + "write_retries")
		c.mRemaps = reg.Counter(p + "row_remaps")
		c.mExhausted = reg.Counter(p + "retry_exhausted")
		c.mRetryHist = reg.Histogram(p+"retry_latency_ns", ResetLatencyBounds())
	} else if c.dec.ProactiveEnabled() {
		// Proactive retirement remaps rows without an injector; attach
		// the decoder hook (SetDecoder) before Instrument, like SetFaults.
		c.mRemaps = reg.Counter(p + "row_remaps")
	}
}

// SetFaults attaches a write-fault injector; call before Instrument so
// the fault instruments are created. Nil (the default) disables
// injection entirely and leaves the write datapath cycle-identical to a
// fault-free build.
func (c *Controller) SetFaults(inj *fault.Injector) { c.inj = inj }

// Err returns the first unrecoverable fault error (spare-row pool
// exhaustion), or nil. The simulation loop checks it after every tick
// and surfaces it through sim.Run.
func (c *Controller) Err() error { return c.faultErr }

// Trace attaches a span collector, attributing this controller's
// transactions to channel `channel`. Call before the first Tick; a nil
// collector leaves tracing off.
func (c *Controller) Trace(tr *tracing.Collector, channel int) {
	c.tr = tr
	c.trChannel = channel
}

// SetDecoder installs the programmable address decoder applied to
// decoded data addresses (wear-leveling rotation at enqueue, spare-row
// penalties at dispatch). Nil (the default) keeps the identity mapping.
func (c *Controller) SetDecoder(d *remap.Decoder) { c.dec = d }

// decode resolves a line address through the optional address decoder.
func (c *Controller) decode(line uint64) (reram.Location, error) {
	loc, err := c.env.Geom.Decode(line)
	if err != nil {
		return loc, err
	}
	if c.dec != nil {
		loc, _ = c.dec.Resolve(loc)
	}
	return loc, nil
}

// EnqueueMaintenance queues a device-maintenance write (e.g. a wear-
// leveling segment migration): it occupies a bank like a metadata write
// but carries no scheme state.
func (c *Controller) EnqueueMaintenance(loc reram.Location, now uint64) {
	req := c.newWriteReq()
	req.Loc = loc
	req.IsMeta = true
	req.EnqueueCycle = now
	req.Clrs = -1
	if c.tr != nil {
		req.TraceRef = c.tr.Begin(tracing.KindMetaWrite, c.trChannel, c.bankOf(loc), -1, 0, now)
	}
	c.wbPending = append(c.wbPending, req)
}

// NewController builds a controller over the shared environment. The
// scheme instance must be dedicated to this controller (it owns a private
// metadata cache).
func NewController(cfg Config, env *core.Env, scheme core.Scheme, meter *energy.Meter, onReadDone ReadDoneFunc) (*Controller, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	nBanks := env.Geom.RanksPerChannel * env.Geom.BanksPerRank
	return &Controller{
		cfg:          cfg,
		env:          env,
		scheme:       scheme,
		meter:        meter,
		bankBusy:     make([]uint64, nBanks),
		onReadDone:   onReadDone,
		flips:        make(map[uint64]uint8),
		banksPerRank: env.Geom.BanksPerRank,
	}, nil
}

func (c *Controller) bankOf(loc reram.Location) int {
	return loc.Rank*c.banksPerRank + loc.Bank
}

// newReadReq takes a zeroed read request from the freelist.
func (c *Controller) newReadReq() *ReadReq {
	if n := len(c.freeReads); n > 0 {
		r := c.freeReads[n-1]
		c.freeReads = c.freeReads[:n-1]
		*r = ReadReq{}
		return r
	}
	return &ReadReq{}
}

// newWriteReq takes a zeroed write request from the freelist, keeping the
// MetaKeys backing array so scheme key derivation stays allocation-free.
func (c *Controller) newWriteReq() *core.WriteRequest {
	if n := len(c.freeWrites); n > 0 {
		req := c.freeWrites[n-1]
		c.freeWrites = c.freeWrites[:n-1]
		keys := req.MetaKeys[:0]
		*req = core.WriteRequest{MetaKeys: keys}
		return req
	}
	return &core.WriteRequest{}
}

// ReadQueueLen and WriteQueueLen expose occupancies (testing/diagnostics).
func (c *Controller) ReadQueueLen() int  { return len(c.rdq) }
func (c *Controller) WriteQueueLen() int { return len(c.wrq) }

// InWriteMode reports the scheduling mode.
func (c *Controller) InWriteMode() bool { return c.writeMode }

// Idle reports whether all queues and banks are drained.
func (c *Controller) Idle() bool {
	return len(c.rdq) == 0 && len(c.wrq) == 0 && len(c.auxPending) == 0 &&
		len(c.wbPending) == 0 && len(c.inflight) == 0
}

// EnqueueRead accepts a processor demand read; false means the queue is
// full and the core must retry.
func (c *Controller) EnqueueRead(coreID int, line uint64, now uint64) bool {
	if len(c.rdq) >= c.cfg.RDQSize {
		return false
	}
	loc, err := c.decode(line)
	if err != nil {
		return false
	}
	r := c.newReadReq()
	r.Kind, r.Line, r.Loc, r.Core, r.EnqueueTick = ReadData, line, loc, coreID, now
	if c.tr != nil {
		r.TraceRef = c.tr.Begin(tracing.KindDataRead, c.trChannel, c.bankOf(loc), coreID, line, now)
	}
	c.rdq = append(c.rdq, r)
	c.env.Stats.DataReads++
	return true
}

// EnqueueWrite accepts a processor writeback; false means the write queue
// is full.
func (c *Controller) EnqueueWrite(line uint64, data bits.Line, now uint64) bool {
	if len(c.wrq) >= c.cfg.WRQSize {
		return false
	}
	loc, err := c.decode(line)
	if err != nil {
		return false
	}
	// Materialize the wordline group (resident prefill) before the scheme
	// inspects content or initializes metadata.
	if err := c.env.Store.EnsureRow(line); err != nil {
		return false
	}
	req := c.newWriteReq()
	req.Line, req.Loc, req.Data, req.EnqueueCycle, req.Clrs = line, loc, data, now, -1
	if c.tr != nil {
		req.TraceRef = c.tr.Begin(tracing.KindDataWrite, c.trChannel, c.bankOf(loc), -1, line, now)
	}
	aux, wbs := c.scheme.Enqueue(req)
	c.wrq = append(c.wrq, req)
	c.env.Stats.DataWrites++
	c.routeAux(aux, now)
	c.routeWritebacks(wbs, now)
	return true
}

// routeAux queues auxiliary reads, respecting RDQ capacity.
func (c *Controller) routeAux(aux []core.AuxRead, now uint64) {
	for _, a := range aux {
		kind := ReadSMB
		if a.Kind == core.AuxMeta {
			kind = ReadMeta
		}
		r := c.newReadReq()
		r.Kind, r.Line, r.Loc, r.EnqueueTick = kind, a.Key, a.Loc, now
		if kind == ReadSMB {
			r.Target = c.findWrite(a.Key)
		}
		if c.tr != nil {
			tk := tracing.KindSMBRead
			if kind == ReadMeta {
				tk = tracing.KindMetaRead
			}
			r.TraceRef = c.tr.Begin(tk, c.trChannel, c.bankOf(a.Loc), -1, a.Key, now)
		}
		c.auxPending = append(c.auxPending, r)
	}
}

// findWrite locates the youngest write-queue entry for a line (SMB reads
// target the entry that requested them).
func (c *Controller) findWrite(line uint64) *core.WriteRequest {
	for i := len(c.wrq) - 1; i >= 0; i-- {
		if c.wrq[i].Line == line && !c.wrq[i].IsMeta {
			return c.wrq[i]
		}
	}
	return nil
}

// routeWritebacks turns dirty metadata evictions into write-queue
// entries.
func (c *Controller) routeWritebacks(wbs []core.MetaWriteback, now uint64) {
	for _, wb := range wbs {
		req := c.newWriteReq()
		req.Line = wb.Key
		req.Loc = wb.Loc
		req.IsMeta = true
		req.MetaKey = wb.Key
		req.EnqueueCycle = now
		req.Clrs = -1
		if c.tr != nil {
			req.TraceRef = c.tr.Begin(tracing.KindMetaWrite, c.trChannel, c.bankOf(wb.Loc), -1, wb.Key, now)
		}
		c.wbPending = append(c.wbPending, req)
	}
}

// Tick advances the controller one tick: completions, watermark
// management, queue drains, and issue. It reports activity — whether any
// operation completed or dispatched this cycle. Activity is what can
// unblock the rest of the system (cores stalled on full queues or MLP
// limits, queued writes waiting on metadata fills), so the event engine
// always processes the cycle after an active one; a tick that reports
// false leaves every externally visible invariant untouched and the
// controller provably dormant until its next scheduled event.
func (c *Controller) Tick(now uint64) bool {
	if c.instrumented && now&occupancySampleMask == 0 {
		c.mRDQOcc.Observe(float64(len(c.rdq)))
		c.mWRQOcc.Observe(float64(len(c.wrq)))
	}
	completed := c.completeFinished(now)
	c.updateMode(now)
	c.drainPending()
	issued := c.issue(now)
	return completed || issued
}

// NextEventAt returns the next cycle strictly after now at which this
// controller's Tick can do something a no-op tick would not: the
// earliest in-flight completion (bank-free times coincide with
// completions, so dispatch opportunities appear there too). A non-idle
// controller with nothing in flight asks for the very next cycle — the
// conservative answer for queue states that only resolve through
// repeated issue attempts. Idle controllers sleep until an enqueue wakes
// the system.
func (c *Controller) NextEventAt(now uint64) uint64 {
	if len(c.inflight) == 0 {
		if c.Idle() {
			return engine.Horizon
		}
		return now + 1
	}
	next := engine.Horizon
	for _, op := range c.inflight {
		if op.finish < next {
			next = op.finish
		}
	}
	if next <= now {
		return now + 1
	}
	return next
}

// completeFinished retires operations whose bank time elapsed, reporting
// whether any did.
func (c *Controller) completeFinished(now uint64) bool {
	completed := false
	kept := c.inflight[:0]
	for _, op := range c.inflight {
		if op.finish > now {
			kept = append(kept, op)
			continue
		}
		completed = true
		if op.read != nil {
			c.finishRead(op.read, now)
			c.freeReads = append(c.freeReads, op.read)
		} else if c.finishWrite(op, now) {
			c.freeWrites = append(c.freeWrites, op.write)
		}
	}
	c.inflight = kept
	// finishWrite parks verify-failure reissues aside: kept aliases
	// c.inflight's array, so appending mid-loop would corrupt the filter.
	if len(c.reissue) > 0 {
		c.inflight = append(c.inflight, c.reissue...)
		c.reissue = c.reissue[:0]
	}
	return completed
}

// finishRead delivers a completed read.
func (c *Controller) finishRead(r *ReadReq, now uint64) {
	if c.tr != nil && r.TraceRef != 0 {
		c.tr.End(r.TraceRef, now)
	}
	c.meter.Read()
	switch r.Kind {
	case ReadData:
		c.env.Stats.RecordReadLatency(float64(now-r.EnqueueTick) / TicksPerNs)
		if c.onReadDone != nil {
			c.onReadDone(r, now)
		}
	case ReadSMB:
		if r.Target != nil {
			stored, err := c.env.Store.Read(r.Line)
			if err == nil {
				bits.FNWDecode(&stored, c.flips[r.Line])
				c.scheme.SMBArrived(r.Target, stored)
			}
		}
	case ReadMeta:
		c.scheme.MetaArrived(r.Line)
	}
}

// finishWrite persists a completed write through the FNW bridge and lets
// the scheme update its metadata. Under fault injection the pulse is
// verified first: a failed RESET reissues with an escalated latency
// instead of persisting, so the array only ever holds verified content.
// It reports whether the request fully retired (false while a reissued
// pulse keeps it in flight), so the caller knows when to recycle it.
func (c *Controller) finishWrite(op busyOp, now uint64) bool {
	req := op.write
	if req.IsMeta {
		if c.tr != nil && req.TraceRef != 0 {
			c.tr.End(req.TraceRef, now)
		}
		// Metadata content was persisted to the backing image at
		// eviction; here the device pays the array write.
		c.meter.Write(op.latNs, core.MetaLineSize*2)
		c.retrySpill(now)
		return true
	}
	if c.tr != nil && op.retryRef != 0 {
		c.tr.End(op.retryRef, now)
	}
	if c.inj != nil && !c.verifyWrite(op, now) {
		return false
	}
	if c.tr != nil && req.TraceRef != 0 {
		c.tr.End(req.TraceRef, now)
	}
	old, err := c.env.Store.Read(req.Line)
	if err != nil {
		return true
	}
	enc := req.Payload
	var res bits.FNWResult
	if c.scheme.UseConstrainedFNW() {
		res = bits.ConstrainedFNW(&old, &enc)
	} else {
		res = bits.ClassicFNW(&old, &enc)
	}
	c.flips[req.Line] = res.Flips
	if _, err := c.env.Store.Write(req.Line, enc); err != nil {
		return true
	}
	st := c.env.Stats
	st.BitChanges += uint64(res.BitChanges)
	st.FNWFlips += uint64(mathbits.OnesCount8(res.Flips))
	st.FNWCanceled += uint64(res.Canceled)
	st.FNWUnits += bits.FNWUnits
	st.WriteServiceNs += float64(now-req.DispatchCycle) / TicksPerNs
	c.meter.Write(op.latNs, res.BitChanges)
	// Wear-limit-triggered proactive retirement: once a row's effective
	// write count reaches the decoder's limit, move it to a spare before
	// the fault model ever declares it permanently failed. Best-effort —
	// an empty pool is not an error here.
	if c.dec.ProactiveEnabled() {
		if rowWrites, err := c.env.Store.RowWrites(req.Line); err == nil {
			if c.dec.MaybeRetire(c.bankOf(req.Loc), c.env.Geom.GlobalRow(req.Loc), rowWrites) {
				c.mRemaps.Inc()
			}
		}
	}
	c.routeWritebacks(c.scheme.Complete(req, old, enc), now)
	c.retrySpill(now)
	return true
}

// verifyWrite runs the program-and-verify check for a completed data
// pulse. It reports whether the write may persist: true on a clean
// verify and on the remap path (the final attempt lands on the fresh
// spare row), false when the pulse failed and an escalated reissue was
// scheduled. The required latency is computed over the row's pre-write
// content — exactly what the pulse had to overcome — and the injector's
// response to the pulse's margin over that requirement is U-shaped
// (package fault), so a scheme whose metadata is conservatively stale
// (LADDER-Est's partial-counter bounds) programs surplus margin and
// fails verify more often than LADDER-Basic's exact counters.
func (c *Controller) verifyWrite(op busyOp, now uint64) bool {
	req := op.write
	needC, err := c.env.Store.MaxRowCounter(req.Line)
	if err != nil {
		return true
	}
	needNs := c.env.Tables.WL.Lookup(req.Loc.WL, req.Loc.BLHigh, needC)
	rowWrites, err := c.env.Store.RowWrites(req.Line)
	if err != nil {
		return true
	}
	globalRow := c.env.Geom.GlobalRow(req.Loc)
	// Wear on a remapped row's fresh spare counts from the remap point:
	// the decoder owns the baseline, the injector only sees effective
	// writes.
	verdict := c.inj.CheckWrite(op.latNs, needNs, rowWrites-c.dec.SpareBaseWrites(globalRow))
	if verdict == fault.OK {
		return true
	}
	c.mFaults.Inc()
	// The failed pulse still ran: charge its energy, zero cells switched.
	c.meter.Write(op.latNs, 0)
	if verdict == fault.Transient && req.Retries < c.inj.RetryMax() {
		c.reissueWrite(op, now)
		return false
	}
	// Permanent fault, or the transient retry budget ran out: retire the
	// row to the bank's spare pool. The remapped write persists below —
	// the spare starts fresh, so no re-verification is modeled.
	if verdict == fault.Transient {
		c.inj.NoteExhausted()
		c.mExhausted.Inc()
	}
	if err := c.dec.RemapSpare(c.bankOf(req.Loc), globalRow, rowWrites); err != nil {
		if c.faultErr == nil {
			c.faultErr = err
		}
		return true
	}
	c.mRemaps.Inc()
	return true
}

// reissueWrite schedules the escalated program-and-verify reissue: the
// pulse latency climbs one timing-table content bucket per attempt
// (unknown-content writes jump straight to the worst bucket), the bank
// stays busy for the full escalated duration, and a RetryAware scheme
// gets to reconcile the stale metadata that caused the failure.
func (c *Controller) reissueWrite(op busyOp, now uint64) {
	req := op.write
	req.Retries++
	c.inj.NoteRetry()
	c.mRetries.Inc()
	if ra, ok := c.scheme.(core.RetryAware); ok {
		ra.WriteRetry(req, req.Retries)
	}
	t := c.env.Tables.WL
	lat := t.EscalateContent(req.Loc.WL, req.Loc.BLHigh, req.Clrs, req.Retries)
	if lat < op.latNs {
		lat = op.latNs
	}
	bank := c.bankOf(req.Loc)
	dur := uint64(c.cfg.TRCD+c.cfg.TBurst) + uint64(math.Ceil(lat*TicksPerNs))
	c.bankBusy[bank] = now + dur
	var ref uint64
	if c.tr != nil && req.TraceRef != 0 {
		ref = c.tr.Begin(tracing.KindWriteRetry, c.trChannel, bank, -1, req.Line, now)
		clrs := -1
		if req.Clrs >= 0 {
			clrs = t.BucketOf(req.Clrs)
		}
		c.tr.Dispatch(ref, now, lat,
			t.BucketOf(req.Loc.WL), t.BucketOf(req.Loc.BLHigh), clrs, c.writeMode)
	}
	c.mRetryHist.Observe(lat)
	c.reissue = append(c.reissue, busyOp{finish: now + dur, write: req, latNs: lat, retryRef: ref})
}

// remapPenalty returns the extra bank ticks a spare-row indirection adds
// to an access whose row was retired to the spare pool. The decoder is
// the single accounting point; a nil decoder charges nothing.
func (c *Controller) remapPenalty(loc reram.Location) uint64 {
	return c.dec.PenaltyTicks(loc)
}

// retrySpill lets the scheme re-attempt deferred metadata acquisitions.
func (c *Controller) retrySpill(now uint64) {
	aux, wbs := c.scheme.RetrySpill()
	c.routeAux(aux, now)
	c.routeWritebacks(wbs, now)
}

// updateMode manages the write-drain watermarks; the spill buffer is
// retried at every mode switch (paper Section 3.3).
func (c *Controller) updateMode(now uint64) {
	high := int(math.Ceil(c.cfg.WriteHighFrac * float64(c.cfg.WRQSize)))
	if !c.writeMode && len(c.wrq) >= high {
		c.writeMode = true
		c.mDrains.Inc()
		c.retrySpill(now)
	} else if c.writeMode && len(c.wrq) <= c.cfg.WriteLowEntries {
		c.writeMode = false
		c.retrySpill(now)
	}
}

// drainPending moves deferred aux reads and metadata writebacks into the
// queues as space opens.
func (c *Controller) drainPending() {
	for len(c.auxPending) > 0 && len(c.rdq) < c.cfg.RDQSize {
		c.rdq = append(c.rdq, c.auxPending[0])
		c.auxPending = c.auxPending[1:]
	}
	for len(c.wbPending) > 0 && len(c.wrq) < c.cfg.WRQSize {
		c.wrq = append(c.wrq, c.wbPending[0])
		c.wbPending = c.wbPending[1:]
	}
}

// issue starts operations on free banks, reporting whether any
// dispatched. Writes take priority during drain mode; reads otherwise.
// Auxiliary reads are always eligible (they unblock queued writes), and
// the controller is work-conserving: leftover free banks serve the other
// queue.
func (c *Controller) issue(now uint64) bool {
	issued := false
	if c.writeMode {
		issued = c.issueWrites(now)
		// Remaining free banks serve reads, auxiliary ones first (they
		// unblock queued writes). Data reads must stay eligible: a read
		// queue full of demand reads would otherwise wedge pending
		// metadata fills and deadlock the drain.
		issued = c.issueReads(now, true) || issued
		issued = c.issueReads(now, false) || issued
	} else {
		issued = c.issueReads(now, false)
		// Opportunistic drain when no reads are waiting.
		if len(c.rdq) == 0 {
			issued = c.issueWrites(now) || issued
		}
	}
	return issued
}

// issueReads dispatches queue-order reads to free banks; auxOnly
// restricts to SMB/metadata reads (drain mode).
func (c *Controller) issueReads(now uint64, auxOnly bool) bool {
	issued := false
	for i := 0; i < len(c.rdq); {
		r := c.rdq[i]
		if auxOnly && r.Kind == ReadData {
			i++
			continue
		}
		bank := c.bankOf(r.Loc)
		if c.bankBusy[bank] > now {
			i++
			continue
		}
		dur := uint64(c.cfg.TRCD+c.cfg.TCL+c.cfg.TBurst) + c.remapPenalty(r.Loc)
		c.bankBusy[bank] = now + dur
		if c.tr != nil && r.TraceRef != 0 {
			c.tr.Dispatch(r.TraceRef, now, float64(dur)/TicksPerNs, -1, -1, -1, c.writeMode)
		}
		c.inflight = append(c.inflight, busyOp{finish: now + dur, read: r})
		c.rdq = append(c.rdq[:i], c.rdq[i+1:]...)
		issued = true
	}
	return issued
}

// issueWrites dispatches ready writes in queue order to free banks,
// reporting whether any did.
func (c *Controller) issueWrites(now uint64) bool {
	issued := false
	for i := 0; i < len(c.wrq); {
		req := c.wrq[i]
		if !req.IsMeta && !c.scheme.Ready(req) {
			i++
			continue
		}
		bank := c.bankOf(req.Loc)
		if c.bankBusy[bank] > now {
			i++
			continue
		}
		var latNs float64
		if req.IsMeta {
			// Metadata blocks have no tracked counters; their writes use
			// the location-dependent worst-content latency (Section 3.3).
			latNs = c.env.Tables.WL.LocationOnly(req.Loc.WL, req.Loc.BLHigh)
			c.mMetaIssued.Inc()
		} else {
			latNs = c.scheme.Latency(req)
			// Attribute the RESET to its latency bucket and timing-table
			// cell. Metadata writes are excluded so the histogram matches
			// the paper's data-write latency distribution (Figure 7).
			c.mResetHist.Observe(latNs)
			if c.instrumented {
				t := c.env.Tables.WL
				c.mResetCells.Inc(t.BucketOf(req.Loc.WL), t.BucketOf(req.Loc.BLHigh))
			}
		}
		dur := uint64(c.cfg.TRCD+c.cfg.TBurst) + uint64(math.Ceil(latNs*TicksPerNs)) + c.remapPenalty(req.Loc)
		req.DispatchCycle = now
		if c.tr != nil && req.TraceRef != 0 {
			t := c.env.Tables.WL
			clrs := -1
			if req.Clrs >= 0 {
				clrs = t.BucketOf(req.Clrs)
			}
			c.tr.Dispatch(req.TraceRef, now, latNs,
				t.BucketOf(req.Loc.WL), t.BucketOf(req.Loc.BLHigh), clrs, c.writeMode)
		}
		c.bankBusy[bank] = now + dur
		c.inflight = append(c.inflight, busyOp{finish: now + dur, write: req, latNs: latNs})
		c.wrq = append(c.wrq[:i], c.wrq[i+1:]...)
		issued = true
	}
	return issued
}

// ReadLineLogical performs an immediate functional read (no timing):
// stored bits through the FNW bridge and the scheme's datapath decode.
// Used by verification paths and examples.
func (c *Controller) ReadLineLogical(line uint64) (bits.Line, error) {
	stored, err := c.env.Store.Read(line)
	if err != nil {
		return bits.Line{}, err
	}
	bits.FNWDecode(&stored, c.flips[line])
	return c.scheme.DecodeRead(line, stored), nil
}
