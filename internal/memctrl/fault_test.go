package memctrl

import (
	"strings"
	"testing"

	"ladder/internal/bits"
	"ladder/internal/core"
	"ladder/internal/fault"
	"ladder/internal/metrics"
	"ladder/internal/remap"
	"ladder/internal/reram"
)

// newFaultHarness wires an injector, an address decoder with the given
// per-bank spare pool, and a metrics registry into a fresh controller
// harness, mirroring the sim package's build order (faults and decoder
// before instrumentation, so the fault counters register).
func newFaultHarness(t *testing.T, mk func(*core.Env) core.Scheme, cfg fault.Config, spareRows int) (*harness, *fault.Injector, *metrics.Registry) {
	t.Helper()
	h := newHarness(t, mk)
	inj, err := fault.NewInjector(cfg)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := remap.NewDecoder(remap.Config{
		Geom:       h.env.Geom,
		TicksPerNs: TicksPerNs,
		SpareRows:  spareRows,
	})
	if err != nil {
		t.Fatal(err)
	}
	reg := metrics.NewRegistry()
	h.ctrl.SetFaults(inj)
	h.ctrl.SetDecoder(dec)
	h.ctrl.Instrument(reg, 0)
	return h, inj, reg
}

func basicScheme(t *testing.T) func(*core.Env) core.Scheme {
	return func(env *core.Env) core.Scheme {
		s, err := core.NewBasic(env)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
}

// TestVerifyFailureReissuesAndPersists drives one write through the
// program-and-verify loop under a high fault rate: the failed pulses are
// metered, the reissues counted, and the data still lands.
func TestVerifyFailureReissuesAndPersists(t *testing.T) {
	h, inj, reg := newFaultHarness(t, estScheme(t),
		fault.Config{Rate: 0.9, Seed: 1, RetryMax: fault.UseDefault}, remap.UseDefault)
	var data bits.Line
	for i := range data {
		data[i] = byte(i * 5)
	}
	if !h.ctrl.EnqueueWrite(0, data, h.now) {
		t.Fatal("enqueue failed")
	}
	h.runUntilIdle(t, 5_000_000)
	st := inj.Stats()
	if st.Retries == 0 {
		t.Fatalf("expected verify retries at rate 0.9, stats %+v", st)
	}
	// Each failed pulse is still charged on the energy meter.
	if h.meter.Writes <= 1 {
		t.Fatalf("meter writes = %d; failed pulses must be metered", h.meter.Writes)
	}
	got, err := h.ctrl.ReadLineLogical(0)
	if err != nil {
		t.Fatal(err)
	}
	if got != data {
		t.Fatal("write lost through the retry path")
	}
	snap := reg.Snapshot()
	if c := snap.Counters["memctrl.ch0.write_retries"]; c != st.Retries {
		t.Fatalf("write_retries counter %d != injector retries %d", c, st.Retries)
	}
	if n := snap.Histograms["memctrl.ch0.retry_latency_ns"].Count; n != st.Retries {
		t.Fatalf("retry latency histogram count %d != retries %d", n, st.Retries)
	}
}

// TestRetryEscalatesPulseLatency pins the escalation policy: a sparse
// write under LADDER-Basic programs a low content bucket, so consecutive
// reissues must climb the timing table toward worst case rather than
// re-fail at the same margin.
func TestRetryEscalatesPulseLatency(t *testing.T) {
	h, inj, reg := newFaultHarness(t, basicScheme(t),
		fault.Config{Rate: 0.99, Seed: 2, RetryMax: fault.UseDefault}, remap.UseDefault)
	var sparse bits.Line
	sparse[0] = 1
	if !h.ctrl.EnqueueWrite(0, sparse, h.now) {
		t.Fatal("enqueue failed")
	}
	h.runUntilIdle(t, 5_000_000)
	st := inj.Stats()
	if st.Retries < 2 {
		t.Fatalf("expected at least two reissues at rate 0.99, stats %+v", st)
	}
	hist := reg.Snapshot().Histograms["memctrl.ch0.retry_latency_ns"]
	if hist.Count != st.Retries {
		t.Fatalf("retry histogram count %d != retries %d", hist.Count, st.Retries)
	}
	if hist.Max <= hist.Min {
		t.Fatalf("reissue latency should escalate across attempts: min %v max %v", hist.Min, hist.Max)
	}
}

// TestSparePoolExhaustionSurfacesError drives degradation to the end
// state: once a bank's single spare is consumed, the next unrecoverable
// row must surface through Controller.Err instead of looping forever.
func TestSparePoolExhaustionSurfacesError(t *testing.T) {
	h, inj, _ := newFaultHarness(t, estScheme(t),
		fault.Config{Rate: 0.99, Seed: 3, RetryMax: 1}, 1)
	var data bits.Line
	data[0] = 0xff
	for i := 0; i < 64; i++ {
		for !h.ctrl.EnqueueWrite(uint64(i)*reram.BlocksPerRow, data, h.now) {
			h.ctrl.Tick(h.now)
			h.now++
		}
	}
	h.runUntilIdle(t, 50_000_000)
	if h.ctrl.Err() == nil {
		t.Fatalf("expected spare-pool exhaustion error, stats %+v", inj.Stats())
	}
	if !strings.Contains(h.ctrl.Err().Error(), "spare-row pool exhausted") {
		t.Fatalf("unexpected error: %v", h.ctrl.Err())
	}
}
