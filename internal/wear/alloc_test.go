// Allocation contracts for the wear hot paths. testing.AllocsPerRun is
// meaningless under the race detector (instrumentation allocates), so
// the whole file is excluded there; CI runs these in a dedicated
// non-race step.
//go:build !race

package wear

import "testing"

// sink defeats dead-code elimination of the measured calls.
var sink byte

// TestRotateBytesAllocFree pins the in-place rotation: horizontal wear
// leveling runs on every line read and write, so a per-call scratch
// buffer would dominate the allocation profile.
func TestRotateBytesAllocFree(t *testing.T) {
	var line [64]byte
	for i := range line {
		line[i] = byte(i)
	}
	offsets := []int{1, 7, -3, 63, 129}
	if n := testing.AllocsPerRun(100, func() {
		for _, off := range offsets {
			RotateBytes(line[:], off)
			UnrotateBytes(line[:], off)
		}
		sink = line[0]
	}); n != 0 {
		t.Fatalf("RotateBytes/UnrotateBytes allocated %v times per run, want 0", n)
	}
}
