// Package wear implements the wear-leveling mechanisms LADDER integrates
// with (paper Section 6.4): segment-based vertical wear leveling in the
// Start-Gap style (Qureshi et al., MICRO 2009) and horizontal wear
// leveling by intra-line byte rotation (Zhou et al., ISCA 2009), plus the
// worst-cell lifetime model used to quantify LADDER's ~3% write overhead
// against the baseline's lifetime.
package wear

import (
	"errors"
	"fmt"
)

// StartGap is a segment-granularity vertical wear leveler: N logical
// segments live in N+1 physical slots; every Period writes the gap slot
// moves one position, slowly rotating the logical-to-physical mapping so
// write-hot segments migrate across the device.
type StartGap struct {
	n      int // logical segments
	gap    int // position of the empty physical slot, 0..n
	start  int // rotation offset, 0..n-1
	period int
	writes int
	moves  uint64
}

// NewStartGap builds a leveler over n logical segments that moves the gap
// every period writes.
func NewStartGap(n, period int) (*StartGap, error) {
	if n <= 0 {
		return nil, errors.New("wear: segment count must be positive")
	}
	if period <= 0 {
		return nil, errors.New("wear: gap-move period must be positive")
	}
	return &StartGap{n: n, gap: n, period: period}, nil
}

// Phys maps a logical segment to its physical slot (0..n inclusive). An
// out-of-range segment is reported as an error rather than a panic so a
// mis-sized remap cannot crash a long experiment grid mid-run.
func (s *StartGap) Phys(logical int) (int, error) {
	if logical < 0 || logical >= s.n {
		return 0, fmt.Errorf("wear: logical segment %d out of range 0..%d", logical, s.n-1)
	}
	p := (logical + s.start) % s.n
	if p >= s.gap {
		p++
	}
	return p, nil
}

// RecordWrite notes one write; when the period elapses the gap moves.
// It returns true when a gap move happened (the move costs one segment
// copy, which callers may charge as extra write traffic).
func (s *StartGap) RecordWrite() bool {
	s.writes++
	if s.writes < s.period {
		return false
	}
	s.writes = 0
	s.gap--
	if s.gap < 0 {
		s.gap = s.n
		s.start = (s.start + 1) % s.n
	}
	s.moves++
	return true
}

// Moves returns the number of gap moves performed.
func (s *StartGap) Moves() uint64 { return s.moves }

// Segments returns the logical segment count.
func (s *StartGap) Segments() int { return s.n }

// RotateBytes applies horizontal wear leveling to a 64-byte line: a byte
// rotation by offset positions. The rotation is reversed on reads with
// UnrotateBytes; it redistributes intra-line wear without changing the
// line's metadata address (paper: HWL "shifts one byte at a time" and
// needs no special LADDER handling). The rotation is in place — the
// classic three-reversal identity — so the per-line read/write path
// allocates nothing.
func RotateBytes(line []byte, offset int) {
	n := len(line)
	if n == 0 {
		return
	}
	offset = ((offset % n) + n) % n
	if offset == 0 {
		return
	}
	// A right rotation by offset is reverse-prefix, reverse-suffix,
	// reverse-whole with the split at n-offset.
	reverseBytes(line[:n-offset])
	reverseBytes(line[n-offset:])
	reverseBytes(line)
}

// reverseBytes reverses b in place.
func reverseBytes(b []byte) {
	for i, j := 0, len(b)-1; i < j; i, j = i+1, j-1 {
		b[i], b[j] = b[j], b[i]
	}
}

// UnrotateBytes reverses RotateBytes.
func UnrotateBytes(line []byte, offset int) {
	RotateBytes(line, -offset)
}

// LifetimeModel estimates device lifetime from write statistics, keyed on
// the worst-case cell as in the paper's endurance analysis.
type LifetimeModel struct {
	// EnduranceCycles is the per-cell write endurance (ReRAM ~1e8–1e12).
	EnduranceCycles float64
}

// DefaultLifetime returns a model with 1e8 cycles endurance.
func DefaultLifetime() LifetimeModel { return LifetimeModel{EnduranceCycles: 1e8} }

// RelativeLeveled returns a scheme's lifetime relative to a baseline when
// ideal wear leveling spreads all writes (data plus metadata) across the
// device: lifetime scales inversely with total write traffic. A scheme
// adding 3% writes retains 1/1.03 ≈ 97.1% of the baseline lifetime — the
// paper's LADDER-Hybrid figure.
func (m LifetimeModel) RelativeLeveled(baselineWrites, schemeWrites uint64) float64 {
	if schemeWrites == 0 {
		return 1
	}
	return float64(baselineWrites) / float64(schemeWrites)
}

// RelativeUnleveled returns the lifetime ratio without wear leveling,
// governed by the hottest row's write count.
func (m LifetimeModel) RelativeUnleveled(baselineMaxRow, schemeMaxRow uint64) float64 {
	if schemeMaxRow == 0 {
		return 1
	}
	return float64(baselineMaxRow) / float64(schemeMaxRow)
}

// WritesUntilFailure returns how many more writes the hottest row can
// absorb before the worst cell exceeds endurance, assuming each row write
// stresses its cells once. A row already past endurance has zero writes
// left, never a negative count.
func (m LifetimeModel) WritesUntilFailure(maxRowWrites uint64) float64 {
	left := m.EnduranceCycles - float64(maxRowWrites)
	if left < 0 {
		return 0
	}
	return left
}
