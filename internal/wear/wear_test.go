package wear

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewStartGapValidation(t *testing.T) {
	if _, err := NewStartGap(0, 10); err == nil {
		t.Fatal("zero segments should fail")
	}
	if _, err := NewStartGap(8, 0); err == nil {
		t.Fatal("zero period should fail")
	}
}

func TestStartGapBijective(t *testing.T) {
	s, err := NewStartGap(37, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Across many gap positions, the mapping must stay injective into
	// 0..n and never hit the gap slot.
	for step := 0; step < 500; step++ {
		seen := make(map[int]bool, s.n)
		for l := 0; l < s.n; l++ {
			p, err := s.Phys(l)
			if err != nil {
				t.Fatal(err)
			}
			if p < 0 || p > s.n {
				t.Fatalf("phys %d out of range", p)
			}
			if p == s.gap {
				t.Fatalf("logical %d mapped onto the gap slot %d", l, p)
			}
			if seen[p] {
				t.Fatalf("collision at physical %d (step %d)", p, step)
			}
			seen[p] = true
		}
		s.RecordWrite()
	}
}

func TestStartGapMovesEveryPeriod(t *testing.T) {
	s, _ := NewStartGap(8, 5)
	moves := 0
	for i := 0; i < 50; i++ {
		if s.RecordWrite() {
			moves++
		}
	}
	if moves != 10 {
		t.Fatalf("moves = %d, want 10", moves)
	}
	if s.Moves() != 10 {
		t.Fatalf("Moves() = %d", s.Moves())
	}
}

func TestStartGapRotatesOverFullCycle(t *testing.T) {
	// After (n+1) gap moves the start advances: segment 0's physical slot
	// must eventually change, demonstrating wear migration.
	s, _ := NewStartGap(8, 1)
	initial, err := s.Phys(0)
	if err != nil {
		t.Fatal(err)
	}
	changed := false
	for i := 0; i < (s.n+1)*s.n; i++ {
		s.RecordWrite()
		if p, err := s.Phys(0); err != nil {
			t.Fatal(err)
		} else if p != initial {
			changed = true
			break
		}
	}
	if !changed {
		t.Fatal("segment 0 never moved")
	}
}

func TestStartGapOutOfRangeError(t *testing.T) {
	s, _ := NewStartGap(4, 1)
	for _, logical := range []int{-1, 4, 100} {
		if _, err := s.Phys(logical); err == nil {
			t.Errorf("Phys(%d) on 4 segments should error", logical)
		}
	}
}

func TestRotateBytesRoundTrip(t *testing.T) {
	f := func(data [64]byte, off int16) bool {
		line := data
		RotateBytes(line[:], int(off))
		UnrotateBytes(line[:], int(off))
		return line == data
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRotateBytesShifts(t *testing.T) {
	line := []byte{1, 2, 3, 4}
	RotateBytes(line, 1)
	want := []byte{4, 1, 2, 3}
	for i := range want {
		if line[i] != want[i] {
			t.Fatalf("line = %v, want %v", line, want)
		}
	}
}

func TestRotateBytesZeroAndEmpty(t *testing.T) {
	RotateBytes(nil, 3) // must not panic
	line := []byte{9, 8}
	RotateBytes(line, 0)
	if line[0] != 9 || line[1] != 8 {
		t.Fatal("zero rotation changed data")
	}
}

func TestLifetimeRelativeLeveled(t *testing.T) {
	m := DefaultLifetime()
	// +3% writes -> ~97.1% lifetime (paper Section 6.4).
	got := m.RelativeLeveled(1000, 1030)
	if math.Abs(got-0.9709) > 0.001 {
		t.Fatalf("relative lifetime = %v, want ≈0.971", got)
	}
	if m.RelativeLeveled(100, 0) != 1 {
		t.Fatal("zero scheme writes should return 1")
	}
}

func TestLifetimeRelativeUnleveled(t *testing.T) {
	m := DefaultLifetime()
	if got := m.RelativeUnleveled(500, 1000); got != 0.5 {
		t.Fatalf("unleveled ratio = %v", got)
	}
}

func TestWritesUntilFailure(t *testing.T) {
	m := LifetimeModel{EnduranceCycles: 100}
	if got := m.WritesUntilFailure(30); got != 70 {
		t.Fatalf("remaining = %v", got)
	}
	// A row already past endurance has nothing left — never a negative
	// count.
	if got := m.WritesUntilFailure(150); got != 0 {
		t.Fatalf("past-endurance remaining = %v, want 0", got)
	}
	if got := m.WritesUntilFailure(100); got != 0 {
		t.Fatalf("at-endurance remaining = %v, want 0", got)
	}
}
