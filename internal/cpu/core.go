// Package cpu models the processor side of the simulation: trace-driven
// cores that retire one instruction per cycle until they block on memory.
// A core issues demand reads into the memory system up to its
// memory-level-parallelism window and stalls when the window is full (the
// out-of-order ROB-limit abstraction); writebacks are fire-and-forget
// unless the write queue rejects them. This reproduces the mechanism the
// paper exploits — long ReRAM writes occupying banks and delaying reads —
// without simulating a full pipeline.
package cpu

import (
	"errors"

	"ladder/internal/trace"
)

// DefaultMLP is the default number of outstanding demand reads a core
// tolerates before stalling — the ROB-limit abstraction: a modest window
// means long ReRAM accesses are only partially hidden, as in the paper's
// out-of-order cores.
const DefaultMLP = 4

// IssueFunc attempts to hand an access to the memory system and reports
// whether it was accepted (queues may be full).
type IssueFunc func(coreID int, a trace.Access) bool

// Core is one trace-driven processor core.
type Core struct {
	id  int
	gen trace.Source
	mlp int

	outstanding int
	pending     *trace.Access
	gapLeft     int
	retired     uint64
	stallCycles uint64
}

// NewCore builds a core over any access source (a synthetic generator or
// a recorded-trace replayer).
func NewCore(id int, gen trace.Source, mlp int) (*Core, error) {
	if gen == nil {
		return nil, errors.New("cpu: nil generator")
	}
	if mlp <= 0 {
		mlp = DefaultMLP
	}
	c := &Core{id: id, gen: gen, mlp: mlp}
	c.fetch()
	return c, nil
}

// fetch pulls the next access from the trace.
func (c *Core) fetch() {
	a := c.gen.Next()
	c.pending = &a
	c.gapLeft = a.Gap
}

// ID returns the core's index.
func (c *Core) ID() int { return c.id }

// Retired returns the number of instructions retired.
func (c *Core) Retired() uint64 { return c.retired }

// StallCycles returns how many cycles the core spent unable to retire.
func (c *Core) StallCycles() uint64 { return c.stallCycles }

// Outstanding returns the current number of in-flight demand reads.
func (c *Core) Outstanding() int { return c.outstanding }

// ReadDone signals completion of one demand read.
func (c *Core) ReadDone() {
	if c.outstanding <= 0 {
		panic("cpu: read completion without outstanding read")
	}
	c.outstanding--
}

// Tick advances the core one cycle. It retires at most one instruction:
// a plain instruction if the gap to the next access is open, otherwise
// the memory access itself if it can be issued. Returns whether an
// instruction retired.
func (c *Core) Tick(issue IssueFunc) bool {
	if c.gapLeft > 0 {
		c.gapLeft--
		c.retired++
		return true
	}
	a := c.pending
	if !a.Write {
		if c.outstanding >= c.mlp {
			c.stallCycles++
			return false
		}
		if !issue(c.id, *a) {
			c.stallCycles++
			return false
		}
		c.outstanding++
		c.retired++
		c.fetch()
		return true
	}
	if !issue(c.id, *a) {
		c.stallCycles++
		return false
	}
	c.retired++
	c.fetch()
	return true
}
