// Package cpu models the processor side of the simulation: trace-driven
// cores that retire one instruction per cycle until they block on memory.
// A core issues demand reads into the memory system up to its
// memory-level-parallelism window and stalls when the window is full (the
// out-of-order ROB-limit abstraction); writebacks are fire-and-forget
// unless the write queue rejects them. This reproduces the mechanism the
// paper exploits — long ReRAM writes occupying banks and delaying reads —
// without simulating a full pipeline.
package cpu

import (
	"errors"

	"ladder/internal/engine"
	"ladder/internal/trace"
)

// DefaultMLP is the default number of outstanding demand reads a core
// tolerates before stalling — the ROB-limit abstraction: a modest window
// means long ReRAM accesses are only partially hidden, as in the paper's
// out-of-order cores.
const DefaultMLP = 4

// IssueFunc attempts to hand an access to the memory system and reports
// whether it was accepted (queues may be full).
type IssueFunc func(coreID int, a trace.Access) bool

// Core is one trace-driven processor core.
type Core struct {
	id  int
	gen trace.Source
	mlp int

	outstanding int
	pending     trace.Access
	gapLeft     int
	retired     uint64
	stallCycles uint64
	// stalled records whether the most recent Tick failed to retire: a
	// stalled core cannot make progress until the memory system changes
	// state, so the event engine parks it (NextEventAt = Horizon) until
	// controller activity forces the next cycle to be processed.
	stalled bool
}

// NewCore builds a core over any access source (a synthetic generator or
// a recorded-trace replayer).
func NewCore(id int, gen trace.Source, mlp int) (*Core, error) {
	if gen == nil {
		return nil, errors.New("cpu: nil generator")
	}
	if mlp <= 0 {
		mlp = DefaultMLP
	}
	c := &Core{id: id, gen: gen, mlp: mlp}
	c.fetch()
	return c, nil
}

// fetch pulls the next access from the trace.
func (c *Core) fetch() {
	c.pending = c.gen.Next()
	c.gapLeft = c.pending.Gap
}

// ID returns the core's index.
func (c *Core) ID() int { return c.id }

// Retired returns the number of instructions retired.
func (c *Core) Retired() uint64 { return c.retired }

// StallCycles returns how many cycles the core spent unable to retire.
func (c *Core) StallCycles() uint64 { return c.stallCycles }

// Stalled reports whether the most recent Tick failed to retire (stall
// attribution for the tracing layer).
func (c *Core) Stalled() bool { return c.stalled }

// Outstanding returns the current number of in-flight demand reads.
func (c *Core) Outstanding() int { return c.outstanding }

// ReadDone signals completion of one demand read.
func (c *Core) ReadDone() {
	if c.outstanding <= 0 {
		panic("cpu: read completion without outstanding read")
	}
	c.outstanding--
}

// Tick advances the core one cycle. It retires at most one instruction:
// a plain instruction if the gap to the next access is open, otherwise
// the memory access itself if it can be issued. Returns whether an
// instruction retired.
func (c *Core) Tick(issue IssueFunc) bool {
	if c.gapLeft > 0 {
		c.gapLeft--
		c.retired++
		c.stalled = false
		return true
	}
	a := &c.pending
	if !a.Write {
		if c.outstanding >= c.mlp {
			c.stallCycles++
			c.stalled = true
			return false
		}
		if !issue(c.id, *a) {
			c.stallCycles++
			c.stalled = true
			return false
		}
		c.outstanding++
		c.retired++
		c.stalled = false
		c.fetch()
		return true
	}
	if !issue(c.id, *a) {
		c.stallCycles++
		c.stalled = true
		return false
	}
	c.retired++
	c.stalled = false
	c.fetch()
	return true
}

// Skip advances the core through `cycles` cycles in bulk, for the event
// engine's dead-cycle jumps. A core inside an instruction gap retires
// one instruction per skipped cycle (memory-free progress); a core at a
// memory-access boundary would have stalled every one of those cycles
// (the engine only skips cycles in which the memory system provably
// cannot have changed). The caller must not skip across the gap's end or
// the instruction budget — the engine's NextEventAt contract guarantees
// both.
func (c *Core) Skip(cycles uint64) {
	if cycles == 0 {
		return
	}
	if c.gapLeft > 0 {
		if uint64(c.gapLeft) <= cycles {
			panic("cpu: Skip across a memory-access boundary")
		}
		c.gapLeft -= int(cycles)
		c.retired += cycles
		c.stalled = false
		return
	}
	c.stallCycles += cycles
}

// NextEventAt returns the next cycle strictly after now at which this
// core's Tick is not predictable without consulting the memory system:
// the end of its instruction gap, the cycle it exhausts `budget` retired
// instructions, or now+1 when it sits at an unattempted access boundary.
// A stalled core returns engine.Horizon — it can only be unblocked by
// controller activity, which the engine reacts to on its own.
func (c *Core) NextEventAt(now, budget uint64) uint64 {
	if c.retired >= budget {
		return engine.Horizon
	}
	if c.gapLeft > 0 {
		d := uint64(c.gapLeft)
		if r := budget - c.retired; r < d {
			d = r
		}
		return now + d
	}
	if c.stalled {
		return engine.Horizon
	}
	return now + 1
}
