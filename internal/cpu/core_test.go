package cpu

import (
	"testing"

	"ladder/internal/trace"
)

func testGen(t *testing.T) *trace.Generator {
	t.Helper()
	g, err := trace.NewGenerator(trace.Profiles["astar"], 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func acceptAll(int, trace.Access) bool { return true }
func rejectAll(int, trace.Access) bool { return false }

func TestNewCoreRejectsNilGenerator(t *testing.T) {
	if _, err := NewCore(0, nil, 8); err == nil {
		t.Fatal("expected error")
	}
}

func TestCoreRetiresOneInstructionPerTick(t *testing.T) {
	c, err := NewCore(0, testGen(t), 8)
	if err != nil {
		t.Fatal(err)
	}
	// Memory accepts everything and completes reads instantly.
	instant := func(_ int, a trace.Access) bool { return true }
	const n = 10_000
	for i := 0; i < n; i++ {
		c.Tick(instant)
		for c.Outstanding() > 0 {
			c.ReadDone()
		}
	}
	// With an ideal memory, every tick retires exactly one instruction
	// (memory accesses retire as instructions too).
	if c.Retired() != n {
		t.Fatalf("retired %d, want %d", c.Retired(), n)
	}
	if c.StallCycles() != 0 {
		t.Fatalf("stalls = %d, want 0", c.StallCycles())
	}
}

func TestCoreStallsWhenMemoryRejects(t *testing.T) {
	c, err := NewCore(0, testGen(t), 8)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10_000; i++ {
		c.Tick(rejectAll)
	}
	if c.StallCycles() == 0 {
		t.Fatal("expected stalls with memory rejecting")
	}
	if c.Retired() == 0 {
		t.Fatal("compute instructions should still retire")
	}
	if c.Retired()+c.StallCycles() != 10_000 {
		t.Fatal("every cycle either retires or stalls")
	}
}

func TestCoreMLPWindowLimitsOutstanding(t *testing.T) {
	const mlp = 4
	c, err := NewCore(0, testGen(t), mlp)
	if err != nil {
		t.Fatal(err)
	}
	// Accept reads but never complete them.
	issued := 0
	issue := func(_ int, a trace.Access) bool {
		if !a.Write {
			issued++
		}
		return true
	}
	for i := 0; i < 100_000; i++ {
		c.Tick(issue)
	}
	if c.Outstanding() != mlp {
		t.Fatalf("outstanding = %d, want %d", c.Outstanding(), mlp)
	}
	if issued != mlp {
		t.Fatalf("issued %d reads, want %d", issued, mlp)
	}
	// Completing one read lets exactly one more through.
	c.ReadDone()
	for i := 0; i < 100_000 && issued == mlp; i++ {
		c.Tick(issue)
	}
	if issued != mlp+1 {
		t.Fatalf("issued %d after completion, want %d", issued, mlp+1)
	}
}

func TestReadDonePanicsWithoutOutstanding(t *testing.T) {
	c, err := NewCore(0, testGen(t), 8)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	c.ReadDone()
}

func TestDefaultMLPApplied(t *testing.T) {
	c, err := NewCore(3, testGen(t), 0)
	if err != nil {
		t.Fatal(err)
	}
	if c.ID() != 3 {
		t.Fatalf("id = %d", c.ID())
	}
	if c.mlp != DefaultMLP {
		t.Fatalf("mlp = %d, want default %d", c.mlp, DefaultMLP)
	}
}
