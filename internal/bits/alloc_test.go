//go:build !race

package bits

import "testing"

// The popcount/FNW/estimator helpers run on every write dispatch, so a
// single allocation per call multiplies into GC pressure that dominates
// short runs. These tests pin the zero-allocation contract; the race
// detector instruments allocations, so the file is excluded under -race.

// sink defeats dead-code elimination of the measured calls.
var sink int

func TestPopcountHelpersAllocFree(t *testing.T) {
	var l Line
	for i := range l {
		l[i] = byte(i * 37)
	}
	var dst [LineSize]int
	steps := map[string]func(){
		"Ones":          func() { sink = l.Ones() },
		"CountOnes":     func() { sink = CountOnes(l[:]) },
		"WorstByte":     func() { sink = WorstByte(l[:]) },
		"Diff":          func() { sink = Diff(l[:], l[:LineSize]) },
		"SetsAndResets": func() { a, b := SetsAndResets(l[:], l[:]); sink = a + b },
		"OnesPerByte":   func() { sink = OnesPerByte(l[:], dst[:]) },
		"EncodePartial": func() { sink = int(EncodePartial(&l)) },
	}
	for name, fn := range steps {
		if n := testing.AllocsPerRun(100, fn); n != 0 {
			t.Errorf("%s allocates %.0f per call, want 0", name, n)
		}
	}
}

func TestFNWAllocFree(t *testing.T) {
	var old, neu Line
	for i := range old {
		old[i] = byte(i)
		neu[i] = byte(^i)
	}
	if n := testing.AllocsPerRun(100, func() {
		work := neu
		res := ConstrainedFNW(&old, &work)
		sink = res.BitChanges
	}); n != 0 {
		t.Errorf("ConstrainedFNW allocates %.0f per call, want 0", n)
	}
	if n := testing.AllocsPerRun(100, func() {
		work := neu
		FNWDecode(&work, 0xA5)
		sink = int(work[0])
	}); n != 0 {
		t.Errorf("FNWDecode allocates %.0f per call, want 0", n)
	}
}

func TestEstimatorsAllocFree(t *testing.T) {
	var packed [64]uint8
	for i := range packed {
		packed[i] = uint8(i % 4)
	}
	if n := testing.AllocsPerRun(100, func() {
		sink = EstimateCwLRS(packed[:])
	}); n != 0 {
		t.Errorf("EstimateCwLRS allocates %.0f per call, want 0", n)
	}
	if n := testing.AllocsPerRun(100, func() {
		sink = EstimateCwLRSLow(packed[:])
	}); n != 0 {
		t.Errorf("EstimateCwLRSLow allocates %.0f per call, want 0", n)
	}
}
