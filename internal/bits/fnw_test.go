package bits

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestClassicFNWNeverIncreasesChanges(t *testing.T) {
	f := func(old, neu Line) bool {
		plain := Diff(old[:], neu[:])
		enc := neu
		res := ClassicFNW(&old, &enc)
		return res.BitChanges <= plain
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestConstrainedFNWNeverIncreasesChanges(t *testing.T) {
	f := func(old, neu Line) bool {
		plain := Diff(old[:], neu[:])
		enc := neu
		res := ConstrainedFNW(&old, &enc)
		return res.BitChanges <= plain
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestConstrainedFNWOnesBound is LADDER's correctness condition: the stored
// line never carries more ones than the unencoded line would.
func TestConstrainedFNWOnesBound(t *testing.T) {
	f := func(old, neu Line) bool {
		enc := neu
		ConstrainedFNW(&old, &enc)
		return enc.Ones() <= neu.Ones()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFNWDecodeRoundTrip(t *testing.T) {
	f := func(old, neu Line) bool {
		enc := neu
		res := ClassicFNW(&old, &enc)
		FNWDecode(&enc, res.Flips)
		return enc == neu
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestConstrainedFNWDecodeRoundTrip(t *testing.T) {
	f := func(old, neu Line) bool {
		enc := neu
		res := ConstrainedFNW(&old, &enc)
		FNWDecode(&enc, res.Flips)
		return enc == neu
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFNWFlipsWhenProfitable(t *testing.T) {
	// Old all zeros, new all ones: storing inverted (all zeros) costs only
	// the flip bits, so every unit must flip.
	var old, neu Line
	for i := range neu {
		neu[i] = 0xff
	}
	enc := neu
	res := ClassicFNW(&old, &enc)
	if res.Flips != 0xff {
		t.Fatalf("flips = %08b, want all units flipped", res.Flips)
	}
	if res.BitChanges != FNWUnits { // one flip bit per unit
		t.Fatalf("bit changes = %d, want %d", res.BitChanges, FNWUnits)
	}
}

func TestConstrainedFNWVetoesOnesIncrease(t *testing.T) {
	// Old content mostly ones, new content with few ones: classic FNW would
	// flip (inverted new is close to old), but the flipped word carries more
	// ones than the original, so LADDER must cancel it.
	var old, neu Line
	for i := range old {
		old[i] = 0xff
	}
	// neu has 1 one per byte -> inverted has 7 ones per byte.
	for i := range neu {
		neu[i] = 0x01
	}
	encClassic := neu
	rc := ClassicFNW(&old, &encClassic)
	if rc.Flips == 0 {
		t.Fatal("classic FNW unexpectedly did not flip")
	}
	encCons := neu
	cc := ConstrainedFNW(&old, &encCons)
	if cc.Flips != 0 {
		t.Fatalf("constrained FNW flipped despite ones increase: %08b", cc.Flips)
	}
	if cc.Canceled != FNWUnits {
		t.Fatalf("canceled = %d, want %d", cc.Canceled, FNWUnits)
	}
}

func TestFNWCancellationRateLowOnSparseData(t *testing.T) {
	// The paper reports <4% of flips canceled on real workloads. Real
	// workload data is ones-sparse, so inversion rarely both wins on bit
	// changes and increases the ones count. Model that with sparse lines.
	r := rand.New(rand.NewSource(99))
	sparse := func() Line {
		var l Line
		for i := range l {
			if r.Intn(4) == 0 {
				l[i] = byte(r.Intn(256)) & byte(r.Intn(256))
			}
		}
		return l
	}
	units, canceled := 0, 0
	for i := 0; i < 2000; i++ {
		old, neu := sparse(), sparse()
		enc := neu
		res := ConstrainedFNW(&old, &enc)
		units += FNWUnits
		canceled += res.Canceled
	}
	if rate := float64(canceled) / float64(units); rate > 0.05 {
		t.Fatalf("cancellation rate %.3f unexpectedly high for sparse data", rate)
	}
}

func TestFNWIdempotentWhenEqual(t *testing.T) {
	f := func(l Line) bool {
		old, enc := l, l
		res := ClassicFNW(&old, &enc)
		return res.Flips == 0 && res.BitChanges == 0 && enc == l
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
