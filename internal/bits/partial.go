package bits

// Partial counters (Section 4.1).
//
// To avoid reading the stale memory block on every write, LADDER-Est bounds
// the per-wordline LRS count with "partial counters": the mat group is split
// into NumSubgroups subgroups; for each subgroup the counter records (an
// upper bound of) the number of ones in the worst byte of the line's bytes
// that map to that subgroup. Equation 1 of the paper guarantees
//
//	C^w_lrs <= sum over blocks of S^M_i
//
// so a latency derived from the encoded bounds is always sufficient.

// NumSubgroups is the number of mat subgroups per mat group (the paper
// empirically sets N = 4). Each subgroup receives LineSize/NumSubgroups
// bytes of every memory block mapped to the wordline group.
const NumSubgroups = 4

// SubgroupBytes is the number of bytes of one line that map to one subgroup.
const SubgroupBytes = LineSize / NumSubgroups

// PartialCounters holds the per-subgroup worst-byte bounds for one line.
// Values are the decoded bounds (1, 3, 5 or 8), not raw worst-byte counts.
type PartialCounters [NumSubgroups]uint8

// partialEncode maps a worst-byte popcount (0..8) to its 2-bit code.
// Codes represent the ranges 0-1, 2-3, 4-5 and 6-8 (paper Section 4.1).
func partialEncode(worst int) uint8 {
	switch {
	case worst <= 1:
		return 0
	case worst <= 3:
		return 1
	case worst <= 5:
		return 2
	default:
		return 3
	}
}

// partialBound is the decoded upper bound for each 2-bit code.
var partialBound = [4]uint8{1, 3, 5, 8}

// EncodePartial computes the packed 8-bit partial-counter byte for a line:
// four 2-bit codes, subgroup 0 in the least-significant bits. This is the
// value LADDER-Est stores per line in the LRS-metadata block.
func EncodePartial(l *Line) uint8 {
	var packed uint8
	for g := 0; g < NumSubgroups; g++ {
		worst := WorstByte(l[g*SubgroupBytes : (g+1)*SubgroupBytes])
		packed |= partialEncode(worst) << (2 * uint(g))
	}
	return packed
}

// DecodePartial expands a packed partial-counter byte into per-subgroup
// decoded bounds.
func DecodePartial(packed uint8) PartialCounters {
	var pc PartialCounters
	for g := 0; g < NumSubgroups; g++ {
		pc[g] = partialBound[(packed>>(2*uint(g)))&3]
	}
	return pc
}

// WorstBytePerSubgroup returns the exact (unencoded) worst-byte popcount of
// each subgroup of the line, i.e. S^{M_j}_i for j = 0..N-1.
func WorstBytePerSubgroup(l *Line) PartialCounters {
	var pc PartialCounters
	for g := 0; g < NumSubgroups; g++ {
		pc[g] = uint8(WorstByte(l[g*SubgroupBytes : (g+1)*SubgroupBytes]))
	}
	return pc
}

// partialSumTable maps a packed partial-counter byte to its four decoded
// bounds spread across 16-bit lanes (subgroup g in bits 16g..16g+15), so
// EstimateCwLRS accumulates all four subgroup sums with one table load and
// one add per block. Lanes cannot overflow below 8191 blocks (max bound 8).
var partialSumTable [256]uint64

// lowSumTable is the analogue for 2-bit low-precision counters: the two
// decoded bounds in 16-bit lanes 0 and 1.
var lowSumTable [256]uint64

func init() {
	for p := range partialSumTable {
		var v uint64
		for g := 0; g < NumSubgroups; g++ {
			v |= uint64(partialBound[(p>>(2*uint(g)))&3]) << (16 * uint(g))
		}
		partialSumTable[p] = v
		lowSumTable[p] = uint64(lowBound[p&1]) | uint64(lowBound[(p>>1)&1])<<16
	}
}

// EstimateCwLRS derives the estimated worst-case wordline LRS count from the
// packed partial counters of every block in a wordline group, following
// Equation 2: per subgroup, sum the decoded bounds across blocks; the
// estimate is the maximum across subgroups. Each subgroup of a 512-cell
// wordline holds blocks*8/... — with 64 blocks and N=4 subgroups every
// wordline byte is covered exactly once per block, so the per-subgroup sum
// bounds the ones in the wordline slice owned by that subgroup.
func EstimateCwLRS(packed []uint8) int {
	if len(packed) > 4096 {
		// Lane accumulation would overflow; fall back to scalar sums.
		var sums [NumSubgroups]int
		for _, p := range packed {
			for g := 0; g < NumSubgroups; g++ {
				sums[g] += int(partialBound[(p>>(2*uint(g)))&3])
			}
		}
		max := 0
		for _, s := range sums {
			if s > max {
				max = s
			}
		}
		return max
	}
	var acc uint64
	for _, p := range packed {
		acc += partialSumTable[p]
	}
	max := 0
	for g := 0; g < NumSubgroups; g++ {
		if s := int((acc >> (16 * uint(g))) & 0xffff); s > max {
			max = s
		}
	}
	return max
}

// WorstBytesN returns the exact worst-byte popcount of each of n equal
// subgroups of the line (n must divide LineSize). It generalizes
// WorstBytePerSubgroup for the subgroup-count ablation: the paper
// empirically sets N = 4, trading estimation tightness (higher N) against
// counter storage (lower N).
func WorstBytesN(l *Line, n int) []int {
	if n <= 0 || LineSize%n != 0 {
		return nil
	}
	size := LineSize / n
	out := make([]int, n)
	for g := 0; g < n; g++ {
		out[g] = WorstByte(l[g*size : (g+1)*size])
	}
	return out
}

// EstimateCwLRSExactN applies Equation 2 with n subgroups and exact
// (unencoded) worst-byte counts over a whole wordline group: per
// subgroup, sum the worst bytes across blocks; the estimate is the
// maximum across subgroups. Used to study the estimator's tightness as a
// function of N, independent of the 2-bit encoding.
func EstimateCwLRSExactN(lines []Line, n int) int {
	if n <= 0 || LineSize%n != 0 {
		return 0
	}
	sums := make([]int, n)
	for i := range lines {
		for g, w := range WorstBytesN(&lines[i], n) {
			sums[g] += w
		}
	}
	max := 0
	for _, s := range sums {
		if s > max {
			max = s
		}
	}
	return max
}

// TrueCwLRS computes the exact worst-wordline LRS count of a wordline
// group (wordline m holds byte m of every block).
func TrueCwLRS(lines []Line) int {
	var counters [LineSize]int
	for i := range lines {
		for m := 0; m < LineSize; m++ {
			counters[m] += int(onesTable[lines[i][m]])
		}
	}
	max := 0
	for _, c := range counters {
		if c > max {
			max = c
		}
	}
	return max
}

// Low-precision 1-bit counters (Section 4.2, multi-granularity LADDER).
//
// Data blocks stored in bottom crossbar rows are insensitive to per-row data
// patterns, so LADDER-Hybrid keeps two 1-bit partial counters per line
// there: bit value 0 bounds the worst byte at 5 (range 0..5), value 1 at 8
// (range 6..8). Two bits per line pack the metadata of 4 physical pages in
// one 64-byte metadata block.

// lowBound is the decoded bound for a 1-bit partial counter.
var lowBound = [2]uint8{5, 8}

// EncodeLowPrecision computes the 2-bit low-precision counter pair for a
// line: one bit per half-line (two subgroup pairs), bit 0 covering bytes
// 0..31 and bit 1 covering bytes 32..63.
func EncodeLowPrecision(l *Line) uint8 {
	var packed uint8
	for h := 0; h < 2; h++ {
		worst := WorstByte(l[h*32 : (h+1)*32])
		if worst > 5 {
			packed |= 1 << uint(h)
		}
	}
	return packed
}

// DecodeLowPrecision expands a 2-bit low-precision pair into two bounds.
func DecodeLowPrecision(packed uint8) [2]uint8 {
	return [2]uint8{lowBound[packed&1], lowBound[(packed>>1)&1]}
}

// EstimateCwLRSLow derives the estimated wordline LRS count from 2-bit
// low-precision counters of every block in the wordline group (analogue of
// EstimateCwLRS for bottom rows).
func EstimateCwLRSLow(packed []uint8) int {
	if len(packed) > 4096 {
		var sums [2]int
		for _, p := range packed {
			sums[0] += int(lowBound[p&1])
			sums[1] += int(lowBound[(p>>1)&1])
		}
		if sums[0] > sums[1] {
			return sums[0]
		}
		return sums[1]
	}
	var acc uint64
	for _, p := range packed {
		acc += lowSumTable[p]
	}
	s0, s1 := int(acc&0xffff), int((acc>>16)&0xffff)
	if s0 > s1 {
		return s0
	}
	return s1
}
