package bits

import (
	"encoding/binary"
	mathbits "math/bits"
)

// Intra-line bit-level shifting (Section 4.1).
//
// Applications often cluster '1' bits in a few hot bytes, and the pattern
// repeats across consecutive lines of a page. That inflates the worst-byte
// partial counters. LADDER therefore shuffles, per chip, the 64 bits of the
// 8 bytes mapped to that chip so that a dense byte is spread across the
// chip's 8 mats, and applies a distinct rotation offset per block position
// in the wordline group so consecutive lines land misaligned. The transform
// must be a bijection: a reverse shift recovers the original line on reads.
//
// We realize the shuffle as an 8x8 bit-matrix transpose of each 64-bit chip
// group (bit k of byte i moves to bit i of byte k — each source byte is
// spread across all eight mats) followed by a rotation by a per-block
// offset.

// ChipGroups is the number of 8-byte chip groups in a line (x8 chips).
const ChipGroups = LineSize / 8

// transpose8x8 transposes a 64-bit value viewed as an 8x8 bit matrix
// (byte index = row, bit index = column) using the classic masked-swap
// network.
func transpose8x8(x uint64) uint64 {
	// Swap 1x1 blocks across the diagonal within 2x2 tiles.
	t := (x ^ (x >> 7)) & 0x00aa00aa00aa00aa
	x = x ^ t ^ (t << 7)
	// Swap 2x2 blocks within 4x4 tiles.
	t = (x ^ (x >> 14)) & 0x0000cccc0000cccc
	x = x ^ t ^ (t << 14)
	// Swap 4x4 blocks.
	t = (x ^ (x >> 28)) & 0x00000000f0f0f0f0
	x = x ^ t ^ (t << 28)
	return x
}

// ShiftOffset derives the rotation offset for a block from its position in
// the wordline group. Positions 0..63 map to distinct offsets coprime-ish to
// the byte width so that identical lines at different slots decorrelate.
func ShiftOffset(blockSlot int) uint {
	return uint((blockSlot*11 + 3) % 64)
}

// Shift applies the intra-line bit shuffle in place: per 8-byte chip group,
// transpose then rotate left by the block's offset.
func Shift(l *Line, blockSlot int) {
	off := ShiftOffset(blockSlot)
	for g := 0; g < ChipGroups; g++ {
		p := l[g*8 : g*8+8]
		x := binary.LittleEndian.Uint64(p)
		x = mathbits.RotateLeft64(transpose8x8(x), int(off))
		binary.LittleEndian.PutUint64(p, x)
	}
}

// Unshift reverses Shift in place, recovering the original bit order.
func Unshift(l *Line, blockSlot int) {
	off := ShiftOffset(blockSlot)
	for g := 0; g < ChipGroups; g++ {
		p := l[g*8 : g*8+8]
		x := binary.LittleEndian.Uint64(p)
		x = transpose8x8(mathbits.RotateLeft64(x, -int(off)))
		binary.LittleEndian.PutUint64(p, x)
	}
}

// Shifted returns a shifted copy, leaving the input untouched.
func Shifted(l Line, blockSlot int) Line {
	Shift(&l, blockSlot)
	return l
}

// Unshifted returns an unshifted copy, leaving the input untouched.
func Unshifted(l Line, blockSlot int) Line {
	Unshift(&l, blockSlot)
	return l
}
