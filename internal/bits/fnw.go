package bits

import (
	"encoding/binary"
	"math/bits"
)

// Flip-N-Write (Cho & Lee, MICRO 2009) and LADDER's constrained variant
// (Section 3.3).
//
// FNW compares the to-be-written data with the stale content per flip unit
// (here: one 8-byte word, one flip bit each) and stores the inverted word
// whenever that reduces the number of bit changes. Classic FNW can increase
// the number of stored '1's, which would break LADDER's LRS counting, so
// LADDER adds the constraint that a flipped word must not carry more ones
// than the original word.

// FNWUnits is the number of flip units (8-byte words) per line.
const FNWUnits = LineSize / 8

// FNWResult reports the outcome of encoding one line.
type FNWResult struct {
	// Flips is the per-unit flip mask actually applied (bit i set = unit i
	// stored inverted).
	Flips uint8
	// BitChanges is the number of cell writes (SETs + RESETs) after
	// encoding, relative to the stale content.
	BitChanges int
	// Canceled counts units where classic FNW would flip but the LADDER
	// constraint vetoed it (only populated by ConstrainedFNW).
	Canceled int
}

// fnwEncode is the shared implementation; constrained selects LADDER's
// extra rule. Each flip unit is exactly one 64-bit word, so the per-unit
// change count, its inverse (storing ^word changes the 64-changed other
// bits) and the ones balance all come from single OnesCount64 calls.
func fnwEncode(old, neu *Line, constrained bool) FNWResult {
	var res FNWResult
	for u := 0; u < FNWUnits; u++ {
		o := binary.LittleEndian.Uint64(old[u*8:])
		w := binary.LittleEndian.Uint64(neu[u*8:])
		changed := bits.OnesCount64(o ^ w)
		// Bit changes if we store the inverted word instead. The stored flip
		// bit itself also costs (up to) one change; we fold it in as the
		// classic formulation does by requiring a strict win of >1... the
		// common model charges the flip bit as one extra change.
		flipChanged := 64 - changed
		flip := flipChanged+1 < changed
		if flip && constrained {
			ones := bits.OnesCount64(w)
			if 64-ones > ones {
				flip = false
				res.Canceled++
			}
		}
		if flip {
			binary.LittleEndian.PutUint64(neu[u*8:], ^w)
			res.Flips |= 1 << uint(u)
			res.BitChanges += flipChanged + 1
		} else {
			res.BitChanges += changed
		}
	}
	return res
}

// ClassicFNW encodes neu in place against stale content old, flipping any
// unit where inversion reduces bit changes. Returns the applied flip mask
// and resulting change count.
func ClassicFNW(old, neu *Line) FNWResult {
	return fnwEncode(old, neu, false)
}

// ConstrainedFNW is LADDER's FNW: flips are additionally vetoed when the
// inverted unit would store more ones than the original, preserving the
// soundness of partial-counter estimation.
func ConstrainedFNW(old, neu *Line) FNWResult {
	return fnwEncode(old, neu, true)
}

// FNWDecode restores the logical content of a stored line given its flip
// mask.
func FNWDecode(stored *Line, flips uint8) {
	for u := 0; u < FNWUnits; u++ {
		if flips&(1<<uint(u)) == 0 {
			continue
		}
		binary.LittleEndian.PutUint64(stored[u*8:], ^binary.LittleEndian.Uint64(stored[u*8:]))
	}
}

var onesTable [256]uint8

func init() {
	for i := range onesTable {
		onesTable[i] = uint8(bits.OnesCount8(uint8(i)))
	}
}

func onesByte(b byte) int { return int(onesTable[b]) }
