package bits

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func randLine(r *rand.Rand) Line {
	var l Line
	r.Read(l[:])
	return l
}

func TestOnesZeroLine(t *testing.T) {
	var l Line
	if got := l.Ones(); got != 0 {
		t.Fatalf("Ones of zero line = %d, want 0", got)
	}
}

func TestOnesAllOnes(t *testing.T) {
	var l Line
	for i := range l {
		l[i] = 0xff
	}
	if got := l.Ones(); got != LineSize*8 {
		t.Fatalf("Ones of all-ones line = %d, want %d", got, LineSize*8)
	}
}

func TestOnesMatchesCountOnes(t *testing.T) {
	f := func(l Line) bool { return l.Ones() == CountOnes(l[:]) }
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestWorstByteBoundsAverage(t *testing.T) {
	// The worst byte is at least ceil(total/64) and at most 8.
	f := func(l Line) bool {
		w := WorstByte(l[:])
		total := l.Ones()
		lo := (total + LineSize - 1) / LineSize
		return w >= lo && w <= 8
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestWorstByteEmpty(t *testing.T) {
	if got := WorstByte(nil); got != 0 {
		t.Fatalf("WorstByte(nil) = %d, want 0", got)
	}
}

func TestWorstByteExact(t *testing.T) {
	p := []byte{0x00, 0x0f, 0xf3, 0x80}
	if got := WorstByte(p); got != 6 {
		t.Fatalf("WorstByte = %d, want 6", got)
	}
}

func TestDiffSelfIsZero(t *testing.T) {
	f := func(l Line) bool { return Diff(l[:], l[:]) == 0 }
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDiffComplement(t *testing.T) {
	var a, b Line
	for i := range a {
		a[i] = 0xaa
		b[i] = 0x55
	}
	if got := Diff(a[:], b[:]); got != LineSize*8 {
		t.Fatalf("Diff of complements = %d, want %d", got, LineSize*8)
	}
}

func TestSetsAndResetsPartitionDiff(t *testing.T) {
	f := func(a, b Line) bool {
		sets, resets := SetsAndResets(a[:], b[:])
		return sets+resets == Diff(a[:], b[:]) && sets >= 0 && resets >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSetsAndResetsDirections(t *testing.T) {
	old := []byte{0b1010}
	neu := []byte{0b0110}
	sets, resets := SetsAndResets(old, neu)
	if sets != 1 || resets != 1 {
		t.Fatalf("got sets=%d resets=%d, want 1,1", sets, resets)
	}
}

func TestOnesConservationUnderSetsResets(t *testing.T) {
	// ones(new) = ones(old) + sets - resets
	f := func(a, b Line) bool {
		sets, resets := SetsAndResets(a[:], b[:])
		return b.Ones() == a.Ones()+sets-resets
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestOnesPerByte(t *testing.T) {
	p := []byte{0xff, 0x00, 0x01, 0x7e}
	dst := make([]int, len(p))
	n := OnesPerByte(p, dst)
	if n != 4 {
		t.Fatalf("n = %d, want 4", n)
	}
	want := []int{8, 0, 1, 6}
	for i := range want {
		if dst[i] != want[i] {
			t.Fatalf("dst[%d] = %d, want %d", i, dst[i], want[i])
		}
	}
}
