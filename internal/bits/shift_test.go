package bits

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestTranspose8x8Involution(t *testing.T) {
	f := func(x uint64) bool { return transpose8x8(transpose8x8(x)) == x }
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTranspose8x8Known(t *testing.T) {
	// Row 0 = 0xff (byte 0 all ones) must transpose to column 0: bit 0 of
	// every byte set, i.e. 0x0101010101010101.
	if got := transpose8x8(0xff); got != 0x0101010101010101 {
		t.Fatalf("transpose(0xff) = %#x", got)
	}
	// Identity-diagonal is a fixed point.
	const diag = 0x8040201008040201
	if got := transpose8x8(diag); got != diag {
		t.Fatalf("transpose(diag) = %#x, want fixed point", got)
	}
}

func TestShiftRoundTrip(t *testing.T) {
	f := func(l Line, slot uint8) bool {
		s := int(slot) % 64
		orig := l
		Shift(&l, s)
		Unshift(&l, s)
		return l == orig
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestShiftPreservesOnes(t *testing.T) {
	f := func(l Line, slot uint8) bool {
		before := l.Ones()
		Shift(&l, int(slot)%64)
		return l.Ones() == before
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestShiftSpreadsDenseByte(t *testing.T) {
	// A single all-ones byte in an otherwise empty chip group has worst
	// byte 8; after shifting, its 8 bits must land in 8 different bytes.
	var l Line
	l[0] = 0xff
	Shift(&l, 0)
	if w := WorstByte(l[:8]); w != 1 {
		t.Fatalf("worst byte after shift = %d, want 1", w)
	}
}

func TestShiftOffsetsDistinct(t *testing.T) {
	seen := make(map[uint]bool)
	for slot := 0; slot < 64; slot++ {
		off := ShiftOffset(slot)
		if off >= 64 {
			t.Fatalf("offset %d out of range", off)
		}
		if seen[off] {
			t.Fatalf("offset %d repeats (slot %d)", off, slot)
		}
		seen[off] = true
	}
}

func TestShiftedUnshiftedCopies(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	l := randLine(r)
	s := Shifted(l, 5)
	if s == l {
		t.Fatal("Shifted returned identical line for random input")
	}
	if got := Unshifted(s, 5); got != l {
		t.Fatal("Unshifted(Shifted(l)) != l")
	}
}

func TestShiftReducesClusteredWorstBytes(t *testing.T) {
	// Clustered pattern: every chip group has one dense byte. Shifting
	// should reduce the summed worst-byte estimate substantially.
	var l Line
	for g := 0; g < ChipGroups; g++ {
		l[g*8] = 0xff
	}
	before := 0
	for g := 0; g < NumSubgroups; g++ {
		before += WorstByte(l[g*SubgroupBytes : (g+1)*SubgroupBytes])
	}
	Shift(&l, 0)
	after := 0
	for g := 0; g < NumSubgroups; g++ {
		after += WorstByte(l[g*SubgroupBytes : (g+1)*SubgroupBytes])
	}
	if after >= before {
		t.Fatalf("shift did not reduce clustered worst bytes: before %d after %d", before, after)
	}
}
