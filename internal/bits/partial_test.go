package bits

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPartialEncodeRanges(t *testing.T) {
	wantCode := []uint8{0, 0, 1, 1, 2, 2, 3, 3, 3}
	for worst := 0; worst <= 8; worst++ {
		if got := partialEncode(worst); got != wantCode[worst] {
			t.Errorf("partialEncode(%d) = %d, want %d", worst, got, wantCode[worst])
		}
	}
}

func TestPartialBoundIsUpperBound(t *testing.T) {
	// For every worst-byte count, the decoded bound must dominate it.
	for worst := 0; worst <= 8; worst++ {
		bound := partialBound[partialEncode(worst)]
		if int(bound) < worst {
			t.Errorf("bound %d < worst %d", bound, worst)
		}
	}
}

func TestEncodeDecodePartialDominates(t *testing.T) {
	// Decoded per-subgroup bounds must dominate the exact worst bytes.
	f := func(l Line) bool {
		pc := DecodePartial(EncodePartial(&l))
		exact := WorstBytePerSubgroup(&l)
		for g := 0; g < NumSubgroups; g++ {
			if pc[g] < exact[g] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestEquation1 verifies the paper's key soundness inequality: the true
// worst-wordline LRS count of a wordline group never exceeds the estimate
// derived from encoded partial counters (Equations 1 and 2).
func TestEquation1(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	const blocks = 64
	for trial := 0; trial < 200; trial++ {
		lines := make([]Line, blocks)
		packed := make([]uint8, blocks)
		for i := range lines {
			// Mix of dense, sparse, and clustered lines.
			switch trial % 3 {
			case 0:
				r.Read(lines[i][:])
			case 1:
				for j := 0; j < 8; j++ {
					lines[i][r.Intn(LineSize)] = 0xff
				}
			default:
				for j := range lines[i] {
					if r.Intn(10) == 0 {
						lines[i][j] = byte(r.Intn(256))
					}
				}
			}
			packed[i] = EncodePartial(&lines[i])
		}
		// True per-wordline counts: wordline m holds byte m of every block.
		trueMax := 0
		for m := 0; m < LineSize; m++ {
			c := 0
			for b := 0; b < blocks; b++ {
				c += onesByte(lines[b][m])
			}
			if c > trueMax {
				trueMax = c
			}
		}
		est := EstimateCwLRS(packed)
		if trueMax > est {
			t.Fatalf("trial %d: true Cw_lrs %d exceeds estimate %d", trial, trueMax, est)
		}
		if est > blocks*8 {
			t.Fatalf("trial %d: estimate %d exceeds physical max %d", trial, est, blocks*8)
		}
	}
}

// TestEquation1LowPrecision is the same soundness check for the 1-bit
// counters used in bottom rows by LADDER-Hybrid.
func TestEquation1LowPrecision(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	const blocks = 64
	for trial := 0; trial < 100; trial++ {
		lines := make([]Line, blocks)
		packed := make([]uint8, blocks)
		for i := range lines {
			r.Read(lines[i][:])
			packed[i] = EncodeLowPrecision(&lines[i])
		}
		trueMax := 0
		for m := 0; m < LineSize; m++ {
			c := 0
			for b := 0; b < blocks; b++ {
				c += onesByte(lines[b][m])
			}
			if c > trueMax {
				trueMax = c
			}
		}
		if est := EstimateCwLRSLow(packed); trueMax > est {
			t.Fatalf("trial %d: true %d > low-precision estimate %d", trial, trueMax, est)
		}
	}
}

func TestDecodeLowPrecision(t *testing.T) {
	cases := []struct {
		packed uint8
		want   [2]uint8
	}{
		{0b00, [2]uint8{5, 5}},
		{0b01, [2]uint8{8, 5}},
		{0b10, [2]uint8{5, 8}},
		{0b11, [2]uint8{8, 8}},
	}
	for _, c := range cases {
		if got := DecodeLowPrecision(c.packed); got != c.want {
			t.Errorf("DecodeLowPrecision(%02b) = %v, want %v", c.packed, got, c.want)
		}
	}
}

func TestEncodeLowPrecisionHalves(t *testing.T) {
	var l Line
	for i := 0; i < 32; i++ {
		l[i] = 0xff // dense first half
	}
	p := EncodeLowPrecision(&l)
	if p != 0b01 {
		t.Fatalf("packed = %02b, want 01", p)
	}
}

func TestEstimateCwLRSEmpty(t *testing.T) {
	if got := EstimateCwLRS(nil); got != 0 {
		t.Fatalf("estimate of empty group = %d, want 0", got)
	}
}

func TestEstimateCwLRSAllDense(t *testing.T) {
	packed := make([]uint8, 64)
	for i := range packed {
		packed[i] = 0xff // all subgroups code 3 -> bound 8
	}
	if got := EstimateCwLRS(packed); got != 512 {
		t.Fatalf("estimate = %d, want 512", got)
	}
}

func TestWorstBytesNValidation(t *testing.T) {
	var l Line
	if WorstBytesN(&l, 0) != nil || WorstBytesN(&l, 3) != nil {
		t.Fatal("invalid subgroup counts should return nil")
	}
	if got := len(WorstBytesN(&l, 8)); got != 8 {
		t.Fatalf("n=8 returned %d groups", got)
	}
}

// TestSubgroupTightnessMonotone: more subgroups never loosen the bound,
// and every N soundly bounds the true count (Equation 2 generalized).
func TestSubgroupTightnessMonotone(t *testing.T) {
	r := rand.New(rand.NewSource(77))
	for trial := 0; trial < 50; trial++ {
		lines := make([]Line, 64)
		for i := range lines {
			for j := 0; j < 8; j++ {
				lines[i][r.Intn(LineSize)] = byte(r.Intn(256))
			}
		}
		truth := TrueCwLRS(lines)
		prev := 1 << 30
		for _, n := range []int{1, 2, 4, 8, 16, 32, 64} {
			est := EstimateCwLRSExactN(lines, n)
			if est < truth {
				t.Fatalf("n=%d: estimate %d below truth %d", n, est, truth)
			}
			if est > prev {
				t.Fatalf("n=%d: estimate %d looser than n/2's %d", n, est, prev)
			}
			prev = est
		}
		// With 64 subgroups each subgroup is a single byte position, so the
		// per-subgroup sum is exactly the per-wordline counter and the
		// bound collapses to the truth.
		if got := EstimateCwLRSExactN(lines, 64); got != truth {
			t.Fatalf("n=64 estimate %d should equal truth %d", got, truth)
		}
	}
}
