// Package bits provides bit-level utilities used throughout the LADDER
// framework: popcount helpers over memory lines, worst-byte partial counters
// (Section 4.1 of the paper), Flip-N-Write encoding and LADDER's constrained
// variant (Section 3.3), and the intra-line bit-level shifting transform
// (Section 4.1, "Improving estimation performance with shifting").
//
// Throughout this package a "line" is a 64-byte memory block, the unit the
// memory controller writes to the ReRAM main memory. A logical '1' stored in
// a cell corresponds to the low-resistance state (LRS); counting ones is
// therefore counting LRS cells.
//
// The helpers on this file are on the per-write hot path (FNW, LRS counting
// and the Est/Hybrid estimators all popcount whole lines), so they operate
// word-wise: eight bytes per step via math/bits.OnesCount64, with a SWAR
// per-byte popcount network where per-byte resolution is needed.
package bits

import (
	"encoding/binary"
	"math/bits"
)

// LineSize is the size in bytes of one memory block (cache line).
const LineSize = 64

// Line is a 64-byte memory block as seen by the memory controller.
type Line [LineSize]byte

// lineWords is the number of 64-bit words per line.
const lineWords = LineSize / 8

// perBytePop returns the popcount of every byte of x in the corresponding
// byte lane of the result (each lane holds 0..8) — the first three steps of
// the classic SWAR popcount, stopped before the lanes are summed.
func perBytePop(x uint64) uint64 {
	x -= (x >> 1) & 0x5555555555555555
	x = (x & 0x3333333333333333) + ((x >> 2) & 0x3333333333333333)
	return (x + (x >> 4)) & 0x0f0f0f0f0f0f0f0f
}

// worstLane returns the maximum byte-lane value of a perBytePop result.
func worstLane(lanes uint64) int {
	m := 0
	for ; lanes != 0; lanes >>= 8 {
		if c := int(lanes & 0xff); c > m {
			m = c
		}
	}
	return m
}

// Ones returns the total number of '1' bits (LRS cells) in the line.
func (l *Line) Ones() int {
	n := 0
	for o := 0; o < LineSize; o += 8 {
		n += bits.OnesCount64(binary.LittleEndian.Uint64(l[o:]))
	}
	return n
}

// CountOnes returns the number of '1' bits in an arbitrary byte slice.
func CountOnes(p []byte) int {
	n := 0
	for len(p) >= 8 {
		n += bits.OnesCount64(binary.LittleEndian.Uint64(p))
		p = p[8:]
	}
	for _, b := range p {
		n += bits.OnesCount8(b)
	}
	return n
}

// WorstByte returns the maximum per-byte popcount in p, i.e. S^M in the
// paper's notation: the number of ones in the worst byte of the block.
// It returns 0 for an empty slice.
func WorstByte(p []byte) int {
	m := 0
	for len(p) >= 8 {
		if c := worstLane(perBytePop(binary.LittleEndian.Uint64(p))); c > m {
			m = c
		}
		p = p[8:]
	}
	for _, b := range p {
		if c := bits.OnesCount8(b); c > m {
			m = c
		}
	}
	return m
}

// Diff counts positions where a and b differ (Hamming distance in bits).
// Both slices must have equal length; extra bytes in the longer slice are
// ignored.
func Diff(a, b []byte) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	d := 0
	i := 0
	for ; i+8 <= n; i += 8 {
		d += bits.OnesCount64(binary.LittleEndian.Uint64(a[i:]) ^ binary.LittleEndian.Uint64(b[i:]))
	}
	for ; i < n; i++ {
		d += bits.OnesCount8(a[i] ^ b[i])
	}
	return d
}

// SetsAndResets counts bit transitions between stale content old and new
// content neu. A SET is a 0→1 transition (HRS→LRS); a RESET is a 1→0
// transition (LRS→HRS). RESETs are the latency-critical operation in
// crossbar ReRAM.
func SetsAndResets(old, neu []byte) (sets, resets int) {
	n := len(old)
	if len(neu) < n {
		n = len(neu)
	}
	i := 0
	for ; i+8 <= n; i += 8 {
		o := binary.LittleEndian.Uint64(old[i:])
		w := binary.LittleEndian.Uint64(neu[i:])
		changed := o ^ w
		sets += bits.OnesCount64(changed & w)
		resets += bits.OnesCount64(changed &^ w)
	}
	for ; i < n; i++ {
		changed := old[i] ^ neu[i]
		sets += bits.OnesCount8(changed & neu[i])
		resets += bits.OnesCount8(changed &^ neu[i])
	}
	return sets, resets
}

// OnesPerByte fills dst with the popcount of every byte of p and returns the
// number of entries written. dst must be at least len(p) long.
func OnesPerByte(p []byte, dst []int) int {
	i := 0
	for ; i+8 <= len(p); i += 8 {
		lanes := perBytePop(binary.LittleEndian.Uint64(p[i:]))
		for k := 0; k < 8; k++ {
			dst[i+k] = int(lanes & 0xff)
			lanes >>= 8
		}
	}
	for ; i < len(p); i++ {
		dst[i] = bits.OnesCount8(p[i])
	}
	return len(p)
}
