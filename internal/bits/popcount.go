// Package bits provides bit-level utilities used throughout the LADDER
// framework: popcount helpers over memory lines, worst-byte partial counters
// (Section 4.1 of the paper), Flip-N-Write encoding and LADDER's constrained
// variant (Section 3.3), and the intra-line bit-level shifting transform
// (Section 4.1, "Improving estimation performance with shifting").
//
// Throughout this package a "line" is a 64-byte memory block, the unit the
// memory controller writes to the ReRAM main memory. A logical '1' stored in
// a cell corresponds to the low-resistance state (LRS); counting ones is
// therefore counting LRS cells.
package bits

import "math/bits"

// LineSize is the size in bytes of one memory block (cache line).
const LineSize = 64

// Line is a 64-byte memory block as seen by the memory controller.
type Line [LineSize]byte

// Ones returns the total number of '1' bits (LRS cells) in the line.
func (l *Line) Ones() int {
	n := 0
	for _, b := range l {
		n += bits.OnesCount8(b)
	}
	return n
}

// CountOnes returns the number of '1' bits in an arbitrary byte slice.
func CountOnes(p []byte) int {
	n := 0
	for _, b := range p {
		n += bits.OnesCount8(b)
	}
	return n
}

// WorstByte returns the maximum per-byte popcount in p, i.e. S^M in the
// paper's notation: the number of ones in the worst byte of the block.
// It returns 0 for an empty slice.
func WorstByte(p []byte) int {
	m := 0
	for _, b := range p {
		if c := bits.OnesCount8(b); c > m {
			m = c
		}
	}
	return m
}

// Diff counts positions where a and b differ (Hamming distance in bits).
// Both slices must have equal length; extra bytes in the longer slice are
// ignored.
func Diff(a, b []byte) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	d := 0
	for i := 0; i < n; i++ {
		d += bits.OnesCount8(a[i] ^ b[i])
	}
	return d
}

// SetsAndResets counts bit transitions between stale content old and new
// content neu. A SET is a 0→1 transition (HRS→LRS); a RESET is a 1→0
// transition (LRS→HRS). RESETs are the latency-critical operation in
// crossbar ReRAM.
func SetsAndResets(old, neu []byte) (sets, resets int) {
	n := len(old)
	if len(neu) < n {
		n = len(neu)
	}
	for i := 0; i < n; i++ {
		changed := old[i] ^ neu[i]
		sets += bits.OnesCount8(changed & neu[i])
		resets += bits.OnesCount8(changed &^ neu[i])
	}
	return sets, resets
}

// OnesPerByte fills dst with the popcount of every byte of p and returns the
// number of entries written. dst must be at least len(p) long.
func OnesPerByte(p []byte, dst []int) int {
	for i, b := range p {
		dst[i] = bits.OnesCount8(b)
	}
	return len(p)
}
