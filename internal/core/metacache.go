package core

import (
	"fmt"

	"ladder/internal/reram"
)

// LRS-metadata cache (Section 3.3).
//
// A small set-associative cache in the memory controller holds active
// LRS-metadata lines. Each tag carries a Sharer count: the number of write
// queue entries whose data block needs this line. Eviction only considers
// ways with zero sharers; when a set has none, the incoming write request
// parks in a bounded spill buffer and retries when the scheduler switches
// between read and write mode.

// MetaCacheConfig sizes the cache (paper Table 2: 64 KB, 4-way, 64 B
// lines; 16-entry spill buffer).
type MetaCacheConfig struct {
	SizeBytes int
	Ways      int
	SpillSize int
}

// DefaultMetaCacheConfig returns the paper's configuration.
func DefaultMetaCacheConfig() MetaCacheConfig {
	return MetaCacheConfig{SizeBytes: 64 << 10, Ways: 4, SpillSize: 16}
}

// entryState tracks a way's lifecycle.
type entryState int

const (
	entryInvalid entryState = iota
	// entryFilling: a metadata read is in flight for this way.
	entryFilling
	entryValid
)

// MetaLine is the 64-byte payload of one metadata block.
type MetaLine [MetaLineSize]byte

// metaEntry is one cache way.
type metaEntry struct {
	key     uint64
	state   entryState
	dirty   bool
	sharers int
	lastUse uint64
	loc     reram.Location
	data    MetaLine
}

// MetaCache is the LRS-metadata cache plus the backing metadata memory
// image (the reserved region's persisted contents).
type MetaCache struct {
	cfg MetaCacheConfig
	// entries is one flat slab of numSets×Ways ways; set s occupies
	// entries[s*Ways : (s+1)*Ways]. One allocation instead of one per set
	// — a cache is built per channel per run, and grid sweeps build many.
	entries []metaEntry
	numSets int
	tick    uint64
	// backing is the metadata region content as persisted in main
	// memory; entries absent are synthesized by init (boot-time
	// initialization from resident memory content) or read as zero.
	backing map[uint64]MetaLine
	// init synthesizes first-touch metadata lines; the host initializes
	// the LRS-metadata region consistently with memory content at boot.
	init func(key uint64) MetaLine
	// evictions counts valid lines displaced by Reserve (dirty or clean);
	// exported into the run metrics as core.meta_cache.evictions.
	evictions uint64
}

// SetInitializer installs the boot-time metadata synthesizer.
func (c *MetaCache) SetInitializer(f func(key uint64) MetaLine) { c.init = f }

// NewMetaCache builds a cache from the configuration.
func NewMetaCache(cfg MetaCacheConfig) (*MetaCache, error) {
	lines := cfg.SizeBytes / MetaLineSize
	if cfg.Ways <= 0 || lines <= 0 || lines%cfg.Ways != 0 {
		return nil, fmt.Errorf("core: bad metadata cache geometry (%d B, %d ways)", cfg.SizeBytes, cfg.Ways)
	}
	if cfg.SpillSize <= 0 {
		return nil, fmt.Errorf("core: spill buffer size must be positive")
	}
	numSets := lines / cfg.Ways
	return &MetaCache{cfg: cfg, entries: make([]metaEntry, numSets*cfg.Ways), numSets: numSets, backing: make(map[uint64]MetaLine)}, nil
}

func (c *MetaCache) setOf(key uint64) []metaEntry {
	s := int(mix64(key) % uint64(c.numSets))
	return c.entries[s*c.cfg.Ways : (s+1)*c.cfg.Ways]
}

// find returns the way holding key, or nil.
func (c *MetaCache) find(key uint64) *metaEntry {
	set := c.setOf(key)
	for i := range set {
		if set[i].state != entryInvalid && set[i].key == key {
			return &set[i]
		}
	}
	return nil
}

// Lookup reports whether key is present (valid or filling) and bumps LRU.
func (c *MetaCache) Lookup(key uint64) (present, valid bool) {
	e := c.find(key)
	if e == nil {
		return false, false
	}
	c.tick++
	e.lastUse = c.tick
	return true, e.state == entryValid
}

// AddSharer increments the sharer count of a present line.
func (c *MetaCache) AddSharer(key uint64) {
	if e := c.find(key); e != nil {
		e.sharers++
	}
}

// Release decrements the sharer count when a write queue entry that used
// the line retires.
func (c *MetaCache) Release(key uint64) {
	e := c.find(key)
	if e == nil {
		return
	}
	e.sharers--
	if e.sharers < 0 {
		panic(fmt.Sprintf("core: metadata line %d sharer count went negative", key))
	}
}

// Reserve allocates a way for key in the filling state with one sharer.
// If the victim is dirty its writeback is returned so the controller can
// enqueue a metadata write. ok is false when every way has sharers (the
// caller must spill).
func (c *MetaCache) Reserve(key uint64, loc reram.Location) (wb *MetaWriteback, ok bool) {
	set := c.setOf(key)
	var victim *metaEntry
	for i := range set {
		e := &set[i]
		if e.state == entryInvalid {
			victim = e
			break
		}
		if e.sharers == 0 && (victim == nil || victim.state != entryInvalid && e.lastUse < victim.lastUse) {
			victim = e
		}
	}
	if victim == nil {
		return nil, false
	}
	if victim.state != entryInvalid {
		c.evictions++
		if victim.dirty {
			// Persist the evicted content and charge a metadata write.
			c.backing[victim.key] = victim.data
			wb = &MetaWriteback{Key: victim.key, Loc: victim.loc}
		}
	}
	c.tick++
	*victim = metaEntry{key: key, state: entryFilling, sharers: 1, lastUse: c.tick, loc: loc}
	return wb, true
}

// Fill completes a metadata read: the way becomes valid with the backing
// content (synthesized on first touch when an initializer is set).
func (c *MetaCache) Fill(key uint64) {
	e := c.find(key)
	if e == nil || e.state != entryFilling {
		return
	}
	data, ok := c.backing[key]
	if !ok && c.init != nil {
		data = c.init(key)
		c.backing[key] = data
	}
	e.data = data
	e.state = entryValid
}

// Data returns a pointer to a valid line's payload for in-place update,
// or nil when absent/filling.
func (c *MetaCache) Data(key uint64) *MetaLine {
	e := c.find(key)
	if e == nil || e.state != entryValid {
		return nil
	}
	return &e.data
}

// MarkDirty flags a line as modified.
func (c *MetaCache) MarkDirty(key uint64) {
	if e := c.find(key); e != nil {
		e.dirty = true
	}
}

// Evictions returns how many valid lines Reserve has displaced (dirty
// and clean alike; dirty ones additionally produced writebacks).
func (c *MetaCache) Evictions() uint64 { return c.evictions }

// Sharers returns the sharer count (testing/diagnostics).
func (c *MetaCache) Sharers(key uint64) int {
	if e := c.find(key); e != nil {
		return e.sharers
	}
	return 0
}

// Backing returns the persisted copy of a metadata line.
func (c *MetaCache) Backing(key uint64) MetaLine { return c.backing[key] }

// SpillCapacity returns the spill buffer bound.
func (c *MetaCache) SpillCapacity() int { return c.cfg.SpillSize }

// Crash models an abrupt power failure: every cached line — including
// dirty LRS-metadata that never reached the NVM — is lost. The backing
// image keeps only what was persisted. The controller must be quiescent
// (no write-queue entry holding sharers); Crash panics otherwise, because
// losing a line out from under an in-flight write is a simulator bug, not
// a device behavior.
func (c *MetaCache) Crash() {
	for i := range c.entries {
		if c.entries[i].state != entryInvalid && c.entries[i].sharers > 0 {
			panic("core: crash with in-flight sharers; drain the controller first")
		}
		c.entries[i] = metaEntry{}
	}
}

// RecoverConservative performs the paper's lazy LRS-metadata correction
// (Section 7): after a crash the restored system cannot tell which
// metadata lines were stale, so it conservatively overwrites the region
// with maximum counter values. Later data writes use safe RESET timings
// and gradually re-tighten the counters.
func (c *MetaCache) RecoverConservative(max MetaLine) {
	for key := range c.backing {
		c.backing[key] = max
	}
	// Unseen lines also read as conservative values post-crash: the boot
	// scan that synthesized first-touch metadata is no longer trusted.
	c.init = func(uint64) MetaLine { return max }
}
