package core

import (
	"ladder/internal/bits"
	"ladder/internal/compress"
)

// simpleScheme covers every policy that needs no controller-side metadata
// state: the pessimistic baseline, the location-aware and Oracle
// idealizations of Figure 2, the Split-reset prior work (compression +
// half-RESET phases) and the BLP prior work (bitline profiling circuitry
// in the memory device, hence free content knowledge).
type simpleScheme struct {
	env     *Env
	name    string
	latency func(*Env, *WriteRequest) float64
}

// NewBaseline returns the baseline scheme: every write uses the
// pessimistic fixed worst-case RESET latency.
func NewBaseline(env *Env) Scheme {
	return &simpleScheme{env: env, name: "baseline", latency: func(e *Env, _ *WriteRequest) float64 {
		return e.Tables.WorstNs
	}}
}

// NewLocationAware returns the idealized location-only scheme of Figure 2:
// latency keyed on (WL, BL) with worst-case content assumed.
func NewLocationAware(env *Env) Scheme {
	return &simpleScheme{env: env, name: "location-aware", latency: func(e *Env, req *WriteRequest) float64 {
		return e.Tables.WL.LocationOnly(req.Loc.WL, req.Loc.BLHigh)
	}}
}

// NewOracle returns the Oracle scheme: the controller magically knows the
// exact worst-wordline LRS count, bounding what any realizable
// content-aware mechanism can achieve.
func NewOracle(env *Env) Scheme {
	return &simpleScheme{env: env, name: "Oracle", latency: func(e *Env, req *WriteRequest) float64 {
		c, err := e.Store.MaxRowCounter(req.Line)
		if err != nil {
			return e.Tables.WorstNs
		}
		req.Clrs = c
		return e.Tables.WL.Lookup(req.Loc.WL, req.Loc.BLHigh, c)
	}}
}

// NewSplitReset returns the Split-reset scheme (Xu et al., HPCA 2015):
// each RESET phase writes at most 4 bits per mat. FPC-compressible lines
// fit in half the bitlines and finish in one phase; others take two
// sequential phases. Content is unknown, so each phase uses the
// location-dependent worst-content latency of the 4-cell table.
func NewSplitReset(env *Env) Scheme {
	return &simpleScheme{env: env, name: "Split-reset", latency: func(e *Env, req *WriteRequest) float64 {
		phase := e.Tables.Half.LocationOnly(req.Loc.WL, req.Loc.BLHigh)
		if compress.Compressible(req.Payload[:]) {
			return phase
		}
		return 2 * phase
	}}
}

// NewBLP returns the bitline-profiling scheme (Wen et al., TCAD 2019):
// profiling circuitry embedded in the memory tracks per-bitline data
// patterns, free of metadata traffic but requiring ReRAM chip changes —
// the cost LADDER avoids. Following the original proposal, writes are
// classified into a fast and a slow speed grade: when every selected
// bitline's LRS count is at or below the half-full threshold, the write
// uses the latency that is safe for that threshold; otherwise it falls
// back to the worst case. (LADDER's contribution is precisely the finer,
// 8-level content model.)
func NewBLP(env *Env) Scheme {
	return &simpleScheme{env: env, name: "BLP", latency: func(e *Env, req *WriteRequest) float64 {
		c, err := e.Store.MaxSelectedColCount(req.Line)
		if err != nil {
			return e.Tables.WorstNs
		}
		// The fast grade must be safe for any pattern up to the
		// classification threshold (3/4 full): profiling counts have to
		// cover writes queued behind them, so the published design keeps
		// the fast grade conservative.
		threshold := e.Geom.MatRows * 3 / 4
		if c <= threshold {
			return e.Tables.BL.Lookup(req.Loc.WL, req.Loc.BLHigh, threshold)
		}
		return e.Tables.BL.LocationOnly(req.Loc.WL, req.Loc.BLHigh)
	}}
}

func (s *simpleScheme) Name() string { return s.name }

func (s *simpleScheme) Enqueue(req *WriteRequest) ([]AuxRead, []MetaWriteback) {
	req.Payload = req.Data
	return nil, nil
}

func (s *simpleScheme) SMBArrived(*WriteRequest, bits.Line) {}

func (s *simpleScheme) MetaArrived(uint64) {}

func (s *simpleScheme) RetrySpill() ([]AuxRead, []MetaWriteback) { return nil, nil }

func (s *simpleScheme) Ready(*WriteRequest) bool { return true }

func (s *simpleScheme) Latency(req *WriteRequest) float64 { return s.latency(s.env, req) }

func (s *simpleScheme) Complete(*WriteRequest, bits.Line, bits.Line) []MetaWriteback { return nil }

func (s *simpleScheme) DecodeRead(_ uint64, payload bits.Line) bits.Line { return payload }

func (s *simpleScheme) UseConstrainedFNW() bool { return false }
