package core

import (
	"encoding/binary"

	"ladder/internal/bits"
	"ladder/internal/reram"
)

// Basic is the LADDER-Basic scheme (Section 3.3): accurate per-wordline
// LRS counters. Each wordline group owns an LRS-counter group of 64
// counters spanning two metadata blocks; every data write additionally
// reads the stale memory block (SMB) so the controller can derive the
// exact counter deltas.
type Basic struct {
	*ladderBase
}

// NewBasic builds the scheme with the default metadata cache.
func NewBasic(env *Env) (*Basic, error) {
	return NewBasicCache(env, DefaultMetaCacheConfig())
}

// NewBasicCache builds the scheme with an explicit cache configuration
// (cache-size ablations).
func NewBasicCache(env *Env, cacheCfg MetaCacheConfig) (*Basic, error) {
	b, err := newLadderBase(env, cacheCfg)
	if err != nil {
		return nil, err
	}
	s := &Basic{ladderBase: b}
	// Boot-time metadata: exact counters of the covered wordline group.
	b.cache.SetInitializer(func(key uint64) MetaLine {
		globalRow, half := key/2, int(key%2)
		base := env.Geom.RowBaseLine(globalRow)
		var ml MetaLine
		if err := env.Store.EnsureRow(base); err != nil {
			return ml
		}
		counters, err := env.Store.RowCounters(base)
		if err != nil {
			return ml
		}
		for i := 0; i < 32; i++ {
			binary.LittleEndian.PutUint16(ml[i*2:], counters[half*32+i])
		}
		return ml
	})
	return s, nil
}

// Name implements Scheme.
func (s *Basic) Name() string { return "LADDER-Basic" }

func (s *Basic) keys(req *WriteRequest) []uint64 {
	ks := s.layout.BasicKeys(s.env.Geom.GlobalRow(req.Loc))
	// See Est.keys: reuse the request's MetaKeys backing.
	return append(req.MetaKeys[:0], ks[0], ks[1])
}

// Enqueue implements Scheme: Basic stores the line unshifted, needs the
// SMB, and acquires both halves of the counter group.
func (s *Basic) Enqueue(req *WriteRequest) ([]AuxRead, []MetaWriteback) {
	req.Payload = payloadFor(req.Data, req.Loc.Slot, false)
	req.WaitSMB = true
	s.env.Stats.SMBReads++
	aux := []AuxRead{{Kind: AuxSMB, Key: req.Line, Loc: req.Loc}}
	metaAux, wbs := s.acquire(req, s.keys(req))
	return append(aux, metaAux...), wbs
}

// SMBArrived implements Scheme.
func (s *Basic) SMBArrived(req *WriteRequest, stale bits.Line) {
	req.Stale = stale
	req.WaitSMB = false
}

// MetaArrived implements Scheme.
func (s *Basic) MetaArrived(key uint64) { s.metaArrived(key) }

// RetrySpill implements Scheme.
func (s *Basic) RetrySpill() ([]AuxRead, []MetaWriteback) {
	return s.retrySpill(s.keys)
}

// Ready implements Scheme: the paper prioritizes writes with both the SMB
// and the counter lines resident.
func (s *Basic) Ready(req *WriteRequest) bool { return !req.WaitSMB && !req.WaitMeta }

// counterAt reads counter m of a wordline group from its two cached
// metadata lines: line 0 holds counters 0–31, line 1 holds 32–63, stored
// as 16-bit values (capacity-equivalent to the paper's 10-bit packing).
func (s *Basic) counterAt(keys []uint64, m int) int {
	line := s.cache.Data(keys[m/32])
	if line == nil {
		return -1
	}
	off := (m % 32) * 2
	return int(binary.LittleEndian.Uint16(line[off : off+2]))
}

// maxCounter derives C^w_lrs from the cached counter group.
func (s *Basic) maxCounter(keys []uint64) (int, bool) {
	max := 0
	for m := 0; m < reram.BlockSize; m++ {
		c := s.counterAt(keys, m)
		if c < 0 {
			return 0, false
		}
		if c > max {
			max = c
		}
	}
	return max, true
}

// Latency implements Scheme.
func (s *Basic) Latency(req *WriteRequest) float64 {
	c, ok := s.maxCounter(req.MetaKeys)
	if !ok {
		// Metadata unexpectedly absent: fall back to the safe bound.
		return s.env.Tables.WorstNs
	}
	s.recordCounterDiff(req, c, false)
	req.Clrs = c
	return s.env.Tables.WL.Lookup(req.Loc.WL, req.Loc.BLHigh, c)
}

// Complete implements Scheme: with the SMB in hand and Flip-N-Write being
// deterministic, the controller reconstructs the exact stored content, so
// the cached counter group is updated to the device's true per-wordline
// counts.
func (s *Basic) Complete(req *WriteRequest, old, stored bits.Line) []MetaWriteback {
	counters, err := s.env.Store.RowCounters(req.Line)
	if err == nil {
		for half := 0; half < 2; half++ {
			line := s.cache.Data(req.MetaKeys[half])
			if line == nil {
				continue
			}
			for i := 0; i < 32; i++ {
				binary.LittleEndian.PutUint16(line[i*2:], counters[half*32+i])
			}
			s.cache.MarkDirty(req.MetaKeys[half])
		}
	}
	s.release(req)
	return nil
}

// DecodeRead implements Scheme (Basic stores lines unshifted).
func (s *Basic) DecodeRead(_ uint64, payload bits.Line) bits.Line { return payload }

// UseConstrainedFNW implements Scheme: all LADDER variants require the
// ones-bounded FNW so counting stays sound.
func (s *Basic) UseConstrainedFNW() bool { return true }

// CrashRecover implements CrashRecoverable.
func (s *Basic) CrashRecover() { s.crashRecover() }
