package core

import (
	"ladder/internal/reram"
)

// Metadata layout (Sections 3.3, 4.1, 4.2).
//
// The LRS-metadata lives in a reserved region of main memory that the host
// carves out at boot and hides from the OS. Three layouts exist:
//
//   - Basic: one LRS-counter group per wordline group — 64 counters of 10
//     bits ≈ 80 B, spanning two 64 B metadata blocks (3.12% of capacity).
//   - Est: one packed partial-counter byte per data block — 64 B per 4 KB
//     page, a single metadata block (1.56%).
//   - Hybrid: rows near the write driver (low wordline index) keep two
//     1-bit counters per block — 16 B per page, so one metadata block
//     covers four pages; other rows use the Est layout.

// MetaLineSize is the metadata block size (one memory line).
const MetaLineSize = 64

// DefaultLowPrecisionRows is the number of crossbar rows nearest the
// write driver that LADDER-Hybrid tracks with 1-bit counters (the paper
// empirically sets the bottom 128 of 512 rows).
const DefaultLowPrecisionRows = 128

// Layout computes metadata keys, physical placements and storage
// overheads.
type Layout struct {
	Geom reram.Geometry
	// LowPrecisionRows is the WL-index threshold below which Hybrid uses
	// 1-bit counters.
	LowPrecisionRows int
}

// NewLayout returns the default layout for a geometry.
func NewLayout(g reram.Geometry) Layout {
	return Layout{Geom: g, LowPrecisionRows: DefaultLowPrecisionRows}
}

// hybridLowKeyBit tags metadata keys of the Hybrid low-precision space so
// they never collide with Est-style per-row keys.
const hybridLowKeyBit = uint64(1) << 62

// BasicKeys returns the two metadata line keys of a wordline group under
// the Basic layout (counters 0–31 and 32–63).
func (l Layout) BasicKeys(globalRow uint64) [2]uint64 {
	return [2]uint64{globalRow * 2, globalRow*2 + 1}
}

// EstKey returns the single metadata line key of a wordline group under
// the Est layout.
func (l Layout) EstKey(globalRow uint64) uint64 { return globalRow }

// HybridKey returns the metadata key for a data block under the Hybrid
// layout and whether the low-precision (1-bit) encoding applies. Four
// *address-adjacent* pages of the same channel share one low-precision
// line, so sequential footprints hit the shared line repeatedly — the
// locality improvement Section 4.2 credits the compact layout with. High
// rows fall back to the Est key space (globalRow-keyed).
func (l Layout) HybridKey(line uint64, globalRow uint64, wl int) (key uint64, low bool) {
	if wl >= l.LowPrecisionRows {
		return globalRow, false
	}
	rowWalk := line / reram.BlocksPerRow
	ch := rowWalk % uint64(l.Geom.Channels)
	group := rowWalk / uint64(l.Geom.Channels) / 4
	return hybridLowKeyBit | (group*uint64(l.Geom.Channels) + ch), true
}

// LowGroupIndex returns which quarter of a low-precision metadata line a
// block's wordline group occupies.
func (l Layout) LowGroupIndex(line uint64) int {
	return int(line / reram.BlocksPerRow / uint64(l.Geom.Channels) % 4)
}

// LowGroupLines returns the slot-0 line addresses of the four wordline
// groups covered by a low-precision metadata key.
func (l Layout) LowGroupLines(key uint64) [4]uint64 {
	v := key &^ hybridLowKeyBit
	ch := v % uint64(l.Geom.Channels)
	group := v / uint64(l.Geom.Channels)
	var out [4]uint64
	for q := 0; q < 4; q++ {
		rowWalk := (group*4+uint64(q))*uint64(l.Geom.Channels) + ch
		out[q] = rowWalk * reram.BlocksPerRow
	}
	return out
}

// MetaLoc places a metadata line in the reserved region: the same bank as
// the data it covers (metadata is fetched through the same channel), in
// the top rows of the bank. The row is derived from the key so distinct
// metadata lines spread across the reserved rows, giving them varied
// (but generally far, hence conservative) write latencies.
func (l Layout) MetaLoc(key uint64, dataLoc reram.Location) reram.Location {
	reserved := l.Geom.RowsPerBank() / 25 // ≈4% of rows, enough for any layout
	if reserved == 0 {
		reserved = 1
	}
	row := l.Geom.RowsPerBank() - reserved + int(mix64(key)%uint64(reserved))
	return reram.Location{
		Channel: dataLoc.Channel,
		Rank:    dataLoc.Rank,
		Bank:    dataLoc.Bank,
		Row:     row,
		Slot:    int(key % reram.BlocksPerRow),
		WL:      row % l.Geom.MatRows,
		BLHigh:  int(key%reram.BlocksPerRow)*8 + 7,
	}
}

// StorageOverheadBasic returns the Basic layout's metadata storage as a
// fraction of data capacity: two metadata blocks per 64-block page.
func (l Layout) StorageOverheadBasic() float64 {
	return 2.0 * MetaLineSize / reram.RowBytes
}

// StorageOverheadEst returns the Est layout's overhead: one metadata
// block per page.
func (l Layout) StorageOverheadEst() float64 {
	return 1.0 * MetaLineSize / reram.RowBytes
}

// StorageOverheadHybrid returns the Hybrid layout's overhead: pages in
// low-precision rows share a metadata block four ways.
func (l Layout) StorageOverheadHybrid() float64 {
	lowFrac := float64(l.LowPrecisionRows) / float64(l.Geom.MatRows)
	return lowFrac*(MetaLineSize/4.0)/reram.RowBytes + (1-lowFrac)*MetaLineSize/reram.RowBytes
}

// mix64 is splitmix64's mixing function, used to scatter keys.
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
