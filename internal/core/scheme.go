// Package core implements the LADDER control logic and every write scheme
// the paper studies: the pessimistic baseline, the location-aware and
// Oracle idealizations (Figure 2), the Split-reset and BLP prior works,
// and the three LADDER variants — Basic (accurate LRS counters with stale
// memory block reads, Section 3.3), Est (partial-counter estimation with
// intra-line bit shifting, Section 4.1) and Hybrid (multi-granularity
// counters, Section 4.2).
//
// A Scheme plugs into the memory controller (package memctrl): the
// controller calls Enqueue when a data write enters the write queue,
// delivers auxiliary read completions, asks Ready/Latency at dispatch, and
// calls Complete when the device finishes.
//
// Schemes share an Env — geometry, content store, timing tables, the
// Stats accumulator, and an optional metrics.Registry through which the
// estimator and metadata cache publish their accuracy and hit-rate
// instruments (Sections 4.1/4.3; catalog in docs/METRICS.md).
//
// Schemes are constructed by name through a registry (RegisterScheme /
// NewScheme): the built-ins register at init in the paper's evaluation
// order, and an externally registered SchemeFactory is immediately
// runnable everywhere a built-in is — the simulator, laddersim and the
// experiments driver all resolve Config.Scheme through NewScheme and
// hold no scheme switch of their own.
package core

import (
	"ladder/internal/bits"
	"ladder/internal/metrics"
	"ladder/internal/reram"
	"ladder/internal/timing"
)

// AuxKind classifies auxiliary read requests a scheme generates.
type AuxKind int

const (
	// AuxSMB is a stale-memory-block read: the current content of the
	// data line, needed by LADDER-Basic to compute exact counter deltas.
	AuxSMB AuxKind = iota
	// AuxMeta is an LRS-metadata line read from the reserved region.
	AuxMeta
)

// AuxRead is an auxiliary read the controller must issue on behalf of a
// write request.
type AuxRead struct {
	Kind AuxKind
	// Key identifies the target: the data line address for AuxSMB, the
	// metadata line key for AuxMeta.
	Key uint64
	// Loc is the physical location, for bank timing.
	Loc reram.Location
}

// MetaWriteback is a dirty LRS-metadata line evicted from the metadata
// cache; the controller enqueues it as a metadata write.
type MetaWriteback struct {
	Key uint64
	Loc reram.Location
}

// WriteRequest is a data write resident in the controller's write queue,
// extended with the per-scheme fields the paper adds to write queue
// entries (SMB storage, Present flag, partial counters).
type WriteRequest struct {
	// Line and Loc identify the data block.
	Line uint64
	Loc  reram.Location
	// Data is the logical content from the processor.
	Data bits.Line
	// Payload is the content handed to the device after the controller
	// datapath (bit shifting for LADDER-Est/Hybrid); the device may still
	// apply Flip-N-Write on top.
	Payload bits.Line
	// Partial is the packed partial-counter byte computed at enqueue
	// (LADDER-Est/Hybrid).
	Partial uint8
	// WaitSMB/WaitMeta gate dispatch until auxiliary reads complete.
	WaitSMB  bool
	WaitMeta bool
	// Spilled marks a request parked in the spill buffer because its
	// metadata set had no evictable way.
	Spilled bool
	// MetaKeys are the LRS-metadata lines this write needs (one for Est/
	// Hybrid, two for Basic).
	MetaKeys []uint64
	// MetaPending counts metadata fills still in flight for this request.
	MetaPending int
	// Stale is the SMB content once read.
	Stale bits.Line
	// IsMeta marks metadata writebacks travelling through the write queue.
	IsMeta bool
	// MetaKey is the metadata line being written back (IsMeta only).
	MetaKey uint64
	// EnqueueCycle and DispatchCycle time the request's life.
	EnqueueCycle  uint64
	DispatchCycle uint64
	// Clrs is the raw C_lrs count the scheme resolved at dispatch (-1
	// when the scheme has no content knowledge). The tracing layer maps
	// it to the timing-table content bucket.
	Clrs int
	// Retries counts program-and-verify reissues of this write
	// (fault-injection runs; each reissue escalates the pulse one
	// content bucket).
	Retries int
	// TraceRef is the transaction's tracing span reference (0 when the
	// request was not sampled or tracing is off).
	TraceRef uint64
}

// Env exposes the shared facilities schemes operate on.
type Env struct {
	Geom   reram.Geometry
	Store  *reram.Store
	Tables *timing.TableSet
	Stats  *Stats
	// Metrics is the run's instrument registry (see docs/METRICS.md).
	// May be nil: layers fetch nil instruments, whose observation methods
	// no-op, so un-instrumented embeddings pay one branch per event.
	Metrics *metrics.Registry
}

// Scheme is the per-write-policy the memory controller drives.
type Scheme interface {
	// Name returns the scheme's figure label (e.g. "LADDER-Est").
	Name() string
	// Enqueue prepares a freshly queued data write (encodes the payload,
	// computes partial counters) and returns the auxiliary reads to issue
	// plus any dirty metadata evictions displaced by cache reservations.
	// Requests whose metadata set is saturated are marked Spilled and get
	// their aux reads later via RetrySpill.
	Enqueue(req *WriteRequest) ([]AuxRead, []MetaWriteback)
	// SMBArrived delivers a completed stale-memory-block read.
	SMBArrived(req *WriteRequest, stale bits.Line)
	// MetaArrived delivers a completed metadata line read; every queued
	// request waiting on that key becomes metadata-ready.
	MetaArrived(key uint64)
	// RetrySpill re-attempts metadata reservation for spilled requests;
	// the controller calls it when switching between read and write mode.
	// It returns newly issueable aux reads and displaced dirty evictions.
	RetrySpill() ([]AuxRead, []MetaWriteback)
	// Ready reports whether the request may be dispatched to the device.
	Ready(req *WriteRequest) bool
	// Latency returns the RESET latency in nanoseconds the controller
	// programs for this write, using whatever content knowledge the
	// scheme has at dispatch time.
	Latency(req *WriteRequest) float64
	// Complete finishes the write: the device has persisted `stored`
	// (post-FNW content) over `old`. Schemes update their metadata here
	// and return dirty evictions to enqueue as metadata writes.
	Complete(req *WriteRequest, old, stored bits.Line) []MetaWriteback
	// DecodeRead converts a stored payload back to logical data (inverse
	// of the controller datapath, used on processor reads).
	DecodeRead(line uint64, payload bits.Line) bits.Line
	// UseConstrainedFNW reports whether the device must apply LADDER's
	// ones-bounded FNW variant instead of classic FNW.
	UseConstrainedFNW() bool
}

// Stats accumulates the per-run measurements the evaluation reports.
type Stats struct {
	// Traffic counters.
	DataReads, DataWrites          uint64
	SMBReads, MetaReads            uint64
	MetaWrites                     uint64
	SpillParks                     uint64
	MetaCacheHits, MetaCacheMisses uint64
	// Latency accumulators (nanoseconds).
	WriteServiceNs float64
	ReadLatencyNs  float64
	ReadsTimed     uint64
	// Counter-accuracy tracking for Figure 15: sum of (estimated −
	// accurate) C_lrs at dispatch, and samples.
	CounterDiffSum float64
	CounterDiffN   uint64
	// FNW accounting.
	FNWFlips, FNWCanceled, FNWUnits uint64
	// Energy accumulators (arbitrary joule-scaled units; see package
	// energy).
	ReadEnergy, WriteEnergy float64
	// BitChanges counts cell switches across all writes.
	BitChanges uint64
	// ReadLatencyHist is a power-of-two histogram of demand-read
	// latencies: bucket i counts reads with latency in [2^i, 2^(i+1)) ns.
	ReadLatencyHist [24]uint64
}

// RecordReadLatency adds one demand read to the latency accumulators.
func (s *Stats) RecordReadLatency(ns float64) {
	s.ReadLatencyNs += ns
	s.ReadsTimed++
	b := 0
	for v := uint64(ns); v > 1 && b < len(s.ReadLatencyHist)-1; v >>= 1 {
		b++
	}
	s.ReadLatencyHist[b]++
}

// ReadLatencyPercentile returns an upper bound on the given percentile
// (0..1) of demand-read latency, at power-of-two resolution.
func (s *Stats) ReadLatencyPercentile(p float64) float64 {
	if s.ReadsTimed == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	target := uint64(p * float64(s.ReadsTimed))
	if target == 0 {
		target = 1
	}
	var cum uint64
	for i, n := range s.ReadLatencyHist {
		cum += n
		if cum >= target {
			return float64(uint64(1) << uint(i+1))
		}
	}
	return float64(uint64(1) << uint(len(s.ReadLatencyHist)))
}

// ExtraReadFraction returns the metadata+SMB read overhead relative to
// data reads (Figure 14a's metric).
func (s *Stats) ExtraReadFraction() float64 {
	if s.DataReads == 0 {
		return 0
	}
	return float64(s.SMBReads+s.MetaReads) / float64(s.DataReads)
}

// ExtraWriteFraction returns the metadata write overhead relative to data
// writes (Figure 14b's metric).
func (s *Stats) ExtraWriteFraction() float64 {
	if s.DataWrites == 0 {
		return 0
	}
	return float64(s.MetaWrites) / float64(s.DataWrites)
}

// AvgWriteServiceNs returns the mean data-write service time.
func (s *Stats) AvgWriteServiceNs() float64 {
	if s.DataWrites == 0 {
		return 0
	}
	return s.WriteServiceNs / float64(s.DataWrites)
}

// AvgReadLatencyNs returns the mean processor read latency (queuing +
// service).
func (s *Stats) AvgReadLatencyNs() float64 {
	if s.ReadsTimed == 0 {
		return 0
	}
	return s.ReadLatencyNs / float64(s.ReadsTimed)
}

// AvgCounterDiff returns the mean (estimated − accurate) LRS-counter gap.
func (s *Stats) AvgCounterDiff() float64 {
	if s.CounterDiffN == 0 {
		return 0
	}
	return s.CounterDiffSum / float64(s.CounterDiffN)
}
