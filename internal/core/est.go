package core

import (
	"ladder/internal/bits"
	"ladder/internal/reram"
)

// Est is the LADDER-Est scheme (Section 4.1): the stale-memory-block read
// is eliminated by bounding C^w_lrs with packed partial counters — per
// data block, four 2-bit codes of the worst byte in each mat subgroup.
// One metadata block holds the counters of a whole 4 KB page. Intra-line
// bit-level shifting (on by default) spreads clustered hot bytes across
// the mats of each chip before the counters are taken.
type Est struct {
	*ladderBase
	// shifting can be disabled to reproduce Figure 15a's no-shift arm.
	shifting bool
}

// NewEst builds the scheme with the default metadata cache and shifting
// enabled.
func NewEst(env *Env) (*Est, error) {
	return NewEstOpts(env, true)
}

// NewEstOpts builds the scheme with explicit shifting control.
func NewEstOpts(env *Env, shifting bool) (*Est, error) {
	return NewEstCache(env, shifting, DefaultMetaCacheConfig())
}

// NewEstCache builds the scheme with an explicit cache configuration
// (cache-size ablations).
func NewEstCache(env *Env, shifting bool, cacheCfg MetaCacheConfig) (*Est, error) {
	b, err := newLadderBase(env, cacheCfg)
	if err != nil {
		return nil, err
	}
	// Boot-time metadata: partial counters of every resident block in the
	// covered page.
	b.cache.SetInitializer(func(key uint64) MetaLine {
		return estInitLine(env, key)
	})
	if shifting {
		// Every dispatch samples the unshifted-layout C^w_lrs (Figure 15);
		// incremental counters keep that a max instead of a 64-block scan.
		env.Store.TrackUnshiftedCounters()
	}
	return &Est{ladderBase: b, shifting: shifting}, nil
}

// estInitLine synthesizes an Est-layout metadata line from the stored
// content of the wordline group (boot-time initialization).
func estInitLine(env *Env, globalRow uint64) MetaLine {
	var ml MetaLine
	base := env.Geom.RowBaseLine(globalRow)
	if err := env.Store.EnsureRow(base); err != nil {
		return ml
	}
	for slot := 0; slot < reram.BlocksPerRow; slot++ {
		stored, err := env.Store.Read(base + uint64(slot))
		if err != nil {
			return ml
		}
		ml[slot] = bits.EncodePartial(&stored)
	}
	return ml
}

// Name implements Scheme.
func (s *Est) Name() string {
	if !s.shifting {
		return "LADDER-Est(noshift)"
	}
	return "LADDER-Est"
}

func (s *Est) keys(req *WriteRequest) []uint64 {
	// Reuse the request's MetaKeys backing: with pooled requests the
	// per-enqueue key derivation allocates nothing.
	return append(req.MetaKeys[:0], s.layout.EstKey(s.env.Geom.GlobalRow(req.Loc)))
}

// Enqueue implements Scheme: shift, take partial counters, acquire the
// page's metadata line. No SMB read is needed — the new partial counters
// replace the old ones outright.
func (s *Est) Enqueue(req *WriteRequest) ([]AuxRead, []MetaWriteback) {
	req.Payload = payloadFor(req.Data, req.Loc.Slot, s.shifting)
	req.Partial = bits.EncodePartial(&req.Payload)
	return s.acquire(req, s.keys(req))
}

// SMBArrived implements Scheme (Est never requests SMBs).
func (s *Est) SMBArrived(*WriteRequest, bits.Line) {}

// MetaArrived implements Scheme.
func (s *Est) MetaArrived(key uint64) { s.metaArrived(key) }

// RetrySpill implements Scheme.
func (s *Est) RetrySpill() ([]AuxRead, []MetaWriteback) { return s.retrySpill(s.keys) }

// Ready implements Scheme.
func (s *Est) Ready(req *WriteRequest) bool { return !req.WaitMeta }

// estimate derives the C^w_lrs bound from the cached metadata line,
// substituting the in-flight request's fresh counters for its own slot
// (the write changes that block's contribution).
func (s *Est) estimate(req *WriteRequest) (int, bool) {
	line := s.cache.Data(req.MetaKeys[0])
	if line == nil {
		return 0, false
	}
	var packed [reram.BlocksPerRow]uint8
	copy(packed[:], line[:])
	packed[req.Loc.Slot] = req.Partial
	return bits.EstimateCwLRS(packed[:]), true
}

// Latency implements Scheme.
func (s *Est) Latency(req *WriteRequest) float64 {
	c, ok := s.estimate(req)
	if !ok {
		return s.env.Tables.WorstNs
	}
	s.recordCounterDiff(req, c, s.shifting)
	req.Clrs = c
	return s.env.Tables.WL.Lookup(req.Loc.WL, req.Loc.BLHigh, c)
}

// Complete implements Scheme: store the block's fresh partial counters in
// the metadata line.
func (s *Est) Complete(req *WriteRequest, old, stored bits.Line) []MetaWriteback {
	if line := s.cache.Data(req.MetaKeys[0]); line != nil {
		line[req.Loc.Slot] = req.Partial
		s.cache.MarkDirty(req.MetaKeys[0])
	}
	s.release(req)
	return nil
}

// DecodeRead implements Scheme: reverse the bit shifting on processor
// reads.
func (s *Est) DecodeRead(line uint64, payload bits.Line) bits.Line {
	if !s.shifting {
		return payload
	}
	loc, err := s.env.Geom.Decode(line)
	if err != nil {
		return payload
	}
	return bits.Unshifted(payload, loc.Slot)
}

// UseConstrainedFNW implements Scheme.
func (s *Est) UseConstrainedFNW() bool { return true }

// CrashRecover implements CrashRecoverable.
func (s *Est) CrashRecover() { s.crashRecover() }

// WriteRetry implements RetryAware: a verify failure means the cached
// partial counters mis-margined the row — stale or over-conservative
// bounds — so the line is re-synthesized from the stored bits the
// verify read exposed. Subsequent estimates for the row then carry the
// tightest bound the 2-bit encoding can express.
func (s *Est) WriteRetry(req *WriteRequest, attempt int) {
	key := req.MetaKeys[0]
	if line := s.cache.Data(key); line != nil {
		*line = estInitLine(s.env, key)
		s.cache.MarkDirty(key)
	}
}
