package core

import (
	"ladder/internal/bits"
	"ladder/internal/metrics"
)

// ladderBase carries the machinery shared by the three LADDER variants:
// the metadata cache, the spill buffer, and the bookkeeping that connects
// write queue entries to in-flight metadata fills.
type ladderBase struct {
	env    *Env
	layout Layout
	cache  *MetaCache
	// waiting maps a metadata key to the requests blocked on its fill.
	waiting map[uint64][]*WriteRequest
	// spill holds requests whose metadata set had no evictable way, in
	// FIFO order (paper: 16-entry spill buffer, drained when the
	// scheduler switches modes).
	spill []*WriteRequest
	// auxScratch/wbScratch back acquire's return slices. The controller
	// consumes both synchronously (it routes aux reads and writebacks
	// before the next Enqueue/RetrySpill), so one buffer per scheme keeps
	// the steady-state enqueue path allocation-free.
	auxScratch []AuxRead
	wbScratch  []MetaWriteback
	// Estimator-accuracy instruments (nil when the run is not
	// instrumented): whether the scheme's C^w_lrs at dispatch over-,
	// under- or exactly predicted the accurate counter. Over-predictions
	// cost latency margin; under-predictions would risk an incomplete
	// RESET on real hardware and measure the shifted-layout effect the
	// paper discusses around Figure 15b.
	mOverPredict, mUnderPredict, mExactPredict *metrics.Counter
}

func newLadderBase(env *Env, cacheCfg MetaCacheConfig) (*ladderBase, error) {
	cache, err := NewMetaCache(cacheCfg)
	if err != nil {
		return nil, err
	}
	return &ladderBase{
		env:     env,
		layout:  NewLayout(env.Geom),
		cache:   cache,
		waiting: make(map[uint64][]*WriteRequest),
		// A nil env.Metrics hands out nil counters, whose Inc() no-ops.
		mOverPredict:  env.Metrics.Counter("core.est.over_predictions"),
		mUnderPredict: env.Metrics.Counter("core.est.under_predictions"),
		mExactPredict: env.Metrics.Counter("core.est.exact_predictions"),
	}, nil
}

// acquire secures all metadata lines for req: cache hits gain a sharer,
// misses reserve a way and emit a metadata read, and saturated sets park
// the request in the spill buffer (releasing any sharers it already
// took, so spill retry re-runs the full acquisition).
func (b *ladderBase) acquire(req *WriteRequest, keys []uint64) ([]AuxRead, []MetaWriteback) {
	req.MetaKeys = keys
	req.MetaPending = 0
	req.WaitMeta = false
	aux := b.auxScratch[:0]
	wbs := b.wbScratch[:0]
	for i, key := range keys {
		present, valid := b.cache.Lookup(key)
		if present {
			b.cache.AddSharer(key)
			if !valid {
				// Fill already in flight for another request.
				b.waiting[key] = append(b.waiting[key], req)
				req.MetaPending++
			}
			continue
		}
		loc := b.layout.MetaLoc(key, req.Loc)
		wb, ok := b.cache.Reserve(key, loc)
		if !ok {
			// Roll back and spill: every key before this one gained a
			// sharer (hit or successful reserve); the request retries
			// atomically later.
			for _, h := range keys[:i] {
				b.cache.Release(h)
			}
			b.unwait(req)
			req.MetaPending = 0
			req.Spilled = true
			req.WaitMeta = true
			b.spill = append(b.spill, req)
			b.env.Stats.SpillParks++
			b.wbScratch = wbs
			return nil, wbs
		}
		if wb != nil {
			wbs = append(wbs, *wb)
			b.env.Stats.MetaWrites++
		}
		b.waiting[key] = append(b.waiting[key], req)
		req.MetaPending++
		b.env.Stats.MetaReads++
		b.env.Stats.MetaCacheMisses++
		aux = append(aux, AuxRead{Kind: AuxMeta, Key: key, Loc: loc})
	}
	b.auxScratch = aux
	b.wbScratch = wbs
	if req.MetaPending > 0 {
		req.WaitMeta = true
	} else {
		b.env.Stats.MetaCacheHits++
	}
	return aux, wbs
}

// unwait removes req from every fill waiting list.
func (b *ladderBase) unwait(req *WriteRequest) {
	for key, list := range b.waiting {
		out := list[:0]
		for _, r := range list {
			if r != req {
				out = append(out, r)
			}
		}
		if len(out) == 0 {
			delete(b.waiting, key)
		} else {
			b.waiting[key] = out
		}
	}
}

// metaArrived completes a fill and unblocks waiters.
func (b *ladderBase) metaArrived(key uint64) {
	b.cache.Fill(key)
	for _, req := range b.waiting[key] {
		req.MetaPending--
		if req.MetaPending <= 0 {
			req.WaitMeta = false
		}
	}
	delete(b.waiting, key)
}

// retrySpill re-attempts acquisition for parked requests in FIFO order,
// stopping at the first request that still cannot reserve.
func (b *ladderBase) retrySpill(keysOf func(*WriteRequest) []uint64) ([]AuxRead, []MetaWriteback) {
	var aux []AuxRead
	var wbs []MetaWriteback
	for len(b.spill) > 0 {
		req := b.spill[0]
		req.Spilled = false
		b.spill = b.spill[1:]
		a, w := b.acquire(req, keysOf(req))
		aux = append(aux, a...)
		wbs = append(wbs, w...)
		if req.Spilled {
			// acquire() re-parked it at the tail; preserve FIFO by
			// moving it back to the head and stopping.
			b.spill = append([]*WriteRequest{req}, b.spill[:len(b.spill)-1]...)
			break
		}
	}
	return aux, wbs
}

// release drops the request's sharer holds after completion.
func (b *ladderBase) release(req *WriteRequest) {
	for _, key := range req.MetaKeys {
		b.cache.Release(key)
	}
}

// Cache exposes the metadata cache (testing/diagnostics).
func (b *ladderBase) Cache() *MetaCache { return b.cache }

// RetryAware is implemented by schemes that must reconcile volatile
// LRS-metadata after a verify failure: a failed RESET proves the pulse
// under-provisioned the row's actual content, i.e. the scheme's cached
// estimate was stale. The controller invokes the hook once per
// program-and-verify reissue, before the escalated pulse dispatches;
// the row is open in the sense amplifiers, so the reconciliation is
// free of extra array reads.
type RetryAware interface {
	// WriteRetry reconciles metadata for req's row; attempt counts the
	// reissues so far (1 on the first retry).
	WriteRetry(req *WriteRequest, attempt int)
}

// CrashRecoverable is implemented by schemes that keep volatile
// LRS-metadata state and support the paper's Section 7 crash-recovery
// story.
type CrashRecoverable interface {
	// CrashRecover models a power failure followed by the lazy
	// conservative correction: cached metadata is lost and the persisted
	// region is overwritten with maximum counter values.
	CrashRecover()
}

// maxMetaLine is the all-maximum metadata line used by the conservative
// correction: every partial-counter code saturated. For the Basic layout
// the same byte pattern decodes to counters ≥ 512, which the timing
// lookup clamps to the worst bucket — still conservative.
func maxMetaLine() MetaLine {
	var ml MetaLine
	for i := range ml {
		ml[i] = 0xff
	}
	return ml
}

// crashRecover drops the cache and applies the conservative correction.
// The spill buffer and fill waiting lists must already be empty (the
// controller drains before a modeled crash).
func (b *ladderBase) crashRecover() {
	if len(b.spill) != 0 || len(b.waiting) != 0 {
		panic("core: crash with queued metadata work; drain the controller first")
	}
	b.cache.Crash()
	b.cache.RecoverConservative(maxMetaLine())
}

// SpillDepth returns the current number of parked requests.
func (b *ladderBase) SpillDepth() int { return len(b.spill) }

// payloadFor applies the controller datapath: LADDER-Est/Hybrid shift the
// line; Basic stores it as-is.
func payloadFor(data bits.Line, slot int, shifting bool) bits.Line {
	if shifting {
		return bits.Shifted(data, slot)
	}
	return data
}

// recordCounterDiff samples the estimated-vs-accurate gap for Figure 15.
// The reference is the counter LADDER-Basic would hold: the exact count
// over the *unshifted* bit layout. A shifting scheme whose spread-out
// stored pattern carries fewer worst-wordline ones than the raw layout
// therefore records a negative difference, as in the paper's Figure 15b.
func (b *ladderBase) recordCounterDiff(req *WriteRequest, estimated int, shifted bool) {
	var accurate int
	var err error
	if shifted {
		accurate, err = b.env.Store.MaxRowCounterUnshifted(req.Line)
	} else {
		accurate, err = b.env.Store.MaxRowCounter(req.Line)
	}
	if err != nil {
		return
	}
	b.env.Stats.CounterDiffSum += float64(estimated - accurate)
	b.env.Stats.CounterDiffN++
	switch {
	case estimated > accurate:
		b.mOverPredict.Inc()
	case estimated < accurate:
		b.mUnderPredict.Inc()
	default:
		b.mExactPredict.Inc()
	}
}
