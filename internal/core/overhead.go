package core

// Hardware overhead of the LADDER controller logic (paper Table 4).
//
// Substitution note: the paper synthesizes the LRS-metadata Update Module
// and Latency Query Module in Verilog with Synopsys Design Compiler on the
// 45 nm FreePDK45 library and models the cache with CACTI 7. RTL synthesis
// is out of reach here, so the published numbers are carried as documented
// constants; the repository's contribution is the behavioral model whose
// traffic and timing these modules would implement.

// ModuleOverhead reports one hardware component's synthesis results.
type ModuleOverhead struct {
	Name      string
	AreaMM2   float64
	PowerMW   float64
	LatencyNs float64
}

// Table4 lists the controller-side hardware overheads the paper reports.
var Table4 = []ModuleOverhead{
	{Name: "LRS-metadata Update Module", AreaMM2: 0.0061, PowerMW: 3.71, LatencyNs: 0.17},
	{Name: "Latency Query Module", AreaMM2: 0.0047, PowerMW: 6.57, LatencyNs: 0.32},
	{Name: "LRS-metadata Cache (64KB)", AreaMM2: 0.2442, PowerMW: 48.83, LatencyNs: 0.81},
}

// TimingTableBytes is the on-chip storage of the write timing tables:
// 8 sub-tables (one per C_lrs bucket) of 8×8 entries, one byte-scale
// latency code each — 512 B loaded at boot from the module's SPD ROM.
const TimingTableBytes = 512
