package core

import (
	"math"
	"sync"
	"testing"

	"ladder/internal/bits"
	"ladder/internal/circuit"
	"ladder/internal/reram"
	"ladder/internal/timing"
)

var (
	tablesOnce sync.Once
	testTables *timing.TableSet
	tablesErr  error
)

// testGeometry is a small memory whose crossbar matches the test tables.
func testGeometry() reram.Geometry {
	return reram.Geometry{
		Channels:         2,
		RanksPerChannel:  2,
		BanksPerRank:     8,
		MatGroupsPerBank: 4,
		MatRows:          64,
	}
}

func testEnv(t *testing.T) *Env {
	t.Helper()
	tablesOnce.Do(func() {
		p := circuit.DefaultParams()
		p.N = 64
		testTables, tablesErr = timing.NewTableSet(p)
	})
	if tablesErr != nil {
		t.Fatal(tablesErr)
	}
	store, err := reram.NewStore(testGeometry())
	if err != nil {
		t.Fatal(err)
	}
	return &Env{Geom: testGeometry(), Store: store, Tables: testTables, Stats: &Stats{}}
}

func newReq(t *testing.T, env *Env, line uint64, data bits.Line) *WriteRequest {
	t.Helper()
	loc, err := env.Geom.Decode(line)
	if err != nil {
		t.Fatal(err)
	}
	return &WriteRequest{Line: line, Loc: loc, Data: data}
}

func denseLine() bits.Line {
	var l bits.Line
	for i := range l {
		l[i] = 0xff
	}
	return l
}

// --- metadata cache ---

func TestMetaCacheGeometry(t *testing.T) {
	c, err := NewMetaCache(DefaultMetaCacheConfig())
	if err != nil {
		t.Fatal(err)
	}
	if c.numSets != 256 {
		t.Fatalf("sets = %d, want 256 (64KB / 64B / 4 ways)", c.numSets)
	}
	if c.SpillCapacity() != 16 {
		t.Fatalf("spill capacity = %d, want 16", c.SpillCapacity())
	}
}

func TestMetaCacheRejectsBadConfig(t *testing.T) {
	if _, err := NewMetaCache(MetaCacheConfig{SizeBytes: 100, Ways: 3, SpillSize: 16}); err == nil {
		t.Fatal("expected geometry error")
	}
	if _, err := NewMetaCache(MetaCacheConfig{SizeBytes: 64 << 10, Ways: 4, SpillSize: 0}); err == nil {
		t.Fatal("expected spill size error")
	}
}

func TestMetaCacheMissReserveFill(t *testing.T) {
	c, _ := NewMetaCache(DefaultMetaCacheConfig())
	if present, _ := c.Lookup(42); present {
		t.Fatal("cold cache should miss")
	}
	wb, ok := c.Reserve(42, reram.Location{})
	if !ok || wb != nil {
		t.Fatalf("reserve into empty set: ok=%v wb=%v", ok, wb)
	}
	present, valid := c.Lookup(42)
	if !present || valid {
		t.Fatalf("filling line: present=%v valid=%v", present, valid)
	}
	c.Fill(42)
	if _, valid := c.Lookup(42); !valid {
		t.Fatal("filled line should be valid")
	}
	if got := c.Sharers(42); got != 1 {
		t.Fatalf("sharers = %d, want 1 (from Reserve)", got)
	}
}

func TestMetaCacheEvictionRespectsSharers(t *testing.T) {
	// Tiny cache: 1 set, 2 ways.
	c, err := NewMetaCache(MetaCacheConfig{SizeBytes: 128, Ways: 2, SpillSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Reserve(1, reram.Location{}); !ok {
		t.Fatal("reserve 1")
	}
	if _, ok := c.Reserve(2, reram.Location{}); !ok {
		t.Fatal("reserve 2")
	}
	// Both ways held by sharers: a third reservation must fail.
	if _, ok := c.Reserve(3, reram.Location{}); ok {
		t.Fatal("reserve should fail with all sharers held")
	}
	// Releasing one makes room; the dirty victim yields a writeback.
	c.Fill(1)
	c.MarkDirty(1)
	c.Release(1)
	wb, ok := c.Reserve(3, reram.Location{})
	if !ok {
		t.Fatal("reserve should succeed after release")
	}
	if wb == nil || wb.Key != 1 {
		t.Fatalf("expected dirty writeback of key 1, got %v", wb)
	}
	// The persisted copy must hold the evicted data.
	if _, valid := c.Lookup(1); valid {
		t.Fatal("evicted line should be gone")
	}
}

func TestMetaCacheDirtyDataPersists(t *testing.T) {
	c, err := NewMetaCache(MetaCacheConfig{SizeBytes: 64, Ways: 1, SpillSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	c.Reserve(10, reram.Location{})
	c.Fill(10)
	d := c.Data(10)
	d[5] = 0xaa
	c.MarkDirty(10)
	c.Release(10)
	// Evict by reserving a conflicting key (1 set: everything conflicts).
	if _, ok := c.Reserve(11, reram.Location{}); !ok {
		t.Fatal("reserve 11")
	}
	if got := c.Backing(10); got[5] != 0xaa {
		t.Fatalf("backing[5] = %#x, want 0xaa", got[5])
	}
	// Refetching returns the persisted content.
	c.Release(11)
	c.Reserve(10, reram.Location{})
	c.Fill(10)
	if got := c.Data(10); got[5] != 0xaa {
		t.Fatal("refill lost persisted data")
	}
}

func TestMetaCacheReleasePanicsOnUnderflow(t *testing.T) {
	c, _ := NewMetaCache(MetaCacheConfig{SizeBytes: 64, Ways: 1, SpillSize: 4})
	c.Reserve(1, reram.Location{})
	c.Release(1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on negative sharers")
		}
	}()
	c.Release(1)
}

// --- layout ---

func TestStorageOverheadsMatchPaper(t *testing.T) {
	l := NewLayout(reram.DefaultGeometry())
	if got := l.StorageOverheadBasic(); math.Abs(got-0.03125) > 1e-9 {
		t.Fatalf("basic overhead = %v, want 3.125%%", got)
	}
	if got := l.StorageOverheadEst(); math.Abs(got-0.015625) > 1e-9 {
		t.Fatalf("est overhead = %v, want 1.5625%%", got)
	}
	// Hybrid with the paper's bottom-128-of-512 rows: 3/4·64B + 1/4·16B
	// per page = 52B/4KB ≈ 1.27%. (The paper headline of 0.97% matches a
	// half-and-half split; see EXPERIMENTS.md.)
	if got := l.StorageOverheadHybrid(); math.Abs(got-0.0126953125) > 1e-9 {
		t.Fatalf("hybrid overhead = %v, want ~1.27%%", got)
	}
	if l.StorageOverheadHybrid() >= l.StorageOverheadEst() {
		t.Fatal("hybrid must cost less than est")
	}
	if l.StorageOverheadEst() >= l.StorageOverheadBasic() {
		t.Fatal("est must cost less than basic")
	}
}

func TestLayoutKeysDistinct(t *testing.T) {
	l := NewLayout(testGeometry())
	b0 := l.BasicKeys(7)
	b1 := l.BasicKeys(8)
	if b0[0] == b0[1] || b0[1] == b1[0] {
		t.Fatal("basic keys collide")
	}
	if l.EstKey(7) == l.EstKey(8) {
		t.Fatal("est keys collide")
	}
	// Low-precision grouping: four address-adjacent same-channel pages
	// share a line. With 2 channels, pages 0, 2, 4, 6 (lines 0, 128, 256,
	// 384) are channel 0's first group.
	ch := uint64(l.Geom.Channels)
	lowA, lA := l.HybridKey(0, 0, 0)
	lowB, lB := l.HybridKey(2*ch*reram.BlocksPerRow, 99, 0)
	if !lA || !lB {
		t.Fatal("WL 0 should be low precision")
	}
	if lowA != lowB {
		t.Fatal("address-adjacent same-channel pages should share a line")
	}
	lowC, _ := l.HybridKey(4*ch*reram.BlocksPerRow, 0, 0)
	if lowC == lowA {
		t.Fatal("the fifth page should use a different line")
	}
	lowD, _ := l.HybridKey(reram.BlocksPerRow, 0, 0) // other channel
	if lowD == lowA {
		t.Fatal("pages on different channels must not share a line")
	}
	highKey, low := l.HybridKey(0, 4, l.LowPrecisionRows)
	if low {
		t.Fatal("WL at threshold should be high precision")
	}
	if highKey&hybridLowKeyBit != 0 {
		t.Fatal("high-precision key must not carry the low tag")
	}
	// The four covered rows invert back to the key's group.
	lines := l.LowGroupLines(lowA)
	for q, base := range lines {
		k, lw := l.HybridKey(base, 0, 0)
		if !lw || k != lowA {
			t.Fatalf("LowGroupLines[%d] = %d does not map back to the key", q, base)
		}
		if got := l.LowGroupIndex(base); got != q {
			t.Fatalf("quarter of line %d = %d, want %d", base, got, q)
		}
	}
}

func TestMetaLocInReservedRegion(t *testing.T) {
	g := testGeometry()
	l := NewLayout(g)
	dataLoc, err := g.Decode(123)
	if err != nil {
		t.Fatal(err)
	}
	for key := uint64(0); key < 50; key++ {
		loc := l.MetaLoc(key, dataLoc)
		if loc.Channel != dataLoc.Channel || loc.Bank != dataLoc.Bank {
			t.Fatal("metadata must stay in the data's bank")
		}
		if loc.Row < g.RowsPerBank()-g.RowsPerBank()/25-1 || loc.Row >= g.RowsPerBank() {
			t.Fatalf("metadata row %d outside reserved region", loc.Row)
		}
	}
}

// --- simple schemes ---

func TestBaselineAlwaysWorstCase(t *testing.T) {
	env := testEnv(t)
	s := NewBaseline(env)
	req := newReq(t, env, 0, denseLine())
	if aux, wbs := s.Enqueue(req); len(aux) != 0 || len(wbs) != 0 {
		t.Fatal("baseline must not issue aux traffic")
	}
	if !s.Ready(req) {
		t.Fatal("baseline writes are always ready")
	}
	if got := s.Latency(req); got != env.Tables.WorstNs {
		t.Fatalf("latency = %v, want worst %v", got, env.Tables.WorstNs)
	}
}

func TestLocationAwareNearFasterThanFar(t *testing.T) {
	env := testEnv(t)
	s := NewLocationAware(env)
	near := newReq(t, env, 0, bits.Line{}) // row 0, slot 0
	// A line in the same bank at the farthest crossbar row: bank rows are
	// Banks() apart in row-walk order; crossbar row = Row % MatRows.
	farLine := uint64(env.Geom.MatRows-1) * uint64(env.Geom.Banks()) * reram.BlocksPerRow
	farLine += reram.BlocksPerRow - 1 // worst slot
	far := newReq(t, env, farLine, bits.Line{})
	if far.Loc.WL != env.Geom.MatRows-1 {
		t.Fatalf("far request WL = %d", far.Loc.WL)
	}
	if s.Latency(near) >= s.Latency(far) {
		t.Fatalf("near %v should beat far %v", s.Latency(near), s.Latency(far))
	}
}

func TestOracleTracksContent(t *testing.T) {
	env := testEnv(t)
	s := NewOracle(env)
	req := newReq(t, env, 0, bits.Line{})
	empty := s.Latency(req)
	// Fill the wordline group with dense data.
	for slot := uint64(0); slot < reram.BlocksPerRow; slot++ {
		if _, err := env.Store.Write(slot, denseLine()); err != nil {
			t.Fatal(err)
		}
	}
	full := s.Latency(req)
	if full <= empty {
		t.Fatalf("oracle latency must grow with content: empty %v, full %v", empty, full)
	}
}

func TestSplitResetCompressionMatters(t *testing.T) {
	env := testEnv(t)
	s := NewSplitReset(env)
	comp := newReq(t, env, 0, bits.Line{}) // zero line: compressible
	s.Enqueue(comp)
	var randomish bits.Line
	for i := range randomish {
		randomish[i] = byte(37*i + 11)
	}
	incomp := newReq(t, env, 1, randomish)
	s.Enqueue(incomp)
	lc, li := s.Latency(comp), s.Latency(incomp)
	if math.Abs(li-2*lc) > 1e-9 {
		t.Fatalf("incompressible write should take two phases: %v vs %v", li, lc)
	}
}

func TestBLPTracksBitlineContent(t *testing.T) {
	env := testEnv(t)
	s := NewBLP(env)
	req := newReq(t, env, 0, bits.Line{})
	cold := s.Latency(req)
	// Load the same bitlines (slot 0) of most rows in the same mat group
	// with dense data, crossing BLP's fast/slow threshold (3/4 full).
	var l bits.Line
	for i := range l {
		l[i] = 0xff
	}
	for i := 0; i < env.Geom.MatRows*3/4+2; i++ {
		line := uint64(i) * uint64(env.Geom.Banks()) * reram.BlocksPerRow
		if _, err := env.Store.Write(line, l); err != nil {
			t.Fatal(err)
		}
	}
	warm := s.Latency(req)
	if warm <= cold {
		t.Fatalf("BLP latency must grow with bitline content: %v vs %v", warm, cold)
	}
	if warm != env.Tables.BL.LocationOnly(req.Loc.WL, req.Loc.BLHigh) {
		t.Fatalf("above-threshold write should use the slow class, got %v", warm)
	}
}

// --- LADDER-Basic ---

func TestBasicLifecycle(t *testing.T) {
	env := testEnv(t)
	s, err := NewBasic(env)
	if err != nil {
		t.Fatal(err)
	}
	req := newReq(t, env, 0, denseLine())
	aux, wbs := s.Enqueue(req)
	if len(wbs) != 0 {
		t.Fatal("no evictions expected on a cold cache")
	}
	// One SMB read + two metadata line reads.
	var smb, meta int
	for _, a := range aux {
		switch a.Kind {
		case AuxSMB:
			smb++
		case AuxMeta:
			meta++
		}
	}
	if smb != 1 || meta != 2 {
		t.Fatalf("aux reads smb=%d meta=%d, want 1 and 2", smb, meta)
	}
	if s.Ready(req) {
		t.Fatal("not ready before SMB and metadata arrive")
	}
	s.SMBArrived(req, bits.Line{})
	if s.Ready(req) {
		t.Fatal("not ready before metadata arrives")
	}
	for _, a := range aux {
		if a.Kind == AuxMeta {
			s.MetaArrived(a.Key)
		}
	}
	if !s.Ready(req) {
		t.Fatal("ready once SMB and metadata are in")
	}
	// Cold metadata: counters zero -> near-minimal latency at row 0.
	lat := s.Latency(req)
	if lat >= env.Tables.WorstNs {
		t.Fatalf("cold-row latency %v should beat worst case", lat)
	}
	// Persist the write, then Complete must sync the cached counters to
	// the store's exact values.
	old, err := env.Store.Write(req.Line, req.Payload)
	if err != nil {
		t.Fatal(err)
	}
	s.Complete(req, old, req.Payload)
	counters, _ := env.Store.RowCounters(req.Line)
	got, ok := s.maxCounter(req.MetaKeys)
	if !ok {
		t.Fatal("metadata lines should still be cached")
	}
	want := 0
	for _, c := range counters {
		if int(c) > want {
			want = int(c)
		}
	}
	if got != want {
		t.Fatalf("cached max counter %d != store %d", got, want)
	}
	if env.Stats.SMBReads != 1 || env.Stats.MetaReads != 2 {
		t.Fatalf("stats: smb=%d meta=%d", env.Stats.SMBReads, env.Stats.MetaReads)
	}
}

func TestBasicSecondWriteHitsCache(t *testing.T) {
	env := testEnv(t)
	s, err := NewBasic(env)
	if err != nil {
		t.Fatal(err)
	}
	first := newReq(t, env, 0, denseLine())
	aux, _ := s.Enqueue(first)
	s.SMBArrived(first, bits.Line{})
	for _, a := range aux {
		if a.Kind == AuxMeta {
			s.MetaArrived(a.Key)
		}
	}
	old, _ := env.Store.Write(first.Line, first.Payload)
	s.Complete(first, old, first.Payload)

	second := newReq(t, env, 1, denseLine()) // same wordline group
	aux, _ = s.Enqueue(second)
	for _, a := range aux {
		if a.Kind == AuxMeta {
			t.Fatal("second write in the page should hit the metadata cache")
		}
	}
	if env.Stats.MetaCacheHits == 0 {
		t.Fatal("expected a metadata cache hit")
	}
}

// --- LADDER-Est ---

func TestEstLifecycleAndEstimateSound(t *testing.T) {
	env := testEnv(t)
	s, err := NewEst(env)
	if err != nil {
		t.Fatal(err)
	}
	req := newReq(t, env, 0, denseLine())
	aux, _ := s.Enqueue(req)
	if len(aux) != 1 || aux[0].Kind != AuxMeta {
		t.Fatalf("est should issue exactly one metadata read, got %v", aux)
	}
	if env.Stats.SMBReads != 0 {
		t.Fatal("est must not read SMBs")
	}
	s.MetaArrived(aux[0].Key)
	if !s.Ready(req) {
		t.Fatal("ready after metadata fill")
	}
	est, ok := s.estimate(req)
	if !ok {
		t.Fatal("estimate unavailable")
	}
	// Soundness: estimate must bound the true post-write C^w_lrs.
	if _, err := env.Store.Write(req.Line, req.Payload); err != nil {
		t.Fatal(err)
	}
	truth, _ := env.Store.MaxRowCounter(req.Line)
	if est < truth {
		t.Fatalf("estimate %d below truth %d", est, truth)
	}
}

func TestEstDecodeReadRoundTrip(t *testing.T) {
	env := testEnv(t)
	s, err := NewEst(env)
	if err != nil {
		t.Fatal(err)
	}
	var data bits.Line
	for i := range data {
		data[i] = byte(i * 7)
	}
	req := newReq(t, env, 321, data)
	s.Enqueue(req)
	if req.Payload == data {
		t.Fatal("est should shift the payload")
	}
	if got := s.DecodeRead(req.Line, req.Payload); got != data {
		t.Fatal("DecodeRead failed to invert the shift")
	}
}

func TestEstNoShiftOption(t *testing.T) {
	env := testEnv(t)
	s, err := NewEstOpts(env, false)
	if err != nil {
		t.Fatal(err)
	}
	req := newReq(t, env, 0, denseLine())
	s.Enqueue(req)
	if req.Payload != req.Data {
		t.Fatal("noshift est must store the raw line")
	}
	if s.Name() != "LADDER-Est(noshift)" {
		t.Fatalf("name = %q", s.Name())
	}
}

func TestEstShiftingLowersEstimates(t *testing.T) {
	env := testEnv(t)
	withShift, _ := NewEst(env)
	env2 := testEnv(t)
	noShift, _ := NewEstOpts(env2, false)
	// Clustered line: one dense byte per chip group.
	var clustered bits.Line
	for g := 0; g < bits.ChipGroups; g++ {
		clustered[g*8] = 0xff
	}
	r1 := newReq(t, env, 0, clustered)
	a1, _ := withShift.Enqueue(r1)
	withShift.MetaArrived(a1[0].Key)
	r2 := newReq(t, env2, 0, clustered)
	a2, _ := noShift.Enqueue(r2)
	noShift.MetaArrived(a2[0].Key)
	e1, _ := withShift.estimate(r1)
	e2, _ := noShift.estimate(r2)
	if e1 >= e2 {
		t.Fatalf("shifting should lower the estimate: %d vs %d", e1, e2)
	}
}

// --- LADDER-Hybrid ---

func TestHybridLowPrecisionPath(t *testing.T) {
	env := testEnv(t)
	s, err := NewHybrid(env)
	if err != nil {
		t.Fatal(err)
	}
	s.SetLowPrecisionRows(32)                // rows 0..31 of the 64-row test crossbar
	lowReq := newReq(t, env, 0, denseLine()) // WL 0: low precision
	aux, _ := s.Enqueue(lowReq)
	if len(aux) != 1 {
		t.Fatalf("aux = %v", aux)
	}
	if lowReq.MetaKeys[0]&hybridLowKeyBit == 0 {
		t.Fatal("low-precision request should use the shared key space")
	}
	s.MetaArrived(aux[0].Key)
	est, ok := s.estimate(lowReq)
	if !ok {
		t.Fatal("estimate unavailable")
	}
	if _, err := env.Store.Write(lowReq.Line, lowReq.Payload); err != nil {
		t.Fatal(err)
	}
	truth, _ := env.Store.MaxRowCounter(lowReq.Line)
	if est < truth {
		t.Fatalf("low-precision estimate %d below truth %d", est, truth)
	}
	s.Complete(lowReq, bits.Line{}, lowReq.Payload)

	// A high row uses the Est path.
	highLine := uint64(40) * uint64(env.Geom.Banks()) * reram.BlocksPerRow
	highReq := newReq(t, env, highLine, denseLine())
	if highReq.Loc.WL < 32 {
		t.Fatalf("test setup: WL = %d, want >= 32", highReq.Loc.WL)
	}
	aux, _ = s.Enqueue(highReq)
	if highReq.MetaKeys[0]&hybridLowKeyBit != 0 {
		t.Fatal("high-precision request should use the est key space")
	}
}

func TestHybridSharedLineAcrossPages(t *testing.T) {
	env := testEnv(t)
	s, err := NewHybrid(env)
	if err != nil {
		t.Fatal(err)
	}
	s.SetLowPrecisionRows(64) // everything low precision
	// Two address-adjacent pages on the same channel share a
	// low-precision group: with 2 channels, pages 0 and 2.
	lineA := uint64(0)
	lineB := uint64(env.Geom.Channels) * reram.BlocksPerRow
	reqA := newReq(t, env, lineA, denseLine())
	reqB := newReq(t, env, lineB, denseLine())
	auxA, _ := s.Enqueue(reqA)
	auxB, _ := s.Enqueue(reqB)
	if len(auxA) != 1 {
		t.Fatal("first page should miss")
	}
	if len(auxB) != 0 {
		t.Fatal("second page should share the metadata line (no read)")
	}
	if reqA.MetaKeys[0] != reqB.MetaKeys[0] {
		t.Fatal("pages must share the key")
	}
	if got := s.Cache().Sharers(reqA.MetaKeys[0]); got != 2 {
		t.Fatalf("sharers = %d, want 2", got)
	}
}

func TestLowSlotBits(t *testing.T) {
	seen := make(map[[2]int]bool)
	for q := 0; q < 4; q++ {
		for slot := 0; slot < 64; slot++ {
			b, sh := lowSlotBits(q, slot)
			if b < 0 || b >= MetaLineSize || sh > 6 || sh%2 != 0 {
				t.Fatalf("q=%d slot=%d: byte %d shift %d", q, slot, b, sh)
			}
			k := [2]int{b, int(sh)}
			if seen[k] {
				t.Fatalf("bit position collision at q=%d slot=%d", q, slot)
			}
			seen[k] = true
		}
	}
	if len(seen) != 256 {
		t.Fatalf("covered %d positions, want 256", len(seen))
	}
}

// --- spill buffer ---

func TestSpillAndRetry(t *testing.T) {
	env := testEnv(t)
	s, err := NewEst(env)
	if err != nil {
		t.Fatal(err)
	}
	// Replace the cache with a tiny one: 1 set, 1 way.
	s.cache, err = NewMetaCache(MetaCacheConfig{SizeBytes: 64, Ways: 1, SpillSize: 16})
	if err != nil {
		t.Fatal(err)
	}
	reqA := newReq(t, env, 0, denseLine())
	auxA, _ := s.Enqueue(reqA)
	if len(auxA) != 1 {
		t.Fatal("first request should reserve")
	}
	// Different wordline group -> different key -> conflicts in the 1-way
	// cache while reqA holds a sharer.
	reqB := newReq(t, env, reram.BlocksPerRow, denseLine())
	auxB, _ := s.Enqueue(reqB)
	if len(auxB) != 0 || !reqB.Spilled || !reqB.WaitMeta {
		t.Fatalf("second request should spill: aux=%v spilled=%v", auxB, reqB.Spilled)
	}
	if s.SpillDepth() != 1 {
		t.Fatalf("spill depth = %d", s.SpillDepth())
	}
	if env.Stats.SpillParks != 1 {
		t.Fatalf("spill parks = %d", env.Stats.SpillParks)
	}
	// Retry before reqA completes: still blocked.
	if aux, _ := s.RetrySpill(); len(aux) != 0 {
		t.Fatal("retry should fail while the way is held")
	}
	if s.SpillDepth() != 1 {
		t.Fatal("request must remain parked")
	}
	// Complete reqA: the way frees, retry succeeds.
	s.MetaArrived(auxA[0].Key)
	s.Complete(reqA, bits.Line{}, reqA.Payload)
	aux, _ := s.RetrySpill()
	if len(aux) != 1 {
		t.Fatalf("retry should issue the deferred metadata read, got %v", aux)
	}
	if s.SpillDepth() != 0 || reqB.Spilled {
		t.Fatal("request should leave the spill buffer")
	}
	s.MetaArrived(aux[0].Key)
	if !s.Ready(reqB) {
		t.Fatal("reqB ready after its fill")
	}
}

// --- Table 4 constants ---

func TestTable4Entries(t *testing.T) {
	if len(Table4) != 3 {
		t.Fatalf("Table4 has %d entries, want 3", len(Table4))
	}
	var area float64
	for _, m := range Table4 {
		if m.AreaMM2 <= 0 || m.PowerMW <= 0 || m.LatencyNs <= 0 {
			t.Fatalf("%s: non-positive overheads", m.Name)
		}
		area += m.AreaMM2
	}
	if area > 1 {
		t.Fatalf("total area %v mm² implausibly large", area)
	}
	if TimingTableBytes != 512 {
		t.Fatalf("timing table storage = %d, want 512", TimingTableBytes)
	}
}

// --- stats histogram ---

func TestReadLatencyPercentiles(t *testing.T) {
	var s Stats
	for i := 0; i < 90; i++ {
		s.RecordReadLatency(30) // bucket [16,32)
	}
	for i := 0; i < 10; i++ {
		s.RecordReadLatency(5000) // tail
	}
	if got := s.AvgReadLatencyNs(); got < 500 || got > 600 {
		t.Fatalf("avg = %v", got)
	}
	p50 := s.ReadLatencyPercentile(0.5)
	if p50 > 64 {
		t.Fatalf("p50 bound = %v, want <= 64", p50)
	}
	p99 := s.ReadLatencyPercentile(0.99)
	if p99 < 4096 {
		t.Fatalf("p99 bound = %v, want >= 4096", p99)
	}
	// Degenerate inputs are clamped.
	if s.ReadLatencyPercentile(-1) == 0 || s.ReadLatencyPercentile(2) == 0 {
		t.Fatal("clamped percentiles should be positive")
	}
	var empty Stats
	if empty.ReadLatencyPercentile(0.5) != 0 {
		t.Fatal("empty stats should report 0")
	}
}
