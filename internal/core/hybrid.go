package core

import (
	"ladder/internal/bits"
	"ladder/internal/reram"
)

// Hybrid is the LADDER-Hybrid scheme (Section 4.2): multi-granularity
// counters. Wordline groups whose crossbar row sits near the write driver
// (low IR drop, hence latency-insensitive to content) keep only two 1-bit
// partial counters per block; four such pages share one metadata block,
// improving metadata locality and cutting maintenance traffic. Remaining
// rows use the Est layout. An 8-bit precision control register (modeled
// by Layout.LowPrecisionRows) selects the low-precision region.
type Hybrid struct {
	*ladderBase
	shifting bool
}

// NewHybrid builds the scheme with the default metadata cache.
func NewHybrid(env *Env) (*Hybrid, error) {
	return NewHybridCache(env, DefaultMetaCacheConfig())
}

// NewHybridCache builds the scheme with an explicit cache configuration
// (cache-size ablations).
func NewHybridCache(env *Env, cacheCfg MetaCacheConfig) (*Hybrid, error) {
	b, err := newLadderBase(env, cacheCfg)
	if err != nil {
		return nil, err
	}
	// Boot-time metadata: Est layout for high rows; packed 1-bit counters
	// for the four pages sharing a low-precision line.
	layout := NewLayout(env.Geom)
	b.cache.SetInitializer(func(key uint64) MetaLine {
		return hybridInitLine(env, layout, key)
	})
	// Hybrid always shifts; see the matching call in NewEstCache.
	env.Store.TrackUnshiftedCounters()
	return &Hybrid{ladderBase: b, shifting: true}, nil
}

// hybridInitLine synthesizes a Hybrid-layout metadata line from stored
// content: Est layout for high-precision keys, packed 1-bit counters of
// the four covered pages for low-precision keys. Used at boot-time
// initialization and to reconcile after a verify failure.
func hybridInitLine(env *Env, layout Layout, key uint64) MetaLine {
	if key&hybridLowKeyBit == 0 {
		return estInitLine(env, key)
	}
	var ml MetaLine
	for q, base := range layout.LowGroupLines(key) {
		if base >= env.Geom.Lines() {
			continue
		}
		if err := env.Store.EnsureRow(base); err != nil {
			return ml
		}
		for slot := 0; slot < reram.BlocksPerRow; slot++ {
			stored, err := env.Store.Read(base + uint64(slot))
			if err != nil {
				return ml
			}
			bi, sh := lowSlotBits(q, slot)
			ml[bi] |= (bits.EncodeLowPrecision(&stored) & 3) << sh
		}
	}
	return ml
}

// Name implements Scheme.
func (s *Hybrid) Name() string { return "LADDER-Hybrid" }

// SetLowPrecisionRows overrides the precision control register (the
// number of driver-near rows using 1-bit counters).
func (s *Hybrid) SetLowPrecisionRows(n int) { s.layout.LowPrecisionRows = n }

func (s *Hybrid) keys(req *WriteRequest) []uint64 {
	key, _ := s.layout.HybridKey(req.Line, s.env.Geom.GlobalRow(req.Loc), req.Loc.WL)
	// See Est.keys: reuse the request's MetaKeys backing.
	return append(req.MetaKeys[:0], key)
}

func (s *Hybrid) lowPrecision(req *WriteRequest) bool {
	return req.Loc.WL < s.layout.LowPrecisionRows
}

// Enqueue implements Scheme.
func (s *Hybrid) Enqueue(req *WriteRequest) ([]AuxRead, []MetaWriteback) {
	req.Payload = payloadFor(req.Data, req.Loc.Slot, s.shifting)
	if s.lowPrecision(req) {
		req.Partial = bits.EncodeLowPrecision(&req.Payload)
	} else {
		req.Partial = bits.EncodePartial(&req.Payload)
	}
	return s.acquire(req, s.keys(req))
}

// SMBArrived implements Scheme (Hybrid never requests SMBs).
func (s *Hybrid) SMBArrived(*WriteRequest, bits.Line) {}

// MetaArrived implements Scheme.
func (s *Hybrid) MetaArrived(key uint64) { s.metaArrived(key) }

// RetrySpill implements Scheme.
func (s *Hybrid) RetrySpill() ([]AuxRead, []MetaWriteback) { return s.retrySpill(s.keys) }

// Ready implements Scheme.
func (s *Hybrid) Ready(req *WriteRequest) bool { return !req.WaitMeta }

// lowSlotBits locates a block's 2-bit low-precision counter within the
// shared metadata line: quarter q (the page's position in its group of
// four) spans bytes [16q, 16q+16), two bits per block.
func lowSlotBits(quarter, slot int) (byteIdx int, shift uint) {
	bit := quarter*128 + slot*2
	return bit / 8, uint(bit % 8)
}

// estimate derives the C^w_lrs bound for the request's wordline group.
func (s *Hybrid) estimate(req *WriteRequest) (int, bool) {
	line := s.cache.Data(req.MetaKeys[0])
	if line == nil {
		return 0, false
	}
	if !s.lowPrecision(req) {
		var packed [reram.BlocksPerRow]uint8
		copy(packed[:], line[:])
		packed[req.Loc.Slot] = req.Partial
		return bits.EstimateCwLRS(packed[:]), true
	}
	quarter := s.layout.LowGroupIndex(req.Line)
	var packed [reram.BlocksPerRow]uint8
	for slot := 0; slot < reram.BlocksPerRow; slot++ {
		b, sh := lowSlotBits(quarter, slot)
		packed[slot] = (line[b] >> sh) & 3
	}
	packed[req.Loc.Slot] = req.Partial
	return bits.EstimateCwLRSLow(packed[:]), true
}

// Latency implements Scheme.
func (s *Hybrid) Latency(req *WriteRequest) float64 {
	c, ok := s.estimate(req)
	if !ok {
		return s.env.Tables.WorstNs
	}
	s.recordCounterDiff(req, c, s.shifting)
	req.Clrs = c
	return s.env.Tables.WL.Lookup(req.Loc.WL, req.Loc.BLHigh, c)
}

// Complete implements Scheme.
func (s *Hybrid) Complete(req *WriteRequest, old, stored bits.Line) []MetaWriteback {
	if line := s.cache.Data(req.MetaKeys[0]); line != nil {
		if s.lowPrecision(req) {
			quarter := s.layout.LowGroupIndex(req.Line)
			b, sh := lowSlotBits(quarter, req.Loc.Slot)
			line[b] = line[b]&^(3<<sh) | (req.Partial&3)<<sh
		} else {
			line[req.Loc.Slot] = req.Partial
		}
		s.cache.MarkDirty(req.MetaKeys[0])
	}
	s.release(req)
	return nil
}

// DecodeRead implements Scheme.
func (s *Hybrid) DecodeRead(line uint64, payload bits.Line) bits.Line {
	if !s.shifting {
		return payload
	}
	loc, err := s.env.Geom.Decode(line)
	if err != nil {
		return payload
	}
	return bits.Unshifted(payload, loc.Slot)
}

// UseConstrainedFNW implements Scheme.
func (s *Hybrid) UseConstrainedFNW() bool { return true }

// CrashRecover implements CrashRecoverable.
func (s *Hybrid) CrashRecover() { s.crashRecover() }

// WriteRetry implements RetryAware: as with Est, a verify failure means
// the cached counters mis-margined the row, so the metadata line is
// re-synthesized from stored content at whichever precision the key
// selects.
func (s *Hybrid) WriteRetry(req *WriteRequest, attempt int) {
	key := req.MetaKeys[0]
	if line := s.cache.Data(key); line != nil {
		*line = hybridInitLine(s.env, s.layout, key)
		s.cache.MarkDirty(key)
	}
}
