package core

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Canonical scheme names (the paper's figure labels). These used to live
// in package sim; they are defined here so that a scheme and its name
// registration sit in the same package and new write policies can plug
// in without touching the simulator.
const (
	SchemeBaseline   = "baseline"
	SchemeLocAware   = "location-aware"
	SchemeOracle     = "Oracle"
	SchemeSplitReset = "Split-reset"
	SchemeBLP        = "BLP"
	SchemeBasic      = "LADDER-Basic"
	SchemeEst        = "LADDER-Est"
	SchemeEstNoShift = "LADDER-Est-noshift"
	SchemeHybrid     = "LADDER-Hybrid"
)

// SchemeFactory builds one controller's private scheme instance over the
// shared environment. cache configures the LRS-metadata cache for the
// variants that own one; factories for cacheless schemes ignore it.
type SchemeFactory func(env *Env, cache MetaCacheConfig) (Scheme, error)

// schemeRegistry maps scheme names to factories, preserving registration
// order so listings stay in evaluation order.
var schemeRegistry = struct {
	sync.RWMutex
	factories map[string]SchemeFactory
	order     []string
}{factories: make(map[string]SchemeFactory)}

// RegisterScheme adds a write scheme to the registry under its figure
// label. The simulator, laddersim and experiments all resolve schemes
// through this registry, so a registered scheme is immediately runnable
// by name. Registering a duplicate name panics: silently shadowing a
// policy would corrupt cross-scheme comparisons.
func RegisterScheme(name string, factory SchemeFactory) {
	if name == "" || factory == nil {
		panic("core: RegisterScheme requires a name and a factory")
	}
	schemeRegistry.Lock()
	defer schemeRegistry.Unlock()
	if _, dup := schemeRegistry.factories[name]; dup {
		panic(fmt.Sprintf("core: scheme %q registered twice", name))
	}
	schemeRegistry.factories[name] = factory
	schemeRegistry.order = append(schemeRegistry.order, name)
}

// NewScheme instantiates a registered scheme by name. Each memory
// controller needs its own instance (schemes own private metadata
// caches), so callers invoke this once per channel. Lookup is exact
// first, then case-insensitive, so CLI spellings like "ladder-hybrid"
// resolve to the registered figure label.
func NewScheme(name string, env *Env, cache MetaCacheConfig) (Scheme, error) {
	schemeRegistry.RLock()
	factory := schemeRegistry.factories[name]
	if factory == nil {
		for reg, f := range schemeRegistry.factories {
			if strings.EqualFold(reg, name) {
				factory = f
				break
			}
		}
	}
	schemeRegistry.RUnlock()
	if factory == nil {
		known := RegisteredSchemes()
		sort.Strings(known)
		return nil, fmt.Errorf("core: unknown scheme %q (registered: %v)", name, known)
	}
	return factory(env, cache)
}

// RegisteredSchemes lists every registered scheme in registration order
// (built-ins first, in the paper's evaluation order).
func RegisteredSchemes() []string {
	schemeRegistry.RLock()
	defer schemeRegistry.RUnlock()
	return append([]string(nil), schemeRegistry.order...)
}

// SchemeRegistered reports whether a name resolves in the registry
// (under the same exact-then-case-insensitive rule as NewScheme).
func SchemeRegistered(name string) bool {
	schemeRegistry.RLock()
	defer schemeRegistry.RUnlock()
	if _, ok := schemeRegistry.factories[name]; ok {
		return true
	}
	for reg := range schemeRegistry.factories {
		if strings.EqualFold(reg, name) {
			return true
		}
	}
	return false
}

// The built-in schemes register at init time, in evaluation order.
func init() {
	RegisterScheme(SchemeBaseline, func(env *Env, _ MetaCacheConfig) (Scheme, error) {
		return NewBaseline(env), nil
	})
	RegisterScheme(SchemeLocAware, func(env *Env, _ MetaCacheConfig) (Scheme, error) {
		return NewLocationAware(env), nil
	})
	RegisterScheme(SchemeOracle, func(env *Env, _ MetaCacheConfig) (Scheme, error) {
		return NewOracle(env), nil
	})
	RegisterScheme(SchemeSplitReset, func(env *Env, _ MetaCacheConfig) (Scheme, error) {
		return NewSplitReset(env), nil
	})
	RegisterScheme(SchemeBLP, func(env *Env, _ MetaCacheConfig) (Scheme, error) {
		return NewBLP(env), nil
	})
	RegisterScheme(SchemeBasic, func(env *Env, cache MetaCacheConfig) (Scheme, error) {
		return NewBasicCache(env, cache)
	})
	RegisterScheme(SchemeEst, func(env *Env, cache MetaCacheConfig) (Scheme, error) {
		return NewEstCache(env, true, cache)
	})
	RegisterScheme(SchemeEstNoShift, func(env *Env, cache MetaCacheConfig) (Scheme, error) {
		return NewEstCache(env, false, cache)
	})
	RegisterScheme(SchemeHybrid, func(env *Env, cache MetaCacheConfig) (Scheme, error) {
		return NewHybridCache(env, cache)
	})
}
