package sim

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"ladder/internal/fault"
	"ladder/internal/metrics"
	"ladder/internal/remap"
	"ladder/internal/timeline"
	"ladder/internal/tracing"
)

// ReportSchema versions the run-report JSON layout. Consumers should
// reject reports whose schema string they do not recognize.
const ReportSchema = "ladder.run-report/v1"

// BenchSchema versions the perf-snapshot (BENCH_*.json) layout.
const BenchSchema = "ladder.bench/v1"

// GridReportSchema versions the multi-run grid-report layout.
const GridReportSchema = "ladder.grid-report/v1"

// LifetimeReportSchema versions the lifetime-sweep report layout
// (see LifetimeSweep in experiments.go).
const LifetimeReportSchema = "ladder.lifetime-report/v1"

// resetLatencySuffix is the per-channel RESET histogram name suffix; the
// full names are "memctrl.ch<N>.reset_latency_ns" (docs/METRICS.md).
const resetLatencySuffix = ".reset_latency_ns"

// retryLatencySuffix is the per-channel reissue-pulse histogram name
// suffix ("memctrl.ch<N>.retry_latency_ns"); present on fault-injection
// runs only.
const retryLatencySuffix = ".retry_latency_ns"

// ResetLatencySummary condenses the system-wide RESET-latency
// distribution (all channels merged): the content/location spread the
// paper's Figure 11 surface predicts, as observed during the run.
type ResetLatencySummary struct {
	Count  uint64  `json:"count"`
	MeanNs float64 `json:"mean_ns"`
	P50Ns  float64 `json:"p50_ns"`
	P95Ns  float64 `json:"p95_ns"`
	P99Ns  float64 `json:"p99_ns"`
	MaxNs  float64 `json:"max_ns"`
}

// Report is the structured, serializable record of one simulation run:
// identity, headline summary numbers, and the full metrics snapshot.
// WriteJSON emits the stable machine-readable form (schema
// "ladder.run-report/v1"); WriteText renders the same data for humans.
type Report struct {
	Schema   string `json:"schema"`
	Workload string `json:"workload"`
	Scheme   string `json:"scheme"`

	InstructionsRetired uint64  `json:"instructions_retired"`
	Ticks               uint64  `json:"ticks"`
	AvgIPC              float64 `json:"avg_ipc"`
	WallClockMS         float64 `json:"wall_clock_ms"`

	DataReads  uint64 `json:"data_reads"`
	DataWrites uint64 `json:"data_writes"`
	MetaReads  uint64 `json:"meta_reads"`
	MetaWrites uint64 `json:"meta_writes"`

	AvgWriteServiceNs float64 `json:"avg_write_service_ns"`
	AvgReadLatencyNs  float64 `json:"avg_read_latency_ns"`
	ReadNJ            float64 `json:"read_nj"`
	WriteNJ           float64 `json:"write_nj"`
	GapMoves          uint64  `json:"gap_moves"`

	// ResetLatency merges the per-channel RESET histograms into the
	// system-wide latency distribution.
	ResetLatency ResetLatencySummary `json:"reset_latency"`

	// Metrics is the full instrument snapshot (every name cataloged in
	// docs/METRICS.md).
	Metrics metrics.Snapshot `json:"metrics"`

	// Trace summarizes the run's transaction tracing (sampling rate,
	// span accounting, slowest writes); present only on traced runs.
	Trace *tracing.Summary `json:"trace,omitempty"`

	// Faults is the fault-injection section (docs/FAULTS.md); present only
	// on runs with Config.FaultRate > 0.
	Faults *FaultSummary `json:"faults,omitempty"`

	// Remap is the programmable-address-decoder section (docs/REMAP.md):
	// gap moves, spare-row remaps and indirection-penalty accounting.
	// Present only on runs where the decoder is built (wear leveling,
	// fault injection, or proactive retirement enabled).
	Remap *remap.Stats `json:"remap,omitempty"`

	// Timeline is the per-epoch series (docs/TIMELINE.md, schema
	// "ladder.timeline/v1"); present only on runs with
	// Config.TimelineInterval > 0. It carries no host-timing fields, so
	// StripVolatile leaves it untouched.
	Timeline *timeline.Timeline `json:"timeline,omitempty"`
}

// FaultSummary is the report's fault-injection section: the injector's
// verdict/retry/remap accounting plus the merged distribution of
// escalated reissue-pulse latencies.
type FaultSummary struct {
	fault.Stats
	RetryLatency ResetLatencySummary `json:"retry_latency"`
}

// NewReport freezes a Result into its report form.
func NewReport(res *Result) *Report {
	snap := res.Metrics.Snapshot()
	r := &Report{
		Schema:              ReportSchema,
		Workload:            res.Workload,
		Scheme:              res.Scheme,
		InstructionsRetired: res.InstructionsRetired,
		Ticks:               res.Ticks,
		AvgIPC:              res.AvgIPC(),
		WallClockMS:         float64(res.WallClock.Microseconds()) / 1e3,
		DataReads:           res.Stats.DataReads,
		DataWrites:          res.Stats.DataWrites,
		MetaReads:           res.Stats.MetaReads,
		MetaWrites:          res.Stats.MetaWrites,
		AvgWriteServiceNs:   res.Stats.AvgWriteServiceNs(),
		AvgReadLatencyNs:    res.Stats.AvgReadLatencyNs(),
		ReadNJ:              res.ReadNJ,
		WriteNJ:             res.WriteNJ,
		GapMoves:            res.GapMoves,
		Metrics:             snap,
	}
	r.ResetLatency = summarizeResetLatency(snap)
	if res.Trace != nil {
		sum := res.Trace.Summary()
		r.Trace = &sum
	}
	if res.Faults != nil {
		r.Faults = &FaultSummary{
			Stats:        *res.Faults,
			RetryLatency: summarizeLatency(snap, retryLatencySuffix),
		}
	}
	if res.Remap != nil {
		st := *res.Remap
		r.Remap = &st
	}
	r.Timeline = res.Timeline
	return r
}

// summarizeResetLatency merges every per-channel RESET histogram in the
// snapshot.
func summarizeResetLatency(snap metrics.Snapshot) ResetLatencySummary {
	return summarizeLatency(snap, resetLatencySuffix)
}

// summarizeLatency merges every per-channel memctrl histogram with the
// given name suffix. All channels share ResetLatencyBounds(), so the
// merge cannot fail on bounds; a foreign snapshot with mismatched bounds
// yields the partial merge accumulated so far.
func summarizeLatency(snap metrics.Snapshot, suffix string) ResetLatencySummary {
	var merged metrics.HistogramSnapshot
	for name, h := range snap.Histograms {
		if !strings.HasPrefix(name, "memctrl.") || !strings.HasSuffix(name, suffix) {
			continue
		}
		if m, err := merged.Merge(h); err == nil {
			merged = m
		}
	}
	return ResetLatencySummary{
		Count:  merged.Count,
		MeanNs: merged.Mean,
		P50Ns:  merged.P50,
		P95Ns:  merged.P95,
		P99Ns:  merged.P99,
		MaxNs:  merged.Max,
	}
}

// WriteJSON emits the report as indented JSON.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// WriteText renders the report for humans: the headline summary followed
// by every instrument in sorted-name order.
func (r *Report) WriteText(w io.Writer) error {
	var b strings.Builder
	fmt.Fprintf(&b, "run report (%s)\n", r.Schema)
	fmt.Fprintf(&b, "  workload %s  scheme %s\n", r.Workload, r.Scheme)
	fmt.Fprintf(&b, "  retired %d instr in %d ticks (IPC %.4f), wall clock %.1f ms\n",
		r.InstructionsRetired, r.Ticks, r.AvgIPC, r.WallClockMS)
	fmt.Fprintf(&b, "  traffic: %d data reads, %d data writes, %d meta reads, %d meta writes\n",
		r.DataReads, r.DataWrites, r.MetaReads, r.MetaWrites)
	fmt.Fprintf(&b, "  write service %.1f ns avg, read latency %.1f ns avg\n",
		r.AvgWriteServiceNs, r.AvgReadLatencyNs)
	rl := r.ResetLatency
	fmt.Fprintf(&b, "  RESET latency (all channels, %d RESETs): mean %.1f p50 %.1f p95 %.1f p99 %.1f max %.1f ns\n",
		rl.Count, rl.MeanNs, rl.P50Ns, rl.P95Ns, rl.P99Ns, rl.MaxNs)
	if f := r.Faults; f != nil {
		fmt.Fprintf(&b, "  faults: %d injected / %d checked, %d retries (mean %.1f ns), %d exhausted\n",
			f.Injected, f.Checked, f.Retries, f.RetryLatency.MeanNs, f.Exhausted)
	}
	if m := r.Remap; m != nil {
		fmt.Fprintf(&b, "  remap: %d gap moves, %d spare remaps (%d spares used), %d lookups, %d penalty ticks\n",
			m.GapMoves, m.SpareRemaps, m.SparesUsed, m.Lookups, m.PenaltyTicks)
	}
	b.WriteString(r.Metrics.Text())
	_, err := io.WriteString(w, b.String())
	return err
}

// PerfSnapshot flattens the report into the name→value map stored in
// BENCH_*.json files: the numbers future performance PRs are compared
// against. Keys are stable; additions are fine, renames are not.
func (r *Report) PerfSnapshot() map[string]float64 {
	m := map[string]float64{
		"avg_ipc":              r.AvgIPC,
		"instructions_retired": float64(r.InstructionsRetired),
		"ticks":                float64(r.Ticks),
		"wall_clock_ms":        r.WallClockMS,
		"avg_write_service_ns": r.AvgWriteServiceNs,
		"avg_read_latency_ns":  r.AvgReadLatencyNs,
		"reset_latency_p50_ns": r.ResetLatency.P50Ns,
		"reset_latency_p95_ns": r.ResetLatency.P95Ns,
		"reset_latency_p99_ns": r.ResetLatency.P99Ns,
		"reset_latency_max_ns": r.ResetLatency.MaxNs,
	}
	if r.WallClockMS > 0 {
		m["instr_per_sec"] = float64(r.InstructionsRetired) / (r.WallClockMS / 1e3)
	}
	return m
}

// BenchProvenance records where a perf snapshot was measured: the Go
// toolchain, the parallelism it ran under, and an optional free-form
// label (e.g. the CI runner class). Comparing snapshots from different
// provenances is comparing different machines — the ratchet prints it so
// regressions can be triaged against environment drift.
type BenchProvenance struct {
	GoVersion  string `json:"go_version"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	Label      string `json:"label,omitempty"`
}

// BenchReport is the BENCH_*.json document: a named perf snapshot.
type BenchReport struct {
	Schema   string             `json:"schema"`
	Name     string             `json:"name"`
	Workload string             `json:"workload"`
	Scheme   string             `json:"scheme"`
	Metrics  map[string]float64 `json:"metrics"`
	// Provenance stamps the measurement environment; absent on snapshots
	// taken before it existed.
	Provenance *BenchProvenance `json:"provenance,omitempty"`
}

// Bench derives the BENCH_*.json document from the report.
func (r *Report) Bench(name string) *BenchReport {
	return &BenchReport{
		Schema:   BenchSchema,
		Name:     name,
		Workload: r.Workload,
		Scheme:   r.Scheme,
		Metrics:  r.PerfSnapshot(),
	}
}

// WriteJSON emits the bench document as indented JSON.
func (b *BenchReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(b)
}

// LifetimeReport serializes a LifetimeSweep: identity, the swept knob
// grids, per-combination cells and the merged decoder accounting (the
// top-level "remap" object CI smoke checks assert against).
type LifetimeReport struct {
	Schema     string         `json:"schema"`
	Scheme     string         `json:"scheme"`
	Workloads  []string       `json:"workloads"`
	GapPeriods []int          `json:"gap_periods"`
	SpareRows  []int          `json:"spare_rows"`
	Cells      []LifetimeCell `json:"cells"`
	Remap      remap.Stats    `json:"remap"`
}

// Report freezes the study into its serializable form.
func (s *LifetimeStudy) Report() *LifetimeReport {
	return &LifetimeReport{
		Schema:     LifetimeReportSchema,
		Scheme:     s.Scheme,
		Workloads:  append([]string(nil), s.Workloads...),
		GapPeriods: append([]int(nil), s.GapPeriods...),
		SpareRows:  append([]int(nil), s.SpareRows...),
		Cells:      append([]LifetimeCell(nil), s.Cells...),
		Remap:      s.Remap,
	}
}

// WriteJSON emits the lifetime report as indented JSON.
func (r *LifetimeReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// GridCell is one (workload, scheme) run's headline numbers inside a
// GridReport; the full per-run instrument snapshots are merged into the
// grid-level Metrics rather than repeated per cell.
type GridCell struct {
	Workload            string              `json:"workload"`
	Scheme              string              `json:"scheme"`
	AvgIPC              float64             `json:"avg_ipc"`
	InstructionsRetired uint64              `json:"instructions_retired"`
	WallClockMS         float64             `json:"wall_clock_ms"`
	AvgWriteServiceNs   float64             `json:"avg_write_service_ns"`
	AvgReadLatencyNs    float64             `json:"avg_read_latency_ns"`
	ResetLatency        ResetLatencySummary `json:"reset_latency"`
}

// GridReport serializes a whole experiment grid: per-cell summaries plus
// the metrics union (counters add, histograms add bucket-wise) across
// every run.
type GridReport struct {
	Schema    string           `json:"schema"`
	Workloads []string         `json:"workloads"`
	Schemes   []string         `json:"schemes"`
	Cells     []GridCell       `json:"cells"`
	Metrics   metrics.Snapshot `json:"metrics"`
	// Timeline is the union of every cell's per-epoch series (deltas add
	// across cells, epochs aligned by index; see timeline.Merge). Present
	// only when the grid ran with Options.TimelineInterval > 0.
	Timeline *timeline.Timeline `json:"timeline,omitempty"`
}

// MergedMetrics folds every cell's registry into one snapshot. All cells
// use identical instrument shapes, so the merge only fails on a grid
// whose results were built outside Run.
func (g *Grid) MergedMetrics() (metrics.Snapshot, error) {
	agg := metrics.NewRegistry()
	for _, w := range g.Workloads {
		for _, s := range g.Schemes {
			res := g.Results[w][s]
			if res == nil || res.Metrics == nil {
				continue
			}
			if err := agg.Merge(res.Metrics); err != nil {
				return metrics.Snapshot{}, fmt.Errorf("sim: merging %s/%s metrics: %w", w, s, err)
			}
		}
	}
	return agg.Snapshot(), nil
}

// NewGridReport freezes an experiment grid into its report form. Cells
// are ordered workload-major, scheme-minor, matching the grid's own
// iteration order.
func NewGridReport(g *Grid) (*GridReport, error) {
	merged, err := g.MergedMetrics()
	if err != nil {
		return nil, err
	}
	gr := &GridReport{
		Schema:    GridReportSchema,
		Workloads: append([]string(nil), g.Workloads...),
		Schemes:   append([]string(nil), g.Schemes...),
		Metrics:   merged,
	}
	for _, w := range g.Workloads {
		for _, s := range g.Schemes {
			res := g.Results[w][s]
			if res == nil {
				continue
			}
			if res.Timeline != nil {
				gr.Timeline, err = timeline.Merge(gr.Timeline, res.Timeline)
				if err != nil {
					return nil, fmt.Errorf("sim: merging %s/%s timeline: %w", w, s, err)
				}
			}
			snap := res.Metrics.Snapshot()
			gr.Cells = append(gr.Cells, GridCell{
				Workload:            w,
				Scheme:              s,
				AvgIPC:              res.AvgIPC(),
				InstructionsRetired: res.InstructionsRetired,
				WallClockMS:         float64(res.WallClock.Microseconds()) / 1e3,
				AvgWriteServiceNs:   res.Stats.AvgWriteServiceNs(),
				AvgReadLatencyNs:    res.Stats.AvgReadLatencyNs(),
				ResetLatency:        summarizeResetLatency(snap),
			})
		}
	}
	return gr, nil
}

// WriteJSON emits the grid report as indented JSON.
func (g *GridReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(g)
}

// stripVolatileSnapshot removes host-timing artifacts from a metrics
// snapshot in place (see GridReport.StripVolatile).
func stripVolatileSnapshot(s *metrics.Snapshot) {
	delete(s.Counters, "sim.wall_clock_us")
}

// StripVolatile zeroes every host-timing field of the report in place —
// per-cell WallClockMS and the sim.wall_clock_us counter in the merged
// metrics — and returns the receiver. Everything else in a grid report
// is deterministic for a fixed seed, so two stripped reports of the same
// configuration marshal byte-identically regardless of Options.Jobs or
// host load. The parallel-determinism test and the service's cached
// responses rely on this.
func (g *GridReport) StripVolatile() *GridReport {
	for i := range g.Cells {
		g.Cells[i].WallClockMS = 0
	}
	stripVolatileSnapshot(&g.Metrics)
	return g
}

// StripVolatile is the single-run counterpart of
// GridReport.StripVolatile: it zeroes WallClockMS and removes the
// wall-clock counter from the metrics snapshot, leaving only
// seed-deterministic fields. Returns the receiver.
func (r *Report) StripVolatile() *Report {
	r.WallClockMS = 0
	stripVolatileSnapshot(&r.Metrics)
	return r
}
