package sim

import (
	"testing"

	"ladder/internal/tracing"
)

// TestGoldenWithTracing re-proves golden determinism with the span
// collector enabled: tracing observes the run, it must not perturb it.
// Any divergence from the pinned want string means a trace call site
// leaked state back into the simulation.
func TestGoldenWithTracing(t *testing.T) {
	g := goldenRuns[0]
	cfg := testConfig(t, g.workload, g.scheme)
	cfg.TraceSample = 3
	cfg.TraceSlowest = 8
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := goldenKey(res); got != g.want {
		t.Errorf("tracing perturbed the simulation\n got: %s\nwant: %s", got, g.want)
	}

	if res.Trace == nil {
		t.Fatal("TraceSample > 0 but Result.Trace is nil")
	}
	sum := res.Trace.Summary()
	if sum.SampleEvery != 3 {
		t.Errorf("summary sample_every = %d, want 3", sum.SampleEvery)
	}
	if sum.Sampled == 0 || sum.Completed == 0 {
		t.Fatalf("no spans recorded: %+v", sum)
	}
	if len(sum.Slowest) == 0 {
		t.Error("slowest-writes digest empty despite completed writes")
	}

	// At least one dispatched data write must carry a fully resolved
	// timing-table cell: LADDER-Hybrid knows WL, BL and C_lrs.
	resolved := false
	for _, s := range res.Trace.Spans() {
		if s.Enqueue > s.Dispatch || s.Dispatch > s.Complete {
			t.Fatalf("span %d has a non-monotone lifecycle: %+v", s.ID, s)
		}
		if s.Kind == tracing.KindDataWrite && s.WLBucket >= 0 && s.BLBucket >= 0 && s.ClrsBucket >= 0 && s.LatNs > 0 {
			resolved = true
		}
	}
	if !resolved {
		t.Error("no data-write span carries a resolved ⟨WL, BL, C_lrs⟩ cell")
	}

	// The run report embeds the accounting.
	rep := NewReport(res)
	if rep.Trace == nil || rep.Trace.Sampled != sum.Sampled {
		t.Errorf("report trace summary = %+v, want %+v", rep.Trace, sum)
	}
}

// TestTracingOffByDefault pins the zero-cost default: no collector, no
// trace section in the report.
func TestTracingOffByDefault(t *testing.T) {
	res, err := Run(testConfig(t, "astar", SchemeBaseline))
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace != nil {
		t.Error("Result.Trace non-nil without TraceSample")
	}
	if rep := NewReport(res); rep.Trace != nil {
		t.Error("report carries a trace section without tracing")
	}
}

// TestProgressDetail checks the periodic progress snapshot: wall clock
// and instruction rate always, frozen metrics and recent spans when
// ProgressDetail asks for them (the introspection server's feed).
func TestProgressDetail(t *testing.T) {
	cfg := testConfig(t, "lbm", SchemeHybrid)
	cfg.TraceSample = 1
	cfg.ProgressDetail = true
	cfg.ProgressEvery = 20_000
	var last ProgressInfo
	calls := 0
	cfg.Progress = func(p ProgressInfo) { calls++; last = p }
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
	if calls == 0 {
		t.Fatal("progress hook never fired")
	}
	if last.Wall <= 0 {
		t.Errorf("Wall = %v, want > 0", last.Wall)
	}
	if last.InstrRate <= 0 {
		t.Errorf("InstrRate = %v, want > 0", last.InstrRate)
	}
	if last.Metrics == nil {
		t.Fatal("ProgressDetail set but Metrics snapshot is nil")
	}
	if len(last.Metrics.Counters) == 0 {
		t.Error("frozen snapshot carries no counters")
	}
	if len(last.Spans) == 0 {
		t.Error("ProgressDetail set with tracing on but no recent spans")
	}
}

// TestGridProgress checks RunGrid's per-cell completion notices.
func TestGridProgress(t *testing.T) {
	var events []GridProgress
	opts := Options{
		Instr: 10_000, Seed: 7, Tables: smallTables(t),
		Workloads: []string{"astar"},
		// Serialized under the grid lock, so plain append is safe.
		Progress: func(p GridProgress) { events = append(events, p) },
	}
	if _, err := RunGrid(opts, []string{SchemeBaseline, SchemeEst}); err != nil {
		t.Fatal(err)
	}
	if len(events) != 2 {
		t.Fatalf("got %d progress events, want 2", len(events))
	}
	seen := map[int]bool{}
	for _, e := range events {
		if e.Total != 2 {
			t.Errorf("Total = %d, want 2", e.Total)
		}
		if e.Workload != "astar" || e.Failed {
			t.Errorf("unexpected event %+v", e)
		}
		seen[e.Done] = true
	}
	if !seen[1] || !seen[2] {
		t.Errorf("Done values %v, want {1, 2}", seen)
	}
}
