package sim

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"

	"ladder/internal/core"
	"ladder/internal/remap"
	"ladder/internal/reram"
	"ladder/internal/timing"
	"ladder/internal/trace"
)

// Options scopes an experiment run.
type Options struct {
	// Instr is the per-core instruction budget (0 = 200k).
	Instr uint64
	// Seed makes the experiment deterministic.
	Seed int64
	// Tables overrides the timing tables (nil = full 512×512 set).
	Tables *timing.TableSet
	// Workloads restricts the workload list (nil = all sixteen).
	Workloads []string
	// Jobs bounds how many grid cells simulate concurrently
	// (0 = runtime.NumCPU()). Each cell is an independent run with its
	// own store, Env and metrics registry, so any Jobs value produces
	// the same Grid; reports derived from it are byte-identical across
	// Jobs settings once volatile wall-clock fields are stripped
	// (GridReport.StripVolatile). Jobs=1 recovers fully sequential
	// execution.
	Jobs int
	// Progress, when set, is invoked after each grid cell finishes
	// (successfully or not). Invocations are serialized under the grid's
	// callback mutex — the callback is never entered concurrently, so
	// printProgress-style consumers need no locking of their own — but it
	// runs on worker goroutines and must stay cheap; a slow callback
	// stalls cell completion.
	Progress func(GridProgress)
	// CellProgress, when set, receives each running cell's periodic
	// ProgressInfo (see Config.Progress) tagged with the cell identity.
	// Like Progress, invocations from all workers are serialized under
	// one mutex, so the callback needs no synchronization of its own.
	// The cadence is governed by ProgressEvery.
	CellProgress func(workload, scheme string, info ProgressInfo)
	// ProgressEvery is the per-cell progress period in cycles forwarded
	// to each run's Config.ProgressEvery (0 = the run default). Only
	// meaningful with CellProgress set.
	ProgressEvery uint64
	// FaultSeed, RetryMax and SpareRows parameterize fault-injection
	// cells (ReliabilitySweep); runs without a fault rate ignore them.
	// Zero values select the defaults (see sim.Config).
	FaultSeed int64
	RetryMax  int
	SpareRows int
	// RemapPenaltyNs is the address-decoder indirection latency charged
	// on accesses to spare-remapped rows (0 = default 2 ns, negative =
	// free; see sim.Config).
	RemapPenaltyNs float64
	// TimelineInterval and TimelineCapacity forward the timeline sampler
	// configuration to every cell (see Config.TimelineInterval); the grid
	// report merges the per-cell series into one grid-level timeline.
	TimelineInterval uint64
	TimelineCapacity int
}

// GridProgress reports one finished cell of a running experiment grid.
// Delivery is serialized (see Options.Progress): consumers never observe
// two callbacks at once, and Done is monotonically increasing across
// callbacks — though with Jobs > 1 the (Workload, Scheme) completion
// order varies run to run.
type GridProgress struct {
	// Done cells out of Total have finished (including failures).
	Done, Total int
	// Workload and Scheme identify the cell that just finished.
	Workload, Scheme string
	// Failed marks a cell whose run returned an error.
	Failed bool
}

func (o Options) workloads() []string {
	if len(o.Workloads) > 0 {
		return o.Workloads
	}
	return trace.AllWorkloads()
}

func (o Options) config(workload, scheme string) Config {
	return Config{
		Workload:         workload,
		Scheme:           scheme,
		InstrPerCore:     o.Instr,
		Seed:             o.Seed,
		Tables:           o.Tables,
		FaultSeed:        o.FaultSeed,
		RetryMax:         o.RetryMax,
		SpareRows:        o.SpareRows,
		RemapPenaltyNs:   o.RemapPenaltyNs,
		TimelineInterval: o.TimelineInterval,
		TimelineCapacity: o.TimelineCapacity,
	}
}

// Grid holds results for every (workload, scheme) pair of an experiment.
type Grid struct {
	Workloads []string
	Schemes   []string
	// Results[workload][scheme]
	Results map[string]map[string]*Result
}

// jobs resolves the worker-pool width.
func (o Options) jobs() int {
	if o.Jobs > 0 {
		return o.Jobs
	}
	return runtime.NumCPU()
}

// RunGrid simulates every workload under every scheme. Runs are
// independent (each builds its own memory image), so they execute on a
// worker pool sized by Options.Jobs (default: one worker per CPU).
func RunGrid(opts Options, schemes []string) (*Grid, error) {
	return RunGridCtx(context.Background(), opts, schemes)
}

// RunGridCtx is RunGrid under a context: once ctx is canceled — or any
// cell fails — no further cell is dispatched, already-running cells
// abort at their next engine step (see RunCtx; a cell never stops
// mid-cycle), and every failure is reported via errors.Join alongside
// the context's error. A canceled grid is returned as an error, never
// as a silently partial result.
//
// Workers are panic-isolated: a panicking scheme or workload converts
// to that cell's error (a *PanicError carrying the stack) and joins the
// other failures instead of crashing the process.
//
// Determinism: each cell runs with its own metrics registry and memory
// image, and Grid/report iteration follows the Workloads×Schemes order
// regardless of completion order, so the resulting Grid is independent
// of Options.Jobs and of scheduling. User callbacks (Options.Progress,
// Options.CellProgress) are serialized under one mutex and never run
// concurrently with each other.
func RunGridCtx(ctx context.Context, opts Options, schemes []string) (*Grid, error) {
	g := &Grid{
		Workloads: opts.workloads(),
		Schemes:   schemes,
		Results:   make(map[string]map[string]*Result),
	}
	// Resolve the shared timing tables up front so workers do not race on
	// the lazy default-table generation.
	if opts.Tables == nil {
		ts, err := timing.DefaultTableSet()
		if err != nil {
			return nil, err
		}
		opts.Tables = ts
	}
	type cell struct{ w, s string }
	cells := make([]cell, 0, len(g.Workloads)*len(schemes))
	for _, w := range g.Workloads {
		g.Results[w] = make(map[string]*Result)
		for _, s := range schemes {
			cells = append(cells, cell{w, s})
		}
	}
	// A cell failure cancels runCtx so queued cells never dispatch; the
	// caller's ctx flows through, so external cancellation behaves the
	// same way.
	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		mu         sync.Mutex // guards results, errs, done
		progressMu sync.Mutex // serializes user callbacks (Progress, CellProgress)
		runErrs    []error
		done       int
		wg         sync.WaitGroup
	)
	sem := make(chan struct{}, opts.jobs())
	for _, c := range cells {
		if runCtx.Err() != nil {
			break
		}
		wg.Add(1)
		sem <- struct{}{}
		go func(c cell) {
			defer func() { <-sem; wg.Done() }()
			cfg := opts.config(c.w, c.s)
			if opts.CellProgress != nil {
				cfg.ProgressEvery = opts.ProgressEvery
				cfg.Progress = func(p ProgressInfo) {
					progressMu.Lock()
					defer progressMu.Unlock()
					opts.CellProgress(c.w, c.s, p)
				}
			}
			res, err := runCell(runCtx, cfg)
			mu.Lock()
			done++
			n := done
			if err != nil {
				// Collect every cell's failure (cells are independent, so
				// one bad workload name should not mask another's error);
				// errors.Join reports them all. The cancel stops queued
				// cells from dispatching after the first failure.
				runErrs = append(runErrs, fmt.Errorf("running %s/%s: %w", c.w, c.s, err))
				cancel()
			} else {
				g.Results[c.w][c.s] = res
			}
			mu.Unlock()
			if opts.Progress != nil {
				progressMu.Lock()
				opts.Progress(GridProgress{Done: n, Total: len(cells), Workload: c.w, Scheme: c.s, Failed: err != nil})
				progressMu.Unlock()
			}
		}(c)
	}
	wg.Wait()
	if ctx.Err() != nil {
		runErrs = append(runErrs, fmt.Errorf("experiment grid canceled: %w", ctx.Err()))
	}
	if err := errors.Join(runErrs...); err != nil {
		return nil, err
	}
	return g, nil
}

// Baseline returns a workload's baseline result; RunGrid callers must
// include SchemeBaseline for the normalized views to work.
func (g *Grid) baseline(workload string) *Result {
	return g.Results[workload][SchemeBaseline]
}

// Row is one workload's series values keyed by scheme (or series name).
type Row struct {
	Workload string
	Values   map[string]float64
}

// rows applies a per-result metric, normalized by the baseline metric
// when norm is set.
func (g *Grid) rows(metric func(*Result) float64, norm bool) []Row {
	out := make([]Row, 0, len(g.Workloads))
	for _, w := range g.Workloads {
		r := Row{Workload: w, Values: make(map[string]float64)}
		base := 1.0
		if norm {
			base = metric(g.baseline(w))
		}
		for _, s := range g.Schemes {
			v := metric(g.Results[w][s])
			if norm && base > 0 {
				v /= base
			}
			r.Values[s] = v
		}
		out = append(out, r)
	}
	return out
}

// Average appends an AVG row (arithmetic mean across workloads).
func Average(rows []Row) Row {
	avg := Row{Workload: "AVG", Values: make(map[string]float64)}
	if len(rows) == 0 {
		return avg
	}
	for _, r := range rows {
		for k, v := range r.Values {
			avg.Values[k] += v
		}
	}
	for k := range avg.Values {
		avg.Values[k] /= float64(len(rows))
	}
	return avg
}

// WriteServiceTime derives Figure 12: average write service time
// normalized to baseline.
func (g *Grid) WriteServiceTime() []Row {
	return g.rows(func(r *Result) float64 { return r.Stats.AvgWriteServiceNs() }, true)
}

// ReadLatency derives Figure 13: average processor read latency
// (queuing + service) normalized to baseline.
func (g *Grid) ReadLatency() []Row {
	return g.rows(func(r *Result) float64 { return r.Stats.AvgReadLatencyNs() }, true)
}

// ExtraReads and ExtraWrites derive Figure 14: metadata/SMB traffic
// relative to the baseline's data traffic.
func (g *Grid) ExtraReads() []Row {
	return g.rows(func(r *Result) float64 { return r.Stats.ExtraReadFraction() }, false)
}

// ExtraWrites derives Figure 14b.
func (g *Grid) ExtraWrites() []Row {
	return g.rows(func(r *Result) float64 { return r.Stats.ExtraWriteFraction() }, false)
}

// Speedup derives Figures 2 and 16: weighted speedup over baseline.
func (g *Grid) Speedup() []Row {
	out := make([]Row, 0, len(g.Workloads))
	for _, w := range g.Workloads {
		base := g.baseline(w)
		r := Row{Workload: w, Values: make(map[string]float64)}
		for _, s := range g.Schemes {
			r.Values[s] = g.Results[w][s].WeightedSpeedup(base)
		}
		out = append(out, r)
	}
	return out
}

// EnergySplit is one workload's dynamic-energy breakdown per scheme,
// normalized to the baseline total (Figure 17).
type EnergySplit struct {
	Workload string
	// Read and Write are normalized energies keyed by scheme.
	Read, Write map[string]float64
}

// DynamicEnergy derives Figure 17.
func (g *Grid) DynamicEnergy() []EnergySplit {
	out := make([]EnergySplit, 0, len(g.Workloads))
	for _, w := range g.Workloads {
		base := g.baseline(w)
		total := base.ReadNJ + base.WriteNJ
		es := EnergySplit{Workload: w, Read: map[string]float64{}, Write: map[string]float64{}}
		for _, s := range g.Schemes {
			r := g.Results[w][s]
			if total > 0 {
				es.Read[s] = r.ReadNJ / total
				es.Write[s] = r.WriteNJ / total
			}
		}
		out = append(out, es)
	}
	return out
}

// CounterDiffs derives Figure 15: the mean (estimated − accurate) C_lrs
// gap for LADDER-Est without (a) and with (b) intra-line shifting. The
// grid must include SchemeEst and SchemeEstNoShift.
func (g *Grid) CounterDiffs() []Row {
	out := make([]Row, 0, len(g.Workloads))
	for _, w := range g.Workloads {
		r := Row{Workload: w, Values: make(map[string]float64)}
		if res := g.Results[w][SchemeEstNoShift]; res != nil {
			r.Values["without-shift"] = res.Stats.AvgCounterDiff()
		}
		if res := g.Results[w][SchemeEst]; res != nil {
			r.Values["with-shift"] = res.Stats.AvgCounterDiff()
		}
		out = append(out, r)
	}
	return out
}

// RelativeLifetime derives Section 6.4's lifetime comparison: lifetime
// under ideal wear leveling scales inversely with total write traffic
// (data + metadata maintenance).
func (g *Grid) RelativeLifetime() []Row {
	return g.rows(func(r *Result) float64 {
		total := float64(r.Stats.DataWrites + r.Stats.MetaWrites)
		if total == 0 {
			return 1
		}
		return float64(r.Stats.DataWrites) / total
	}, false)
}

// FNWCancellation derives the Section 6.1 datum: the fraction of FNW
// flip opportunities canceled by LADDER's ones constraint (reported <4%).
func (g *Grid) FNWCancellation() []Row {
	return g.rows(func(r *Result) float64 {
		if r.Stats.FNWUnits == 0 {
			return 0
		}
		return float64(r.Stats.FNWCanceled) / float64(r.Stats.FNWUnits)
	}, false)
}

// RangeAblation runs Section 7's process-variation study: it reports the
// fraction of a scheme's speedup retained when the timing tables' dynamic
// range shrinks by `factor` (the paper: 2× shrink retains ~85% on
// average).
func RangeAblation(opts Options, scheme string, factor float64) ([]Row, error) {
	out := make([]Row, 0, len(opts.workloads()))
	for _, w := range opts.workloads() {
		full := map[string]*Result{}
		shr := map[string]*Result{}
		for _, s := range []string{SchemeBaseline, scheme} {
			r, err := Run(opts.config(w, s))
			if err != nil {
				return nil, err
			}
			full[s] = r
			cfg := opts.config(w, s)
			cfg.ShrinkRange = factor
			r2, err := Run(cfg)
			if err != nil {
				return nil, err
			}
			shr[s] = r2
		}
		gainFull := full[scheme].WeightedSpeedup(full[SchemeBaseline]) - 1
		gainShr := shr[scheme].WeightedSpeedup(shr[SchemeBaseline]) - 1
		retained := 0.0
		if gainFull > 0 {
			retained = gainShr / gainFull
		}
		out = append(out, Row{Workload: w, Values: map[string]float64{
			"gain-full":   gainFull,
			"gain-shrunk": gainShr,
			"retained":    retained,
		}})
	}
	return out, nil
}

// CrashRecoveryStudy runs Section 7's crash-consistency scenario: a power
// failure halfway through the run loses cached LRS-metadata, the lazy
// conservative correction overwrites the region with maximum values, and
// execution resumes. Reported per workload: average write service before
// and after the crash, and the post-crash counter gap (how conservative
// the corrected metadata still is on average).
func CrashRecoveryStudy(opts Options, scheme string) ([]Row, error) {
	out := make([]Row, 0, len(opts.workloads()))
	for _, w := range opts.workloads() {
		cfg := opts.config(w, scheme)
		cfg.CrashAtInstr = cfg.InstrPerCore / 2
		if cfg.CrashAtInstr == 0 {
			cfg.CrashAtInstr = 100_000
		}
		res, err := Run(cfg)
		if err != nil {
			return nil, err
		}
		r := Row{Workload: w, Values: map[string]float64{}}
		if res.PreCrashStats != nil && res.PostCrashStats != nil {
			r.Values["pre-service-ns"] = res.PreCrashStats.AvgWriteServiceNs()
			r.Values["post-service-ns"] = res.PostCrashStats.AvgWriteServiceNs()
			r.Values["post-counter-gap"] = res.PostCrashStats.AvgCounterDiff()
		}
		out = append(out, r)
	}
	return out, nil
}

// VWLModeComparison contrasts segment-based and line-based vertical wear
// leveling under a LADDER scheme (Section 6.4's locality argument):
// line-granularity scatter breaks the page→metadata-line association, so
// metadata reads per data write rise and IPC falls.
func VWLModeComparison(opts Options, scheme string) ([]Row, error) {
	out := make([]Row, 0, len(opts.workloads()))
	for _, w := range opts.workloads() {
		r := Row{Workload: w, Values: map[string]float64{}}
		for _, mode := range []string{"segment", "line"} {
			cfg := opts.config(w, scheme)
			cfg.WearLeveling = true
			cfg.VWLMode = mode
			res, err := Run(cfg)
			if err != nil {
				return nil, err
			}
			metaPerWrite := 0.0
			if res.Stats.DataWrites > 0 {
				metaPerWrite = float64(res.Stats.MetaReads) / float64(res.Stats.DataWrites)
			}
			r.Values[mode+"-ipc"] = res.AvgIPC()
			r.Values[mode+"-metareads"] = metaPerWrite
		}
		out = append(out, r)
	}
	return out, nil
}

// CacheSizeSweep runs the metadata-cache ablation the paper mentions in
// Section 6.3 ("marginal system performance gain when increasing cache
// size (<2%)"): the scheme runs with a range of LRS-metadata cache sizes
// and reports IPC relative to the default 64 KB configuration.
func CacheSizeSweep(opts Options, scheme string, sizesKB []int) ([]Row, error) {
	if len(sizesKB) == 0 {
		sizesKB = []int{16, 32, 64, 128, 256}
	}
	out := make([]Row, 0, len(opts.workloads()))
	for _, w := range opts.workloads() {
		base, err := Run(opts.config(w, scheme))
		if err != nil {
			return nil, err
		}
		r := Row{Workload: w, Values: map[string]float64{}}
		for _, kb := range sizesKB {
			cfg := opts.config(w, scheme)
			cfg.MetaCache = core.MetaCacheConfig{SizeBytes: kb << 10, Ways: 4, SpillSize: 16}
			res, err := Run(cfg)
			if err != nil {
				return nil, err
			}
			rel := 0.0
			if base.AvgIPC() > 0 {
				rel = res.AvgIPC() / base.AvgIPC()
			}
			r.Values[fmt.Sprintf("%dKB", kb)] = rel
		}
		out = append(out, r)
	}
	return out, nil
}

// LowPrecisionSweep ablates LADDER-Hybrid's precision control register:
// how many driver-near rows use 1-bit counters. 0 degenerates to
// LADDER-Est; MatRows makes everything low-precision. Reported: average
// write service time (ns) and metadata reads per data write.
func LowPrecisionSweep(opts Options, rows []int) ([]Row, error) {
	if len(rows) == 0 {
		rows = []int{0, 64, 128, 256, 512}
	}
	out := make([]Row, 0, len(opts.workloads()))
	for _, w := range opts.workloads() {
		r := Row{Workload: w, Values: map[string]float64{}}
		for _, n := range rows {
			cfg := opts.config(w, SchemeHybrid)
			cfg.HybridLowRows = n
			if n == 0 {
				cfg.HybridLowRows = -1
			}
			res, err := Run(cfg)
			if err != nil {
				return nil, err
			}
			r.Values[fmt.Sprintf("rows=%d svc", n)] = res.Stats.AvgWriteServiceNs()
		}
		out = append(out, r)
	}
	return out, nil
}

// ReliabilitySweep runs the write-fault reliability study: every
// workload runs under each scheme at each base fault rate (same fault
// seed), and the reported value is program-and-verify retries per 1000
// data writes, keyed "scheme@rate". The sweep exposes the stale-metadata
// margin effect: LADDER-Est's conservative partial-counter bounds
// program surplus latency margin, whose over-RESET stress draws more
// verify failures than LADDER-Basic's exact zero-margin counters (see
// docs/FAULTS.md). Nil schemes/rates select the defaults.
func ReliabilitySweep(opts Options, schemes []string, rates []float64) ([]Row, error) {
	if len(schemes) == 0 {
		schemes = []string{SchemeBasic, SchemeEst, SchemeHybrid}
	}
	if len(rates) == 0 {
		rates = []float64{0.001, 0.01}
	}
	out := make([]Row, 0, len(opts.workloads()))
	for _, w := range opts.workloads() {
		r := Row{Workload: w, Values: map[string]float64{}}
		for _, s := range schemes {
			for _, rate := range rates {
				cfg := opts.config(w, s)
				cfg.FaultRate = rate
				res, err := Run(cfg)
				if err != nil {
					return nil, fmt.Errorf("reliability %s/%s@%g: %w", w, s, rate, err)
				}
				v := 0.0
				if res.Faults != nil && res.Stats.DataWrites > 0 {
					v = 1000 * float64(res.Faults.Retries) / float64(res.Stats.DataWrites)
				}
				r.Values[fmt.Sprintf("%s@%g", s, rate)] = v
			}
		}
		out = append(out, r)
	}
	return out, nil
}

// LifetimeCell is one (gap-move period, spare-pool size) combination's
// outcome in a LifetimeSweep, averaged across the study's workloads.
type LifetimeCell struct {
	GapPeriod int `json:"gap_period"`
	SpareRows int `json:"spare_rows"`
	// RelativeLifetime is the modeled device lifetime relative to the
	// unleveled, spare-less baseline (see relativeLifetime).
	RelativeLifetime float64 `json:"relative_lifetime"`
	// IPCRatio is measured performance relative to the baseline run:
	// the cost side of the lifetime trade.
	IPCRatio float64 `json:"ipc_ratio"`
	// GapMoves and SpareRemaps total the decoder activity across the
	// cell's workload runs.
	GapMoves    uint64 `json:"gap_moves"`
	SpareRemaps uint64 `json:"spare_remaps"`
}

// LifetimeStudy is the lifetime-vs-overhead sweep over the programmable
// decoder's two sizing knobs: how often the start gap moves and how many
// spare rows each bank holds.
type LifetimeStudy struct {
	Scheme     string
	Workloads  []string
	GapPeriods []int
	SpareRows  []int
	// Cells are ordered gap-period-major, spare-pool-minor.
	Cells []LifetimeCell
	// Remap merges the decoder accounting of every leveled run in the
	// sweep.
	Remap remap.Stats
}

// relativeLifetime is the study's first-order endurance model over
// measured quantities. The simulator's vertical wear leveling is
// timing-only — store writes stay keyed by logical line — so leveling
// cannot be read off MaxRowWrites directly; instead the hottest row is
// interpolated toward the mean by the fraction of completed start-gap
// rotations:
//
//	rotations = gapMoves / (segments + 1)   // full map rotations
//	leveled   = rotations / (rotations + 1) // asymptotically → 1
//	effMax    = avgRow + (maxRow − avgRow)·(1 − leveled)
//
// Gap moves add maintenance write traffic (one segment copy per move,
// charged as one maintenance write here), and the spare pool adds raw
// row capacity the device fails over to, so the reported ratio is
//
//	(baseMax / effMax) / overhead · (1 + spares·banks/touchedRows)
func relativeLifetime(base, res *Result, cfg *Config, spares int) float64 {
	touched := float64(res.TouchedRows)
	total := float64(res.TotalStoreWrites)
	if touched == 0 || total == 0 {
		return 1
	}
	geom := cfg.Geom
	if geom == (reram.Geometry{}) {
		geom = reram.DefaultGeometry()
	}
	segRows := cfg.VWLSegmentRows
	if segRows == 0 {
		segRows = 256
	}
	segments := float64(geom.Rows()/uint64(segRows)) + 1
	gapMoves := 0.0
	if res.Remap != nil {
		gapMoves = float64(res.Remap.GapMoves)
	}
	rotations := gapMoves / (segments + 1)
	leveled := rotations / (rotations + 1)
	avgRow := total / touched
	effMax := avgRow + (float64(res.MaxRowWrites)-avgRow)*(1-leveled)
	if effMax <= 0 {
		return 1
	}
	overhead := (total + gapMoves) / total
	spareFactor := 1 + float64(spares)*float64(geom.Banks())/touched
	return float64(base.MaxRowWrites) / effMax / overhead * spareFactor
}

// LifetimeSweep runs the lifetime study the decoder refactor enables:
// every workload runs once without leveling (the endurance baseline)
// and once per (gap period, spare pool) combination with segment VWL,
// spare remapping and proactive wear-limit retirement enabled — the
// limit auto-scaled to half the workload's observed hottest-row count so
// short runs still exercise the retirement path. Reported per cell:
// modeled relative lifetime and measured IPC ratio (the trade the paper
// prices at ~3% write overhead), averaged across workloads. Nil period
// and spare lists select the defaults.
func LifetimeSweep(opts Options, scheme string, periods, spares []int) (*LifetimeStudy, error) {
	if len(periods) == 0 {
		periods = []int{64, 128, 256}
	}
	if len(spares) == 0 {
		spares = []int{0, 16, 32}
	}
	study := &LifetimeStudy{
		Scheme:     scheme,
		Workloads:  opts.workloads(),
		GapPeriods: periods,
		SpareRows:  spares,
	}
	bases := make(map[string]*Result, len(study.Workloads))
	for _, w := range study.Workloads {
		res, err := Run(opts.config(w, scheme))
		if err != nil {
			return nil, fmt.Errorf("lifetime baseline %s/%s: %w", w, scheme, err)
		}
		bases[w] = res
	}
	for _, p := range periods {
		for _, sp := range spares {
			cell := LifetimeCell{GapPeriod: p, SpareRows: sp}
			for _, w := range study.Workloads {
				base := bases[w]
				cfg := opts.config(w, scheme)
				cfg.WearLeveling = true
				cfg.VWLPeriod = p
				cfg.SpareRows = sp
				if sp == 0 {
					cfg.SpareRows = -1 // explicit "no spares", not the default pool
				}
				cfg.ProactiveWearLimit = base.MaxRowWrites/2 + 1
				res, err := Run(cfg)
				if err != nil {
					return nil, fmt.Errorf("lifetime %s gap=%d spares=%d: %w", w, p, sp, err)
				}
				var st remap.Stats
				if res.Remap != nil {
					st = *res.Remap
				}
				study.Remap.Merge(st)
				cell.GapMoves += st.GapMoves
				cell.SpareRemaps += st.SpareRemaps
				cell.RelativeLifetime += relativeLifetime(base, res, &cfg, sp)
				if base.AvgIPC() > 0 {
					cell.IPCRatio += res.AvgIPC() / base.AvgIPC()
				}
			}
			n := float64(len(study.Workloads))
			cell.RelativeLifetime /= n
			cell.IPCRatio /= n
			study.Cells = append(study.Cells, cell)
		}
	}
	return study, nil
}

// Series lists the sweep's printable column keys in cell order:
// "spares=N life" then "spares=N ipc" for each spare-pool size.
func (s *LifetimeStudy) Series() []string {
	out := make([]string, 0, 2*len(s.SpareRows))
	for _, sp := range s.SpareRows {
		out = append(out, fmt.Sprintf("spares=%d life", sp))
	}
	for _, sp := range s.SpareRows {
		out = append(out, fmt.Sprintf("spares=%d ipc", sp))
	}
	return out
}

// Rows renders the study for the experiment text printer: one row per
// gap period, columns per Series.
func (s *LifetimeStudy) Rows() []Row {
	byKey := make(map[[2]int]LifetimeCell, len(s.Cells))
	for _, c := range s.Cells {
		byKey[[2]int{c.GapPeriod, c.SpareRows}] = c
	}
	out := make([]Row, 0, len(s.GapPeriods))
	for _, p := range s.GapPeriods {
		r := Row{Workload: fmt.Sprintf("gap=%d", p), Values: make(map[string]float64)}
		for _, sp := range s.SpareRows {
			c := byKey[[2]int{p, sp}]
			r.Values[fmt.Sprintf("spares=%d life", sp)] = c.RelativeLifetime
			r.Values[fmt.Sprintf("spares=%d ipc", sp)] = c.IPCRatio
		}
		out = append(out, r)
	}
	return out
}

// WearLevelingImpact runs Section 6.4's performance check: the IPC cost
// of enabling segment-based VWL under a LADDER scheme.
func WearLevelingImpact(opts Options, scheme string) ([]Row, error) {
	out := make([]Row, 0, len(opts.workloads()))
	for _, w := range opts.workloads() {
		plain, err := Run(opts.config(w, scheme))
		if err != nil {
			return nil, err
		}
		cfg := opts.config(w, scheme)
		cfg.WearLeveling = true
		wl, err := Run(cfg)
		if err != nil {
			return nil, err
		}
		ratio := 0.0
		if plain.AvgIPC() > 0 {
			ratio = wl.AvgIPC() / plain.AvgIPC()
		}
		out = append(out, Row{Workload: w, Values: map[string]float64{
			"ipc-ratio": ratio,
			"gap-moves": float64(wl.GapMoves),
		}})
	}
	return out, nil
}
