package sim

import (
	"context"
	"fmt"
	"runtime/debug"
)

// PanicError is a panic caught in a grid worker, converted into that
// cell's error: the panic value plus the goroutine stack captured at
// recovery. Before this isolation existed, one buggy scheme took down
// the whole process — every other cell's work and, in service mode,
// every other client's jobs. Callers that need to distinguish a panic
// from an ordinary failure (the service counts them separately) unwrap
// with errors.As.
type PanicError struct {
	// Value is what the panic was raised with.
	Value any
	// Stack is the panicking goroutine's stack at recovery
	// (runtime/debug.Stack form).
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("panic: %v\n%s", e.Value, e.Stack)
}

// runCell executes one grid cell under the grid's context with panic
// isolation: a panicking scheme or workload becomes this cell's error —
// stack attached — instead of crashing the process, so sibling cells
// and the caller survive one bad policy.
func runCell(ctx context.Context, cfg Config) (res *Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			res, err = nil, &PanicError{Value: r, Stack: debug.Stack()}
		}
	}()
	return RunCtx(ctx, cfg)
}
