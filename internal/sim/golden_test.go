package sim

import (
	"fmt"
	"strconv"
	"testing"
)

// goldenRuns pins the event-driven engine to the exact results of the
// original cycle-by-cycle tick loop: Ticks, per-core IPC (full float64
// precision) and every deterministic Stats counter, for fixed seeds.
// The values were captured from the pre-engine implementation; any
// divergence means a skipped cycle was not actually dead, which is a
// correctness bug in an actor's NextEventAt/Advance contract, not a
// tolerable drift.
var goldenRuns = []struct {
	workload, scheme string
	want             string
}{
	{"lbm", SchemeHybrid,
		"ticks=175675 ipc=0.49525381758151055 dr=378 dw=316 smb=0 mr=15 mw=0 sp=0 hit=286 miss=15 " +
			"wsvc=165397.25 rlat=61212 rt=378 cds=45329 cdn=316 flips=53 canc=29 units=2528 bits=56831"},
	{"mcf", SchemeEst,
		"ticks=116283 ipc=0.6662743051314226 dr=807 dw=275 smb=0 mr=70 mw=0 sp=0 hit=165 miss=70 " +
			"wsvc=140491 rlat=72773.5 rt=807 cds=-17696 cdn=275 flips=0 canc=0 units=2200 bits=20376"},
	{"astar", SchemeBaseline,
		"ticks=89126 ipc=0.9694462845971142 dr=189 dw=78 smb=0 mr=0 mw=0 sp=0 hit=0 miss=0 " +
			"wsvc=52786.5 rlat=11698 rt=189 cds=0 cdn=0 flips=0 canc=0 units=624 bits=5413"},
	{"mix-1", SchemeBasic,
		"ticks=340391 ipc=0.2504549932377152 ipc=0.2289438438908243 ipc=0.18492435053027056 ipc=0.23139131742646576 " +
			"dr=1601 dw=811 smb=811 mr=210 mw=0 sp=0 hit=607 miss=210 " +
			"wsvc=404610 rlat=778238.25 rt=1601 cds=0 cdn=811 flips=40 canc=31 units=6488 bits=101721"},
}

// goldenKey serializes the deterministic portion of a Result. Floats use
// strconv's shortest round-trippable form, so equality is bit-for-bit.
func goldenKey(r *Result) string {
	s := fmt.Sprintf("ticks=%d", r.Ticks)
	for _, ipc := range r.PerCoreIPC {
		s += " ipc=" + strconv.FormatFloat(ipc, 'g', -1, 64)
	}
	st := r.Stats
	s += fmt.Sprintf(" dr=%d dw=%d smb=%d mr=%d mw=%d sp=%d hit=%d miss=%d",
		st.DataReads, st.DataWrites, st.SMBReads, st.MetaReads, st.MetaWrites,
		st.SpillParks, st.MetaCacheHits, st.MetaCacheMisses)
	s += " wsvc=" + strconv.FormatFloat(st.WriteServiceNs, 'g', -1, 64)
	s += " rlat=" + strconv.FormatFloat(st.ReadLatencyNs, 'g', -1, 64)
	s += fmt.Sprintf(" rt=%d", st.ReadsTimed)
	s += " cds=" + strconv.FormatFloat(st.CounterDiffSum, 'g', -1, 64)
	s += fmt.Sprintf(" cdn=%d flips=%d canc=%d units=%d bits=%d",
		st.CounterDiffN, st.FNWFlips, st.FNWCanceled, st.FNWUnits, st.BitChanges)
	return s
}

// TestGoldenDeterminism is the engine refactor's equivalence proof in
// test form: for each pinned (workload, scheme) pair, the event-driven
// run reproduces the classic tick loop's results exactly.
func TestGoldenDeterminism(t *testing.T) {
	for _, g := range goldenRuns {
		g := g
		t.Run(g.workload+"/"+g.scheme, func(t *testing.T) {
			t.Parallel()
			res, err := Run(testConfig(t, g.workload, g.scheme))
			if err != nil {
				t.Fatal(err)
			}
			if got := goldenKey(res); got != g.want {
				t.Errorf("run diverged from the pinned tick-loop result\n got: %s\nwant: %s", got, g.want)
			}
		})
	}
}

// goldenVWLRuns extends the golden pins to wear-leveling-enabled
// configurations: the decoder refactor moved the start-gap shift behind
// remap.Decoder.Resolve, and these strings — captured from the
// pre-decoder implementation — prove the translation is bit-for-bit
// unchanged, gap-move accounting included.
var goldenVWLRuns = []struct {
	workload, scheme string
	vwlPeriod        int
	want             string
}{
	{"lbm", SchemeHybrid, 0, // default period
		"ticks=185129 ipc=0.3939153213364234 dr=378 dw=316 smb=0 mr=15 mw=0 sp=0 hit=278 miss=15 " +
			"wsvc=175117.5 rlat=92975.5 rt=378 cds=45329 cdn=316 flips=53 canc=29 units=2528 bits=56831 gap=2"},
	{"mcf", SchemeEst, 64,
		"ticks=123179 ipc=0.6461965945439467 dr=807 dw=275 smb=0 mr=70 mw=0 sp=0 hit=153 miss=70 " +
			"wsvc=143939.25 rlat=75691.25 rt=807 cds=-17696 cdn=275 flips=0 canc=0 units=2200 bits=20376 gap=4"},
}

// TestGoldenVWLDeterminism pins a wear-leveling-enabled run bit-for-bit:
// the programmable decoder must reproduce the exact gap arithmetic,
// maintenance traffic and timing the sim-owned StartGap produced.
func TestGoldenVWLDeterminism(t *testing.T) {
	for _, g := range goldenVWLRuns {
		g := g
		t.Run(fmt.Sprintf("%s/%s/period%d", g.workload, g.scheme, g.vwlPeriod), func(t *testing.T) {
			t.Parallel()
			cfg := testConfig(t, g.workload, g.scheme)
			cfg.WearLeveling = true
			cfg.VWLPeriod = g.vwlPeriod
			res, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if got := goldenKey(res) + fmt.Sprintf(" gap=%d", res.GapMoves); got != g.want {
				t.Errorf("VWL run diverged from the pre-decoder pinned result\n got: %s\nwant: %s", got, g.want)
			}
		})
	}
}

// TestGoldenRepeatable re-runs one golden configuration twice in-process
// and demands identical results — the determinism half of the claim
// (the engine's event ordering must not depend on map iteration, timer
// noise, or any other per-run accident).
func TestGoldenRepeatable(t *testing.T) {
	a, err := Run(testConfig(t, "mcf", SchemeEst))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(testConfig(t, "mcf", SchemeEst))
	if err != nil {
		t.Fatal(err)
	}
	if ka, kb := goldenKey(a), goldenKey(b); ka != kb {
		t.Errorf("identical configs diverged:\nfirst:  %s\nsecond: %s", ka, kb)
	}
}
