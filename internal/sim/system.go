package sim

import (
	"fmt"
	mathbits "math/bits"
	"os"
	"time"

	"ladder/internal/bits"
	"ladder/internal/core"
	"ladder/internal/cpu"
	"ladder/internal/energy"
	"ladder/internal/engine"
	"ladder/internal/fault"
	"ladder/internal/memctrl"
	"ladder/internal/metrics"
	"ladder/internal/remap"
	"ladder/internal/reram"
	"ladder/internal/timeline"
	"ladder/internal/timing"
	"ladder/internal/trace"
	"ladder/internal/tracing"
)

// drainCap bounds a controller drain: a system that cannot quiesce
// within 50M simulated cycles (12.5 ms at 4 GHz, orders of magnitude
// beyond any legitimate backlog) is wedged, and Run reports it as an
// error instead of returning silently-truncated results.
const drainCap = 50_000_000

// System is one assembled simulation: the construction products of the
// build phase plus the event engine that executes it. Run drives it
// through its phases — build, warm, execute, drain, collect — each an
// ordinary method so variants (warmup-only runs, checkpoint/resume
// experiments) can compose them differently.
type System struct {
	cfg     Config
	tables  *timing.TableSet
	store   *reram.Store
	stats   *core.Stats
	reg     *metrics.Registry
	env     *core.Env
	meter   *energy.Meter
	cores   []*cpu.Core
	finish  []uint64
	ctrls   []*memctrl.Controller
	schemes []core.Scheme
	// dec is the shared programmable address decoder (package remap):
	// the one logical→physical indirection point — start-gap rotation,
	// spare-row substitution, proactive retirement. Nil when neither
	// wear leveling nor fault handling needs indirection.
	dec       *remap.Decoder
	lineRemap func(uint64) uint64
	expected  map[uint64]bits.Line
	started   time.Time
	tr        *tracing.Collector
	// inj is the shared write-fault injector, nil unless FaultRate > 0.
	// One instance serves every channel: the run is single-goroutine and
	// actor order is deterministic, so the PRNG stream replays exactly.
	inj *fault.Injector

	eng      *engine.Engine
	clock    *engine.Clock
	coreActs []*coreActor
	// sampler is the timeline epoch sampler, nil unless TimelineInterval
	// > 0. Driven by the engine's observer hook; strictly read-only
	// against simulation state.
	sampler *timeline.Sampler

	running      int
	crashPending bool
	preCrash     *core.Stats
	// err carries a failure raised inside an actor (actors cannot return
	// errors through the engine) out to the execute phase.
	err error
}

// newSystem is the build phase: it constructs every component — store,
// stats, metrics registry, energy meter, cores, per-channel controllers
// with their private scheme instances, optional wear leveling — and the
// event engine that will drive them, without simulating a single cycle.
func newSystem(cfg Config) (*System, error) {
	if err := cfg.applyDefaults(); err != nil {
		return nil, err
	}
	s := &System{cfg: cfg, started: time.Now()}

	var profiles []trace.Profile
	if cfg.TraceFile != "" {
		profiles = make([]trace.Profile, 1)
	} else {
		var err error
		profiles, err = trace.MixProfiles(cfg.Workload)
		if err != nil {
			return nil, err
		}
	}
	s.tables = cfg.Tables
	if cfg.ShrinkRange > 1 {
		s.tables = shrunk(s.tables, cfg.ShrinkRange)
	}
	var err error
	s.store, err = reram.NewStore(cfg.Geom)
	if err != nil {
		return nil, err
	}
	// Per-bitline LRS profiling feeds only the BLP baseline's readout;
	// every other scheme skips that per-changed-bit bookkeeping.
	s.store.SetColumnTracking(cfg.Scheme == SchemeBLP)
	s.stats = &core.Stats{}
	// Each run owns a private registry; RunGrid merges them afterward, so
	// the observe paths stay lock-free (a run is single-goroutine).
	s.reg = metrics.NewRegistry()
	s.env = &core.Env{Geom: cfg.Geom, Store: s.store, Tables: s.tables, Stats: s.stats, Metrics: s.reg}
	s.meter, err = energy.NewMeter(cfg.Energy)
	if err != nil {
		return nil, err
	}
	if cfg.TraceSample > 0 {
		s.tr = tracing.NewCollector(tracing.Config{
			SampleEvery: cfg.TraceSample,
			Capacity:    cfg.TraceCapacity,
			SlowestK:    cfg.TraceSlowest,
		})
	}
	if cfg.FaultRate > 0 {
		seed := cfg.FaultSeed
		if seed == 0 {
			seed = cfg.Seed
		}
		s.inj, err = fault.NewInjector(fault.Config{
			Rate:     cfg.FaultRate,
			Seed:     seed,
			RetryMax: sentinelCount(cfg.RetryMax),
		})
		if err != nil {
			return nil, err
		}
	}

	if err := s.buildCores(profiles); err != nil {
		return nil, err
	}
	// The decoder is built before the controllers so Instrument sees it
	// (like SetFaults, the hook must land before instruments are created).
	if err := s.buildDecoder(); err != nil {
		return nil, err
	}
	if err := s.buildControllers(); err != nil {
		return nil, err
	}
	if cfg.Verify {
		s.expected = make(map[uint64]bits.Line)
	}
	s.buildEngine()
	return s, nil
}

// buildCores creates one core per profile in disjoint address regions
// (or a single core replaying a recorded trace).
func (s *System) buildCores(profiles []trace.Profile) error {
	cfg := s.cfg
	if cfg.TraceFile != "" {
		rep, err := trace.LoadFile(cfg.TraceFile)
		if err != nil {
			return err
		}
		if rep.MaxLine() >= cfg.Geom.Lines() {
			return fmt.Errorf("sim: trace address %d exceeds the configured memory (%d lines)", rep.MaxLine(), cfg.Geom.Lines())
		}
		c, err := cpu.NewCore(0, rep, cfg.MLP)
		if err != nil {
			return err
		}
		s.cores = []*cpu.Core{c}
		s.finish = make([]uint64, 1)
		return nil
	}
	s.cores = make([]*cpu.Core, len(profiles))
	s.finish = make([]uint64, len(profiles))
	regionPages := cfg.Geom.Lines() / reram.BlocksPerRow / uint64(len(profiles)+1)
	for i, p := range profiles {
		// Clamp the footprint to the core's region so every generated
		// address decodes (small test geometries compress footprints).
		if uint64(p.WorkingSetPages) > regionPages {
			p.WorkingSetPages = int(regionPages)
		}
		gen, err := trace.NewGenerator(p, cfg.Seed+int64(i)*7919+1, uint64(i)*regionPages)
		if err != nil {
			return err
		}
		s.cores[i], err = cpu.NewCore(i, gen, cfg.MLP)
		if err != nil {
			return err
		}
	}
	return nil
}

// buildControllers creates one controller per channel, each resolving its
// private scheme instance through the core registry.
func (s *System) buildControllers() error {
	cfg := s.cfg
	onReadDone := func(r *memctrl.ReadReq, _ uint64) {
		if r.Core >= 0 && r.Core < len(s.cores) {
			s.cores[r.Core].ReadDone()
		}
	}
	s.ctrls = make([]*memctrl.Controller, cfg.Geom.Channels)
	s.schemes = make([]core.Scheme, cfg.Geom.Channels)
	for ch := range s.ctrls {
		scheme, err := core.NewScheme(cfg.Scheme, s.env, cfg.MetaCache)
		if err != nil {
			return err
		}
		if h, ok := scheme.(*core.Hybrid); ok && cfg.HybridLowRows != 0 {
			n := cfg.HybridLowRows
			if n < 0 {
				n = 0
			}
			h.SetLowPrecisionRows(n)
		}
		s.schemes[ch] = scheme
		s.ctrls[ch], err = memctrl.NewController(cfg.Ctrl, s.env, scheme, s.meter, onReadDone)
		if err != nil {
			return err
		}
		s.ctrls[ch].SetFaults(s.inj)
		s.ctrls[ch].SetDecoder(s.dec)
		s.ctrls[ch].Instrument(s.reg, ch)
		if s.tr != nil {
			s.ctrls[ch].Trace(s.tr, ch)
		}
	}
	return nil
}

// sentinelCount maps sim's zero-means-default convention for count
// knobs (RetryMax, SpareRows) onto the fault/remap sentinel form:
// 0 → UseDefault, negative → explicit zero (off), positive → as given.
func sentinelCount(v int) int {
	switch {
	case v == 0:
		return fault.UseDefault
	case v < 0:
		return 0
	}
	return v
}

// sentinelNs does the same for the nanosecond penalty knob.
func sentinelNs(v float64) float64 {
	switch {
	case v == 0:
		return remap.UseDefault
	case v < 0:
		return 0
	}
	return v
}

// buildDecoder configures the programmable address decoder: vertical
// wear leveling (segment mode), the spare-row pool backing fault
// remapping, and proactive wear-limit retirement all live behind it.
// Line-mode VWL stays a plain address bijection applied before decode.
func (s *System) buildDecoder() error {
	cfg := s.cfg
	needGap := false
	if cfg.WearLeveling {
		switch cfg.VWLMode {
		case "", "segment":
			// Segment-based Start-Gap: whole wordline groups move together,
			// preserving the page→metadata-line association (Figure 18b).
			// The decoder shifts crossbar rows; gap moves charge
			// maintenance writes.
			needGap = true
		case "line":
			if err := s.buildLineVWL(); err != nil {
				return err
			}
		default:
			return fmt.Errorf("sim: unknown VWLMode %q", cfg.VWLMode)
		}
	}
	needSpares := cfg.FaultRate > 0 || cfg.ProactiveWearLimit > 0
	if !needGap && !needSpares {
		return nil
	}
	rc := remap.Config{
		Geom:               cfg.Geom,
		TicksPerNs:         memctrl.TicksPerNs,
		SpareRows:          sentinelCount(cfg.SpareRows),
		PenaltyNs:          sentinelNs(cfg.RemapPenaltyNs),
		ProactiveWearLimit: cfg.ProactiveWearLimit,
	}
	if needGap {
		rc.GapSegmentRows = cfg.VWLSegmentRows
		rc.GapPeriod = cfg.VWLPeriod
	}
	dec, err := remap.NewDecoder(rc)
	if err != nil {
		return err
	}
	s.dec = dec
	return nil
}

// buildLineVWL configures line-granularity wear leveling (Security-
// Refresh style): the steady-state address scatter distributes a page's
// blocks over different wordline groups — the case Section 6.4 warns
// deteriorates LRS-metadata locality. Modeled as a static XOR bijection
// over line addresses (epoch migrations not charged; the performance
// claim concerns the scatter). It stays outside the decoder because it
// rewrites line addresses before decode, not decoded row locations.
func (s *System) buildLineVWL() error {
	lines := s.cfg.Geom.Lines()
	if lines&(lines-1) != 0 {
		return fmt.Errorf("sim: line-mode VWL requires a power-of-two line count")
	}
	// Rotate the slot bits to the top of the address: the 64 blocks of
	// one page land in 64 different wordline groups (a bijection, so
	// reads still find their data).
	width := uint(mathbits.TrailingZeros64(lines))
	s.lineRemap = func(line uint64) uint64 {
		return (line>>6 | (line&63)<<(width-6)) & (lines - 1)
	}
	return nil
}

// buildEngine assembles the event engine. Actor registration order is
// the per-cycle evaluation order and is load-bearing for cycle-identical
// results: the crash monitor first (a power failure preempts the cycle),
// then cores in index order, then controllers in channel order — cores
// before controllers so an enqueue is visible to its channel within the
// same cycle, exactly as in the classic tick loop.
func (s *System) buildEngine() {
	s.eng = engine.New()
	s.clock = s.eng.Clock()
	s.running = len(s.cores)
	if s.cfg.CrashAtInstr > 0 {
		s.crashPending = true
		s.eng.Add(&crashActor{sys: s})
	}
	s.coreActs = make([]*coreActor, len(s.cores))
	for i := range s.cores {
		s.coreActs[i] = &coreActor{sys: s, i: i}
		s.eng.Add(s.coreActs[i])
	}
	for _, c := range s.ctrls {
		s.eng.Add(&ctrlActor{sys: s, c: c})
	}
	if p := s.progressHook(); p != nil {
		every := s.cfg.ProgressEvery
		if every == 0 {
			every = 5_000_000
		}
		s.eng.SetProgress(every, p)
	}
	if s.cfg.TimelineInterval > 0 {
		s.sampler = timeline.NewSampler(timeline.Config{
			Interval: s.cfg.TimelineInterval,
			Capacity: s.cfg.TimelineCapacity,
			Registry: s.reg,
			Probe:    s.timelineScalars,
			OnEpoch:  s.cfg.TimelineOnEpoch,
		})
		s.eng.SetObserver(s.cfg.TimelineInterval, s.sampler.Sample)
	}
}

// timelineScalars is the sampler's probe: the run's live cumulative
// headline quantities at an epoch boundary. Cores catch up their skipped
// cycles first (idempotent, same as crashActor.total) so the retirement
// count matches what the classic loop would have seen at the top of this
// cycle; everything else is plain accounting reads.
func (s *System) timelineScalars() timeline.Scalars {
	now := s.clock.Now()
	sc := timeline.Scalars{
		StoreWrites: s.store.TotalWrites(),
		ReadNJ:      s.meter.ReadNJ,
		WriteNJ:     s.meter.WriteNJ,
		ReadQueue:   make([]int, len(s.ctrls)),
		WriteQueue:  make([]int, len(s.ctrls)),
	}
	for i, c := range s.cores {
		s.coreActs[i].catchUp(now)
		sc.Instructions += c.Retired()
	}
	for ch, c := range s.ctrls {
		sc.ReadQueue[ch] = c.ReadQueueLen()
		sc.WriteQueue[ch] = c.WriteQueueLen()
	}
	if s.inj != nil {
		sc.Retries = s.inj.Stats().Retries
	}
	if s.dec != nil {
		st := s.dec.Stats()
		sc.GapMoves = st.GapMoves
		sc.SpareRemaps = st.SpareRemaps
	}
	return sc
}

// progressHook resolves the periodic-progress callback: an explicit
// Config.Progress wins; otherwise LADDER_DEBUG installs the stderr-free
// diagnostic printer the environment variable has always meant.
func (s *System) progressHook() func(uint64) {
	emit := s.cfg.Progress
	if emit == nil {
		if os.Getenv("LADDER_DEBUG") == "" {
			return nil
		}
		emit = printProgress
	}
	return func(now uint64) {
		info := ProgressInfo{Cycle: now, Cores: make([]CoreProgress, len(s.cores)), Channels: make([]ChannelProgress, len(s.ctrls))}
		var retired uint64
		for i, c := range s.cores {
			info.Cores[i] = CoreProgress{Retired: c.Retired(), Outstanding: c.Outstanding()}
			retired += c.Retired()
		}
		for ch, c := range s.ctrls {
			info.Channels[ch] = ChannelProgress{ReadQueue: c.ReadQueueLen(), WriteQueue: c.WriteQueueLen(), WriteMode: c.InWriteMode()}
		}
		info.Wall = time.Since(s.started)
		if sec := info.Wall.Seconds(); sec > 0 {
			info.InstrRate = float64(retired) / sec
		}
		if s.cfg.ProgressDetail {
			snap := s.reg.Snapshot()
			info.Metrics = &snap
			info.Spans = s.tr.Recent(progressSpanCount)
		}
		emit(info)
	}
}

// progressSpanCount bounds the recent-span slice a detailed progress
// snapshot carries (the introspection server's /spans document).
const progressSpanCount = 64

// printProgress is the LADDER_DEBUG default progress sink.
func printProgress(p ProgressInfo) {
	fmt.Printf("tick %d:", p.Cycle)
	for i, c := range p.Cores {
		fmt.Printf(" core%d ret=%d out=%d", i, c.Retired, c.Outstanding)
	}
	for ch, c := range p.Channels {
		fmt.Printf(" | ch%d rdq=%d wrq=%d wm=%v", ch, c.ReadQueue, c.WriteQueue, c.WriteMode)
	}
	fmt.Printf(" | wall=%.1fs %.0f instr/s\n", p.Wall.Seconds(), p.InstrRate)
}

// warm is the warm phase: it prefills resident data into the store so
// touched wordline groups carry realistic ones-density before the first
// write arrives.
func (s *System) warm() error {
	cfg := s.cfg
	if cfg.ResidentLevel <= 0 {
		return nil
	}
	s.store.SetResident(cfg.ResidentLevel, uint64(cfg.Seed)+0x5eed)
	// Under a shifting scheme, data resident from before the simulation
	// window was stored through the same datapath.
	switch cfg.Scheme {
	case SchemeEst, SchemeHybrid:
		s.store.SetResidentTransform(func(slot int, l bits.Line) bits.Line {
			return bits.Shifted(l, slot)
		})
	}
	return nil
}

// issue hands one access from a core to its channel's controller,
// reporting whether it was accepted. It is the cores' IssueFunc.
func (s *System) issue(coreID int, a trace.Access) bool {
	now := s.clock.Now()
	if s.lineRemap != nil {
		a.Line = s.lineRemap(a.Line)
	}
	loc, err := s.cfg.Geom.Decode(a.Line)
	if err != nil {
		// Footprints are clamped to the memory, so this cannot happen;
		// dropping silently would leak the core's MLP slots.
		panic(fmt.Sprintf("sim: trace address %d outside memory: %v", a.Line, err))
	}
	c := s.ctrls[loc.Channel]
	if a.Write {
		if !c.EnqueueWrite(a.Line, a.Data, now) {
			return false
		}
		if s.dec.RecordWrite() {
			c.EnqueueMaintenance(loc, now)
		}
		if s.expected != nil {
			s.expected[a.Line] = a.Data
		}
		return true
	}
	return c.EnqueueRead(coreID, a.Line, now)
}

// interruptCheckEvery is how many engine steps (execute) or drain
// iterations pass between Config.Interrupt polls. Steps are
// microsecond-scale, so a canceled run stops within milliseconds while
// the per-step overhead stays one counter increment.
const interruptCheckEvery = 1024

// execute is the execute phase: the engine steps from event to event
// until every core exhausts its instruction budget. Cycles in which no
// component can act are skipped wholesale — the wall-clock win of the
// event-driven engine — while processed cycles replay the classic loop's
// exact evaluation order.
func (s *System) execute() error {
	sinceCheck := 0
	for s.running > 0 {
		if !s.eng.Step() {
			return fmt.Errorf("sim: simulation deadlock: %d cores blocked with no pending events", s.running)
		}
		if s.err != nil {
			return s.err
		}
		if s.cfg.Interrupt != nil {
			if sinceCheck++; sinceCheck >= interruptCheckEvery {
				sinceCheck = 0
				if err := s.cfg.Interrupt(); err != nil {
					return fmt.Errorf("sim: run interrupted: %w", err)
				}
			}
		}
	}
	return nil
}

// drainRemaining is the drain phase: after the last core retires its
// final instruction, outstanding queue entries and in-flight pulses are
// allowed to finish.
func (s *System) drainRemaining() error {
	// The main loop ends inside the cycle the last core finished; draining
	// starts on the next one, as the classic loop's now++ did.
	s.clock.AdvanceTo(s.clock.Now() + 1)
	return s.drain()
}

// drain runs controller-only cycles starting at the current clock until
// every channel is idle, jumping over provably dead cycles. Cores are
// frozen throughout (a drain models the cores having stopped — end of
// run, or a power failure cutting them off). On return the clock rests
// one past the first idle cycle, matching the classic loop. A system
// still busy after drainCap simulated cycles is wedged, and that is an
// error — truncated results must not masquerade as converged ones.
func (s *System) drain() error {
	start := s.clock.Now()
	now := start
	sinceCheck := 0
	for {
		if now-start >= drainCap {
			return fmt.Errorf("sim: controllers failed to drain within %d cycles (read/write queues wedged)", drainCap)
		}
		if s.cfg.Interrupt != nil {
			if sinceCheck++; sinceCheck >= interruptCheckEvery {
				sinceCheck = 0
				if err := s.cfg.Interrupt(); err != nil {
					return fmt.Errorf("sim: drain interrupted: %w", err)
				}
			}
		}
		idle := true
		active := false
		for _, c := range s.ctrls {
			if c.Tick(now) {
				active = true
			}
			if err := c.Err(); err != nil {
				return err
			}
			if !c.Idle() {
				idle = false
			}
		}
		prev := now
		now++
		if idle {
			s.clock.AdvanceTo(now)
			return nil
		}
		if !active {
			// Nothing completed or dispatched: the next state change is the
			// earliest in-flight completion; everything before it is dead.
			next := engine.Horizon
			for _, c := range s.ctrls {
				if n := c.NextEventAt(prev); n < next {
					next = n
				}
			}
			if next > now && next != engine.Horizon {
				now = next
			}
		}
		s.clock.AdvanceTo(now)
	}
}

// collect is the collect phase: read-back verification and assembly of
// the run's Result from the components' accounting.
func (s *System) collect() (*Result, error) {
	if s.expected != nil {
		for line, want := range s.expected {
			loc, err := s.cfg.Geom.Decode(line)
			if err != nil {
				continue
			}
			got, err := s.ctrls[loc.Channel].ReadLineLogical(line)
			if err != nil {
				return nil, fmt.Errorf("sim: verify read %d: %w", line, err)
			}
			if got != want {
				return nil, fmt.Errorf("sim: verify failed at line %d: stored data does not decode to the written content", line)
			}
		}
	}
	res := &Result{
		Workload:         s.cfg.Workload,
		Scheme:           s.cfg.Scheme,
		PerCoreIPC:       make([]float64, len(s.cores)),
		Ticks:            s.clock.Now(),
		Stats:            *s.stats,
		ReadNJ:           s.meter.ReadNJ,
		WriteNJ:          s.meter.WriteNJ,
		TotalStoreWrites: s.store.TotalWrites(),
		MaxRowWrites:     s.store.MaxRowWrites(),
		TouchedRows:      s.store.TouchedRows(),
	}
	if s.dec != nil {
		st := s.dec.Stats()
		res.Remap = &st
		res.GapMoves = st.GapMoves
	}
	if s.inj != nil {
		st := s.inj.Stats()
		res.Faults = &st
	}
	if s.preCrash != nil {
		res.PreCrashStats = s.preCrash
		res.PostCrashStats = subtractStats(s.stats, s.preCrash)
	}
	for i := range s.cores {
		res.PerCoreIPC[i] = float64(s.cfg.InstrPerCore) / float64(s.finish[i])
		res.InstructionsRetired += s.cores[i].Retired()
	}
	res.WallClock = time.Since(s.started)
	res.Metrics = s.reg
	res.Trace = s.tr
	// Close the trailing partial epoch (drain-phase activity included)
	// BEFORE exportRunMetrics: the export overwrites registry counters
	// with end-of-run absolutes, which must never appear as epoch deltas.
	s.sampler.Finalize(s.clock.Now())
	res.Timeline = s.sampler.Timeline()
	exportRunMetrics(s.reg, res, s.cfg.Geom, s.store, s.schemes)
	return res, nil
}

// coreActor drives one core through the engine. It lazily applies the
// cycles the engine skipped (Skip: bulk gap retirement or stall
// accounting — both provably identical to ticking each cycle, because
// the engine only skips cycles in which no controller changed state)
// and then ticks the core at the processed cycle.
type coreActor struct {
	sys *System
	i   int
	// next is the next cycle this core should tick; the span between next
	// and the engine's current cycle is applied in bulk via Skip.
	next uint64
	// stalling/stallRef track the open core-stall span (tracing runs
	// only): stalling marks an episode in progress, stallRef its sampled
	// span reference (0 when the episode was not sampled).
	stalling bool
	stallRef uint64
}

// catchUp applies every skipped cycle in [next, now).
func (a *coreActor) catchUp(now uint64) {
	if a.sys.finish[a.i] != 0 {
		a.next = now
		return
	}
	if now > a.next {
		a.sys.cores[a.i].Skip(now - a.next)
		a.next = now
	}
}

// Advance ticks the core at a processed cycle. It reports no activity:
// a core's externally visible effects (enqueues) land in controllers
// that evaluate later in the same cycle and report their own.
func (a *coreActor) Advance(now uint64) bool {
	s := a.sys
	if s.finish[a.i] != 0 {
		return false
	}
	a.catchUp(now)
	c := s.cores[a.i]
	c.Tick(s.issue)
	if s.tr != nil {
		a.traceStall(c.Stalled(), now)
	}
	if c.Retired() >= s.cfg.InstrPerCore {
		s.finish[a.i] = now + 1
		s.running--
	}
	a.next = now + 1
	return false
}

// traceStall opens a core-stall span when the core transitions into a
// stall and closes it when the core retires again, attributing blocked
// cycles in the trace timeline. Episode boundaries are observed at
// processed cycles — exact, because a stalled core's state only changes
// at cycles the engine processes.
func (a *coreActor) traceStall(stalled bool, now uint64) {
	if stalled == a.stalling {
		return
	}
	if stalled {
		a.stallRef = a.sys.tr.Begin(tracing.KindCoreStall, -1, -1, a.i, 0, now)
	} else if a.stallRef != 0 {
		a.sys.tr.End(a.stallRef, now)
		a.stallRef = 0
	}
	a.stalling = stalled
}

func (a *coreActor) NextEventAt(now uint64) uint64 {
	if a.sys.finish[a.i] != 0 {
		return engine.Horizon
	}
	return a.sys.cores[a.i].NextEventAt(now, a.sys.cfg.InstrPerCore)
}

// ctrlActor adapts a memory controller to the engine, surfacing
// unrecoverable controller faults (spare-row pool exhaustion) through
// the system's error slot.
type ctrlActor struct {
	sys *System
	c   *memctrl.Controller
}

func (a *ctrlActor) Advance(now uint64) bool {
	active := a.c.Tick(now)
	if err := a.c.Err(); err != nil && a.sys.err == nil {
		a.sys.err = err
	}
	return active
}
func (a *ctrlActor) NextEventAt(now uint64) uint64 { return a.c.NextEventAt(now) }

// crashActor injects the Section 7 power failure. It evaluates before
// the cores each processed cycle (the classic loop checked the
// threshold at the top of each iteration) and schedules its own checks
// densely enough that the crossing cycle is always processed: with n
// cores retiring at most one instruction per cycle each, the threshold
// cannot arrive sooner than (remaining ÷ n) cycles out.
type crashActor struct {
	sys *System
}

func (a *crashActor) total(now uint64) uint64 {
	// Cores catch up lazily; to observe the retirement count the classic
	// loop would have seen at the top of this cycle, apply their skipped
	// cycles first. This is idempotent with the cores' own catch-up.
	var total uint64
	for i, c := range a.sys.cores {
		a.sys.coreActs[i].catchUp(now)
		total += c.Retired()
	}
	return total
}

func (a *crashActor) Advance(now uint64) bool {
	s := a.sys
	if !s.crashPending {
		return false
	}
	if a.total(now) < s.cfg.CrashAtInstr {
		return false
	}
	s.crashPending = false
	// Power failure: in-flight work drains (the devices finish their
	// pulses), then volatile metadata is lost and the lazy conservative
	// correction runs.
	if err := s.drain(); err != nil {
		s.err = err
		return false
	}
	for _, sch := range s.schemes {
		if cr, ok := sch.(core.CrashRecoverable); ok {
			cr.CrashRecover()
		}
	}
	snap := *s.stats
	s.preCrash = &snap
	// The cores were frozen while the controllers drained: resume them at
	// the post-drain cycle with no skipped span to account for.
	resume := s.clock.Now()
	for _, ca := range s.coreActs {
		ca.next = resume
	}
	return true
}

func (a *crashActor) NextEventAt(now uint64) uint64 {
	s := a.sys
	if !s.crashPending {
		return engine.Horizon
	}
	total := a.total(now)
	if total >= s.cfg.CrashAtInstr {
		return now + 1
	}
	step := (s.cfg.CrashAtInstr - total) / uint64(len(s.cores))
	if step == 0 {
		step = 1
	}
	return now + step
}
