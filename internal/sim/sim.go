// Package sim assembles the full system — trace-driven cores, per-channel
// memory controllers, the ReRAM content store, a write scheme, energy
// metering and optional wear leveling — and runs the paper's experiments.
//
// A run is a System driven through five phases (build → warm → execute →
// drain → collect) by an event engine that skips cycles in which no
// component can act; see system.go and docs/ARCHITECTURE.md. Write
// schemes are resolved by name through core's scheme registry, so
// externally registered policies (core.RegisterScheme) run everywhere a
// built-in does.
package sim

import (
	"context"
	"fmt"
	"time"

	"ladder/internal/core"
	"ladder/internal/cpu"
	"ladder/internal/energy"
	"ladder/internal/fault"
	"ladder/internal/memctrl"
	"ladder/internal/metrics"
	"ladder/internal/remap"
	"ladder/internal/reram"
	"ladder/internal/timeline"
	"ladder/internal/timing"
	"ladder/internal/tracing"
)

// Scheme names accepted by Config.Scheme, aliased from the core registry
// (the canonical home; see core.RegisterScheme).
const (
	SchemeBaseline   = core.SchemeBaseline
	SchemeLocAware   = core.SchemeLocAware
	SchemeOracle     = core.SchemeOracle
	SchemeSplitReset = core.SchemeSplitReset
	SchemeBLP        = core.SchemeBLP
	SchemeBasic      = core.SchemeBasic
	SchemeEst        = core.SchemeEst
	SchemeEstNoShift = core.SchemeEstNoShift
	SchemeHybrid     = core.SchemeHybrid
)

// SchemeNames lists every runnable scheme: the built-ins in evaluation
// order followed by any externally registered ones.
func SchemeNames() []string {
	return core.RegisteredSchemes()
}

// FigureSchemes lists the schemes Figures 12/13/16 compare.
func FigureSchemes() []string {
	return []string{
		SchemeBaseline, SchemeSplitReset, SchemeBLP,
		SchemeBasic, SchemeEst, SchemeHybrid, SchemeOracle,
	}
}

// CoreProgress is one core's snapshot in a ProgressInfo.
type CoreProgress struct {
	Retired     uint64
	Outstanding int
}

// ChannelProgress is one memory channel's snapshot in a ProgressInfo.
type ChannelProgress struct {
	ReadQueue, WriteQueue int
	WriteMode             bool
}

// ProgressInfo is the periodic progress snapshot delivered to
// Config.Progress (or printed when LADDER_DEBUG is set).
type ProgressInfo struct {
	// Cycle is the simulated cycle the snapshot was taken at.
	Cycle    uint64
	Cores    []CoreProgress
	Channels []ChannelProgress
	// Wall is the host time elapsed since the run started.
	Wall time.Duration
	// InstrRate is the simulator's throughput: instructions retired per
	// host second since the run started.
	InstrRate float64
	// Metrics and Spans are populated only when Config.ProgressDetail is
	// set: a frozen instrument snapshot and the most recent traced spans
	// (nil when tracing is off). Both are rebuilt per snapshot, so
	// consumers may retain them (the introspection server does).
	Metrics *metrics.Snapshot
	Spans   []tracing.Span
}

// Config describes one simulation run.
type Config struct {
	// Workload is a single benchmark name or a Table 3 mix name.
	Workload string
	// Scheme selects the write policy (see Scheme constants; any name
	// registered via core.RegisterScheme resolves).
	Scheme string
	// InstrPerCore is the per-core instruction budget.
	InstrPerCore uint64
	// Seed makes the run deterministic.
	Seed int64
	// MLP bounds outstanding demand reads per core (0 = default 8).
	MLP int
	// Geom is the memory geometry (zero value = paper default).
	Geom reram.Geometry
	// Ctrl is the controller configuration (zero value = paper default).
	Ctrl memctrl.Config
	// Tables supplies the timing tables; nil loads the default 512×512
	// set (generated once per process).
	Tables *timing.TableSet
	// Energy supplies the energy coefficients (zero value = default).
	Energy energy.Params
	// ShrinkRange > 1 compresses the timing tables' dynamic range
	// (Section 7's process-variation ablation).
	ShrinkRange float64
	// WearLeveling enables vertical wear leveling.
	WearLeveling bool
	// VWLMode selects the leveler: "segment" (default; Start-Gap over
	// 1 MB segments, preserving page→wordline-group contiguity) or
	// "line" (line-granularity scatter in the Security-Refresh style,
	// which distributes a page's blocks over different wordline groups —
	// the case Section 6.4 warns deteriorates LRS-metadata locality).
	VWLMode string
	// VWLSegmentRows is the segment size in wordline groups (default 256
	// = 1 MB).
	VWLSegmentRows int
	// VWLPeriod is the number of writes between gap moves (default 128).
	VWLPeriod int
	// ResidentLevel controls the synthetic resident-data density 2^-level
	// prefilled into touched wordline groups (0 = default level 2 ≈ 0.25
	// ones-density; negative = fresh all-HRS device). See
	// reram.Store.SetResident.
	ResidentLevel int
	// Verify checks end-of-run read-back correctness for every written
	// line (shift/FNW round trip through the device).
	Verify bool
	// CrashAtInstr, when non-zero, injects a power failure after the
	// given number of total retired instructions: the controllers drain,
	// volatile LRS-metadata is lost, and the lazy conservative correction
	// of Section 7 runs before execution resumes.
	CrashAtInstr uint64
	// MetaCache overrides the LRS-metadata cache configuration (zero
	// value = the paper's 64 KB 4-way cache). Used by the cache-size
	// ablation.
	MetaCache core.MetaCacheConfig
	// HybridLowRows overrides LADDER-Hybrid's precision control register:
	// the number of driver-near rows using 1-bit counters. 0 keeps the
	// paper's 128; -1 disables the low-precision region entirely.
	HybridLowRows int
	// TraceFile replays a recorded access trace (see cmd/tracegen) on a
	// single core instead of synthesizing the workload; Workload becomes a
	// label only. The trace's addresses must fit the configured geometry.
	TraceFile string
	// Progress, when set, receives a periodic snapshot of run state every
	// ProgressEvery cycles (long-run liveness without any printf in the
	// hot loop). When nil, setting the LADDER_DEBUG environment variable
	// wires a default printer to the same hook. The callback always runs
	// on the run's single simulation goroutine, so it needs no internal
	// locking against the run itself; under RunGridCtx each concurrent
	// cell is its own run, and the grid-level hooks (Options.Progress,
	// Options.CellProgress) add cross-cell serialization on top.
	Progress func(ProgressInfo) `json:"-"`
	// ProgressEvery is the progress-callback period in cycles (0 = every
	// 5M cycles, i.e. 1.25 simulated milliseconds).
	ProgressEvery uint64
	// ProgressDetail additionally populates ProgressInfo.Metrics and
	// ProgressInfo.Spans on every snapshot (the introspection server's
	// live documents). Off by default: freezing the registry per snapshot
	// is not free.
	ProgressDetail bool
	// TraceSample enables transaction-lifecycle tracing, recording every
	// Nth memory transaction as a span (see package tracing). 0 disables
	// tracing; 1 records everything the ring retains.
	TraceSample int
	// TraceCapacity sizes the span ring buffer (0 = tracing.DefaultCapacity).
	TraceCapacity int
	// TraceSlowest sizes the slowest-writes digest (0 =
	// tracing.DefaultSlowestK).
	TraceSlowest int
	// FaultRate enables write-fault injection: the base transient-failure
	// probability of a zero-margin RESET pulse (see package fault and
	// docs/FAULTS.md). 0 — the default — disables injection entirely and
	// keeps runs cycle-identical to pre-fault builds.
	FaultRate float64
	// FaultSeed seeds the injector's private PRNG stream (0 = reuse Seed).
	FaultSeed int64
	// RetryMax caps program-and-verify reissues per write (0 = default 3,
	// negative = no reissues at all: transient failures remap directly).
	RetryMax int
	// SpareRows sizes each bank's spare-row pool (0 = default 32,
	// negative = no spares). A run that exhausts a pool on the fault path
	// fails with an error from Run.
	SpareRows int
	// RemapPenaltyNs is the address-decoder indirection latency charged
	// on accesses to spare-remapped rows (0 = default 2 ns, negative =
	// free indirection).
	RemapPenaltyNs float64
	// ProactiveWearLimit, when positive, retires rows to spares once
	// their effective write count reaches the limit — wear-limit-
	// triggered proactive remapping through the address decoder,
	// best-effort when the pool empties. Used by the lifetime sweep.
	ProactiveWearLimit uint64
	// TimelineInterval enables the timeline epoch sampler: every
	// TimelineInterval simulated cycles the run's registry and headline
	// scalars are diffed into a per-epoch record (see package timeline
	// and docs/TIMELINE.md). 0 — the default — disables sampling and
	// keeps runs cycle-identical to a build without the sampler; enabling
	// it is observer-only and must not perturb simulated cycles either
	// (pinned by the golden determinism tests).
	TimelineInterval uint64
	// TimelineCapacity bounds retained epochs (0 = timeline.DefaultCapacity).
	// Reaching it merges adjacent epochs and doubles the effective width.
	TimelineCapacity int
	// TimelineOnEpoch, when set, receives each epoch as it closes — the
	// live-streaming hook behind the introspection server's /timeline
	// feed. Runs on the simulation goroutine, like Progress.
	TimelineOnEpoch func(timeline.Epoch) `json:"-"`
	// Interrupt, when set, is polled periodically during the execute and
	// drain phases (every few thousand engine steps — far below any
	// human-visible latency, far above per-cycle cost); a non-nil return
	// aborts the run with that error wrapped. RunCtx wires a context's
	// cancellation cause through this hook, which is how service-mode
	// deadlines and watchdogs stop a running simulation at cycle
	// granularity. Nil — the default — is never polled and costs nothing.
	Interrupt func() error `json:"-"`
}

func (c *Config) applyDefaults() error {
	if c.Workload == "" && c.TraceFile == "" {
		return fmt.Errorf("sim: workload required")
	}
	if c.Scheme == "" {
		c.Scheme = SchemeBaseline
	}
	if c.InstrPerCore == 0 {
		c.InstrPerCore = 200_000
	}
	if c.MLP == 0 {
		c.MLP = cpu.DefaultMLP
	}
	if c.Geom == (reram.Geometry{}) {
		c.Geom = reram.DefaultGeometry()
	}
	if c.Ctrl == (memctrl.Config{}) {
		c.Ctrl = memctrl.DefaultConfig()
	}
	if c.Tables == nil {
		ts, err := timing.DefaultTableSet()
		if err != nil {
			return fmt.Errorf("sim: loading default tables: %w", err)
		}
		c.Tables = ts
	}
	if c.Energy == (energy.Params{}) {
		c.Energy = energy.DefaultParams()
	}
	if c.VWLSegmentRows == 0 {
		c.VWLSegmentRows = 256
	}
	if c.VWLPeriod == 0 {
		c.VWLPeriod = 128
	}
	if c.ResidentLevel == 0 {
		c.ResidentLevel = 2
	}
	if c.MetaCache == (core.MetaCacheConfig{}) {
		c.MetaCache = core.DefaultMetaCacheConfig()
	}
	return nil
}

// Result reports one run's measurements.
type Result struct {
	Workload string
	Scheme   string
	// PerCoreIPC is instructions per cycle for each core.
	PerCoreIPC []float64
	// Ticks is the total simulated time (CPU cycles at 4 GHz).
	Ticks uint64
	// Stats holds the traffic/latency/counter accounting.
	Stats core.Stats
	// Energy in nanojoule-scaled units.
	ReadNJ, WriteNJ float64
	// TotalStoreWrites, MaxRowWrites and TouchedRows feed the lifetime
	// model (metadata writes persist through the cache backing, so the
	// store counts data writes only; metadata traffic is in
	// Stats.MetaWrites). TouchedRows is the number of distinct wordline
	// groups ever written.
	TotalStoreWrites uint64
	MaxRowWrites     uint64
	TouchedRows      int
	// GapMoves counts VWL migrations (wear leveling runs only).
	GapMoves uint64
	// PreCrashStats/PostCrashStats split the accounting around an
	// injected crash (CrashAtInstr runs only); PostCrash values are the
	// deltas accumulated after recovery.
	PreCrashStats, PostCrashStats *core.Stats
	// InstructionsRetired is the total across cores.
	InstructionsRetired uint64
	// WallClock is the host time the run took (simulator performance,
	// not simulated time).
	WallClock time.Duration
	// Metrics is the run's instrument registry — queue-occupancy gauges,
	// per-channel RESET-latency histograms, cache and estimator
	// counters; see docs/METRICS.md. Always non-nil from Run. Excluded
	// from JSON: reports serialize its Snapshot instead (see Report).
	Metrics *metrics.Registry `json:"-"`
	// Trace is the run's span collector, non-nil only when
	// Config.TraceSample > 0. Excluded from JSON: reports embed its
	// Summary, and the Chrome trace is written separately
	// (Trace.WriteChromeTrace).
	Trace *tracing.Collector `json:"-"`
	// Faults holds the fault-injection accounting, non-nil only when
	// Config.FaultRate > 0.
	Faults *fault.Stats
	// Remap holds the address decoder's accounting (gap moves, spare
	// remaps, lookups, penalty ticks), non-nil whenever the decoder was
	// active — wear leveling, fault injection or proactive retirement.
	Remap *remap.Stats
	// Timeline is the run's per-epoch series, non-nil only when
	// Config.TimelineInterval > 0. Its per-epoch deltas sum exactly to
	// the end-of-run aggregates (pinned by TestTimelineDeltasSumToAggregates).
	Timeline *timeline.Timeline
}

// subtractStats returns after-minus-before for the additive counters used
// by the crash-recovery analysis.
func subtractStats(after, before *core.Stats) *core.Stats {
	d := *after
	d.DataReads -= before.DataReads
	d.DataWrites -= before.DataWrites
	d.SMBReads -= before.SMBReads
	d.MetaReads -= before.MetaReads
	d.MetaWrites -= before.MetaWrites
	d.MetaCacheHits -= before.MetaCacheHits
	d.MetaCacheMisses -= before.MetaCacheMisses
	d.WriteServiceNs -= before.WriteServiceNs
	d.ReadLatencyNs -= before.ReadLatencyNs
	d.ReadsTimed -= before.ReadsTimed
	d.CounterDiffSum -= before.CounterDiffSum
	d.CounterDiffN -= before.CounterDiffN
	return &d
}

// AvgIPC returns the arithmetic mean per-core IPC.
func (r *Result) AvgIPC() float64 {
	if len(r.PerCoreIPC) == 0 {
		return 0
	}
	s := 0.0
	for _, v := range r.PerCoreIPC {
		s += v
	}
	return s / float64(len(r.PerCoreIPC))
}

// WeightedSpeedup computes the weighted speedup against a baseline run of
// the same workload: mean over cores of IPC_i(scheme)/IPC_i(baseline).
func (r *Result) WeightedSpeedup(baseline *Result) float64 {
	if baseline == nil || len(baseline.PerCoreIPC) != len(r.PerCoreIPC) || len(r.PerCoreIPC) == 0 {
		return 0
	}
	s := 0.0
	for i, v := range r.PerCoreIPC {
		if baseline.PerCoreIPC[i] > 0 {
			s += v / baseline.PerCoreIPC[i]
		}
	}
	return s / float64(len(r.PerCoreIPC))
}

// shrunk returns a table set with its dynamic range compressed by factor.
func shrunk(ts *timing.TableSet, factor float64) *timing.TableSet {
	out := &timing.TableSet{
		Model: ts.Model,
		WL:    ts.WL.ShrinkRange(factor),
		BL:    ts.BL.ShrinkRange(factor),
		Half:  ts.Half.ShrinkRange(factor),
	}
	out.WorstNs = out.WL.WorstCase()
	return out
}

// Run executes one simulation to completion and returns its measurements:
// it builds a System and drives it through its phases.
func Run(cfg Config) (*Result, error) {
	sys, err := newSystem(cfg)
	if err != nil {
		return nil, err
	}
	for _, phase := range []func() error{sys.warm, sys.execute, sys.drainRemaining} {
		if err := phase(); err != nil {
			return nil, err
		}
	}
	return sys.collect()
}

// RunCtx is Run under a context: the run polls ctx between engine steps
// and aborts with the context's cancellation cause once it is canceled
// or its deadline passes. The poll happens at step granularity — a run
// stops within microseconds of cancellation, never mid-cycle, so an
// aborted run leaves no partial-cycle state behind (it returns no
// Result at all). An explicit Config.Interrupt takes precedence.
func RunCtx(ctx context.Context, cfg Config) (*Result, error) {
	if cfg.Interrupt == nil && ctx != nil {
		cfg.Interrupt = func() error {
			if ctx.Err() != nil {
				return context.Cause(ctx)
			}
			return nil
		}
	}
	return Run(cfg)
}

// exportRunMetrics publishes the end-of-run scalars that are already
// accounted elsewhere (Stats, the store, the wear leveler) as registry
// counters, so a single Snapshot carries the whole run. Hot paths keep
// their existing bookkeeping; only these absolute overwrites happen here.
// Every name is cataloged in docs/METRICS.md.
func exportRunMetrics(reg *metrics.Registry, res *Result, geom reram.Geometry, store *reram.Store, schemes []core.Scheme) {
	reg.SetCounter("sim.ticks", res.Ticks)
	reg.SetCounter("sim.instructions_retired", res.InstructionsRetired)
	reg.SetCounter("sim.wall_clock_us", uint64(res.WallClock.Microseconds()))
	reg.SetCounter("wear.gap_moves", res.GapMoves)
	reg.SetCounter("core.traffic.data_reads", res.Stats.DataReads)
	reg.SetCounter("core.traffic.data_writes", res.Stats.DataWrites)
	reg.SetCounter("core.traffic.smb_reads", res.Stats.SMBReads)
	reg.SetCounter("core.traffic.meta_reads", res.Stats.MetaReads)
	reg.SetCounter("core.traffic.meta_writes", res.Stats.MetaWrites)
	reg.SetCounter("core.meta_cache.hits", res.Stats.MetaCacheHits)
	reg.SetCounter("core.meta_cache.misses", res.Stats.MetaCacheMisses)
	reg.SetCounter("core.meta_cache.spill_parks", res.Stats.SpillParks)
	var evictions uint64
	for _, s := range schemes {
		if c, ok := s.(interface{ Cache() *core.MetaCache }); ok {
			evictions += c.Cache().Evictions()
		}
	}
	reg.SetCounter("core.meta_cache.evictions", evictions)
	if res.Faults != nil {
		reg.SetCounter("fault.checked", res.Faults.Checked)
		reg.SetCounter("fault.injected", res.Faults.Injected)
		reg.SetCounter("fault.retries", res.Faults.Retries)
		reg.SetCounter("fault.exhausted", res.Faults.Exhausted)
	}
	if res.Remap != nil {
		reg.SetCounter("remap.gap_moves", res.Remap.GapMoves)
		reg.SetCounter("remap.spare_remaps", res.Remap.SpareRemaps)
		reg.SetCounter("remap.spares_used", res.Remap.SparesUsed)
		reg.SetCounter("remap.decoder_lookups", res.Remap.Lookups)
		reg.SetCounter("remap.penalty_ticks", res.Remap.PenaltyTicks)
	}
	for i, w := range store.BankWrites() {
		bank := i % geom.BanksPerRank
		rank := (i / geom.BanksPerRank) % geom.RanksPerChannel
		ch := i / (geom.BanksPerRank * geom.RanksPerChannel)
		reg.SetCounter(fmt.Sprintf("reram.ch%d.rank%d.bank%d.writes", ch, rank, bank), w)
	}
}
