// Package sim assembles the full system — trace-driven cores, per-channel
// memory controllers, the ReRAM content store, a write scheme, energy
// metering and optional wear leveling — and runs the paper's experiments.
package sim

import (
	"fmt"
	mathbits "math/bits"
	"os"
	"time"

	"ladder/internal/bits"
	"ladder/internal/core"
	"ladder/internal/cpu"
	"ladder/internal/energy"
	"ladder/internal/memctrl"
	"ladder/internal/metrics"
	"ladder/internal/reram"
	"ladder/internal/timing"
	"ladder/internal/trace"
	"ladder/internal/wear"
)

// Scheme names accepted by Config.Scheme.
const (
	SchemeBaseline   = "baseline"
	SchemeLocAware   = "location-aware"
	SchemeOracle     = "Oracle"
	SchemeSplitReset = "Split-reset"
	SchemeBLP        = "BLP"
	SchemeBasic      = "LADDER-Basic"
	SchemeEst        = "LADDER-Est"
	SchemeEstNoShift = "LADDER-Est-noshift"
	SchemeHybrid     = "LADDER-Hybrid"
)

// SchemeNames lists every supported scheme in evaluation order.
func SchemeNames() []string {
	return []string{
		SchemeBaseline, SchemeLocAware, SchemeOracle, SchemeSplitReset,
		SchemeBLP, SchemeBasic, SchemeEst, SchemeEstNoShift, SchemeHybrid,
	}
}

// FigureSchemes lists the schemes Figures 12/13/16 compare.
func FigureSchemes() []string {
	return []string{
		SchemeBaseline, SchemeSplitReset, SchemeBLP,
		SchemeBasic, SchemeEst, SchemeHybrid, SchemeOracle,
	}
}

// Config describes one simulation run.
type Config struct {
	// Workload is a single benchmark name or a Table 3 mix name.
	Workload string
	// Scheme selects the write policy (see Scheme constants).
	Scheme string
	// InstrPerCore is the per-core instruction budget.
	InstrPerCore uint64
	// Seed makes the run deterministic.
	Seed int64
	// MLP bounds outstanding demand reads per core (0 = default 8).
	MLP int
	// Geom is the memory geometry (zero value = paper default).
	Geom reram.Geometry
	// Ctrl is the controller configuration (zero value = paper default).
	Ctrl memctrl.Config
	// Tables supplies the timing tables; nil loads the default 512×512
	// set (generated once per process).
	Tables *timing.TableSet
	// Energy supplies the energy coefficients (zero value = default).
	Energy energy.Params
	// ShrinkRange > 1 compresses the timing tables' dynamic range
	// (Section 7's process-variation ablation).
	ShrinkRange float64
	// WearLeveling enables vertical wear leveling.
	WearLeveling bool
	// VWLMode selects the leveler: "segment" (default; Start-Gap over
	// 1 MB segments, preserving page→wordline-group contiguity) or
	// "line" (line-granularity scatter in the Security-Refresh style,
	// which distributes a page's blocks over different wordline groups —
	// the case Section 6.4 warns deteriorates LRS-metadata locality).
	VWLMode string
	// VWLSegmentRows is the segment size in wordline groups (default 256
	// = 1 MB).
	VWLSegmentRows int
	// VWLPeriod is the number of writes between gap moves (default 128).
	VWLPeriod int
	// ResidentLevel controls the synthetic resident-data density 2^-level
	// prefilled into touched wordline groups (0 = default level 2 ≈ 0.25
	// ones-density; negative = fresh all-HRS device). See
	// reram.Store.SetResident.
	ResidentLevel int
	// Verify checks end-of-run read-back correctness for every written
	// line (shift/FNW round trip through the device).
	Verify bool
	// CrashAtInstr, when non-zero, injects a power failure after the
	// given number of total retired instructions: the controllers drain,
	// volatile LRS-metadata is lost, and the lazy conservative correction
	// of Section 7 runs before execution resumes.
	CrashAtInstr uint64
	// MetaCache overrides the LRS-metadata cache configuration (zero
	// value = the paper's 64 KB 4-way cache). Used by the cache-size
	// ablation.
	MetaCache core.MetaCacheConfig
	// HybridLowRows overrides LADDER-Hybrid's precision control register:
	// the number of driver-near rows using 1-bit counters. 0 keeps the
	// paper's 128; -1 disables the low-precision region entirely.
	HybridLowRows int
	// TraceFile replays a recorded access trace (see cmd/tracegen) on a
	// single core instead of synthesizing the workload; Workload becomes a
	// label only. The trace's addresses must fit the configured geometry.
	TraceFile string
}

func (c *Config) applyDefaults() error {
	if c.Workload == "" && c.TraceFile == "" {
		return fmt.Errorf("sim: workload required")
	}
	if c.Scheme == "" {
		c.Scheme = SchemeBaseline
	}
	if c.InstrPerCore == 0 {
		c.InstrPerCore = 200_000
	}
	if c.MLP == 0 {
		c.MLP = cpu.DefaultMLP
	}
	if c.Geom == (reram.Geometry{}) {
		c.Geom = reram.DefaultGeometry()
	}
	if c.Ctrl == (memctrl.Config{}) {
		c.Ctrl = memctrl.DefaultConfig()
	}
	if c.Tables == nil {
		ts, err := timing.DefaultTableSet()
		if err != nil {
			return fmt.Errorf("sim: loading default tables: %w", err)
		}
		c.Tables = ts
	}
	if c.Energy == (energy.Params{}) {
		c.Energy = energy.DefaultParams()
	}
	if c.VWLSegmentRows == 0 {
		c.VWLSegmentRows = 256
	}
	if c.VWLPeriod == 0 {
		c.VWLPeriod = 128
	}
	if c.ResidentLevel == 0 {
		c.ResidentLevel = 2
	}
	if c.MetaCache == (core.MetaCacheConfig{}) {
		c.MetaCache = core.DefaultMetaCacheConfig()
	}
	return nil
}

// Result reports one run's measurements.
type Result struct {
	Workload string
	Scheme   string
	// PerCoreIPC is instructions per cycle for each core.
	PerCoreIPC []float64
	// Ticks is the total simulated time (CPU cycles at 4 GHz).
	Ticks uint64
	// Stats holds the traffic/latency/counter accounting.
	Stats core.Stats
	// Energy in nanojoule-scaled units.
	ReadNJ, WriteNJ float64
	// TotalStoreWrites and MaxRowWrites feed the lifetime model
	// (metadata writes persist through the cache backing, so the store
	// counts data writes only; metadata traffic is in Stats.MetaWrites).
	TotalStoreWrites uint64
	MaxRowWrites     uint64
	// GapMoves counts VWL migrations (wear leveling runs only).
	GapMoves uint64
	// PreCrashStats/PostCrashStats split the accounting around an
	// injected crash (CrashAtInstr runs only); PostCrash values are the
	// deltas accumulated after recovery.
	PreCrashStats, PostCrashStats *core.Stats
	// InstructionsRetired is the total across cores.
	InstructionsRetired uint64
	// WallClock is the host time the run took (simulator performance,
	// not simulated time).
	WallClock time.Duration
	// Metrics is the run's instrument registry — queue-occupancy gauges,
	// per-channel RESET-latency histograms, cache and estimator
	// counters; see docs/METRICS.md. Always non-nil from Run. Excluded
	// from JSON: reports serialize its Snapshot instead (see Report).
	Metrics *metrics.Registry `json:"-"`
}

// subtractStats returns after-minus-before for the additive counters used
// by the crash-recovery analysis.
func subtractStats(after, before *core.Stats) *core.Stats {
	d := *after
	d.DataReads -= before.DataReads
	d.DataWrites -= before.DataWrites
	d.SMBReads -= before.SMBReads
	d.MetaReads -= before.MetaReads
	d.MetaWrites -= before.MetaWrites
	d.MetaCacheHits -= before.MetaCacheHits
	d.MetaCacheMisses -= before.MetaCacheMisses
	d.WriteServiceNs -= before.WriteServiceNs
	d.ReadLatencyNs -= before.ReadLatencyNs
	d.ReadsTimed -= before.ReadsTimed
	d.CounterDiffSum -= before.CounterDiffSum
	d.CounterDiffN -= before.CounterDiffN
	return &d
}

// AvgIPC returns the arithmetic mean per-core IPC.
func (r *Result) AvgIPC() float64 {
	if len(r.PerCoreIPC) == 0 {
		return 0
	}
	s := 0.0
	for _, v := range r.PerCoreIPC {
		s += v
	}
	return s / float64(len(r.PerCoreIPC))
}

// WeightedSpeedup computes the weighted speedup against a baseline run of
// the same workload: mean over cores of IPC_i(scheme)/IPC_i(baseline).
func (r *Result) WeightedSpeedup(baseline *Result) float64 {
	if baseline == nil || len(baseline.PerCoreIPC) != len(r.PerCoreIPC) || len(r.PerCoreIPC) == 0 {
		return 0
	}
	s := 0.0
	for i, v := range r.PerCoreIPC {
		if baseline.PerCoreIPC[i] > 0 {
			s += v / baseline.PerCoreIPC[i]
		}
	}
	return s / float64(len(r.PerCoreIPC))
}

// newScheme instantiates a scheme by name; each controller gets its own
// instance (private metadata cache) over the shared environment.
func newScheme(name string, env *core.Env, cacheCfg core.MetaCacheConfig) (core.Scheme, error) {
	switch name {
	case SchemeBaseline:
		return core.NewBaseline(env), nil
	case SchemeLocAware:
		return core.NewLocationAware(env), nil
	case SchemeOracle:
		return core.NewOracle(env), nil
	case SchemeSplitReset:
		return core.NewSplitReset(env), nil
	case SchemeBLP:
		return core.NewBLP(env), nil
	case SchemeBasic:
		return core.NewBasicCache(env, cacheCfg)
	case SchemeEst:
		return core.NewEstCache(env, true, cacheCfg)
	case SchemeEstNoShift:
		return core.NewEstCache(env, false, cacheCfg)
	case SchemeHybrid:
		return core.NewHybridCache(env, cacheCfg)
	default:
		return nil, fmt.Errorf("sim: unknown scheme %q", name)
	}
}

// shrunk returns a table set with its dynamic range compressed by factor.
func shrunk(ts *timing.TableSet, factor float64) *timing.TableSet {
	out := &timing.TableSet{
		Model: ts.Model,
		WL:    ts.WL.ShrinkRange(factor),
		BL:    ts.BL.ShrinkRange(factor),
		Half:  ts.Half.ShrinkRange(factor),
	}
	out.WorstNs = out.WL.WorstCase()
	return out
}

// Run executes one simulation to completion and returns its measurements.
func Run(cfg Config) (*Result, error) {
	if err := cfg.applyDefaults(); err != nil {
		return nil, err
	}
	var profiles []trace.Profile
	if cfg.TraceFile != "" {
		profiles = make([]trace.Profile, 1)
	} else {
		var err error
		profiles, err = trace.MixProfiles(cfg.Workload)
		if err != nil {
			return nil, err
		}
	}
	tables := cfg.Tables
	if cfg.ShrinkRange > 1 {
		tables = shrunk(tables, cfg.ShrinkRange)
	}
	store, err := reram.NewStore(cfg.Geom)
	if err != nil {
		return nil, err
	}
	if cfg.ResidentLevel > 0 {
		store.SetResident(cfg.ResidentLevel, uint64(cfg.Seed)+0x5eed)
		// Under a shifting scheme, data resident from before the
		// simulation window was stored through the same datapath.
		switch cfg.Scheme {
		case SchemeEst, SchemeHybrid:
			store.SetResidentTransform(func(slot int, l bits.Line) bits.Line {
				return bits.Shifted(l, slot)
			})
		}
	}
	stats := &core.Stats{}
	// Each run owns a private registry; RunGrid merges them afterward, so
	// the observe paths stay lock-free (a run is single-goroutine).
	reg := metrics.NewRegistry()
	env := &core.Env{Geom: cfg.Geom, Store: store, Tables: tables, Stats: stats, Metrics: reg}
	started := time.Now()
	meter, err := energy.NewMeter(cfg.Energy)
	if err != nil {
		return nil, err
	}

	// Cores: one per profile, in disjoint address regions (or a single
	// core replaying a recorded trace).
	cores := make([]*cpu.Core, len(profiles))
	finish := make([]uint64, len(profiles))
	if cfg.TraceFile != "" {
		rep, err := trace.LoadFile(cfg.TraceFile)
		if err != nil {
			return nil, err
		}
		if rep.MaxLine() >= cfg.Geom.Lines() {
			return nil, fmt.Errorf("sim: trace address %d exceeds the configured memory (%d lines)", rep.MaxLine(), cfg.Geom.Lines())
		}
		c, err := cpu.NewCore(0, rep, cfg.MLP)
		if err != nil {
			return nil, err
		}
		cores = []*cpu.Core{c}
		finish = make([]uint64, 1)
	} else {
		regionPages := cfg.Geom.Lines() / reram.BlocksPerRow / uint64(len(profiles)+1)
		for i, p := range profiles {
			// Clamp the footprint to the core's region so every generated
			// address decodes (small test geometries compress footprints).
			if uint64(p.WorkingSetPages) > regionPages {
				p.WorkingSetPages = int(regionPages)
			}
			gen, err := trace.NewGenerator(p, cfg.Seed+int64(i)*7919+1, uint64(i)*regionPages)
			if err != nil {
				return nil, err
			}
			cores[i], err = cpu.NewCore(i, gen, cfg.MLP)
			if err != nil {
				return nil, err
			}
		}
	}

	// Controllers: one per channel, each with a private scheme instance.
	ctrls := make([]*memctrl.Controller, cfg.Geom.Channels)
	onReadDone := func(r *memctrl.ReadReq, _ uint64) {
		if r.Core >= 0 && r.Core < len(cores) {
			cores[r.Core].ReadDone()
		}
	}
	schemes := make([]core.Scheme, cfg.Geom.Channels)
	for ch := range ctrls {
		scheme, err := newScheme(cfg.Scheme, env, cfg.MetaCache)
		if err != nil {
			return nil, err
		}
		if h, ok := scheme.(*core.Hybrid); ok && cfg.HybridLowRows != 0 {
			n := cfg.HybridLowRows
			if n < 0 {
				n = 0
			}
			h.SetLowPrecisionRows(n)
		}
		schemes[ch] = scheme
		ctrls[ch], err = memctrl.NewController(cfg.Ctrl, env, scheme, meter, onReadDone)
		if err != nil {
			return nil, err
		}
		ctrls[ch].Instrument(reg, ch)
	}

	// Optional vertical wear leveling.
	var vwl *wear.StartGap
	var lineRemap func(uint64) uint64
	if cfg.WearLeveling {
		switch cfg.VWLMode {
		case "", "segment":
			// Segment-based Start-Gap: whole wordline groups move
			// together, preserving the page→metadata-line association
			// (Figure 18b). The remap shifts crossbar rows; gap moves
			// charge maintenance writes.
			segments := int(cfg.Geom.Rows()/uint64(cfg.VWLSegmentRows)) + 1
			vwl, err = wear.NewStartGap(segments, cfg.VWLPeriod)
			if err != nil {
				return nil, err
			}
			for _, c := range ctrls {
				c.SetRemap(func(loc reram.Location) reram.Location {
					seg := int(cfg.Geom.GlobalRow(loc) / uint64(cfg.VWLSegmentRows))
					phys := vwl.Phys(seg % vwl.Segments())
					loc.WL = (loc.WL + phys) % cfg.Geom.MatRows
					return loc
				})
			}
		case "line":
			// Line-granularity leveling (Security-Refresh style): the
			// steady-state address scatter distributes a page's blocks
			// over different wordline groups — the case Section 6.4 warns
			// deteriorates LRS-metadata locality. Modeled as a static
			// XOR bijection over line addresses (epoch migrations not
			// charged; the performance claim concerns the scatter).
			lines := cfg.Geom.Lines()
			if lines&(lines-1) != 0 {
				return nil, fmt.Errorf("sim: line-mode VWL requires a power-of-two line count")
			}
			// Rotate the slot bits to the top of the address: the 64
			// blocks of one page land in 64 different wordline groups (a
			// bijection, so reads still find their data).
			width := uint(mathbits.TrailingZeros64(lines))
			lineRemap = func(line uint64) uint64 {
				return (line>>6 | (line&63)<<(width-6)) & (lines - 1)
			}
		default:
			return nil, fmt.Errorf("sim: unknown VWLMode %q", cfg.VWLMode)
		}
	}

	var expected map[uint64]bits.Line
	if cfg.Verify {
		expected = make(map[uint64]bits.Line)
	}

	var now uint64
	issue := func(coreID int, a trace.Access) bool {
		if lineRemap != nil {
			a.Line = lineRemap(a.Line)
		}
		loc, err := cfg.Geom.Decode(a.Line)
		if err != nil {
			// Footprints are clamped to the memory, so this cannot happen;
			// dropping silently would leak the core's MLP slots.
			panic(fmt.Sprintf("sim: trace address %d outside memory: %v", a.Line, err))
		}
		c := ctrls[loc.Channel]
		if a.Write {
			if !c.EnqueueWrite(a.Line, a.Data, now) {
				return false
			}
			if vwl != nil && vwl.RecordWrite() {
				c.EnqueueMaintenance(loc, now)
			}
			if expected != nil {
				expected[a.Line] = a.Data
			}
			return true
		}
		return c.EnqueueRead(coreID, a.Line, now)
	}

	const drainCap = 50_000_000
	drain := func() {
		for drained := 0; drained < drainCap; drained++ {
			idle := true
			for _, c := range ctrls {
				c.Tick(now)
				if !c.Idle() {
					idle = false
				}
			}
			now++
			if idle {
				return
			}
		}
	}

	// Main loop: tick cores until each exhausts its budget, then drain.
	running := len(cores)
	crashPending := cfg.CrashAtInstr > 0
	var preCrash *core.Stats
	debug := os.Getenv("LADDER_DEBUG") != ""
	for running > 0 {
		if crashPending {
			var total uint64
			for _, c := range cores {
				total += c.Retired()
			}
			if total >= cfg.CrashAtInstr {
				crashPending = false
				// Power failure: in-flight work drains (the devices finish
				// their pulses), then volatile metadata is lost and the
				// lazy conservative correction runs.
				drain()
				for _, s := range schemes {
					if cr, ok := s.(core.CrashRecoverable); ok {
						cr.CrashRecover()
					}
				}
				snap := *stats
				preCrash = &snap
			}
		}
		if debug && now%5_000_000 == 4_999_999 {
			fmt.Printf("tick %d:", now)
			for i, c := range cores {
				fmt.Printf(" core%d ret=%d out=%d", i, c.Retired(), c.Outstanding())
			}
			for ch, c := range ctrls {
				fmt.Printf(" | ch%d rdq=%d wrq=%d wm=%v", ch, c.ReadQueueLen(), c.WriteQueueLen(), c.InWriteMode())
			}
			fmt.Println()
		}
		for i, c := range cores {
			if finish[i] != 0 {
				continue
			}
			c.Tick(issue)
			if c.Retired() >= cfg.InstrPerCore {
				finish[i] = now + 1
				running--
			}
		}
		for _, c := range ctrls {
			c.Tick(now)
		}
		now++
	}
	drain()

	if expected != nil {
		for line, want := range expected {
			loc, err := cfg.Geom.Decode(line)
			if err != nil {
				continue
			}
			got, err := ctrls[loc.Channel].ReadLineLogical(line)
			if err != nil {
				return nil, fmt.Errorf("sim: verify read %d: %w", line, err)
			}
			if got != want {
				return nil, fmt.Errorf("sim: verify failed at line %d: stored data does not decode to the written content", line)
			}
		}
	}

	res := &Result{
		Workload:         cfg.Workload,
		Scheme:           cfg.Scheme,
		PerCoreIPC:       make([]float64, len(cores)),
		Ticks:            now,
		Stats:            *stats,
		ReadNJ:           meter.ReadNJ,
		WriteNJ:          meter.WriteNJ,
		TotalStoreWrites: store.TotalWrites(),
		MaxRowWrites:     store.MaxRowWrites(),
	}
	if vwl != nil {
		res.GapMoves = vwl.Moves()
	}
	if preCrash != nil {
		res.PreCrashStats = preCrash
		res.PostCrashStats = subtractStats(stats, preCrash)
	}
	for i := range cores {
		res.PerCoreIPC[i] = float64(cfg.InstrPerCore) / float64(finish[i])
		res.InstructionsRetired += cores[i].Retired()
	}
	res.WallClock = time.Since(started)
	res.Metrics = reg
	exportRunMetrics(reg, res, cfg.Geom, store, schemes)
	return res, nil
}

// exportRunMetrics publishes the end-of-run scalars that are already
// accounted elsewhere (Stats, the store, the wear leveler) as registry
// counters, so a single Snapshot carries the whole run. Hot paths keep
// their existing bookkeeping; only these absolute overwrites happen here.
// Every name is cataloged in docs/METRICS.md.
func exportRunMetrics(reg *metrics.Registry, res *Result, geom reram.Geometry, store *reram.Store, schemes []core.Scheme) {
	reg.SetCounter("sim.ticks", res.Ticks)
	reg.SetCounter("sim.instructions_retired", res.InstructionsRetired)
	reg.SetCounter("sim.wall_clock_us", uint64(res.WallClock.Microseconds()))
	reg.SetCounter("wear.gap_moves", res.GapMoves)
	reg.SetCounter("core.traffic.data_reads", res.Stats.DataReads)
	reg.SetCounter("core.traffic.data_writes", res.Stats.DataWrites)
	reg.SetCounter("core.traffic.smb_reads", res.Stats.SMBReads)
	reg.SetCounter("core.traffic.meta_reads", res.Stats.MetaReads)
	reg.SetCounter("core.traffic.meta_writes", res.Stats.MetaWrites)
	reg.SetCounter("core.meta_cache.hits", res.Stats.MetaCacheHits)
	reg.SetCounter("core.meta_cache.misses", res.Stats.MetaCacheMisses)
	reg.SetCounter("core.meta_cache.spill_parks", res.Stats.SpillParks)
	var evictions uint64
	for _, s := range schemes {
		if c, ok := s.(interface{ Cache() *core.MetaCache }); ok {
			evictions += c.Cache().Evictions()
		}
	}
	reg.SetCounter("core.meta_cache.evictions", evictions)
	for i, w := range store.BankWrites() {
		bank := i % geom.BanksPerRank
		rank := (i / geom.BanksPerRank) % geom.RanksPerChannel
		ch := i / (geom.BanksPerRank * geom.RanksPerChannel)
		reg.SetCounter(fmt.Sprintf("reram.ch%d.rank%d.bank%d.writes", ch, rank, bank), w)
	}
}
