package sim

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// TestReportEndToEnd runs a short simulation and checks the structured
// report: schema-valid JSON, a RESET-latency histogram with mass spread
// over more than one bucket (the location/content spread the timing
// tables encode), and ordered quantiles.
func TestReportEndToEnd(t *testing.T) {
	cfg := testConfig(t, "lbm", SchemeHybrid)
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics == nil {
		t.Fatal("Run returned a nil metrics registry")
	}
	if res.InstructionsRetired == 0 {
		t.Fatal("no instructions retired")
	}
	if res.WallClock <= 0 {
		t.Fatal("wall clock not measured")
	}

	rep := NewReport(res)
	if rep.Schema != ReportSchema {
		t.Fatalf("schema %q, want %q", rep.Schema, ReportSchema)
	}

	// JSON round trip: the emitted document must parse back into the
	// same shape with the schema marker and metrics sections intact.
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		Schema  string `json:"schema"`
		Metrics struct {
			Counters   map[string]uint64          `json:"counters"`
			Histograms map[string]json.RawMessage `json:"histograms"`
		} `json:"metrics"`
		ResetLatency struct {
			Count uint64  `json:"count"`
			P50   float64 `json:"p50_ns"`
			P95   float64 `json:"p95_ns"`
			P99   float64 `json:"p99_ns"`
			Max   float64 `json:"max_ns"`
		} `json:"reset_latency"`
	}
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	if decoded.Schema != ReportSchema {
		t.Fatalf("decoded schema %q", decoded.Schema)
	}
	if len(decoded.Metrics.Counters) == 0 {
		t.Fatal("report carries no counters")
	}

	// The run writes data, so the merged RESET-latency histogram must
	// have observations, spread over more than one bucket, with ordered
	// quantiles.
	rl := decoded.ResetLatency
	if rl.Count == 0 {
		t.Fatal("no RESET latencies recorded")
	}
	if !(rl.P50 <= rl.P95 && rl.P95 <= rl.P99 && rl.P99 <= rl.Max) {
		t.Fatalf("quantiles out of order: p50 %.1f p95 %.1f p99 %.1f max %.1f",
			rl.P50, rl.P95, rl.P99, rl.Max)
	}
	snap := res.Metrics.Snapshot()
	nonzero := 0
	found := false
	for name, h := range snap.Histograms {
		if strings.HasPrefix(name, "memctrl.") && strings.HasSuffix(name, resetLatencySuffix) {
			found = true
			if n := h.NonzeroBuckets(); n > nonzero {
				nonzero = n
			}
			if h.Count > 0 && h.P50 > h.P99 {
				t.Fatalf("%s: p50 %.1f > p99 %.1f", name, h.P50, h.P99)
			}
		}
	}
	if !found {
		t.Fatal("no per-channel RESET-latency histograms in the snapshot")
	}
	if nonzero < 2 {
		t.Fatalf("RESET-latency mass confined to %d bucket(s); content/location spread not visible", nonzero)
	}

	// The text rendering must mention the RESET distribution and at
	// least one cataloged metric name.
	var txt bytes.Buffer
	if err := rep.WriteText(&txt); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"RESET latency", "sim.instructions_retired", "core.meta_cache.hits"} {
		if !strings.Contains(txt.String(), want) {
			t.Fatalf("text report missing %q", want)
		}
	}

	// The bench snapshot exposes the quantile keys future perf PRs diff.
	bench := rep.Bench("test")
	for _, key := range []string{"reset_latency_p50_ns", "reset_latency_p95_ns", "reset_latency_p99_ns", "avg_ipc"} {
		if _, ok := bench.Metrics[key]; !ok {
			t.Fatalf("bench snapshot missing %q", key)
		}
	}
}

// TestReportMetricsConsistency cross-checks the exported counters
// against the Result's own accounting: the registry is a projection of
// the run, not a second source of truth.
func TestReportMetricsConsistency(t *testing.T) {
	cfg := testConfig(t, "astar", SchemeEst)
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	snap := res.Metrics.Snapshot()
	checks := map[string]uint64{
		"sim.ticks":                res.Ticks,
		"sim.instructions_retired": res.InstructionsRetired,
		"core.traffic.data_writes": res.Stats.DataWrites,
		"core.traffic.meta_reads":  res.Stats.MetaReads,
		"core.meta_cache.hits":     res.Stats.MetaCacheHits,
		"core.meta_cache.misses":   res.Stats.MetaCacheMisses,
	}
	for name, want := range checks {
		if got, ok := snap.Counters[name]; !ok || got != want {
			t.Errorf("%s = %d (present %v), want %d", name, got, ok, want)
		}
	}
	// Per-bank write counters must sum to the store's total.
	var bankSum uint64
	for name, v := range snap.Counters {
		if strings.HasPrefix(name, "reram.") && strings.HasSuffix(name, ".writes") {
			bankSum += v
		}
	}
	if bankSum != res.TotalStoreWrites {
		t.Errorf("per-bank writes sum %d, store total %d", bankSum, res.TotalStoreWrites)
	}
}

// TestGridReportMerge checks that grid reports merge per-run registries:
// the aggregate RESET histogram carries every cell's observations.
func TestGridReportMerge(t *testing.T) {
	grid, err := RunGrid(Options{
		Instr: 10_000, Seed: 7, Tables: smallTables(t),
		Workloads: []string{"astar"},
	}, []string{SchemeBaseline, SchemeEst})
	if err != nil {
		t.Fatal(err)
	}
	gr, err := NewGridReport(grid)
	if err != nil {
		t.Fatal(err)
	}
	if gr.Schema != GridReportSchema {
		t.Fatalf("schema %q", gr.Schema)
	}
	if len(gr.Cells) != 2 {
		t.Fatalf("got %d cells, want 2", len(gr.Cells))
	}
	var cellTotal uint64
	for _, c := range gr.Cells {
		cellTotal += c.ResetLatency.Count
	}
	merged := summarizeResetLatency(gr.Metrics)
	if merged.Count != cellTotal {
		t.Fatalf("merged RESET count %d, cells sum to %d", merged.Count, cellTotal)
	}
	var buf bytes.Buffer
	if err := gr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Fatal("grid report is not valid JSON")
	}
}

// TestRunGridJoinsAllErrors pins the errors.Join aggregation: two
// independent failing cells must both surface, not just the first.
func TestRunGridJoinsAllErrors(t *testing.T) {
	_, err := RunGrid(Options{
		Instr: 1_000, Tables: smallTables(t),
		Workloads: []string{"bogus-one", "bogus-two"},
	}, []string{SchemeBaseline})
	if err == nil {
		t.Fatal("expected errors for unknown workloads")
	}
	for _, want := range []string{"bogus-one", "bogus-two"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("aggregated error missing %q: %v", want, err)
		}
	}
}
