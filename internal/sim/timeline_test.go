package sim

import (
	"testing"

	"ladder/internal/timeline"
)

// TestTimelineDeltasSumToAggregates is the timeline's accounting proof:
// on a run exercising every headline source (fault injection for
// retries, wear leveling for gap moves), the per-epoch deltas sum
// exactly to the end-of-run aggregates, and so does every named counter
// the epochs carry.
func TestTimelineDeltasSumToAggregates(t *testing.T) {
	cfg := testConfig(t, "lbm", SchemeHybrid)
	cfg.TimelineInterval = 10_000
	cfg.WearLeveling = true
	cfg.FaultRate = 0.02
	cfg.FaultSeed = 7
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tl := res.Timeline
	if tl == nil {
		t.Fatal("timeline enabled but Result.Timeline is nil")
	}
	if len(tl.Epochs) < 2 {
		t.Fatalf("only %d epochs; the run should span several intervals", len(tl.Epochs))
	}

	var instr, writes, retries, gaps, remaps uint64
	var readNJ, writeNJ float64
	counters := map[string]uint64{}
	for _, e := range tl.Epochs {
		instr += e.Instructions
		writes += e.StoreWrites
		retries += e.Retries
		gaps += e.GapMoves
		remaps += e.SpareRemaps
		readNJ += e.ReadNJ
		writeNJ += e.WriteNJ
		for name, d := range e.Counters {
			counters[name] += d
		}
	}
	if instr != res.InstructionsRetired {
		t.Errorf("epoch instructions sum to %d, run retired %d", instr, res.InstructionsRetired)
	}
	if writes != res.TotalStoreWrites {
		t.Errorf("epoch store writes sum to %d, store counted %d", writes, res.TotalStoreWrites)
	}
	if res.Faults == nil {
		t.Fatal("fault injection enabled but Result.Faults is nil")
	}
	if retries != res.Faults.Retries {
		t.Errorf("epoch retries sum to %d, injector counted %d", retries, res.Faults.Retries)
	}
	if res.Remap == nil {
		t.Fatal("decoder active but Result.Remap is nil")
	}
	if gaps != res.Remap.GapMoves || remaps != res.Remap.SpareRemaps {
		t.Errorf("epoch remap sums = %d gap / %d spare, decoder counted %d / %d",
			gaps, remaps, res.Remap.GapMoves, res.Remap.SpareRemaps)
	}
	// Energy accumulates float increments in probe order, and the epochs
	// sum in the same order, so even the float totals match exactly.
	if readNJ != res.ReadNJ || writeNJ != res.WriteNJ {
		t.Errorf("epoch energy sums = %g/%g nJ, meter read %g/%g", readNJ, writeNJ, res.ReadNJ, res.WriteNJ)
	}
	// Every counter the epochs name must sum to its end-of-run registry
	// value. exportRunMetrics's absolute overwrites happen after the
	// sampler finalizes, so export-only names never appear in epochs and
	// hot-path names are untouched by the export.
	final := res.Metrics.Snapshot()
	if len(counters) == 0 {
		t.Fatal("no registry counters appeared in any epoch")
	}
	for name, sum := range counters {
		if got := final.Counters[name]; got != sum {
			t.Errorf("counter %s: epoch deltas sum to %d, final registry has %d", name, sum, got)
		}
	}
}

// TestTimelineObserverNeutral is the golden half of the tentpole
// contract: enabling the timeline must not perturb simulated cycles.
// The sampler rides an observer hook whose extra processed cycles are
// dead ones, so a timeline-on run is cycle-identical to the same run
// with it off.
func TestTimelineObserverNeutral(t *testing.T) {
	base := testConfig(t, "lbm", SchemeHybrid)
	off, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	on := base
	// A deliberately awkward interval: boundaries land mid-window, not on
	// any natural period of the run.
	on.TimelineInterval = 7_321
	res, err := Run(on)
	if err != nil {
		t.Fatal(err)
	}
	if ko, kn := goldenKey(off), goldenKey(res); ko != kn {
		t.Errorf("timeline run diverged from the plain run\n off: %s\n  on: %s", ko, kn)
	}
	if res.Timeline == nil || len(res.Timeline.Epochs) == 0 {
		t.Error("timeline-on run produced no epochs")
	}

	// Same claim under wear leveling + fault injection, where the probe
	// touches the decoder and injector accounting too.
	fbase := testConfig(t, "mcf", SchemeEst)
	fbase.WearLeveling = true
	fbase.FaultRate = 0.02
	fbase.FaultSeed = 7
	foff, err := Run(fbase)
	if err != nil {
		t.Fatal(err)
	}
	fon := fbase
	fon.TimelineInterval = 7_321
	fres, err := Run(fon)
	if err != nil {
		t.Fatal(err)
	}
	if ko, kn := goldenKey(foff), goldenKey(fres); ko != kn {
		t.Errorf("fault-run timeline diverged\n off: %s\n  on: %s", ko, kn)
	}
}

// TestTimelineCapacityBoundsEpochs pins source decimation end-to-end:
// a tiny capacity forces repeated widening, the retained epoch count
// stays bounded, and the sums still reconcile.
func TestTimelineCapacityBoundsEpochs(t *testing.T) {
	cfg := testConfig(t, "astar", SchemeBaseline)
	cfg.TimelineInterval = 2_000
	cfg.TimelineCapacity = 4
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tl := res.Timeline
	if tl == nil {
		t.Fatal("no timeline")
	}
	if len(tl.Epochs) > 4 {
		t.Errorf("capacity 4 retained %d epochs", len(tl.Epochs))
	}
	if tl.EffectiveInterval <= tl.Interval {
		t.Errorf("effective interval %d never widened past %d over a %d-tick run",
			tl.EffectiveInterval, tl.Interval, res.Ticks)
	}
	var instr uint64
	for _, e := range tl.Epochs {
		instr += e.Instructions
	}
	if instr != res.InstructionsRetired {
		t.Errorf("decimated epochs sum to %d instructions, run retired %d", instr, res.InstructionsRetired)
	}
}

// TestTimelineOnEpochStreams pins the live hook: every closed epoch
// reaches Config.TimelineOnEpoch in order, matching the final series
// when no decimation occurred.
func TestTimelineOnEpochStreams(t *testing.T) {
	cfg := testConfig(t, "astar", SchemeBaseline)
	cfg.TimelineInterval = 10_000
	var streamed []timeline.Epoch
	cfg.TimelineOnEpoch = func(e timeline.Epoch) { streamed = append(streamed, e) }
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(streamed) == 0 {
		t.Fatal("no epochs streamed")
	}
	if len(streamed) != len(res.Timeline.Epochs) {
		t.Fatalf("streamed %d epochs, final timeline has %d", len(streamed), len(res.Timeline.Epochs))
	}
	for i, e := range res.Timeline.Epochs {
		if streamed[i].Start != e.Start || streamed[i].End != e.End || streamed[i].Instructions != e.Instructions {
			t.Errorf("streamed epoch %d = [%d,%d) %d instr; final = [%d,%d) %d instr",
				i, streamed[i].Start, streamed[i].End, streamed[i].Instructions, e.Start, e.End, e.Instructions)
		}
	}
}

// TestGridTimelineMerge pins the grid-level union: cell timelines merge
// into the grid report, and the merged deltas sum to the cells' totals.
func TestGridTimelineMerge(t *testing.T) {
	grid, err := RunGrid(Options{
		Instr: 10_000, Seed: 7, Tables: smallTables(t),
		Workloads:        []string{"astar", "lbm"},
		TimelineInterval: 10_000,
	}, []string{SchemeBaseline})
	if err != nil {
		t.Fatal(err)
	}
	gr, err := NewGridReport(grid)
	if err != nil {
		t.Fatal(err)
	}
	if gr.Timeline == nil || len(gr.Timeline.Epochs) == 0 {
		t.Fatal("grid report has no merged timeline")
	}
	var want uint64
	for _, w := range grid.Workloads {
		for _, s := range grid.Schemes {
			want += grid.Results[w][s].InstructionsRetired
		}
	}
	var got uint64
	for _, e := range gr.Timeline.Epochs {
		got += e.Instructions
	}
	if got != want {
		t.Errorf("merged timeline sums to %d instructions, cells retired %d", got, want)
	}
}
