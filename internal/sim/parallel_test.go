package sim

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"testing"
)

// parallelGridOptions is the shared fixture: a 2×2 grid small enough to
// run under the race detector yet wide enough to keep several workers
// busy at once.
func parallelGridOptions(t *testing.T) Options {
	return Options{
		Instr:     5_000,
		Seed:      7,
		Tables:    smallTables(t),
		Workloads: []string{"astar", "lbm"},
	}
}

func parallelGridReportJSON(t *testing.T, jobs int) []byte {
	t.Helper()
	opts := parallelGridOptions(t)
	opts.Jobs = jobs
	g, err := RunGrid(opts, []string{SchemeBaseline, SchemeHybrid})
	if err != nil {
		t.Fatalf("RunGrid(jobs=%d): %v", jobs, err)
	}
	rep, err := NewGridReport(g)
	if err != nil {
		t.Fatalf("NewGridReport(jobs=%d): %v", jobs, err)
	}
	b, err := json.MarshalIndent(rep.StripVolatile(), "", "  ")
	if err != nil {
		t.Fatalf("marshaling grid report: %v", err)
	}
	return b
}

// TestRunGridByteIdenticalAcrossJobs is the determinism contract behind
// the service's report cache: for a fixed seed, the grid report is
// byte-identical whether cells ran sequentially or on a worker pool,
// once volatile wall-clock fields are stripped.
func TestRunGridByteIdenticalAcrossJobs(t *testing.T) {
	seq := parallelGridReportJSON(t, 1)
	par := parallelGridReportJSON(t, 4)
	if !bytes.Equal(seq, par) {
		sl, pl := strings.Split(string(seq), "\n"), strings.Split(string(par), "\n")
		for i := range sl {
			if i >= len(pl) || sl[i] != pl[i] {
				t.Fatalf("reports diverge at line %d:\n  jobs=1: %s\n  jobs=4: %s", i+1, sl[i], pl[i])
			}
		}
		t.Fatalf("reports differ in length: jobs=1 %d bytes, jobs=4 %d bytes", len(seq), len(par))
	}
}

// TestRunGridProgressSerialized runs a parallel grid with both callback
// hooks mutating unsynchronized state: the grid's callback mutex is the
// only thing keeping that safe, so the race detector fails this test if
// serialization ever regresses. It also checks the Done counter is
// monotonically increasing and complete.
func TestRunGridProgressSerialized(t *testing.T) {
	opts := parallelGridOptions(t)
	opts.Jobs = 4
	opts.ProgressEvery = 1_000
	var (
		dones     []int // plain slice: appended from worker goroutines, safe only under the callback mutex
		cellTicks int   // likewise
		lastTotal int   //
	)
	opts.Progress = func(p GridProgress) {
		dones = append(dones, p.Done)
		lastTotal = p.Total
	}
	opts.CellProgress = func(workload, scheme string, info ProgressInfo) {
		if workload == "" || scheme == "" {
			t.Errorf("cell progress without identity: %q/%q", workload, scheme)
		}
		cellTicks++
	}
	g, err := RunGrid(opts, []string{SchemeBaseline, SchemeHybrid})
	if err != nil {
		t.Fatalf("RunGrid: %v", err)
	}
	if lastTotal != 4 || len(dones) != 4 {
		t.Fatalf("expected 4 completion callbacks with Total=4, got %d callbacks (Total=%d)", len(dones), lastTotal)
	}
	for i, d := range dones {
		if d != i+1 {
			t.Fatalf("Done not monotonically increasing: %v", dones)
		}
	}
	if cellTicks == 0 {
		t.Fatal("CellProgress never fired despite ProgressEvery being set")
	}
	for _, w := range g.Workloads {
		for _, s := range g.Schemes {
			if g.Results[w][s] == nil {
				t.Fatalf("missing result for %s/%s", w, s)
			}
		}
	}
}

// TestRunGridReportsEveryCellFailure: cells are independent, so one bad
// cell must not mask another's error, and the joined error names each.
func TestRunGridReportsEveryCellFailure(t *testing.T) {
	opts := parallelGridOptions(t)
	opts.Workloads = []string{"astar", "no-such-workload"}
	_, err := RunGrid(opts, []string{SchemeBaseline})
	if err == nil {
		t.Fatal("grid with an unknown workload should fail")
	}
	if !strings.Contains(err.Error(), "no-such-workload") {
		t.Fatalf("error does not name the failing cell: %v", err)
	}
}

// TestRunGridCtxCanceled: a canceled context yields an error, never a
// silently partial grid.
func TestRunGridCtxCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := RunGridCtx(ctx, parallelGridOptions(t), []string{SchemeBaseline})
	if err == nil {
		t.Fatal("canceled grid should return an error")
	}
	if !strings.Contains(err.Error(), "canceled") {
		t.Fatalf("error does not mention cancellation: %v", err)
	}
}
