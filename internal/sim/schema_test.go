package sim

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite the schema golden fixtures under testdata/")

// collapsedMaps lists JSON object paths whose keys are instrument names
// rather than schema: their (many, geometry-dependent) entries collapse
// to a single "*" child so the fixture pins document structure, not the
// instrument catalog.
var collapsedMaps = map[string]bool{
	"metrics.counters":            true,
	"metrics.gauges":              true,
	"metrics.histograms":          true,
	"metrics.grids":               true,
	"timeline.epochs[].counters":  true,
	"timeline.epochs[].quantiles": true,
}

// schemaPaths walks a decoded JSON document and records every key path,
// with array hops rendered as "[]" (first element only — JSON arrays are
// homogeneous here).
func schemaPaths(v any, path string, out map[string]bool) {
	switch x := v.(type) {
	case map[string]any:
		if collapsedMaps[path] {
			keys := make([]string, 0, len(x))
			for k := range x {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			p := path + ".*"
			out[p] = true
			if len(keys) > 0 {
				schemaPaths(x[keys[0]], p, out)
			}
			return
		}
		for k, val := range x {
			p := k
			if path != "" {
				p = path + "." + k
			}
			out[p] = true
			schemaPaths(val, p, out)
		}
	case []any:
		p := path + "[]"
		out[p] = true
		if len(x) > 0 {
			schemaPaths(x[0], p, out)
		}
	}
}

// checkSchema compares a document's key-path set against a checked-in
// fixture. Regenerate with: go test ./internal/sim -run Schema -update
func checkSchema(t *testing.T, fixture string, doc []byte) {
	t.Helper()
	var v any
	if err := json.Unmarshal(doc, &v); err != nil {
		t.Fatalf("document is not valid JSON: %v", err)
	}
	set := map[string]bool{}
	schemaPaths(v, "", set)
	lines := make([]string, 0, len(set))
	for p := range set {
		lines = append(lines, p)
	}
	sort.Strings(lines)
	got := strings.Join(lines, "\n") + "\n"

	path := filepath.Join("testdata", fixture)
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing fixture (regenerate with -update): %v", err)
	}
	if got == string(want) {
		return
	}
	wantSet := map[string]bool{}
	for _, l := range strings.Split(strings.TrimSpace(string(want)), "\n") {
		wantSet[l] = true
	}
	for _, l := range lines {
		if !wantSet[l] {
			t.Errorf("new key path not in fixture: %s", l)
		}
		delete(wantSet, l)
	}
	for l := range wantSet {
		t.Errorf("fixture key path missing from document: %s", l)
	}
	t.Errorf("schema drifted from %s; if intentional, regenerate with -update and note it in docs/METRICS.md", path)
}

// TestReportSchemaGolden pins the run-report JSON layout (with tracing
// enabled, so the trace section is exercised too): consumers parse these
// documents, so key renames and removals must be deliberate.
func TestReportSchemaGolden(t *testing.T) {
	cfg := testConfig(t, "lbm", SchemeHybrid)
	cfg.TraceSample = 1
	cfg.TimelineInterval = 20_000
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := NewReport(res).WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	checkSchema(t, "report_schema.golden", buf.Bytes())
}

// TestGridReportSchemaGolden pins the grid-report JSON layout.
func TestGridReportSchemaGolden(t *testing.T) {
	grid, err := RunGrid(Options{
		Instr: 10_000, Seed: 7, Tables: smallTables(t),
		Workloads:        []string{"astar"},
		TimelineInterval: 10_000,
	}, []string{SchemeBaseline})
	if err != nil {
		t.Fatal(err)
	}
	gr, err := NewGridReport(grid)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := gr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	checkSchema(t, "grid_report_schema.golden", buf.Bytes())
}
