package sim

import (
	"bytes"
	"strings"
	"testing"
)

func faultConfig(t *testing.T, workload, scheme string, rate float64) Config {
	cfg := testConfig(t, workload, scheme)
	cfg.FaultRate = rate
	cfg.FaultSeed = 7
	return cfg
}

// normalizedReport freezes a result into its report with the wall-clock
// fields zeroed — the only non-deterministic content a report carries.
func normalizedReport(res *Result) *Report {
	res.WallClock = 0
	res.Metrics.SetCounter("sim.wall_clock_us", 0)
	return NewReport(res)
}

// TestGoldenWithFaults pins the determinism guarantee of docs/FAULTS.md:
// a fixed fault seed makes two runs byte-identical, report and faults
// section included.
func TestGoldenWithFaults(t *testing.T) {
	render := func() []byte {
		res, err := Run(faultConfig(t, "lbm", SchemeEst, 0.02))
		if err != nil {
			t.Fatal(err)
		}
		if res.Faults == nil {
			t.Fatal("faults accounting missing on an injection run")
		}
		if res.Faults.Injected == 0 || res.Faults.Retries == 0 {
			t.Fatalf("expected injected faults and retries, got %+v", res.Faults)
		}
		rep := normalizedReport(res)
		if rep.Faults == nil || rep.Faults.Retries != res.Faults.Retries {
			t.Fatalf("report faults section mismatch: %+v vs %+v", rep.Faults, res.Faults)
		}
		if rep.Faults.RetryLatency.Count != res.Faults.Retries {
			t.Fatalf("retry-latency histogram count %d != retries %d",
				rep.Faults.RetryLatency.Count, res.Faults.Retries)
		}
		var buf bytes.Buffer
		if err := rep.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a, b := render(), render()
	if !bytes.Equal(a, b) {
		t.Fatal("same fault seed produced different reports")
	}
}

// TestFaultFreeRunIdenticalToBaseline pins the FaultRate=0 contract:
// the injection machinery must be invisible when disabled.
func TestFaultFreeRunIdenticalToBaseline(t *testing.T) {
	plain, err := Run(testConfig(t, "astar", SchemeEst))
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig(t, "astar", SchemeEst)
	cfg.FaultSeed = 99 // ignored without a rate
	cfg.RetryMax = 5
	off, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if off.Faults != nil {
		t.Fatal("faults accounting present on a fault-free run")
	}
	if plain.Ticks != off.Ticks || plain.Stats != off.Stats {
		t.Fatalf("disabled injection perturbed the run: %d vs %d ticks", plain.Ticks, off.Ticks)
	}
}

// TestEstRetriesExceedBasic is the reliability experiment's core claim:
// under the same fault rate, LADDER-Est's stale partial-counter margins
// make it fail program-and-verify more often than LADDER-Basic, whose
// exact counters always provision the true requirement (zero margin).
func TestEstRetriesExceedBasic(t *testing.T) {
	retriesPerKWrite := func(scheme string) float64 {
		res, err := Run(faultConfig(t, "lbm", scheme, 0.02))
		if err != nil {
			t.Fatalf("%s: %v", scheme, err)
		}
		if res.Stats.DataWrites == 0 {
			t.Fatalf("%s: no data writes", scheme)
		}
		return 1000 * float64(res.Faults.Retries) / float64(res.Stats.DataWrites)
	}
	est := retriesPerKWrite(SchemeEst)
	basic := retriesPerKWrite(SchemeBasic)
	if est <= basic {
		t.Fatalf("Est retries/kwrite %v should exceed Basic %v (stale-margin effect)", est, basic)
	}
}

// TestSparePoolExhaustionFailsRun drives the degradation path to its
// documented end state: when a bank's spare rows run out, the run
// surfaces an error instead of silently mis-modeling a broken device.
func TestSparePoolExhaustionFailsRun(t *testing.T) {
	cfg := faultConfig(t, "lbm", SchemeEst, 0.9)
	cfg.SpareRows = 1
	_, err := Run(cfg)
	if err == nil {
		t.Fatal("expected spare-pool exhaustion to fail the run")
	}
	if !strings.Contains(err.Error(), "spare-row pool exhausted") {
		t.Fatalf("unexpected error: %v", err)
	}
}

// TestFaultMetricsExported checks the registry carries the fault
// counters a report or scrape consumer reads.
func TestFaultMetricsExported(t *testing.T) {
	res, err := Run(faultConfig(t, "lbm", SchemeEst, 0.02))
	if err != nil {
		t.Fatal(err)
	}
	snap := res.Metrics.Snapshot()
	for _, name := range []string{"fault.checked", "fault.injected", "fault.retries"} {
		if snap.Counters[name] == 0 {
			t.Fatalf("counter %s missing or zero", name)
		}
	}
}
