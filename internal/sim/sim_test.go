package sim

import (
	"os"
	"path/filepath"
	"sync"
	"testing"

	"ladder/internal/circuit"
	"ladder/internal/reram"
	"ladder/internal/timing"
	"ladder/internal/trace"
)

var (
	tablesOnce sync.Once
	testTables *timing.TableSet
	tablesErr  error
)

// smallTables builds a 128×128 table set so sim tests avoid the full
// 512×512 generation; the memory geometry shrinks to match.
func smallTables(t *testing.T) *timing.TableSet {
	t.Helper()
	tablesOnce.Do(func() {
		p := circuit.DefaultParams()
		p.N = 128
		testTables, tablesErr = timing.NewTableSet(p)
	})
	if tablesErr != nil {
		t.Fatal(tablesErr)
	}
	return testTables
}

func smallGeometry() reram.Geometry {
	return reram.Geometry{
		Channels:         2,
		RanksPerChannel:  2,
		BanksPerRank:     8,
		MatGroupsPerBank: 64,
		MatRows:          128,
	}
}

func testConfig(t *testing.T, workload, scheme string) Config {
	return Config{
		Workload:     workload,
		Scheme:       scheme,
		InstrPerCore: 60_000,
		Seed:         42,
		Geom:         smallGeometry(),
		Tables:       smallTables(t),
	}
}

func TestRunRejectsUnknownInputs(t *testing.T) {
	if _, err := Run(Config{}); err == nil {
		t.Fatal("missing workload should fail")
	}
	cfg := testConfig(t, "nonesuch", SchemeBaseline)
	if _, err := Run(cfg); err == nil {
		t.Fatal("unknown workload should fail")
	}
	cfg = testConfig(t, "astar", "nonesuch")
	if _, err := Run(cfg); err == nil {
		t.Fatal("unknown scheme should fail")
	}
}

func TestRunDeterministic(t *testing.T) {
	a, err := Run(testConfig(t, "astar", SchemeBaseline))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(testConfig(t, "astar", SchemeBaseline))
	if err != nil {
		t.Fatal(err)
	}
	if a.Ticks != b.Ticks || a.PerCoreIPC[0] != b.PerCoreIPC[0] {
		t.Fatalf("non-deterministic: %v/%v vs %v/%v", a.Ticks, a.PerCoreIPC, b.Ticks, b.PerCoreIPC)
	}
}

func TestRunSingleWorkloadBasics(t *testing.T) {
	res, err := Run(testConfig(t, "lbm", SchemeBaseline))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PerCoreIPC) != 1 {
		t.Fatalf("cores = %d, want 1", len(res.PerCoreIPC))
	}
	if res.PerCoreIPC[0] <= 0 || res.PerCoreIPC[0] > 1 {
		t.Fatalf("IPC = %v out of (0,1]", res.PerCoreIPC[0])
	}
	if res.Stats.DataWrites == 0 || res.Stats.DataReads == 0 {
		t.Fatal("no memory traffic simulated")
	}
	if res.Stats.AvgWriteServiceNs() <= 0 {
		t.Fatal("write service time not recorded")
	}
	if res.ReadNJ <= 0 || res.WriteNJ <= 0 {
		t.Fatal("energy not metered")
	}
}

func TestRunMixUsesFourCores(t *testing.T) {
	res, err := Run(testConfig(t, "mix-1", SchemeBaseline))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PerCoreIPC) != 4 {
		t.Fatalf("cores = %d, want 4", len(res.PerCoreIPC))
	}
	for i, ipc := range res.PerCoreIPC {
		if ipc <= 0 {
			t.Fatalf("core %d IPC = %v", i, ipc)
		}
	}
}

// TestSchemeOrdering is the headline sanity check: on a write-heavy
// workload the content/location-aware schemes must order as the paper's
// Figure 12 — baseline slowest, Oracle fastest, LADDER close to Oracle.
func TestSchemeOrdering(t *testing.T) {
	service := map[string]float64{}
	for _, s := range []string{SchemeBaseline, SchemeSplitReset, SchemeEst, SchemeOracle} {
		res, err := Run(testConfig(t, "lbm", s))
		if err != nil {
			t.Fatalf("%s: %v", s, err)
		}
		service[s] = res.Stats.AvgWriteServiceNs()
	}
	if service[SchemeOracle] >= service[SchemeBaseline] {
		t.Fatalf("oracle %v should beat baseline %v", service[SchemeOracle], service[SchemeBaseline])
	}
	if service[SchemeEst] >= service[SchemeBaseline] {
		t.Fatalf("est %v should beat baseline %v", service[SchemeEst], service[SchemeBaseline])
	}
	if service[SchemeSplitReset] >= service[SchemeBaseline] {
		t.Fatalf("split-reset %v should beat baseline %v", service[SchemeSplitReset], service[SchemeBaseline])
	}
	if service[SchemeOracle] > service[SchemeEst] {
		t.Fatalf("oracle %v should not lose to est %v", service[SchemeOracle], service[SchemeEst])
	}
}

func TestSpeedupOverBaseline(t *testing.T) {
	base, err := Run(testConfig(t, "lbm", SchemeBaseline))
	if err != nil {
		t.Fatal(err)
	}
	est, err := Run(testConfig(t, "lbm", SchemeEst))
	if err != nil {
		t.Fatal(err)
	}
	sp := est.WeightedSpeedup(base)
	if sp <= 1.0 {
		t.Fatalf("LADDER-Est speedup = %v, want > 1 on write-heavy lbm", sp)
	}
}

func TestVerifyRoundTripAllSchemes(t *testing.T) {
	for _, s := range SchemeNames() {
		cfg := testConfig(t, "astar", s)
		cfg.InstrPerCore = 30_000
		cfg.Verify = true
		if _, err := Run(cfg); err != nil {
			t.Fatalf("%s: %v", s, err)
		}
	}
}

func TestExtraTrafficOrdering(t *testing.T) {
	// Figure 14: Basic's SMB reads dominate; Est cuts reads; Hybrid cuts
	// writes further via shared low-precision lines.
	frac := map[string][2]float64{}
	for _, s := range []string{SchemeBasic, SchemeEst, SchemeHybrid} {
		cfg := testConfig(t, "mcf", s)
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("%s: %v", s, err)
		}
		frac[s] = [2]float64{res.Stats.ExtraReadFraction(), res.Stats.ExtraWriteFraction()}
	}
	if frac[SchemeBasic][0] <= frac[SchemeEst][0] {
		t.Fatalf("basic extra reads %v should exceed est %v", frac[SchemeBasic][0], frac[SchemeEst][0])
	}
	if frac[SchemeEst][1] > frac[SchemeBasic][1] {
		t.Fatalf("est extra writes %v should not exceed basic %v", frac[SchemeEst][1], frac[SchemeBasic][1])
	}
}

func TestShrinkRangeSlowsContentAwareWrites(t *testing.T) {
	// Compressing the content-induced latency spread leaves the baseline
	// untouched (the worst-content guardband is preserved) and makes the
	// content-aware scheme's writes slower on average. The small test
	// crossbar's content axis only spans 0..127, so use a sparse workload
	// without resident fill to keep counts inside the table domain.
	mk := func(scheme string) Config {
		cfg := testConfig(t, "libq", scheme)
		cfg.ResidentLevel = -1
		return cfg
	}
	base, err := Run(mk(SchemeBaseline))
	if err != nil {
		t.Fatal(err)
	}
	cfgBaseShrunk := mk(SchemeBaseline)
	cfgBaseShrunk.ShrinkRange = 2
	baseShrunk, err := Run(cfgBaseShrunk)
	if err != nil {
		t.Fatal(err)
	}
	if base.Stats.AvgWriteServiceNs() != baseShrunk.Stats.AvgWriteServiceNs() {
		t.Fatalf("baseline service changed under shrink: %v vs %v",
			base.Stats.AvgWriteServiceNs(), baseShrunk.Stats.AvgWriteServiceNs())
	}
	full, err := Run(mk(SchemeOracle))
	if err != nil {
		t.Fatal(err)
	}
	cfgShrunk := mk(SchemeOracle)
	cfgShrunk.ShrinkRange = 2
	shrunk, err := Run(cfgShrunk)
	if err != nil {
		t.Fatal(err)
	}
	if shrunk.Stats.AvgWriteServiceNs() <= full.Stats.AvgWriteServiceNs() {
		t.Fatalf("shrunk-range service %v should exceed full-range %v",
			shrunk.Stats.AvgWriteServiceNs(), full.Stats.AvgWriteServiceNs())
	}
	if shrunk.Stats.AvgWriteServiceNs() >= base.Stats.AvgWriteServiceNs() {
		t.Fatalf("shrunk-range service %v should stay below baseline %v",
			shrunk.Stats.AvgWriteServiceNs(), base.Stats.AvgWriteServiceNs())
	}
}

func TestCrashRecoveryConservativeThenReadapts(t *testing.T) {
	cfg := testConfig(t, "lbm", SchemeEst)
	cfg.InstrPerCore = 80_000
	cfg.CrashAtInstr = 40_000
	cfg.Verify = true
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.PreCrashStats == nil || res.PostCrashStats == nil {
		t.Fatal("crash stats missing")
	}
	if res.PostCrashStats.DataWrites == 0 {
		t.Fatal("no writes after recovery")
	}
	// The conservative correction makes post-crash writes slower at first
	// but execution continues correctly (Verify passed) and service stays
	// bounded by the worst case.
	post := res.PostCrashStats.AvgWriteServiceNs()
	if post <= 0 {
		t.Fatal("post-crash service not recorded")
	}
	worst := res.PreCrashStats.AvgWriteServiceNs() // sanity anchor
	if worst <= 0 {
		t.Fatal("pre-crash service not recorded")
	}
}

func TestLineVWLDegradesMetadataLocality(t *testing.T) {
	// Section 6.4: line-granularity wear leveling scatters a page's
	// blocks across wordline groups, hurting LRS-metadata locality
	// relative to segment-based leveling.
	plain, err := Run(testConfig(t, "lbm", SchemeEst))
	if err != nil {
		t.Fatal(err)
	}
	cfgLine := testConfig(t, "lbm", SchemeEst)
	cfgLine.WearLeveling = true
	cfgLine.VWLMode = "line"
	cfgLine.Verify = true
	line, err := Run(cfgLine)
	if err != nil {
		t.Fatal(err)
	}
	if line.Stats.MetaReads <= plain.Stats.MetaReads {
		t.Fatalf("line-mode VWL should increase metadata reads: %d vs %d",
			line.Stats.MetaReads, plain.Stats.MetaReads)
	}
}

func TestVWLModeValidation(t *testing.T) {
	cfg := testConfig(t, "astar", SchemeBaseline)
	cfg.WearLeveling = true
	cfg.VWLMode = "bogus"
	if _, err := Run(cfg); err == nil {
		t.Fatal("unknown VWL mode should fail")
	}
}

func TestWearLevelingRuns(t *testing.T) {
	cfg := testConfig(t, "lbm", SchemeHybrid)
	cfg.WearLeveling = true
	cfg.Verify = true
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.GapMoves == 0 {
		t.Fatal("expected VWL gap moves on a write-heavy run")
	}
	// Wear leveling costs a little performance but must not change
	// functional behavior (Verify passed above).
	plain, err := Run(testConfig(t, "lbm", SchemeHybrid))
	if err != nil {
		t.Fatal(err)
	}
	// Short runs leave few writes, so the static WL re-scatter adds
	// noticeable variance; full-scale runs land near the paper's ~1%.
	ratio := res.AvgIPC() / plain.AvgIPC()
	if ratio < 0.6 || ratio > 1.25 {
		t.Fatalf("wear-leveled IPC ratio %v implausible", ratio)
	}
}

func TestCounterDiffRecordedForEstVariants(t *testing.T) {
	for _, s := range []string{SchemeEst, SchemeEstNoShift, SchemeBasic} {
		res, err := Run(testConfig(t, "astar", s))
		if err != nil {
			t.Fatalf("%s: %v", s, err)
		}
		if res.Stats.CounterDiffN == 0 {
			t.Fatalf("%s: no counter-accuracy samples", s)
		}
	}
}

func TestBasicCountersAccurate(t *testing.T) {
	// LADDER-Basic keeps exact counters, so its estimated-vs-accurate gap
	// must be ~zero.
	res, err := Run(testConfig(t, "astar", SchemeBasic))
	if err != nil {
		t.Fatal(err)
	}
	if d := res.Stats.AvgCounterDiff(); d < -1 || d > 1 {
		t.Fatalf("basic counter diff = %v, want ≈0", d)
	}
}

func TestFigureSchemesSubsetOfSchemeNames(t *testing.T) {
	all := map[string]bool{}
	for _, s := range SchemeNames() {
		all[s] = true
	}
	for _, s := range FigureSchemes() {
		if !all[s] {
			t.Fatalf("figure scheme %s missing from SchemeNames", s)
		}
	}
}

func TestTraceReplayRun(t *testing.T) {
	// Record a short trace, then replay it through the simulator; replays
	// are deterministic and verify end-to-end.
	prof := trace.Profiles["astar"]
	prof.WorkingSetPages = 2000
	gen, err := trace.NewGenerator(prof, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "astar.trace")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := trace.Record(f, gen, "astar", 3, 2000); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	cfg := testConfig(t, "astar", SchemeEst)
	cfg.TraceFile = path
	cfg.InstrPerCore = 30_000
	cfg.Verify = true
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Ticks != b.Ticks || a.PerCoreIPC[0] != b.PerCoreIPC[0] {
		t.Fatal("trace replay not deterministic")
	}
	if len(a.PerCoreIPC) != 1 {
		t.Fatalf("trace replay should use one core, got %d", len(a.PerCoreIPC))
	}
}

func TestTraceReplayRejectsOversizedTrace(t *testing.T) {
	path := filepath.Join(t.TempDir(), "big.trace")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	w, err := trace.NewWriter(f, "x", 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(trace.Access{Line: 1 << 62}); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	cfg := testConfig(t, "astar", SchemeBaseline)
	cfg.TraceFile = path
	if _, err := Run(cfg); err == nil {
		t.Fatal("oversized trace should be rejected")
	}
}

func TestLifetimeSweep(t *testing.T) {
	opts := Options{Instr: 15_000, Seed: 1, Tables: smallTables(t), Workloads: []string{"astar"}}
	study, err := LifetimeSweep(opts, SchemeHybrid, []int{16, 64}, []int{0, 16})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(study.Cells); got != 4 {
		t.Fatalf("cells = %d, want 4 (2 periods x 2 spare sizes)", got)
	}
	for _, c := range study.Cells {
		if c.RelativeLifetime <= 0 || c.IPCRatio <= 0 {
			t.Fatalf("unpopulated cell: %+v", c)
		}
	}
	if study.Remap.GapMoves == 0 {
		t.Fatal("sweep recorded no gap moves; decoder rotation never ran")
	}
	rep := study.Report()
	if rep.Schema != LifetimeReportSchema {
		t.Fatalf("schema = %q", rep.Schema)
	}
	if len(rep.Cells) != 4 || rep.Remap.GapMoves != study.Remap.GapMoves {
		t.Fatal("report does not mirror the study")
	}
	rows, series := study.Rows(), study.Series()
	if len(rows) != 2 || len(series) != 4 {
		t.Fatalf("rows = %d series = %d, want 2 and 4", len(rows), len(series))
	}
	for _, s := range series {
		if _, ok := rows[0].Values[s]; !ok {
			t.Fatalf("row missing series %q", s)
		}
	}
}

func TestCacheSizeSweepAndLowRows(t *testing.T) {
	opts := Options{Instr: 15_000, Seed: 1, Tables: smallTables(t), Workloads: []string{"astar"}}
	// Inject the small geometry through config? Options builds default
	// geometry; use the tables' scale anyway via the public path.
	rows, err := CacheSizeSweep(opts, SchemeHybrid, []int{16, 64})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0].Values["64KB"] <= 0 {
		t.Fatalf("cache sweep rows = %+v", rows)
	}
	lp, err := LowPrecisionSweep(opts, []int{0, 128})
	if err != nil {
		t.Fatal(err)
	}
	if len(lp) != 1 || lp[0].Values["rows=128 svc"] <= 0 {
		t.Fatalf("low-precision rows = %+v", lp)
	}
}
