package sim

import (
	"context"
	"strings"
	"testing"

	"ladder/internal/core"
)

// TestCustomSchemeViaRegistry proves the registry is the real
// construction path: a scheme registered from outside the simulator is
// runnable by name, and a registered clone of the baseline policy
// reproduces the baseline's results exactly.
func TestCustomSchemeViaRegistry(t *testing.T) {
	const name = "test-registered-baseline"
	if !core.SchemeRegistered(name) {
		core.RegisterScheme(name, func(env *core.Env, _ core.MetaCacheConfig) (core.Scheme, error) {
			return core.NewBaseline(env), nil
		})
	}
	found := false
	for _, n := range SchemeNames() {
		if n == name {
			found = true
		}
	}
	if !found {
		t.Fatalf("SchemeNames() = %v does not list the registered scheme", SchemeNames())
	}
	custom, err := Run(testConfig(t, "astar", name))
	if err != nil {
		t.Fatalf("running a registered custom scheme: %v", err)
	}
	builtin, err := Run(testConfig(t, "astar", SchemeBaseline))
	if err != nil {
		t.Fatal(err)
	}
	if custom.Ticks != builtin.Ticks || custom.Stats != builtin.Stats {
		t.Errorf("registered baseline clone diverged from the built-in: ticks %d vs %d",
			custom.Ticks, builtin.Ticks)
	}
}

func TestUnknownSchemeError(t *testing.T) {
	_, err := Run(testConfig(t, "astar", "no-such-scheme"))
	if err == nil {
		t.Fatal("unknown scheme must fail")
	}
	if !strings.Contains(err.Error(), "no-such-scheme") {
		t.Errorf("error %q does not name the unknown scheme", err)
	}
}

// TestRunGridCtxCancellation checks that a canceled context stops the
// grid: no cells dispatch and the cancellation surfaces as an error.
func TestRunGridCtxCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	opts := Options{Instr: 1_000, Seed: 42, Tables: smallTables(t), Workloads: []string{"astar"}}
	_, err := RunGridCtx(ctx, opts, []string{SchemeBaseline})
	if err == nil {
		t.Fatal("canceled grid must return an error")
	}
	if !strings.Contains(err.Error(), "canceled") {
		t.Errorf("error %q does not mention cancellation", err)
	}
}
