package sim

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"ladder/internal/chaos"
	"ladder/internal/core"
)

// chaosScheme wraps the baseline policy with a chaos failpoint on the
// write path: disarmed it is byte-for-byte the baseline, armed it fails
// the way a buggy scheme would (panic, injected error via panic — the
// Scheme interface has no error returns on this path).
type chaosScheme struct{ core.Scheme }

func (c *chaosScheme) Enqueue(req *core.WriteRequest) ([]core.AuxRead, []core.MetaWriteback) {
	chaos.Hit("sim.scheme.enqueue") //nolint:errcheck // panic-only failpoint
	return c.Scheme.Enqueue(req)
}

const chaosSchemeName = "test-chaos-baseline"

func registerChaosScheme() {
	if core.SchemeRegistered(chaosSchemeName) {
		return
	}
	core.RegisterScheme(chaosSchemeName, func(env *core.Env, _ core.MetaCacheConfig) (core.Scheme, error) {
		return &chaosScheme{Scheme: core.NewBaseline(env)}, nil
	})
}

// TestGridPanicIsolation pins the satellite fix: a panic in one grid
// cell's worker used to kill the whole process; now it converts to that
// cell's error — stack included — and the grid returns it like any
// other failure while the process (and this test binary) survives.
func TestGridPanicIsolation(t *testing.T) {
	registerChaosScheme()
	chaos.Arm("sim.scheme.enqueue", chaos.Action{Panic: "injected scheme bug", Times: 1})
	defer chaos.Reset()

	opts := Options{
		Instr: 5_000, Seed: 42, Tables: smallTables(t),
		Workloads: []string{"astar"}, Jobs: 1,
	}
	_, err := RunGridCtx(context.Background(), opts, []string{chaosSchemeName})
	if err == nil {
		t.Fatal("grid with a panicking scheme must fail")
	}
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("error does not unwrap to *PanicError: %v", err)
	}
	if pe.Value != "injected scheme bug" {
		t.Fatalf("panic value = %v, want the injected one", pe.Value)
	}
	if !strings.Contains(string(pe.Stack), "Enqueue") {
		t.Fatalf("panic stack does not show the panic site:\n%s", pe.Stack)
	}
	if !strings.Contains(err.Error(), "astar/"+chaosSchemeName) {
		t.Fatalf("error does not name the failed cell: %v", err)
	}
}

// TestGridPanicDoesNotMaskHealthyCells checks a panicking cell fails
// only itself: the healthy cell's run completed or was canceled, and
// the joined error carries the panic without the process dying.
func TestGridPanicDoesNotMaskHealthyCells(t *testing.T) {
	registerChaosScheme()
	chaos.Arm("sim.scheme.enqueue", chaos.Action{Panic: "injected scheme bug", Times: 1})
	defer chaos.Reset()

	opts := Options{
		Instr: 5_000, Seed: 42, Tables: smallTables(t),
		Workloads: []string{"astar"}, Jobs: 2,
	}
	_, err := RunGridCtx(context.Background(), opts, []string{SchemeBaseline, chaosSchemeName})
	if err == nil {
		t.Fatal("grid must report the panicking cell")
	}
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("error does not unwrap to *PanicError: %v", err)
	}
	// The baseline cell must never surface a panic of its own.
	if strings.Count(err.Error(), "panic:") != 1 {
		t.Fatalf("expected exactly one panicking cell, got: %v", err)
	}
}

// TestRunCtxDeadline pins the deadline plumbing: a run whose context
// expires aborts at the next interrupt poll with the context's cause,
// instead of simulating to completion.
func TestRunCtxDeadline(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	cfg := testConfig(t, "lbm", SchemeBaseline)
	cfg.InstrPerCore = 50_000_000 // far beyond what 20ms of wall clock can simulate
	start := time.Now()
	_, err := RunCtx(ctx, cfg)
	if err == nil {
		t.Fatal("run must abort when its context deadline passes")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("error = %v, want context.DeadlineExceeded in the chain", err)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("run aborted only after %v — interrupt polling is not working", elapsed)
	}
}

// TestRunCtxCancelCause checks the structured cancellation cause — what
// the service's watchdog attaches — survives to the run error.
func TestRunCtxCancelCause(t *testing.T) {
	cause := errors.New("watchdog: no heartbeat")
	ctx, cancel := context.WithCancelCause(context.Background())
	cancel(cause)
	cfg := testConfig(t, "astar", SchemeBaseline)
	cfg.InstrPerCore = 1_000_000
	_, err := RunCtx(ctx, cfg)
	if err == nil {
		t.Fatal("run under a pre-canceled context must fail")
	}
	if !errors.Is(err, cause) {
		t.Fatalf("error = %v, want the cancellation cause in the chain", err)
	}
}
