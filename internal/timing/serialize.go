package timing

import (
	"encoding/gob"
	"fmt"
	"io"
	"math"
	"os"
)

// Serialization.
//
// Two forms exist:
//
//   - The SPD ROM image (Section 6.3): the memory-module manufacturer
//     programs the write-timing table into a Serial Presence Detect ROM,
//     one byte per entry (8×8×8 = 512 B), which the host loads at boot.
//     The byte encoding quantizes latency over [MinNs, MaxNs] and always
//     rounds up, so a decoded table is never optimistic.
//
//   - A full-precision gob stream for caching generated TableSets on
//     disk (regenerating the 512×512 tables from the circuit model takes
//     seconds; loading the cache is instant).

// SPDBytes is the ROM image size: one byte per table entry.
const SPDBytes = Buckets * Buckets * Buckets

// EncodeSPD quantizes the table into the 512-byte ROM image.
func (t *Table) EncodeSPD() [SPDBytes]byte {
	var out [SPDBytes]byte
	span := float64(MaxLatencyNs - MinLatencyNs)
	i := 0
	for wb := 0; wb < Buckets; wb++ {
		for bb := 0; bb < Buckets; bb++ {
			for cb := 0; cb < Buckets; cb++ {
				frac := (t.LatNs[wb][bb][cb] - MinLatencyNs) / span
				code := int(math.Ceil(frac * 255))
				if code < 0 {
					code = 0
				}
				if code > 255 {
					code = 255
				}
				out[i] = byte(code)
				i++
			}
		}
	}
	return out
}

// DecodeSPD reconstructs a (conservatively quantized) table from a ROM
// image.
func DecodeSPD(spd [SPDBytes]byte, granularity int, content ContentDim) (*Table, error) {
	if granularity <= 0 {
		return nil, fmt.Errorf("timing: granularity %d must be positive", granularity)
	}
	t := &Table{Granularity: granularity, Content: content}
	span := float64(MaxLatencyNs - MinLatencyNs)
	i := 0
	for wb := 0; wb < Buckets; wb++ {
		for bb := 0; bb < Buckets; bb++ {
			for cb := 0; cb < Buckets; cb++ {
				t.LatNs[wb][bb][cb] = MinLatencyNs + float64(spd[i])/255*span
				i++
			}
		}
	}
	return t, nil
}

// Save writes the table set to w in full precision.
func (ts *TableSet) Save(w io.Writer) error {
	return gob.NewEncoder(w).Encode(ts)
}

// LoadTableSet reads a table set saved with Save.
func LoadTableSet(r io.Reader) (*TableSet, error) {
	var ts TableSet
	if err := gob.NewDecoder(r).Decode(&ts); err != nil {
		return nil, fmt.Errorf("timing: decoding table set: %w", err)
	}
	if ts.WL == nil || ts.BL == nil || ts.Half == nil {
		return nil, fmt.Errorf("timing: decoded table set is incomplete")
	}
	return &ts, nil
}

// SaveFile and LoadTableSetFile are file-path conveniences.
func (ts *TableSet) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := ts.Save(f); err != nil {
		return err
	}
	return f.Close()
}

// LoadTableSetFile reads a table set from a file written by SaveFile.
func LoadTableSetFile(path string) (*TableSet, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return LoadTableSet(f)
}
