// Package timing converts crossbar operating points into RESET latencies
// and builds the write-timing tables the LADDER memory controller consults
// (paper Sections 3.1 and 5).
//
// The physical law is t = C·e^(−k·|Vd|) (Yu & Wong, IEEE EDL 2010): RESET
// time grows exponentially as the voltage drop across the target cell
// shrinks. The paper quotes a 10× slowdown per 0.4 V of lost drive and a
// resulting tWR range of 29–658 ns (Table 2). We calibrate C and k so that
// the best and worst corners of the 8×8×8 table domain (WL bucket × BL
// bucket × C_lrs bucket, granularity 64 for a 512×512 mat) land exactly on
// that published range; latencies are clamped to it.
package timing

import (
	"errors"
	"fmt"
	"math"

	"ladder/internal/circuit"
)

// Table 2 tWR range in nanoseconds.
const (
	// MinLatencyNs is the fastest RESET the device supports (best corner).
	MinLatencyNs = 29
	// MaxLatencyNs is the pessimistic worst-case RESET latency the
	// baseline scheme applies to every write.
	MaxLatencyNs = 658
)

// Model maps a target-cell voltage drop to a RESET latency.
type Model struct {
	// C and K define t = C·e^(−K·Vd) nanoseconds.
	C, K float64
	// MinNs and MaxNs clamp the output range.
	MinNs, MaxNs float64
}

// Latency returns the RESET latency in nanoseconds for voltage drop vd.
func (m Model) Latency(vd float64) float64 {
	t := m.C * math.Exp(-m.K*math.Abs(vd))
	if t < m.MinNs {
		return m.MinNs
	}
	if t > m.MaxNs {
		return m.MaxNs
	}
	return t
}

// PhysicalK is the RESET-law exponent from device characterization: the
// paper quotes a 10× latency increase per 0.4 V of lost drive
// (Govoreanu et al., IEDM 2011), so k = ln(10)/0.4 ≈ 5.76 /V.
var PhysicalK = math.Log(10) / 0.4

// Calibrate fits a Model to the crossbar described by p: it evaluates the
// best and worst bucket corners of the table domain with the reduced
// circuit model and solves C and K so the first table entry maps to
// MinLatencyNs and the last to MaxLatencyNs — the published tWR window
// (Table 2). Fitting K to the array's own Vd range (rather than pinning
// the physical PhysicalK) keeps the full window usable for any crossbar
// size; for the paper's 512×512 mat the fitted K lands in the same
// regime as the device law.
func Calibrate(p circuit.Params) (Model, error) {
	if err := p.Validate(); err != nil {
		return Model{}, err
	}
	f, err := circuit.NewFastModel(p)
	if err != nil {
		return Model{}, err
	}
	gran := p.N / Buckets
	if gran == 0 {
		gran = 1
	}
	cols := func(high int) []int {
		cs := make([]int, p.SelectedCells)
		for i := range cs {
			cs[i] = high - p.SelectedCells + i
		}
		return cs
	}
	clampWL := func(c int) int {
		if c > p.N-p.SelectedCells {
			return p.N - p.SelectedCells
		}
		return c
	}
	best, err := f.Solve(circuit.FastOp{
		Row:   gran - 1,
		Cols:  cols(gran),
		WLLRS: clampWL(gran - 1),
		BLLRS: p.N - 1,
	})
	if err != nil {
		return Model{}, fmt.Errorf("calibrating best corner: %w", err)
	}
	worst, err := f.Solve(circuit.FastOp{
		Row:   p.N - 1,
		Cols:  cols(p.N),
		WLLRS: p.N - p.SelectedCells,
		BLLRS: p.N - 1,
	})
	if err != nil {
		return Model{}, fmt.Errorf("calibrating worst corner: %w", err)
	}
	vdMax, vdMin := best.MinVd, worst.MinVd
	if vdMax <= vdMin {
		return Model{}, errors.New("timing: degenerate Vd range; crossbar has no location/content dependence")
	}
	k := math.Log(float64(MaxLatencyNs)/float64(MinLatencyNs)) / (vdMax - vdMin)
	c := MinLatencyNs * math.Exp(k*vdMax)
	return Model{C: c, K: k, MinNs: MinLatencyNs, MaxNs: MaxLatencyNs}, nil
}
