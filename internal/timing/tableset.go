package timing

import (
	"os"
	"sync"

	"ladder/internal/circuit"
)

// TableSet bundles the timing tables every studied scheme needs, all
// generated from one calibrated model so cross-scheme comparisons are
// apples-to-apples (the paper applies the same circuit parameters to
// Split-reset and BLP, Section 6.1).
type TableSet struct {
	// Model is the calibrated Vd→latency mapping.
	Model Model
	// WL is LADDER's table: content axis = wordline LRS count.
	WL *Table
	// BL is the BLP baseline's table: content axis = bitline LRS count.
	BL *Table
	// Half is the Split-reset per-phase table: 4 selected cells, worst
	// content on both dimensions folded in via the WL content axis.
	Half *Table
	// WorstNs is the pessimistic fixed tWR used by the baseline scheme.
	WorstNs float64
}

// NewTableSet calibrates and generates all tables for the given crossbar.
func NewTableSet(p circuit.Params) (*TableSet, error) {
	m, err := Calibrate(p)
	if err != nil {
		return nil, err
	}
	wl, err := Generate(p, m, TableOptions{Content: WLContent})
	if err != nil {
		return nil, err
	}
	bl, err := Generate(p, m, TableOptions{Content: BLContent})
	if err != nil {
		return nil, err
	}
	half, err := Generate(p, m, TableOptions{Content: WLContent, SelectedCells: 4})
	if err != nil {
		return nil, err
	}
	return &TableSet{Model: m, WL: wl, BL: bl, Half: half, WorstNs: wl.WorstCase()}, nil
}

var (
	defaultOnce sync.Once
	defaultSet  *TableSet
	defaultErr  error
)

// DefaultTableSet returns the table set for the paper's Table 1 crossbar,
// generated once per process (generation sweeps the circuit model and
// takes a moment). When LADDER_TABLE_CACHE names a file path, the set is
// loaded from it if present and saved to it after generation, so repeated
// command invocations skip the circuit sweep.
func DefaultTableSet() (*TableSet, error) {
	defaultOnce.Do(func() {
		if path := os.Getenv("LADDER_TABLE_CACHE"); path != "" {
			if ts, err := LoadTableSetFile(path); err == nil {
				defaultSet = ts
				return
			}
			defaultSet, defaultErr = NewTableSet(circuit.DefaultParams())
			if defaultErr == nil {
				// Best effort: a failed save only costs the next startup.
				_ = defaultSet.SaveFile(path)
			}
			return
		}
		defaultSet, defaultErr = NewTableSet(circuit.DefaultParams())
	})
	return defaultSet, defaultErr
}

// ContentCurve returns RESET latency as a function of wordline LRS count
// for a cell at the given location — the data behind Figure 4b. The curve
// has one point per content bucket.
func (ts *TableSet) ContentCurve(wl, bl int) []float64 {
	out := make([]float64, Buckets)
	for cb := 0; cb < Buckets; cb++ {
		out[cb] = ts.WL.LatNs[ts.WL.bucketOf(wl)][ts.WL.bucketOf(bl)][cb]
	}
	return out
}

// Surface returns the 8×8 latency surface over (WL bucket, BL bucket) at
// a fixed content bucket — the data behind Figure 11 (content bucket 0 for
// the all-'0's pattern, Buckets-1 for all-'1's).
func (ts *TableSet) Surface(contentBucket int) [Buckets][Buckets]float64 {
	if contentBucket < 0 {
		contentBucket = 0
	}
	if contentBucket >= Buckets {
		contentBucket = Buckets - 1
	}
	var s [Buckets][Buckets]float64
	for wb := 0; wb < Buckets; wb++ {
		for bb := 0; bb < Buckets; bb++ {
			s[wb][bb] = ts.WL.LatNs[wb][bb][contentBucket]
		}
	}
	return s
}
