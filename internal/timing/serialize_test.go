package timing

import (
	"bytes"
	"path/filepath"
	"testing"
)

func TestSPDRoundTripConservative(t *testing.T) {
	ts, err := NewTableSet(testParams())
	if err != nil {
		t.Fatal(err)
	}
	spd := ts.WL.EncodeSPD()
	dec, err := DecodeSPD(spd, ts.WL.Granularity, ts.WL.Content)
	if err != nil {
		t.Fatal(err)
	}
	span := float64(MaxLatencyNs-MinLatencyNs) / 255
	for wb := 0; wb < Buckets; wb++ {
		for bb := 0; bb < Buckets; bb++ {
			for cb := 0; cb < Buckets; cb++ {
				orig := ts.WL.LatNs[wb][bb][cb]
				got := dec.LatNs[wb][bb][cb]
				if got < orig-1e-9 {
					t.Fatalf("(%d,%d,%d): decoded %v optimistic vs %v", wb, bb, cb, got, orig)
				}
				if got > orig+span+1e-9 {
					t.Fatalf("(%d,%d,%d): decoded %v too pessimistic vs %v", wb, bb, cb, got, orig)
				}
			}
		}
	}
}

func TestDecodeSPDValidation(t *testing.T) {
	var spd [SPDBytes]byte
	if _, err := DecodeSPD(spd, 0, WLContent); err == nil {
		t.Fatal("zero granularity should fail")
	}
}

func TestSPDSizeMatchesPaper(t *testing.T) {
	if SPDBytes != 512 {
		t.Fatalf("SPD image = %d bytes, want 512 (paper Section 6.3)", SPDBytes)
	}
}

func TestTableSetSaveLoadRoundTrip(t *testing.T) {
	ts, err := NewTableSet(testParams())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ts.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := LoadTableSet(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.WorstNs != ts.WorstNs || *got.WL != *ts.WL || *got.BL != *ts.BL || *got.Half != *ts.Half {
		t.Fatal("round trip mismatch")
	}
	if got.Model != ts.Model {
		t.Fatal("model mismatch")
	}
}

func TestTableSetSaveLoadFile(t *testing.T) {
	ts, err := NewTableSet(testParams())
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "tables.gob")
	if err := ts.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadTableSetFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if *got.WL != *ts.WL {
		t.Fatal("file round trip mismatch")
	}
	if _, err := LoadTableSetFile(filepath.Join(t.TempDir(), "missing.gob")); err == nil {
		t.Fatal("missing file should fail")
	}
}

func TestLoadTableSetRejectsGarbage(t *testing.T) {
	if _, err := LoadTableSet(bytes.NewReader([]byte("not a gob"))); err == nil {
		t.Fatal("garbage should fail")
	}
}
