package timing

import (
	"fmt"

	"ladder/internal/circuit"
)

// NTable is a write-timing table with a configurable bucket count per
// dimension, used to study the cost of the paper's 8×8×8 reduction
// (Section 5: "the most fine-grained latency model ... is impractical";
// the paper reports the reduced granularity costs under 3%).
type NTable struct {
	// B is the bucket count per dimension; Granularity is cells/bucket.
	B           int
	Granularity int
	Content     ContentDim
	// LatNs is B×B×B in row-major (wl, bl, content) order.
	LatNs []float64
}

// index computes the flat offset of a bucket triple.
func (t *NTable) index(wb, bb, cb int) int { return (wb*t.B+bb)*t.B + cb }

// bucketOf clamps and buckets a raw index.
func (t *NTable) bucketOf(idx int) int {
	if idx < 0 {
		idx = 0
	}
	b := idx / t.Granularity
	if b >= t.B {
		b = t.B - 1
	}
	return b
}

// Lookup returns the latency for raw wordline/bitline/content indices.
func (t *NTable) Lookup(wl, bl, clrs int) float64 {
	return t.LatNs[t.index(t.bucketOf(wl), t.bucketOf(bl), t.bucketOf(clrs))]
}

// StorageBytes returns the on-chip cost at one byte per entry (the SPD
// encoding): the paper's 8×8×8 table needs 512 B; a 32×32×32 table would
// need 32 KB — the impracticality that motivates the reduction.
func (t *NTable) StorageBytes() int { return t.B * t.B * t.B }

// GenerateN builds a timing table with `buckets` buckets per dimension,
// sampling each bucket's worst corner like Generate.
func GenerateN(p circuit.Params, m Model, buckets int, opts TableOptions) (*NTable, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if buckets <= 0 || p.N%buckets != 0 {
		return nil, fmt.Errorf("timing: %d buckets must divide crossbar size %d", buckets, p.N)
	}
	sel := p.SelectedCells
	if opts.SelectedCells != 0 {
		sel = opts.SelectedCells
	}
	gran := p.N / buckets
	if sel <= 0 || sel > p.N {
		return nil, fmt.Errorf("timing: selected cells %d out of range 1..%d", sel, p.N)
	}
	f, err := circuit.NewFastModel(p)
	if err != nil {
		return nil, err
	}
	t := &NTable{B: buckets, Granularity: gran, Content: opts.Content, LatNs: make([]float64, buckets*buckets*buckets)}
	for wb := 0; wb < buckets; wb++ {
		row := (wb+1)*gran - 1
		for bb := 0; bb < buckets; bb++ {
			// The selected byte's bitlines end at the bucket's top column;
			// with buckets finer than a byte the span reaches back across
			// neighboring buckets.
			colHigh := (bb + 1) * gran
			if colHigh < sel {
				colHigh = sel
			}
			cols := make([]int, sel)
			for i := range cols {
				cols[i] = colHigh - sel + i
			}
			for cb := 0; cb < buckets; cb++ {
				content := (cb+1)*gran - 1
				var op circuit.FastOp
				switch opts.Content {
				case WLContent:
					wl := content
					if wl > p.N-sel {
						wl = p.N - sel
					}
					op = circuit.FastOp{Row: row, Cols: cols, WLLRS: wl, BLLRS: p.N - 1}
				case BLContent:
					bl := content
					if bl > p.N-1 {
						bl = p.N - 1
					}
					op = circuit.FastOp{Row: row, Cols: cols, WLLRS: p.N - sel, BLLRS: bl}
				default:
					return nil, fmt.Errorf("timing: unknown content dimension %d", opts.Content)
				}
				res, err := f.Solve(op)
				if err != nil {
					return nil, fmt.Errorf("generating bucket (%d,%d,%d): %w", wb, bb, cb, err)
				}
				t.LatNs[t.index(wb, bb, cb)] = m.Latency(res.MinVd)
			}
		}
	}
	return t, nil
}

// GranularityCost compares a coarse table against a finer reference over
// every fine-table operating point: the mean and maximum latency
// inflation the coarse bucketing adds (coarse lookups are always ≥ the
// fine ones by construction). This quantifies Section 5's claim that the
// 8×8×8 reduction costs little.
func GranularityCost(coarse, fine *NTable) (meanInflation, maxInflation float64, err error) {
	if fine.B%coarse.B != 0 {
		return 0, 0, fmt.Errorf("timing: fine buckets %d must be a multiple of coarse %d", fine.B, coarse.B)
	}
	var sum float64
	var n int
	for wb := 0; wb < fine.B; wb++ {
		for bb := 0; bb < fine.B; bb++ {
			for cb := 0; cb < fine.B; cb++ {
				f := fine.LatNs[fine.index(wb, bb, cb)]
				c := coarse.Lookup((wb+1)*fine.Granularity-1, (bb+1)*fine.Granularity-1, (cb+1)*fine.Granularity-1)
				if f <= 0 {
					continue
				}
				infl := c/f - 1
				if infl < 0 {
					infl = 0
				}
				sum += infl
				if infl > maxInflation {
					maxInflation = infl
				}
				n++
			}
		}
	}
	if n > 0 {
		meanInflation = sum / float64(n)
	}
	return meanInflation, maxInflation, nil
}
