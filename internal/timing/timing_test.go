package timing

import (
	"math"
	"testing"

	"ladder/internal/circuit"
)

// testParams is a smaller crossbar so table generation stays fast in unit
// tests; N must remain divisible by Buckets.
func testParams() circuit.Params {
	p := circuit.DefaultParams()
	p.N = 128
	return p
}

func TestModelLatencyClamped(t *testing.T) {
	m := Model{C: 1e6, K: 5, MinNs: 29, MaxNs: 658}
	if got := m.Latency(100); got != 29 {
		t.Fatalf("high Vd latency = %v, want clamp at 29", got)
	}
	if got := m.Latency(0); got != 658 {
		t.Fatalf("zero Vd latency = %v, want clamp at 658", got)
	}
}

func TestModelLatencyMonotone(t *testing.T) {
	m := Model{C: 1e4, K: 3, MinNs: 29, MaxNs: 658}
	prev := math.Inf(1)
	for vd := 0.0; vd <= 3.0; vd += 0.1 {
		l := m.Latency(vd)
		if l > prev {
			t.Fatalf("latency increased with Vd at %v", vd)
		}
		prev = l
	}
}

func TestCalibrateHitsPublishedRange(t *testing.T) {
	p := testParams()
	m, err := Calibrate(p)
	if err != nil {
		t.Fatal(err)
	}
	f, err := circuit.NewFastModel(p)
	if err != nil {
		t.Fatal(err)
	}
	best, err := f.Solve(circuit.FastOp{Row: 0, Cols: []int{0, 1, 2, 3, 4, 5, 6, 7}, WLLRS: 0, BLLRS: p.N - 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Latency(best.MinVd); math.Abs(got-MinLatencyNs) > 0.5 {
		t.Fatalf("best corner latency = %v, want %v", got, MinLatencyNs)
	}
	cols := []int{p.N - 8, p.N - 7, p.N - 6, p.N - 5, p.N - 4, p.N - 3, p.N - 2, p.N - 1}
	worst, err := f.Solve(circuit.FastOp{Row: p.N - 1, Cols: cols, WLLRS: p.N - 8, BLLRS: p.N - 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Latency(worst.MinVd); math.Abs(got-MaxLatencyNs) > 0.5 {
		t.Fatalf("worst corner latency = %v, want %v", got, MaxLatencyNs)
	}
}

func TestGenerateTableMonotone(t *testing.T) {
	p := testParams()
	m, err := Calibrate(p)
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := Generate(p, m, TableOptions{Content: WLContent})
	if err != nil {
		t.Fatal(err)
	}
	const eps = 1e-9
	for wb := 0; wb < Buckets; wb++ {
		for bb := 0; bb < Buckets; bb++ {
			for cb := 0; cb < Buckets; cb++ {
				v := tbl.LatNs[wb][bb][cb]
				if v < MinLatencyNs-eps || v > MaxLatencyNs+eps {
					t.Fatalf("entry (%d,%d,%d) = %v outside [%d,%d]", wb, bb, cb, v, MinLatencyNs, MaxLatencyNs)
				}
				if wb > 0 && tbl.LatNs[wb-1][bb][cb] > v+eps {
					t.Fatalf("not monotone in WL at (%d,%d,%d)", wb, bb, cb)
				}
				if bb > 0 && tbl.LatNs[wb][bb-1][cb] > v+eps {
					t.Fatalf("not monotone in BL at (%d,%d,%d)", wb, bb, cb)
				}
				if cb > 0 && tbl.LatNs[wb][bb][cb-1] > v+eps {
					t.Fatalf("not monotone in content at (%d,%d,%d)", wb, bb, cb)
				}
			}
		}
	}
}

func TestTableLookupBucketsAndClamps(t *testing.T) {
	tbl := &Table{Granularity: 16}
	for i := 0; i < Buckets; i++ {
		for j := 0; j < Buckets; j++ {
			for k := 0; k < Buckets; k++ {
				tbl.LatNs[i][j][k] = float64(i*100 + j*10 + k)
			}
		}
	}
	if got := tbl.Lookup(0, 0, 0); got != 0 {
		t.Fatalf("Lookup(0,0,0) = %v", got)
	}
	if got := tbl.Lookup(17, 33, 49); got != 123 {
		t.Fatalf("Lookup(17,33,49) = %v, want 123", got)
	}
	// Above-range indices clamp to the last bucket.
	if got := tbl.Lookup(9999, 9999, 9999); got != 777 {
		t.Fatalf("Lookup(big) = %v, want 777", got)
	}
	if got := tbl.Lookup(-5, -5, -5); got != 0 {
		t.Fatalf("Lookup(negative) = %v, want 0", got)
	}
}

func TestWorstCaseIsMaxEntry(t *testing.T) {
	tbl := &Table{Granularity: 16}
	tbl.LatNs[3][4][5] = 123
	if got := tbl.WorstCase(); got != 123 {
		t.Fatalf("WorstCase = %v, want 123", got)
	}
}

func TestLocationOnlyUsesWorstContent(t *testing.T) {
	tbl := &Table{Granularity: 16}
	tbl.LatNs[2][2][Buckets-1] = 99
	tbl.LatNs[2][2][0] = 1
	if got := tbl.LocationOnly(40, 40); got != 99 {
		t.Fatalf("LocationOnly = %v, want 99", got)
	}
}

func TestShrinkRangeCompressesContentSpread(t *testing.T) {
	tbl := &Table{Granularity: 16}
	for i := range tbl.LatNs {
		for j := range tbl.LatNs[i] {
			for k := range tbl.LatNs[i][j] {
				tbl.LatNs[i][j][k] = 100
			}
		}
	}
	tbl.LatNs[0][0][Buckets-1] = 200 // worst content at location (0,0)
	tbl.LatNs[0][0][0] = 40          // best content
	s := tbl.ShrinkRange(2)
	// The worst-content guardband stays; faster levels move toward it.
	if got := s.LatNs[0][0][Buckets-1]; got != 200 {
		t.Fatalf("worst-content entry moved: %v", got)
	}
	if got := s.LatNs[0][0][0]; got != 120 {
		t.Fatalf("best-content entry = %v, want 120", got)
	}
	// Locations with no content spread are untouched.
	if got := s.LatNs[3][3][2]; got != 100 {
		t.Fatalf("flat location changed: %v", got)
	}
}

func TestShrinkRangeBadFactor(t *testing.T) {
	tbl := &Table{Granularity: 16}
	tbl.LatNs[1][1][1] = 10
	s := tbl.ShrinkRange(0)
	if s.LatNs[1][1][1] != 10 {
		t.Fatal("factor<=0 should leave the table unchanged")
	}
}

func TestGenerateRejectsBadOptions(t *testing.T) {
	p := testParams()
	m := Model{C: 1, K: 1, MinNs: 29, MaxNs: 658}
	if _, err := Generate(p, m, TableOptions{SelectedCells: -1}); err == nil {
		t.Fatal("expected error for negative selected cells")
	}
	p2 := p
	p2.N = 100 // not divisible by 8
	if _, err := Generate(p2, m, TableOptions{}); err == nil {
		t.Fatal("expected error for non-divisible N")
	}
	if _, err := Generate(p, m, TableOptions{Content: ContentDim(9)}); err == nil {
		t.Fatal("expected error for unknown content dim")
	}
}

func TestTableSetSplitResetFaster(t *testing.T) {
	ts, err := NewTableSet(testParams())
	if err != nil {
		t.Fatal(err)
	}
	// A 4-cell half-RESET phase must be at least as fast as a full 8-cell
	// RESET at every operating point.
	for wb := 0; wb < Buckets; wb++ {
		for bb := 0; bb < Buckets; bb++ {
			for cb := 0; cb < Buckets; cb++ {
				if ts.Half.LatNs[wb][bb][cb] > ts.WL.LatNs[wb][bb][cb]+1e-9 {
					t.Fatalf("half-reset slower at (%d,%d,%d): %v > %v",
						wb, bb, cb, ts.Half.LatNs[wb][bb][cb], ts.WL.LatNs[wb][bb][cb])
				}
			}
		}
	}
	if ts.WorstNs < MaxLatencyNs-1 {
		t.Fatalf("worst case %v should be near %v", ts.WorstNs, MaxLatencyNs)
	}
}

func TestContentCurveMonotone(t *testing.T) {
	ts, err := NewTableSet(testParams())
	if err != nil {
		t.Fatal(err)
	}
	curve := ts.ContentCurve(ts.WL.Granularity*Buckets-1, ts.WL.Granularity*Buckets-1)
	for i := 1; i < len(curve); i++ {
		if curve[i] < curve[i-1]-1e-9 {
			t.Fatalf("content curve not monotone at %d: %v", i, curve)
		}
	}
	if curve[len(curve)-1] <= curve[0] {
		t.Fatalf("content curve flat: %v — no content dependence", curve)
	}
}

func TestSurfaceExtremes(t *testing.T) {
	ts, err := NewTableSet(testParams())
	if err != nil {
		t.Fatal(err)
	}
	empty := ts.Surface(0)
	full := ts.Surface(Buckets - 1)
	// All-'1's content must never be faster than all-'0's (Figure 11).
	for wb := 0; wb < Buckets; wb++ {
		for bb := 0; bb < Buckets; bb++ {
			if full[wb][bb] < empty[wb][bb]-1e-9 {
				t.Fatalf("surface inversion at (%d,%d)", wb, bb)
			}
		}
	}
	// Out-of-range bucket arguments clamp rather than panic.
	_ = ts.Surface(-1)
	_ = ts.Surface(99)
}

func TestDefaultTableSetCachedAndSane(t *testing.T) {
	if testing.Short() {
		t.Skip("full 512x512 table generation is slow")
	}
	a, err := DefaultTableSet()
	if err != nil {
		t.Fatal(err)
	}
	b, err := DefaultTableSet()
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("DefaultTableSet not cached")
	}
	if a.WL.Granularity != 64 {
		t.Fatalf("granularity = %d, want 64", a.WL.Granularity)
	}
	// Dynamic range should cover most of the published window.
	min := a.WL.LatNs[0][0][0]
	if min > 2*MinLatencyNs {
		t.Fatalf("best entry %v too slow; expected near %v", min, MinLatencyNs)
	}
	if a.WorstNs < MaxLatencyNs-1 {
		t.Fatalf("worst entry %v; expected near %v", a.WorstNs, MaxLatencyNs)
	}
}
