package timing

import (
	"testing"

	"ladder/internal/circuit"
)

// TestProbeTables dumps bucket latencies (diagnostic; -run ProbeTables -v).
func TestProbeTables(t *testing.T) {
	p := circuit.DefaultParams()
	ts, err := NewTableSet(p)
	if err != nil {
		t.Fatal(err)
	}
	for _, loc := range [][2]int{{3, 3}, {7, 7}} {
		wb, bb := loc[0], loc[1]
		t.Logf("location bucket (%d,%d):", wb, bb)
		t.Logf("  WL-content axis: %v", ts.WL.LatNs[wb][bb])
		t.Logf("  BL-content axis: %v", ts.BL.LatNs[wb][bb])
		t.Logf("  Half (split-reset): %v", ts.Half.LatNs[wb][bb])
	}
}
