package timing

import (
	"fmt"

	"ladder/internal/circuit"
)

// Buckets is the number of buckets per table dimension. The paper reduces
// the full 512×512×512 space to 8×8×8 (granularity 64) after observing
// that finer granularity changes performance by under 3%.
const Buckets = 8

// ContentDim selects which crossbar dimension the table's content axis
// tracks.
type ContentDim int

const (
	// WLContent keys the content axis on the LRS population of the
	// selected wordline (LADDER's scheme); bitline content is assumed
	// worst-case.
	WLContent ContentDim = iota
	// BLContent keys the content axis on the LRS population of the
	// selected bitlines (the BLP baseline); wordline content is assumed
	// worst-case.
	BLContent
)

// TableOptions configures table generation.
type TableOptions struct {
	// SelectedCells overrides Params.SelectedCells when non-zero (the
	// Split-reset baseline writes 4 cells per phase instead of 8).
	SelectedCells int
	// Content selects the content axis (default WLContent).
	Content ContentDim
}

// Table is a write-timing table: RESET latency in nanoseconds indexed by
// wordline-location bucket, bitline-location bucket and content bucket.
// It is the lookup structure the LADDER control logic holds on chip
// (512 B as 8 sub-tables of 8×8 entries).
type Table struct {
	// Granularity is the number of cells covered by one bucket.
	Granularity int
	// Content records which dimension the content axis tracks.
	Content ContentDim
	// LatNs[wl][bl][content] is the RESET latency in nanoseconds.
	LatNs [Buckets][Buckets][Buckets]float64
}

// BucketOf clamps a raw wordline/bitline/content index into the table
// domain and returns its bucket (0..Buckets-1) — the cell coordinate a
// Lookup at that index reads. The observability layer uses it to
// attribute each RESET to its timing-table cell (docs/METRICS.md).
func (t *Table) BucketOf(idx int) int { return t.bucketOf(idx) }

// bucketOf clamps and buckets a raw index.
func (t *Table) bucketOf(idx int) int {
	if idx < 0 {
		idx = 0
	}
	b := idx / t.Granularity
	if b >= Buckets {
		b = Buckets - 1
	}
	return b
}

// Lookup returns the latency for a write at raw wordline index wl, raw
// bitline index bl, with raw content count clrs (LRS cells on the keyed
// dimension). Indices are clamped into the table domain.
func (t *Table) Lookup(wl, bl, clrs int) float64 {
	return t.LatNs[t.bucketOf(wl)][t.bucketOf(bl)][t.bucketOf(clrs)]
}

// WorstCase returns the pessimistic fixed latency (the baseline scheme's
// tWR): the worst entry in the table.
func (t *Table) WorstCase() float64 {
	w := 0.0
	for i := range t.LatNs {
		for j := range t.LatNs[i] {
			for k := range t.LatNs[i][j] {
				if t.LatNs[i][j][k] > w {
					w = t.LatNs[i][j][k]
				}
			}
		}
	}
	return w
}

// EscalateContent returns the latency at the given location with the
// content axis raised `steps` buckets above the bucket of clrs — the
// program-and-verify retry ladder: each failed RESET reissues at the
// next content bucket up, saturating at the worst bucket. A negative
// clrs (a scheme without content knowledge) already programs worst-case
// content, so escalation starts — and stays — at the worst bucket.
func (t *Table) EscalateContent(wl, bl, clrs, steps int) float64 {
	cb := Buckets - 1
	if clrs >= 0 {
		cb = t.bucketOf(clrs) + steps
		if cb > Buckets-1 {
			cb = Buckets - 1
		}
	}
	return t.LatNs[t.bucketOf(wl)][t.bucketOf(bl)][cb]
}

// LocationOnly returns the latency assuming worst-case content at the
// given location (the location-aware scheme of Figure 2).
func (t *Table) LocationOnly(wl, bl int) float64 {
	return t.LatNs[t.bucketOf(wl)][t.bucketOf(bl)][Buckets-1]
}

// ShrinkRange compresses the table's content-induced latency spread by
// the given factor (Section 7's process-variability ablation: devices
// with tighter RESET characteristics show less content-dependent latency
// variation). At every location the worst-content entry — the guardband
// the pessimistic baseline also uses — is preserved, and the faster
// content levels move toward it.
func (t *Table) ShrinkRange(factor float64) *Table {
	if factor <= 0 {
		factor = 1
	}
	out := &Table{Granularity: t.Granularity, Content: t.Content}
	for i := range t.LatNs {
		for j := range t.LatNs[i] {
			worst := t.LatNs[i][j][Buckets-1]
			for k := range t.LatNs[i][j] {
				out.LatNs[i][j][k] = worst - (worst-t.LatNs[i][j][k])/factor
			}
		}
	}
	return out
}

// Generate builds a timing table by sweeping the reduced circuit model
// over the worst corner of every bucket (maximum wordline index, maximum
// bitline index and maximum content count within the bucket), so a lookup
// is always sufficient for any operating point inside the bucket.
func Generate(p circuit.Params, m Model, opts TableOptions) (*Table, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if p.N%Buckets != 0 {
		return nil, fmt.Errorf("timing: crossbar size %d not divisible into %d buckets", p.N, Buckets)
	}
	sel := p.SelectedCells
	if opts.SelectedCells != 0 {
		sel = opts.SelectedCells
	}
	if sel <= 0 || sel > p.N/Buckets {
		return nil, fmt.Errorf("timing: selected cells %d out of range 1..%d", sel, p.N/Buckets)
	}
	f, err := circuit.NewFastModel(p)
	if err != nil {
		return nil, err
	}
	gran := p.N / Buckets
	tbl := &Table{Granularity: gran, Content: opts.Content}
	for wb := 0; wb < Buckets; wb++ {
		row := (wb+1)*gran - 1
		for bb := 0; bb < Buckets; bb++ {
			// Worst bitlines of the bucket: the top `sel` columns.
			colHigh := (bb + 1) * gran
			cols := make([]int, sel)
			for i := range cols {
				cols[i] = colHigh - sel + i
			}
			for cb := 0; cb < Buckets; cb++ {
				content := (cb+1)*gran - 1
				var op circuit.FastOp
				switch opts.Content {
				case WLContent:
					wl := content
					if wl > p.N-sel {
						wl = p.N - sel
					}
					op = circuit.FastOp{Row: row, Cols: cols, WLLRS: wl, BLLRS: p.N - 1}
				case BLContent:
					bl := content
					if bl > p.N-1 {
						bl = p.N - 1
					}
					op = circuit.FastOp{Row: row, Cols: cols, WLLRS: p.N - sel, BLLRS: bl}
				default:
					return nil, fmt.Errorf("timing: unknown content dimension %d", opts.Content)
				}
				res, err := f.Solve(op)
				if err != nil {
					return nil, fmt.Errorf("generating bucket (%d,%d,%d): %w", wb, bb, cb, err)
				}
				tbl.LatNs[wb][bb][cb] = m.Latency(res.MinVd)
			}
		}
	}
	return tbl, nil
}
