package timing

import (
	"testing"
)

func TestGenerateNMatchesTableAt8(t *testing.T) {
	p := testParams()
	m, err := Calibrate(p)
	if err != nil {
		t.Fatal(err)
	}
	t8, err := Generate(p, m, TableOptions{Content: WLContent})
	if err != nil {
		t.Fatal(err)
	}
	n8, err := GenerateN(p, m, 8, TableOptions{Content: WLContent})
	if err != nil {
		t.Fatal(err)
	}
	for wb := 0; wb < Buckets; wb++ {
		for bb := 0; bb < Buckets; bb++ {
			for cb := 0; cb < Buckets; cb++ {
				if t8.LatNs[wb][bb][cb] != n8.LatNs[n8.index(wb, bb, cb)] {
					t.Fatalf("(%d,%d,%d) diverges between Table and NTable", wb, bb, cb)
				}
			}
		}
	}
}

func TestGenerateNValidation(t *testing.T) {
	p := testParams()
	m := Model{C: 1, K: 1, MinNs: 29, MaxNs: 658}
	if _, err := GenerateN(p, m, 0, TableOptions{}); err == nil {
		t.Fatal("zero buckets should fail")
	}
	if _, err := GenerateN(p, m, 7, TableOptions{}); err == nil {
		t.Fatal("non-dividing buckets should fail")
	}
	if _, err := GenerateN(p, m, 8, TableOptions{SelectedCells: -2}); err == nil {
		t.Fatal("negative selected cells should fail")
	}
}

func TestNTableLookupClamps(t *testing.T) {
	nt := &NTable{B: 4, Granularity: 8, LatNs: make([]float64, 64)}
	nt.LatNs[nt.index(3, 3, 3)] = 42
	if got := nt.Lookup(999, 999, 999); got != 42 {
		t.Fatalf("clamped lookup = %v", got)
	}
	if got := nt.Lookup(-1, -1, -1); got != nt.LatNs[0] {
		t.Fatalf("negative lookup = %v", got)
	}
	if got := nt.StorageBytes(); got != 64 {
		t.Fatalf("storage = %d", got)
	}
}

// TestGranularityCostSmall reproduces the Section 5 claim analytically:
// the 8-bucket reduction inflates latencies only mildly relative to a
// 4x finer table, and the coarse table is never optimistic.
func TestGranularityCostSmall(t *testing.T) {
	p := testParams() // 128x128 crossbar keeps generation fast
	m, err := Calibrate(p)
	if err != nil {
		t.Fatal(err)
	}
	coarse, err := GenerateN(p, m, 8, TableOptions{Content: WLContent})
	if err != nil {
		t.Fatal(err)
	}
	fine, err := GenerateN(p, m, 32, TableOptions{Content: WLContent})
	if err != nil {
		t.Fatal(err)
	}
	mean, max, err := GranularityCost(coarse, fine)
	if err != nil {
		t.Fatal(err)
	}
	if mean < 0 || max < mean {
		t.Fatalf("inconsistent inflation stats: mean %v max %v", mean, max)
	}
	// The bucket-corner construction guarantees conservatism; the paper
	// reports <3% performance impact — the static latency inflation
	// should be bounded (well under 2x even at the worst point).
	if max > 1.0 {
		t.Fatalf("max inflation %v implausibly high", max)
	}
	if mean > 0.35 {
		t.Fatalf("mean inflation %v implausibly high", mean)
	}
	if _, _, err := GranularityCost(fine, coarse); err == nil {
		t.Fatal("mismatched bucket ratio should fail")
	}
}
