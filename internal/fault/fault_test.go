package fault

import (
	"math"
	"testing"
)

func mustInjector(t *testing.T, cfg Config) *Injector {
	t.Helper()
	in, err := NewInjector(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return in
}

func TestConfigValidate(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
		ok   bool
	}{
		{"zero value", Config{}, true},
		{"typical", Config{Rate: 0.01, Seed: 7, RetryMax: 3}, true},
		{"sentinel retries", Config{Rate: 0.01, RetryMax: UseDefault}, true},
		{"explicit zero retries", Config{Rate: 0.01, RetryMax: 0}, true},
		{"rate one", Config{Rate: 1}, false},
		{"rate negative", Config{Rate: -0.1}, false},
		{"retry below sentinel", Config{RetryMax: -2}, false},
	}
	for _, c := range cases {
		_, err := NewInjector(c.cfg)
		if (err == nil) != c.ok {
			t.Errorf("%s: NewInjector err = %v, want ok=%v", c.name, err, c.ok)
		}
	}
}

// TestDefaultsApplied pins the UseDefault sentinel semantics: only the
// sentinel selects the default; an explicit zero means "no reissues" and
// survives defaulting untouched.
func TestDefaultsApplied(t *testing.T) {
	if in := mustInjector(t, Config{Rate: 0.01, RetryMax: UseDefault}); in.RetryMax() != DefaultRetryMax {
		t.Errorf("RetryMax(UseDefault) = %d, want default %d", in.RetryMax(), DefaultRetryMax)
	}
	if in := mustInjector(t, Config{Rate: 0.01, RetryMax: 0}); in.RetryMax() != 0 {
		t.Errorf("RetryMax(0) = %d, want 0 (reissues disabled, not defaulted)", in.RetryMax())
	}
	if in := mustInjector(t, Config{Rate: 0.01, RetryMax: 7}); in.RetryMax() != 7 {
		t.Errorf("RetryMax(7) = %d, want 7", in.RetryMax())
	}
	if in := mustInjector(t, Config{Rate: 0.01}); in.WearLimit() != DefaultWearLimit {
		t.Errorf("WearLimit = %d, want default %d", in.WearLimit(), DefaultWearLimit)
	}
}

// TestSeededRateWithinTolerance checks that zero-margin injection hits
// the configured base rate: the heart of the model's calibration.
func TestSeededRateWithinTolerance(t *testing.T) {
	const (
		rate   = 0.02
		trials = 200_000
	)
	in := mustInjector(t, Config{Rate: rate, Seed: 42})
	faults := 0
	for i := 0; i < trials; i++ {
		// Zero margin: programmed latency equals the requirement.
		if in.CheckWrite(100, 100, 0) == Transient {
			faults++
		}
	}
	got := float64(faults) / trials
	// 5 sigma of a binomial at p=0.02, n=200k is ~0.0016.
	if tol := 0.002; math.Abs(got-rate) > tol {
		t.Errorf("observed rate %.5f outside %v ± %v", got, rate, tol)
	}
	st := in.Stats()
	if st.Checked != trials || st.Injected != uint64(faults) || st.Transient != uint64(faults) {
		t.Errorf("stats mismatch: %+v (faults %d)", st, faults)
	}
}

// TestMarginShapesProbability pins the U-shaped response: exact
// provisioning is the minimum (base rate), a deficit boosts the
// probability toward certain incomplete switching, and a surplus raises
// it too (over-RESET stress scaling with excess pulse time).
func TestMarginShapesProbability(t *testing.T) {
	in := mustInjector(t, Config{Rate: 0.05, Seed: 1})
	pZero := in.probability(100, 100)
	pOver := in.probability(200, 100)
	pFarOver := in.probability(400, 100)
	pUnder := in.probability(80, 100)
	pDeep := in.probability(25, 100)
	if pZero != 0.05 {
		t.Errorf("zero-margin probability %v, want base rate", pZero)
	}
	if !(pZero < pOver && pOver < pFarOver) {
		t.Errorf("surplus margin should raise the rate: zero=%v over=%v far=%v",
			pZero, pOver, pFarOver)
	}
	if !(pZero < pUnder && pUnder < pDeep) {
		t.Errorf("probabilities not monotone in deficit: zero=%v under=%v deep=%v",
			pZero, pUnder, pDeep)
	}
	if pDeep != 1 {
		t.Errorf("4x under-provisioned pulse should fail certainly, got %v", pDeep)
	}
}

func TestDeterministicReplay(t *testing.T) {
	run := func() []Verdict {
		in := mustInjector(t, Config{Rate: 0.3, Seed: 99})
		out := make([]Verdict, 1000)
		for i := range out {
			out[i] = in.CheckWrite(100, 95+float64(i%11), 0)
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("verdict %d diverged across identical runs: %v vs %v", i, a[i], b[i])
		}
	}
}

// TestWearPermanent pins the permanent-fault threshold on the effective
// write count the caller supplies (the decoder subtracts its remap
// baseline before calling, so a fresh spare counts from zero).
func TestWearPermanent(t *testing.T) {
	in := mustInjector(t, Config{Rate: 0.001, Seed: 3, WearLimit: 100})
	if v := in.CheckWrite(100, 100, 99); v != OK && v != Transient {
		t.Fatalf("pre-limit write got %v", v)
	}
	if v := in.CheckWrite(1e6, 100, 100); v != Permanent {
		t.Fatalf("at-limit write got %v, want Permanent (margin must not matter)", v)
	}
	st := in.Stats()
	if st.Permanent != 1 {
		t.Errorf("stats = %+v, want exactly 1 permanent fault", st)
	}
}

func TestNilInjectorSafe(t *testing.T) {
	var in *Injector
	if st := in.Stats(); st != (Stats{}) {
		t.Fatalf("nil injector stats = %+v, want zero value", st)
	}
}
