// Package fault implements deterministic write-fault injection: a
// seeded, reproducible model of transient RESET failures whose
// probability is a U-shaped function of the pulse's latency margin over
// the timing-table requirement (under-provisioning risks incomplete
// switching, over-provisioning risks over-RESET stress and disturb —
// see probability), and permanent wear-out faults driven by effective
// per-row write counts against the wear lifetime model. The injector
// issues verdicts only; row relocation — the spare-row pools, the remap
// tables, and the indirection penalties failed rows pay afterward —
// is owned by the programmable address decoder in package remap.
//
// Determinism contract: the injector draws one pseudo-random number per
// transient check from a splitmix64 stream seeded by Config.Seed, in the
// order the (single-goroutine) simulation completes write pulses. Two
// runs with identical configuration and seed therefore produce identical
// verdicts, retries and remaps — byte-identical reports. A disabled
// injector is a nil *Injector; every consumer gates on that nil, so
// fault-free runs are cycle-identical to a build without this package.
package fault

import (
	"fmt"
)

// UseDefault is the sentinel distinguishing "unset, use the default"
// from an explicit zero: RetryMax = UseDefault selects DefaultRetryMax,
// while RetryMax = 0 genuinely disables program-and-verify reissues.
const UseDefault = -1

// Default knobs; see Config.
const (
	// DefaultRetryMax is the program-and-verify reissue cap per write.
	DefaultRetryMax = 3
	// DefaultWearLimit is the per-row write count at which permanent
	// stuck-at faults appear (the wear package's 1e8-cycle endurance).
	DefaultWearLimit = 100_000_000
)

// Margin-response constants of the transient model (see probability):
// underSlope scales how fast an under-provisioned pulse degrades toward
// certain failure; overSlope scales how fast surplus pulse time raises
// the over-stress/disturb exposure above the base rate.
const (
	underSlope = 4.0
	overSlope  = 2.0
)

// Config parameterizes an Injector.
type Config struct {
	// Rate is the base transient-failure probability of a pulse with zero
	// latency margin (an exactly-provisioned RESET). Must be in [0, 1).
	Rate float64
	// Seed seeds the injector's private PRNG stream.
	Seed int64
	// RetryMax caps program-and-verify reissues per write. UseDefault
	// selects DefaultRetryMax; an explicit 0 disables reissues entirely
	// (every transient failure goes straight to the remap path).
	RetryMax int
	// WearLimit is the effective per-row write count beyond which writes
	// fail permanently until the row is remapped (0 = default 1e8).
	WearLimit uint64
}

// withDefaults fills unset fields, resolving the UseDefault sentinel.
func (c Config) withDefaults() Config {
	if c.RetryMax == UseDefault {
		c.RetryMax = DefaultRetryMax
	}
	if c.WearLimit == 0 {
		c.WearLimit = DefaultWearLimit
	}
	return c
}

// Validate reports whether the configuration is usable (after the
// UseDefault sentinel is resolved).
func (c Config) Validate() error {
	switch {
	case c.Rate < 0 || c.Rate >= 1:
		return fmt.Errorf("fault: rate %v out of [0, 1)", c.Rate)
	case c.RetryMax < 0:
		return fmt.Errorf("fault: retry cap %d must be non-negative", c.RetryMax)
	}
	return nil
}

// Verdict is the outcome of one write-pulse check.
type Verdict int

const (
	// OK: the RESET completed.
	OK Verdict = iota
	// Transient: the pulse failed to switch every cell; a reissue with
	// more latency margin may succeed.
	Transient
	// Permanent: the row has worn-out cells; no pulse completes until the
	// row is remapped to a spare.
	Permanent
)

// String returns the verdict label.
func (v Verdict) String() string {
	switch v {
	case OK:
		return "ok"
	case Transient:
		return "transient"
	case Permanent:
		return "permanent"
	}
	return "unknown"
}

// Stats is the injector's cumulative accounting, embedded in run results
// and the report's faults section.
type Stats struct {
	// Checked counts write pulses offered to the injector.
	Checked uint64 `json:"checked"`
	// Injected counts failed pulses (transient + permanent).
	Injected uint64 `json:"injected"`
	// Transient and Permanent split Injected by verdict.
	Transient uint64 `json:"transient"`
	Permanent uint64 `json:"permanent"`
	// Retries counts program-and-verify reissues.
	Retries uint64 `json:"retries"`
	// Exhausted counts writes whose transient retries hit the cap.
	Exhausted uint64 `json:"exhausted"`
}

// splitmixState is the splitmix64 PRNG (same recurrence the store uses
// for resident-data synthesis): tiny, seedable and fully deterministic.
type splitmixState struct{ x uint64 }

func (s *splitmixState) next() uint64 {
	s.x += 0x9e3779b97f4a7c15
	z := s.x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// float returns a uniform draw in [0, 1).
func (s *splitmixState) float() float64 {
	return float64(s.next()>>11) / (1 << 53)
}

// Injector is one run's fault model. It is single-goroutine like the
// simulation that drives it; a nil *Injector means fault injection is
// disabled and is safe to pass around (consumers nil-check).
type Injector struct {
	cfg   Config
	rng   splitmixState
	stats Stats
}

// NewInjector builds an injector, applying defaults then validating.
func NewInjector(cfg Config) (*Injector, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Injector{
		cfg: cfg,
		rng: splitmixState{x: uint64(cfg.Seed) ^ 0xfa017ab1e5},
	}, nil
}

// RetryMax returns the program-and-verify reissue cap.
func (in *Injector) RetryMax() int { return in.cfg.RetryMax }

// Rate returns the configured base transient rate.
func (in *Injector) Rate() float64 { return in.cfg.Rate }

// WearLimit returns the effective per-row write count at which writes
// fail permanently.
func (in *Injector) WearLimit() uint64 { return in.cfg.WearLimit }

// Stats returns a copy of the cumulative accounting. Safe on nil
// (zero value).
func (in *Injector) Stats() Stats {
	if in == nil {
		return Stats{}
	}
	return in.stats
}

// probability maps a pulse's latency margin to its failure probability.
// margin = (programmed − required) / required. The response is U-shaped
// with its minimum — the base rate — at exact provisioning:
//
//   - A deficit (margin < 0) grows the probability linearly toward
//     certain failure (4× under-provisioning ⇒ ~certain): the
//     incomplete-switching regime variability-aware crossbar channel
//     models predict.
//   - A surplus (margin > 0) raises the probability linearly above the
//     base rate: cells that finish switching early in a long pulse sit
//     under full RESET stress for the pulse's remainder, and that
//     over-RESET/disturb exposure scales with the excess pulse time.
//
// The surplus arm is what the reliability experiment measures: a scheme
// whose content metadata is conservatively stale (LADDER-Est's 2-bit
// partial-counter bounds) programs surplus margin on most writes and
// pays over-stress retries that LADDER-Basic's exact counters — zero
// margin by construction — never do.
func (in *Injector) probability(latNs, needNs float64) float64 {
	if needNs <= 0 {
		return in.cfg.Rate
	}
	margin := (latNs - needNs) / needNs
	if margin < 0 {
		boost := underSlope * -margin
		if boost > 1 {
			boost = 1
		}
		return in.cfg.Rate + (1-in.cfg.Rate)*boost
	}
	p := in.cfg.Rate * (1 + overSlope*margin)
	if p > 1 {
		p = 1
	}
	return p
}

// CheckWrite judges one completed write pulse: latNs is the programmed
// RESET latency, needNs the timing-table requirement for the row's
// actual pre-write content, rowWrites the row's *effective* write count
// — the caller subtracts the decoder's remap baseline so wear on a
// fresh spare counts from zero. Exactly one PRNG draw is consumed per
// transient check, keeping the stream aligned across reruns.
func (in *Injector) CheckWrite(latNs, needNs float64, rowWrites uint64) Verdict {
	in.stats.Checked++
	if rowWrites >= in.cfg.WearLimit {
		in.stats.Injected++
		in.stats.Permanent++
		return Permanent
	}
	if in.rng.float() < in.probability(latNs, needNs) {
		in.stats.Injected++
		in.stats.Transient++
		return Transient
	}
	return OK
}

// NoteRetry records one program-and-verify reissue.
func (in *Injector) NoteRetry() { in.stats.Retries++ }

// NoteExhausted records one write whose transient retries hit the cap.
func (in *Injector) NoteExhausted() { in.stats.Exhausted++ }
