// Package timeline records a simulation run as a time-resolved series:
// an epoch sampler, driven by the engine's observer hook every N
// simulated cycles, diffs the run's metrics registry against the
// previous epoch and keeps a compact per-epoch record (IPC, writes,
// retries, gap moves, spare remaps, queue depth, energy, selected
// histogram quantiles). Memory stays bounded: when the retained series
// reaches its capacity, adjacent epochs merge pairwise and the
// effective epoch width doubles, so arbitrarily long runs keep a
// constant-size trajectory whose per-epoch deltas still sum exactly to
// the end-of-run aggregates.
//
// Sampling is observer-only by construction: the sampler never mutates
// simulation state and the engine hook it rides never changes which
// cycles actors perceive, so a run with the timeline enabled is
// cycle-identical to the same run without it (pinned by the golden
// determinism tests in internal/sim). See docs/TIMELINE.md.
package timeline

import (
	"fmt"

	"ladder/internal/metrics"
)

// Schema versions the timeline JSON layout (the "timeline" section of
// run and grid reports, and the -timeline-out JSON export). Consumers
// should reject documents whose schema string they do not recognize.
const Schema = "ladder.timeline/v1"

// DefaultCapacity is the default bound on retained epochs. It is even
// so capacity-triggered decimation always merges clean pairs.
const DefaultCapacity = 512

// Epoch is one closed sampling window [Start, End) in simulated cycles.
// All integer fields are deltas over the window; ReadQueue/WriteQueue
// are instantaneous per-channel depths observed at End.
type Epoch struct {
	Start uint64 `json:"start_cycle"`
	End   uint64 `json:"end_cycle"`

	// Instructions retired across all cores during the window; IPC is
	// Instructions over the window's cycle span.
	Instructions uint64  `json:"instructions"`
	IPC          float64 `json:"ipc"`
	// StoreWrites counts data writes that reached the ReRAM store.
	StoreWrites uint64 `json:"store_writes"`
	// Retries counts program-and-verify reissues (fault-injection runs).
	Retries uint64 `json:"retries"`
	// GapMoves and SpareRemaps count address-decoder activity.
	GapMoves    uint64 `json:"gap_moves"`
	SpareRemaps uint64 `json:"spare_remaps"`
	// ReadNJ/WriteNJ are the dynamic-energy deltas in nanojoules.
	ReadNJ  float64 `json:"read_nj"`
	WriteNJ float64 `json:"write_nj"`

	// ReadQueue/WriteQueue are per-channel queue depths at End. Dropped
	// (nil) on merged epochs: an instantaneous sample has no meaningful
	// sum. Omitted from CSV exports.
	ReadQueue  []int `json:"read_queue,omitempty"`
	WriteQueue []int `json:"write_queue,omitempty"`

	// Counters holds every registry counter that advanced during the
	// window, as deltas; unchanged counters are omitted entirely (the
	// compaction the bounded-memory story depends on).
	Counters map[string]uint64 `json:"counters,omitempty"`

	// Quantiles summarizes every registry histogram that received
	// observations during the window: the delta distribution's count and
	// interpolated P50/P99. Dropped on merged epochs (quantiles of two
	// windows do not combine exactly; the honest answer is absence).
	Quantiles map[string]HistStat `json:"quantiles,omitempty"`
}

// HistStat is one histogram's delta summary inside an epoch.
type HistStat struct {
	Count uint64  `json:"count"`
	P50   float64 `json:"p50"`
	P99   float64 `json:"p99"`
}

// Timeline is the serializable per-epoch series: the "timeline" section
// of run reports. Interval is the configured sampling period in cycles;
// EffectiveInterval is Interval times the decimation factor (equal to
// Interval until capacity-triggered decimation widens epochs).
type Timeline struct {
	Schema            string  `json:"schema"`
	Interval          uint64  `json:"interval_cycles"`
	EffectiveInterval uint64  `json:"effective_interval_cycles"`
	Epochs            []Epoch `json:"epochs"`
}

// clone deep-copies a timeline.
func (t *Timeline) clone() *Timeline {
	out := &Timeline{Schema: t.Schema, Interval: t.Interval, EffectiveInterval: t.EffectiveInterval}
	out.Epochs = make([]Epoch, len(t.Epochs))
	for i, e := range t.Epochs {
		out.Epochs[i] = cloneEpoch(e)
	}
	return out
}

func cloneEpoch(e Epoch) Epoch {
	e.ReadQueue = append([]int(nil), e.ReadQueue...)
	e.WriteQueue = append([]int(nil), e.WriteQueue...)
	if e.Counters != nil {
		c := make(map[string]uint64, len(e.Counters))
		for k, v := range e.Counters {
			c[k] = v
		}
		e.Counters = c
	}
	if e.Quantiles != nil {
		q := make(map[string]HistStat, len(e.Quantiles))
		for k, v := range e.Quantiles {
			q[k] = v
		}
		e.Quantiles = q
	}
	return e
}

// mergeEpochs folds two adjacent epochs into one covering both windows:
// deltas add, IPC is recomputed over the combined span, the
// instantaneous queue depths keep the later sample, and per-window
// quantile detail is dropped (it does not combine exactly).
func mergeEpochs(a, b Epoch) Epoch {
	out := Epoch{
		Start:        a.Start,
		End:          b.End,
		Instructions: a.Instructions + b.Instructions,
		StoreWrites:  a.StoreWrites + b.StoreWrites,
		Retries:      a.Retries + b.Retries,
		GapMoves:     a.GapMoves + b.GapMoves,
		SpareRemaps:  a.SpareRemaps + b.SpareRemaps,
		ReadNJ:       a.ReadNJ + b.ReadNJ,
		WriteNJ:      a.WriteNJ + b.WriteNJ,
		ReadQueue:    append([]int(nil), b.ReadQueue...),
		WriteQueue:   append([]int(nil), b.WriteQueue...),
	}
	if span := out.End - out.Start; span > 0 {
		out.IPC = float64(out.Instructions) / float64(span)
	}
	if len(a.Counters)+len(b.Counters) > 0 {
		out.Counters = make(map[string]uint64, len(a.Counters)+len(b.Counters))
		for k, v := range a.Counters {
			out.Counters[k] += v
		}
		for k, v := range b.Counters {
			out.Counters[k] += v
		}
	}
	return out
}

// decimate merges adjacent epoch pairs in place, halving the series
// (an odd trailing epoch is kept as-is).
func decimate(epochs []Epoch) []Epoch {
	out := epochs[:0]
	for i := 0; i+1 < len(epochs); i += 2 {
		out = append(out, mergeEpochs(epochs[i], epochs[i+1]))
	}
	if len(epochs)%2 == 1 {
		out = append(out, epochs[len(epochs)-1])
	}
	return out
}

// Merge combines two timelines of the same run shape (grid cells of one
// experiment) into a new timeline, leaving both inputs untouched.
// Epochs align by index after the finer timeline is decimated down to
// the coarser effective interval (the ratio must be a power of two —
// always true for capacity-decimated series of one configured
// interval); counter deltas add, IPC is recomputed, and the timelines
// may have different epoch counts (the tail copies from the longer
// one). Nil inputs pass the other through (cloned).
func Merge(a, b *Timeline) (*Timeline, error) {
	if a == nil && b == nil {
		return nil, nil
	}
	if a == nil {
		return b.clone(), nil
	}
	if b == nil {
		return a.clone(), nil
	}
	if a.Interval != b.Interval {
		return nil, fmt.Errorf("timeline: merging timelines with intervals %d vs %d", a.Interval, b.Interval)
	}
	if (a.EffectiveInterval == 0 || b.EffectiveInterval == 0) && a.EffectiveInterval != b.EffectiveInterval {
		return nil, fmt.Errorf("timeline: merging timelines with effective intervals %d vs %d",
			a.EffectiveInterval, b.EffectiveInterval)
	}
	a, b = a.clone(), b.clone()
	for a.EffectiveInterval < b.EffectiveInterval {
		a.Epochs = decimate(a.Epochs)
		a.EffectiveInterval *= 2
	}
	for b.EffectiveInterval < a.EffectiveInterval {
		b.Epochs = decimate(b.Epochs)
		b.EffectiveInterval *= 2
	}
	if a.EffectiveInterval != b.EffectiveInterval {
		return nil, fmt.Errorf("timeline: effective intervals %d and %d are not power-of-two multiples",
			a.EffectiveInterval, b.EffectiveInterval)
	}
	out := &Timeline{Schema: Schema, Interval: a.Interval, EffectiveInterval: a.EffectiveInterval}
	n := len(a.Epochs)
	if len(b.Epochs) > n {
		n = len(b.Epochs)
	}
	for i := 0; i < n; i++ {
		switch {
		case i >= len(a.Epochs):
			out.Epochs = append(out.Epochs, b.Epochs[i])
		case i >= len(b.Epochs):
			out.Epochs = append(out.Epochs, a.Epochs[i])
		default:
			out.Epochs = append(out.Epochs, overlayEpochs(a.Epochs[i], b.Epochs[i]))
		}
	}
	return out, nil
}

// overlayEpochs combines the i-th epochs of two merged timelines: the
// windows cover the same simulated span in independent runs, so deltas
// add and the span takes the union of the two windows.
func overlayEpochs(a, b Epoch) Epoch {
	out := mergeEpochs(a, b)
	out.Start = a.Start
	if b.Start < a.Start {
		out.Start = b.Start
	}
	out.End = a.End
	if b.End > a.End {
		out.End = b.End
	}
	out.ReadQueue, out.WriteQueue = nil, nil
	if span := out.End - out.Start; span > 0 {
		out.IPC = float64(out.Instructions) / float64(span)
	}
	return out
}

// diffHistogram returns the delta distribution between two snapshots of
// the same histogram (prev may be the zero value for a histogram that
// appeared mid-run) and whether it received any observations. The delta
// min/max are approximated by the edges of the outermost nonzero delta
// buckets — exact counts, interpolated quantiles.
func diffHistogram(prev, cur metrics.HistogramSnapshot) (metrics.HistogramSnapshot, bool) {
	if cur.Count == prev.Count {
		return metrics.HistogramSnapshot{}, false
	}
	d := metrics.HistogramSnapshot{
		Bounds: cur.Bounds,
		Counts: make([]uint64, len(cur.Counts)),
		Count:  cur.Count - prev.Count,
		Sum:    cur.Sum - prev.Sum,
	}
	first, last := -1, -1
	for i := range cur.Counts {
		var p uint64
		if i < len(prev.Counts) {
			p = prev.Counts[i]
		}
		d.Counts[i] = cur.Counts[i] - p
		if d.Counts[i] > 0 {
			if first < 0 {
				first = i
			}
			last = i
		}
	}
	if first > 0 {
		d.Min = cur.Bounds[first-1]
	}
	if last >= 0 && last < len(cur.Bounds) {
		d.Max = cur.Bounds[last]
	} else {
		d.Max = cur.Max
	}
	return d, true
}
