package timeline

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
)

// csvHeader is the exported column set: the headline per-epoch series.
// Map-valued fields (counters, quantiles) and the per-channel queue
// samples stay JSON-only; CSV is the flat form spreadsheets and
// plotting scripts ingest directly.
var csvHeader = []string{
	"epoch", "start_cycle", "end_cycle", "instructions", "ipc",
	"store_writes", "retries", "gap_moves", "spare_remaps",
	"read_nj", "write_nj",
}

// WriteJSON emits the timeline as indented JSON (schema
// "ladder.timeline/v1").
func (t *Timeline) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(t)
}

// ReadJSON parses a timeline written by WriteJSON, rejecting unknown
// schemas.
func ReadJSON(r io.Reader) (*Timeline, error) {
	var t Timeline
	if err := json.NewDecoder(r).Decode(&t); err != nil {
		return nil, fmt.Errorf("timeline: decoding JSON: %w", err)
	}
	if t.Schema != Schema {
		return nil, fmt.Errorf("timeline: unknown schema %q (want %q)", t.Schema, Schema)
	}
	return &t, nil
}

// WriteCSV emits the headline epoch series as CSV, one row per epoch.
func (t *Timeline) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(csvHeader); err != nil {
		return fmt.Errorf("timeline: writing CSV: %w", err)
	}
	for i, e := range t.Epochs {
		row := []string{
			strconv.Itoa(i),
			strconv.FormatUint(e.Start, 10),
			strconv.FormatUint(e.End, 10),
			strconv.FormatUint(e.Instructions, 10),
			strconv.FormatFloat(e.IPC, 'g', -1, 64),
			strconv.FormatUint(e.StoreWrites, 10),
			strconv.FormatUint(e.Retries, 10),
			strconv.FormatUint(e.GapMoves, 10),
			strconv.FormatUint(e.SpareRemaps, 10),
			strconv.FormatFloat(e.ReadNJ, 'g', -1, 64),
			strconv.FormatFloat(e.WriteNJ, 'g', -1, 64),
		}
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("timeline: writing CSV: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses a timeline written by WriteCSV. Only the headline
// fields round-trip (the CSV form carries neither the counter maps nor
// the interval metadata); re-exporting a ReadCSV result through
// WriteCSV is byte-identical to the original.
func ReadCSV(r io.Reader) (*Timeline, error) {
	cr := csv.NewReader(r)
	rows, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("timeline: reading CSV: %w", err)
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("timeline: empty CSV")
	}
	if len(rows[0]) != len(csvHeader) {
		return nil, fmt.Errorf("timeline: CSV header has %d columns, want %d", len(rows[0]), len(csvHeader))
	}
	for i, want := range csvHeader {
		if rows[0][i] != want {
			return nil, fmt.Errorf("timeline: CSV column %d is %q, want %q", i, rows[0][i], want)
		}
	}
	t := &Timeline{Schema: Schema}
	for n, row := range rows[1:] {
		var e Epoch
		fields := []struct {
			col int
			u   *uint64
			f   *float64
		}{
			{col: 1, u: &e.Start}, {col: 2, u: &e.End},
			{col: 3, u: &e.Instructions}, {col: 4, f: &e.IPC},
			{col: 5, u: &e.StoreWrites}, {col: 6, u: &e.Retries},
			{col: 7, u: &e.GapMoves}, {col: 8, u: &e.SpareRemaps},
			{col: 9, f: &e.ReadNJ}, {col: 10, f: &e.WriteNJ},
		}
		for _, fd := range fields {
			if fd.u != nil {
				*fd.u, err = strconv.ParseUint(row[fd.col], 10, 64)
			} else {
				*fd.f, err = strconv.ParseFloat(row[fd.col], 64)
			}
			if err != nil {
				return nil, fmt.Errorf("timeline: CSV row %d column %q: %w", n+1, csvHeader[fd.col], err)
			}
		}
		t.Epochs = append(t.Epochs, e)
	}
	return t, nil
}
