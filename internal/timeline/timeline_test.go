package timeline

import (
	"bytes"
	"testing"

	"ladder/internal/metrics"
)

// sampleAt drives the sampler through the boundary cycles interval-1,
// 2*interval-1, ... the engine observer hook would fire at.
func sampleAt(s *Sampler, interval uint64, boundaries int) {
	for i := 1; i <= boundaries; i++ {
		s.Sample(uint64(i)*interval - 1)
	}
}

// TestCounterUnchangedBetweenEpochs pins the compaction rule the
// bounded-memory design depends on: a counter that does not advance
// during a window is absent from that epoch's delta map entirely.
func TestCounterUnchangedBetweenEpochs(t *testing.T) {
	reg := metrics.NewRegistry()
	s := NewSampler(Config{Interval: 100, Registry: reg})

	reg.Counter("a").Add(5)
	reg.Counter("b").Add(2)
	s.Sample(99)

	// Second window: only "a" advances.
	reg.Counter("a").Add(3)
	s.Sample(199)

	tl := s.Timeline()
	if len(tl.Epochs) != 2 {
		t.Fatalf("epochs = %d, want 2", len(tl.Epochs))
	}
	e0, e1 := tl.Epochs[0], tl.Epochs[1]
	if e0.Counters["a"] != 5 || e0.Counters["b"] != 2 {
		t.Errorf("epoch 0 counters = %v, want a=5 b=2", e0.Counters)
	}
	if e1.Counters["a"] != 3 {
		t.Errorf("epoch 1 a = %d, want 3", e1.Counters["a"])
	}
	if _, ok := e1.Counters["b"]; ok {
		t.Errorf("epoch 1 carries unchanged counter b: %v", e1.Counters)
	}
}

// TestSeriesAppearingMidRun pins that an instrument created after the
// first boundary shows up as a full-value delta in the epoch it appears
// in — the prev-snapshot lookup treats a missing name as zero.
func TestSeriesAppearingMidRun(t *testing.T) {
	reg := metrics.NewRegistry()
	s := NewSampler(Config{Interval: 100, Registry: reg})

	reg.Counter("early").Inc()
	s.Sample(99)

	reg.Counter("late").Add(7)
	reg.Histogram("late_hist", []float64{1, 2, 4}).Observe(1.5)
	s.Sample(199)

	tl := s.Timeline()
	if len(tl.Epochs) != 2 {
		t.Fatalf("epochs = %d, want 2", len(tl.Epochs))
	}
	if _, ok := tl.Epochs[0].Counters["late"]; ok {
		t.Errorf("epoch 0 already carries the late counter")
	}
	if got := tl.Epochs[1].Counters["late"]; got != 7 {
		t.Errorf("epoch 1 late = %d, want 7", got)
	}
	q, ok := tl.Epochs[1].Quantiles["late_hist"]
	if !ok || q.Count != 1 {
		t.Errorf("epoch 1 late_hist = %+v (present=%v), want count 1", q, ok)
	}
}

// TestHistogramBucketDeltas pins the per-epoch histogram diffing: the
// delta distribution covers only the window's observations, and its
// quantiles move with where those observations landed.
func TestHistogramBucketDeltas(t *testing.T) {
	reg := metrics.NewRegistry()
	s := NewSampler(Config{Interval: 100, Registry: reg})
	h := reg.Histogram("lat", []float64{10, 20, 40, 80})

	// Window 1: all observations low.
	for i := 0; i < 10; i++ {
		h.Observe(5)
	}
	s.Sample(99)
	// Window 2: all observations high; the cumulative histogram is now
	// mixed, but the delta must be pure-high.
	for i := 0; i < 10; i++ {
		h.Observe(70)
	}
	s.Sample(199)
	// Window 3: no observations — the histogram must vanish from the map.
	s.Sample(299)

	tl := s.Timeline()
	if len(tl.Epochs) != 3 {
		t.Fatalf("epochs = %d, want 3", len(tl.Epochs))
	}
	q1 := tl.Epochs[0].Quantiles["lat"]
	if q1.Count != 10 || q1.P50 > 10 {
		t.Errorf("epoch 0 lat = %+v, want count 10 with P50 <= 10", q1)
	}
	q2 := tl.Epochs[1].Quantiles["lat"]
	if q2.Count != 10 || q2.P50 <= 40 {
		t.Errorf("epoch 1 lat = %+v, want count 10 with P50 in the (40,80] bucket", q2)
	}
	if _, ok := tl.Epochs[2].Quantiles["lat"]; ok {
		t.Errorf("epoch 2 carries a quantile entry for an idle histogram")
	}
}

// TestDecimationPreservesSums pins the bounded-memory contract: hitting
// capacity halves the series and doubles the effective interval, and
// the per-epoch deltas still sum exactly to the totals.
func TestDecimationPreservesSums(t *testing.T) {
	reg := metrics.NewRegistry()
	probe := Scalars{}
	s := NewSampler(Config{
		Interval: 10,
		Capacity: 4,
		Registry: reg,
		Probe:    func() Scalars { return probe },
	})
	const boundaries = 32
	for i := 1; i <= boundaries; i++ {
		reg.Counter("writes").Add(uint64(i))
		probe.Instructions += 100
		s.Sample(uint64(i) * 10)
	}
	tl := s.Timeline()
	if len(tl.Epochs) >= 4 {
		t.Errorf("epochs = %d, want < capacity 4", len(tl.Epochs))
	}
	if tl.EffectiveInterval <= tl.Interval {
		t.Errorf("effective interval %d did not widen past %d", tl.EffectiveInterval, tl.Interval)
	}
	var wantWrites uint64
	for i := 1; i <= boundaries; i++ {
		wantWrites += uint64(i)
	}
	var gotWrites, gotInstr uint64
	for _, e := range tl.Epochs {
		gotWrites += e.Counters["writes"]
		gotInstr += e.Instructions
	}
	if gotWrites != wantWrites {
		t.Errorf("sum of counter deltas = %d, want %d", gotWrites, wantWrites)
	}
	if gotInstr != 100*boundaries {
		t.Errorf("sum of instruction deltas = %d, want %d", gotInstr, 100*boundaries)
	}
	// Epochs must tile the run: contiguous, starting at 0.
	var prevEnd uint64
	for i, e := range tl.Epochs {
		if e.Start != prevEnd {
			t.Errorf("epoch %d starts at %d, want %d", i, e.Start, prevEnd)
		}
		prevEnd = e.End
	}
}

// TestMergeDifferentEpochCounts pins grid-cell timeline merging when
// the runs lasted different numbers of epochs: aligned epochs add,
// the longer tail copies through.
func TestMergeDifferentEpochCounts(t *testing.T) {
	mk := func(boundaries int, perEpoch uint64) *Timeline {
		reg := metrics.NewRegistry()
		s := NewSampler(Config{Interval: 100, Registry: reg})
		for i := 1; i <= boundaries; i++ {
			reg.Counter("w").Add(perEpoch)
			s.Sample(uint64(i) * 100)
		}
		return s.Timeline()
	}
	a := mk(3, 5)
	b := mk(5, 2)
	m, err := Merge(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Epochs) != 5 {
		t.Fatalf("merged epochs = %d, want 5", len(m.Epochs))
	}
	for i, e := range m.Epochs {
		want := uint64(7)
		if i >= 3 {
			want = 2
		}
		if e.Counters["w"] != want {
			t.Errorf("merged epoch %d w = %d, want %d", i, e.Counters["w"], want)
		}
	}
	// Inputs untouched.
	if a.Epochs[0].Counters["w"] != 5 || b.Epochs[0].Counters["w"] != 2 {
		t.Errorf("merge mutated its inputs: a=%v b=%v", a.Epochs[0].Counters, b.Epochs[0].Counters)
	}
	// Mismatched intervals refuse to merge.
	c := mk(2, 1)
	c.Interval = 999
	if _, err := Merge(a, c); err == nil {
		t.Errorf("merging mismatched intervals succeeded, want error")
	}
}

// TestMergeDecimatesFinerTimeline pins that merging a decimated (wider
// epoch) timeline with an undecimated one first widens the finer
// series, preserving sums.
func TestMergeDecimatesFinerTimeline(t *testing.T) {
	fine := &Timeline{Schema: Schema, Interval: 10, EffectiveInterval: 10, Epochs: []Epoch{
		{Start: 0, End: 10, Instructions: 1},
		{Start: 10, End: 20, Instructions: 2},
		{Start: 20, End: 30, Instructions: 3},
		{Start: 30, End: 40, Instructions: 4},
	}}
	coarse := &Timeline{Schema: Schema, Interval: 10, EffectiveInterval: 20, Epochs: []Epoch{
		{Start: 0, End: 20, Instructions: 10},
		{Start: 20, End: 40, Instructions: 20},
	}}
	m, err := Merge(fine, coarse)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Epochs) != 2 || m.EffectiveInterval != 20 {
		t.Fatalf("merged: %d epochs at effective %d, want 2 at 20", len(m.Epochs), m.EffectiveInterval)
	}
	if m.Epochs[0].Instructions != 13 || m.Epochs[1].Instructions != 27 {
		t.Errorf("merged instructions = %d, %d; want 13, 27", m.Epochs[0].Instructions, m.Epochs[1].Instructions)
	}
}

// TestFinalizePartialEpoch pins that Finalize closes the trailing
// partial window and is a no-op when nothing accumulated after the
// last boundary.
func TestFinalizePartialEpoch(t *testing.T) {
	reg := metrics.NewRegistry()
	s := NewSampler(Config{Interval: 100, Registry: reg})
	reg.Counter("w").Add(4)
	s.Sample(99)
	reg.Counter("w").Add(1)
	s.Finalize(150)
	tl := s.Timeline()
	if len(tl.Epochs) != 2 {
		t.Fatalf("epochs = %d, want 2", len(tl.Epochs))
	}
	last := tl.Epochs[1]
	if last.Start != 99 || last.End != 150 || last.Counters["w"] != 1 {
		t.Errorf("partial epoch = %+v, want [99,150) with w=1", last)
	}
	// Finalize at the boundary itself adds nothing.
	s2 := NewSampler(Config{Interval: 100, Registry: reg})
	s2.Sample(99)
	s2.Finalize(99)
	if n := len(s2.Timeline().Epochs); n != 1 {
		t.Errorf("epochs after no-op finalize = %d, want 1", n)
	}
}

// TestOnEpochCallback pins live streaming: every closed epoch reaches
// the callback, in order.
func TestOnEpochCallback(t *testing.T) {
	reg := metrics.NewRegistry()
	var seen []Epoch
	s := NewSampler(Config{Interval: 50, Registry: reg, OnEpoch: func(e Epoch) { seen = append(seen, e) }})
	sampleAt(s, 50, 3)
	if len(seen) != 3 {
		t.Fatalf("callback saw %d epochs, want 3", len(seen))
	}
	if seen[2].Start != 99 || seen[2].End != 149 {
		t.Errorf("epoch 2 = [%d,%d), want [99,149)", seen[2].Start, seen[2].End)
	}
}

// TestCSVRoundTrip pins the -timeline-out CSV exporter: write → read →
// write reproduces the bytes exactly.
func TestCSVRoundTrip(t *testing.T) {
	tl := &Timeline{Schema: Schema, Interval: 10, EffectiveInterval: 10, Epochs: []Epoch{
		{Start: 0, End: 10, Instructions: 42, IPC: 4.2, StoreWrites: 7, Retries: 1, ReadNJ: 0.125, WriteNJ: 3.5},
		{Start: 10, End: 25, Instructions: 9, IPC: 0.6, GapMoves: 2, SpareRemaps: 1, WriteNJ: 1e-9},
	}}
	var first bytes.Buffer
	if err := tl.WriteCSV(&first); err != nil {
		t.Fatal(err)
	}
	parsed, err := ReadCSV(bytes.NewReader(first.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var second bytes.Buffer
	if err := parsed.WriteCSV(&second); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first.Bytes(), second.Bytes()) {
		t.Errorf("CSV round trip drifted:\nfirst:\n%s\nsecond:\n%s", first.String(), second.String())
	}
}

// TestJSONRoundTrip pins the JSON exporter, including the schema check.
func TestJSONRoundTrip(t *testing.T) {
	reg := metrics.NewRegistry()
	s := NewSampler(Config{Interval: 100, Registry: reg})
	reg.Counter("w").Add(3)
	reg.Histogram("h", []float64{1, 2}).Observe(1)
	s.Sample(100)
	tl := s.Timeline()

	var buf bytes.Buffer
	if err := tl.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got.Interval != tl.Interval || len(got.Epochs) != len(tl.Epochs) {
		t.Errorf("round trip: got interval %d / %d epochs, want %d / %d",
			got.Interval, len(got.Epochs), tl.Interval, len(tl.Epochs))
	}
	if got.Epochs[0].Counters["w"] != 3 {
		t.Errorf("round trip lost counters: %v", got.Epochs[0].Counters)
	}
	if _, err := ReadJSON(bytes.NewReader([]byte(`{"schema":"bogus/v9"}`))); err == nil {
		t.Errorf("ReadJSON accepted an unknown schema")
	}
}

// TestNilSampler pins that every method is safe on a disabled sampler.
func TestNilSampler(t *testing.T) {
	var s *Sampler
	if s = NewSampler(Config{}); s != nil {
		t.Fatalf("zero-interval config built a sampler")
	}
	s.Sample(10)
	s.Finalize(20)
	if s.Interval() != 0 || s.Timeline() != nil {
		t.Errorf("nil sampler leaked state")
	}
}
