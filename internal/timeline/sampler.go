package timeline

import "ladder/internal/metrics"

// Scalars is the probe's view of the run's cumulative headline
// quantities, read live at an epoch boundary. Everything except the
// queue depths is a monotone running total; the sampler diffs
// consecutive probes into per-epoch deltas.
type Scalars struct {
	Instructions uint64
	StoreWrites  uint64
	Retries      uint64
	GapMoves     uint64
	SpareRemaps  uint64
	ReadNJ       float64
	WriteNJ      float64
	// ReadQueue/WriteQueue are instantaneous per-channel depths at the
	// boundary, recorded as-is.
	ReadQueue  []int
	WriteQueue []int
}

// Config parameterizes a Sampler.
type Config struct {
	// Interval is the sampling period in simulated cycles (required).
	Interval uint64
	// Capacity bounds the retained epochs (0 = DefaultCapacity, minimum
	// 2, rounded up to even). Reaching it merges adjacent epoch pairs
	// and doubles the effective epoch width.
	Capacity int
	// Registry is the run's instrument registry; its counters and
	// histograms are diffed per epoch. May be nil (scalars only).
	Registry *metrics.Registry
	// Probe reads the run's live cumulative scalars; called once per
	// closed epoch, on the simulation goroutine. May be nil.
	Probe func() Scalars
	// OnEpoch, when set, receives each epoch as it closes (live
	// streaming), on the simulation goroutine.
	OnEpoch func(Epoch)
}

// Sampler accumulates the per-epoch series. It is driven from the
// engine's observer hook (Sample) on the single simulation goroutine
// and is strictly an observer: it reads registry snapshots and probe
// scalars, never simulation state it could perturb.
type Sampler struct {
	cfg      Config
	capacity int
	// factor is the decimation factor: epochs close every factor-th
	// Sample call, so post-decimation epochs widen at the source instead
	// of being merged after the fact.
	factor int
	fires  int

	start    uint64
	prevSnap metrics.Snapshot
	prevSc   Scalars
	epochs   []Epoch
}

// NewSampler builds a sampler; a zero interval returns nil (disabled).
func NewSampler(cfg Config) *Sampler {
	if cfg.Interval == 0 {
		return nil
	}
	capacity := cfg.Capacity
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	if capacity < 2 {
		capacity = 2
	}
	if capacity%2 == 1 {
		capacity++
	}
	return &Sampler{cfg: cfg, capacity: capacity, factor: 1}
}

// Interval returns the configured sampling period (0 on a nil sampler).
func (s *Sampler) Interval() uint64 {
	if s == nil {
		return 0
	}
	return s.cfg.Interval
}

// Sample is the engine observer callback, invoked at the top of each
// epoch-boundary cycle. After decimation only every factor-th boundary
// closes an epoch — intermediate boundaries just count, so widened
// epochs accumulate at the source with no snapshot cost.
func (s *Sampler) Sample(now uint64) {
	if s == nil {
		return
	}
	s.fires++
	if s.fires < s.factor {
		return
	}
	s.fires = 0
	s.close(now)
}

// Finalize closes the trailing partial epoch at the run's final cycle,
// capturing everything since the last boundary (including drain-phase
// activity, which happens outside the engine's stepping). Call exactly
// once, before end-of-run absolute counter exports overwrite the
// registry. Safe on a nil sampler.
func (s *Sampler) Finalize(now uint64) {
	if s == nil || now <= s.start {
		return
	}
	s.fires = 0
	s.close(now)
}

// close seals the window [s.start, now) into an epoch.
func (s *Sampler) close(now uint64) {
	if now <= s.start {
		return
	}
	snap := s.cfg.Registry.Snapshot()
	var sc Scalars
	if s.cfg.Probe != nil {
		sc = s.cfg.Probe()
	}
	ep := Epoch{
		Start:        s.start,
		End:          now,
		Instructions: sc.Instructions - s.prevSc.Instructions,
		StoreWrites:  sc.StoreWrites - s.prevSc.StoreWrites,
		Retries:      sc.Retries - s.prevSc.Retries,
		GapMoves:     sc.GapMoves - s.prevSc.GapMoves,
		SpareRemaps:  sc.SpareRemaps - s.prevSc.SpareRemaps,
		ReadNJ:       sc.ReadNJ - s.prevSc.ReadNJ,
		WriteNJ:      sc.WriteNJ - s.prevSc.WriteNJ,
		ReadQueue:    append([]int(nil), sc.ReadQueue...),
		WriteQueue:   append([]int(nil), sc.WriteQueue...),
	}
	ep.IPC = float64(ep.Instructions) / float64(now-s.start)
	for name, v := range snap.Counters {
		if d := v - s.prevSnap.Counters[name]; d != 0 {
			if ep.Counters == nil {
				ep.Counters = make(map[string]uint64)
			}
			ep.Counters[name] = d
		}
	}
	for name, h := range snap.Histograms {
		d, changed := diffHistogram(s.prevSnap.Histograms[name], h)
		if !changed {
			continue
		}
		if ep.Quantiles == nil {
			ep.Quantiles = make(map[string]HistStat)
		}
		ep.Quantiles[name] = HistStat{Count: d.Count, P50: d.Quantile(0.50), P99: d.Quantile(0.99)}
	}
	s.prevSnap, s.prevSc, s.start = snap, sc, now
	if s.cfg.OnEpoch != nil {
		s.cfg.OnEpoch(cloneEpoch(ep))
	}
	s.epochs = append(s.epochs, ep)
	if len(s.epochs) >= s.capacity {
		s.epochs = decimate(s.epochs)
		s.factor *= 2
		s.fires = 0
	}
}

// Timeline freezes the accumulated series into its serializable form
// (nil on a nil sampler).
func (s *Sampler) Timeline() *Timeline {
	if s == nil {
		return nil
	}
	t := &Timeline{
		Schema:            Schema,
		Interval:          s.cfg.Interval,
		EffectiveInterval: s.cfg.Interval * uint64(s.factor),
	}
	t.Epochs = make([]Epoch, len(s.epochs))
	for i, e := range s.epochs {
		t.Epochs[i] = cloneEpoch(e)
	}
	return t
}
