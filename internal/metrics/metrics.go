// Package metrics provides the allocation-light instrumentation layer
// the simulator threads through every level of the stack: counters,
// sampled gauges, fixed-bucket latency histograms and 2-D count grids,
// collected in a per-run Registry and serialized as a Snapshot inside
// the run report (see internal/sim's Report and docs/METRICS.md).
//
// Design constraints, in order:
//
//   - Hot-path cost. Instruments are plain structs updated with a few
//     integer/float operations: no locks, no allocation and no interface
//     dispatch on the observation path. A simulation run is
//     single-goroutine, so instruments need no atomics.
//   - Optional wiring. Every observation method is safe on a nil
//     receiver, so a layer constructed without instrumentation (unit
//     tests, library embedding) pays one predictable branch.
//   - Mergeability. RunGrid executes independent runs on a worker pool;
//     each run owns a private Registry and the grid merges them into one
//     fleet-wide view afterwards (counters add, histograms add
//     bucket-wise, gauges combine their sample moments).
package metrics

import (
	"fmt"
	"math"
)

// Counter is a monotonically increasing event count.
type Counter struct {
	v uint64
}

// Inc adds one. Safe on a nil receiver.
func (c *Counter) Inc() {
	if c != nil {
		c.v++
	}
}

// Add adds n. Safe on a nil receiver.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v += n
	}
}

// Value returns the current count (0 on a nil receiver).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v
}

// merge folds another counter in.
func (c *Counter) merge(o *Counter) { c.v += o.v }

// Gauge tracks a sampled instantaneous quantity (queue occupancy, depth)
// through its sample moments: last, min, max, sum and sample count. The
// mean over samples approximates the time-average when sampling is
// periodic.
type Gauge struct {
	last     float64
	min, max float64
	sum      float64
	n        uint64
}

// Observe records one sample. Safe on a nil receiver.
func (g *Gauge) Observe(v float64) {
	if g == nil {
		return
	}
	if g.n == 0 || v < g.min {
		g.min = v
	}
	if g.n == 0 || v > g.max {
		g.max = v
	}
	g.last = v
	g.sum += v
	g.n++
}

// Samples returns the number of observations (0 on a nil receiver).
func (g *Gauge) Samples() uint64 {
	if g == nil {
		return 0
	}
	return g.n
}

// Mean returns the mean over samples (0 when empty or nil).
func (g *Gauge) Mean() float64 {
	if g == nil || g.n == 0 {
		return 0
	}
	return g.sum / float64(g.n)
}

// Max returns the largest sample (0 when empty or nil).
func (g *Gauge) Max() float64 {
	if g == nil {
		return 0
	}
	return g.max
}

// merge folds another gauge's moments in. The merged "last" keeps the
// receiver's unless it had no samples (order across merged runs is not
// meaningful).
func (g *Gauge) merge(o *Gauge) {
	if o.n == 0 {
		return
	}
	if g.n == 0 {
		*g = *o
		return
	}
	if o.min < g.min {
		g.min = o.min
	}
	if o.max > g.max {
		g.max = o.max
	}
	g.sum += o.sum
	g.n += o.n
}

// Histogram is a fixed-bucket distribution: bounds[i] is the inclusive
// upper edge of bucket i, and one extra overflow bucket catches values
// above the last bound. Quantiles interpolate linearly inside a bucket
// and are clamped by the exact observed min/max, so single-sample and
// narrow distributions report exact values.
type Histogram struct {
	bounds   []float64
	counts   []uint64
	count    uint64
	sum      float64
	min, max float64
}

// NewHistogram builds a histogram over the given strictly increasing
// bucket upper bounds. The bounds slice is retained (callers should not
// mutate it); histograms created from the same bounds expression are
// mergeable.
func NewHistogram(bounds []float64) (*Histogram, error) {
	if len(bounds) == 0 {
		return nil, fmt.Errorf("metrics: histogram needs at least one bound")
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			return nil, fmt.Errorf("metrics: histogram bounds must increase (bound %d: %v after %v)", i, bounds[i], bounds[i-1])
		}
	}
	return &Histogram{bounds: bounds, counts: make([]uint64, len(bounds)+1)}, nil
}

// LinearBounds returns n upper bounds first, first+width, ...,
// first+(n-1)*width — the fixed-resolution buckets used for the RESET
// latency window.
func LinearBounds(first, width float64, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = first + float64(i)*width
	}
	return out
}

// ExponentialBounds returns n upper bounds first, first*factor, ... —
// power-law buckets for long-tailed quantities.
func ExponentialBounds(first, factor float64, n int) []float64 {
	out := make([]float64, n)
	v := first
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// Observe records one value. Safe on a nil receiver.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if h.count == 0 || v > h.max {
		h.max = v
	}
	h.count++
	h.sum += v
	for i, b := range h.bounds {
		if v <= b {
			h.counts[i]++
			return
		}
	}
	h.counts[len(h.bounds)]++ // overflow
}

// Count returns the number of observations (0 on a nil receiver).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count
}

// Sum returns the sum of observations (0 on a nil receiver).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return h.sum
}

// Mean returns the mean observation (0 when empty or nil).
func (h *Histogram) Mean() float64 {
	if h == nil || h.count == 0 {
		return 0
	}
	return h.sum / float64(h.count)
}

// Max returns the largest observation (0 when empty or nil).
func (h *Histogram) Max() float64 {
	if h == nil || h.count == 0 {
		return 0
	}
	return h.max
}

// Min returns the smallest observation (0 when empty or nil).
func (h *Histogram) Min() float64 {
	if h == nil || h.count == 0 {
		return 0
	}
	return h.min
}

// Quantile returns the p-quantile (p in [0,1], clamped), interpolating
// linearly inside the containing bucket and clamping to the observed
// min/max. Empty and nil histograms return 0.
func (h *Histogram) Quantile(p float64) float64 {
	if h == nil {
		return 0
	}
	return h.Snapshot().Quantile(p)
}

// Merge folds another histogram with identical bounds into this one.
func (h *Histogram) Merge(o *Histogram) error {
	if h == nil || o == nil {
		return fmt.Errorf("metrics: cannot merge nil histogram")
	}
	if len(h.bounds) != len(o.bounds) {
		return fmt.Errorf("metrics: merging histograms with %d vs %d bounds", len(h.bounds), len(o.bounds))
	}
	for i := range h.bounds {
		if h.bounds[i] != o.bounds[i] {
			return fmt.Errorf("metrics: merging histograms with mismatched bound %d (%v vs %v)", i, h.bounds[i], o.bounds[i])
		}
	}
	if o.count == 0 {
		return nil
	}
	if h.count == 0 || o.min < h.min {
		h.min = o.min
	}
	if h.count == 0 || o.max > h.max {
		h.max = o.max
	}
	for i := range h.counts {
		h.counts[i] += o.counts[i]
	}
	h.count += o.count
	h.sum += o.sum
	return nil
}

// Snapshot freezes the histogram into its serializable form.
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	s := HistogramSnapshot{
		Bounds: append([]float64(nil), h.bounds...),
		Counts: append([]uint64(nil), h.counts...),
		Count:  h.count,
		Sum:    h.sum,
	}
	if h.count > 0 {
		s.Min, s.Max = h.min, h.max
		s.Mean = h.sum / float64(h.count)
	}
	s.P50 = s.Quantile(0.50)
	s.P95 = s.Quantile(0.95)
	s.P99 = s.Quantile(0.99)
	return s
}

// Grid is a fixed 2-D count matrix, used for per-timing-table-cell write
// counts (rows = wordline-location buckets, cols = bitline-location
// buckets). Out-of-range indices clamp to the edge, matching the timing
// table's own clamping lookup.
type Grid struct {
	rows, cols int
	counts     []uint64
}

// NewGrid builds a rows×cols grid.
func NewGrid(rows, cols int) (*Grid, error) {
	if rows <= 0 || cols <= 0 {
		return nil, fmt.Errorf("metrics: grid dimensions must be positive (%d×%d)", rows, cols)
	}
	return &Grid{rows: rows, cols: cols, counts: make([]uint64, rows*cols)}, nil
}

// Inc adds one to cell (r, c), clamping indices into range. Safe on a
// nil receiver.
func (g *Grid) Inc(r, c int) {
	if g == nil {
		return
	}
	if r < 0 {
		r = 0
	} else if r >= g.rows {
		r = g.rows - 1
	}
	if c < 0 {
		c = 0
	} else if c >= g.cols {
		c = g.cols - 1
	}
	g.counts[r*g.cols+c]++
}

// At returns the count at (r, c), or 0 when out of range or nil.
func (g *Grid) At(r, c int) uint64 {
	if g == nil || r < 0 || r >= g.rows || c < 0 || c >= g.cols {
		return 0
	}
	return g.counts[r*g.cols+c]
}

// Total returns the sum over all cells (0 on a nil receiver).
func (g *Grid) Total() uint64 {
	if g == nil {
		return 0
	}
	var t uint64
	for _, v := range g.counts {
		t += v
	}
	return t
}

// Merge folds another grid of identical shape into this one.
func (g *Grid) Merge(o *Grid) error {
	if g == nil || o == nil {
		return fmt.Errorf("metrics: cannot merge nil grid")
	}
	if g.rows != o.rows || g.cols != o.cols {
		return fmt.Errorf("metrics: merging %d×%d grid into %d×%d", o.rows, o.cols, g.rows, g.cols)
	}
	for i := range g.counts {
		g.counts[i] += o.counts[i]
	}
	return nil
}

// Snapshot freezes the grid into its serializable form.
func (g *Grid) Snapshot() GridSnapshot {
	if g == nil {
		return GridSnapshot{}
	}
	s := GridSnapshot{Rows: g.rows, Cols: g.cols, Counts: make([][]uint64, g.rows)}
	for r := 0; r < g.rows; r++ {
		s.Counts[r] = append([]uint64(nil), g.counts[r*g.cols:(r+1)*g.cols]...)
	}
	return s
}

// quantileRank converts a probability into a 1-based rank over count
// observations (the nearest-rank definition, so p=0 is the minimum and
// p=1 the maximum).
func quantileRank(p float64, count uint64) uint64 {
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	rank := uint64(math.Ceil(p * float64(count)))
	if rank == 0 {
		rank = 1
	}
	return rank
}
