package metrics

import (
	"fmt"
	"strings"
)

// Text renders the snapshot for humans: every instrument in sorted-name
// order, one line each (grids get one line per nonzero row). It is the
// body of laddersim's -metrics output and of Report.WriteText.
func (s Snapshot) Text() string {
	var b strings.Builder
	for _, name := range s.SortedNames() {
		if v, ok := s.Counters[name]; ok {
			fmt.Fprintf(&b, "  %-44s %d\n", name, v)
			continue
		}
		if g, ok := s.Gauges[name]; ok {
			fmt.Fprintf(&b, "  %-44s last %.1f  min %.1f  max %.1f  mean %.2f  (%d samples)\n",
				name, g.Last, g.Min, g.Max, g.Mean, g.Samples)
			continue
		}
		if h, ok := s.Histograms[name]; ok {
			fmt.Fprintf(&b, "  %-44s n %d  mean %.1f  p50 %.1f  p95 %.1f  p99 %.1f  max %.1f\n",
				name, h.Count, h.Mean, h.P50, h.P95, h.P99, h.Max)
			continue
		}
		if g, ok := s.Grids[name]; ok {
			total := uint64(0)
			for _, row := range g.Counts {
				for _, c := range row {
					total += c
				}
			}
			fmt.Fprintf(&b, "  %-44s %dx%d grid, %d total\n", name, g.Rows, g.Cols, total)
			for r, row := range g.Counts {
				nonzero := false
				for _, c := range row {
					if c > 0 {
						nonzero = true
						break
					}
				}
				if !nonzero {
					continue
				}
				fmt.Fprintf(&b, "    row %d:", r)
				for _, c := range row {
					fmt.Fprintf(&b, " %8d", c)
				}
				b.WriteByte('\n')
			}
		}
	}
	return b.String()
}
