package metrics

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// PromLabel is one name="value" label pair attached to exported samples.
type PromLabel struct {
	Name  string
	Value string
}

// PromSample is one extra sample to export alongside a snapshot —
// process-level series (active jobs, uptime) that live outside any
// registry. Type must be "counter" or "gauge"; counter names get the
// "_total" suffix appended like registry counters do.
type PromSample struct {
	Name   string
	Type   string
	Help   string
	Value  float64
	Labels []PromLabel
}

// WritePrometheus renders a metrics snapshot in the Prometheus text
// exposition format (version 0.0.4), the form /metrics/prom serves:
//
//   - counters export as "ladder_<name>_total" (dots become underscores),
//   - gauges export their last observation as "ladder_<name>",
//   - histograms export cumulative "_bucket{le=...}" series ending in
//     le="+Inf", plus "_sum" and "_count",
//   - grids (2-D bucket matrices, up to 512×512 cells) export as a
//     single "ladder_<name>_total" holding the cell sum — cell-wise
//     export would be a cardinality explosion no scraper wants.
//
// The shared labels attach to every sample (run identity, job ID), and
// extras append after the snapshot's instruments. Output is sorted by
// metric name, so identical inputs render byte-identically. The result
// passes promcheck.Lint; a test pins that.
func WritePrometheus(w io.Writer, s Snapshot, labels []PromLabel, extra ...PromSample) error {
	var b strings.Builder

	names := make([]string, 0, len(s.Counters))
	for n := range s.Counters {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		m := promName(n) + "_total"
		fmt.Fprintf(&b, "# TYPE %s counter\n", m)
		fmt.Fprintf(&b, "%s%s %s\n", m, promLabels(labels, nil), promFloat(float64(s.Counters[n])))
	}

	names = names[:0]
	for n := range s.Gauges {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		m := promName(n)
		fmt.Fprintf(&b, "# TYPE %s gauge\n", m)
		fmt.Fprintf(&b, "%s%s %s\n", m, promLabels(labels, nil), promFloat(s.Gauges[n].Last))
	}

	names = names[:0]
	for n := range s.Histograms {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		h := s.Histograms[n]
		m := promName(n)
		fmt.Fprintf(&b, "# TYPE %s histogram\n", m)
		var cum uint64
		for i, bound := range h.Bounds {
			if i < len(h.Counts) {
				cum += h.Counts[i]
			}
			le := PromLabel{Name: "le", Value: promFloat(bound)}
			fmt.Fprintf(&b, "%s_bucket%s %d\n", m, promLabels(labels, &le), cum)
		}
		le := PromLabel{Name: "le", Value: "+Inf"}
		fmt.Fprintf(&b, "%s_bucket%s %d\n", m, promLabels(labels, &le), h.Count)
		fmt.Fprintf(&b, "%s_sum%s %s\n", m, promLabels(labels, nil), promFloat(h.Sum))
		fmt.Fprintf(&b, "%s_count%s %d\n", m, promLabels(labels, nil), h.Count)
	}

	names = names[:0]
	for n := range s.Grids {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		var total uint64
		for _, row := range s.Grids[n].Counts {
			for _, c := range row {
				total += c
			}
		}
		m := promName(n) + "_total"
		fmt.Fprintf(&b, "# TYPE %s counter\n", m)
		fmt.Fprintf(&b, "%s%s %s\n", m, promLabels(labels, nil), promFloat(float64(total)))
	}

	// Extras may repeat a name with different labels (one series per
	// job); the family is declared once, on first occurrence.
	declared := map[string]string{}
	for _, x := range extra {
		if x.Type != "counter" && x.Type != "gauge" {
			return fmt.Errorf("metrics: extra sample %q has type %q (want counter or gauge)", x.Name, x.Type)
		}
		m := promName(x.Name)
		if x.Type == "counter" {
			m += "_total"
		}
		if prev, ok := declared[m]; ok {
			if prev != x.Type {
				return fmt.Errorf("metrics: extra sample %q redeclared as %s (was %s)", x.Name, x.Type, prev)
			}
		} else {
			if x.Help != "" {
				fmt.Fprintf(&b, "# HELP %s %s\n", m, promEscapeHelp(x.Help))
			}
			fmt.Fprintf(&b, "# TYPE %s %s\n", m, x.Type)
			declared[m] = x.Type
		}
		fmt.Fprintf(&b, "%s%s %s\n", m, promLabels(append(append([]PromLabel{}, labels...), x.Labels...), nil), promFloat(x.Value))
	}

	_, err := io.WriteString(w, b.String())
	return err
}

// promName maps a registry instrument name onto the Prometheus
// namespace: "ladder_" prefix, dots and any other character outside
// [a-zA-Z0-9_] become underscores.
func promName(name string) string {
	var b strings.Builder
	b.WriteString("ladder_")
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// promLabels renders a label set (plus an optional extra label, for
// histogram "le") as {a="b",c="d"}, empty string for no labels.
func promLabels(labels []PromLabel, extra *PromLabel) string {
	if len(labels) == 0 && extra == nil {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(promLabelName(l.Name))
		b.WriteString(`="`)
		b.WriteString(promEscapeValue(l.Value))
		b.WriteByte('"')
	}
	if extra != nil {
		if len(labels) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(extra.Name)
		b.WriteString(`="`)
		b.WriteString(promEscapeValue(extra.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// promLabelName sanitizes a label name to [a-zA-Z_][a-zA-Z0-9_]*.
func promLabelName(name string) string {
	var b strings.Builder
	for i, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_':
			b.WriteRune(r)
		case r >= '0' && r <= '9' && i > 0:
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	if b.Len() == 0 {
		return "_"
	}
	return b.String()
}

// promEscapeValue escapes a label value per the exposition format:
// backslash, double quote and newline.
func promEscapeValue(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

// promEscapeHelp escapes a HELP text: backslash and newline only (quotes
// are legal there).
func promEscapeHelp(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

// promFloat renders a sample value: shortest round-trippable form.
func promFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
