package metrics_test

import (
	"bytes"
	"strings"
	"testing"

	"ladder/internal/metrics"
	"ladder/internal/metrics/promcheck"
)

func promSnapshot() metrics.Snapshot {
	reg := metrics.NewRegistry()
	reg.Counter("memctrl.ch0.resets").Add(42)
	reg.Counter("fault.retries").Add(3)
	reg.Gauge("memctrl.ch0.write_queue").Observe(7)
	h := reg.Histogram("memctrl.ch0.reset_latency_ns", []float64{10, 100, 1000})
	h.Observe(5)
	h.Observe(50)
	h.Observe(5000)
	grid := reg.Grid("core.est.reset_table_cells", 4, 4)
	for i := 0; i < 9; i++ {
		grid.Inc(1, 2)
	}
	return reg.Snapshot()
}

// TestWritePrometheusLints is the vendored promtool-style gate: every
// exposition the renderer produces must pass promcheck.Lint.
func TestWritePrometheusLints(t *testing.T) {
	var buf bytes.Buffer
	labels := []metrics.PromLabel{{Name: "run", Value: "lbm/ladder-hybrid"}}
	extra := metrics.PromSample{
		Name: "service.jobs.active", Type: "gauge",
		Help: "jobs currently executing", Value: 2,
	}
	if err := metrics.WritePrometheus(&buf, promSnapshot(), labels, extra); err != nil {
		t.Fatal(err)
	}
	if err := promcheck.Lint(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("rendered exposition fails lint: %v\n%s", err, buf.String())
	}
	out := buf.String()

	for _, want := range []string{
		"# TYPE ladder_memctrl_ch0_resets_total counter",
		`ladder_memctrl_ch0_resets_total{run="lbm/ladder-hybrid"} 42`,
		"# TYPE ladder_memctrl_ch0_write_queue gauge",
		"# TYPE ladder_memctrl_ch0_reset_latency_ns histogram",
		`ladder_memctrl_ch0_reset_latency_ns_bucket{run="lbm/ladder-hybrid",le="+Inf"} 3`,
		`ladder_memctrl_ch0_reset_latency_ns_count{run="lbm/ladder-hybrid"} 3`,
		// The 4×4 grid collapses to one counter, not 16 series.
		`ladder_core_est_reset_table_cells_total{run="lbm/ladder-hybrid"} 9`,
		"# HELP ladder_service_jobs_active jobs currently executing",
		`ladder_service_jobs_active{run="lbm/ladder-hybrid"} 2`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q\n%s", want, out)
		}
	}
	// Every sample line is namespaced.
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if !strings.HasPrefix(line, "ladder_") {
			t.Errorf("sample outside the ladder_ namespace: %q", line)
		}
	}
}

// TestWritePrometheusCumulativeBuckets pins the bucket transform: the
// registry stores per-bucket counts, the exposition needs cumulative.
func TestWritePrometheusCumulativeBuckets(t *testing.T) {
	var buf bytes.Buffer
	if err := metrics.WritePrometheus(&buf, promSnapshot(), nil); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`ladder_memctrl_ch0_reset_latency_ns_bucket{le="10"} 1`,
		`ladder_memctrl_ch0_reset_latency_ns_bucket{le="100"} 2`,
		`ladder_memctrl_ch0_reset_latency_ns_bucket{le="1000"} 2`,
		`ladder_memctrl_ch0_reset_latency_ns_bucket{le="+Inf"} 3`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q\n%s", want, out)
		}
	}
}

// TestWritePrometheusLabelEscaping pins label-value escaping: quotes,
// backslashes and newlines must survive a round trip through a scraper.
func TestWritePrometheusLabelEscaping(t *testing.T) {
	var buf bytes.Buffer
	labels := []metrics.PromLabel{{Name: "job", Value: "a\"b\\c\nd"}}
	if err := metrics.WritePrometheus(&buf, metrics.Snapshot{}, labels,
		metrics.PromSample{Name: "up", Type: "gauge", Value: 1}); err != nil {
		t.Fatal(err)
	}
	want := `ladder_up{job="a\"b\\c\nd"} 1`
	if !strings.Contains(buf.String(), want) {
		t.Errorf("exposition missing %q\n%s", want, buf.String())
	}
	if err := promcheck.Lint(bytes.NewReader(buf.Bytes())); err != nil {
		t.Errorf("escaped exposition fails lint: %v", err)
	}
}

// TestWritePrometheusRejectsBadExtra pins the extra-sample type check.
func TestWritePrometheusRejectsBadExtra(t *testing.T) {
	var buf bytes.Buffer
	err := metrics.WritePrometheus(&buf, metrics.Snapshot{}, nil,
		metrics.PromSample{Name: "x", Type: "histogram", Value: 1})
	if err == nil {
		t.Fatal("histogram-typed extra sample should be rejected")
	}
}

// TestWritePrometheusDeterministic pins byte-identical output for
// identical snapshots (map iteration must not leak through).
func TestWritePrometheusDeterministic(t *testing.T) {
	var a, b bytes.Buffer
	snap := promSnapshot()
	if err := metrics.WritePrometheus(&a, snap, nil); err != nil {
		t.Fatal(err)
	}
	if err := metrics.WritePrometheus(&b, snap, nil); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("identical snapshots rendered differently")
	}
}
