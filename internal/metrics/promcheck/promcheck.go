// Package promcheck lints Prometheus text-exposition output (format
// 0.0.4) the way `promtool check metrics` would, without the
// dependency: metric and label names must be legal, every sample needs
// a preceding # TYPE for its family, counters must end in _total,
// histograms must expose cumulative (monotone nondecreasing) buckets
// ending in le="+Inf" with matching _sum/_count. CI and the service
// tests run every /metrics/prom body through Lint so a malformed
// exposition fails before a real scraper sees it.
package promcheck

import (
	"bufio"
	"fmt"
	"io"
	"regexp"
	"strconv"
	"strings"
)

var (
	metricNameRe = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	labelNameRe  = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
	// sampleRe splits a sample line into name, optional label block, and
	// the value (timestamps are not used by our exporters and are
	// rejected by the value parse).
	sampleRe = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})?\s+(\S+)$`)
	labelRe  = regexp.MustCompile(`^([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"$`)
)

// family tracks one declared metric family while linting.
type family struct {
	typ string
	// buckets tracks per-labelset histogram bucket state: previous
	// cumulative count and le, and whether +Inf closed the series.
	buckets map[string]*bucketState
	samples int
}

type bucketState struct {
	prev   float64
	prevLe float64
	inf    bool
	count  float64
	hasCnt bool
	infVal float64
}

// Lint reads an exposition and returns the first violation found (nil
// for a clean document).
func Lint(r io.Reader) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	families := map[string]*family{}
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if err := lintComment(line, lineNo, families); err != nil {
				return err
			}
			continue
		}
		if err := lintSample(line, lineNo, families); err != nil {
			return err
		}
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("promcheck: reading input: %w", err)
	}
	for name, f := range families {
		if f.samples == 0 {
			return fmt.Errorf("promcheck: family %s declared but has no samples", name)
		}
		if f.typ == "histogram" {
			for ls, st := range f.buckets {
				if !st.inf {
					return fmt.Errorf("promcheck: histogram %s%s has no le=\"+Inf\" bucket", name, ls)
				}
				if st.hasCnt && st.count != st.infVal {
					return fmt.Errorf("promcheck: histogram %s%s _count %g != +Inf bucket %g", name, ls, st.count, st.infVal)
				}
			}
		}
	}
	return nil
}

// lintComment handles # TYPE and # HELP lines (other comments pass).
func lintComment(line string, n int, families map[string]*family) error {
	fields := strings.Fields(line)
	if len(fields) < 2 {
		return nil
	}
	switch fields[1] {
	case "TYPE":
		if len(fields) != 4 {
			return fmt.Errorf("promcheck: line %d: malformed TYPE line %q", n, line)
		}
		name, typ := fields[2], fields[3]
		if !metricNameRe.MatchString(name) {
			return fmt.Errorf("promcheck: line %d: invalid metric name %q", n, name)
		}
		switch typ {
		case "counter", "gauge", "histogram", "summary", "untyped":
		default:
			return fmt.Errorf("promcheck: line %d: unknown metric type %q", n, typ)
		}
		if typ == "counter" && !strings.HasSuffix(name, "_total") {
			return fmt.Errorf("promcheck: line %d: counter %s should end in _total", n, name)
		}
		if _, dup := families[name]; dup {
			return fmt.Errorf("promcheck: line %d: duplicate TYPE for %s", n, name)
		}
		families[name] = &family{typ: typ, buckets: map[string]*bucketState{}}
	case "HELP":
		if len(fields) < 3 {
			return fmt.Errorf("promcheck: line %d: malformed HELP line %q", n, line)
		}
		if !metricNameRe.MatchString(fields[2]) {
			return fmt.Errorf("promcheck: line %d: invalid metric name %q", n, fields[2])
		}
	}
	return nil
}

// lintSample validates one sample line against its declared family.
func lintSample(line string, n int, families map[string]*family) error {
	m := sampleRe.FindStringSubmatch(line)
	if m == nil {
		return fmt.Errorf("promcheck: line %d: unparseable sample %q", n, line)
	}
	name, labelBlock, valueStr := m[1], m[2], m[3]
	value, err := strconv.ParseFloat(valueStr, 64)
	if err != nil && valueStr != "+Inf" && valueStr != "-Inf" && valueStr != "NaN" {
		return fmt.Errorf("promcheck: line %d: bad sample value %q", n, valueStr)
	}

	le, leOK, otherLabels, err := lintLabels(labelBlock, n)
	if err != nil {
		return err
	}

	fam, base := resolveFamily(name, families)
	if fam == nil {
		return fmt.Errorf("promcheck: line %d: sample %s has no preceding # TYPE", n, name)
	}
	fam.samples++
	if fam.typ != "histogram" && fam.typ != "summary" {
		if leOK {
			return fmt.Errorf("promcheck: line %d: %s metric %s carries an le label", n, fam.typ, name)
		}
		return nil
	}

	// Histogram series bookkeeping, per non-le label set.
	st, ok := fam.buckets[otherLabels]
	if !ok {
		st = &bucketState{prevLe: -1e308}
		fam.buckets[otherLabels] = st
	}
	switch {
	case strings.HasSuffix(name, "_bucket"):
		if !leOK {
			return fmt.Errorf("promcheck: line %d: histogram bucket %s missing le label", n, name)
		}
		if le == "+Inf" {
			st.inf = true
			st.infVal = value
			if value < st.prev {
				return fmt.Errorf("promcheck: line %d: histogram %s +Inf bucket %g below previous bucket %g", n, base, value, st.prev)
			}
			return nil
		}
		bound, err := strconv.ParseFloat(le, 64)
		if err != nil {
			return fmt.Errorf("promcheck: line %d: bad le value %q", n, le)
		}
		if st.inf {
			return fmt.Errorf("promcheck: line %d: histogram %s bucket after le=\"+Inf\"", n, base)
		}
		if bound <= st.prevLe {
			return fmt.Errorf("promcheck: line %d: histogram %s le bounds not increasing (%g after %g)", n, base, bound, st.prevLe)
		}
		if value < st.prev {
			return fmt.Errorf("promcheck: line %d: histogram %s buckets not cumulative (%g after %g)", n, base, value, st.prev)
		}
		st.prev, st.prevLe = value, bound
	case strings.HasSuffix(name, "_count"):
		st.count, st.hasCnt = value, true
	case strings.HasSuffix(name, "_sum"):
		// Any float is fine.
	default:
		return fmt.Errorf("promcheck: line %d: histogram family %s has non-histogram sample %s", n, base, name)
	}
	return nil
}

// lintLabels validates a {..} block, returning the le value (if any)
// and the remaining labels in source order (the histogram series key).
func lintLabels(block string, n int) (le string, leOK bool, others string, err error) {
	if block == "" {
		return "", false, "", nil
	}
	inner := strings.TrimSuffix(strings.TrimPrefix(block, "{"), "}")
	if inner == "" {
		return "", false, "", nil
	}
	var rest []string
	for _, part := range splitLabels(inner) {
		m := labelRe.FindStringSubmatch(part)
		if m == nil {
			return "", false, "", fmt.Errorf("promcheck: line %d: malformed label %q", n, part)
		}
		if !labelNameRe.MatchString(m[1]) {
			return "", false, "", fmt.Errorf("promcheck: line %d: invalid label name %q", n, m[1])
		}
		if m[1] == "le" {
			le, leOK = m[2], true
			continue
		}
		rest = append(rest, part)
	}
	if len(rest) == 0 {
		// Normalize: a histogram's bucket lines (le only) and its
		// _sum/_count lines (no labels) must share one series key.
		return le, leOK, "", nil
	}
	return le, leOK, "{" + strings.Join(rest, ",") + "}", nil
}

// splitLabels splits "a=\"x\",b=\"y\"" on commas outside quoted values.
func splitLabels(s string) []string {
	var out []string
	start, inQuote, escaped := 0, false, false
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case escaped:
			escaped = false
		case c == '\\':
			escaped = true
		case c == '"':
			inQuote = !inQuote
		case c == ',' && !inQuote:
			out = append(out, s[start:i])
			start = i + 1
		}
	}
	return append(out, s[start:])
}

// resolveFamily maps a sample name to its declared family, stripping
// histogram suffixes when the base name is a histogram.
func resolveFamily(name string, families map[string]*family) (*family, string) {
	if f, ok := families[name]; ok {
		return f, name
	}
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		if base, ok := strings.CutSuffix(name, suf); ok {
			if f, ok := families[base]; ok && (f.typ == "histogram" || f.typ == "summary") {
				return f, base
			}
		}
	}
	return nil, name
}
