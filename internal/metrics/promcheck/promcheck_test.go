package promcheck

import (
	"strings"
	"testing"
)

func lint(s string) error {
	return Lint(strings.NewReader(s))
}

func TestLintAcceptsWellFormed(t *testing.T) {
	doc := `# TYPE ladder_writes_total counter
ladder_writes_total{run="x"} 42
# TYPE ladder_queue gauge
ladder_queue 3
# TYPE ladder_lat histogram
ladder_lat_bucket{le="10"} 1
ladder_lat_bucket{le="100"} 3
ladder_lat_bucket{le="+Inf"} 4
ladder_lat_sum 210
ladder_lat_count 4
`
	if err := lint(doc); err != nil {
		t.Fatalf("well-formed exposition rejected: %v", err)
	}
}

func TestLintViolations(t *testing.T) {
	cases := []struct {
		name, doc, wantErr string
	}{
		{"sample without TYPE",
			"ladder_x_total 1\n", "no preceding # TYPE"},
		{"counter without _total",
			"# TYPE ladder_x counter\nladder_x 1\n", "should end in _total"},
		{"bad metric name",
			"# TYPE 9bad_total counter\n9bad_total 1\n", "invalid metric name"},
		{"bad value",
			"# TYPE ladder_x_total counter\nladder_x_total oops\n", "bad sample value"},
		{"non-cumulative buckets",
			"# TYPE ladder_h histogram\nladder_h_bucket{le=\"1\"} 5\nladder_h_bucket{le=\"2\"} 3\nladder_h_bucket{le=\"+Inf\"} 5\nladder_h_count 5\n",
			"not cumulative"},
		{"missing +Inf",
			"# TYPE ladder_h histogram\nladder_h_bucket{le=\"1\"} 5\nladder_h_count 5\n",
			`no le="+Inf"`},
		{"count mismatch",
			"# TYPE ladder_h histogram\nladder_h_bucket{le=\"+Inf\"} 5\nladder_h_count 4\n",
			"_count 4 != +Inf bucket 5"},
		{"le on a counter",
			"# TYPE ladder_x_total counter\nladder_x_total{le=\"1\"} 1\n", "carries an le label"},
		{"declared but empty",
			"# TYPE ladder_x_total counter\n", "has no samples"},
		{"duplicate TYPE",
			"# TYPE ladder_x_total counter\nladder_x_total 1\n# TYPE ladder_x_total counter\n",
			"duplicate TYPE"},
		{"malformed label",
			"# TYPE ladder_x_total counter\nladder_x_total{run=x} 1\n", "malformed label"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := lint(c.doc)
			if err == nil {
				t.Fatalf("lint accepted:\n%s", c.doc)
			}
			if !strings.Contains(err.Error(), c.wantErr) {
				t.Fatalf("error %q does not mention %q", err, c.wantErr)
			}
		})
	}
}

func TestLintEscapedLabelValues(t *testing.T) {
	doc := "# TYPE ladder_x_total counter\n" +
		`ladder_x_total{job="a\"b\\c\nd",run="y"} 1` + "\n"
	if err := lint(doc); err != nil {
		t.Fatalf("escaped label value rejected: %v", err)
	}
}
