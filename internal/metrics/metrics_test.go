package metrics

import (
	"encoding/json"
	"math"
	"testing"
)

func mustHist(t *testing.T, bounds []float64) *Histogram {
	t.Helper()
	h, err := NewHistogram(bounds)
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestNilInstrumentsAreSafe(t *testing.T) {
	var c *Counter
	c.Inc()
	c.Add(5)
	if c.Value() != 0 {
		t.Fatal("nil counter value")
	}
	var g *Gauge
	g.Observe(3)
	if g.Samples() != 0 || g.Mean() != 0 || g.Max() != 0 {
		t.Fatal("nil gauge should be empty")
	}
	var h *Histogram
	h.Observe(3)
	if h.Count() != 0 || h.Quantile(0.5) != 0 || h.Mean() != 0 {
		t.Fatal("nil histogram should be empty")
	}
	var gr *Grid
	gr.Inc(1, 1)
	if gr.Total() != 0 || gr.At(1, 1) != 0 {
		t.Fatal("nil grid should be empty")
	}
	var r *Registry
	if r.Counter("x") != nil || r.Gauge("x") != nil ||
		r.Histogram("x", []float64{1}) != nil || r.Grid("x", 1, 1) != nil {
		t.Fatal("nil registry should hand out nil instruments")
	}
	if s := r.Snapshot(); s.Counters == nil || len(s.Counters) != 0 {
		t.Fatal("nil registry snapshot should be empty but non-nil")
	}
}

func TestHistogramBoundsValidation(t *testing.T) {
	if _, err := NewHistogram(nil); err == nil {
		t.Fatal("empty bounds should fail")
	}
	if _, err := NewHistogram([]float64{1, 1}); err == nil {
		t.Fatal("non-increasing bounds should fail")
	}
	if _, err := NewHistogram([]float64{2, 1}); err == nil {
		t.Fatal("decreasing bounds should fail")
	}
}

func TestHistogramEmptyQuantiles(t *testing.T) {
	h := mustHist(t, LinearBounds(10, 10, 5))
	for _, p := range []float64{0, 0.5, 0.99, 1} {
		if q := h.Quantile(p); q != 0 {
			t.Fatalf("empty histogram quantile(%v) = %v, want 0", p, q)
		}
	}
	s := h.Snapshot()
	if s.Count != 0 || s.P50 != 0 || s.NonzeroBuckets() != 0 {
		t.Fatalf("empty snapshot: %+v", s)
	}
}

func TestHistogramSingleSample(t *testing.T) {
	h := mustHist(t, LinearBounds(10, 10, 5))
	h.Observe(23)
	for _, p := range []float64{0, 0.5, 0.95, 0.99, 1} {
		if q := h.Quantile(p); q != 23 {
			t.Fatalf("single-sample quantile(%v) = %v, want 23", p, q)
		}
	}
	if h.Min() != 23 || h.Max() != 23 || h.Mean() != 23 {
		t.Fatalf("single-sample stats: min=%v max=%v mean=%v", h.Min(), h.Max(), h.Mean())
	}
	if got := h.Snapshot().NonzeroBuckets(); got != 1 {
		t.Fatalf("nonzero buckets = %d, want 1", got)
	}
}

func TestHistogramQuantilesUniform(t *testing.T) {
	// 100 samples 1..100 into width-10 buckets: quantiles should land
	// within one bucket width of the exact order statistic.
	h := mustHist(t, LinearBounds(10, 10, 10))
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i))
	}
	cases := []struct{ p, want float64 }{
		{0.50, 50}, {0.95, 95}, {0.99, 99}, {1, 100}, {0, 1},
	}
	for _, c := range cases {
		got := h.Quantile(c.p)
		if math.Abs(got-c.want) > 10 {
			t.Fatalf("quantile(%v) = %v, want within 10 of %v", c.p, got, c.want)
		}
	}
	if h.Quantile(1) != 100 {
		t.Fatalf("p100 = %v, want exactly the max", h.Quantile(1))
	}
}

func TestHistogramOverflowBucket(t *testing.T) {
	h := mustHist(t, LinearBounds(10, 10, 2)) // bounds 10, 20
	h.Observe(5)
	h.Observe(15)
	h.Observe(999)
	s := h.Snapshot()
	if len(s.Counts) != 3 {
		t.Fatalf("counts len = %d, want bounds+1", len(s.Counts))
	}
	if s.Counts[2] != 1 {
		t.Fatalf("overflow count = %d, want 1", s.Counts[2])
	}
	if q := h.Quantile(1); q != 999 {
		t.Fatalf("p100 = %v, want 999 (overflow clamps to observed max)", q)
	}
}

func TestHistogramMerge(t *testing.T) {
	a := mustHist(t, LinearBounds(10, 10, 5))
	b := mustHist(t, LinearBounds(10, 10, 5))
	for i := 1; i <= 50; i++ {
		a.Observe(float64(i))
	}
	for i := 51; i <= 100; i++ {
		b.Observe(float64(i))
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if a.Count() != 100 || a.Min() != 1 || a.Max() != 100 {
		t.Fatalf("merged stats: count=%d min=%v max=%v", a.Count(), a.Min(), a.Max())
	}
	if got := a.Quantile(0.5); math.Abs(got-50) > 10 {
		t.Fatalf("merged p50 = %v", got)
	}
	// Merging an empty histogram must not disturb min/max.
	if err := a.Merge(mustHist(t, LinearBounds(10, 10, 5))); err != nil {
		t.Fatal(err)
	}
	if a.Min() != 1 || a.Count() != 100 {
		t.Fatal("empty merge changed stats")
	}
	// Merging into an empty histogram adopts the source's stats.
	c := mustHist(t, LinearBounds(10, 10, 5))
	if err := c.Merge(a); err != nil {
		t.Fatal(err)
	}
	if c.Count() != 100 || c.Min() != 1 || c.Max() != 100 {
		t.Fatalf("merge into empty: count=%d min=%v max=%v", c.Count(), c.Min(), c.Max())
	}
	// Shape mismatches must be rejected.
	if err := a.Merge(mustHist(t, LinearBounds(10, 10, 3))); err == nil {
		t.Fatal("bound-count mismatch should fail")
	}
	if err := a.Merge(mustHist(t, LinearBounds(11, 10, 5))); err == nil {
		t.Fatal("bound-value mismatch should fail")
	}
}

func TestSnapshotMerge(t *testing.T) {
	a := mustHist(t, LinearBounds(10, 10, 5))
	b := mustHist(t, LinearBounds(10, 10, 5))
	a.Observe(5)
	b.Observe(45)
	merged, err := a.Snapshot().Merge(b.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	if merged.Count != 2 || merged.Min != 5 || merged.Max != 45 {
		t.Fatalf("merged snapshot: %+v", merged)
	}
	if merged.P50 <= 0 || merged.P99 > 45 {
		t.Fatalf("merged quantiles: p50=%v p99=%v", merged.P50, merged.P99)
	}
	empty := HistogramSnapshot{}
	if m, err := empty.Merge(a.Snapshot()); err != nil || m.Count != 1 {
		t.Fatalf("empty-receiver merge: %v %+v", err, m)
	}
}

func TestGaugeMoments(t *testing.T) {
	g := &Gauge{}
	for _, v := range []float64{3, 1, 4, 1, 5} {
		g.Observe(v)
	}
	if g.Samples() != 5 || g.Max() != 5 || g.Mean() != 2.8 {
		t.Fatalf("gauge: n=%d max=%v mean=%v", g.Samples(), g.Max(), g.Mean())
	}
	o := &Gauge{}
	o.Observe(10)
	o.merge(g)
	if o.Samples() != 6 || o.Max() != 10 {
		t.Fatalf("merged gauge: n=%d max=%v", o.Samples(), o.Max())
	}
}

func TestGridClampAndMerge(t *testing.T) {
	g, err := NewGrid(2, 3)
	if err != nil {
		t.Fatal(err)
	}
	g.Inc(0, 0)
	g.Inc(5, 5) // clamps to (1, 2)
	g.Inc(-1, -1)
	if g.At(0, 0) != 2 || g.At(1, 2) != 1 || g.Total() != 3 {
		t.Fatalf("grid counts: %+v total=%d", g.Snapshot(), g.Total())
	}
	o, _ := NewGrid(2, 3)
	o.Inc(1, 2)
	if err := g.Merge(o); err != nil {
		t.Fatal(err)
	}
	if g.At(1, 2) != 2 {
		t.Fatal("grid merge failed")
	}
	bad, _ := NewGrid(3, 3)
	if err := g.Merge(bad); err == nil {
		t.Fatal("shape mismatch should fail")
	}
}

func TestRegistryGetOrCreateAndMerge(t *testing.T) {
	r := NewRegistry()
	if r.Counter("a") != r.Counter("a") {
		t.Fatal("counter not memoized")
	}
	r.Counter("a").Add(2)
	r.Gauge("g").Observe(7)
	r.Histogram("h", LinearBounds(1, 1, 4)).Observe(2.5)
	r.Grid("m", 2, 2).Inc(0, 1)
	r.SetCounter("set", 42)

	o := NewRegistry()
	o.Counter("a").Add(3)
	o.Counter("only_o").Inc()
	o.Histogram("h", LinearBounds(1, 1, 4)).Observe(3.5)
	o.Grid("m", 2, 2).Inc(0, 1)
	if err := r.Merge(o); err != nil {
		t.Fatal(err)
	}
	s := r.Snapshot()
	if s.Counters["a"] != 5 || s.Counters["only_o"] != 1 || s.Counters["set"] != 42 {
		t.Fatalf("merged counters: %+v", s.Counters)
	}
	if s.Histograms["h"].Count != 2 {
		t.Fatalf("merged histogram count = %d", s.Histograms["h"].Count)
	}
	if s.Grids["m"].Counts[0][1] != 2 {
		t.Fatalf("merged grid: %+v", s.Grids["m"])
	}
	// Mismatched bounds across registries must surface an error.
	bad := NewRegistry()
	bad.Histogram("h", LinearBounds(2, 2, 4)).Observe(1)
	if err := r.Merge(bad); err == nil {
		t.Fatal("mismatched histogram bounds should fail the merge")
	}
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("c").Add(7)
	r.Gauge("g").Observe(1.5)
	r.Histogram("h", ExponentialBounds(1, 2, 6)).Observe(9)
	r.Grid("m", 2, 2).Inc(1, 1)
	raw, err := json.Marshal(r.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if back.Counters["c"] != 7 || back.Histograms["h"].Count != 1 || back.Grids["m"].Counts[1][1] != 1 {
		t.Fatalf("round trip lost data: %s", raw)
	}
	if len(back.SortedNames()) != 4 {
		t.Fatalf("names: %v", back.SortedNames())
	}
}

func TestBoundsHelpers(t *testing.T) {
	lin := LinearBounds(32, 32, 3)
	if lin[0] != 32 || lin[1] != 64 || lin[2] != 96 {
		t.Fatalf("linear bounds: %v", lin)
	}
	exp := ExponentialBounds(1, 10, 3)
	if exp[0] != 1 || exp[1] != 10 || exp[2] != 100 {
		t.Fatalf("exponential bounds: %v", exp)
	}
}

// TestRegistryMergeDisjoint merges two registries with no instruments in
// common: every instrument of each kind must appear in the receiver with
// its values intact (grid-report aggregation relies on this when cells
// instrument different subsystems).
func TestRegistryMergeDisjoint(t *testing.T) {
	r := NewRegistry()
	r.Counter("left.c").Add(2)
	r.Gauge("left.g").Observe(1)

	o := NewRegistry()
	o.Counter("right.c").Add(7)
	o.Gauge("right.g").Observe(9)
	o.Histogram("right.h", LinearBounds(1, 1, 4)).Observe(2.5)
	o.Grid("right.m", 2, 2).Inc(1, 1)
	if err := r.Merge(o); err != nil {
		t.Fatal(err)
	}
	s := r.Snapshot()
	if s.Counters["left.c"] != 2 || s.Counters["right.c"] != 7 {
		t.Fatalf("disjoint counters: %+v", s.Counters)
	}
	if s.Gauges["right.g"].Last != 9 || s.Gauges["right.g"].Samples != 1 {
		t.Fatalf("adopted gauge: %+v", s.Gauges["right.g"])
	}
	if s.Histograms["right.h"].Count != 1 || s.Histograms["right.h"].Min != 2.5 {
		t.Fatalf("adopted histogram: %+v", s.Histograms["right.h"])
	}
	if s.Grids["right.m"].Counts[1][1] != 1 {
		t.Fatalf("adopted grid: %+v", s.Grids["right.m"])
	}
}

// TestRegistryMergeEmptyHistogram pins both directions of the
// empty-histogram edge case at the registry level: an instrument that
// was created but never observed must neither poison the receiver's
// stats nor block adoption of the source's.
func TestRegistryMergeEmptyHistogram(t *testing.T) {
	r := NewRegistry()
	r.Histogram("h", LinearBounds(10, 10, 5)).Observe(15)

	// Source has the histogram declared with zero observations.
	o := NewRegistry()
	o.Histogram("h", LinearBounds(10, 10, 5))
	if err := r.Merge(o); err != nil {
		t.Fatal(err)
	}
	h := r.Snapshot().Histograms["h"]
	if h.Count != 1 || h.Min != 15 || h.Max != 15 {
		t.Fatalf("empty source disturbed stats: %+v", h)
	}

	// Receiver empty, source populated: stats adopt wholesale.
	e := NewRegistry()
	e.Histogram("h", LinearBounds(10, 10, 5))
	if err := e.Merge(r); err != nil {
		t.Fatal(err)
	}
	h = e.Snapshot().Histograms["h"]
	if h.Count != 1 || h.Min != 15 || h.Mean != 15 {
		t.Fatalf("empty receiver did not adopt: %+v", h)
	}
}

// TestRegistryMergeZeroSampleGauge checks that a declared-but-unobserved
// gauge merges as a no-op in either direction instead of dragging
// min/max toward zero.
func TestRegistryMergeZeroSampleGauge(t *testing.T) {
	r := NewRegistry()
	r.Gauge("g").Observe(5)
	r.Gauge("g").Observe(3)

	o := NewRegistry()
	o.Gauge("g") // zero samples
	if err := r.Merge(o); err != nil {
		t.Fatal(err)
	}
	g := r.Snapshot().Gauges["g"]
	if g.Samples != 2 || g.Min != 3 || g.Max != 5 || g.Mean != 4 {
		t.Fatalf("zero-sample source disturbed gauge: %+v", g)
	}

	e := NewRegistry()
	e.Gauge("g")
	if err := e.Merge(r); err != nil {
		t.Fatal(err)
	}
	g = e.Snapshot().Gauges["g"]
	if g.Samples != 2 || g.Min != 3 || g.Max != 5 {
		t.Fatalf("zero-sample receiver did not adopt: %+v", g)
	}
}

// TestRegistryMergeNil pins the nil-registry contract.
func TestRegistryMergeNil(t *testing.T) {
	r := NewRegistry()
	if err := r.Merge(nil); err == nil {
		t.Fatal("merging a nil registry should fail")
	}
	var n *Registry
	if err := n.Merge(r); err == nil {
		t.Fatal("merging into a nil registry should fail")
	}
}
