package metrics

import (
	"fmt"
	"sort"
	"sync"
)

// Registry is a per-run collection of named instruments. Get-or-create
// accessors are mutex-protected so setup can happen from any goroutine;
// the instruments themselves are lock-free and must each be observed
// from a single goroutine (one simulation run is single-threaded, and
// RunGrid gives every run its own Registry, merging afterwards).
//
// Naming convention: dot-separated "layer.subject.metric" with the unit
// as the final suffix where one applies, e.g.
// "memctrl.ch0.reset_latency_ns". docs/METRICS.md catalogs every name
// the simulator emits.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
	grids      map[string]*Grid
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
		grids:      make(map[string]*Grid),
	}
}

// Counter returns the named counter, creating it on first use. A nil
// registry returns nil (and nil instruments no-op), so un-instrumented
// layers need no branches beyond the ones already in the instrument
// methods.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use (nil on a nil
// registry).
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given
// bounds on first use; later calls return the existing instrument and
// ignore bounds (first creation wins). Invalid bounds on first creation
// panic — bucket layouts are compile-time decisions, not data.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[name]
	if !ok {
		var err error
		h, err = NewHistogram(bounds)
		if err != nil {
			panic(fmt.Sprintf("metrics: histogram %q: %v", name, err))
		}
		r.histograms[name] = h
	}
	return h
}

// Grid returns the named rows×cols grid, creating it on first use;
// later calls return the existing instrument and ignore the shape.
// Invalid shapes on first creation panic.
func (r *Registry) Grid(name string, rows, cols int) *Grid {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.grids[name]
	if !ok {
		var err error
		g, err = NewGrid(rows, cols)
		if err != nil {
			panic(fmt.Sprintf("metrics: grid %q: %v", name, err))
		}
		r.grids[name] = g
	}
	return g
}

// SetCounter overwrites the named counter with an absolute value —
// end-of-run exports of quantities another layer already accumulated
// (store write totals, retired instructions).
func (r *Registry) SetCounter(name string, v uint64) {
	if c := r.Counter(name); c != nil {
		c.v = v
	}
}

// Merge folds another registry into this one: counters add, gauges
// combine their sample moments, histograms and grids add element-wise.
// Shape mismatches (same name, different bounds) abort with an error;
// the receiver may then hold a partial merge.
func (r *Registry) Merge(o *Registry) error {
	if r == nil || o == nil {
		return fmt.Errorf("metrics: cannot merge nil registry")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	o.mu.Lock()
	defer o.mu.Unlock()
	for name, c := range o.counters {
		mine, ok := r.counters[name]
		if !ok {
			mine = &Counter{}
			r.counters[name] = mine
		}
		mine.merge(c)
	}
	for name, g := range o.gauges {
		mine, ok := r.gauges[name]
		if !ok {
			mine = &Gauge{}
			r.gauges[name] = mine
		}
		mine.merge(g)
	}
	for name, h := range o.histograms {
		mine, ok := r.histograms[name]
		if !ok {
			var err error
			mine, err = NewHistogram(h.bounds)
			if err != nil {
				return fmt.Errorf("metrics: merging histogram %q: %w", name, err)
			}
			r.histograms[name] = mine
		}
		if err := mine.Merge(h); err != nil {
			return fmt.Errorf("metrics: merging histogram %q: %w", name, err)
		}
	}
	for name, g := range o.grids {
		mine, ok := r.grids[name]
		if !ok {
			var err error
			mine, err = NewGrid(g.rows, g.cols)
			if err != nil {
				return fmt.Errorf("metrics: merging grid %q: %w", name, err)
			}
			r.grids[name] = mine
		}
		if err := mine.Merge(g); err != nil {
			return fmt.Errorf("metrics: merging grid %q: %w", name, err)
		}
	}
	return nil
}

// Snapshot freezes every instrument into the serializable form embedded
// in run reports. A nil registry snapshots as empty (never nil maps), so
// reports marshal uniformly.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   map[string]uint64{},
		Gauges:     map[string]GaugeSnapshot{},
		Histograms: map[string]HistogramSnapshot{},
		Grids:      map[string]GridSnapshot{},
	}
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, c := range r.counters {
		s.Counters[name] = c.v
	}
	for name, g := range r.gauges {
		gs := GaugeSnapshot{Samples: g.n}
		if g.n > 0 {
			gs.Last, gs.Min, gs.Max = g.last, g.min, g.max
			gs.Mean = g.sum / float64(g.n)
		}
		s.Gauges[name] = gs
	}
	for name, h := range r.histograms {
		s.Histograms[name] = h.Snapshot()
	}
	for name, g := range r.grids {
		s.Grids[name] = g.Snapshot()
	}
	return s
}

// Snapshot is the serializable view of a Registry, embedded in run
// reports (JSON field names are the stable schema; see docs/METRICS.md).
type Snapshot struct {
	Counters   map[string]uint64            `json:"counters"`
	Gauges     map[string]GaugeSnapshot     `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
	Grids      map[string]GridSnapshot      `json:"grids"`
}

// GaugeSnapshot is a frozen Gauge: the sample moments of an instantaneous
// quantity.
type GaugeSnapshot struct {
	Last    float64 `json:"last"`
	Min     float64 `json:"min"`
	Max     float64 `json:"max"`
	Mean    float64 `json:"mean"`
	Samples uint64  `json:"samples"`
}

// HistogramSnapshot is a frozen Histogram: bucket bounds and counts plus
// the derived summary statistics. Counts has len(Bounds)+1 entries; the
// final entry is the overflow bucket.
type HistogramSnapshot struct {
	Bounds []float64 `json:"bounds"`
	Counts []uint64  `json:"counts"`
	Count  uint64    `json:"count"`
	Sum    float64   `json:"sum"`
	Min    float64   `json:"min"`
	Max    float64   `json:"max"`
	Mean   float64   `json:"mean"`
	P50    float64   `json:"p50"`
	P95    float64   `json:"p95"`
	P99    float64   `json:"p99"`
}

// Quantile computes the p-quantile from the frozen buckets: nearest
// rank, linear interpolation inside the containing bucket, clamped to
// the observed min/max. Empty snapshots return 0.
func (s HistogramSnapshot) Quantile(p float64) float64 {
	if s.Count == 0 {
		return 0
	}
	rank := quantileRank(p, s.Count)
	var cum uint64
	for i, c := range s.Counts {
		if c == 0 {
			continue
		}
		cum += c
		if cum < rank {
			continue
		}
		lo := s.Min
		if i > 0 && s.Bounds[i-1] > lo {
			lo = s.Bounds[i-1]
		}
		hi := s.Max
		if i < len(s.Bounds) && s.Bounds[i] < hi {
			hi = s.Bounds[i]
		}
		if hi < lo {
			hi = lo
		}
		// Position of the rank inside this bucket, in (0, 1].
		frac := float64(rank-(cum-c)) / float64(c)
		return lo + (hi-lo)*frac
	}
	return s.Max
}

// NonzeroBuckets counts buckets holding at least one observation.
func (s HistogramSnapshot) NonzeroBuckets() int {
	n := 0
	for _, c := range s.Counts {
		if c > 0 {
			n++
		}
	}
	return n
}

// Merge adds another snapshot with identical bounds into this one and
// recomputes the derived statistics — used to combine per-channel
// histograms into a system-wide view at report time.
func (s HistogramSnapshot) Merge(o HistogramSnapshot) (HistogramSnapshot, error) {
	if o.Count == 0 {
		return s, nil
	}
	if s.Count == 0 {
		return o, nil
	}
	if len(s.Bounds) != len(o.Bounds) {
		return s, fmt.Errorf("metrics: merging snapshots with %d vs %d bounds", len(s.Bounds), len(o.Bounds))
	}
	for i := range s.Bounds {
		if s.Bounds[i] != o.Bounds[i] {
			return s, fmt.Errorf("metrics: merging snapshots with mismatched bound %d", i)
		}
	}
	out := HistogramSnapshot{
		Bounds: append([]float64(nil), s.Bounds...),
		Counts: append([]uint64(nil), s.Counts...),
		Count:  s.Count + o.Count,
		Sum:    s.Sum + o.Sum,
		Min:    s.Min,
		Max:    s.Max,
	}
	for i := range out.Counts {
		out.Counts[i] += o.Counts[i]
	}
	if o.Min < out.Min {
		out.Min = o.Min
	}
	if o.Max > out.Max {
		out.Max = o.Max
	}
	out.Mean = out.Sum / float64(out.Count)
	out.P50 = out.Quantile(0.50)
	out.P95 = out.Quantile(0.95)
	out.P99 = out.Quantile(0.99)
	return out, nil
}

// GridSnapshot is a frozen Grid.
type GridSnapshot struct {
	Rows   int        `json:"rows"`
	Cols   int        `json:"cols"`
	Counts [][]uint64 `json:"counts"`
}

// SortedNames returns the union of all instrument names in the snapshot,
// sorted — the stable iteration order for text rendering.
func (s Snapshot) SortedNames() []string {
	names := make([]string, 0, len(s.Counters)+len(s.Gauges)+len(s.Histograms)+len(s.Grids))
	for n := range s.Counters {
		names = append(names, n)
	}
	for n := range s.Gauges {
		names = append(names, n)
	}
	for n := range s.Histograms {
		names = append(names, n)
	}
	for n := range s.Grids {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
