package remap

import (
	"strings"
	"testing"

	"ladder/internal/reram"
	"ladder/internal/wear"
)

func testGeometry() reram.Geometry {
	return reram.Geometry{
		Channels:         2,
		RanksPerChannel:  2,
		BanksPerRank:     8,
		MatGroupsPerBank: 4,
		MatRows:          64,
	}
}

func mustDecoder(t *testing.T, cfg Config) *Decoder {
	t.Helper()
	d, err := NewDecoder(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func baseConfig() Config {
	return Config{Geom: testGeometry(), TicksPerNs: 4}
}

func TestConfigValidate(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Config)
		ok     bool
	}{
		{"base", func(c *Config) {}, true},
		{"gap leveling", func(c *Config) { c.GapSegmentRows = 64; c.GapPeriod = 16 }, true},
		{"sentinel spares", func(c *Config) { c.SpareRows = UseDefault }, true},
		{"sentinel penalty", func(c *Config) { c.PenaltyNs = UseDefault }, true},
		{"no geometry", func(c *Config) { c.Geom = reram.Geometry{} }, false},
		{"zero ticks per ns", func(c *Config) { c.TicksPerNs = 0 }, false},
		{"negative segment rows", func(c *Config) { c.GapSegmentRows = -1 }, false},
		{"gap without period", func(c *Config) { c.GapSegmentRows = 64 }, false},
		{"spares below sentinel", func(c *Config) { c.SpareRows = -2 }, false},
		{"penalty below sentinel", func(c *Config) { c.PenaltyNs = -2 }, false},
	}
	for _, c := range cases {
		cfg := baseConfig()
		c.mutate(&cfg)
		_, err := NewDecoder(cfg)
		if (err == nil) != c.ok {
			t.Errorf("%s: NewDecoder err = %v, want ok=%v", c.name, err, c.ok)
		}
	}
}

// TestSentinelDefaults pins the UseDefault semantics: the sentinel
// selects the default while an explicit zero disables the feature.
func TestSentinelDefaults(t *testing.T) {
	cfg := baseConfig()
	cfg.SpareRows = UseDefault
	if d := mustDecoder(t, cfg); d.SpareCapacity() != DefaultSpareRows {
		t.Errorf("SpareCapacity(UseDefault) = %d, want %d", d.SpareCapacity(), DefaultSpareRows)
	}
	cfg = baseConfig()
	cfg.SpareRows = 0
	d := mustDecoder(t, cfg)
	if d.SpareCapacity() != 0 {
		t.Errorf("SpareCapacity(0) = %d, want 0 (disabled, not defaulted)", d.SpareCapacity())
	}
	if err := d.RemapSpare(0, 1, 0); err == nil {
		t.Error("remap into a zero-spare pool should fail")
	}
	cfg = baseConfig()
	cfg.SpareRows = 1
	cfg.PenaltyNs = UseDefault
	d = mustDecoder(t, cfg)
	loc, err := testGeometry().Decode(0)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.RemapSpare(0, testGeometry().GlobalRow(loc), 0); err != nil {
		t.Fatal(err)
	}
	// Default 2 ns at 4 ticks/ns = 8 ticks.
	if p := d.PenaltyTicks(loc); p != 8 {
		t.Errorf("PenaltyTicks = %d, want 8 (default 2 ns x 4 ticks/ns)", p)
	}
}

// TestResolveMatchesStartGap pins the decoder's gap arithmetic against a
// directly-driven wear.StartGap: the refactor moved the shift out of the
// sim package and it must compute the identical wordline.
func TestResolveMatchesStartGap(t *testing.T) {
	geom := testGeometry()
	const segRows = 64
	cfg := baseConfig()
	cfg.GapSegmentRows = segRows
	cfg.GapPeriod = 1
	d := mustDecoder(t, cfg)

	segments := int(geom.Rows()/segRows) + 1
	ref, err := wear.NewStartGap(segments, 1)
	if err != nil {
		t.Fatal(err)
	}

	check := func() {
		t.Helper()
		for line := uint64(0); line < geom.Lines(); line += 97 {
			loc, err := geom.Decode(line)
			if err != nil {
				t.Fatal(err)
			}
			seg := int(geom.GlobalRow(loc)/segRows) % ref.Segments()
			phys, err := ref.Phys(seg)
			if err != nil {
				t.Fatal(err)
			}
			want := (loc.WL + phys) % geom.MatRows
			got, _ := d.Resolve(loc)
			if got.WL != want {
				t.Fatalf("line %d: resolved WL %d, want %d (seg %d phys %d)", line, got.WL, want, seg, phys)
			}
			if got.Row != loc.Row || got.Bank != loc.Bank {
				t.Fatalf("line %d: Resolve must shift only the wordline", line)
			}
		}
	}

	check()
	// Drive a few hundred gap moves and re-verify the mapping tracks.
	for i := 0; i < 300; i++ {
		moved := d.RecordWrite()
		if refMoved := ref.RecordWrite(); moved != refMoved {
			t.Fatalf("move %d: decoder moved=%v, reference moved=%v", i, moved, refMoved)
		}
		if i%37 == 0 {
			check()
		}
	}
	check()
	if d.GapMoves() != ref.Moves() {
		t.Fatalf("GapMoves = %d, want %d", d.GapMoves(), ref.Moves())
	}
}

func TestSparePoolExhaustion(t *testing.T) {
	cfg := baseConfig()
	cfg.SpareRows = 2
	d := mustDecoder(t, cfg)
	if err := d.RemapSpare(4, 10, 0); err != nil {
		t.Fatal(err)
	}
	if err := d.RemapSpare(4, 11, 0); err != nil {
		t.Fatal(err)
	}
	err := d.RemapSpare(4, 12, 0)
	if err == nil {
		t.Fatal("third remap in a 2-spare bank should fail")
	}
	if !strings.Contains(err.Error(), "exhausted") {
		t.Errorf("error %q should mention exhaustion", err)
	}
	// Other banks keep their own pools.
	if err := d.RemapSpare(5, 13, 0); err != nil {
		t.Fatalf("other bank's pool should be untouched: %v", err)
	}
	st := d.Stats()
	if st.SpareRemaps != 3 || st.SparesUsed != 3 {
		t.Errorf("stats = %+v, want 3 remaps / 3 spares used", st)
	}
}

// TestSpareBaseWrites pins the wear-freshness bookkeeping: a remapped
// row's spare counts wear from the remap-time baseline, and re-remapping
// a worn spare consumes another slot with a new baseline.
func TestSpareBaseWrites(t *testing.T) {
	cfg := baseConfig()
	cfg.SpareRows = 2
	d := mustDecoder(t, cfg)
	const row = 7
	if d.SpareBaseWrites(row) != 0 || d.IsRemapped(row) {
		t.Fatal("fresh row should carry no baseline")
	}
	if err := d.RemapSpare(0, row, 100); err != nil {
		t.Fatal(err)
	}
	if !d.IsRemapped(row) {
		t.Fatal("row not marked remapped")
	}
	if got := d.SpareBaseWrites(row); got != 100 {
		t.Fatalf("baseline = %d, want 100", got)
	}
	// The spare wore out in turn: the row takes a second slot.
	if err := d.RemapSpare(0, row, 200); err != nil {
		t.Fatal(err)
	}
	if got := d.SpareBaseWrites(row); got != 200 {
		t.Fatalf("baseline after re-remap = %d, want 200", got)
	}
	st := d.Stats()
	if st.SpareRemaps != 2 || st.SparesUsed != 2 {
		t.Errorf("stats = %+v, want 2 remaps / 2 slots", st)
	}
}

// TestPenaltyAccounting pins the charge point: Resolve reports the
// penalty without recording it; PenaltyTicks is the dispatch-time charge
// and the only accumulator.
func TestPenaltyAccounting(t *testing.T) {
	geom := testGeometry()
	cfg := baseConfig()
	cfg.SpareRows = 1
	cfg.PenaltyNs = 3 // 12 ticks at 4 ticks/ns
	d := mustDecoder(t, cfg)
	loc, err := geom.Decode(0)
	if err != nil {
		t.Fatal(err)
	}
	if _, p := d.Resolve(loc); p != 0 {
		t.Fatalf("unremapped row penalty = %d, want 0", p)
	}
	if err := d.RemapSpare(0, geom.GlobalRow(loc), 0); err != nil {
		t.Fatal(err)
	}
	if _, p := d.Resolve(loc); p != 12 {
		t.Fatalf("enqueue-time penalty = %d, want 12", p)
	}
	if st := d.Stats(); st.PenaltyTicks != 0 {
		t.Fatalf("Resolve must not record the charge; PenaltyTicks stat = %d", st.PenaltyTicks)
	}
	if p := d.PenaltyTicks(loc); p != 12 {
		t.Fatalf("dispatch penalty = %d, want 12", p)
	}
	if p := d.PenaltyTicks(loc); p != 12 {
		t.Fatalf("second dispatch penalty = %d, want 12", p)
	}
	if st := d.Stats(); st.PenaltyTicks != 24 {
		t.Fatalf("accumulated penalty = %d ticks, want 24", st.PenaltyTicks)
	}
}

func TestMaybeRetire(t *testing.T) {
	cfg := baseConfig()
	cfg.SpareRows = 1
	cfg.ProactiveWearLimit = 50
	d := mustDecoder(t, cfg)
	if !d.ProactiveEnabled() {
		t.Fatal("proactive retirement should be enabled")
	}
	if d.MaybeRetire(0, 9, 49) {
		t.Fatal("row below the wear limit must not retire")
	}
	if !d.MaybeRetire(0, 9, 50) {
		t.Fatal("row at the wear limit should retire")
	}
	if !d.IsRemapped(9) {
		t.Fatal("retired row not in the remap table")
	}
	// Effective wear resets: the same lifetime count no longer triggers.
	if d.MaybeRetire(0, 9, 50) {
		t.Fatal("freshly retired row must not re-retire at the same count")
	}
	// Pool exhausted: retirement is best-effort, not an error.
	if d.MaybeRetire(0, 10, 99) {
		t.Fatal("retirement from an empty pool should be skipped")
	}
	st := d.Stats()
	if st.SpareRemaps != 1 || st.SparesUsed != 1 {
		t.Errorf("stats = %+v, want exactly one retirement", st)
	}
}

func TestNilDecoderSafe(t *testing.T) {
	var d *Decoder
	geom := testGeometry()
	loc, err := geom.Decode(0)
	if err != nil {
		t.Fatal(err)
	}
	if got, p := d.Resolve(loc); got != loc || p != 0 {
		t.Fatal("nil decoder must resolve to identity at zero cost")
	}
	if d.PenaltyTicks(loc) != 0 || d.RecordWrite() || d.IsRemapped(0) ||
		d.SpareBaseWrites(0) != 0 || d.ProactiveEnabled() || d.MaybeRetire(0, 0, 1<<62) ||
		d.GapMoves() != 0 || d.SpareCapacity() != 0 {
		t.Fatal("nil decoder must be inert")
	}
	if err := d.RemapSpare(0, 0, 0); err == nil {
		t.Fatal("nil decoder cannot grant spares")
	}
	if st := d.Stats(); st != (Stats{}) {
		t.Fatalf("nil decoder stats = %+v, want zero value", st)
	}
}

func TestStatsMerge(t *testing.T) {
	a := Stats{GapMoves: 1, SpareRemaps: 2, SparesUsed: 3, Lookups: 4, PenaltyTicks: 5}
	b := Stats{GapMoves: 10, SpareRemaps: 20, SparesUsed: 30, Lookups: 40, PenaltyTicks: 50}
	a.Merge(b)
	want := Stats{GapMoves: 11, SpareRemaps: 22, SparesUsed: 33, Lookups: 44, PenaltyTicks: 55}
	if a != want {
		t.Fatalf("merged = %+v, want %+v", a, want)
	}
}
