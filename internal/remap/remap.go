// Package remap implements a WoLFRaM-style programmable address decoder
// (Yavits et al., arxiv 2010.02825): one per-device indirection layer that
// owns every logical→physical row translation the simulator performs —
// start-gap vertical wear leveling, spare-row substitution after
// unrecoverable write faults, and wear-limit-triggered proactive row
// retirement. Before this package, wear leveling lived in internal/sim
// (a per-controller remap closure over wear.StartGap) and spare-row
// tables lived inside fault.Injector with their penalty charged ad hoc
// in the memory controller; the decoder unifies both behind a single
// Resolve call and a single penalty-accounting point.
//
// Timing model: Resolve is called once per access at enqueue time and
// applies the start-gap wordline shift (the gap position is latched when
// the request enters the queue, exactly as the pre-decoder simulator
// behaved). The spare-row indirection penalty — a small CAM lookup in
// the bank periphery — is charged when the access dispatches, via
// PenaltyTicks, because the remap table may have grown between enqueue
// and dispatch. Both calls are nil-receiver safe; a nil *Decoder is the
// disabled state and resolves every location to itself at zero cost, so
// default-configuration runs stay cycle-identical to a build without
// this package.
//
// Determinism contract: the decoder holds no randomness. Its state
// advances only through RecordWrite, RemapSpare and MaybeRetire, all
// driven by the single-goroutine simulation in completion order, so
// fixed-seed runs yield byte-identical decoder statistics.
package remap

import (
	"fmt"
	"math"

	"ladder/internal/reram"
	"ladder/internal/wear"
)

// UseDefault is the sentinel distinguishing "unset, use the default"
// from an explicit zero: SpareRows = UseDefault selects DefaultSpareRows
// while SpareRows = 0 means no spare pool at all, and PenaltyNs =
// UseDefault selects DefaultPenaltyNs while PenaltyNs = 0 models a free
// indirection.
const UseDefault = -1

// Default knobs; see Config.
const (
	// DefaultSpareRows is each bank's spare-row pool size.
	DefaultSpareRows = 32
	// DefaultPenaltyNs is the remap-table indirection charged on every
	// access to a remapped row (a small CAM lookup in the bank
	// periphery).
	DefaultPenaltyNs = 2
)

// Config parameterizes a Decoder.
type Config struct {
	// Geom is the device geometry the decoder translates within.
	Geom reram.Geometry
	// TicksPerNs converts the nanosecond penalty model into the
	// controller's tick domain (memctrl.TicksPerNs for the simulator).
	TicksPerNs float64
	// GapSegmentRows sets the start-gap rotation granularity in device
	// rows; 0 disables vertical wear leveling.
	GapSegmentRows int
	// GapPeriod is the number of recorded writes between gap moves
	// (required positive when GapSegmentRows > 0).
	GapPeriod int
	// SpareRows sizes each bank's spare-row pool: UseDefault selects
	// DefaultSpareRows, 0 disables spare substitution entirely.
	SpareRows int
	// PenaltyNs is the indirection latency charged on accesses to
	// remapped rows: UseDefault selects DefaultPenaltyNs, 0 is free.
	PenaltyNs float64
	// ProactiveWearLimit, when positive, retires a row to a spare once
	// its effective write count reaches the limit — before the fault
	// model ever declares it permanently failed. Retirement is
	// best-effort: an empty pool skips it rather than failing the run.
	ProactiveWearLimit uint64
}

// withDefaults resolves the UseDefault sentinels.
func (c Config) withDefaults() Config {
	if c.SpareRows == UseDefault {
		c.SpareRows = DefaultSpareRows
	}
	if c.PenaltyNs == UseDefault {
		c.PenaltyNs = DefaultPenaltyNs
	}
	return c
}

// Validate reports whether the configuration is usable (after the
// UseDefault sentinels are resolved).
func (c Config) Validate() error {
	switch {
	case c.Geom.Rows() == 0:
		return fmt.Errorf("remap: geometry has no rows")
	case c.TicksPerNs <= 0:
		return fmt.Errorf("remap: ticks-per-ns %v must be positive", c.TicksPerNs)
	case c.GapSegmentRows < 0:
		return fmt.Errorf("remap: gap segment rows %d must be non-negative", c.GapSegmentRows)
	case c.GapSegmentRows > 0 && c.GapPeriod <= 0:
		return fmt.Errorf("remap: gap-move period %d must be positive", c.GapPeriod)
	case c.SpareRows < 0:
		return fmt.Errorf("remap: spare-row pool %d must be non-negative", c.SpareRows)
	case c.PenaltyNs < 0:
		return fmt.Errorf("remap: penalty %v ns must be non-negative", c.PenaltyNs)
	}
	return nil
}

// Stats is the decoder's cumulative accounting, embedded in run results
// and the report's remap section. All counters are mergeable by
// addition across grid cells.
type Stats struct {
	// GapMoves counts start-gap rotations performed.
	GapMoves uint64 `json:"gap_moves"`
	// SpareRemaps counts rows relocated to a spare (fault-driven and
	// proactive); SparesUsed counts pool slots consumed (equal unless a
	// remapped row wears out its spare too).
	SpareRemaps uint64 `json:"spare_remaps"`
	SparesUsed  uint64 `json:"spares_used"`
	// Lookups counts Resolve calls — one per enqueued data access.
	Lookups uint64 `json:"decoder_lookups"`
	// PenaltyTicks accumulates the indirection ticks actually charged
	// at dispatch on remapped-row accesses.
	PenaltyTicks uint64 `json:"penalty_ticks"`
}

// Merge adds o's counters into s (grid-cell aggregation).
func (s *Stats) Merge(o Stats) {
	s.GapMoves += o.GapMoves
	s.SpareRemaps += o.SpareRemaps
	s.SparesUsed += o.SparesUsed
	s.Lookups += o.Lookups
	s.PenaltyTicks += o.PenaltyTicks
}

// spareEntry records one row's relocation to a spare: baseWrites is the
// row's write count at remap time, so wear on the fresh spare is
// counted from zero.
type spareEntry struct {
	baseWrites uint64
}

// Decoder is the programmable address decoder for one simulated device.
// It is single-goroutine like the simulation that drives it; a nil
// *Decoder means indirection is disabled and every method is safe to
// call on it.
type Decoder struct {
	geom         reram.Geometry
	gap          *wear.StartGap
	segRows      uint64
	matRows      int
	spareCap     int
	penaltyTicks uint64
	proactive    uint64
	// remapped maps a global row to its spare-row relocation.
	remapped map[uint64]spareEntry
	// spareUsed counts consumed pool slots per bank key.
	spareUsed map[int]int
	stats     Stats
}

// NewDecoder builds a decoder, resolving sentinels then validating.
func NewDecoder(cfg Config) (*Decoder, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	d := &Decoder{
		geom:         cfg.Geom,
		matRows:      cfg.Geom.MatRows,
		spareCap:     cfg.SpareRows,
		penaltyTicks: uint64(math.Ceil(cfg.PenaltyNs * cfg.TicksPerNs)),
		proactive:    cfg.ProactiveWearLimit,
		remapped:     make(map[uint64]spareEntry),
		spareUsed:    make(map[int]int),
	}
	if cfg.GapSegmentRows > 0 {
		// N logical segments in N+1 slots: the +1 is the gap slot.
		segments := int(cfg.Geom.Rows()/uint64(cfg.GapSegmentRows)) + 1
		gap, err := wear.NewStartGap(segments, cfg.GapPeriod)
		if err != nil {
			return nil, err
		}
		d.gap = gap
		d.segRows = uint64(cfg.GapSegmentRows)
	}
	return d, nil
}

// Resolve maps a decoded logical location to its current physical
// location and returns the indirection penalty (in ticks) an access to
// it would pay right now. The start-gap rotation shifts the wordline
// within the mat; the penalty is informational at enqueue time — the
// controller charges the authoritative value at dispatch via
// PenaltyTicks. Safe on nil (identity, zero penalty).
func (d *Decoder) Resolve(loc reram.Location) (reram.Location, uint64) {
	if d == nil {
		return loc, 0
	}
	d.stats.Lookups++
	if d.gap != nil {
		seg := int(d.geom.GlobalRow(loc) / d.segRows)
		if phys, err := d.gap.Phys(seg % d.gap.Segments()); err == nil {
			loc.WL = (loc.WL + phys) % d.matRows
		}
	}
	return loc, d.lookupPenalty(loc)
}

// lookupPenalty returns the ticks an access to loc pays, without
// recording the charge. The gap shift moves only the wordline, never
// the global row, so either the logical or resolved location keys the
// same table entry.
func (d *Decoder) lookupPenalty(loc reram.Location) uint64 {
	if len(d.remapped) == 0 {
		return 0
	}
	if _, ok := d.remapped[d.geom.GlobalRow(loc)]; !ok {
		return 0
	}
	return d.penaltyTicks
}

// PenaltyTicks charges and returns the dispatch-time indirection
// penalty for an access to loc: zero unless the row sits in the spare
// remap table. Safe on nil.
func (d *Decoder) PenaltyTicks(loc reram.Location) uint64 {
	if d == nil {
		return 0
	}
	p := d.lookupPenalty(loc)
	d.stats.PenaltyTicks += p
	return p
}

// RecordWrite advances the start-gap write counter and reports whether
// a gap move happened — the move costs one segment copy, which callers
// charge as maintenance write traffic. Safe on nil and on decoders
// without gap leveling (always false).
func (d *Decoder) RecordWrite() bool {
	if d == nil || d.gap == nil {
		return false
	}
	if !d.gap.RecordWrite() {
		return false
	}
	d.stats.GapMoves++
	return true
}

// RemapSpare relocates a global row to a spare from its bank's pool,
// recording the wear baseline so the spare starts fresh. A row already
// remapped consumes another slot (its spare wore out). The returned
// error means the pool is exhausted — the device can no longer hide the
// failure and the run must surface it.
func (d *Decoder) RemapSpare(bank int, globalRow uint64, rowWrites uint64) error {
	if d == nil || d.spareUsed[bank] >= d.spareCap {
		pool := 0
		if d != nil {
			pool = d.spareCap
		}
		return fmt.Errorf("remap: bank %d spare-row pool exhausted (%d spares used); row %d unrecoverable",
			bank, pool, globalRow)
	}
	d.spareUsed[bank]++
	d.remapped[globalRow] = spareEntry{baseWrites: rowWrites}
	d.stats.SpareRemaps++
	d.stats.SparesUsed++
	return nil
}

// SpareBaseWrites returns the write count the row carried when it was
// remapped to its current spare, or zero for rows never remapped: the
// caller subtracts it so wear on the fresh spare counts from zero.
// Safe on nil.
func (d *Decoder) SpareBaseWrites(globalRow uint64) uint64 {
	if d == nil || len(d.remapped) == 0 {
		return 0
	}
	return d.remapped[globalRow].baseWrites
}

// IsRemapped reports whether a global row has been relocated to a
// spare. Safe on nil.
func (d *Decoder) IsRemapped(globalRow uint64) bool {
	if d == nil {
		return false
	}
	_, ok := d.remapped[globalRow]
	return ok
}

// ProactiveEnabled reports whether wear-limit-triggered retirement is
// configured. Safe on nil; controllers gate the per-write row-wear
// lookup on it so disabled runs pay one branch.
func (d *Decoder) ProactiveEnabled() bool {
	return d != nil && d.proactive > 0
}

// MaybeRetire proactively remaps a row whose effective write count
// (wear since its last remap) has reached the proactive limit. Unlike
// RemapSpare, retirement is best-effort: an exhausted pool returns
// false and the row keeps running toward the fault model's permanent
// verdict instead of failing the run. Safe on nil.
func (d *Decoder) MaybeRetire(bank int, globalRow uint64, rowWrites uint64) bool {
	if d == nil || d.proactive == 0 {
		return false
	}
	if rowWrites-d.SpareBaseWrites(globalRow) < d.proactive {
		return false
	}
	if d.spareUsed[bank] >= d.spareCap {
		return false
	}
	d.spareUsed[bank]++
	d.remapped[globalRow] = spareEntry{baseWrites: rowWrites}
	d.stats.SpareRemaps++
	d.stats.SparesUsed++
	return true
}

// GapMoves returns the number of start-gap rotations performed.
func (d *Decoder) GapMoves() uint64 {
	if d == nil {
		return 0
	}
	return d.stats.GapMoves
}

// SpareCapacity returns the per-bank spare pool size.
func (d *Decoder) SpareCapacity() int {
	if d == nil {
		return 0
	}
	return d.spareCap
}

// Stats returns a copy of the cumulative accounting. Safe on nil
// (zero value).
func (d *Decoder) Stats() Stats {
	if d == nil {
		return Stats{}
	}
	return d.stats
}
