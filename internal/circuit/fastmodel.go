package circuit

import (
	"fmt"
	"math"
)

// FastOp describes a RESET to the reduced model in terms of the aggregates
// the LADDER latency model is keyed on, rather than a full per-cell
// pattern.
type FastOp struct {
	// Row is the selected wordline index (0 = nearest the bitline driver).
	Row int
	// Cols are the selected bitline indices (0 = nearest the wordline
	// driver).
	Cols []int
	// WLLRS is the number of half-selected cells in LRS on the selected
	// wordline (the C_lrs content term, excluding the targets).
	WLLRS int
	// BLLRS is the number of half-selected cells in LRS on each selected
	// bitline. The paper assumes the worst case (all LRS) because bitline
	// content is not tracked; callers model that with N-1.
	BLLRS int
}

// FastModel solves the selected wordline and the selected bitlines as 1-D
// resistive ladders with half-selected cells lumped as shunt loads to the
// half-bias rail. Unselected lines are approximated as ideal rails at
// VBias, which is accurate because they are driven and carry little
// current. The wordline and bitline solves are coupled through the target
// cells by a damped fixed-point loop.
type FastModel struct {
	p          Params
	iterations int
}

// NewFastModel returns a reduced-model solver for the given parameters.
func NewFastModel(p Params) (*FastModel, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &FastModel{p: p, iterations: 40}, nil
}

// spreadLRS marks `count` of the positions 0..n-1 not in `skip` as LRS,
// spread evenly, mirroring WordlinePattern's placement so that the fast
// model and MNA agree on geometry.
func spreadLRS(n, count int, skip map[int]bool) []bool {
	lrs := make([]bool, n)
	avail := make([]int, 0, n)
	for j := 0; j < n; j++ {
		if !skip[j] {
			avail = append(avail, j)
		}
	}
	if count > len(avail) {
		count = len(avail)
	}
	for k := 0; k < count; k++ {
		lrs[avail[k*len(avail)/count]] = true
	}
	return lrs
}

// DebugResult extends Result with internal node voltages for diagnostics
// and tests.
type DebugResult struct {
	Result
	// VWL is the solved selected-wordline node voltage profile.
	VWL []float64
	// VBLTarget is the solved bitline voltage at the target row, per
	// selected column.
	VBLTarget []float64
}

// SolveDebug runs Solve and additionally exposes the solved line
// profiles.
func (f *FastModel) SolveDebug(op FastOp) (*DebugResult, error) {
	res, vWL, vBL, err := f.solve(op)
	if err != nil {
		return nil, err
	}
	return &DebugResult{Result: *res, VWL: vWL, VBLTarget: vBL}, nil
}

// Solve computes the per-target voltage drops for the reduced model.
func (f *FastModel) Solve(op FastOp) (*Result, error) {
	res, _, _, err := f.solve(op)
	return res, err
}

func (f *FastModel) solve(op FastOp) (*Result, []float64, []float64, error) {
	n := f.p.N
	if op.Row < 0 || op.Row >= n {
		return nil, nil, nil, fmt.Errorf("circuit: selected row %d out of range 0..%d", op.Row, n-1)
	}
	if len(op.Cols) == 0 {
		return nil, nil, nil, fmt.Errorf("circuit: no selected columns")
	}
	if op.WLLRS < 0 || op.WLLRS > n-len(op.Cols) {
		return nil, nil, nil, fmt.Errorf("circuit: WLLRS %d out of range 0..%d", op.WLLRS, n-len(op.Cols))
	}
	if op.BLLRS < 0 || op.BLLRS > n-1 {
		return nil, nil, nil, fmt.Errorf("circuit: BLLRS %d out of range 0..%d", op.BLLRS, n-1)
	}

	target := make(map[int]bool, len(op.Cols))
	for _, c := range op.Cols {
		target[c] = true
	}
	wlLRS := spreadLRS(n, op.WLLRS, target)
	blLRS := spreadLRS(n, op.BLLRS, map[int]bool{op.Row: true})

	gWire := 1 / math.Max(f.p.RWire, 1e-9)
	gIn := 1 / math.Max(f.p.RIn, 1e-9)
	gOut := 1 / math.Max(f.p.ROut, 1e-9)

	// State: wordline node voltages, per-target bitline voltage at the
	// target row, and per-target drop.
	vWL := make([]float64, n)
	vBLAtTarget := make([]float64, len(op.Cols))
	vd := make([]float64, len(op.Cols))
	for k := range op.Cols {
		vBLAtTarget[k] = f.p.VWrite
		vd[k] = f.p.VWrite
	}

	sub := make([]float64, n)
	diag := make([]float64, n)
	sup := make([]float64, n)
	rhs := make([]float64, n)

	for iter := 0; iter < f.iterations; iter++ {
		// --- Selected wordline ladder (driver to 0 V at node 0). ---
		for j := 0; j < n; j++ {
			sub[j], diag[j], sup[j], rhs[j] = 0, 0, 0, 0
			if j > 0 {
				sub[j] = -gWire
				diag[j] += gWire
			}
			if j < n-1 {
				sup[j] = -gWire
				diag[j] += gWire
			}
		}
		diag[0] += gIn // to 0 V rail; rhs term is zero
		colOf := make(map[int]int, len(op.Cols))
		for k, c := range op.Cols {
			colOf[c] = k
		}
		for j := 0; j < n; j++ {
			if k, ok := colOf[j]; ok {
				// Target cell: shunt to the bitline voltage seen last
				// iteration, linearized at the current drop.
				g := f.p.TargetConductance(vd[k])
				diag[j] += g
				rhs[j] += g * vBLAtTarget[k]
				continue
			}
			// Half-selected cell: shunt to the VBias rail.
			g := f.p.CellConductance(f.p.VBias-vWL[j], wlLRS[j])
			diag[j] += g
			rhs[j] += g * f.p.VBias
		}
		sol := SolveTridiagonal(sub, diag, sup, rhs)
		maxMove := 0.0
		for j := 0; j < n; j++ {
			nv := vWL[j] + 0.5*(sol[j]-vWL[j])
			if d := math.Abs(nv - vWL[j]); d > maxMove {
				maxMove = d
			}
			vWL[j] = nv
		}

		// --- Each selected bitline ladder (driver to VWrite at node 0). ---
		for k, c := range op.Cols {
			for i := 0; i < n; i++ {
				sub[i], diag[i], sup[i], rhs[i] = 0, 0, 0, 0
				if i > 0 {
					sub[i] = -gWire
					diag[i] += gWire
				}
				if i < n-1 {
					sup[i] = -gWire
					diag[i] += gWire
				}
			}
			diag[0] += gOut
			rhs[0] += gOut * f.p.VWrite
			// Half-selected cells along the bitline discharge toward the
			// VBias rail of their (unselected) wordlines.
			vbPrev := vBLAtTarget[k]
			for i := 0; i < n; i++ {
				if i == op.Row {
					g := f.p.TargetConductance(vd[k])
					diag[i] += g
					rhs[i] += g * vWL[c]
					continue
				}
				g := f.p.CellConductance(vbPrev-f.p.VBias, blLRS[i])
				diag[i] += g
				rhs[i] += g * f.p.VBias
			}
			sol := SolveTridiagonal(sub, diag, sup, rhs)
			vb := vBLAtTarget[k] + 0.5*(sol[op.Row]-vBLAtTarget[k])
			if d := math.Abs(vb - vBLAtTarget[k]); d > maxMove {
				maxMove = d
			}
			vBLAtTarget[k] = vb
			nvd := vb - vWL[c]
			if nvd < 0 {
				nvd = 0
			}
			vd[k] = nvd
		}
		if maxMove < 1e-7*f.p.VWrite && iter > 2 {
			res := &Result{Vd: vd, Iterations: iter + 1}
			finishResult(res)
			return res, vWL, vBLAtTarget, nil
		}
	}
	res := &Result{Vd: vd, Iterations: f.iterations}
	finishResult(res)
	return res, vWL, vBLAtTarget, nil
}

// SolveWorstBL is a convenience that assumes worst-case bitline content
// (all half-selected cells on the selected bitlines in LRS), which is what
// the LADDER latency model does since bitline content is untracked.
func (f *FastModel) SolveWorstBL(row int, cols []int, wlLRS int) (*Result, error) {
	return f.Solve(FastOp{Row: row, Cols: cols, WLLRS: wlLRS, BLLRS: f.p.N - 1})
}
