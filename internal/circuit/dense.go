package circuit

import (
	"errors"
	"fmt"
	"math"
)

// DenseSolve solves A·x = b by Gaussian elimination with partial pivoting,
// where A is given in row-major order. It is O(n³) and meant for small
// systems: an independent reference the iterative solver is validated
// against in tests, and a direct fallback for ill-conditioned cases.
func DenseSolve(a []float64, b []float64) ([]float64, error) {
	n := len(b)
	if len(a) != n*n {
		return nil, fmt.Errorf("circuit: dense matrix is %d entries, want %d", len(a), n*n)
	}
	// Work on copies: callers keep their inputs.
	m := append([]float64(nil), a...)
	x := append([]float64(nil), b...)
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	for col := 0; col < n; col++ {
		// Partial pivot: the largest magnitude in this column.
		pivot, pivotVal := col, math.Abs(m[col*n+col])
		for r := col + 1; r < n; r++ {
			if v := math.Abs(m[r*n+col]); v > pivotVal {
				pivot, pivotVal = r, v
			}
		}
		if pivotVal == 0 {
			return nil, errors.New("circuit: singular matrix")
		}
		if pivot != col {
			for k := 0; k < n; k++ {
				m[col*n+k], m[pivot*n+k] = m[pivot*n+k], m[col*n+k]
			}
			x[col], x[pivot] = x[pivot], x[col]
		}
		inv := 1 / m[col*n+col]
		for r := col + 1; r < n; r++ {
			f := m[r*n+col] * inv
			if f == 0 {
				continue
			}
			m[r*n+col] = 0
			for k := col + 1; k < n; k++ {
				m[r*n+k] -= f * m[col*n+k]
			}
			x[r] -= f * x[col]
		}
	}
	for r := n - 1; r >= 0; r-- {
		s := x[r]
		for k := r + 1; k < n; k++ {
			s -= m[r*n+k] * x[k]
		}
		x[r] = s / m[r*n+r]
	}
	return x, nil
}

// Dense converts the CSR matrix to row-major dense form (testing and
// small-system fallback).
func (m *CSR) Dense() []float64 {
	out := make([]float64, m.n*m.n)
	for r := 0; r < m.n; r++ {
		for k := m.rowPtr[r]; k < m.rowPtr[r+1]; k++ {
			out[r*m.n+m.colIdx[k]] = m.values[k]
		}
	}
	return out
}

// Size returns the system dimension.
func (m *CSR) Size() int { return m.n }
