package circuit

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// Minimal sparse symmetric linear algebra for the MNA solver: a coordinate
// builder, CSR storage, and a Jacobi-preconditioned conjugate-gradient
// solver. The crossbar conductance matrix is symmetric positive definite
// because every node has a resistive path to a driven rail.

type triplet struct {
	row, col int
	val      float64
}

// MatrixBuilder accumulates symmetric conductance stamps in coordinate
// form. Duplicate entries are summed when compiled.
type MatrixBuilder struct {
	n       int
	entries []triplet
}

// NewMatrixBuilder returns a builder for an n x n system.
func NewMatrixBuilder(n int) *MatrixBuilder {
	return &MatrixBuilder{n: n, entries: make([]triplet, 0, 8*n)}
}

// Add accumulates val at (row, col).
func (b *MatrixBuilder) Add(row, col int, val float64) {
	if row < 0 || row >= b.n || col < 0 || col >= b.n {
		panic(fmt.Sprintf("circuit: matrix index (%d,%d) out of range %d", row, col, b.n))
	}
	b.entries = append(b.entries, triplet{row, col, val})
}

// StampConductance stamps a two-terminal conductance g between nodes a and
// b using standard MNA stencils. A negative node index denotes a driven
// rail (ideal source) and contributes only to the diagonal of the other
// node; the source current is handled by the caller via the RHS.
func (b *MatrixBuilder) StampConductance(a, c int, g float64) {
	if a >= 0 {
		b.Add(a, a, g)
	}
	if c >= 0 {
		b.Add(c, c, g)
	}
	if a >= 0 && c >= 0 {
		b.Add(a, c, -g)
		b.Add(c, a, -g)
	}
}

// CSR is a compressed sparse row matrix.
type CSR struct {
	n       int
	rowPtr  []int
	colIdx  []int
	values  []float64
	diagInv []float64 // Jacobi preconditioner
}

// Compile sorts, merges and freezes the builder into CSR form.
func (b *MatrixBuilder) Compile() *CSR {
	sort.Slice(b.entries, func(i, j int) bool {
		if b.entries[i].row != b.entries[j].row {
			return b.entries[i].row < b.entries[j].row
		}
		return b.entries[i].col < b.entries[j].col
	})
	m := &CSR{n: b.n, rowPtr: make([]int, b.n+1)}
	for i := 0; i < len(b.entries); {
		e := b.entries[i]
		v := 0.0
		for i < len(b.entries) && b.entries[i].row == e.row && b.entries[i].col == e.col {
			v += b.entries[i].val
			i++
		}
		m.colIdx = append(m.colIdx, e.col)
		m.values = append(m.values, v)
		m.rowPtr[e.row+1] = len(m.values)
	}
	for r := 1; r <= b.n; r++ {
		if m.rowPtr[r] == 0 {
			m.rowPtr[r] = m.rowPtr[r-1]
		}
	}
	m.diagInv = make([]float64, b.n)
	for r := 0; r < b.n; r++ {
		for k := m.rowPtr[r]; k < m.rowPtr[r+1]; k++ {
			if m.colIdx[k] == r && m.values[k] != 0 {
				m.diagInv[r] = 1 / m.values[k]
			}
		}
	}
	return m
}

// MulVec computes dst = M * x.
func (m *CSR) MulVec(x, dst []float64) {
	for r := 0; r < m.n; r++ {
		s := 0.0
		for k := m.rowPtr[r]; k < m.rowPtr[r+1]; k++ {
			s += m.values[k] * x[m.colIdx[k]]
		}
		dst[r] = s
	}
}

// CGOptions tunes the conjugate-gradient solve.
type CGOptions struct {
	// Tol is the relative residual tolerance ‖r‖/‖b‖.
	Tol float64
	// MaxIter caps iterations; 0 selects 20·n.
	MaxIter int
}

// ErrNoConvergence is returned when CG exhausts its iteration budget.
var ErrNoConvergence = errors.New("circuit: conjugate gradient did not converge")

// SolveCG solves M x = rhs with Jacobi-preconditioned conjugate gradients,
// starting from x0 (reused as the solution buffer if non-nil).
func (m *CSR) SolveCG(rhs, x0 []float64, opt CGOptions) ([]float64, error) {
	if opt.Tol == 0 {
		opt.Tol = 1e-9
	}
	if opt.MaxIter == 0 {
		opt.MaxIter = 20 * m.n
	}
	n := m.n
	x := x0
	if x == nil {
		x = make([]float64, n)
	}
	r := make([]float64, n)
	z := make([]float64, n)
	p := make([]float64, n)
	ap := make([]float64, n)

	m.MulVec(x, r)
	bnorm := 0.0
	for i := range rhs {
		r[i] = rhs[i] - r[i]
		bnorm += rhs[i] * rhs[i]
	}
	bnorm = math.Sqrt(bnorm)
	if bnorm == 0 {
		for i := range x {
			x[i] = 0
		}
		return x, nil
	}
	rz := 0.0
	for i := range r {
		z[i] = r[i] * m.diagInv[i]
		p[i] = z[i]
		rz += r[i] * z[i]
	}
	for iter := 0; iter < opt.MaxIter; iter++ {
		m.MulVec(p, ap)
		pap := 0.0
		for i := range p {
			pap += p[i] * ap[i]
		}
		if pap <= 0 {
			return x, fmt.Errorf("circuit: matrix not positive definite (p·Ap = %g)", pap)
		}
		alpha := rz / pap
		rnorm := 0.0
		for i := range x {
			x[i] += alpha * p[i]
			r[i] -= alpha * ap[i]
			rnorm += r[i] * r[i]
		}
		if math.Sqrt(rnorm) <= opt.Tol*bnorm {
			return x, nil
		}
		rzNew := 0.0
		for i := range r {
			z[i] = r[i] * m.diagInv[i]
			rzNew += r[i] * z[i]
		}
		beta := rzNew / rz
		rz = rzNew
		for i := range p {
			p[i] = z[i] + beta*p[i]
		}
	}
	return x, ErrNoConvergence
}

// SolveTridiagonal solves a tridiagonal system in place with the Thomas
// algorithm: sub, diag, sup are the three diagonals (sub[0] and
// sup[n-1] are ignored), rhs is overwritten with the solution. The inputs
// diag and rhs are modified.
func SolveTridiagonal(sub, diag, sup, rhs []float64) []float64 {
	n := len(diag)
	for i := 1; i < n; i++ {
		w := sub[i] / diag[i-1]
		diag[i] -= w * sup[i-1]
		rhs[i] -= w * rhs[i-1]
	}
	rhs[n-1] /= diag[n-1]
	for i := n - 2; i >= 0; i-- {
		rhs[i] = (rhs[i] - sup[i]*rhs[i+1]) / diag[i]
	}
	return rhs
}
