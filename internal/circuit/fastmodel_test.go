package circuit

import (
	"math"
	"testing"
)

func TestFastModelMonotoneInRow(t *testing.T) {
	f, err := NewFastModel(smallParams(64, 4))
	if err != nil {
		t.Fatal(err)
	}
	prev := math.Inf(1)
	for _, row := range []int{0, 21, 42, 63} {
		res, err := f.Solve(FastOp{Row: row, Cols: []int{0, 1, 2, 3}, WLLRS: 30, BLLRS: 63})
		if err != nil {
			t.Fatal(err)
		}
		if res.MinVd > prev+1e-9 {
			t.Fatalf("Vd increased with row distance at row %d: %v > %v", row, res.MinVd, prev)
		}
		prev = res.MinVd
	}
}

func TestFastModelMonotoneInCol(t *testing.T) {
	f, err := NewFastModel(smallParams(64, 4))
	if err != nil {
		t.Fatal(err)
	}
	prev := math.Inf(1)
	for _, base := range []int{0, 20, 40, 60} {
		res, err := f.Solve(FastOp{Row: 32, Cols: []int{base, base + 1, base + 2, base + 3}, WLLRS: 30, BLLRS: 63})
		if err != nil {
			t.Fatal(err)
		}
		if res.MinVd > prev+1e-9 {
			t.Fatalf("Vd increased with col distance at base %d: %v > %v", base, res.MinVd, prev)
		}
		prev = res.MinVd
	}
}

func TestFastModelMonotoneInWLContent(t *testing.T) {
	f, err := NewFastModel(smallParams(64, 4))
	if err != nil {
		t.Fatal(err)
	}
	prev := math.Inf(1)
	for _, lrs := range []int{0, 20, 40, 60} {
		res, err := f.Solve(FastOp{Row: 63, Cols: []int{60, 61, 62, 63}, WLLRS: lrs, BLLRS: 63})
		if err != nil {
			t.Fatal(err)
		}
		if res.MinVd > prev+1e-9 {
			t.Fatalf("Vd increased with WL LRS %d: %v > %v", lrs, res.MinVd, prev)
		}
		prev = res.MinVd
	}
}

func TestFastModelMonotoneInBLContent(t *testing.T) {
	f, err := NewFastModel(smallParams(64, 4))
	if err != nil {
		t.Fatal(err)
	}
	prev := math.Inf(1)
	for _, lrs := range []int{0, 30, 63} {
		res, err := f.Solve(FastOp{Row: 63, Cols: []int{60, 61, 62, 63}, WLLRS: 30, BLLRS: lrs})
		if err != nil {
			t.Fatal(err)
		}
		if res.MinVd > prev+1e-9 {
			t.Fatalf("Vd increased with BL LRS %d: %v > %v", lrs, res.MinVd, prev)
		}
		prev = res.MinVd
	}
}

func TestFastModelFewerSelectedCellsHigherVd(t *testing.T) {
	// Split-reset rationale: 4 selected cells draw less aggregate current
	// than 8, so each gets a larger drop.
	f, err := NewFastModel(smallParams(64, 8))
	if err != nil {
		t.Fatal(err)
	}
	res8, err := f.Solve(FastOp{Row: 63, Cols: []int{56, 57, 58, 59, 60, 61, 62, 63}, WLLRS: 30, BLLRS: 63})
	if err != nil {
		t.Fatal(err)
	}
	res4, err := f.Solve(FastOp{Row: 63, Cols: []int{56, 57, 58, 59}, WLLRS: 30, BLLRS: 63})
	if err != nil {
		t.Fatal(err)
	}
	if res4.MinVd <= res8.MinVd {
		t.Fatalf("4-cell Vd %v should exceed 8-cell Vd %v", res4.MinVd, res8.MinVd)
	}
}

func TestFastModelRejectsBadOps(t *testing.T) {
	f, err := NewFastModel(smallParams(16, 2))
	if err != nil {
		t.Fatal(err)
	}
	bad := []FastOp{
		{Row: -1, Cols: []int{0}},
		{Row: 0, Cols: nil},
		{Row: 0, Cols: []int{0}, WLLRS: 99},
		{Row: 0, Cols: []int{0}, BLLRS: 99},
	}
	for i, op := range bad {
		if _, err := f.Solve(op); err == nil {
			t.Errorf("op %d: expected error", i)
		}
	}
}

// TestFastModelAgreesWithMNA validates the reduced ladder model against the
// full MNA solver across locations and content levels on small crossbars.
func TestFastModelAgreesWithMNA(t *testing.T) {
	if testing.Short() {
		t.Skip("MNA validation is slow")
	}
	for _, n := range []int{16, 32} {
		p := smallParams(n, 2)
		mna, err := NewMNA(p)
		if err != nil {
			t.Fatal(err)
		}
		fast, err := NewFastModel(p)
		if err != nil {
			t.Fatal(err)
		}
		type cfg struct {
			row, colBase, wlLRS int
		}
		cases := []cfg{
			{0, 0, 0},
			{n - 1, n - 2, 0},
			{n - 1, n - 2, n / 2},
			{n / 2, n / 2, n - 2},
			{n - 1, 0, n / 4},
			{0, n - 2, n / 2},
		}
		for _, c := range cases {
			cols := []int{c.colBase, c.colBase + 1}
			pat := WordlinePattern(n, c.row, c.wlLRS, cols)
			ref, err := mna.Solve(pat, ResetOp{Row: c.row, Cols: cols})
			if err != nil {
				t.Fatalf("n=%d %+v: MNA: %v", n, c, err)
			}
			// The fast model assumes worst-case (all-LRS) bitline content;
			// the MNA pattern above has HRS bitlines, so compare with
			// matching bitline content: zero half-selected LRS cells on
			// bitlines.
			got, err := fast.Solve(FastOp{Row: c.row, Cols: cols, WLLRS: c.wlLRS, BLLRS: 0})
			if err != nil {
				t.Fatalf("n=%d %+v: fast: %v", n, c, err)
			}
			rel := math.Abs(got.MinVd-ref.MinVd) / ref.MinVd
			if rel > 0.10 {
				t.Errorf("n=%d row=%d col=%d wlLRS=%d: fast %v vs MNA %v (rel err %.3f)",
					n, c.row, c.colBase, c.wlLRS, got.MinVd, ref.MinVd, rel)
			}
		}
	}
}

// TestFastModelAgreesWithMNAFullContent validates with LRS content on both
// dimensions (dense crossbar).
func TestFastModelAgreesWithMNAFullContent(t *testing.T) {
	if testing.Short() {
		t.Skip("MNA validation is slow")
	}
	n := 24
	p := smallParams(n, 2)
	mna, err := NewMNA(p)
	if err != nil {
		t.Fatal(err)
	}
	fast, err := NewFastModel(p)
	if err != nil {
		t.Fatal(err)
	}
	cols := []int{n - 2, n - 1}
	ref, err := mna.Solve(UniformPattern(true), ResetOp{Row: n - 1, Cols: cols})
	if err != nil {
		t.Fatal(err)
	}
	got, err := fast.Solve(FastOp{Row: n - 1, Cols: cols, WLLRS: n - 2, BLLRS: n - 1})
	if err != nil {
		t.Fatal(err)
	}
	rel := math.Abs(got.MinVd-ref.MinVd) / ref.MinVd
	if rel > 0.15 {
		t.Errorf("dense crossbar: fast %v vs MNA %v (rel err %.3f)", got.MinVd, ref.MinVd, rel)
	}
}

func TestSolveWorstBLUsesMaxContent(t *testing.T) {
	f, err := NewFastModel(smallParams(32, 2))
	if err != nil {
		t.Fatal(err)
	}
	worst, err := f.SolveWorstBL(31, []int{30, 31}, 10)
	if err != nil {
		t.Fatal(err)
	}
	explicit, err := f.Solve(FastOp{Row: 31, Cols: []int{30, 31}, WLLRS: 10, BLLRS: 31})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(worst.MinVd-explicit.MinVd) > 1e-12 {
		t.Fatalf("SolveWorstBL %v != explicit worst BL %v", worst.MinVd, explicit.MinVd)
	}
}
