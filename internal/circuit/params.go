// Package circuit models the electrical behavior of a 1S1R crossbar ReRAM
// mat during RESET operations. It provides two solvers:
//
//   - A full modified-nodal-analysis (MNA) solver over all 2·N² crossbar
//     nodes, with the nonlinear selector handled by damped fixed-point
//     conductance iteration and the linear system solved by Jacobi-
//     preconditioned conjugate gradients. This is the reference model,
//     mirroring the paper's circuit-level simulation (Section 5), and is
//     exact but expensive.
//
//   - A reduced "ladder network" model that solves only the selected
//     wordline and the selected bitlines as 1-D resistive ladders (Thomas
//     algorithm) with half-selected cells lumped as shunt loads to the
//     half-bias rail, coupled by a short fixed-point loop. It runs in O(N)
//     and is validated against the MNA solver in tests.
//
// Both produce the voltage drop Vd across the fully-selected (target)
// cells; package timing converts Vd into RESET latency.
package circuit

import (
	"errors"
	"fmt"
	"math"
)

// Params holds the crossbar electrical parameters (paper Table 1).
type Params struct {
	// N is the crossbar dimension (N x N cells).
	N int
	// SelectedCells is the number of fully-selected cells per RESET (bits
	// written simultaneously to one mat; 8 for a full byte, 4 for one
	// Split-reset phase).
	SelectedCells int
	// RLRS and RHRS are the cell resistances (ohms) at full write voltage
	// in the low- and high-resistance states.
	RLRS float64
	RHRS float64
	// Nonlinearity is the selector nonlinearity factor K = I(V)/I(V/2).
	Nonlinearity float64
	// RIn and ROut are the wordline and bitline driver resistances (ohms).
	RIn  float64
	ROut float64
	// RWire is the wire resistance (ohms) of one cell-to-cell segment.
	RWire float64
	// VWrite is the full write voltage applied across the selected
	// wordline/bitline pair (volts).
	VWrite float64
	// VBias is the half-select bias applied to unselected lines (volts).
	VBias float64
	// TargetRFactor scales the effective resistance of fully-selected
	// cells during RESET. A cell being RESET moves from RLRS toward RHRS
	// over the pulse, so the sustained current that sets the array's IR
	// operating point is below the initial LRS current; half-selected
	// cells are not switching and keep their static characteristics.
	// 1 models the pessimistic pulse-start instant.
	TargetRFactor float64
}

// DefaultParams returns the paper's Table 1 configuration: a 512x512
// crossbar with 8 selected cells, 10 kΩ LRS, 2 MΩ HRS, selector
// nonlinearity 200, 100 Ω drivers, 2.5 Ω wire segments, 3 V write voltage
// and 1.5 V half bias.
func DefaultParams() Params {
	return Params{
		N:             512,
		SelectedCells: 8,
		RLRS:          10e3,
		RHRS:          2e6,
		Nonlinearity:  200,
		RIn:           100,
		ROut:          100,
		RWire:         2.5,
		VWrite:        3.0,
		VBias:         1.5,
		TargetRFactor: 2.0,
	}
}

// Validate reports whether the parameters describe a physically meaningful
// crossbar.
func (p Params) Validate() error {
	switch {
	case p.N <= 0:
		return errors.New("circuit: N must be positive")
	case p.SelectedCells <= 0 || p.SelectedCells > p.N:
		return fmt.Errorf("circuit: SelectedCells %d out of range 1..%d", p.SelectedCells, p.N)
	case p.RLRS <= 0 || p.RHRS <= 0:
		return errors.New("circuit: cell resistances must be positive")
	case p.RHRS < p.RLRS:
		return errors.New("circuit: RHRS must be >= RLRS")
	case p.Nonlinearity < 1:
		return errors.New("circuit: selector nonlinearity must be >= 1")
	case p.RIn < 0 || p.ROut < 0 || p.RWire < 0:
		return errors.New("circuit: driver and wire resistances must be non-negative")
	case p.VWrite <= 0:
		return errors.New("circuit: VWrite must be positive")
	case p.VBias < 0 || p.VBias > p.VWrite:
		return fmt.Errorf("circuit: VBias %v must lie in [0, VWrite]", p.VBias)
	case p.TargetRFactor < 0:
		return fmt.Errorf("circuit: TargetRFactor %v must be non-negative", p.TargetRFactor)
	}
	return nil
}

// targetRFactor returns the effective target-cell resistance scaling,
// defaulting to the pessimistic 1 when unset.
func (p Params) targetRFactor() float64 {
	if p.TargetRFactor <= 0 {
		return 1
	}
	return p.TargetRFactor
}

// TargetCurrent returns the sustained current through a fully-selected
// cell under RESET at drop v (see TargetRFactor).
func (p Params) TargetCurrent(v float64) float64 {
	return p.cellCurrentR(v, p.RLRS*p.targetRFactor())
}

// TargetConductance returns the linearization conductance of a
// fully-selected cell under RESET.
func (p Params) TargetConductance(v float64) float64 {
	return p.cellConductanceR(v, p.RLRS*p.targetRFactor())
}

// gamma returns the selector power-law exponent γ = log2(K), so that a cell
// current I ∝ |V|^γ satisfies I(V)/I(V/2) = K.
func (p Params) gamma() float64 {
	return math.Log2(p.Nonlinearity)
}

// CellCurrent returns the current (amps) through a 1S1R cell with the given
// state resistance when v volts are applied across it.
//
// The selector I–V law is piecewise, continuous, and satisfies the
// datasheet definition I(VWrite)/I(VWrite/2) = K exactly:
//
//   - |v| ≤ VWrite/4: ohmic leakage with conductance 4/(R·K);
//   - VWrite/4 < |v| ≤ VWrite/2: a constant-current plateau at the
//     half-select leakage VWrite/(R·K) — a selector biased near its
//     threshold behaves as a current limiter, so the sneak through
//     half-selected cells does not quench as the selected line's
//     potential sags (this is what makes the wordline data pattern the
//     first-order content effect, per the paper's Figure 4b);
//   - |v| > VWrite/2: the power law I = (VWrite/R)·(|v|/VWrite)^γ with
//     γ = log2(K), reaching the nominal state resistance at full voltage.
func (p Params) CellCurrent(v float64, lrs bool) float64 {
	r := p.RHRS
	if lrs {
		r = p.RLRS
	}
	return p.cellCurrentR(v, r)
}

func (p Params) cellCurrentR(v, r float64) float64 {
	mag := math.Abs(v) / p.VWrite
	var i float64
	switch {
	case mag <= 0.25:
		i = math.Abs(v) * 4 / (r * p.Nonlinearity)
	case mag <= 0.5:
		i = p.VWrite / (r * p.Nonlinearity)
	default:
		i = p.VWrite / r * math.Pow(mag, p.gamma())
	}
	if v < 0 {
		return -i
	}
	return i
}

// CellConductance returns the effective conductance I(v)/v used in the
// fixed-point linearization. It never vanishes, keeping the nodal systems
// well conditioned.
func (p Params) CellConductance(v float64, lrs bool) float64 {
	r := p.RHRS
	if lrs {
		r = p.RLRS
	}
	return p.cellConductanceR(v, r)
}

func (p Params) cellConductanceR(v, r float64) float64 {
	mag := math.Abs(v) / p.VWrite
	switch {
	case mag <= 0.25:
		return 4 / (r * p.Nonlinearity)
	case mag <= 0.5:
		return 1 / (r * p.Nonlinearity * mag)
	default:
		return math.Pow(mag, p.gamma()-1) / r
	}
}
