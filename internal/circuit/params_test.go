package circuit

import (
	"math"
	"testing"
)

func TestDefaultParamsMatchTable1(t *testing.T) {
	p := DefaultParams()
	if p.N != 512 {
		t.Errorf("N = %d, want 512", p.N)
	}
	if p.SelectedCells != 8 {
		t.Errorf("SelectedCells = %d, want 8", p.SelectedCells)
	}
	if p.RLRS != 10e3 || p.RHRS != 2e6 {
		t.Errorf("RLRS/RHRS = %v/%v, want 10k/2M", p.RLRS, p.RHRS)
	}
	if p.Nonlinearity != 200 {
		t.Errorf("Nonlinearity = %v, want 200", p.Nonlinearity)
	}
	if p.RIn != 100 || p.ROut != 100 || p.RWire != 2.5 {
		t.Errorf("RIn/ROut/RWire = %v/%v/%v, want 100/100/2.5", p.RIn, p.ROut, p.RWire)
	}
	if p.VWrite != 3.0 || p.VBias != 1.5 {
		t.Errorf("VWrite/VBias = %v/%v, want 3/1.5", p.VWrite, p.VBias)
	}
	if err := p.Validate(); err != nil {
		t.Fatalf("default params invalid: %v", err)
	}
}

func TestValidateRejectsBadParams(t *testing.T) {
	base := DefaultParams()
	cases := []struct {
		name string
		mod  func(*Params)
	}{
		{"zero N", func(p *Params) { p.N = 0 }},
		{"too many selected", func(p *Params) { p.SelectedCells = p.N + 1 }},
		{"zero selected", func(p *Params) { p.SelectedCells = 0 }},
		{"negative RLRS", func(p *Params) { p.RLRS = -1 }},
		{"HRS below LRS", func(p *Params) { p.RHRS = p.RLRS / 2 }},
		{"nonlinearity below 1", func(p *Params) { p.Nonlinearity = 0.5 }},
		{"negative wire", func(p *Params) { p.RWire = -1 }},
		{"zero VWrite", func(p *Params) { p.VWrite = 0 }},
		{"bias above write", func(p *Params) { p.VBias = p.VWrite + 1 }},
	}
	for _, c := range cases {
		p := base
		c.mod(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("%s: Validate accepted invalid params", c.name)
		}
	}
}

func TestCellCurrentNonlinearity(t *testing.T) {
	p := DefaultParams()
	full := p.CellCurrent(p.VWrite, true)
	half := p.CellCurrent(p.VWrite/2, true)
	if ratio := full / half; math.Abs(ratio-p.Nonlinearity) > 1e-6*p.Nonlinearity {
		t.Fatalf("I(V)/I(V/2) = %v, want %v", ratio, p.Nonlinearity)
	}
}

func TestCellCurrentFullVoltage(t *testing.T) {
	p := DefaultParams()
	if got, want := p.CellCurrent(p.VWrite, true), p.VWrite/p.RLRS; math.Abs(got-want) > 1e-12 {
		t.Fatalf("LRS full-voltage current = %v, want %v", got, want)
	}
	if got, want := p.CellCurrent(p.VWrite, false), p.VWrite/p.RHRS; math.Abs(got-want) > 1e-15 {
		t.Fatalf("HRS full-voltage current = %v, want %v", got, want)
	}
}

func TestCellCurrentOddSymmetry(t *testing.T) {
	p := DefaultParams()
	for _, v := range []float64{0.3, 1.0, 2.4} {
		if got := p.CellCurrent(-v, true); math.Abs(got+p.CellCurrent(v, true)) > 1e-15 {
			t.Fatalf("current not odd at %v: %v", v, got)
		}
	}
}

func TestCellCurrentMonotone(t *testing.T) {
	// The current is monotone non-decreasing in |v| (the conductance is
	// not, because of the selector's current-limiting plateau).
	p := DefaultParams()
	prev := 0.0
	for v := 0.01; v <= p.VWrite; v += 0.01 {
		i := p.CellCurrent(v, true)
		if i < prev-1e-15 {
			t.Fatalf("current not monotone at %v: %v < %v", v, i, prev)
		}
		prev = i
	}
}

func TestCellCurrentContinuous(t *testing.T) {
	p := DefaultParams()
	for _, knot := range []float64{p.VWrite / 4, p.VWrite / 2} {
		lo := p.CellCurrent(knot-1e-9, true)
		hi := p.CellCurrent(knot+1e-9, true)
		if math.Abs(hi-lo) > 1e-6*math.Abs(hi) {
			t.Fatalf("current discontinuous at %v: %v vs %v", knot, lo, hi)
		}
	}
}

func TestCellConductanceFloor(t *testing.T) {
	p := DefaultParams()
	if g := p.CellConductance(0, true); g <= 0 {
		t.Fatalf("conductance at 0 V must stay positive, got %v", g)
	}
}

func TestLRSConductsMoreThanHRS(t *testing.T) {
	p := DefaultParams()
	for _, v := range []float64{0.5, 1.5, 3.0} {
		if p.CellConductance(v, true) <= p.CellConductance(v, false) {
			t.Fatalf("LRS should conduct more than HRS at %v V", v)
		}
	}
}
