package circuit

import (
	"math"
	"math/rand"
	"testing"
)

func TestDenseSolveKnown(t *testing.T) {
	// [[2,1],[1,3]] x = [3,5] -> x = [0.8, 1.4]
	x, err := DenseSolve([]float64{2, 1, 1, 3}, []float64{3, 5})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-0.8) > 1e-12 || math.Abs(x[1]-1.4) > 1e-12 {
		t.Fatalf("x = %v", x)
	}
}

func TestDenseSolveNeedsPivoting(t *testing.T) {
	// Zero on the initial diagonal requires a row swap.
	x, err := DenseSolve([]float64{0, 1, 1, 0}, []float64{2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if x[0] != 3 || x[1] != 2 {
		t.Fatalf("x = %v", x)
	}
}

func TestDenseSolveSingular(t *testing.T) {
	if _, err := DenseSolve([]float64{1, 2, 2, 4}, []float64{1, 2}); err == nil {
		t.Fatal("singular matrix should fail")
	}
}

func TestDenseSolveDimensionMismatch(t *testing.T) {
	if _, err := DenseSolve([]float64{1, 2, 3}, []float64{1, 2}); err == nil {
		t.Fatal("dimension mismatch should fail")
	}
}

func TestDenseSolveLeavesInputsIntact(t *testing.T) {
	a := []float64{2, 1, 1, 3}
	b := []float64{3, 5}
	if _, err := DenseSolve(a, b); err != nil {
		t.Fatal(err)
	}
	if a[0] != 2 || b[0] != 3 {
		t.Fatal("inputs were mutated")
	}
}

// TestCGAgreesWithDense cross-checks the two linear solvers on random
// SPD resistor networks.
func TestCGAgreesWithDense(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	for trial := 0; trial < 10; trial++ {
		n := 10 + r.Intn(30)
		b := NewMatrixBuilder(n)
		for i := 0; i < n; i++ {
			b.Add(i, i, 0.2+r.Float64())
			if i+1 < n {
				b.StampConductance(i, i+1, 0.1+r.Float64())
			}
			if i+7 < n {
				b.StampConductance(i, i+7, 0.05+r.Float64())
			}
		}
		m := b.Compile()
		if m.Size() != n {
			t.Fatalf("size = %d", m.Size())
		}
		rhs := make([]float64, n)
		for i := range rhs {
			rhs[i] = r.NormFloat64()
		}
		want, err := DenseSolve(m.Dense(), rhs)
		if err != nil {
			t.Fatal(err)
		}
		got, err := m.SolveCG(rhs, nil, CGOptions{Tol: 1e-12})
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if math.Abs(got[i]-want[i]) > 1e-6*(1+math.Abs(want[i])) {
				t.Fatalf("trial %d: x[%d] = %v vs dense %v", trial, i, got[i], want[i])
			}
		}
	}
}

// TestMNAvsDenseTinyCrossbar solves a tiny crossbar's final linearized
// system with both solvers.
func TestMNAvsDenseTinyCrossbar(t *testing.T) {
	p := smallParams(8, 2)
	mna, err := NewMNA(p)
	if err != nil {
		t.Fatal(err)
	}
	res, err := mna.Solve(UniformPattern(false), ResetOp{Row: 7, Cols: []int{6, 7}})
	if err != nil {
		t.Fatal(err)
	}
	if res.MinVd <= 0 || res.MinVd > p.VWrite {
		t.Fatalf("MinVd = %v", res.MinVd)
	}
}
