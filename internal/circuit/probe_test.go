package circuit

import "testing"

// TestProbeContentSensitivity is a diagnostic (run with -run Probe -v).
func TestProbeContentSensitivity(t *testing.T) {
	p := DefaultParams()
	f, err := NewFastModel(p)
	if err != nil {
		t.Fatal(err)
	}
	cols := []int{504, 505, 506, 507, 508, 509, 510, 511}
	cases := []struct {
		name       string
		wlrs, blrs int
	}{
		{"WL=0   BL=0  ", 0, 0},
		{"WL=504 BL=0  ", 504, 0},
		{"WL=0   BL=511", 0, 511},
		{"WL=504 BL=511", 504, 511},
		{"WL=252 BL=255", 252, 255},
	}
	for _, c := range cases {
		r, err := f.Solve(FastOp{Row: 511, Cols: cols, WLLRS: c.wlrs, BLLRS: c.blrs})
		if err != nil {
			t.Fatal(err)
		}
		t.Logf("%s -> Vd = %.4f V", c.name, r.MinVd)
	}
}

// TestProbeWordlineRise inspects the far-end wordline voltage rise under
// heavy WL sneak (diagnostic).
func TestProbeWordlineRise(t *testing.T) {
	p := DefaultParams()
	f, err := NewFastModel(p)
	if err != nil {
		t.Fatal(err)
	}
	op := FastOp{Row: 511, Cols: []int{504, 505, 506, 507, 508, 509, 510, 511}, WLLRS: 504, BLLRS: 0}
	res, err := f.SolveDebug(op)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("vWL[0]=%.4f vWL[128]=%.4f vWL[256]=%.4f vWL[511]=%.4f", res.VWL[0], res.VWL[128], res.VWL[256], res.VWL[511])
	t.Logf("vBL at target for col 504: %.4f; Vd=%.4f iter=%d", res.VBLTarget[0], res.Vd[0], res.Iterations)
}
