package circuit

import (
	"fmt"
	"math"
)

// Pattern describes the resistive state of every cell in a crossbar:
// LRS(i, j) reports whether the cell at wordline i, bitline j stores a
// logical '1' (low-resistance state).
type Pattern interface {
	LRS(row, col int) bool
}

// PatternFunc adapts a function to the Pattern interface.
type PatternFunc func(row, col int) bool

// LRS implements Pattern.
func (f PatternFunc) LRS(row, col int) bool { return f(row, col) }

// UniformPattern returns a pattern where every cell is in the given state.
func UniformPattern(lrs bool) Pattern {
	return PatternFunc(func(int, int) bool { return lrs })
}

// WordlinePattern returns a pattern with `count` LRS cells spread evenly
// across the columns of wordline `row` (excluding the given selected
// columns), all other cells HRS. It reproduces the aggregate the LADDER
// latency model is keyed on: the LRS population of the selected wordline.
func WordlinePattern(n, row, count int, selected []int) Pattern {
	sel := make(map[int]bool, len(selected))
	for _, c := range selected {
		sel[c] = true
	}
	avail := make([]int, 0, n)
	for j := 0; j < n; j++ {
		if !sel[j] {
			avail = append(avail, j)
		}
	}
	if count > len(avail) {
		count = len(avail)
	}
	lrs := make(map[int]bool, count)
	for k := 0; k < count; k++ {
		// Even spread across the available columns.
		lrs[avail[k*len(avail)/max(count, 1)]] = true
	}
	return PatternFunc(func(i, j int) bool { return i == row && lrs[j] })
}

// ResetOp describes one RESET operation: the selected wordline and the
// selected bitlines (the cells being switched LRS→HRS).
type ResetOp struct {
	Row  int
	Cols []int
}

// Validate checks the op against crossbar dimension n.
func (op ResetOp) Validate(n int) error {
	if op.Row < 0 || op.Row >= n {
		return fmt.Errorf("circuit: selected row %d out of range 0..%d", op.Row, n-1)
	}
	if len(op.Cols) == 0 {
		return fmt.Errorf("circuit: no selected columns")
	}
	seen := make(map[int]bool, len(op.Cols))
	for _, c := range op.Cols {
		if c < 0 || c >= n {
			return fmt.Errorf("circuit: selected column %d out of range 0..%d", c, n-1)
		}
		if seen[c] {
			return fmt.Errorf("circuit: duplicate selected column %d", c)
		}
		seen[c] = true
	}
	return nil
}

// Result reports the solved operating point of a RESET operation.
type Result struct {
	// Vd is the voltage drop across each fully-selected cell, in the order
	// of ResetOp.Cols. Larger is better (faster RESET).
	Vd []float64
	// MinVd is the worst (smallest) drop among the selected cells; it
	// governs the RESET latency of the whole operation.
	MinVd float64
	// Iterations is the number of nonlinear fixed-point iterations used.
	Iterations int
}

func finishResult(r *Result) {
	r.MinVd = math.Inf(1)
	for _, v := range r.Vd {
		if v < r.MinVd {
			r.MinVd = v
		}
	}
}

// MNA is the full modified-nodal-analysis crossbar solver.
type MNA struct {
	p Params
	// nonlinear iteration controls
	maxNonlinear int
	damping      float64
	cg           CGOptions
}

// NewMNA returns an MNA solver for the given parameters.
func NewMNA(p Params) (*MNA, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &MNA{
		p:            p,
		maxNonlinear: 18,
		damping:      0.5,
		cg:           CGOptions{Tol: 1e-9},
	}, nil
}

// node indices: wordline node (i,j) = i*N + j, bitline node = N² + i*N + j.
func (m *MNA) wlNode(i, j int) int { return i*m.p.N + j }
func (m *MNA) blNode(i, j int) int { return m.p.N*m.p.N + i*m.p.N + j }

// Solve computes the operating point of a RESET described by op over the
// crossbar content pat. Fully-selected cells are treated as LRS (the
// worst case: a RESET switches LRS→HRS, and a cell still in LRS draws the
// most current), matching the paper's conservative timing argument.
func (m *MNA) Solve(pat Pattern, op ResetOp) (*Result, error) {
	if err := op.Validate(m.p.N); err != nil {
		return nil, err
	}
	n := m.p.N
	nn := 2 * n * n
	target := make(map[int]bool, len(op.Cols))
	for _, c := range op.Cols {
		target[c] = true
	}

	// Rail potentials per line.
	vWLRail := make([]float64, n)
	vBLRail := make([]float64, n)
	for i := 0; i < n; i++ {
		vWLRail[i] = m.p.VBias
		vBLRail[i] = m.p.VBias
	}
	vWLRail[op.Row] = 0
	for _, c := range op.Cols {
		vBLRail[c] = m.p.VWrite
	}

	// Initial node voltages: each line at its rail.
	v := make([]float64, nn)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			v[m.wlNode(i, j)] = vWLRail[i]
			v[m.blNode(i, j)] = vBLRail[j]
		}
	}

	gWire := 1 / math.Max(m.p.RWire, 1e-9)
	gIn := 1 / math.Max(m.p.RIn, 1e-9)
	gOut := 1 / math.Max(m.p.ROut, 1e-9)

	// Cell conductances, updated by the nonlinear loop. Fully-selected
	// cells use the sustained RESET target characteristics.
	g := make([]float64, n*n)
	isTarget := func(i, j int) bool { return i == op.Row && target[j] }
	conductance := func(i, j int, dv float64) float64 {
		if isTarget(i, j) {
			return m.p.TargetConductance(dv)
		}
		return m.p.CellConductance(dv, pat.LRS(i, j))
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			dv := v[m.blNode(i, j)] - v[m.wlNode(i, j)]
			g[i*n+j] = conductance(i, j, dv)
		}
	}

	var res Result
	for iter := 0; iter < m.maxNonlinear; iter++ {
		b := NewMatrixBuilder(nn)
		rhs := make([]float64, nn)
		for i := 0; i < n; i++ {
			// Wordline wire segments and driver (driver at column 0).
			for j := 0; j+1 < n; j++ {
				b.StampConductance(m.wlNode(i, j), m.wlNode(i, j+1), gWire)
			}
			b.Add(m.wlNode(i, 0), m.wlNode(i, 0), gIn)
			rhs[m.wlNode(i, 0)] += gIn * vWLRail[i]
		}
		for j := 0; j < n; j++ {
			// Bitline wire segments and driver (driver at row 0).
			for i := 0; i+1 < n; i++ {
				b.StampConductance(m.blNode(i, j), m.blNode(i+1, j), gWire)
			}
			b.Add(m.blNode(0, j), m.blNode(0, j), gOut)
			rhs[m.blNode(0, j)] += gOut * vBLRail[j]
		}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				b.StampConductance(m.wlNode(i, j), m.blNode(i, j), g[i*n+j])
			}
		}
		mat := b.Compile()
		sol, err := mat.SolveCG(rhs, v, m.cg)
		if err != nil {
			return nil, fmt.Errorf("solving MNA system (iter %d): %w", iter, err)
		}
		v = sol

		// Update conductances with damping; track the largest relative move.
		maxRel := 0.0
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				dv := v[m.blNode(i, j)] - v[m.wlNode(i, j)]
				gNew := conductance(i, j, dv)
				gOld := g[i*n+j]
				gNext := gOld + m.damping*(gNew-gOld)
				if gOld > 0 {
					if rel := math.Abs(gNext-gOld) / gOld; rel > maxRel {
						maxRel = rel
					}
				}
				g[i*n+j] = gNext
			}
		}
		res.Iterations = iter + 1
		if maxRel < 1e-4 {
			break
		}
	}

	res.Vd = make([]float64, len(op.Cols))
	for k, c := range op.Cols {
		res.Vd[k] = v[m.blNode(op.Row, c)] - v[m.wlNode(op.Row, c)]
	}
	finishResult(&res)
	return &res, nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
