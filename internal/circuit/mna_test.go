package circuit

import (
	"math"
	"testing"
)

// smallParams scales the crossbar down for MNA tests while keeping the
// electrical character (same resistances and voltages).
func smallParams(n, selected int) Params {
	p := DefaultParams()
	p.N = n
	p.SelectedCells = selected
	return p
}

func TestResetOpValidate(t *testing.T) {
	cases := []struct {
		op ResetOp
		ok bool
	}{
		{ResetOp{Row: 0, Cols: []int{0}}, true},
		{ResetOp{Row: -1, Cols: []int{0}}, false},
		{ResetOp{Row: 16, Cols: []int{0}}, false},
		{ResetOp{Row: 0, Cols: nil}, false},
		{ResetOp{Row: 0, Cols: []int{16}}, false},
		{ResetOp{Row: 0, Cols: []int{1, 1}}, false},
	}
	for i, c := range cases {
		err := c.op.Validate(16)
		if (err == nil) != c.ok {
			t.Errorf("case %d: Validate = %v, want ok=%v", i, err, c.ok)
		}
	}
}

func TestMNAVdWithinPhysicalRange(t *testing.T) {
	p := smallParams(16, 4)
	m, err := NewMNA(p)
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Solve(UniformPattern(false), ResetOp{Row: 8, Cols: []int{4, 5, 6, 7}})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range res.Vd {
		if v <= 0 || v > p.VWrite {
			t.Fatalf("Vd %v outside (0, %v]", v, p.VWrite)
		}
	}
	if res.MinVd > p.VWrite-0.001 {
		t.Fatalf("MinVd %v implausibly close to ideal; drivers/wires should drop some voltage", res.MinVd)
	}
}

func TestMNAContentDependency(t *testing.T) {
	// More LRS cells on the selected wordline -> more sneak current ->
	// smaller Vd. This is the core content dependency LADDER exploits.
	p := smallParams(16, 2)
	m, err := NewMNA(p)
	if err != nil {
		t.Fatal(err)
	}
	op := ResetOp{Row: 15, Cols: []int{14, 15}}
	prev := math.Inf(1)
	for _, count := range []int{0, 7, 14} {
		pat := WordlinePattern(p.N, op.Row, count, op.Cols)
		res, err := m.Solve(pat, op)
		if err != nil {
			t.Fatal(err)
		}
		if res.MinVd >= prev {
			t.Fatalf("Vd did not decrease with WL LRS count %d: %v >= %v", count, res.MinVd, prev)
		}
		prev = res.MinVd
	}
}

func TestMNALocationDependency(t *testing.T) {
	// Cells farther from the drivers suffer more IR drop.
	p := smallParams(16, 2)
	m, err := NewMNA(p)
	if err != nil {
		t.Fatal(err)
	}
	near, err := m.Solve(UniformPattern(false), ResetOp{Row: 0, Cols: []int{0, 1}})
	if err != nil {
		t.Fatal(err)
	}
	far, err := m.Solve(UniformPattern(false), ResetOp{Row: 15, Cols: []int{14, 15}})
	if err != nil {
		t.Fatal(err)
	}
	if far.MinVd >= near.MinVd {
		t.Fatalf("far cell Vd %v should be below near cell Vd %v", far.MinVd, near.MinVd)
	}
}

func TestMNAAllLRSWorst(t *testing.T) {
	// A fully LRS crossbar is the pathological worst case.
	p := smallParams(16, 2)
	m, err := NewMNA(p)
	if err != nil {
		t.Fatal(err)
	}
	op := ResetOp{Row: 15, Cols: []int{14, 15}}
	empty, err := m.Solve(UniformPattern(false), op)
	if err != nil {
		t.Fatal(err)
	}
	full, err := m.Solve(UniformPattern(true), op)
	if err != nil {
		t.Fatal(err)
	}
	if full.MinVd >= empty.MinVd {
		t.Fatalf("all-LRS Vd %v should be below all-HRS Vd %v", full.MinVd, empty.MinVd)
	}
}

func TestMNARejectsBadOp(t *testing.T) {
	m, err := NewMNA(smallParams(8, 1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Solve(UniformPattern(false), ResetOp{Row: 99, Cols: []int{0}}); err == nil {
		t.Fatal("expected error for out-of-range row")
	}
}

func TestNewMNARejectsInvalidParams(t *testing.T) {
	p := DefaultParams()
	p.N = -1
	if _, err := NewMNA(p); err == nil {
		t.Fatal("expected error")
	}
}
