package circuit

import (
	"math"
	"math/rand"
	"testing"
)

func TestCSRSolveIdentity(t *testing.T) {
	b := NewMatrixBuilder(4)
	for i := 0; i < 4; i++ {
		b.Add(i, i, 1)
	}
	m := b.Compile()
	rhs := []float64{1, 2, 3, 4}
	x, err := m.SolveCG(rhs, nil, CGOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i := range rhs {
		if math.Abs(x[i]-rhs[i]) > 1e-9 {
			t.Fatalf("x[%d] = %v, want %v", i, x[i], rhs[i])
		}
	}
}

func TestCSRDuplicateEntriesMerge(t *testing.T) {
	b := NewMatrixBuilder(2)
	b.Add(0, 0, 1)
	b.Add(0, 0, 2)
	b.Add(1, 1, 1)
	m := b.Compile()
	x := []float64{1, 1}
	dst := make([]float64, 2)
	m.MulVec(x, dst)
	if dst[0] != 3 || dst[1] != 1 {
		t.Fatalf("MulVec = %v, want [3 1]", dst)
	}
}

func TestStampConductanceSymmetric(t *testing.T) {
	b := NewMatrixBuilder(2)
	b.StampConductance(0, 1, 2.0)
	b.Add(0, 0, 1) // ground leak to keep SPD
	b.Add(1, 1, 1)
	m := b.Compile()
	// Matrix: [[3,-2],[-2,3]]; rhs [1,0] -> x = [3/5, 2/5]
	x, err := m.SolveCG([]float64{1, 0}, nil, CGOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-0.6) > 1e-9 || math.Abs(x[1]-0.4) > 1e-9 {
		t.Fatalf("x = %v, want [0.6 0.4]", x)
	}
}

func TestStampConductanceRailNode(t *testing.T) {
	// Negative node index = ideal rail: only diagonal of the other node.
	b := NewMatrixBuilder(1)
	b.StampConductance(0, -1, 5)
	m := b.Compile()
	x, err := m.SolveCG([]float64{10}, nil, CGOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-2) > 1e-9 {
		t.Fatalf("x = %v, want 2", x[0])
	}
}

func TestCGRandomSPDSystem(t *testing.T) {
	// Build a random resistor ladder with ground leaks: SPD by
	// construction. Verify CG against residual.
	r := rand.New(rand.NewSource(5))
	const n = 50
	b := NewMatrixBuilder(n)
	for i := 0; i < n; i++ {
		b.Add(i, i, 0.1+r.Float64())
		if i+1 < n {
			b.StampConductance(i, i+1, 0.5+r.Float64())
		}
	}
	m := b.Compile()
	rhs := make([]float64, n)
	for i := range rhs {
		rhs[i] = r.NormFloat64()
	}
	x, err := m.SolveCG(rhs, nil, CGOptions{Tol: 1e-10})
	if err != nil {
		t.Fatal(err)
	}
	res := make([]float64, n)
	m.MulVec(x, res)
	for i := range res {
		if math.Abs(res[i]-rhs[i]) > 1e-7 {
			t.Fatalf("residual[%d] = %v", i, res[i]-rhs[i])
		}
	}
}

func TestCGZeroRHS(t *testing.T) {
	b := NewMatrixBuilder(3)
	for i := 0; i < 3; i++ {
		b.Add(i, i, 2)
	}
	m := b.Compile()
	x, err := m.SolveCG(make([]float64, 3), nil, CGOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i := range x {
		if x[i] != 0 {
			t.Fatalf("x[%d] = %v, want 0", i, x[i])
		}
	}
}

func TestSolveTridiagonalKnown(t *testing.T) {
	// System: [[2,-1,0],[-1,2,-1],[0,-1,2]] x = [1,0,1] -> x = [1,1,1]
	sub := []float64{0, -1, -1}
	diag := []float64{2, 2, 2}
	sup := []float64{-1, -1, 0}
	rhs := []float64{1, 0, 1}
	x := SolveTridiagonal(sub, diag, sup, rhs)
	for i := range x {
		if math.Abs(x[i]-1) > 1e-12 {
			t.Fatalf("x[%d] = %v, want 1", i, x[i])
		}
	}
}

func TestSolveTridiagonalMatchesCG(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	const n = 30
	sub := make([]float64, n)
	diag := make([]float64, n)
	sup := make([]float64, n)
	rhs := make([]float64, n)
	b := NewMatrixBuilder(n)
	for i := 0; i < n; i++ {
		d := 2 + r.Float64()
		diag[i] = d
		b.Add(i, i, d)
		rhs[i] = r.NormFloat64()
		if i+1 < n {
			o := -(0.2 + 0.5*r.Float64())
			sup[i] = o
			sub[i+1] = o
			b.Add(i, i+1, o)
			b.Add(i+1, i, o)
		}
	}
	rhs2 := append([]float64(nil), rhs...)
	want, err := b.Compile().SolveCG(rhs2, nil, CGOptions{Tol: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	got := SolveTridiagonal(sub, diag, sup, rhs)
	for i := range got {
		if math.Abs(got[i]-want[i]) > 1e-8 {
			t.Fatalf("x[%d]: thomas %v vs cg %v", i, got[i], want[i])
		}
	}
}
