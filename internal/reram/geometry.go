// Package reram models the organization of a crossbar ReRAM main memory:
// the channel/rank/bank hierarchy, the mapping of 64-byte memory blocks
// onto mats and wordline groups (paper Figure 3), and a sparse content
// store that tracks the actual stored bits plus exact per-wordline LRS
// counters for every touched wordline group.
package reram

import (
	"errors"
	"fmt"
)

// BlockSize is the size of one memory block in bytes.
const BlockSize = 64

// BlocksPerRow is the number of memory blocks mapped to one wordline group
// (one 4 KB physical page: 64 blocks × 64 B).
const BlocksPerRow = 64

// RowBytes is the data capacity of one wordline group.
const RowBytes = BlockSize * BlocksPerRow

// Geometry describes the memory organization (paper Table 2: 16 GB, dual
// channel, 2 ranks/channel, 8 banks/rank, ×8 chips with 512×512 mats).
type Geometry struct {
	// Channels, RanksPerChannel, BanksPerRank define the hierarchy.
	Channels        int
	RanksPerChannel int
	BanksPerRank    int
	// MatGroupsPerBank is the number of 64-mat groups stacked in a bank;
	// each group contributes MatRows wordline groups.
	MatGroupsPerBank int
	// MatRows is the crossbar dimension (wordlines per mat).
	MatRows int
}

// DefaultGeometry returns the paper's configuration scaled so the total
// capacity is 16 GB: 2 channels × 2 ranks × 8 banks × 256 mat groups ×
// 512 rows × 4 KB.
func DefaultGeometry() Geometry {
	return Geometry{
		Channels:         2,
		RanksPerChannel:  2,
		BanksPerRank:     8,
		MatGroupsPerBank: 256,
		MatRows:          512,
	}
}

// Validate reports whether the geometry is usable.
func (g Geometry) Validate() error {
	switch {
	case g.Channels <= 0 || g.RanksPerChannel <= 0 || g.BanksPerRank <= 0:
		return errors.New("reram: hierarchy dimensions must be positive")
	case g.MatGroupsPerBank <= 0:
		return errors.New("reram: MatGroupsPerBank must be positive")
	case g.MatRows <= 0:
		return fmt.Errorf("reram: MatRows %d must be positive", g.MatRows)
	}
	return nil
}

// Banks returns the total number of banks.
func (g Geometry) Banks() int {
	return g.Channels * g.RanksPerChannel * g.BanksPerRank
}

// RowsPerBank returns the number of wordline groups per bank.
func (g Geometry) RowsPerBank() int {
	return g.MatGroupsPerBank * g.MatRows
}

// Rows returns the total number of wordline groups.
func (g Geometry) Rows() uint64 {
	return uint64(g.Banks()) * uint64(g.RowsPerBank())
}

// Lines returns the total number of 64-byte memory blocks.
func (g Geometry) Lines() uint64 { return g.Rows() * BlocksPerRow }

// CapacityBytes returns the total capacity in bytes.
func (g Geometry) CapacityBytes() uint64 { return g.Lines() * BlockSize }

// Location is a fully decoded physical position of one memory block.
type Location struct {
	Channel int
	Rank    int
	Bank    int
	// Row is the wordline-group index within the bank.
	Row int
	// Slot is the block's position within its wordline group (0..63); it
	// fixes the bitline span the block's bits occupy in every mat.
	Slot int
	// WL is the wordline index within the crossbar (0 = nearest the
	// bitline driver), i.e. Row modulo MatRows.
	WL int
	// BLHigh is the highest bitline index the block's byte occupies in a
	// mat (the worst-case bitline location for latency lookup).
	BLHigh int
}

// GlobalRow returns a dense index of the wordline group across the whole
// memory, used as the content-store key.
func (g Geometry) GlobalRow(loc Location) uint64 {
	bank := (loc.Channel*g.RanksPerChannel+loc.Rank)*g.BanksPerRank + loc.Bank
	return uint64(bank)*uint64(g.RowsPerBank()) + uint64(loc.Row)
}

// Decode maps a line address (a dense block index) to its physical
// location. Consecutive blocks fill a wordline group before moving to the
// next row; rows round-robin across channels, then ranks, then banks, so
// pages spread over the hierarchy while each 4 KB page stays within one
// wordline group (the property LADDER's metadata layout relies on).
func (g Geometry) Decode(line uint64) (Location, error) {
	if line >= g.Lines() {
		return Location{}, fmt.Errorf("reram: line address %d beyond capacity (%d lines)", line, g.Lines())
	}
	var loc Location
	loc.Slot = int(line % BlocksPerRow)
	row := line / BlocksPerRow
	loc.Channel = int(row % uint64(g.Channels))
	row /= uint64(g.Channels)
	loc.Rank = int(row % uint64(g.RanksPerChannel))
	row /= uint64(g.RanksPerChannel)
	loc.Bank = int(row % uint64(g.BanksPerRank))
	row /= uint64(g.BanksPerRank)
	loc.Row = int(row)
	if loc.Row >= g.RowsPerBank() {
		return Location{}, fmt.Errorf("reram: row %d beyond bank capacity %d", loc.Row, g.RowsPerBank())
	}
	loc.WL = loc.Row % g.MatRows
	// Block slot s occupies bitlines [8s, 8s+8) of every mat it touches.
	loc.BLHigh = loc.Slot*8 + 7
	return loc, nil
}

// Encode is the inverse of Decode.
func (g Geometry) Encode(loc Location) uint64 {
	row := uint64(loc.Row)
	row = row*uint64(g.BanksPerRank) + uint64(loc.Bank)
	row = row*uint64(g.RanksPerChannel) + uint64(loc.Rank)
	row = row*uint64(g.Channels) + uint64(loc.Channel)
	return row*BlocksPerRow + uint64(loc.Slot)
}

// RowBase returns the line address of slot 0 in the same wordline group as
// the given line address.
func (g Geometry) RowBase(line uint64) uint64 {
	return line - line%BlocksPerRow
}

// RowLocation inverts GlobalRow: the Location of slot 0 of the given
// global wordline group.
func (g Geometry) RowLocation(globalRow uint64) Location {
	row := int(globalRow % uint64(g.RowsPerBank()))
	bank := int(globalRow / uint64(g.RowsPerBank()))
	loc := Location{
		Channel: bank / (g.RanksPerChannel * g.BanksPerRank),
		Rank:    bank / g.BanksPerRank % g.RanksPerChannel,
		Bank:    bank % g.BanksPerRank,
		Row:     row,
		Slot:    0,
		WL:      row % g.MatRows,
		BLHigh:  7,
	}
	return loc
}

// RowBaseLine returns the line address of slot 0 of a global wordline
// group.
func (g Geometry) RowBaseLine(globalRow uint64) uint64 {
	return g.Encode(g.RowLocation(globalRow))
}
