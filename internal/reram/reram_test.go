package reram

import (
	"math/rand"
	"testing"
	"testing/quick"

	"ladder/internal/bits"
)

func TestDefaultGeometryCapacity(t *testing.T) {
	g := DefaultGeometry()
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := g.CapacityBytes(); got != 16<<30 {
		t.Fatalf("capacity = %d bytes, want 16 GiB", got)
	}
	if got := g.Banks(); got != 32 {
		t.Fatalf("banks = %d, want 32", got)
	}
	if got := g.RowsPerBank(); got != 256*512 {
		t.Fatalf("rows per bank = %d", got)
	}
}

func TestGeometryValidation(t *testing.T) {
	bad := []Geometry{
		{},
		{Channels: 1, RanksPerChannel: 1, BanksPerRank: 0, MatGroupsPerBank: 1, MatRows: 512},
		{Channels: 1, RanksPerChannel: 1, BanksPerRank: 1, MatGroupsPerBank: 0, MatRows: 512},
		{Channels: 1, RanksPerChannel: 1, BanksPerRank: 1, MatGroupsPerBank: 1, MatRows: 0},
	}
	for i, g := range bad {
		if err := g.Validate(); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
}

func TestDecodeEncodeRoundTrip(t *testing.T) {
	g := DefaultGeometry()
	f := func(raw uint64) bool {
		line := raw % g.Lines()
		loc, err := g.Decode(line)
		if err != nil {
			return false
		}
		return g.Encode(loc) == line
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeFieldsInRange(t *testing.T) {
	g := DefaultGeometry()
	f := func(raw uint64) bool {
		loc, err := g.Decode(raw % g.Lines())
		if err != nil {
			return false
		}
		return loc.Channel < g.Channels && loc.Rank < g.RanksPerChannel &&
			loc.Bank < g.BanksPerRank && loc.Row < g.RowsPerBank() &&
			loc.Slot < BlocksPerRow && loc.WL < g.MatRows &&
			loc.BLHigh == loc.Slot*8+7
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeOutOfRange(t *testing.T) {
	g := DefaultGeometry()
	if _, err := g.Decode(g.Lines()); err == nil {
		t.Fatal("expected error beyond capacity")
	}
}

func TestConsecutiveLinesShareRow(t *testing.T) {
	g := DefaultGeometry()
	// Lines 0..63 must land in the same wordline group (one 4 KB page),
	// with slots 0..63.
	base, err := g.Decode(0)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(1); i < BlocksPerRow; i++ {
		loc, err := g.Decode(i)
		if err != nil {
			t.Fatal(err)
		}
		if g.GlobalRow(loc) != g.GlobalRow(base) {
			t.Fatalf("line %d left the wordline group", i)
		}
		if loc.Slot != int(i) {
			t.Fatalf("line %d slot = %d", i, loc.Slot)
		}
	}
	// Line 64 starts a new row on the next channel.
	next, err := g.Decode(BlocksPerRow)
	if err != nil {
		t.Fatal(err)
	}
	if g.GlobalRow(next) == g.GlobalRow(base) {
		t.Fatal("line 64 stayed in the same wordline group")
	}
	if next.Channel == base.Channel {
		t.Fatal("consecutive rows should interleave across channels")
	}
}

func TestRowBase(t *testing.T) {
	g := DefaultGeometry()
	if got := g.RowBase(67); got != 64 {
		t.Fatalf("RowBase(67) = %d, want 64", got)
	}
	if got := g.RowBase(64); got != 64 {
		t.Fatalf("RowBase(64) = %d, want 64", got)
	}
}

func TestGlobalRowDistinctAcrossBanks(t *testing.T) {
	g := DefaultGeometry()
	seen := make(map[uint64]bool)
	for line := uint64(0); line < 200*BlocksPerRow; line += BlocksPerRow {
		loc, err := g.Decode(line)
		if err != nil {
			t.Fatal(err)
		}
		k := g.GlobalRow(loc)
		if seen[k] {
			t.Fatalf("global row %d repeats at line %d", k, line)
		}
		seen[k] = true
	}
}

func TestStoreReadUnwritten(t *testing.T) {
	s, err := NewStore(DefaultGeometry())
	if err != nil {
		t.Fatal(err)
	}
	l, err := s.Read(12345)
	if err != nil {
		t.Fatal(err)
	}
	if l != (bits.Line{}) {
		t.Fatal("unwritten line should read as zero")
	}
}

func TestStoreWriteReadBack(t *testing.T) {
	s, err := NewStore(DefaultGeometry())
	if err != nil {
		t.Fatal(err)
	}
	var l bits.Line
	rand.New(rand.NewSource(3)).Read(l[:])
	old, err := s.Write(100, l)
	if err != nil {
		t.Fatal(err)
	}
	if old != (bits.Line{}) {
		t.Fatal("first write should return zero old content")
	}
	got, err := s.Read(100)
	if err != nil {
		t.Fatal(err)
	}
	if got != l {
		t.Fatal("read-back mismatch")
	}
}

func TestStoreWriteReturnsOld(t *testing.T) {
	s, err := NewStore(DefaultGeometry())
	if err != nil {
		t.Fatal(err)
	}
	var a, b bits.Line
	a[0], b[0] = 1, 2
	if _, err := s.Write(7, a); err != nil {
		t.Fatal(err)
	}
	old, err := s.Write(7, b)
	if err != nil {
		t.Fatal(err)
	}
	if old != a {
		t.Fatal("second write should return first content")
	}
}

// TestIncrementalCountersMatchRecount is the store's core invariant: after
// any write sequence the incrementally maintained per-wordline counters
// equal a recount from the stored data.
func TestIncrementalCountersMatchRecount(t *testing.T) {
	s, err := NewStore(DefaultGeometry())
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(17))
	for i := 0; i < 500; i++ {
		line := uint64(r.Intn(256)) // stay within a few rows to force overwrites
		var l bits.Line
		r.Read(l[:])
		if _, err := s.Write(line, l); err != nil {
			t.Fatal(err)
		}
	}
	for _, probe := range []uint64{0, 64, 128, 192} {
		inc, err := s.RowCounters(probe)
		if err != nil {
			t.Fatal(err)
		}
		rec, err := s.RecountRow(probe)
		if err != nil {
			t.Fatal(err)
		}
		if inc != rec {
			t.Fatalf("row %d: incremental counters diverge from recount", probe)
		}
	}
}

func TestMaxRowCounterTracksDensity(t *testing.T) {
	s, err := NewStore(DefaultGeometry())
	if err != nil {
		t.Fatal(err)
	}
	var dense bits.Line
	for i := range dense {
		dense[i] = 0xff
	}
	// Write 10 dense blocks into one row: every wordline of the group
	// accumulates 8 LRS bits per block.
	for slot := uint64(0); slot < 10; slot++ {
		if _, err := s.Write(slot, dense); err != nil {
			t.Fatal(err)
		}
	}
	got, err := s.MaxRowCounter(0)
	if err != nil {
		t.Fatal(err)
	}
	if got != 80 {
		t.Fatalf("MaxRowCounter = %d, want 80", got)
	}
}

func TestStoreWearTracking(t *testing.T) {
	s, err := NewStore(DefaultGeometry())
	if err != nil {
		t.Fatal(err)
	}
	var l bits.Line
	for i := 0; i < 5; i++ {
		if _, err := s.Write(0, l); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.Write(64, l); err != nil {
		t.Fatal(err)
	}
	if got, _ := s.RowWrites(3); got != 5 {
		t.Fatalf("row writes = %d, want 5 (same row as line 0)", got)
	}
	if got := s.TotalWrites(); got != 6 {
		t.Fatalf("total writes = %d, want 6", got)
	}
	if got := s.MaxRowWrites(); got != 5 {
		t.Fatalf("max row writes = %d, want 5", got)
	}
	if got := s.TouchedRows(); got != 2 {
		t.Fatalf("touched rows = %d, want 2", got)
	}
}

func TestMaxSelectedColCount(t *testing.T) {
	s, err := NewStore(DefaultGeometry())
	if err != nil {
		t.Fatal(err)
	}
	// Unwritten memory: zero.
	if got, _ := s.MaxSelectedColCount(0); got != 0 {
		t.Fatalf("cold count = %d, want 0", got)
	}
	// Write bit 0 of byte 0 at slot 0 of many rows in the same bank (and
	// hence the same mat group): column (mat 0, bitline 0) accumulates.
	g := s.Geometry()
	var l bits.Line
	l[0] = 0x01
	const rows = 12
	for i := 0; i < rows; i++ {
		// Same bank: consecutive bank rows are Channels*Ranks*Banks apart
		// in the global row walk, i.e. 32 rows apart in line space / 64.
		line := uint64(i) * uint64(g.Banks()) * BlocksPerRow
		if _, err := s.Write(line, l); err != nil {
			t.Fatal(err)
		}
	}
	got, err := s.MaxSelectedColCount(0)
	if err != nil {
		t.Fatal(err)
	}
	if got != rows {
		t.Fatalf("col count = %d, want %d", got, rows)
	}
	// A write to a different slot selects other bitlines: count 0... the
	// write itself lands there though, so write-free probe: slot 5 line in
	// the same row.
	got, err = s.MaxSelectedColCount(5)
	if err != nil {
		t.Fatal(err)
	}
	if got != 0 {
		t.Fatalf("unrelated slot col count = %d, want 0", got)
	}
	// Overwriting with zero clears the column.
	for i := 0; i < rows; i++ {
		line := uint64(i) * uint64(g.Banks()) * BlocksPerRow
		if _, err := s.Write(line, bits.Line{}); err != nil {
			t.Fatal(err)
		}
	}
	if got, _ = s.MaxSelectedColCount(0); got != 0 {
		t.Fatalf("cleared col count = %d, want 0", got)
	}
}

func TestRowLocationInvertsGlobalRow(t *testing.T) {
	g := DefaultGeometry()
	f := func(raw uint64) bool {
		globalRow := raw % g.Rows()
		loc := g.RowLocation(globalRow)
		return g.GlobalRow(loc) == globalRow && loc.Slot == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRowBaseLineDecodesBack(t *testing.T) {
	g := DefaultGeometry()
	for _, gr := range []uint64{0, 1, 12345, g.Rows() - 1} {
		line := g.RowBaseLine(gr)
		loc, err := g.Decode(line)
		if err != nil {
			t.Fatal(err)
		}
		if g.GlobalRow(loc) != gr || loc.Slot != 0 {
			t.Fatalf("row %d: line %d decodes to row %d slot %d", gr, line, g.GlobalRow(loc), loc.Slot)
		}
	}
}

func TestResidentPrefillDensityAndCounters(t *testing.T) {
	s, err := NewStore(DefaultGeometry())
	if err != nil {
		t.Fatal(err)
	}
	s.SetResident(2, 7) // density 0.25
	if err := s.EnsureRow(0); err != nil {
		t.Fatal(err)
	}
	// Every block of the row now has content near density 0.25.
	ones := 0
	for slot := uint64(0); slot < BlocksPerRow; slot++ {
		l, err := s.Read(slot)
		if err != nil {
			t.Fatal(err)
		}
		ones += bits.CountOnes(l[:])
	}
	// Structured level-2 resident data: one dense byte (p≈0.375) per
	// 8-byte word plus sparse background → overall density ≈ 0.06.
	density := float64(ones) / float64(BlocksPerRow*BlockSize*8)
	if density < 0.03 || density > 0.1 {
		t.Fatalf("resident density = %v, want ≈0.06", density)
	}
	// Counters must match a recount.
	inc, err := s.RowCounters(0)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := s.RecountRow(0)
	if err != nil {
		t.Fatal(err)
	}
	if inc != rec {
		t.Fatal("prefill counters diverge from recount")
	}
	// And the worst wordline holds roughly density*512 LRS cells.
	max, err := s.MaxRowCounter(0)
	if err != nil {
		t.Fatal(err)
	}
	// The hot wordlines aggregate one dense byte from each of 64 blocks:
	// C ≈ 64 × 3 = 192 give or take.
	if max < 120 || max > 280 {
		t.Fatalf("max row counter = %d, want around 190", max)
	}
	// Bitline counts see the resident fill too.
	col, err := s.MaxSelectedColCount(0)
	if err != nil {
		t.Fatal(err)
	}
	if col == 0 {
		t.Fatal("column counters ignored resident data")
	}
}

func TestResidentPrefillIncrementalAfterOverwrite(t *testing.T) {
	s, err := NewStore(DefaultGeometry())
	if err != nil {
		t.Fatal(err)
	}
	s.SetResident(2, 9)
	var sparse bits.Line
	sparse[0] = 0x01
	if _, err := s.Write(5, sparse); err != nil {
		t.Fatal(err)
	}
	inc, err := s.RowCounters(5)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := s.RecountRow(5)
	if err != nil {
		t.Fatal(err)
	}
	if inc != rec {
		t.Fatal("counters diverge after overwriting resident data")
	}
	got, err := s.Read(5)
	if err != nil {
		t.Fatal(err)
	}
	if got != sparse {
		t.Fatal("overwrite lost")
	}
}

func TestResidentDisabledByDefault(t *testing.T) {
	s, err := NewStore(DefaultGeometry())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.EnsureRow(0); err != nil {
		t.Fatal(err)
	}
	l, err := s.Read(0)
	if err != nil {
		t.Fatal(err)
	}
	if l != (bits.Line{}) {
		t.Fatal("fresh device should stay all-HRS without SetResident")
	}
}

func TestStoreErrorsOnBadAddress(t *testing.T) {
	s, err := NewStore(DefaultGeometry())
	if err != nil {
		t.Fatal(err)
	}
	big := s.Geometry().Lines() + 1
	if _, err := s.Read(big); err == nil {
		t.Fatal("Read beyond capacity should fail")
	}
	if _, err := s.Write(big, bits.Line{}); err == nil {
		t.Fatal("Write beyond capacity should fail")
	}
	if _, err := s.RowCounters(big); err == nil {
		t.Fatal("RowCounters beyond capacity should fail")
	}
}
