package reram

import (
	"fmt"
	mbits "math/bits"

	"ladder/internal/bits"
)

// rowState holds the stored content of one wordline group plus exact
// per-wordline LRS counters, maintained incrementally. Wordline m of the
// group stores byte m of every block mapped to the group, so
// counters[m] = Σ_blocks popcount(block[m]).
type rowState struct {
	data [BlocksPerRow]bits.Line
	// counters[m] counts the LRS cells on wordline m of the group (range
	// 0..512 for 64 blocks × 8 bits).
	counters [BlockSize]uint16
	// unshifted[m] counts the LRS cells wordline m would hold if every
	// block were reverse-shifted into the raw bit layout — maintained
	// incrementally only when the store tracks unshifted counters, so
	// MaxRowCounterUnshifted (called on every Est/Hybrid dispatch) avoids
	// re-deriving 64 reverse shifts per call.
	unshifted [BlockSize]uint16
	// writes counts block writes landing in this row (wear tracking).
	writes uint64
}

// matCols is the number of bitlines per mat.
const matCols = 512

// colState tracks exact per-bitline LRS counts for one mat group: 64 mats
// × 512 bitlines, counting over the MatRows wordlines of the group. The
// BLP baseline's profiling circuitry exposes these for free.
type colState [BlockSize][matCols]uint16

// Store is a sparse model of the ReRAM content: rows are allocated on
// first write. Untouched memory reads as zero (all HRS), which matches a
// freshly initialized device.
type Store struct {
	geom Geometry
	rows map[uint64]*rowState
	// cols tracks per-bitline LRS counts, keyed by mat-group id
	// (globalRow / MatRows), allocated lazily.
	cols map[uint64]*colState
	// totalWrites counts all block writes for wear statistics.
	totalWrites uint64
	// bankWrites counts block writes per bank (dense index as in
	// Geometry.GlobalRow: ((channel*ranks)+rank)*banks + bank), feeding
	// the per-bank wear view of the run report.
	bankWrites []uint64
	// residentLevel/residentSeed configure synthetic resident data
	// (SetResident); level 0 means a fresh all-HRS device.
	residentLevel int
	residentSeed  uint64
	// residentTransform stores resident blocks through the scheme's
	// datapath (SetResidentTransform).
	residentTransform func(slot int, l bits.Line) bits.Line
	// trackCols enables per-bitline LRS maintenance. Only the BLP
	// baseline's profiling readout (MaxSelectedColCount) consumes it, and
	// the bookkeeping touches every changed bit of every write, so runs of
	// other schemes switch it off.
	trackCols bool
	// trackUnshifted enables incremental unshifted per-wordline counters
	// (see rowState.unshifted).
	trackUnshifted bool
}

// NewStore returns an empty content store over the given geometry.
func NewStore(g Geometry) (*Store, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return &Store{
		geom:       g,
		rows:       make(map[uint64]*rowState),
		cols:       make(map[uint64]*colState),
		bankWrites: make([]uint64, g.Banks()),
		trackCols:  true,
	}, nil
}

// SetColumnTracking switches per-bitline LRS maintenance on or off. It
// must be called before the first write: counts accumulated while
// tracking was off are not reconstructed. Tracking defaults to on;
// simulation runs disable it for every scheme but BLP.
func (s *Store) SetColumnTracking(on bool) { s.trackCols = on }

// TrackUnshiftedCounters enables incremental per-wordline counters over
// the reverse-shifted bit layout, turning MaxRowCounterUnshifted from a
// 64-block reverse-shift scan into a counter max. Like SetColumnTracking
// it must be enabled before the first write; shifting schemes (Est,
// Hybrid) enable it at construction.
func (s *Store) TrackUnshiftedCounters() { s.trackUnshifted = true }

// SetResident enables synthetic resident data: when a wordline group is
// first touched, every block is filled with structured pseudo-random
// content. This models a machine in steady state — the paper's warmed-up
// gem5 checkpoints — rather than a factory-fresh all-HRS device, which
// matters because per-bitline LRS counts aggregate all rows of a mat
// group and per-wordline counts aggregate resident neighbors.
//
// The structure mirrors real in-memory data: per row, one "dense" byte
// position per 8-byte word position (think FP exponents or pointer high
// bytes), aligned across the row's blocks, with the remaining bytes
// mostly zero. Level selects overall density: 1 ≈ dense (FP-heavy), 2 ≈
// typical, 3 ≈ sparse (integer/pointer-heavy). Level 0 disables prefill.
func (s *Store) SetResident(level int, seed uint64) {
	s.residentLevel = level
	s.residentSeed = seed
}

// SetResidentTransform installs the controller datapath's storage
// transform (e.g. LADDER-Est's intra-line bit shifting): under a scheme
// that transforms lines before storing them, resident data written before
// the simulation window would have been stored in transformed form too.
// The transform receives the block's slot within its wordline group.
func (s *Store) SetResidentTransform(f func(slot int, l bits.Line) bits.Line) {
	s.residentTransform = f
}

// residentHotCold returns the per-level bit statistics: hotMask builds a
// hot byte by ANDing/ORing rng draws, coldShift sets the zero-byte odds.
func residentParams(level int) (hotDraws int, coldOdds uint64) {
	switch {
	case level <= 1:
		return 1, 4 // hot p=0.5, cold byte nonzero 1 in 4
	case level == 2:
		return 2, 8 // hot p≈0.375, cold 1 in 8
	default:
		return 3, 16 // hot p=0.25, cold 1 in 16
	}
}

// residentHotByte synthesizes one dense byte for the given level.
func residentHotByte(rng *splitmixState, hotDraws int) byte {
	switch hotDraws {
	case 1:
		return byte(rng.next())
	case 2:
		a, b, c := rng.next(), rng.next(), rng.next()
		return byte((a | b) & c) // p = 0.375
	default:
		return byte(rng.next() & rng.next()) // p = 0.25
	}
}

// EnsureRow allocates (and prefils, when resident data is enabled) the
// wordline group containing the line. The memory controller calls this on
// first reference so metadata initialization observes resident content.
func (s *Store) EnsureRow(line uint64) error {
	loc, err := s.geom.Decode(line)
	if err != nil {
		return err
	}
	s.ensure(s.geom.GlobalRow(loc), loc)
	return nil
}

// ensure returns the row state, allocating and prefilling on first touch.
func (s *Store) ensure(key uint64, loc Location) *rowState {
	if r := s.rows[key]; r != nil {
		return r
	}
	r := &rowState{}
	s.rows[key] = r
	if s.residentLevel <= 0 {
		return r
	}
	// Fill every block with resident data and build the counters.
	var cs *colState
	if s.trackCols {
		matGroup := key / uint64(s.geom.MatRows)
		cs = s.cols[matGroup]
		if cs == nil {
			cs = &colState{}
			s.cols[matGroup] = cs
		}
	}
	rng := splitmix(s.residentSeed ^ key*0x9e3779b97f4a7c15)
	hotDraws, coldOdds := residentParams(s.residentLevel)
	// coldOdds is always a power of two, so the cold-byte draw reduces to a
	// mask test (identical on the same rng stream).
	coldMask := coldOdds - 1
	// One dense byte position per 8-byte word position, fixed per row and
	// aligned across blocks (the page-repetitive pattern real data shows).
	var hotPos [BlockSize / 8]int
	for w := range hotPos {
		hotPos[w] = w*8 + int(rng.next()&7)
	}
	for b := 0; b < BlocksPerRow; b++ {
		for w := 0; w < BlockSize/8; w++ {
			for k := 0; k < 8; k++ {
				pos := w*8 + k
				var v byte
				if pos == hotPos[w] {
					v = residentHotByte(rng, hotDraws)
				} else if rng.next()&coldMask == 0 {
					v = 1 << (rng.next() & 7)
				}
				r.data[b][pos] = v
			}
		}
		if s.residentTransform != nil {
			r.data[b] = s.residentTransform(b, r.data[b])
		}
		base := b * 8
		for m := 0; m < BlockSize; m++ {
			c := r.data[b][m]
			if c == 0 {
				continue
			}
			r.counters[m] += uint16(onesOf(c))
			if cs != nil {
				for v := c; v != 0; v &= v - 1 {
					cs[m][base+mbits.TrailingZeros8(v)]++
				}
			}
		}
		if s.trackUnshifted {
			raw := bits.Unshifted(r.data[b], b)
			for m := 0; m < BlockSize; m++ {
				if raw[m] != 0 {
					r.unshifted[m] += uint16(onesOf(raw[m]))
				}
			}
		}
	}
	return r
}

// splitmix is a tiny deterministic PRNG for resident-data synthesis.
type splitmixState struct{ x uint64 }

func splitmix(seed uint64) *splitmixState { return &splitmixState{x: seed} }

func (s *splitmixState) next() uint64 {
	s.x += 0x9e3779b97f4a7c15
	z := s.x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Geometry returns the store's geometry.
func (s *Store) Geometry() Geometry { return s.geom }

// row fetches (without allocating) the state of a global row.
func (s *Store) row(globalRow uint64) *rowState { return s.rows[globalRow] }

// Read returns the stored content of the block at the given line address.
func (s *Store) Read(line uint64) (bits.Line, error) {
	loc, err := s.geom.Decode(line)
	if err != nil {
		return bits.Line{}, err
	}
	r := s.row(s.geom.GlobalRow(loc))
	if r == nil {
		return bits.Line{}, nil
	}
	return r.data[loc.Slot], nil
}

// Write stores new content at the line address and returns the previous
// content. Per-wordline counters are updated incrementally.
func (s *Store) Write(line uint64, data bits.Line) (old bits.Line, err error) {
	loc, err := s.geom.Decode(line)
	if err != nil {
		return bits.Line{}, err
	}
	key := s.geom.GlobalRow(loc)
	r := s.ensure(key, loc)
	old = r.data[loc.Slot]
	for m := 0; m < BlockSize; m++ {
		if old[m] == data[m] {
			continue
		}
		delta := int(onesOf(data[m])) - int(onesOf(old[m]))
		r.counters[m] = uint16(int(r.counters[m]) + delta)
	}
	if s.trackCols {
		// Update per-bitline counters for the changed bits.
		matGroup := key / uint64(s.geom.MatRows)
		cs := s.cols[matGroup]
		if cs == nil {
			cs = &colState{}
			s.cols[matGroup] = cs
		}
		base := loc.Slot * 8
		for m := 0; m < BlockSize; m++ {
			changed := old[m] ^ data[m]
			for v := changed; v != 0; v &= v - 1 {
				k := mbits.TrailingZeros8(v)
				if data[m]&(1<<uint(k)) != 0 {
					cs[m][base+k]++
				} else {
					cs[m][base+k]--
				}
			}
		}
	}
	if s.trackUnshifted {
		rawOld := bits.Unshifted(old, loc.Slot)
		rawNew := bits.Unshifted(data, loc.Slot)
		for m := 0; m < BlockSize; m++ {
			if rawOld[m] == rawNew[m] {
				continue
			}
			delta := int(onesOf(rawNew[m])) - int(onesOf(rawOld[m]))
			r.unshifted[m] = uint16(int(r.unshifted[m]) + delta)
		}
	}
	r.data[loc.Slot] = data
	r.writes++
	s.totalWrites++
	s.bankWrites[(loc.Channel*s.geom.RanksPerChannel+loc.Rank)*s.geom.BanksPerRank+loc.Bank]++
	return old, nil
}

// MaxSelectedColCount returns the worst per-bitline LRS count among the
// bitlines a write to the given line would select (8 bitlines in each of
// the 64 mats). This models the BLP baseline's bitline profiling readout.
func (s *Store) MaxSelectedColCount(line uint64) (int, error) {
	loc, err := s.geom.Decode(line)
	if err != nil {
		return 0, err
	}
	cs := s.cols[s.geom.GlobalRow(loc)/uint64(s.geom.MatRows)]
	if cs == nil {
		return 0, nil
	}
	base := loc.Slot * 8
	m := uint16(0)
	for mat := 0; mat < BlockSize; mat++ {
		for k := 0; k < 8; k++ {
			if c := cs[mat][base+k]; c > m {
				m = c
			}
		}
	}
	return int(m), nil
}

// MaxRowCounterUnshifted returns C^w_lrs as it would be if every stored
// block were reverse-shifted into LADDER-Basic's raw bit layout. The
// Figure 15 estimation-accuracy study compares LADDER-Est's estimates
// (taken over shifted data) against exactly this quantity.
func (s *Store) MaxRowCounterUnshifted(line uint64) (int, error) {
	loc, err := s.geom.Decode(line)
	if err != nil {
		return 0, err
	}
	r := s.row(s.geom.GlobalRow(loc))
	if r == nil {
		return 0, nil
	}
	if s.trackUnshifted {
		m := uint16(0)
		for _, c := range r.unshifted {
			if c > m {
				m = c
			}
		}
		return int(m), nil
	}
	var counters [BlockSize]int
	for b := 0; b < BlocksPerRow; b++ {
		raw := bits.Unshifted(r.data[b], b)
		for m := 0; m < BlockSize; m++ {
			counters[m] += int(onesOf(raw[m]))
		}
	}
	max := 0
	for _, c := range counters {
		if c > max {
			max = c
		}
	}
	return max, nil
}

// RowCounters returns a copy of the exact per-wordline LRS counters of the
// wordline group containing the given line address.
func (s *Store) RowCounters(line uint64) ([BlockSize]uint16, error) {
	loc, err := s.geom.Decode(line)
	if err != nil {
		return [BlockSize]uint16{}, err
	}
	r := s.row(s.geom.GlobalRow(loc))
	if r == nil {
		return [BlockSize]uint16{}, nil
	}
	return r.counters, nil
}

// MaxRowCounter returns the exact worst-wordline LRS count C^w_lrs of the
// wordline group containing the line — the quantity the Oracle scheme is
// allowed to read for free and LADDER must estimate.
func (s *Store) MaxRowCounter(line uint64) (int, error) {
	cs, err := s.RowCounters(line)
	if err != nil {
		return 0, err
	}
	m := uint16(0)
	for _, c := range cs {
		if c > m {
			m = c
		}
	}
	return int(m), nil
}

// RecountRow recomputes the row counters from the stored data, for
// validation against the incremental ones.
func (s *Store) RecountRow(line uint64) ([BlockSize]uint16, error) {
	loc, err := s.geom.Decode(line)
	if err != nil {
		return [BlockSize]uint16{}, err
	}
	var out [BlockSize]uint16
	r := s.row(s.geom.GlobalRow(loc))
	if r == nil {
		return out, nil
	}
	for m := 0; m < BlockSize; m++ {
		total := 0
		for b := 0; b < BlocksPerRow; b++ {
			total += int(onesOf(r.data[b][m]))
		}
		out[m] = uint16(total)
	}
	return out, nil
}

// RowWrites returns how many block writes landed in the row containing
// the line address.
func (s *Store) RowWrites(line uint64) (uint64, error) {
	loc, err := s.geom.Decode(line)
	if err != nil {
		return 0, err
	}
	r := s.row(s.geom.GlobalRow(loc))
	if r == nil {
		return 0, nil
	}
	return r.writes, nil
}

// TotalWrites returns the total number of block writes served.
func (s *Store) TotalWrites() uint64 { return s.totalWrites }

// BankWrites returns a copy of the per-bank block-write counts, indexed
// densely as ((channel*ranks)+rank)*banks + bank. The run report exports
// these as the per-bank wear distribution.
func (s *Store) BankWrites() []uint64 { return append([]uint64(nil), s.bankWrites...) }

// TouchedRows returns the number of allocated (written) wordline groups.
func (s *Store) TouchedRows() int { return len(s.rows) }

// MaxRowWrites returns the largest per-row write count, the quantity the
// worst-cell lifetime model keys on.
func (s *Store) MaxRowWrites() uint64 {
	var m uint64
	for _, r := range s.rows {
		if r.writes > m {
			m = r.writes
		}
	}
	return m
}

// String summarizes the store.
func (s *Store) String() string {
	return fmt.Sprintf("reram.Store{rows: %d, writes: %d}", len(s.rows), s.totalWrites)
}

var onesTable [256]uint8

func init() {
	for i := range onesTable {
		v, n := i, 0
		for v != 0 {
			v &= v - 1
			n++
		}
		onesTable[i] = uint8(n)
	}
}

func onesOf(b byte) uint8 { return onesTable[b] }
