// Package trace synthesizes memory-access traces that stand in for the
// paper's SPEC2006 and PARSEC workloads (Table 3).
//
// Substitution note (see DESIGN.md): the original evaluation replays the
// benchmarks under gem5. Neither the benchmarks' reference inputs nor gem5
// are available here, so each workload is modeled by a profile of the
// memory-level characteristics that LADDER's mechanisms actually interact
// with: read/write intensity past the LLC, page locality and footprint,
// the ones-density and hot-byte clustering of written data (which drive
// the LRS counters and the benefit of bit shifting), and FPC
// compressibility (which drives the Split-reset baseline). Generators are
// deterministic given a seed.
package trace

import "fmt"

// Profile characterizes one benchmark's post-LLC memory behavior.
type Profile struct {
	// Name is the benchmark's short name as used in the paper's figures.
	Name string
	// RPKI and WPKI are LLC-miss reads and writebacks per kilo-instruction.
	RPKI, WPKI float64
	// PageLocality is the probability that an access stays within the
	// current 4 KB page (sequential-ish stride) rather than jumping.
	PageLocality float64
	// WorkingSetPages is the footprint in 4 KB pages.
	WorkingSetPages int
	// HotFraction of the pages receives HotTraffic of the page jumps,
	// modeling skewed reuse.
	HotFraction, HotTraffic float64
	// OnesDensity is the average fraction of '1' bits in written data.
	OnesDensity float64
	// Clustering in [0,1] concentrates the ones into a few hot byte
	// positions that repeat across the lines of a page (the pattern
	// Section 4.1's shifting attacks).
	Clustering float64
	// Compressibility is the fraction of written lines that FPC can halve
	// (what Split-reset exploits).
	Compressibility float64
	// WriteBurst is the mean number of writebacks landing in one page
	// before the write stream moves on. Last-level caches evict a page's
	// dirty lines in temporal clusters, so writeback streams are much
	// burstier than demand reads; this is what gives the LRS-metadata
	// cache its hit rate.
	WriteBurst float64
}

// Validate reports whether the profile is self-consistent.
func (p Profile) Validate() error {
	switch {
	case p.Name == "":
		return fmt.Errorf("trace: profile missing name")
	case p.RPKI < 0 || p.WPKI < 0 || p.RPKI+p.WPKI == 0:
		return fmt.Errorf("trace: %s: RPKI/WPKI must be non-negative and not both zero", p.Name)
	case p.PageLocality < 0 || p.PageLocality > 1:
		return fmt.Errorf("trace: %s: PageLocality out of [0,1]", p.Name)
	case p.WorkingSetPages <= 0:
		return fmt.Errorf("trace: %s: WorkingSetPages must be positive", p.Name)
	case p.HotFraction <= 0 || p.HotFraction > 1 || p.HotTraffic < 0 || p.HotTraffic > 1:
		return fmt.Errorf("trace: %s: hot-set parameters out of range", p.Name)
	case p.OnesDensity < 0 || p.OnesDensity > 1:
		return fmt.Errorf("trace: %s: OnesDensity out of [0,1]", p.Name)
	case p.Clustering < 0 || p.Clustering > 1:
		return fmt.Errorf("trace: %s: Clustering out of [0,1]", p.Name)
	case p.Compressibility < 0 || p.Compressibility > 1:
		return fmt.Errorf("trace: %s: Compressibility out of [0,1]", p.Name)
	case p.WriteBurst < 1:
		return fmt.Errorf("trace: %s: WriteBurst must be >= 1", p.Name)
	}
	return nil
}

// Profiles maps benchmark names to their models. Intensities follow the
// published working-set and MPKI characterizations of SPEC2006/PARSEC
// (high-WPKI, large-working-set selections per the paper); data-pattern
// parameters reflect the qualitative observations the paper relies on
// (e.g. canneal/perlbench compress well; clustered ones in astar,
// Figure 7a).
var Profiles = map[string]Profile{
	"astar": {
		Name: "astar", RPKI: 3.25, WPKI: 1.40,
		PageLocality: 0.55, WorkingSetPages: 48_000, HotFraction: 0.2, HotTraffic: 0.8,
		OnesDensity: 0.18, Clustering: 0.75, Compressibility: 0.35, WriteBurst: 6,
	},
	"bwavs": {
		Name: "bwavs", RPKI: 7.00, WPKI: 3.10,
		PageLocality: 0.80, WorkingSetPages: 110_000, HotFraction: 0.3, HotTraffic: 0.6,
		OnesDensity: 0.42, Clustering: 0.25, Compressibility: 0.20, WriteBurst: 16,
	},
	"cannl": {
		Name: "cannl", RPKI: 5.50, WPKI: 2.25,
		PageLocality: 0.30, WorkingSetPages: 160_000, HotFraction: 0.15, HotTraffic: 0.7,
		OnesDensity: 0.15, Clustering: 0.55, Compressibility: 0.70, WriteBurst: 4,
	},
	"fsim": {
		Name: "fsim", RPKI: 3.00, WPKI: 1.60,
		PageLocality: 0.70, WorkingSetPages: 64_000, HotFraction: 0.25, HotTraffic: 0.65,
		OnesDensity: 0.35, Clustering: 0.40, Compressibility: 0.30, WriteBurst: 10,
	},
	"lbm": {
		Name: "lbm", RPKI: 6.25, WPKI: 5.75,
		PageLocality: 0.85, WorkingSetPages: 100_000, HotFraction: 0.5, HotTraffic: 0.5,
		OnesDensity: 0.45, Clustering: 0.20, Compressibility: 0.15, WriteBurst: 24,
	},
	"libq": {
		Name: "libq", RPKI: 11.00, WPKI: 3.75,
		PageLocality: 0.90, WorkingSetPages: 8_000, HotFraction: 0.5, HotTraffic: 0.5,
		OnesDensity: 0.08, Clustering: 0.60, Compressibility: 0.85, WriteBurst: 24,
	},
	"mcf": {
		Name: "mcf", RPKI: 14.00, WPKI: 4.50,
		PageLocality: 0.25, WorkingSetPages: 200_000, HotFraction: 0.1, HotTraffic: 0.75,
		OnesDensity: 0.20, Clustering: 0.65, Compressibility: 0.40, WriteBurst: 5,
	},
	"perlb": {
		Name: "perlb", RPKI: 1.50, WPKI: 0.80,
		PageLocality: 0.60, WorkingSetPages: 40_000, HotFraction: 0.2, HotTraffic: 0.8,
		OnesDensity: 0.22, Clustering: 0.50, Compressibility: 0.75, WriteBurst: 8,
	},
	"zeusmp": {
		Name: "zeusmp", RPKI: 3.75, WPKI: 1.90,
		PageLocality: 0.75, WorkingSetPages: 90_000, HotFraction: 0.3, HotTraffic: 0.6,
		OnesDensity: 0.40, Clustering: 0.30, Compressibility: 0.25, WriteBurst: 14,
	},
	"cactusADM": {
		Name: "cactusADM", RPKI: 4.50, WPKI: 2.30,
		PageLocality: 0.72, WorkingSetPages: 85_000, HotFraction: 0.3, HotTraffic: 0.6,
		OnesDensity: 0.38, Clustering: 0.35, Compressibility: 0.30, WriteBurst: 12,
	},
}

// SingleWorkloads lists the eight single-programmed workloads in figure
// order.
var SingleWorkloads = []string{"astar", "bwavs", "cannl", "fsim", "lbm", "libq", "mcf", "perlb"}

// Mixes lists the eight multi-programmed workloads (Table 3), each a mix
// of four SPEC2006 benchmarks.
var Mixes = map[string][]string{
	"mix-1": {"astar", "lbm", "mcf", "cactusADM"},
	"mix-2": {"cactusADM", "bwavs", "perlb", "zeusmp"},
	"mix-3": {"bwavs", "zeusmp", "astar", "mcf"},
	"mix-4": {"zeusmp", "perlb", "lbm", "cactusADM"},
	"mix-5": {"cactusADM", "astar", "lbm", "perlb"},
	"mix-6": {"zeusmp", "cactusADM", "bwavs", "mcf"},
	"mix-7": {"astar", "lbm", "bwavs", "mcf"},
	"mix-8": {"mcf", "cactusADM", "zeusmp", "perlb"},
}

// MixNames lists the mixes in figure order.
var MixNames = []string{"mix-1", "mix-2", "mix-3", "mix-4", "mix-5", "mix-6", "mix-7", "mix-8"}

// AllWorkloads lists all sixteen workloads in figure order.
func AllWorkloads() []string {
	out := append([]string(nil), SingleWorkloads...)
	return append(out, MixNames...)
}

// Lookup returns the profile for a benchmark name.
func Lookup(name string) (Profile, error) {
	p, ok := Profiles[name]
	if !ok {
		return Profile{}, fmt.Errorf("trace: unknown benchmark %q", name)
	}
	return p, nil
}

// MixProfiles resolves a workload name to the list of per-core profiles:
// a single benchmark yields one profile, a mix yields four.
func MixProfiles(workload string) ([]Profile, error) {
	if names, ok := Mixes[workload]; ok {
		out := make([]Profile, len(names))
		for i, n := range names {
			p, err := Lookup(n)
			if err != nil {
				return nil, err
			}
			out[i] = p
		}
		return out, nil
	}
	p, err := Lookup(workload)
	if err != nil {
		return nil, err
	}
	return []Profile{p}, nil
}
