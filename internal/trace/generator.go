package trace

import (
	"math/rand"

	"ladder/internal/bits"
)

// Access is one post-LLC memory event.
type Access struct {
	// Gap is the number of instructions the core retires before issuing
	// this access (since the previous access).
	Gap int
	// Write marks an LLC writeback; otherwise the access is a demand read
	// (LLC miss) the core will stall on once its MLP window fills.
	Write bool
	// Line is the 64-byte block address.
	Line uint64
	// Data is the written content (writes only).
	Data bits.Line
}

// BlocksPerPage is the number of lines in a 4 KB page.
const BlocksPerPage = 64

// Generator produces a deterministic access stream for one benchmark.
type Generator struct {
	prof     Profile
	rng      *rand.Rand
	seed     int64
	basePage uint64
	hotPages uint64
	curPage  uint64
	curSlot  int
	meanGap  float64
	writeP   float64
	// Writeback stream state: the LLC evicts a page's dirty lines in
	// bursts, so writes walk their own page cursor.
	wPage  uint64
	wSlot  int
	wBurst int
}

// NewGenerator returns a generator for the profile, seeded
// deterministically. basePage offsets the benchmark's footprint so that
// the four programs of a mix occupy disjoint regions, as separate address
// spaces would.
func NewGenerator(p Profile, seed int64, basePage uint64) (*Generator, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	hot := uint64(float64(p.WorkingSetPages) * p.HotFraction)
	if hot == 0 {
		hot = 1
	}
	return &Generator{
		prof:     p,
		rng:      rand.New(rand.NewSource(seed)),
		seed:     seed,
		basePage: basePage,
		hotPages: hot,
		meanGap:  1000 / (p.RPKI + p.WPKI),
		writeP:   p.WPKI / (p.RPKI + p.WPKI),
	}, nil
}

// Profile returns the generator's profile.
func (g *Generator) Profile() Profile { return g.prof }

// Next produces the next access in the stream.
func (g *Generator) Next() Access {
	var a Access
	a.Gap = int(g.rng.ExpFloat64() * g.meanGap)
	a.Write = g.rng.Float64() < g.writeP
	if a.Write {
		a.Line = g.nextWriteLine()
		a.Data = g.synthesize(g.wPage)
		return a
	}

	if g.rng.Float64() < g.prof.PageLocality {
		// Stay in the current page, mostly sequentially.
		g.curSlot++
		if g.curSlot >= BlocksPerPage || g.rng.Float64() < 0.1 {
			g.curSlot = g.rng.Intn(BlocksPerPage)
		}
	} else {
		g.curPage = g.jumpPage()
		g.curSlot = g.rng.Intn(BlocksPerPage)
	}
	a.Line = (g.basePage+g.curPage)*BlocksPerPage + uint64(g.curSlot)
	return a
}

// jumpPage picks a page with skewed reuse between the hot set and the
// cold remainder.
func (g *Generator) jumpPage() uint64 {
	if g.rng.Float64() < g.prof.HotTraffic {
		return uint64(g.rng.Int63n(int64(g.hotPages)))
	}
	return g.hotPages + uint64(g.rng.Int63n(int64(maxU(uint64(g.prof.WorkingSetPages)-g.hotPages, 1))))
}

// nextWriteLine advances the bursty writeback stream: writes dwell on one
// page for a geometrically distributed burst, then move on — half the
// time to the next page (sweeping arrays), otherwise jumping like reads.
func (g *Generator) nextWriteLine() uint64 {
	if g.wBurst <= 0 {
		if g.rng.Float64() < 0.5 {
			g.wPage = (g.wPage + 1) % uint64(g.prof.WorkingSetPages)
		} else {
			g.wPage = g.jumpPage()
		}
		g.wSlot = g.rng.Intn(BlocksPerPage)
		g.wBurst = 1 + int(g.rng.ExpFloat64()*(g.prof.WriteBurst-1))
	}
	g.wBurst--
	g.wSlot = (g.wSlot + 1) % BlocksPerPage
	return (g.basePage+g.wPage)*BlocksPerPage + uint64(g.wSlot)
}

// synthesize builds written data for a page following the profile's
// pattern parameters. Patterns are page-correlated: the hot byte
// positions are a deterministic function of the page number, so
// consecutive lines of a page repeat the same clustered layout (the
// phenomenon Section 4.1's shifting exploits).
func (g *Generator) synthesize(page uint64) bits.Line {
	var l bits.Line
	if g.rng.Float64() < g.prof.Compressibility {
		// FPC-friendly content: sparse small integers, zero runs.
		for w := 0; w < bits.LineSize/4; w++ {
			switch g.rng.Intn(4) {
			case 0:
				l[w*4] = byte(g.rng.Intn(16)) // 4-bit value
			case 1:
				l[w*4] = byte(g.rng.Intn(256)) // one low byte
			default:
				// zero word
			}
		}
		return l
	}
	d := g.prof.OnesDensity
	c := g.prof.Clustering
	// Hot bytes saturate around 0.55 — real dense bytes (FP exponents,
	// pointer prefixes) carry 3–5 ones, not 7–8.
	dHot := d + (0.55-d)*c
	if dHot < d {
		dHot = d
	}
	dCold := d * (1 - 0.9*c)
	hot := pageHotPositions(page, g.seed)
	for j := 0; j < bits.LineSize; j++ {
		density := dCold
		if hot[j] {
			density = dHot
		}
		var b byte
		for k := 0; k < 8; k++ {
			if g.rng.Float64() < density {
				b |= 1 << uint(k)
			}
		}
		l[j] = b
	}
	return l
}

// pageHotPositions derives the page's eight hot byte positions, one per
// chip group so the clusters land in the same mats line after line.
func pageHotPositions(page uint64, seed int64) [bits.LineSize]bool {
	var hot [bits.LineSize]bool
	h := splitmix64(page ^ uint64(seed)*0x9e3779b97f4a7c15)
	for chip := 0; chip < bits.ChipGroups; chip++ {
		pos := chip*8 + int(h&7)
		hot[pos] = true
		h = splitmix64(h)
	}
	return hot
}

// splitmix64 is the standard splitmix64 mixing function.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

func maxU(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}

// CountLineOnes counts the '1' bits of a line (a convenience for trace
// inspection tools, avoiding a bits import in package main).
func CountLineOnes(l *bits.Line) int { return l.Ones() }
