package trace

import (
	"bytes"
	"math"
	"path/filepath"
	"testing"

	"ladder/internal/bits"
	"ladder/internal/compress"
)

func TestAllProfilesValid(t *testing.T) {
	for name, p := range Profiles {
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
		if p.Name != name {
			t.Errorf("%s: Name field %q mismatched", name, p.Name)
		}
	}
}

func TestProfileValidateRejectsBad(t *testing.T) {
	good := Profiles["astar"]
	cases := []func(*Profile){
		func(p *Profile) { p.Name = "" },
		func(p *Profile) { p.RPKI, p.WPKI = 0, 0 },
		func(p *Profile) { p.RPKI = -1 },
		func(p *Profile) { p.PageLocality = 1.5 },
		func(p *Profile) { p.WorkingSetPages = 0 },
		func(p *Profile) { p.HotFraction = 0 },
		func(p *Profile) { p.OnesDensity = -0.1 },
		func(p *Profile) { p.Clustering = 2 },
		func(p *Profile) { p.Compressibility = -1 },
	}
	for i, mod := range cases {
		p := good
		mod(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
}

func TestTable3MixesComplete(t *testing.T) {
	if len(Mixes) != 8 {
		t.Fatalf("have %d mixes, want 8", len(Mixes))
	}
	for name, members := range Mixes {
		if len(members) != 4 {
			t.Errorf("%s has %d members, want 4", name, len(members))
		}
		for _, m := range members {
			if _, err := Lookup(m); err != nil {
				t.Errorf("%s member %s: %v", name, m, err)
			}
		}
	}
	if got := len(AllWorkloads()); got != 16 {
		t.Fatalf("AllWorkloads = %d entries, want 16", got)
	}
}

func TestMixProfilesSingleAndMulti(t *testing.T) {
	ps, err := MixProfiles("lbm")
	if err != nil {
		t.Fatal(err)
	}
	if len(ps) != 1 || ps[0].Name != "lbm" {
		t.Fatalf("single workload resolved to %v", ps)
	}
	ps, err = MixProfiles("mix-7")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"astar", "lbm", "bwavs", "mcf"}
	if len(ps) != 4 {
		t.Fatalf("mix resolved to %d profiles", len(ps))
	}
	for i, p := range ps {
		if p.Name != want[i] {
			t.Errorf("mix-7[%d] = %s, want %s", i, p.Name, want[i])
		}
	}
	if _, err := MixProfiles("nonesuch"); err == nil {
		t.Fatal("expected error for unknown workload")
	}
}

func TestGeneratorDeterministic(t *testing.T) {
	p := Profiles["astar"]
	g1, err := NewGenerator(p, 7, 0)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := NewGenerator(p, 7, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		a, b := g1.Next(), g2.Next()
		if a != b {
			t.Fatalf("access %d diverged: %+v vs %+v", i, a, b)
		}
	}
}

func TestGeneratorSeedChangesStream(t *testing.T) {
	p := Profiles["astar"]
	g1, _ := NewGenerator(p, 1, 0)
	g2, _ := NewGenerator(p, 2, 0)
	same := 0
	for i := 0; i < 200; i++ {
		if g1.Next() == g2.Next() {
			same++
		}
	}
	if same > 150 {
		t.Fatalf("streams under different seeds nearly identical (%d/200)", same)
	}
}

func TestGeneratorWriteFraction(t *testing.T) {
	p := Profiles["lbm"] // write-heavy
	g, err := NewGenerator(p, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	writes, n := 0, 20000
	for i := 0; i < n; i++ {
		if g.Next().Write {
			writes++
		}
	}
	want := p.WPKI / (p.RPKI + p.WPKI)
	got := float64(writes) / float64(n)
	if math.Abs(got-want) > 0.02 {
		t.Fatalf("write fraction %.3f, want ~%.3f", got, want)
	}
}

func TestGeneratorMeanGap(t *testing.T) {
	p := Profiles["mcf"]
	g, err := NewGenerator(p, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	total, n := 0.0, 20000
	for i := 0; i < n; i++ {
		total += float64(g.Next().Gap)
	}
	want := 1000 / (p.RPKI + p.WPKI)
	got := total / float64(n)
	if math.Abs(got-want)/want > 0.1 {
		t.Fatalf("mean gap %.1f, want ~%.1f", got, want)
	}
}

func TestGeneratorFootprintAndOffset(t *testing.T) {
	p := Profiles["libq"]
	const base = 1 << 20
	g, err := NewGenerator(p, 5, base)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20000; i++ {
		a := g.Next()
		page := a.Line / BlocksPerPage
		if page < base || page >= base+uint64(p.WorkingSetPages) {
			t.Fatalf("access %d outside footprint: page %d", i, page)
		}
	}
}

func TestGeneratorOnesDensityTracksProfile(t *testing.T) {
	for _, name := range []string{"libq", "lbm"} {
		p := Profiles[name]
		p.Compressibility = 0 // isolate the density path
		g, err := NewGenerator(p, 6, 0)
		if err != nil {
			t.Fatal(err)
		}
		ones, lines := 0, 0
		for lines < 500 {
			a := g.Next()
			if !a.Write {
				continue
			}
			ones += a.Data.Ones()
			lines++
		}
		got := float64(ones) / float64(lines*bits.LineSize*8)
		if math.Abs(got-p.OnesDensity) > 0.12 {
			t.Fatalf("%s: ones density %.3f, want ~%.2f", name, got, p.OnesDensity)
		}
	}
}

func TestGeneratorCompressibilityTracksProfile(t *testing.T) {
	p := Profiles["libq"] // 0.85 compressible
	g, err := NewGenerator(p, 8, 0)
	if err != nil {
		t.Fatal(err)
	}
	comp, lines := 0, 0
	for lines < 1000 {
		a := g.Next()
		if !a.Write {
			continue
		}
		if compress.Compressible(a.Data[:]) {
			comp++
		}
		lines++
	}
	got := float64(comp) / float64(lines)
	if got < p.Compressibility-0.1 {
		t.Fatalf("compressible fraction %.3f below profile %.2f", got, p.Compressibility)
	}
}

func TestGeneratorClusteringCreatesHotBytes(t *testing.T) {
	p := Profiles["astar"] // clustering 0.75
	p.Compressibility = 0
	g, err := NewGenerator(p, 9, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Hot positions should push the worst-byte count well above the
	// average-byte count.
	worst, avg, lines := 0.0, 0.0, 0
	for lines < 500 {
		a := g.Next()
		if !a.Write {
			continue
		}
		worst += float64(bits.WorstByte(a.Data[:]))
		avg += float64(a.Data.Ones()) / bits.LineSize
		lines++
	}
	if worst/avg < 2 {
		t.Fatalf("clustering ineffective: worst/avg byte ratio %.2f", worst/avg)
	}
}

func TestPageHotPositionsStablePerPage(t *testing.T) {
	a := pageHotPositions(42, 7)
	b := pageHotPositions(42, 7)
	if a != b {
		t.Fatal("hot positions not deterministic")
	}
	c := pageHotPositions(43, 7)
	if a == c {
		t.Fatal("hot positions identical across pages")
	}
	// Exactly one hot position per chip group.
	for chip := 0; chip < bits.ChipGroups; chip++ {
		n := 0
		for k := 0; k < 8; k++ {
			if a[chip*8+k] {
				n++
			}
		}
		if n != 1 {
			t.Fatalf("chip %d has %d hot positions, want 1", chip, n)
		}
	}
}

func TestNewGeneratorRejectsInvalidProfile(t *testing.T) {
	if _, err := NewGenerator(Profile{}, 1, 0); err == nil {
		t.Fatal("expected error")
	}
}

func TestTraceRecordReplayRoundTrip(t *testing.T) {
	g, err := NewGenerator(Profiles["astar"], 5, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Capture the expected stream, then record the same stream again.
	expectGen, _ := NewGenerator(Profiles["astar"], 5, 0)
	var want []Access
	for i := 0; i < 500; i++ {
		want = append(want, expectGen.Next())
	}
	var buf bytes.Buffer
	if err := Record(&buf, g, "astar", 5, 500); err != nil {
		t.Fatal(err)
	}
	rep, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Workload != "astar" || rep.Seed != 5 || rep.Len() != 500 {
		t.Fatalf("header mismatch: %q %d %d", rep.Workload, rep.Seed, rep.Len())
	}
	for i, w := range want {
		if got := rep.Next(); got != w {
			t.Fatalf("access %d diverged", i)
		}
	}
	// The replayer loops.
	if got := rep.Next(); got != want[0] {
		t.Fatal("replayer did not loop to the start")
	}
}

func TestTraceLoadRejectsBadInput(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("junk"))); err == nil {
		t.Fatal("junk should fail")
	}
	var buf bytes.Buffer
	if err := Record(&buf, mustGen(t), "x", 1, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(&buf); err == nil {
		t.Fatal("empty trace should fail")
	}
}

func TestTraceLoadFileMissing(t *testing.T) {
	if _, err := LoadFile(filepath.Join(t.TempDir(), "nope.trace")); err == nil {
		t.Fatal("missing file should fail")
	}
}

func TestReplayerMaxLine(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, "x", 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(Access{Line: 7}); err != nil {
		t.Fatal(err)
	}
	if err := w.Append(Access{Line: 123}); err != nil {
		t.Fatal(err)
	}
	if w.Count() != 2 {
		t.Fatalf("count = %d", w.Count())
	}
	rep, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got := rep.MaxLine(); got != 123 {
		t.Fatalf("MaxLine = %d", got)
	}
}

func mustGen(t *testing.T) *Generator {
	t.Helper()
	g, err := NewGenerator(Profiles["astar"], 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	return g
}
