package trace

import (
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"os"
)

// Source produces an access stream; Generator and Replayer implement it.
type Source interface {
	Next() Access
}

// traceHeader identifies trace files and records provenance.
type traceHeader struct {
	Magic    string
	Version  int
	Workload string
	Seed     int64
	Count    uint64
}

const traceMagic = "ladder-trace"

// Writer streams accesses to a trace file.
type Writer struct {
	enc   *gob.Encoder
	count uint64
}

// NewWriter starts a trace stream on w with provenance metadata. The
// header's count is informational only (0 when unknown); readers rely on
// the stream end.
func NewWriter(w io.Writer, workload string, seed int64, count uint64) (*Writer, error) {
	enc := gob.NewEncoder(w)
	if err := enc.Encode(traceHeader{Magic: traceMagic, Version: 1, Workload: workload, Seed: seed, Count: count}); err != nil {
		return nil, fmt.Errorf("trace: writing header: %w", err)
	}
	return &Writer{enc: enc}, nil
}

// Append writes one access.
func (w *Writer) Append(a Access) error {
	if err := w.enc.Encode(a); err != nil {
		return fmt.Errorf("trace: writing access %d: %w", w.count, err)
	}
	w.count++
	return nil
}

// Count returns the number of accesses written.
func (w *Writer) Count() uint64 { return w.count }

// Record captures n accesses from a source into w.
func Record(w io.Writer, src Source, workload string, seed int64, n uint64) error {
	tw, err := NewWriter(w, workload, seed, n)
	if err != nil {
		return err
	}
	for i := uint64(0); i < n; i++ {
		if err := tw.Append(src.Next()); err != nil {
			return err
		}
	}
	return nil
}

// Replayer replays a loaded trace, looping when it reaches the end so it
// can feed arbitrarily long simulations.
type Replayer struct {
	// Workload and Seed echo the recorded provenance.
	Workload string
	Seed     int64
	accesses []Access
	pos      int
}

// Next implements Source.
func (r *Replayer) Next() Access {
	a := r.accesses[r.pos]
	r.pos++
	if r.pos >= len(r.accesses) {
		r.pos = 0
	}
	return a
}

// Len returns the number of recorded accesses.
func (r *Replayer) Len() int { return len(r.accesses) }

// MaxLine returns the largest line address in the trace, letting callers
// validate the trace against a memory geometry before replaying.
func (r *Replayer) MaxLine() uint64 {
	var m uint64
	for _, a := range r.accesses {
		if a.Line > m {
			m = a.Line
		}
	}
	return m
}

// Load reads a whole trace stream into a Replayer.
func Load(rd io.Reader) (*Replayer, error) {
	dec := gob.NewDecoder(rd)
	var h traceHeader
	if err := dec.Decode(&h); err != nil {
		return nil, fmt.Errorf("trace: reading header: %w", err)
	}
	if h.Magic != traceMagic {
		return nil, errors.New("trace: not a ladder trace file")
	}
	if h.Version != 1 {
		return nil, fmt.Errorf("trace: unsupported version %d", h.Version)
	}
	rep := &Replayer{Workload: h.Workload, Seed: h.Seed}
	for {
		var a Access
		if err := dec.Decode(&a); err != nil {
			if errors.Is(err, io.EOF) {
				break
			}
			return nil, fmt.Errorf("trace: reading access %d: %w", len(rep.accesses), err)
		}
		rep.accesses = append(rep.accesses, a)
	}
	if len(rep.accesses) == 0 {
		return nil, errors.New("trace: empty trace")
	}
	return rep, nil
}

// LoadFile loads a trace file from disk.
func LoadFile(path string) (*Replayer, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Load(f)
}
