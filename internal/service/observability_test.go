package service

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"ladder/internal/logging"
	"ladder/internal/metrics/promcheck"
)

// TestSSEKeepalive pins the fix for silent event streams: a queued job
// emits no progress events, but the stream must still carry comment
// frames so proxies don't reap the idle connection.
func TestSSEKeepalive(t *testing.T) {
	_, ts := newIdleService(t, Config{SSEKeepalive: 20 * time.Millisecond})
	_, sub := postJob(t, ts.URL, `{"workloads":["astar"],"schemes":["Baseline"]}`)

	resp, err := http.Get(ts.URL + "/jobs/" + sub.ID + "/events")
	if err != nil {
		t.Fatalf("GET events: %v", err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q, want text/event-stream", ct)
	}

	// The job never runs (idle service), so after the initial status
	// event every subsequent frame is a keepalive comment.
	sc := bufio.NewScanner(resp.Body)
	deadline := time.AfterFunc(5*time.Second, func() { resp.Body.Close() })
	defer deadline.Stop()
	sawStatus, sawKeepalive := false, false
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "data: "):
			sawStatus = true
		case line == ": keepalive":
			sawKeepalive = true
		}
		if sawStatus && sawKeepalive {
			return
		}
	}
	t.Fatalf("stream ended without keepalive (status=%v keepalive=%v): %v", sawStatus, sawKeepalive, sc.Err())
}

// TestPromEndpoint scrapes /metrics/prom after a full job lifecycle:
// the output must lint as exposition format 0.0.4 and carry both the
// registry counters and the per-job labeled progress series.
func TestPromEndpoint(t *testing.T) {
	_, ts := newTestService(t, Config{})
	_, sub := postJob(t, ts.URL, `{"workloads":["astar"],"schemes":["Baseline"],"instr":2000,"seed":7}`)

	var st Status
	deadline := time.Now().Add(60 * time.Second)
	for {
		getJSON(t, ts.URL+"/jobs/"+sub.ID, &st)
		if st.State == StateDone {
			break
		}
		if st.State == StateFailed || st.State == StateCanceled {
			t.Fatalf("job ended %s: %s", st.State, st.Error)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in state %s", st.State)
		}
		time.Sleep(20 * time.Millisecond)
	}

	resp, err := http.Get(ts.URL + "/metrics/prom")
	if err != nil {
		t.Fatalf("GET /metrics/prom: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("Content-Type = %q, want exposition format 0.0.4", ct)
	}
	var body bytes.Buffer
	if _, err := body.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	text := body.String()
	if err := promcheck.Lint(strings.NewReader(text)); err != nil {
		t.Fatalf("exposition failed lint: %v\n%s", err, text)
	}
	for _, want := range []string{
		"ladder_service_jobs_submitted_total 1",
		"ladder_service_jobs_completed_total 1",
		`ladder_service_job_cells{job="` + sub.ID + `",state="done"} 1`,
		`ladder_service_job_cells_done{job="` + sub.ID + `",state="done"} 1`,
		"ladder_service_queue_depth 0",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q:\n%s", want, text)
		}
	}
}

// syncBuffer is a mutex-guarded bytes.Buffer: the service logs from its
// executor goroutine while the test reads from the main one.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestJobLifecycleLogging asserts structured records at each job state
// transition: queued, started, finished — each carrying the job ID.
func TestJobLifecycleLogging(t *testing.T) {
	var buf syncBuffer
	lg, err := logging.New(logging.FormatJSON, &buf)
	if err != nil {
		t.Fatal(err)
	}
	_, ts := newTestService(t, Config{Logger: lg})
	_, sub := postJob(t, ts.URL, `{"workloads":["astar"],"schemes":["Baseline"],"instr":2000,"seed":7}`)

	var st Status
	deadline := time.Now().Add(60 * time.Second)
	for {
		getJSON(t, ts.URL+"/jobs/"+sub.ID, &st)
		if st.State == StateDone {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in state %s", st.State)
		}
		time.Sleep(20 * time.Millisecond)
	}

	want := map[string]bool{"job queued": false, "job started": false, "job finished": false}
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		var rec struct {
			Msg string `json:"msg"`
			Job string `json:"job"`
		}
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("non-JSON log record %q: %v", line, err)
		}
		if _, ok := want[rec.Msg]; ok {
			if rec.Job != sub.ID {
				t.Errorf("record %q has job=%q, want %q", rec.Msg, rec.Job, sub.ID)
			}
			want[rec.Msg] = true
		}
	}
	for msg, seen := range want {
		if !seen {
			t.Errorf("no %q record logged:\n%s", msg, buf.String())
		}
	}
}
