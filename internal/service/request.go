package service

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"strings"

	"ladder/internal/core"
	"ladder/internal/sim"
	"ladder/internal/trace"
)

// DefaultInstr is the per-core instruction budget a request gets when it
// leaves "instr" unset — the same default sim.Config applies.
const DefaultInstr = 200_000

// Request is the body of POST /jobs: one simulation grid, expressed as
// the JSON-resolved form of sim.Options plus the scheme list. A single
// run is a 1×1 grid. Zero-valued fields select the simulator's defaults,
// and normalization makes those defaults explicit before hashing, so
// "instr": 200000 and an absent "instr" dedupe onto the same job.
type Request struct {
	// Workloads lists the benchmark/mix names to simulate (required).
	Workloads []string `json:"workloads"`
	// Schemes lists the write schemes to run each workload under
	// (required). Names resolve case-insensitively against the scheme
	// registry and normalize to the registered spelling.
	Schemes []string `json:"schemes"`
	// Instr is the per-core instruction budget (0 = 200000).
	Instr uint64 `json:"instr,omitempty"`
	// Seed makes the grid deterministic (identical seed + configuration
	// ⇒ byte-identical report).
	Seed int64 `json:"seed,omitempty"`
	// FaultSeed, RetryMax and SpareRows parameterize fault-injection
	// cells; see sim.Options.
	FaultSeed int64 `json:"fault_seed,omitempty"`
	RetryMax  int   `json:"retry_max,omitempty"`
	SpareRows int   `json:"spare_rows,omitempty"`
}

// normalize validates the request and rewrites it into canonical form:
// defaults made explicit, scheme names resolved to their registered
// spelling. Returned errors are client errors (HTTP 400).
func (r *Request) normalize(maxInstr uint64) error {
	if len(r.Workloads) == 0 {
		return fmt.Errorf("request needs at least one workload")
	}
	if len(r.Schemes) == 0 {
		return fmt.Errorf("request needs at least one scheme")
	}
	for _, w := range r.Workloads {
		if _, err := trace.MixProfiles(w); err != nil {
			return fmt.Errorf("unknown workload %q (known: %s)", w, strings.Join(trace.AllWorkloads(), " "))
		}
	}
	for i, s := range r.Schemes {
		canon, err := canonicalScheme(s)
		if err != nil {
			return err
		}
		r.Schemes[i] = canon
	}
	if r.Instr == 0 {
		r.Instr = DefaultInstr
	}
	if maxInstr > 0 && r.Instr > maxInstr {
		return fmt.Errorf("instr %d exceeds this server's per-core budget cap %d", r.Instr, maxInstr)
	}
	if r.RetryMax < 0 || r.SpareRows < 0 {
		return fmt.Errorf("retry_max and spare_rows must be >= 0")
	}
	return nil
}

// canonicalScheme resolves a scheme name to its registered spelling
// under the registry's exact-then-case-insensitive rule, so requests
// spelling "ladder-hybrid" and "LADDER-Hybrid" content-hash identically.
func canonicalScheme(name string) (string, error) {
	registered := core.RegisteredSchemes()
	for _, reg := range registered {
		if reg == name {
			return reg, nil
		}
	}
	for _, reg := range registered {
		if strings.EqualFold(reg, name) {
			return reg, nil
		}
	}
	return "", fmt.Errorf("unknown scheme %q (registered: %s)", name, strings.Join(registered, " "))
}

// id content-hashes the normalized request: the job identifier, and the
// key identical submissions dedupe and cache under. Field order is fixed
// by the struct, so the canonical JSON is stable.
func (r *Request) id() string {
	b, err := json.Marshal(r)
	if err != nil {
		// A Request is plain data; Marshal cannot fail on one.
		panic(fmt.Sprintf("service: hashing request: %v", err))
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:8])
}

// options lowers the normalized request into the sim package's terms.
func (r *Request) options() (sim.Options, []string) {
	return sim.Options{
		Instr:     r.Instr,
		Seed:      r.Seed,
		Workloads: r.Workloads,
		FaultSeed: r.FaultSeed,
		RetryMax:  r.RetryMax,
		SpareRows: r.SpareRows,
	}, r.Schemes
}
