package service

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ladder/internal/chaos"
)

func testRequest(t *testing.T) Request {
	t.Helper()
	req := Request{Workloads: []string{"astar"}, Schemes: []string{"Baseline"}}
	if err := req.normalize(0); err != nil {
		t.Fatalf("normalizing fixture request: %v", err)
	}
	return req
}

// reopen closes a store and opens its directory again, returning the
// replayed recovery — the crash-restart primitive every test builds on.
func reopen(t *testing.T, st *Store) (*Store, *Recovery) {
	t.Helper()
	dir := st.Dir()
	st.Close()
	st2, rec, err := OpenStore(dir)
	if err != nil {
		t.Fatalf("reopening store: %v", err)
	}
	t.Cleanup(st2.Close)
	return st2, rec
}

// TestStoreRoundTrip pins the tentpole guarantee: a completed report
// written before a restart is recovered byte-identically after it.
func TestStoreRoundTrip(t *testing.T) {
	st, rec, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatalf("opening store: %v", err)
	}
	if len(rec.Jobs) != 0 {
		t.Fatalf("fresh store recovered %d jobs", len(rec.Jobs))
	}
	req := testRequest(t)
	report := []byte(`{"schema":"test","cells":[1,2,3]}`)
	st.Accepted("job-1", req)
	st.Started("job-1")
	st.Done("job-1", report)
	if err := st.Err(); err != nil {
		t.Fatalf("store degraded: %v", err)
	}

	_, rec = reopen(t, st)
	if len(rec.Jobs) != 1 {
		t.Fatalf("recovered %d jobs, want 1", len(rec.Jobs))
	}
	j := rec.Jobs[0]
	if j.ID != "job-1" || j.State != StateDone || j.Crashed {
		t.Fatalf("recovered job = %+v, want done job-1", j)
	}
	if string(j.Report) != string(report) {
		t.Fatalf("report not byte-identical: %q vs %q", j.Report, report)
	}
	if len(j.Req.Workloads) != 1 || j.Req.Workloads[0] != "astar" {
		t.Fatalf("request did not round-trip: %+v", j.Req)
	}
}

// TestStoreCrashStates pins the two interrupted-job outcomes: accepted
// but never started re-queues; started but never finished comes back
// failed-by-crash (and stays failed across a further restart).
func TestStoreCrashStates(t *testing.T) {
	st, _, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	req := testRequest(t)
	st.Accepted("queued-job", req)
	st.Accepted("running-job", req)
	st.Started("running-job")

	_, rec := reopen(t, st)
	if rec.Requeued != 1 || rec.FailedByCrash != 1 {
		t.Fatalf("requeued %d failed-by-crash %d, want 1/1", rec.Requeued, rec.FailedByCrash)
	}
	byID := map[string]RecoveredJob{}
	for _, j := range rec.Jobs {
		byID[j.ID] = j
	}
	if j := byID["queued-job"]; j.State != StateQueued {
		t.Fatalf("accepted-only job recovered as %q, want queued", j.State)
	}
	j := byID["running-job"]
	if j.State != StateFailed || !j.Crashed || !strings.Contains(j.ErrMsg, "crash") {
		t.Fatalf("interrupted job recovered as %+v, want crashed failure", j)
	}

	// A second restart must not resurrect it as running: the compacted
	// journal already holds the terminal crash record.
	st2, _, err := OpenStore(st.Dir())
	if err != nil {
		t.Fatal(err)
	}
	_, rec2 := reopen(t, st2)
	if rec2.FailedByCrash != 0 {
		t.Fatalf("second restart re-counted failed-by-crash: %d", rec2.FailedByCrash)
	}
	for _, j := range rec2.Jobs {
		if j.ID == "running-job" && (j.State != StateFailed || !j.Crashed) {
			t.Fatalf("crash failure did not persist: %+v", j)
		}
	}
}

// TestStoreTornTrailingLine pins crash tolerance in the journal itself:
// a half-written final record (the classic torn append) is counted and
// skipped, never fatal, and everything before it replays intact.
func TestStoreTornTrailingLine(t *testing.T) {
	st, _, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	st.Accepted("job-1", testRequest(t))
	dir := st.Dir()
	st.Close()
	f, err := os.OpenFile(filepath.Join(dir, "journal.jsonl"), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"t":"done","job":"job-1","repor`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	st2, rec, err := OpenStore(dir)
	if err != nil {
		t.Fatalf("torn journal must not be fatal: %v", err)
	}
	defer st2.Close()
	if rec.CorruptRecords != 1 {
		t.Fatalf("corrupt records = %d, want 1", rec.CorruptRecords)
	}
	if len(rec.Jobs) != 1 || rec.Jobs[0].State != StateQueued {
		t.Fatalf("intact prefix lost: %+v", rec.Jobs)
	}
}

// TestStoreCorruptBlob: a done record whose report blob was lost or
// corrupted (hash mismatch) degrades to failed-by-crash instead of
// serving wrong bytes.
func TestStoreCorruptBlob(t *testing.T) {
	st, _, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	st.Accepted("job-1", testRequest(t))
	st.Done("job-1", []byte(`{"good":true}`))
	if err := os.WriteFile(filepath.Join(st.Dir(), "reports", "job-1.json"), []byte(`{"tampered":1}`), 0o644); err != nil {
		t.Fatal(err)
	}

	_, rec := reopen(t, st)
	if rec.FailedByCrash != 1 {
		t.Fatalf("failed-by-crash = %d, want 1", rec.FailedByCrash)
	}
	j := rec.Jobs[0]
	if j.State != StateFailed || !j.Crashed || !strings.Contains(j.ErrMsg, "hash mismatch") {
		t.Fatalf("corrupt blob recovered as %+v", j)
	}
}

// TestStoreEviction: an evicted job is forgotten entirely on replay and
// its blob removed from disk.
func TestStoreEviction(t *testing.T) {
	st, _, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	st.Accepted("job-1", testRequest(t))
	st.Done("job-1", []byte(`{}`))
	st.Evicted("job-1")
	blob := filepath.Join(st.Dir(), "reports", "job-1.json")
	if _, err := os.Stat(blob); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("evicted blob still on disk (err=%v)", err)
	}

	_, rec := reopen(t, st)
	if len(rec.Jobs) != 0 {
		t.Fatalf("evicted job resurrected: %+v", rec.Jobs)
	}
}

// TestStoreCanceledThenResubmitted: a cancel record is terminal, but a
// later re-accept resets the lifecycle — the job replays as queued.
func TestStoreCanceledThenResubmitted(t *testing.T) {
	st, _, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	req := testRequest(t)
	st.Accepted("job-1", req)
	st.Canceled("job-1", "canceled before execution")
	st.Accepted("job-1", req)

	_, rec := reopen(t, st)
	if len(rec.Jobs) != 1 || rec.Jobs[0].State != StateQueued || rec.Jobs[0].ErrMsg != "" {
		t.Fatalf("re-accepted job replays as %+v, want clean queued", rec.Jobs)
	}
}

// TestStoreCompaction: boot compaction bounds the journal to the
// retained state — a job's churn (accept/start/finish cycles) collapses
// to at most two records.
func TestStoreCompaction(t *testing.T) {
	st, _, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	req := testRequest(t)
	for range 10 {
		st.Accepted("job-1", req)
		st.Started("job-1")
		st.Failed("job-1", "boom", false)
	}
	st2, _ := reopen(t, st)
	b, err := os.ReadFile(filepath.Join(st2.Dir(), "journal.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(string(b), "\n"); lines != 2 {
		t.Fatalf("compacted journal has %d records, want 2 (accepted + failed):\n%s", lines, b)
	}
}

// TestStoreWriteErrorIsStickyNotFatal drives the degraded-durability
// path with the chaos harness: an injected journal-write failure is
// counted and retained (readiness turns unready), but later appends
// still go through — the service sheds durability, not availability.
func TestStoreWriteErrorIsStickyNotFatal(t *testing.T) {
	st, _, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	injected := errors.New("disk on fire")
	chaos.Arm("service.journal.append", chaos.Action{Err: injected, Times: 1})
	defer chaos.Reset()

	st.Accepted("job-1", testRequest(t)) // eaten by the failpoint
	if err := st.Err(); !errors.Is(err, injected) {
		t.Fatalf("sticky error = %v, want the injected failure", err)
	}
	if st.WriteErrs() != 1 {
		t.Fatalf("write errors = %d, want 1", st.WriteErrs())
	}

	// The failpoint disarmed itself (Times: 1): appends work again, the
	// sticky error remains.
	st.Accepted("job-2", testRequest(t))
	if st.WriteErrs() != 1 {
		t.Fatalf("healthy append counted as error: %d", st.WriteErrs())
	}
	if st.Err() == nil {
		t.Fatal("sticky error cleared by a healthy append")
	}
}

// TestStoreReportWriteFailure: an injected blob-write failure must keep
// the journal free of a done record vouching for bytes that never
// landed.
func TestStoreReportWriteFailure(t *testing.T) {
	st, _, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	st.Accepted("job-1", testRequest(t))
	chaos.Arm("service.report.write", chaos.Action{Err: errors.New("blob write lost"), Times: 1})
	defer chaos.Reset()
	st.Done("job-1", []byte(`{}`))
	if st.Err() == nil {
		t.Fatal("blob failure not recorded")
	}

	_, rec := reopen(t, st)
	// No done record: the job replays from its accepted record (queued),
	// not as done-with-missing-blob.
	if len(rec.Jobs) != 1 || rec.Jobs[0].State != StateQueued {
		t.Fatalf("job after failed blob write replays as %+v, want queued", rec.Jobs)
	}
}
