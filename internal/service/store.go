package service

import (
	"bufio"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"

	"ladder/internal/chaos"
)

// The durable job store: an append-only job-lifecycle journal plus
// fsync'd report blobs under a state directory, replayed on boot so a
// restarted service serves completed reports byte-identically and
// either re-queues or fails-by-crash whatever the previous process left
// unfinished. Layout:
//
//	<state-dir>/journal.jsonl     one JSON record per line, fsync'd per append
//	<state-dir>/reports/<id>.json completed grid reports, exact served bytes
//
// The journal is the source of truth for job existence and state; a
// report blob is only trusted when the journal's done record carries
// its matching content hash (a crash between blob rename and journal
// append leaves an orphaned blob that replay ignores). On boot the
// journal is compacted: replay resolves every job to its current state,
// then a fresh journal holding exactly those records is atomically
// swapped in, so journal size is bounded by retained jobs rather than
// by lifetime job churn.
//
// Store write failures are deliberately non-fatal: the service keeps
// serving from memory, the first failure is retained (Err) so readiness
// probes can report degraded durability, and every failure is counted.

// Journal record types. A job's lifecycle appends accepted → started →
// (done | failed | canceled); evicted marks a completed job whose
// report the LRU dropped, and replay forgets it entirely.
const (
	recAccepted = "accepted"
	recStarted  = "started"
	recDone     = "done"
	recFailed   = "failed"
	recCanceled = "canceled"
	recEvicted  = "evicted"
)

// journalRecord is one line of journal.jsonl.
type journalRecord struct {
	T   string   `json:"t"`
	Job string   `json:"job"`
	Req *Request `json:"req,omitempty"`   // accepted records only
	Err string   `json:"error,omitempty"` // failed/canceled records
	// Crash marks a failed record written by crash recovery (the job was
	// interrupted, not rejected by the simulator), which keeps the job
	// resubmittable across further restarts.
	Crash bool `json:"crash,omitempty"`
	// SHA is the hex SHA-256 of the report blob a done record vouches for.
	SHA string `json:"report_sha256,omitempty"`
}

// RecoveredJob is one job reconstructed from the journal, in journal
// order. State is StateQueued for jobs to re-enqueue and a terminal
// state otherwise; Report is the exact blob bytes for done jobs.
type RecoveredJob struct {
	ID      string
	Req     Request
	State   string
	ErrMsg  string
	Report  []byte
	Crashed bool
}

// Recovery summarizes one boot replay.
type Recovery struct {
	// Jobs lists every retained job in journal order.
	Jobs []RecoveredJob
	// Requeued counts jobs returned to the pending queue (accepted but
	// never started before the previous process exited).
	Requeued int
	// FailedByCrash counts jobs marked failed because the previous
	// process died mid-run (or their report blob was lost).
	FailedByCrash int
	// CorruptRecords counts journal lines that did not parse — a torn
	// final append from a crash is the expected case — plus done records
	// whose report blob was missing or failed its hash check.
	CorruptRecords int
}

// Store is the durable half of a Service. A nil *Store is valid and
// turns every method into a no-op, so the in-memory service runs the
// same code paths.
type Store struct {
	dir string

	mu        sync.Mutex
	f         *os.File
	err       error // first write failure, sticky (readiness signal)
	writeErrs uint64
}

// OpenStore opens (creating if needed) a state directory, replays its
// journal, compacts it, and returns the store ready for appends plus
// what the replay recovered.
func OpenStore(dir string) (*Store, *Recovery, error) {
	if err := os.MkdirAll(filepath.Join(dir, "reports"), 0o755); err != nil {
		return nil, nil, fmt.Errorf("service: creating state dir: %w", err)
	}
	st := &Store{dir: dir}
	rec, err := st.replay()
	if err != nil {
		return nil, nil, err
	}
	if err := st.compact(rec); err != nil {
		return nil, nil, err
	}
	f, err := os.OpenFile(st.journalPath(), os.O_WRONLY|os.O_APPEND|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("service: opening journal: %w", err)
	}
	st.f = f
	return st, rec, nil
}

func (st *Store) journalPath() string { return filepath.Join(st.dir, "journal.jsonl") }

func (st *Store) reportPath(id string) string {
	return filepath.Join(st.dir, "reports", id+".json")
}

// Dir returns the state directory ("" on a nil store).
func (st *Store) Dir() string {
	if st == nil {
		return ""
	}
	return st.dir
}

// replay scans the journal and resolves every job to its latest state.
func (st *Store) replay() (*Recovery, error) {
	rec := &Recovery{}
	f, err := os.Open(st.journalPath())
	if errors.Is(err, os.ErrNotExist) {
		return rec, nil
	}
	if err != nil {
		return nil, fmt.Errorf("service: reading journal: %w", err)
	}
	defer f.Close()

	type replayState struct {
		req     *Request
		state   string // last record type seen
		errMsg  string
		crashed bool
		sha     string
	}
	byID := make(map[string]*replayState)
	var order []string
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var r journalRecord
		if err := json.Unmarshal([]byte(line), &r); err != nil || r.Job == "" || r.T == "" {
			// A torn trailing append (crash mid-write) is expected; any
			// unparseable line is counted and skipped, never fatal.
			rec.CorruptRecords++
			continue
		}
		js := byID[r.Job]
		if js == nil {
			js = &replayState{}
			byID[r.Job] = js
			order = append(order, r.Job)
		}
		switch r.T {
		case recAccepted:
			if r.Req != nil {
				js.req = r.Req
			}
			js.state = recAccepted
			// A re-accept (resubmit after cancel) resets the terminal info.
			js.errMsg, js.crashed, js.sha = "", false, ""
		case recStarted, recDone, recFailed, recCanceled, recEvicted:
			js.state = r.T
			js.errMsg, js.crashed, js.sha = r.Err, r.Crash, r.SHA
		default:
			rec.CorruptRecords++
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("service: scanning journal: %w", err)
	}

	for _, id := range order {
		js := byID[id]
		if js.state == recEvicted {
			os.Remove(st.reportPath(id)) //nolint:errcheck // best-effort cleanup
			continue
		}
		if js.req == nil {
			// No surviving accepted record: nothing to rebuild the job from.
			rec.CorruptRecords++
			continue
		}
		j := RecoveredJob{ID: id, Req: *js.req, ErrMsg: js.errMsg, Crashed: js.crashed}
		switch js.state {
		case recAccepted:
			j.State = StateQueued
			rec.Requeued++
		case recStarted:
			j.State = StateFailed
			j.ErrMsg = "failed by crash: the previous service process exited mid-run"
			j.Crashed = true
			rec.FailedByCrash++
		case recDone:
			report, err := st.loadReport(id, js.sha)
			if err != nil {
				j.State = StateFailed
				j.ErrMsg = fmt.Sprintf("failed by crash: completed report lost (%v)", err)
				j.Crashed = true
				rec.FailedByCrash++
				rec.CorruptRecords++
			} else {
				j.State = StateDone
				j.Report = report
			}
		case recFailed:
			j.State = StateFailed
		case recCanceled:
			j.State = StateCanceled
		}
		rec.Jobs = append(rec.Jobs, j)
	}
	return rec, nil
}

// loadReport reads a done job's blob and checks it against the hash the
// journal recorded for it.
func (st *Store) loadReport(id, wantSHA string) ([]byte, error) {
	b, err := os.ReadFile(st.reportPath(id))
	if err != nil {
		return nil, err
	}
	if got := sha256Hex(b); got != wantSHA {
		return nil, fmt.Errorf("report blob hash mismatch (have %.8s, journal says %.8s)", got, wantSHA)
	}
	return b, nil
}

// compact atomically rewrites the journal to exactly the replayed
// state: one accepted record per retained job, plus its terminal record
// if it has one. Run before the journal reopens for appends, so a
// journal's size is bounded by retained jobs, not lifetime churn.
func (st *Store) compact(rec *Recovery) error {
	tmp := st.journalPath() + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("service: compacting journal: %w", err)
	}
	w := bufio.NewWriter(f)
	writeRec := func(r journalRecord) {
		b, _ := json.Marshal(r) //nolint:errcheck // plain data, cannot fail
		w.Write(b)              //nolint:errcheck // checked via Flush below
		w.WriteByte('\n')       //nolint:errcheck
	}
	for _, j := range rec.Jobs {
		req := j.Req
		writeRec(journalRecord{T: recAccepted, Job: j.ID, Req: &req})
		switch j.State {
		case StateDone:
			writeRec(journalRecord{T: recDone, Job: j.ID, SHA: sha256Hex(j.Report)})
		case StateFailed:
			writeRec(journalRecord{T: recFailed, Job: j.ID, Err: j.ErrMsg, Crash: j.Crashed})
		case StateCanceled:
			writeRec(journalRecord{T: recCanceled, Job: j.ID, Err: j.ErrMsg})
		}
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return fmt.Errorf("service: compacting journal: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("service: compacting journal: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("service: compacting journal: %w", err)
	}
	if err := os.Rename(tmp, st.journalPath()); err != nil {
		return fmt.Errorf("service: compacting journal: %w", err)
	}
	syncDir(st.dir)
	return nil
}

// append journals one record: marshal, write, fsync. Failures are
// sticky and counted, never fatal — the service degrades to in-memory
// operation and readiness reports it.
func (st *Store) append(r journalRecord) {
	if st == nil {
		return
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	if err := chaos.Hit("service.journal.append"); err != nil {
		st.noteErrLocked(fmt.Errorf("journal append: %w", err))
		return
	}
	b, err := json.Marshal(r)
	if err != nil {
		st.noteErrLocked(fmt.Errorf("journal append: %w", err))
		return
	}
	if _, err := st.f.Write(append(b, '\n')); err != nil {
		st.noteErrLocked(fmt.Errorf("journal append: %w", err))
		return
	}
	if err := st.f.Sync(); err != nil {
		st.noteErrLocked(fmt.Errorf("journal sync: %w", err))
	}
}

func (st *Store) noteErrLocked(err error) {
	st.writeErrs++
	if st.err == nil {
		st.err = err
	}
}

// Accepted journals a job's admission (or re-admission on resubmit
// after cancel) with its normalized request.
func (st *Store) Accepted(id string, req Request) {
	st.append(journalRecord{T: recAccepted, Job: id, Req: &req})
}

// Started journals the queued→running transition. A job with a started
// record but no terminal one is failed-by-crash on the next boot.
func (st *Store) Started(id string) {
	st.append(journalRecord{T: recStarted, Job: id})
}

// Done persists a completed report durably: blob first (temp file,
// fsync, atomic rename), then the journal record vouching for its hash.
// A crash between the two leaves an orphaned blob that replay ignores —
// never a journal record pointing at bytes that were not fully written.
func (st *Store) Done(id string, report []byte) {
	if st == nil {
		return
	}
	if err := st.writeReport(id, report); err != nil {
		st.mu.Lock()
		st.noteErrLocked(err)
		st.mu.Unlock()
		return
	}
	st.append(journalRecord{T: recDone, Job: id, SHA: sha256Hex(report)})
}

// Failed journals a terminal failure; crash marks recovery-written
// failures that stay resubmittable.
func (st *Store) Failed(id, errMsg string, crash bool) {
	st.append(journalRecord{T: recFailed, Job: id, Err: errMsg, Crash: crash})
}

// Canceled journals an explicit cancellation. Shutdown-drained queued
// jobs are deliberately NOT journaled as canceled: their accepted
// records survive, so a restart re-queues them.
func (st *Store) Canceled(id, errMsg string) {
	st.append(journalRecord{T: recCanceled, Job: id, Err: errMsg})
}

// Evicted journals an LRU eviction and removes the report blob; replay
// forgets the job entirely.
func (st *Store) Evicted(id string) {
	if st == nil {
		return
	}
	st.append(journalRecord{T: recEvicted, Job: id})
	os.Remove(st.reportPath(id)) //nolint:errcheck // best-effort cleanup
}

// writeReport lands a blob durably: temp file, fsync, rename, dir sync.
func (st *Store) writeReport(id string, report []byte) error {
	if err := chaos.Hit("service.report.write"); err != nil {
		return fmt.Errorf("report write: %w", err)
	}
	path := st.reportPath(id)
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("report write: %w", err)
	}
	if _, err := f.Write(report); err != nil {
		f.Close()
		return fmt.Errorf("report write: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("report sync: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("report close: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("report rename: %w", err)
	}
	syncDir(filepath.Dir(path))
	return nil
}

// Err returns the first write failure (nil while the store is healthy).
// Sticky: once durability is lost the readiness probe stays degraded
// until the operator restarts with a writable state dir.
func (st *Store) Err() error {
	if st == nil {
		return nil
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.err
}

// WriteErrs counts append/blob failures since boot.
func (st *Store) WriteErrs() uint64 {
	if st == nil {
		return 0
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.writeErrs
}

// Close closes the journal file.
func (st *Store) Close() {
	if st == nil {
		return
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.f != nil {
		st.f.Close() //nolint:errcheck // appends are already fsync'd
		st.f = nil
	}
}

// syncDir fsyncs a directory so a just-renamed entry survives power
// loss. Best-effort: some filesystems reject directory fsync.
func syncDir(dir string) {
	d, err := os.Open(dir)
	if err != nil {
		return
	}
	d.Sync() //nolint:errcheck // best-effort
	d.Close()
}

// sha256Hex is the journal's content-hash form for report blobs.
func sha256Hex(b []byte) string {
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}
