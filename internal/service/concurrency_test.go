package service

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestQueueBackpressureUnderConcurrentChurn storms an idle service's
// admission path from many goroutines: submits of a handful of
// configurations racing with cancels and resubmits of the same IDs.
// Pinned invariants: every submission resolves to exactly one of the
// documented outcomes (a full queue is always a 503 with Retry-After,
// never a hang or a silent drop), and the terminal bookkeeping stays
// consistent — runs under -race in CI.
func TestQueueBackpressureUnderConcurrentChurn(t *testing.T) {
	svc, ts := newIdleService(t, Config{QueueDepth: 2})

	bodies := make([]string, 6)
	for i := range bodies {
		bodies[i] = fmt.Sprintf(`{"workloads":["astar"],"schemes":["Baseline"],"seed":%d}`, i)
	}
	ids := make([]string, len(bodies)) // body index -> job ID, filled as accepts land
	var idsMu sync.Mutex

	var wg sync.WaitGroup
	for g := range 8 {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			client := &http.Client{Timeout: 10 * time.Second}
			for i := range 25 {
				n := (g + i) % len(bodies)
				resp, err := client.Post(ts.URL+"/jobs", "application/json", strings.NewReader(bodies[n]))
				if err != nil {
					t.Errorf("submit: %v", err)
					return
				}
				switch resp.StatusCode {
				case http.StatusAccepted, http.StatusOK:
					var sr submitResponse
					if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
						t.Errorf("decoding submit response: %v", err)
					}
					idsMu.Lock()
					ids[n] = sr.ID
					idsMu.Unlock()
				case http.StatusServiceUnavailable:
					if resp.Header.Get("Retry-After") == "" {
						t.Error("503 without Retry-After")
					}
				default:
					t.Errorf("submit status %d", resp.StatusCode)
				}
				resp.Body.Close()
				// Interleave cancels of whatever job IDs exist so queued
				// slots churn: canceled jobs become resubmittable, keeping
				// the admission path busy in every branch.
				if i%3 == 0 {
					idsMu.Lock()
					id := ids[n]
					idsMu.Unlock()
					if id != "" {
						req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/jobs/"+id, nil)
						if resp, err := client.Do(req); err == nil {
							resp.Body.Close()
						}
					}
				}
			}
		}(g)
	}
	wg.Wait()

	// Consistency after the storm: every retained job is in a coherent
	// state and the queue never exceeded its bound.
	svc.mu.Lock()
	defer svc.mu.Unlock()
	if len(svc.queue) > 2 {
		t.Fatalf("queue depth %d exceeded its bound 2", len(svc.queue))
	}
	for id, j := range svc.jobs {
		switch j.state {
		case StateQueued, StateCanceled:
		default:
			t.Fatalf("idle-service job %s in impossible state %q", id, j.state)
		}
		if j.state == StateCanceled && j.report != nil {
			t.Fatalf("canceled job %s kept a report", id)
		}
	}
}

// TestConcurrentLifecycleOnLiveService races real executions: submits,
// status polls, and cancels against a running executor, then drains
// every observed job to a terminal state. The primary assertion is the
// absence of deadlock, panic, or data race (this test exists to run
// under -race); the end state must also be coherent.
func TestConcurrentLifecycleOnLiveService(t *testing.T) {
	svc, ts := newTestService(t, Config{QueueDepth: 32})

	bodies := make([]string, 4)
	for i := range bodies {
		bodies[i] = fmt.Sprintf(`{"workloads":["astar"],"schemes":["Baseline"],"instr":2000,"seed":%d}`, 100+i)
	}
	var wg sync.WaitGroup
	var idsMu sync.Mutex
	ids := map[string]bool{}
	for g := range 6 {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			client := &http.Client{Timeout: 30 * time.Second}
			for i := range 8 {
				resp, err := client.Post(ts.URL+"/jobs", "application/json", strings.NewReader(bodies[(g+i)%len(bodies)]))
				if err != nil {
					t.Errorf("submit: %v", err)
					return
				}
				var sr submitResponse
				if resp.StatusCode < 300 {
					if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
						t.Errorf("decoding submit response: %v", err)
					}
				}
				resp.Body.Close()
				if sr.ID != "" {
					idsMu.Lock()
					ids[sr.ID] = true
					idsMu.Unlock()
				}
				// Half the goroutines cancel aggressively; the executor and
				// supervisor must tolerate cancels at any stage of a run.
				if g%2 == 0 && sr.ID != "" {
					req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/jobs/"+sr.ID, nil)
					if resp, err := client.Do(req); err == nil {
						resp.Body.Close()
					}
				}
				if resp, err := client.Get(ts.URL + "/stats"); err == nil {
					resp.Body.Close()
				}
			}
		}(g)
	}
	wg.Wait()

	idsMu.Lock()
	all := make([]string, 0, len(ids))
	for id := range ids {
		all = append(all, id)
	}
	idsMu.Unlock()
	for _, id := range all {
		st := waitTerminal(t, ts.URL, id)
		switch st.State {
		case StateDone, StateCanceled:
		default:
			t.Fatalf("job %s drained to %q (%s)", id, st.State, st.Error)
		}
		if st.State == StateDone && st.ReportURL == "" {
			t.Fatalf("done job %s without a report URL", id)
		}
	}
	stats := svc.StatsSnapshot()
	if stats.Running != 0 || stats.QueueDepth != 0 {
		t.Fatalf("service not drained: running %d queued %d", stats.Running, stats.QueueDepth)
	}
}
