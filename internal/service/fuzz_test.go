package service

import (
	"bytes"
	"encoding/json"
	"testing"
)

// FuzzNormalizeRequest fuzzes the submission path's parse+normalize
// pipeline the way POST /jobs drives it: arbitrary bytes must never
// panic, and any request that normalizes successfully must normalize
// idempotently and content-hash stably (normalization is what makes
// spelling variants dedupe onto one job ID — a second pass must not
// move the hash).
func FuzzNormalizeRequest(f *testing.F) {
	seeds := []string{
		`{"workloads":["astar"],"schemes":["Baseline"]}`,
		`{"workloads":["astar"],"schemes":["ladder-hybrid"],"instr":200000}`,
		`{"workloads":["astar","lbm"],"schemes":["LADDER-Basic","LADDER-Est"],"seed":7}`,
		`{"workloads":[],"schemes":[]}`,
		`{"workloads":["nope"],"schemes":["Baseline"]}`,
		`{"workloads":["astar"],"schemes":["BASELINE"],"retry_max":-1}`,
		`{"workloads":["astar"],"schemes":["Baseline"],"instr":18446744073709551615}`,
		`{"workloads": [`,
		`null`,
		`[]`,
		`{"workloads":["astar"],"schemes":["Baseline"],"bogus":1}`,
		"{\"workloads\":[\"\\u0000\"],\"schemes\":[\"\\uffff\"]}",
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		var req Request
		dec := json.NewDecoder(bytes.NewReader(data))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&req); err != nil {
			return // a reject is fine; a panic is the bug
		}
		if err := req.normalize(10_000_000); err != nil {
			return
		}
		id1 := req.id()
		// Normalization is canonical: running it again must change
		// neither the request nor its content hash.
		again := req
		if err := again.normalize(10_000_000); err != nil {
			t.Fatalf("normalized request failed re-normalization: %v", err)
		}
		if id2 := again.id(); id2 != id1 {
			t.Fatalf("hash moved across normalizations: %s vs %s", id1, id2)
		}
		if id1 == "" || len(id1) != 16 {
			t.Fatalf("malformed job ID %q", id1)
		}
	})
}
