package service

import (
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"ladder/internal/chaos"
	"ladder/internal/core"
)

// svcChaosScheme wraps the baseline policy with a chaos failpoint on
// its write path, so service tests can make "a scheme" panic on demand
// while the disarmed scheme behaves exactly like the baseline.
type svcChaosScheme struct{ core.Scheme }

func (c *svcChaosScheme) Enqueue(req *core.WriteRequest) ([]core.AuxRead, []core.MetaWriteback) {
	chaos.Hit("service.scheme.enqueue") //nolint:errcheck // panic-only failpoint
	return c.Scheme.Enqueue(req)
}

const svcChaosSchemeName = "test-service-chaos"

func registerSvcChaosScheme() {
	if core.SchemeRegistered(svcChaosSchemeName) {
		return
	}
	core.RegisterScheme(svcChaosSchemeName, func(env *core.Env, _ core.MetaCacheConfig) (core.Scheme, error) {
		return &svcChaosScheme{Scheme: core.NewBaseline(env)}, nil
	})
}

// startService mounts an already-constructed service on a test listener
// and returns its base URL plus an idempotent shutdown func (used
// mid-test to simulate a restart; also registered as cleanup).
func startService(t *testing.T, svc *Service) (string, func()) {
	t.Helper()
	ts := httptest.NewServer(svc.Handler())
	var once sync.Once
	stop := func() {
		once.Do(func() {
			ts.Close()
			svc.Close()
		})
	}
	t.Cleanup(stop)
	return ts.URL, stop
}

// waitTerminal polls a job until it leaves queued/running.
func waitTerminal(t *testing.T, url, id string) Status {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		var st Status
		getJSON(t, url+"/jobs/"+id, &st)
		if st.State != StateQueued && st.State != StateRunning {
			return st
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s did not reach a terminal state", id)
	return Status{}
}

// TestServiceCrashRecovery is the tentpole round trip at the service
// level: a durable service completes a job, the process "dies" (one
// job done, one accepted, one mid-run), and a fresh service over the
// same state dir serves the completed report byte-identically, re-runs
// the accepted job, and surfaces the mid-run job as failed-by-crash —
// which a resubmit then re-executes.
func TestServiceCrashRecovery(t *testing.T) {
	dir := t.TempDir()

	// Life 1: complete one job, then shut down.
	svc1, err := New(Config{StateDir: dir, Tables: smallTables(t)})
	if err != nil {
		t.Fatalf("starting durable service: %v", err)
	}
	ts1, stop1 := startService(t, svc1)
	_, sub := postJob(t, ts1, `{"workloads":["astar"],"schemes":["Baseline"],"instr":2000,"seed":7}`)
	st := waitTerminal(t, ts1, sub.ID)
	if st.State != StateDone {
		t.Fatalf("job ended %s: %s", st.State, st.Error)
	}
	report := getBody(t, ts1+st.ReportURL)
	stop1()

	// Simulate the crash: a later process died with one job accepted and
	// another mid-run (journal written the way the service would have).
	reqQueued := Request{Workloads: []string{"astar"}, Schemes: []string{"Baseline"}, Instr: 2000, Seed: 8}
	if err := reqQueued.normalize(0); err != nil {
		t.Fatal(err)
	}
	reqCrashed := Request{Workloads: []string{"astar"}, Schemes: []string{"Baseline"}, Instr: 2000, Seed: 9}
	if err := reqCrashed.normalize(0); err != nil {
		t.Fatal(err)
	}
	st2, _, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	st2.Accepted(reqQueued.id(), reqQueued)
	st2.Accepted(reqCrashed.id(), reqCrashed)
	st2.Started(reqCrashed.id())
	st2.Close()

	// Life 2: recover.
	svc2, err := New(Config{StateDir: dir, Tables: smallTables(t)})
	if err != nil {
		t.Fatalf("recovering service: %v", err)
	}
	ts2, _ := startService(t, svc2)

	// The completed report serves byte-identically across the restart.
	var recovered Status
	getJSON(t, ts2+"/jobs/"+sub.ID, &recovered)
	if recovered.State != StateDone {
		t.Fatalf("completed job recovered as %q", recovered.State)
	}
	if again := getBody(t, ts2+"/jobs/"+sub.ID+"/report"); string(again) != string(report) {
		t.Fatal("recovered report not byte-identical")
	}

	// The mid-run job is failed-by-crash, marked retryable.
	crashed := waitTerminal(t, ts2, reqCrashed.id())
	if crashed.State != StateFailed || !crashed.Crashed || !strings.Contains(crashed.Error, "crash") {
		t.Fatalf("mid-run job recovered as %+v, want crashed failure", crashed)
	}

	// The accepted-but-never-started job re-queued and runs to done.
	requeued := waitTerminal(t, ts2, reqQueued.id())
	if requeued.State != StateDone {
		t.Fatalf("requeued job ended %s: %s", requeued.State, requeued.Error)
	}

	stats := svc2.StatsSnapshot()
	if stats.RecoveredReports != 1 || stats.RecoveredRequeued != 1 || stats.FailedByCrash != 1 {
		t.Fatalf("recovery stats = reports %d requeued %d crashed %d, want 1/1/1",
			stats.RecoveredReports, stats.RecoveredRequeued, stats.FailedByCrash)
	}
	if stats.StateDir != dir {
		t.Fatalf("stats state_dir = %q, want %q", stats.StateDir, dir)
	}

	// Resubmitting the crashed configuration re-runs it instead of
	// serving the stale crash failure.
	resp, re := postJob(t, ts2, fmt.Sprintf(`{"workloads":["astar"],"schemes":["Baseline"],"instr":2000,"seed":9}`))
	if resp.StatusCode != http.StatusAccepted || re.Outcome != "resubmitted" {
		t.Fatalf("resubmit of crashed job = %d/%q, want 202/resubmitted", resp.StatusCode, re.Outcome)
	}
	if rerun := waitTerminal(t, ts2, re.ID); rerun.State != StateDone {
		t.Fatalf("rerun ended %s: %s", rerun.State, rerun.Error)
	}
}

// TestWatchdogKillsAndAbandonsStalledJob drives the supervisor end to
// end with an injected stall: the watchdog cancels the heartbeat-less
// job, the wedged goroutine ignores the cancel past the grace, the job
// is abandoned with a structured error — and the executor survives to
// run the next job.
func TestWatchdogKillsAndAbandonsStalledJob(t *testing.T) {
	svc, ts := newTestService(t, Config{StallTimeout: 40 * time.Millisecond})
	svc.abandonGrace = 120 * time.Millisecond // before any job runs; ordered by the queue send

	chaos.Arm("service.job.run", chaos.Action{Delay: 5 * time.Second, Err: errors.New("wedged"), Times: 1})
	defer chaos.Reset()

	_, sub := postJob(t, ts.URL, `{"workloads":["astar"],"schemes":["Baseline"],"instr":2000,"seed":11}`)
	st := waitTerminal(t, ts.URL, sub.ID)
	if st.State != StateFailed || !strings.Contains(st.Error, "watchdog") || !strings.Contains(st.Error, "abandoned") {
		t.Fatalf("stalled job ended %q (%s), want watchdog abandonment", st.State, st.Error)
	}
	if !st.Crashed {
		t.Fatal("watchdog failure not marked retryable")
	}
	stats := svc.StatsSnapshot()
	if stats.WatchdogKills < 1 || stats.Abandoned != 1 {
		t.Fatalf("watchdog_kills %d abandoned %d, want >=1 and 1", stats.WatchdogKills, stats.Abandoned)
	}

	// The executor is free: a healthy job completes while the wedged
	// goroutine is still sleeping off its injected delay.
	_, next := postJob(t, ts.URL, `{"workloads":["astar"],"schemes":["Baseline"],"instr":2000,"seed":12}`)
	if healthy := waitTerminal(t, ts.URL, next.ID); healthy.State != StateDone {
		t.Fatalf("post-abandonment job ended %s: %s", healthy.State, healthy.Error)
	}
}

// TestJobDeadline pins Config.JobTimeout: a job over its wall-clock
// budget fails with a structured deadline error at the grid's next
// interrupt poll.
func TestJobDeadline(t *testing.T) {
	svc, ts := newTestService(t, Config{JobTimeout: 30 * time.Millisecond, MaxInstr: 100_000_000})
	_, sub := postJob(t, ts.URL, `{"workloads":["astar"],"schemes":["Baseline"],"instr":50000000,"seed":3}`)
	st := waitTerminal(t, ts.URL, sub.ID)
	if st.State != StateFailed || !strings.Contains(st.Error, "deadline") {
		t.Fatalf("over-budget job ended %q (%s), want deadline failure", st.State, st.Error)
	}
	if got := svc.StatsSnapshot().DeadlineExceeded; got != 1 {
		t.Fatalf("deadline_exceeded = %d, want 1", got)
	}
}

// TestPanicFailsOnlyThatJob is the isolation acceptance test: a scheme
// that panics in one grid cell fails its own job — stack in the error —
// while the process keeps serving and the next job completes.
func TestPanicFailsOnlyThatJob(t *testing.T) {
	registerSvcChaosScheme()
	svc, ts := newTestService(t, Config{})
	chaos.Arm("service.scheme.enqueue", chaos.Action{Panic: "injected scheme bug", Times: 1})
	defer chaos.Reset()

	_, sub := postJob(t, ts.URL, fmt.Sprintf(`{"workloads":["astar"],"schemes":[%q],"instr":2000,"seed":5}`, svcChaosSchemeName))
	st := waitTerminal(t, ts.URL, sub.ID)
	if st.State != StateFailed || !strings.Contains(st.Error, "panic: injected scheme bug") {
		t.Fatalf("panicking job ended %q (%s), want panic failure", st.State, st.Error)
	}
	if !strings.Contains(st.Error, "Enqueue") {
		t.Fatalf("panic error carries no stack: %s", st.Error)
	}
	if got := svc.StatsSnapshot().Panics; got != 1 {
		t.Fatalf("panics counter = %d, want 1", got)
	}

	// Process still serving: the same scheme, failpoint disarmed, runs
	// clean (it is the baseline underneath).
	_, next := postJob(t, ts.URL, fmt.Sprintf(`{"workloads":["astar"],"schemes":[%q],"instr":2000,"seed":6}`, svcChaosSchemeName))
	if healthy := waitTerminal(t, ts.URL, next.ID); healthy.State != StateDone {
		t.Fatalf("post-panic job ended %s: %s", healthy.State, healthy.Error)
	}
}

// TestResubmitAfterCancel pins the retryable-cancel semantics: a
// canceled job's configuration, resubmitted, re-enqueues fresh instead
// of being served the stale canceled state from the cache.
func TestResubmitAfterCancel(t *testing.T) {
	svc, ts := newIdleService(t, Config{})
	_, sub := postJob(t, ts.URL, `{"workloads":["astar"],"schemes":["Baseline"]}`)

	req, _ := http.NewRequest("DELETE", ts.URL+"/jobs/"+sub.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	resp, re := postJob(t, ts.URL, `{"workloads":["astar"],"schemes":["Baseline"]}`)
	if resp.StatusCode != http.StatusAccepted || re.Outcome != "resubmitted" {
		t.Fatalf("resubmit after cancel = %d/%q, want 202/resubmitted", resp.StatusCode, re.Outcome)
	}
	if re.ID != sub.ID || re.State != StateQueued {
		t.Fatalf("resubmitted job = %s/%s, want same ID back in queue", re.ID, re.State)
	}
	if re.Error != "" || re.Crashed {
		t.Fatalf("resubmitted job kept stale terminal state: %+v", re.Status)
	}
	st := svc.StatsSnapshot()
	if st.Resubmitted != 1 || st.Canceled != 1 {
		t.Fatalf("stats = resubmitted %d canceled %d, want 1/1", st.Resubmitted, st.Canceled)
	}
	// The job is pending again, so it dedupes — it must NOT serve the
	// canceled state as a cache hit.
	resp, dup := postJob(t, ts.URL, `{"workloads":["astar"],"schemes":["Baseline"]}`)
	if resp.StatusCode != http.StatusAccepted || dup.Outcome != "deduplicated" {
		t.Fatalf("submit while requeued = %d/%q, want 202/deduplicated", resp.StatusCode, dup.Outcome)
	}
}

// TestReadyzDegradesOnStoreFailure: /readyz is 200 while healthy and
// 503 once the durable store records a write failure — while /healthz
// (liveness) and job serving stay up.
func TestReadyzDegradesOnStoreFailure(t *testing.T) {
	svc, err := New(Config{StateDir: t.TempDir(), Tables: smallTables(t)})
	if err != nil {
		t.Fatal(err)
	}
	ts, _ := startService(t, svc)

	if code := getStatusCode(t, ts+"/readyz"); code != http.StatusOK {
		t.Fatalf("healthy readyz = %d, want 200", code)
	}

	chaos.Arm("service.journal.append", chaos.Action{Err: errors.New("disk gone"), Times: 1})
	defer chaos.Reset()
	_, sub := postJob(t, ts, `{"workloads":["astar"],"schemes":["Baseline"],"instr":2000,"seed":21}`)

	if code := getStatusCode(t, ts+"/readyz"); code != http.StatusServiceUnavailable {
		t.Fatalf("degraded readyz = %d, want 503", code)
	}
	if code := getStatusCode(t, ts+"/healthz"); code != http.StatusOK {
		t.Fatalf("healthz during degradation = %d, want 200 (liveness unaffected)", code)
	}
	// Availability is shed last: the job still runs to completion from
	// memory.
	if st := waitTerminal(t, ts, sub.ID); st.State != StateDone {
		t.Fatalf("job under degraded durability ended %s: %s", st.State, st.Error)
	}
}
