// Package service turns the simulator into a long-running
// simulation-as-a-service endpoint: an HTTP job queue that accepts
// parameterized experiment requests (the JSON-resolved form of
// sim.Options plus a scheme list), executes them as parallel grids on a
// warm engine, and serves the resulting grid reports.
//
// The service is built for many clients submitting overlapping sweeps
// against one process:
//
//   - Deduplication. Every request normalizes (defaults made explicit,
//     scheme spellings canonicalized) and content-hashes; the hash is
//     the job ID. A submission whose ID matches a queued or running job
//     attaches to it instead of enqueueing a second execution, and one
//     matching a completed job is answered from the report cache.
//   - Caching. Completed reports are kept as marshaled bytes in a
//     bounded LRU, so repeated submissions of a finished configuration
//     are served byte-identically without re-simulating. Reports are
//     deterministic for a fixed seed (see sim.RunGridCtx), so a cached
//     report is exactly what a re-run would produce, wall-clock fields
//     aside.
//   - Backpressure. The pending queue is bounded; a submission that
//     finds it full is rejected with 503 and counted, never silently
//     dropped or unboundedly buffered.
//   - Durability. With Config.StateDir set, every job transition lands
//     in an fsync'd journal and every completed report in a blob store
//     (see Store). A restarted — or crashed and rebooted — service
//     replays the journal: completed reports are served byte-identically,
//     jobs that were queued re-queue, and jobs that died mid-run come
//     back as failed-by-crash (resubmitting one re-runs it).
//   - Self-healing. Each job runs under an optional deadline
//     (Config.JobTimeout) and a watchdog (Config.StallTimeout) that
//     cancels jobs whose grid stops making progress; a job wedged hard
//     enough to ignore cancellation is abandoned so the executor moves
//     on. A panicking scheme fails only its own job — the panic is
//     caught in the grid worker (sim.PanicError), counted, and reported
//     in the job's error with its stack.
//   - Observability. Queue depth, running/deduped/rejected/cache-hit
//     counts are kept in an internal metrics.Registry (names in
//     docs/METRICS.md) and exposed through GET /stats and the
//     introspection server's function-backed documents.
//
// Jobs execute one at a time in submission order on a single executor
// goroutine — within a job, sim.RunGridCtx fans cells out over its own
// worker pool — so the bounded queue is the only admission control
// needed. Progress streams to subscribers over Server-Sent Events from
// the grid's serialized progress callbacks. The full API reference,
// with request/response schemas and a curl walkthrough, is
// docs/SERVICE.md.
package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"ladder/internal/chaos"
	"ladder/internal/logging"
	"ladder/internal/metrics"
	"ladder/internal/sim"
	"ladder/internal/timing"
)

// Job states, as reported in status documents and SSE events.
const (
	StateQueued   = "queued"
	StateRunning  = "running"
	StateDone     = "done"
	StateFailed   = "failed"
	StateCanceled = "canceled"
)

// Config parameterizes a Service. The zero value selects the defaults.
type Config struct {
	// QueueDepth bounds the number of jobs waiting to execute (running
	// and completed jobs do not count). A submission that finds the
	// queue full is rejected with 503. 0 = 16.
	QueueDepth int
	// CacheSize bounds the number of completed (done, failed or
	// canceled) jobs retained, LRU by completion/last-hit order. An
	// evicted job's report is forgotten; resubmitting its configuration
	// re-simulates. 0 = 64.
	CacheSize int
	// Jobs is the per-grid worker-pool width forwarded to
	// sim.Options.Jobs (0 = one worker per CPU).
	Jobs int
	// MaxInstr caps the per-core instruction budget a request may ask
	// for, bounding the cost of any one job. 0 = 10M; negative values
	// are not meaningful (validation treats the cap as disabled only if
	// you set it explicitly high).
	MaxInstr uint64
	// Tables overrides the timing tables every job simulates with
	// (nil = the full default 512×512 set). Primarily a test seam: the
	// default set takes tens of seconds to generate cold.
	Tables *timing.TableSet
	// SSEKeepalive is the comment-frame cadence on idle event streams —
	// proxies reap silent connections, so a queued job's subscribers get
	// ": keepalive" comments while nothing happens. 0 = 15s; negative
	// disables keepalives (test seam).
	SSEKeepalive time.Duration
	// Logger receives job-lifecycle records (submitted, started,
	// finished). Nil discards them; serve mode wires a JSON logger.
	Logger *slog.Logger
	// StateDir, when set, makes the service durable: job transitions
	// journal to <StateDir>/journal.jsonl and completed reports persist
	// as blobs, both fsync'd, and New replays them on boot (see Store).
	// Empty = in-memory only; nothing survives a restart.
	StateDir string
	// JobTimeout bounds any one job's wall-clock execution; a job still
	// running at the deadline is canceled and fails with a structured
	// deadline error. 0 = no deadline.
	JobTimeout time.Duration
	// StallTimeout arms the per-job watchdog: a running job whose grid
	// delivers no progress heartbeat (cell completions or periodic
	// in-cell progress) for this long is canceled with a structured
	// stall error and counted in service.watchdog.kills. 0 = disabled.
	StallTimeout time.Duration
}

// abandonGraceDefault is how long the supervisor waits, after canceling
// a job, for its grid goroutine to unwind before abandoning it (marking
// the job failed and letting the executor move on). Cancellation is
// polled between engine steps, so a healthy grid unwinds in
// microseconds; only a truly wedged cell hits the grace.
const abandonGraceDefault = 3 * time.Second

// heartbeatCycles is the per-cell progress cadence (engine cycles)
// forwarded to the grid when the watchdog is armed, so long-running
// cells beat well inside any sane StallTimeout.
const heartbeatCycles = 250_000

func (c *Config) applyDefaults() {
	if c.QueueDepth == 0 {
		c.QueueDepth = 16
	}
	if c.CacheSize == 0 {
		c.CacheSize = 64
	}
	if c.MaxInstr == 0 {
		c.MaxInstr = 10_000_000
	}
	if c.SSEKeepalive == 0 {
		c.SSEKeepalive = 15 * time.Second
	}
	if c.Logger == nil {
		c.Logger = logging.Discard()
	}
}

// jobEvent is one SSE status event with its per-job sequence ID, so a
// reconnecting subscriber can resume with Last-Event-ID.
type jobEvent struct {
	id   uint64
	body []byte
}

// job is the service-side record of one submitted configuration.
type job struct {
	id    string
	req   Request
	state string
	// done/total track grid-cell completion while running.
	done, total int
	errMsg      string
	report      []byte // marshaled GridReport, state done only
	dedups      uint64 // submissions that attached to this job
	// crashed marks a failure caused by the process (crash, watchdog
	// abandonment) rather than the request: resubmitting re-runs it
	// instead of serving the cached failure.
	crashed   bool
	seq       uint64 // SSE event sequence, monotonically increasing
	cancel    context.CancelFunc
	subs      []chan jobEvent // SSE subscribers
	submitted time.Time
	finished  time.Time
}

// Service is the job queue. Create with New, mount Handler on a
// listener (or the introspection server), and Close on shutdown.
type Service struct {
	cfg   Config
	mux   *http.ServeMux
	store *Store // nil when Config.StateDir is empty (all methods nil-safe)
	// abandonGrace is how long a canceled-but-unresponsive job may hold
	// the executor before being abandoned (test seam; defaults to
	// abandonGraceDefault in New).
	abandonGrace time.Duration

	mu      sync.Mutex
	jobs    map[string]*job
	order   []string // submission order, for GET /jobs
	queue   chan *job
	lru     []string // completed job IDs, least recently used first
	closed  bool
	running int

	// Counters mirrored into reg; all access is under mu (the registry's
	// instruments are deliberately not atomic).
	reg *metrics.Registry

	baseCtx context.Context
	stop    context.CancelFunc
	wg      sync.WaitGroup
}

// New starts a service: the executor goroutine runs until Close. With
// Config.StateDir set, the state directory is opened (created if
// missing) and its journal replayed before the executor starts, so
// recovered reports are servable and re-queued jobs execute from the
// first moment the handler is mounted. Opening the state dir is the
// only failure mode; an in-memory service (empty StateDir) cannot fail.
func New(cfg Config) (*Service, error) {
	cfg.applyDefaults()
	ctx, cancel := context.WithCancel(context.Background())
	s := &Service{
		cfg:          cfg,
		abandonGrace: abandonGraceDefault,
		jobs:         make(map[string]*job),
		queue:        make(chan *job, cfg.QueueDepth),
		reg:          metrics.NewRegistry(),
		baseCtx:      ctx,
		stop:         cancel,
	}
	if cfg.StateDir != "" {
		store, rec, err := OpenStore(cfg.StateDir)
		if err != nil {
			cancel()
			return nil, err
		}
		s.store = store
		s.restore(rec)
	}
	s.routes()
	s.wg.Add(1)
	go s.executor()
	return s, nil
}

// restore installs one boot replay's jobs: terminal jobs enter the
// completed LRU (oldest journal position evicting first), queued jobs
// re-enter the pending queue. Runs before the executor starts, so no
// locking subtleties — but it takes s.mu anyway for finishLocked's
// invariants.
func (s *Service) restore(rec *Recovery) {
	s.mu.Lock()
	defer s.mu.Unlock()
	var evicted []string
	for _, rj := range rec.Jobs {
		j := &job{
			id: rj.ID, req: rj.Req, state: StateQueued,
			crashed: rj.Crashed, submitted: time.Now(),
		}
		if rj.State == StateQueued {
			select {
			case s.queue <- j:
			default:
				// A journal holding more queued jobs than the queue cap
				// (the cap shrank across the restart): fail the overflow
				// as crashed so it stays visible and resubmittable.
				rj.State = StateFailed
				rj.ErrMsg = "failed by crash: recovered queue overflowed the configured queue depth"
				j.crashed = true
				rec.Requeued--
				rec.FailedByCrash++
			}
		}
		s.jobs[j.id] = j
		s.order = append(s.order, j.id)
		if rj.State != StateQueued {
			ev := s.finishLocked(j, rj.State, rj.ErrMsg, rj.Report, j.crashed)
			evicted = append(evicted, ev...)
			j.finished = time.Time{} // not finished by this process
		}
		if rj.State == StateDone {
			s.reg.Counter("service.recovered.reports").Inc()
		}
	}
	// finishLocked counted the restored terminal states as if this
	// process produced them; rewind so completed/failed/canceled count
	// only this boot's work, and track recovery in its own counters.
	s.reg.SetCounter("service.jobs.completed", 0)
	s.reg.SetCounter("service.jobs.failed", 0)
	s.reg.SetCounter("service.jobs.canceled", 0)
	s.reg.Counter("service.recovered.requeued").Add(uint64(rec.Requeued))
	s.reg.Counter("service.recovered.failed_by_crash").Add(uint64(rec.FailedByCrash))
	s.reg.Counter("service.store.corrupt_records").Add(uint64(rec.CorruptRecords))
	// The store has its own lock and never takes s.mu, so journaling the
	// evictions here is safe.
	for _, id := range evicted {
		s.store.Evicted(id)
	}
	if len(rec.Jobs) > 0 || rec.CorruptRecords > 0 {
		s.cfg.Logger.Info("state recovered",
			"dir", s.cfg.StateDir, "jobs", len(rec.Jobs),
			"requeued", rec.Requeued, "failed_by_crash", rec.FailedByCrash,
			"corrupt_records", rec.CorruptRecords)
	}
}

// Handler returns the service's HTTP API (see docs/SERVICE.md): POST
// /jobs, GET /jobs, GET /jobs/{id}, GET /jobs/{id}/report, GET
// /jobs/{id}/events, DELETE /jobs/{id}, GET /stats, GET /healthz.
func (s *Service) Handler() http.Handler { return s.mux }

// Routes lists the top-level patterns Handler serves, for mounting the
// service onto a shared mux (introspect.Server.Handle).
func (s *Service) Routes() []string {
	return []string{"/jobs", "/jobs/", "/stats", "/healthz", "/readyz", "/metrics/prom"}
}

// Close stops the executor and cancels any running job. Queued jobs are
// marked canceled in memory but deliberately NOT journaled as canceled
// — their accepted records survive, so a durable service re-queues them
// on the next boot. Close blocks until the executor goroutine exits.
func (s *Service) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		return
	}
	s.closed = true
	s.mu.Unlock()
	s.stop()
	s.wg.Wait()
	s.store.Close()
}

// MetricsSnapshot freezes the service's metrics registry — the
// queue/cache/backpressure counters cataloged in docs/METRICS.md. Safe
// for concurrent use; the introspection server publishes it as a
// function-backed document.
func (s *Service) MetricsSnapshot() metrics.Snapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.reg.Gauge("service.queue.depth").Observe(float64(len(s.queue)))
	s.reg.Gauge("service.jobs.running").Observe(float64(s.running))
	return s.reg.Snapshot()
}

// Stats is the GET /stats document.
type Stats struct {
	QueueDepth int    `json:"queue_depth"`
	QueueCap   int    `json:"queue_cap"`
	Running    int    `json:"running"`
	Jobs       int    `json:"jobs"`
	Cached     int    `json:"cached"`
	Submitted  uint64 `json:"submitted"`
	Deduped    uint64 `json:"deduped"`
	Rejected   uint64 `json:"rejected"`
	CacheHits  uint64 `json:"cache_hits"`
	Completed  uint64 `json:"completed"`
	Failed     uint64 `json:"failed"`
	Canceled   uint64 `json:"canceled"`
	Evictions  uint64 `json:"cache_evictions"`
	// Robustness and durability counters (0 unless the corresponding
	// feature is configured/exercised; see docs/METRICS.md).
	Resubmitted        uint64 `json:"resubmitted"`
	WatchdogKills      uint64 `json:"watchdog_kills"`
	DeadlineExceeded   uint64 `json:"deadline_exceeded"`
	Panics             uint64 `json:"panics"`
	Abandoned          uint64 `json:"abandoned"`
	RecoveredReports   uint64 `json:"recovered_reports"`
	RecoveredRequeued  uint64 `json:"recovered_requeued"`
	FailedByCrash      uint64 `json:"failed_by_crash"`
	StoreWriteErrors   uint64 `json:"store_write_errors"`
	StoreCorruptRecs   uint64 `json:"store_corrupt_records"`
	StateDir           string `json:"state_dir,omitempty"`
	DurabilityDegraded bool   `json:"durability_degraded,omitempty"`
}

// StatsSnapshot builds the GET /stats document. Safe for concurrent use.
func (s *Service) StatsSnapshot() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	c := func(name string) uint64 { return s.reg.Counter(name).Value() }
	return Stats{
		QueueDepth: len(s.queue),
		QueueCap:   s.cfg.QueueDepth,
		Running:    s.running,
		Jobs:       len(s.order),
		Cached:     len(s.lru),
		Submitted:  c("service.jobs.submitted"),
		Deduped:    c("service.jobs.deduped"),
		Rejected:   c("service.jobs.rejected"),
		CacheHits:  c("service.cache.hits"),
		Completed:  c("service.jobs.completed"),
		Failed:     c("service.jobs.failed"),
		Canceled:   c("service.jobs.canceled"),
		Evictions:  c("service.cache.evictions"),

		Resubmitted:        c("service.jobs.resubmitted"),
		WatchdogKills:      c("service.watchdog.kills"),
		DeadlineExceeded:   c("service.jobs.deadline_exceeded"),
		Panics:             c("service.jobs.panics"),
		Abandoned:          c("service.jobs.abandoned"),
		RecoveredReports:   c("service.recovered.reports"),
		RecoveredRequeued:  c("service.recovered.requeued"),
		FailedByCrash:      c("service.recovered.failed_by_crash"),
		StoreWriteErrors:   s.store.WriteErrs(),
		StoreCorruptRecs:   c("service.store.corrupt_records"),
		StateDir:           s.store.Dir(),
		DurabilityDegraded: s.store.Err() != nil,
	}
}

// submitOutcome tells the HTTP layer how a submission resolved.
type submitOutcome int

const (
	outcomeNew submitOutcome = iota
	outcomeDeduped
	outcomeCached
	outcomeResubmitted
	outcomeRejected
	outcomeClosed
)

// submit resolves a normalized request to a job: a fresh enqueue, an
// attach to an identical in-flight job, or a cache hit on a completed
// one. Canceled and crashed (failed-by-crash, watchdog-abandoned) jobs
// are retryable: resubmitting one re-enqueues it instead of serving the
// stale terminal state. Deterministic failures stay cached — the same
// request would fail the same way. Rejection (full queue, closing
// service) returns a nil job.
func (s *Service) submit(req Request) (*job, submitOutcome) {
	id := req.id()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, outcomeClosed
	}
	if j, ok := s.jobs[id]; ok {
		switch {
		case j.state == StateQueued || j.state == StateRunning:
			j.dedups++
			s.reg.Counter("service.jobs.deduped").Inc()
			return j, outcomeDeduped
		case j.state == StateCanceled || (j.state == StateFailed && j.crashed):
			return s.resubmitLocked(j)
		default:
			// Completed (done, or deterministically failed): serve from
			// cache and refresh its LRU position.
			s.reg.Counter("service.cache.hits").Inc()
			s.touchLocked(id)
			return j, outcomeCached
		}
	}
	j := &job{id: id, req: req, state: StateQueued, submitted: time.Now()}
	select {
	case s.queue <- j:
	default:
		s.reg.Counter("service.jobs.rejected").Inc()
		return nil, outcomeRejected
	}
	s.jobs[id] = j
	s.order = append(s.order, id)
	s.reg.Counter("service.jobs.submitted").Inc()
	s.reg.Gauge("service.queue.depth").Observe(float64(len(s.queue)))
	s.store.Accepted(id, req)
	s.cfg.Logger.Info("job queued", "job", id, "queue_depth", len(s.queue))
	return j, outcomeNew
}

// resubmitLocked returns a canceled or crashed job to the pending
// queue, resetting its terminal state. The job keeps its identity (and
// SSE sequence), so watchers attached before the resubmit see the new
// lifecycle continue. Callers hold s.mu.
func (s *Service) resubmitLocked(j *job) (*job, submitOutcome) {
	select {
	case s.queue <- j:
	default:
		s.reg.Counter("service.jobs.rejected").Inc()
		return nil, outcomeRejected
	}
	s.dropLRULocked(j.id)
	j.state = StateQueued
	j.errMsg = ""
	j.report = nil
	j.done, j.total = 0, 0
	j.crashed = false
	j.finished = time.Time{}
	j.submitted = time.Now()
	s.reg.Counter("service.jobs.resubmitted").Inc()
	s.store.Accepted(j.id, j.req)
	s.cfg.Logger.Info("job resubmitted", "job", j.id, "queue_depth", len(s.queue))
	return j, outcomeResubmitted
}

// dropLRULocked removes a completed job from the LRU without evicting
// it (it is returning to the queue). Callers hold s.mu.
func (s *Service) dropLRULocked(id string) {
	for i, v := range s.lru {
		if v == id {
			s.lru = append(s.lru[:i], s.lru[i+1:]...)
			return
		}
	}
}

// cancelJob cancels a job by ID. Queued jobs transition directly to
// canceled (the executor skips them); running jobs get their context
// canceled and transition when the grid unwinds. Completed jobs are
// left as they are (false, "already finished").
func (s *Service) cancelJob(id string) (ok bool, reason string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, exists := s.jobs[id]
	if !exists {
		return false, "unknown job"
	}
	switch j.state {
	case StateQueued:
		evicted := s.finishLocked(j, StateCanceled, "canceled before execution", nil, false)
		// Journal ordering matters (a canceled record must follow the
		// accepted one and precede any re-accept), so the store calls stay
		// under s.mu; the store never takes it, so this cannot deadlock.
		s.store.Canceled(id, "canceled before execution")
		for _, ev := range evicted {
			s.store.Evicted(ev)
		}
		return true, ""
	case StateRunning:
		if j.cancel != nil {
			j.cancel()
		}
		return true, ""
	default:
		return false, "already finished"
	}
}

// executor drains the queue one job at a time, in submission order.
func (s *Service) executor() {
	defer s.wg.Done()
	for {
		select {
		case <-s.baseCtx.Done():
			s.drainOnClose()
			return
		case j := <-s.queue:
			s.runJob(j)
		}
	}
}

// drainOnClose marks every still-queued job canceled after Close. The
// cancellations are deliberately not journaled: the jobs' accepted
// records survive in the journal, so a durable service re-queues them
// on the next boot instead of making clients resubmit.
func (s *Service) drainOnClose() {
	for {
		select {
		case j := <-s.queue:
			s.mu.Lock()
			if j.state == StateQueued {
				evicted := s.finishLocked(j, StateCanceled, "service shut down", nil, false)
				for _, ev := range evicted {
					s.store.Evicted(ev)
				}
			}
			s.mu.Unlock()
		default:
			return
		}
	}
}

// Structured cancellation causes, attached via context.WithCancelCause
// so the grid's error chain tells the supervisor (and the client) WHY a
// job stopped: client cancel, deadline, or watchdog stall.
var (
	errClientCancel  = errors.New("canceled by client")
	errJobDeadline   = errors.New("job deadline exceeded")
	errWatchdogStall = errors.New("watchdog: job stalled")
)

// jobOutcome is what the grid goroutine hands back to the supervisor.
type jobOutcome struct {
	grid *sim.Grid
	err  error
}

// runJob executes one job's grid under the supervisor: an optional
// wall-clock deadline (Config.JobTimeout), an optional stall watchdog
// (Config.StallTimeout) fed by the grid's progress heartbeats, and a
// last-resort abandonment path for jobs that ignore cancellation (a
// cell wedged inside one engine cycle never reaches the interrupt
// poll). The grid itself runs in a separate goroutine so the supervisor
// can keep the executor alive no matter what the job does.
func (s *Service) runJob(j *job) {
	ctx, cancelCause := context.WithCancelCause(s.baseCtx)
	defer cancelCause(nil)
	if s.cfg.JobTimeout > 0 {
		var cancelTimeout context.CancelFunc
		ctx, cancelTimeout = context.WithTimeoutCause(ctx, s.cfg.JobTimeout, errJobDeadline)
		defer cancelTimeout()
	}

	s.mu.Lock()
	if j.state != StateQueued { // canceled while waiting
		s.mu.Unlock()
		return
	}
	j.state = StateRunning
	j.cancel = func() { cancelCause(errClientCancel) }
	s.running = 1
	opts, schemes := j.req.options()
	j.total = len(opts.Workloads) * len(schemes)
	s.reg.Gauge("service.jobs.running").Observe(1)
	s.broadcastLocked(j)
	s.mu.Unlock()
	s.store.Started(j.id)
	s.cfg.Logger.Info("job started", "job", j.id, "cells", j.total)

	// lastBeat is the watchdog's heartbeat: cell completions always beat;
	// with the watchdog armed, periodic in-cell progress beats too, so a
	// single long-running cell is not mistaken for a stall.
	var lastBeat atomic.Int64
	lastBeat.Store(time.Now().UnixNano())
	opts.Jobs = s.cfg.Jobs
	opts.Tables = s.cfg.Tables
	opts.Progress = func(p sim.GridProgress) {
		lastBeat.Store(time.Now().UnixNano())
		// Serialized by the grid's callback mutex; only the fields we
		// update here are touched concurrently with status reads, and
		// those reads also hold s.mu.
		s.mu.Lock()
		j.done, j.total = p.Done, p.Total
		s.broadcastLocked(j)
		s.mu.Unlock()
	}
	if s.cfg.StallTimeout > 0 {
		opts.ProgressEvery = heartbeatCycles
		opts.CellProgress = func(_, _ string, _ sim.ProgressInfo) {
			lastBeat.Store(time.Now().UnixNano())
		}
	}

	// The grid goroutine: panic-isolated (the grid isolates its own
	// workers, but the report marshaling and chaos hooks here deserve the
	// same cover) and decoupled from the supervisor through a buffered
	// channel, so an abandoned goroutine's late send never blocks.
	done := make(chan jobOutcome, 1)
	go func() {
		defer func() {
			if r := recover(); r != nil {
				done <- jobOutcome{err: &sim.PanicError{Value: r, Stack: debug.Stack()}}
			}
		}()
		if err := chaos.Hit("service.job.run"); err != nil {
			done <- jobOutcome{err: err}
			return
		}
		grid, err := sim.RunGridCtx(ctx, opts, schemes)
		done <- jobOutcome{grid: grid, err: err}
	}()

	out, abandoned := s.supervise(ctx, j, done, &lastBeat, cancelCause)

	var report []byte
	err := out.err
	if !abandoned && err == nil {
		var gr *sim.GridReport
		if gr, err = sim.NewGridReport(out.grid); err == nil {
			report, err = json.MarshalIndent(gr, "", "  ")
		}
	}

	state, errMsg, crashed := classify(ctx, err, abandoned, s.cfg.JobTimeout)
	s.mu.Lock()
	s.running = 0
	s.reg.Gauge("service.jobs.running").Observe(0)
	switch {
	case abandoned:
		s.reg.Counter("service.jobs.abandoned").Inc()
	case state == StateFailed:
		var pe *sim.PanicError
		if errors.As(err, &pe) {
			s.reg.Counter("service.jobs.panics").Inc()
		}
		if errors.Is(context.Cause(ctx), errJobDeadline) {
			s.reg.Counter("service.jobs.deadline_exceeded").Inc()
		}
	}
	evicted := s.finishLocked(j, state, errMsg, report, crashed)
	switch state {
	case StateDone:
		s.store.Done(j.id, report)
	case StateFailed:
		s.store.Failed(j.id, errMsg, crashed)
	case StateCanceled:
		s.store.Canceled(j.id, errMsg)
	}
	for _, ev := range evicted {
		s.store.Evicted(ev)
	}
	s.mu.Unlock()
}

// supervise waits for the grid goroutine while enforcing the stall
// watchdog and the abandonment grace. Returns the grid's outcome, or
// abandoned=true if the goroutine failed to unwind after cancellation
// (its eventual result is discarded via the buffered channel).
func (s *Service) supervise(ctx context.Context, j *job, done <-chan jobOutcome, lastBeat *atomic.Int64, cancelCause context.CancelCauseFunc) (jobOutcome, bool) {
	var tick <-chan time.Time
	if s.cfg.StallTimeout > 0 || s.cfg.JobTimeout > 0 {
		period := s.abandonGrace / 4
		if s.cfg.StallTimeout > 0 && s.cfg.StallTimeout/4 < period {
			period = s.cfg.StallTimeout / 4
		}
		period = max(period, time.Millisecond)
		t := time.NewTicker(period)
		defer t.Stop()
		tick = t.C
	}
	var canceledAt time.Time // when ctx cancellation was first observed
	for {
		select {
		case out := <-done:
			return out, false
		case now := <-tick:
			if ctx.Err() != nil {
				// Canceled (client, deadline, watchdog or shutdown): a
				// healthy grid unwinds at its next interrupt poll. One that
				// does not is wedged — abandon it so the executor moves on.
				if canceledAt.IsZero() {
					canceledAt = now
				} else if now.Sub(canceledAt) > s.abandonGrace {
					s.cfg.Logger.Info("job abandoned", "job", j.id,
						"cause", context.Cause(ctx), "grace", s.abandonGrace)
					return jobOutcome{}, true
				}
				continue
			}
			if s.cfg.StallTimeout > 0 {
				idle := now.Sub(time.Unix(0, lastBeat.Load()))
				if idle >= s.cfg.StallTimeout {
					s.mu.Lock()
					s.reg.Counter("service.watchdog.kills").Inc()
					s.mu.Unlock()
					s.cfg.Logger.Info("watchdog kill", "job", j.id, "idle", idle)
					cancelCause(fmt.Errorf("%w: no progress heartbeat for %v (stall timeout %v)",
						errWatchdogStall, idle.Round(time.Millisecond), s.cfg.StallTimeout))
				}
			}
		}
	}
}

// classify maps a supervised job's ending to its terminal state, error
// message, and whether it is retryable-by-resubmit (crashed).
func classify(ctx context.Context, err error, abandoned bool, deadline time.Duration) (state, errMsg string, crashed bool) {
	cause := context.Cause(ctx)
	switch {
	case abandoned:
		return StateFailed, fmt.Sprintf(
			"failed by watchdog: %v; the job did not unwind after cancellation and was abandoned", cause), true
	case err == nil:
		return StateDone, "", false
	case errors.Is(cause, errWatchdogStall):
		// A stall is environmental (a wedged cell, injected latency), not a
		// property of the request: resubmitting retries it.
		return StateFailed, fmt.Sprintf("failed by watchdog: %v", cause), true
	case errors.Is(cause, errJobDeadline):
		return StateFailed, fmt.Sprintf("job deadline (%v) exceeded: %v", deadline, err), false
	case errors.Is(cause, errClientCancel):
		return StateCanceled, fmt.Sprintf("canceled: %v", err), false
	case ctx.Err() != nil && !errors.As(err, new(*sim.PanicError)):
		// Shutdown (the base context) or any other external cancellation.
		return StateCanceled, fmt.Sprintf("canceled: %v", err), false
	default:
		return StateFailed, err.Error(), false
	}
}

// finishLocked moves a job to a terminal state, publishes the terminal
// event, releases subscribers, and enters the job into the completed
// LRU (possibly evicting the oldest completed job entirely). It returns
// the IDs of any evicted jobs so callers can journal the evictions.
// Callers hold s.mu.
func (s *Service) finishLocked(j *job, state, errMsg string, report []byte, crashed bool) []string {
	j.state = state
	j.errMsg = errMsg
	j.report = report
	j.crashed = crashed
	j.finished = time.Now()
	j.cancel = nil
	switch state {
	case StateDone:
		s.reg.Counter("service.jobs.completed").Inc()
	case StateFailed:
		s.reg.Counter("service.jobs.failed").Inc()
	case StateCanceled:
		s.reg.Counter("service.jobs.canceled").Inc()
	}
	if errMsg != "" {
		s.cfg.Logger.Info("job finished", "job", j.id, "state", state,
			"elapsed", j.finished.Sub(j.submitted), "error", errMsg)
	} else {
		s.cfg.Logger.Info("job finished", "job", j.id, "state", state,
			"elapsed", j.finished.Sub(j.submitted))
	}
	s.broadcastLocked(j)
	for _, ch := range j.subs {
		close(ch)
	}
	j.subs = nil
	s.lru = append(s.lru, j.id)
	var evicted []string
	for len(s.lru) > s.cfg.CacheSize {
		evict := s.lru[0]
		s.lru = s.lru[1:]
		delete(s.jobs, evict)
		for i, id := range s.order {
			if id == evict {
				s.order = append(s.order[:i], s.order[i+1:]...)
				break
			}
		}
		s.reg.Counter("service.cache.evictions").Inc()
		evicted = append(evicted, evict)
	}
	return evicted
}

// touchLocked refreshes a completed job's LRU position on a cache hit.
func (s *Service) touchLocked(id string) {
	for i, v := range s.lru {
		if v == id {
			s.lru = append(s.lru[:i], s.lru[i+1:]...)
			s.lru = append(s.lru, id)
			return
		}
	}
}

// subscribe attaches an SSE subscriber to a job and returns its channel
// plus the current status event (stamped with the job's latest event
// ID, so reconnecting clients can tell whether they already saw it). A
// terminal job returns a nil channel — the current event is the last
// one. Channel sends never block: a subscriber that falls more than a
// buffer behind loses intermediate progress events but always receives
// the terminal one (the channel is drained by the handler until
// closed).
func (s *Service) subscribe(id string) (<-chan jobEvent, jobEvent, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return nil, jobEvent{}, false
	}
	cur := jobEvent{id: j.seq, body: j.statusEvent()}
	if j.state != StateQueued && j.state != StateRunning {
		return nil, cur, true
	}
	ch := make(chan jobEvent, 64)
	j.subs = append(j.subs, ch)
	return ch, cur, true
}

// broadcastLocked pushes the job's current status event to every
// subscriber, advancing the job's event sequence. Callers hold s.mu. A
// full subscriber buffer drops the event — except terminal events,
// which always land because the channel buffer (64) exceeds any backlog
// a handler can leave while draining.
func (s *Service) broadcastLocked(j *job) {
	j.seq++
	if len(j.subs) == 0 {
		return
	}
	ev := jobEvent{id: j.seq, body: j.statusEvent()}
	for _, ch := range j.subs {
		select {
		case ch <- ev:
		default:
		}
	}
}

// Status is the job document served by GET /jobs/{id} and streamed over
// SSE. Terminal states carry either ReportURL (done) or Error.
type Status struct {
	ID        string `json:"id"`
	State     string `json:"state"`
	Done      int    `json:"done"`
	Total     int    `json:"total"`
	Dedups    uint64 `json:"dedups"`
	Error     string `json:"error,omitempty"`
	ReportURL string `json:"report_url,omitempty"`
	// Crashed marks a failure the process caused (crash, watchdog
	// abandonment) rather than the request; resubmitting retries it.
	Crashed bool    `json:"crashed,omitempty"`
	Request Request `json:"request"`
}

// statusLocked freezes a job's Status. Callers hold s.mu (or own the
// job exclusively).
func (j *job) statusLocked() Status {
	st := Status{
		ID:      j.id,
		State:   j.state,
		Done:    j.done,
		Total:   j.total,
		Dedups:  j.dedups,
		Error:   j.errMsg,
		Crashed: j.crashed,
		Request: j.req,
	}
	if j.state == StateDone {
		st.ReportURL = "/jobs/" + j.id + "/report"
	}
	return st
}

// statusEvent marshals the job's status for SSE delivery.
func (j *job) statusEvent() []byte {
	b, err := json.Marshal(j.statusLocked())
	if err != nil {
		// Status is plain data; Marshal cannot fail on it.
		panic(fmt.Sprintf("service: marshaling status: %v", err))
	}
	return b
}
