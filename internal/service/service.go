// Package service turns the simulator into a long-running
// simulation-as-a-service endpoint: an HTTP job queue that accepts
// parameterized experiment requests (the JSON-resolved form of
// sim.Options plus a scheme list), executes them as parallel grids on a
// warm engine, and serves the resulting grid reports.
//
// The service is built for many clients submitting overlapping sweeps
// against one process:
//
//   - Deduplication. Every request normalizes (defaults made explicit,
//     scheme spellings canonicalized) and content-hashes; the hash is
//     the job ID. A submission whose ID matches a queued or running job
//     attaches to it instead of enqueueing a second execution, and one
//     matching a completed job is answered from the report cache.
//   - Caching. Completed reports are kept as marshaled bytes in a
//     bounded LRU, so repeated submissions of a finished configuration
//     are served byte-identically without re-simulating. Reports are
//     deterministic for a fixed seed (see sim.RunGridCtx), so a cached
//     report is exactly what a re-run would produce, wall-clock fields
//     aside.
//   - Backpressure. The pending queue is bounded; a submission that
//     finds it full is rejected with 503 and counted, never silently
//     dropped or unboundedly buffered.
//   - Observability. Queue depth, running/deduped/rejected/cache-hit
//     counts are kept in an internal metrics.Registry (names in
//     docs/METRICS.md) and exposed through GET /stats and the
//     introspection server's function-backed documents.
//
// Jobs execute one at a time in submission order on a single executor
// goroutine — within a job, sim.RunGridCtx fans cells out over its own
// worker pool — so the bounded queue is the only admission control
// needed. Progress streams to subscribers over Server-Sent Events from
// the grid's serialized progress callbacks. The full API reference,
// with request/response schemas and a curl walkthrough, is
// docs/SERVICE.md.
package service

import (
	"context"
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http"
	"sync"
	"time"

	"ladder/internal/logging"
	"ladder/internal/metrics"
	"ladder/internal/sim"
	"ladder/internal/timing"
)

// Job states, as reported in status documents and SSE events.
const (
	StateQueued   = "queued"
	StateRunning  = "running"
	StateDone     = "done"
	StateFailed   = "failed"
	StateCanceled = "canceled"
)

// Config parameterizes a Service. The zero value selects the defaults.
type Config struct {
	// QueueDepth bounds the number of jobs waiting to execute (running
	// and completed jobs do not count). A submission that finds the
	// queue full is rejected with 503. 0 = 16.
	QueueDepth int
	// CacheSize bounds the number of completed (done, failed or
	// canceled) jobs retained, LRU by completion/last-hit order. An
	// evicted job's report is forgotten; resubmitting its configuration
	// re-simulates. 0 = 64.
	CacheSize int
	// Jobs is the per-grid worker-pool width forwarded to
	// sim.Options.Jobs (0 = one worker per CPU).
	Jobs int
	// MaxInstr caps the per-core instruction budget a request may ask
	// for, bounding the cost of any one job. 0 = 10M; negative values
	// are not meaningful (validation treats the cap as disabled only if
	// you set it explicitly high).
	MaxInstr uint64
	// Tables overrides the timing tables every job simulates with
	// (nil = the full default 512×512 set). Primarily a test seam: the
	// default set takes tens of seconds to generate cold.
	Tables *timing.TableSet
	// SSEKeepalive is the comment-frame cadence on idle event streams —
	// proxies reap silent connections, so a queued job's subscribers get
	// ": keepalive" comments while nothing happens. 0 = 15s; negative
	// disables keepalives (test seam).
	SSEKeepalive time.Duration
	// Logger receives job-lifecycle records (submitted, started,
	// finished). Nil discards them; serve mode wires a JSON logger.
	Logger *slog.Logger
}

func (c *Config) applyDefaults() {
	if c.QueueDepth == 0 {
		c.QueueDepth = 16
	}
	if c.CacheSize == 0 {
		c.CacheSize = 64
	}
	if c.MaxInstr == 0 {
		c.MaxInstr = 10_000_000
	}
	if c.SSEKeepalive == 0 {
		c.SSEKeepalive = 15 * time.Second
	}
	if c.Logger == nil {
		c.Logger = logging.Discard()
	}
}

// job is the service-side record of one submitted configuration.
type job struct {
	id    string
	req   Request
	state string
	// done/total track grid-cell completion while running.
	done, total int
	errMsg      string
	report      []byte // marshaled GridReport, state done only
	dedups      uint64 // submissions that attached to this job
	cancel      context.CancelFunc
	subs        []chan []byte // SSE subscribers
	submitted   time.Time
	finished    time.Time
}

// Service is the job queue. Create with New, mount Handler on a
// listener (or the introspection server), and Close on shutdown.
type Service struct {
	cfg Config
	mux *http.ServeMux

	mu      sync.Mutex
	jobs    map[string]*job
	order   []string // submission order, for GET /jobs
	queue   chan *job
	lru     []string // completed job IDs, least recently used first
	closed  bool
	running int

	// Counters mirrored into reg; all access is under mu (the registry's
	// instruments are deliberately not atomic).
	reg *metrics.Registry

	baseCtx context.Context
	stop    context.CancelFunc
	wg      sync.WaitGroup
}

// New starts a service: the executor goroutine runs until Close.
func New(cfg Config) *Service {
	cfg.applyDefaults()
	ctx, cancel := context.WithCancel(context.Background())
	s := &Service{
		cfg:     cfg,
		jobs:    make(map[string]*job),
		queue:   make(chan *job, cfg.QueueDepth),
		reg:     metrics.NewRegistry(),
		baseCtx: ctx,
		stop:    cancel,
	}
	s.routes()
	s.wg.Add(1)
	go s.executor()
	return s
}

// Handler returns the service's HTTP API (see docs/SERVICE.md): POST
// /jobs, GET /jobs, GET /jobs/{id}, GET /jobs/{id}/report, GET
// /jobs/{id}/events, DELETE /jobs/{id}, GET /stats, GET /healthz.
func (s *Service) Handler() http.Handler { return s.mux }

// Routes lists the top-level patterns Handler serves, for mounting the
// service onto a shared mux (introspect.Server.Handle).
func (s *Service) Routes() []string {
	return []string{"/jobs", "/jobs/", "/stats", "/healthz", "/metrics/prom"}
}

// Close stops the executor and cancels any running job. Queued jobs are
// marked canceled. Close blocks until the executor goroutine exits.
func (s *Service) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		return
	}
	s.closed = true
	s.mu.Unlock()
	s.stop()
	s.wg.Wait()
}

// MetricsSnapshot freezes the service's metrics registry — the
// queue/cache/backpressure counters cataloged in docs/METRICS.md. Safe
// for concurrent use; the introspection server publishes it as a
// function-backed document.
func (s *Service) MetricsSnapshot() metrics.Snapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.reg.Gauge("service.queue.depth").Observe(float64(len(s.queue)))
	s.reg.Gauge("service.jobs.running").Observe(float64(s.running))
	return s.reg.Snapshot()
}

// Stats is the GET /stats document.
type Stats struct {
	QueueDepth int    `json:"queue_depth"`
	QueueCap   int    `json:"queue_cap"`
	Running    int    `json:"running"`
	Jobs       int    `json:"jobs"`
	Cached     int    `json:"cached"`
	Submitted  uint64 `json:"submitted"`
	Deduped    uint64 `json:"deduped"`
	Rejected   uint64 `json:"rejected"`
	CacheHits  uint64 `json:"cache_hits"`
	Completed  uint64 `json:"completed"`
	Failed     uint64 `json:"failed"`
	Canceled   uint64 `json:"canceled"`
	Evictions  uint64 `json:"cache_evictions"`
}

// StatsSnapshot builds the GET /stats document. Safe for concurrent use.
func (s *Service) StatsSnapshot() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	c := func(name string) uint64 { return s.reg.Counter(name).Value() }
	return Stats{
		QueueDepth: len(s.queue),
		QueueCap:   s.cfg.QueueDepth,
		Running:    s.running,
		Jobs:       len(s.order),
		Cached:     len(s.lru),
		Submitted:  c("service.jobs.submitted"),
		Deduped:    c("service.jobs.deduped"),
		Rejected:   c("service.jobs.rejected"),
		CacheHits:  c("service.cache.hits"),
		Completed:  c("service.jobs.completed"),
		Failed:     c("service.jobs.failed"),
		Canceled:   c("service.jobs.canceled"),
		Evictions:  c("service.cache.evictions"),
	}
}

// submitOutcome tells the HTTP layer how a submission resolved.
type submitOutcome int

const (
	outcomeNew submitOutcome = iota
	outcomeDeduped
	outcomeCached
	outcomeRejected
	outcomeClosed
)

// submit resolves a normalized request to a job: a fresh enqueue, an
// attach to an identical in-flight job, or a cache hit on a completed
// one. Rejection (full queue, closing service) returns a nil job.
func (s *Service) submit(req Request) (*job, submitOutcome) {
	id := req.id()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, outcomeClosed
	}
	if j, ok := s.jobs[id]; ok {
		switch j.state {
		case StateQueued, StateRunning:
			j.dedups++
			s.reg.Counter("service.jobs.deduped").Inc()
			return j, outcomeDeduped
		default:
			// Completed (done/failed/canceled): serve from cache and
			// refresh its LRU position.
			s.reg.Counter("service.cache.hits").Inc()
			s.touchLocked(id)
			return j, outcomeCached
		}
	}
	j := &job{id: id, req: req, state: StateQueued, submitted: time.Now()}
	select {
	case s.queue <- j:
	default:
		s.reg.Counter("service.jobs.rejected").Inc()
		return nil, outcomeRejected
	}
	s.jobs[id] = j
	s.order = append(s.order, id)
	s.reg.Counter("service.jobs.submitted").Inc()
	s.reg.Gauge("service.queue.depth").Observe(float64(len(s.queue)))
	s.cfg.Logger.Info("job queued", "job", id, "queue_depth", len(s.queue))
	return j, outcomeNew
}

// cancelJob cancels a job by ID. Queued jobs transition directly to
// canceled (the executor skips them); running jobs get their context
// canceled and transition when the grid unwinds. Completed jobs are
// left as they are (false, "already finished").
func (s *Service) cancelJob(id string) (ok bool, reason string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, exists := s.jobs[id]
	if !exists {
		return false, "unknown job"
	}
	switch j.state {
	case StateQueued:
		s.finishLocked(j, StateCanceled, "canceled before execution", nil)
		return true, ""
	case StateRunning:
		if j.cancel != nil {
			j.cancel()
		}
		return true, ""
	default:
		return false, "already finished"
	}
}

// executor drains the queue one job at a time, in submission order.
func (s *Service) executor() {
	defer s.wg.Done()
	for {
		select {
		case <-s.baseCtx.Done():
			s.drainOnClose()
			return
		case j := <-s.queue:
			s.runJob(j)
		}
	}
}

// drainOnClose marks every still-queued job canceled after Close.
func (s *Service) drainOnClose() {
	for {
		select {
		case j := <-s.queue:
			s.mu.Lock()
			if j.state == StateQueued {
				s.finishLocked(j, StateCanceled, "service shut down", nil)
			}
			s.mu.Unlock()
		default:
			return
		}
	}
}

// runJob executes one job's grid and stores the outcome.
func (s *Service) runJob(j *job) {
	ctx, cancel := context.WithCancel(s.baseCtx)
	defer cancel()

	s.mu.Lock()
	if j.state != StateQueued { // canceled while waiting
		s.mu.Unlock()
		return
	}
	j.state = StateRunning
	j.cancel = cancel
	s.running = 1
	opts, schemes := j.req.options()
	j.total = len(opts.Workloads) * len(schemes)
	s.reg.Gauge("service.jobs.running").Observe(1)
	s.broadcastLocked(j)
	s.mu.Unlock()
	s.cfg.Logger.Info("job started", "job", j.id, "cells", j.total)

	opts.Jobs = s.cfg.Jobs
	opts.Tables = s.cfg.Tables
	opts.Progress = func(p sim.GridProgress) {
		// Serialized by the grid's callback mutex; only the fields we
		// update here are touched concurrently with status reads, and
		// those reads also hold s.mu.
		s.mu.Lock()
		j.done, j.total = p.Done, p.Total
		s.broadcastLocked(j)
		s.mu.Unlock()
	}

	grid, err := sim.RunGridCtx(ctx, opts, schemes)
	var report []byte
	if err == nil {
		var gr *sim.GridReport
		if gr, err = sim.NewGridReport(grid); err == nil {
			report, err = json.MarshalIndent(gr, "", "  ")
		}
	}

	s.mu.Lock()
	s.running = 0
	s.reg.Gauge("service.jobs.running").Observe(0)
	switch {
	case err == nil:
		s.finishLocked(j, StateDone, "", report)
	case ctx.Err() != nil:
		s.finishLocked(j, StateCanceled, fmt.Sprintf("canceled: %v", err), nil)
	default:
		s.finishLocked(j, StateFailed, err.Error(), nil)
	}
	s.mu.Unlock()
}

// finishLocked moves a job to a terminal state, publishes the terminal
// event, releases subscribers, and enters the job into the completed
// LRU (possibly evicting the oldest completed job entirely). Callers
// hold s.mu.
func (s *Service) finishLocked(j *job, state, errMsg string, report []byte) {
	j.state = state
	j.errMsg = errMsg
	j.report = report
	j.finished = time.Now()
	j.cancel = nil
	switch state {
	case StateDone:
		s.reg.Counter("service.jobs.completed").Inc()
	case StateFailed:
		s.reg.Counter("service.jobs.failed").Inc()
	case StateCanceled:
		s.reg.Counter("service.jobs.canceled").Inc()
	}
	if errMsg != "" {
		s.cfg.Logger.Info("job finished", "job", j.id, "state", state,
			"elapsed", j.finished.Sub(j.submitted), "error", errMsg)
	} else {
		s.cfg.Logger.Info("job finished", "job", j.id, "state", state,
			"elapsed", j.finished.Sub(j.submitted))
	}
	s.broadcastLocked(j)
	for _, ch := range j.subs {
		close(ch)
	}
	j.subs = nil
	s.lru = append(s.lru, j.id)
	for len(s.lru) > s.cfg.CacheSize {
		evict := s.lru[0]
		s.lru = s.lru[1:]
		delete(s.jobs, evict)
		for i, id := range s.order {
			if id == evict {
				s.order = append(s.order[:i], s.order[i+1:]...)
				break
			}
		}
		s.reg.Counter("service.cache.evictions").Inc()
	}
}

// touchLocked refreshes a completed job's LRU position on a cache hit.
func (s *Service) touchLocked(id string) {
	for i, v := range s.lru {
		if v == id {
			s.lru = append(s.lru[:i], s.lru[i+1:]...)
			s.lru = append(s.lru, id)
			return
		}
	}
}

// subscribe attaches an SSE subscriber to a job and returns its channel
// plus the current status event. A terminal job returns a nil channel —
// the current event is the last one. Channel sends never block: a
// subscriber that falls more than a buffer behind loses intermediate
// progress events but always receives the terminal one (the channel is
// drained by the handler until closed).
func (s *Service) subscribe(id string) (<-chan []byte, []byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return nil, nil, false
	}
	cur := j.statusEvent()
	if j.state != StateQueued && j.state != StateRunning {
		return nil, cur, true
	}
	ch := make(chan []byte, 64)
	j.subs = append(j.subs, ch)
	return ch, cur, true
}

// broadcastLocked pushes the job's current status event to every
// subscriber. Callers hold s.mu. A full subscriber buffer drops the
// event — except terminal events, which always land because the channel
// buffer (64) exceeds any backlog a handler can leave while draining.
func (s *Service) broadcastLocked(j *job) {
	if len(j.subs) == 0 {
		return
	}
	ev := j.statusEvent()
	for _, ch := range j.subs {
		select {
		case ch <- ev:
		default:
		}
	}
}

// Status is the job document served by GET /jobs/{id} and streamed over
// SSE. Terminal states carry either ReportURL (done) or Error.
type Status struct {
	ID        string  `json:"id"`
	State     string  `json:"state"`
	Done      int     `json:"done"`
	Total     int     `json:"total"`
	Dedups    uint64  `json:"dedups"`
	Error     string  `json:"error,omitempty"`
	ReportURL string  `json:"report_url,omitempty"`
	Request   Request `json:"request"`
}

// statusLocked freezes a job's Status. Callers hold s.mu (or own the
// job exclusively).
func (j *job) statusLocked() Status {
	st := Status{
		ID:      j.id,
		State:   j.state,
		Done:    j.done,
		Total:   j.total,
		Dedups:  j.dedups,
		Error:   j.errMsg,
		Request: j.req,
	}
	if j.state == StateDone {
		st.ReportURL = "/jobs/" + j.id + "/report"
	}
	return st
}

// statusEvent marshals the job's status for SSE delivery.
func (j *job) statusEvent() []byte {
	b, err := json.Marshal(j.statusLocked())
	if err != nil {
		// Status is plain data; Marshal cannot fail on it.
		panic(fmt.Sprintf("service: marshaling status: %v", err))
	}
	return b
}
