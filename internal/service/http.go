package service

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"ladder/internal/metrics"
)

// routes builds the API mux. Patterns use Go 1.22 method matching, so a
// wrong method on a known path yields 405 from the mux itself.
func (s *Service) routes() {
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /jobs", s.handleSubmit)
	s.mux.HandleFunc("GET /jobs", s.handleList)
	s.mux.HandleFunc("GET /jobs/{id}", s.handleStatus)
	s.mux.HandleFunc("DELETE /jobs/{id}", s.handleCancel)
	s.mux.HandleFunc("GET /jobs/{id}/report", s.handleReport)
	s.mux.HandleFunc("GET /jobs/{id}/events", s.handleEvents)
	s.mux.HandleFunc("GET /stats", s.handleStats)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /readyz", s.handleReadyz)
	s.mux.HandleFunc("GET /metrics/prom", s.handleProm)
}

// writeJSON emits one API response document.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // best-effort response body
}

// apiError is the uniform error document.
type apiError struct {
	Error string `json:"error"`
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, apiError{Error: fmt.Sprintf(format, args...)})
}

// submitResponse wraps a Status with how the submission resolved, so
// clients can tell a fresh enqueue from a dedup or a cache hit.
type submitResponse struct {
	Status
	// Outcome is "accepted", "deduplicated", "cached" or "resubmitted"
	// (a canceled or crashed job returned to the queue).
	Outcome string `json:"outcome"`
}

// handleSubmit implements POST /jobs.
func (s *Service) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req Request
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "decoding request: %v", err)
		return
	}
	if err := req.normalize(s.cfg.MaxInstr); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	j, outcome := s.submit(req)
	switch outcome {
	case outcomeRejected:
		w.Header().Set("Retry-After", "5")
		writeError(w, http.StatusServiceUnavailable, "queue full (%d pending); retry later", s.cfg.QueueDepth)
		return
	case outcomeClosed:
		writeError(w, http.StatusServiceUnavailable, "service shutting down")
		return
	}
	s.mu.Lock()
	resp := submitResponse{Status: j.statusLocked()}
	s.mu.Unlock()
	code := http.StatusAccepted
	switch outcome {
	case outcomeNew:
		resp.Outcome = "accepted"
	case outcomeResubmitted:
		resp.Outcome = "resubmitted"
	case outcomeDeduped:
		resp.Outcome = "deduplicated"
	case outcomeCached:
		resp.Outcome = "cached"
		code = http.StatusOK
	}
	writeJSON(w, code, resp)
}

// handleList implements GET /jobs: every retained job in submission
// order.
func (s *Service) handleList(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	out := make([]Status, 0, len(s.order))
	for _, id := range s.order {
		if j, ok := s.jobs[id]; ok {
			out = append(out, j.statusLocked())
		}
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, out)
}

// handleStatus implements GET /jobs/{id}.
func (s *Service) handleStatus(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.mu.Lock()
	j, ok := s.jobs[id]
	var st Status
	if ok {
		st = j.statusLocked()
	}
	s.mu.Unlock()
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job %q", id)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

// handleCancel implements DELETE /jobs/{id}.
func (s *Service) handleCancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	ok, reason := s.cancelJob(id)
	if !ok {
		code := http.StatusConflict
		if reason == "unknown job" {
			code = http.StatusNotFound
		}
		writeError(w, code, "cannot cancel %q: %s", id, reason)
		return
	}
	writeJSON(w, http.StatusAccepted, map[string]string{"canceled": id})
}

// handleReport implements GET /jobs/{id}/report: the completed grid
// report, byte-identical on every request (served from the cache).
func (s *Service) handleReport(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.mu.Lock()
	j, ok := s.jobs[id]
	var state string
	var report []byte
	if ok {
		state, report = j.state, j.report
	}
	s.mu.Unlock()
	switch {
	case !ok:
		writeError(w, http.StatusNotFound, "unknown job %q", id)
	case state == StateFailed || state == StateCanceled:
		writeError(w, http.StatusGone, "job %q terminated without a report (%s)", id, state)
	case report == nil:
		writeError(w, http.StatusConflict, "job %q has not completed (state %s)", id, state)
	default:
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("Content-Length", strconv.Itoa(len(report)))
		w.Write(report) //nolint:errcheck // best-effort response body
	}
}

// handleEvents implements GET /jobs/{id}/events: a Server-Sent Events
// stream of Status documents — the current state immediately, then one
// event per grid-cell completion and state transition, ending with the
// terminal event. Every frame carries an "id:" field (the job's event
// sequence); a client reconnecting with the standard Last-Event-ID
// header skips the initial frame if it already saw it. Slow consumers
// may miss intermediate progress events (the per-subscriber buffer is
// bounded) but always see the terminal state.
func (s *Service) handleEvents(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	ch, cur, ok := s.subscribe(id)
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job %q", id)
		return
	}
	var after uint64
	resuming := false
	if v := r.Header.Get("Last-Event-ID"); v != "" {
		// A malformed ID is treated as absent: the client starts fresh.
		if n, err := strconv.ParseUint(v, 10, 64); err == nil {
			after, resuming = n, true
		}
	}
	fl, canFlush := w.(http.Flusher)
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-store")
	send := func(ev jobEvent) {
		fmt.Fprintf(w, "id: %d\ndata: %s\n\n", ev.id, ev.body)
		if canFlush {
			fl.Flush()
		}
	}
	if !resuming || cur.id > after {
		// Fresh clients always get the current snapshot; a resuming client
		// skips it if its Last-Event-ID shows it already saw this state.
		send(cur)
	} else if canFlush {
		// Nothing new yet: commit the stream headers so the client knows
		// the resume was accepted.
		fl.Flush()
	}
	if ch == nil { // already terminal: the current event was the last
		return
	}
	// Keepalive comments hold the connection open through idle stretches
	// (a queued job can sit silent for minutes; proxies reap quiet
	// streams). Comment frames are invisible to EventSource clients.
	var keep <-chan time.Time
	if s.cfg.SSEKeepalive > 0 {
		t := time.NewTicker(s.cfg.SSEKeepalive)
		defer t.Stop()
		keep = t.C
	}
	for {
		select {
		case <-r.Context().Done():
			return
		case ev, open := <-ch:
			if !open {
				return
			}
			send(ev)
		case <-keep:
			fmt.Fprint(w, ": keepalive\n\n")
			if canFlush {
				fl.Flush()
			}
		}
	}
}

// handleStats implements GET /stats.
func (s *Service) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.StatsSnapshot())
}

// handleHealthz implements GET /healthz.
func (s *Service) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

// Readiness is the GET /readyz document.
type Readiness struct {
	Ready bool `json:"ready"`
	// Draining is set once Close has begun: the service no longer
	// accepts submissions.
	Draining bool `json:"draining,omitempty"`
	// StoreError carries the durable store's sticky first write failure.
	// The service keeps serving from memory (liveness is unaffected),
	// but readiness degrades so orchestrators can rotate the instance.
	StoreError string `json:"store_error,omitempty"`
	StateDir   string `json:"state_dir,omitempty"`
}

// handleReadyz implements GET /readyz: 200 while the service accepts
// work and its durable store (if configured) is healthy, 503 otherwise.
// Distinct from /healthz (pure liveness): a service with a broken state
// disk is alive but not ready.
func (s *Service) handleReadyz(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	doc := Readiness{Draining: s.closed, StateDir: s.store.Dir()}
	s.mu.Unlock()
	if err := s.store.Err(); err != nil {
		doc.StoreError = err.Error()
	}
	doc.Ready = !doc.Draining && doc.StoreError == ""
	code := http.StatusOK
	if !doc.Ready {
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, doc)
}

// handleProm implements GET /metrics/prom: the service's registry in
// the Prometheus text exposition format, plus one labeled progress
// series per retained job (the job ID is the label, so a scraper can
// chart each sweep's cell completion individually).
func (s *Service) handleProm(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	s.reg.Gauge("service.queue.depth").Observe(float64(len(s.queue)))
	s.reg.Gauge("service.jobs.running").Observe(float64(s.running))
	snap := s.reg.Snapshot()
	var extra []metrics.PromSample
	for _, id := range s.order {
		j, ok := s.jobs[id]
		if !ok {
			continue
		}
		extra = append(extra,
			metrics.PromSample{
				Name: "service.job.cells_done", Type: "gauge",
				Help:  "grid cells completed, by job ID",
				Value: float64(j.done),
				Labels: []metrics.PromLabel{
					{Name: "job", Value: id}, {Name: "state", Value: j.state},
				},
			},
			metrics.PromSample{
				Name: "service.job.cells", Type: "gauge",
				Help:  "grid cells total, by job ID",
				Value: float64(j.total),
				Labels: []metrics.PromLabel{
					{Name: "job", Value: id}, {Name: "state", Value: j.state},
				},
			})
	}
	s.mu.Unlock()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	//nolint:errcheck // best-effort response body
	metrics.WritePrometheus(w, snap, nil, extra...)
}
