package service

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"ladder/internal/circuit"
	"ladder/internal/metrics"
	"ladder/internal/sim"
	"ladder/internal/timing"
)

var (
	tablesOnce sync.Once
	testTables *timing.TableSet
	tablesErr  error
)

// smallTables builds a 128×128 table set once so service tests avoid the
// full 512×512 generation (tens of seconds cold).
func smallTables(t *testing.T) *timing.TableSet {
	t.Helper()
	tablesOnce.Do(func() {
		p := circuit.DefaultParams()
		p.N = 128
		testTables, tablesErr = timing.NewTableSet(p)
	})
	if tablesErr != nil {
		t.Fatal(tablesErr)
	}
	return testTables
}

// newTestService starts a live service (executor running) behind an
// httptest listener.
func newTestService(t *testing.T, cfg Config) (*Service, *httptest.Server) {
	t.Helper()
	cfg.Tables = smallTables(t)
	svc, err := New(cfg)
	if err != nil {
		t.Fatalf("starting service: %v", err)
	}
	ts := httptest.NewServer(svc.Handler())
	t.Cleanup(func() {
		ts.Close()
		svc.Close()
	})
	return svc, ts
}

// newIdleService builds a service whose executor never runs, so queued
// jobs stay queued: the deterministic fixture for dedup, backpressure
// and cancel-while-queued handler tests.
func newIdleService(t *testing.T, cfg Config) (*Service, *httptest.Server) {
	t.Helper()
	cfg.applyDefaults()
	ctx, cancel := context.WithCancel(context.Background())
	s := &Service{
		cfg:          cfg,
		abandonGrace: abandonGraceDefault,
		jobs:         make(map[string]*job),
		queue:        make(chan *job, cfg.QueueDepth),
		reg:          metrics.NewRegistry(),
		baseCtx:      ctx,
		stop:         cancel,
	}
	s.routes()
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		cancel()
	})
	return s, ts
}

func postJob(t *testing.T, url, body string) (*http.Response, submitResponse) {
	t.Helper()
	resp, err := http.Post(url+"/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST /jobs: %v", err)
	}
	defer resp.Body.Close()
	var sr submitResponse
	if resp.StatusCode < 300 {
		if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
			t.Fatalf("decoding submit response: %v", err)
		}
	}
	return resp, sr
}

func TestSubmitValidation(t *testing.T) {
	_, ts := newIdleService(t, Config{MaxInstr: 10_000})
	cases := []struct {
		name, body, wantErr string
	}{
		{"malformed JSON", `{"workloads": [`, "decoding request"},
		{"unknown field", `{"workloads":["astar"],"schemes":["Baseline"],"bogus":1}`, "bogus"},
		{"no workloads", `{"schemes":["Baseline"]}`, "at least one workload"},
		{"no schemes", `{"workloads":["astar"]}`, "at least one scheme"},
		{"unknown workload", `{"workloads":["nope"],"schemes":["Baseline"]}`, `unknown workload "nope"`},
		{"unknown scheme", `{"workloads":["astar"],"schemes":["nope"]}`, `unknown scheme "nope"`},
		{"instr over cap", `{"workloads":["astar"],"schemes":["Baseline"],"instr":20000}`, "budget cap"},
		{"negative retry_max", `{"workloads":["astar"],"schemes":["Baseline"],"retry_max":-1}`, "retry_max"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			resp, _ := postJob(t, ts.URL, c.body)
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("status = %d, want 400", resp.StatusCode)
			}
		})
	}
}

func TestUnknownJobIs404(t *testing.T) {
	_, ts := newIdleService(t, Config{})
	for _, tc := range []struct{ method, path string }{
		{"GET", "/jobs/deadbeef"},
		{"GET", "/jobs/deadbeef/report"},
		{"GET", "/jobs/deadbeef/events"},
		{"DELETE", "/jobs/deadbeef"},
	} {
		req, _ := http.NewRequest(tc.method, ts.URL+tc.path, nil)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatalf("%s %s: %v", tc.method, tc.path, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("%s %s = %d, want 404", tc.method, tc.path, resp.StatusCode)
		}
	}
}

// TestDedupAndBackpressure drives the idle service: with a queue of one,
// the first configuration is accepted, a resubmission (in a different
// scheme spelling) dedupes onto it, and a second configuration is
// rejected with 503.
func TestDedupAndBackpressure(t *testing.T) {
	svc, ts := newIdleService(t, Config{QueueDepth: 1})

	resp, first := postJob(t, ts.URL, `{"workloads":["astar"],"schemes":["LADDER-Hybrid"]}`)
	if resp.StatusCode != http.StatusAccepted || first.Outcome != "accepted" {
		t.Fatalf("first submit = %d/%q, want 202/accepted", resp.StatusCode, first.Outcome)
	}
	if first.State != StateQueued {
		t.Fatalf("first submit state = %q, want queued", first.State)
	}

	// Same configuration, different spelling and explicit default instr:
	// normalization makes these hash-identical.
	resp, dup := postJob(t, ts.URL, `{"workloads":["astar"],"schemes":["ladder-hybrid"],"instr":200000}`)
	if resp.StatusCode != http.StatusAccepted || dup.Outcome != "deduplicated" {
		t.Fatalf("duplicate submit = %d/%q, want 202/deduplicated", resp.StatusCode, dup.Outcome)
	}
	if dup.ID != first.ID {
		t.Fatalf("duplicate got its own job: %q vs %q", dup.ID, first.ID)
	}

	// A different configuration finds the single queue slot taken.
	resp, _ = postJob(t, ts.URL, `{"workloads":["lbm"],"schemes":["Baseline"]}`)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("over-capacity submit = %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("503 without Retry-After")
	}

	st := svc.StatsSnapshot()
	if st.Submitted != 1 || st.Deduped != 1 || st.Rejected != 1 {
		t.Fatalf("stats = submitted %d deduped %d rejected %d, want 1/1/1", st.Submitted, st.Deduped, st.Rejected)
	}
}

func TestCancelQueuedJob(t *testing.T) {
	svc, ts := newIdleService(t, Config{})
	_, sub := postJob(t, ts.URL, `{"workloads":["astar"],"schemes":["Baseline"]}`)

	req, _ := http.NewRequest("DELETE", ts.URL+"/jobs/"+sub.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("cancel = %d, want 202", resp.StatusCode)
	}

	// Now terminal: status shows canceled, the report is 410 Gone, and a
	// second cancel conflicts.
	var st Status
	getJSON(t, ts.URL+"/jobs/"+sub.ID, &st)
	if st.State != StateCanceled {
		t.Fatalf("state after cancel = %q, want canceled", st.State)
	}
	if code := getStatusCode(t, ts.URL+"/jobs/"+sub.ID+"/report"); code != http.StatusGone {
		t.Fatalf("report after cancel = %d, want 410", code)
	}
	req, _ = http.NewRequest("DELETE", ts.URL+"/jobs/"+sub.ID, nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("second cancel = %d, want 409", resp.StatusCode)
	}
	if got := svc.StatsSnapshot().Canceled; got != 1 {
		t.Fatalf("canceled counter = %d, want 1", got)
	}
}

// TestCacheEviction exercises the LRU bound directly: with CacheSize 1,
// finishing a second job forgets the first entirely.
func TestCacheEviction(t *testing.T) {
	svc, _ := newIdleService(t, Config{CacheSize: 1})
	a := &job{id: "job-a", state: StateQueued}
	b := &job{id: "job-b", state: StateQueued}
	svc.mu.Lock()
	svc.jobs["job-a"], svc.jobs["job-b"] = a, b
	svc.order = []string{"job-a", "job-b"}
	svc.finishLocked(a, StateDone, "", []byte("{}"), false)
	svc.finishLocked(b, StateDone, "", []byte("{}"), false)
	svc.mu.Unlock()

	st := svc.StatsSnapshot()
	if st.Evictions != 1 || st.Cached != 1 {
		t.Fatalf("evictions %d cached %d, want 1/1", st.Evictions, st.Cached)
	}
	svc.mu.Lock()
	_, aLives := svc.jobs["job-a"]
	_, bLives := svc.jobs["job-b"]
	svc.mu.Unlock()
	if aLives || !bLives {
		t.Fatalf("LRU kept the wrong job: a=%v b=%v", aLives, bLives)
	}
}

// TestEndToEndRoundTrip is the full lifecycle against a live service:
// submit, watch it run to completion, fetch the byte-stable report, and
// hit the cache by resubmitting.
func TestEndToEndRoundTrip(t *testing.T) {
	svc, ts := newTestService(t, Config{})
	body := `{"workloads":["astar"],"schemes":["LADDER-Hybrid"],"instr":2000,"seed":7}`
	resp, sub := postJob(t, ts.URL, body)
	if resp.StatusCode != http.StatusAccepted || sub.Outcome != "accepted" {
		t.Fatalf("submit = %d/%q, want 202/accepted", resp.StatusCode, sub.Outcome)
	}

	var st Status
	deadline := time.Now().Add(60 * time.Second)
	for {
		getJSON(t, ts.URL+"/jobs/"+sub.ID, &st)
		if st.State == StateDone {
			break
		}
		if st.State == StateFailed || st.State == StateCanceled {
			t.Fatalf("job ended %s: %s", st.State, st.Error)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in state %s (%d/%d cells)", st.State, st.Done, st.Total)
		}
		time.Sleep(20 * time.Millisecond)
	}
	if st.Done != 1 || st.Total != 1 || st.ReportURL == "" {
		t.Fatalf("terminal status incomplete: %+v", st)
	}

	report := getBody(t, ts.URL+st.ReportURL)
	var gr struct {
		Schema string `json:"schema"`
		Cells  []struct {
			Workload string `json:"workload"`
			Scheme   string `json:"scheme"`
		} `json:"cells"`
	}
	if err := json.Unmarshal(report, &gr); err != nil {
		t.Fatalf("report is not JSON: %v", err)
	}
	if gr.Schema != sim.GridReportSchema {
		t.Fatalf("report schema = %q, want %q", gr.Schema, sim.GridReportSchema)
	}
	if len(gr.Cells) != 1 || gr.Cells[0].Workload != "astar" || gr.Cells[0].Scheme != "LADDER-Hybrid" {
		t.Fatalf("unexpected cells: %+v", gr.Cells)
	}
	if again := getBody(t, ts.URL+st.ReportURL); !bytes.Equal(report, again) {
		t.Fatal("report not byte-identical across fetches")
	}

	// Resubmitting the finished configuration is a cache hit, not a rerun.
	resp, hit := postJob(t, ts.URL, body)
	if resp.StatusCode != http.StatusOK || hit.Outcome != "cached" {
		t.Fatalf("resubmit = %d/%q, want 200/cached", resp.StatusCode, hit.Outcome)
	}
	if hit.ID != sub.ID {
		t.Fatalf("cache hit changed the job ID: %q vs %q", hit.ID, sub.ID)
	}

	// The SSE stream of a terminal job delivers exactly the final status,
	// id-stamped so reconnecting clients can resume with Last-Event-ID.
	events := getBody(t, ts.URL+"/jobs/"+sub.ID+"/events")
	if !strings.HasPrefix(string(events), "id: ") || !strings.Contains(string(events), "\ndata: ") ||
		!strings.Contains(string(events), `"state":"done"`) {
		t.Fatalf("terminal SSE stream malformed: %q", events)
	}

	stats := svc.StatsSnapshot()
	if stats.Submitted != 1 || stats.Completed != 1 || stats.CacheHits != 1 {
		t.Fatalf("stats = submitted %d completed %d cache_hits %d, want 1/1/1", stats.Submitted, stats.Completed, stats.CacheHits)
	}
	snap := svc.MetricsSnapshot()
	if snap.Counters["service.jobs.completed"] != 1 {
		t.Fatalf("metrics snapshot missing service.jobs.completed: %v", snap.Counters)
	}
}

// TestRequestNormalizationHashing pins the dedup key: spelling variants
// and implicit defaults hash identically; different configurations do
// not.
func TestRequestNormalizationHashing(t *testing.T) {
	id := func(req Request) string {
		t.Helper()
		if err := req.normalize(0); err != nil {
			t.Fatalf("normalize(%+v): %v", req, err)
		}
		return req.id()
	}
	base := id(Request{Workloads: []string{"astar"}, Schemes: []string{"LADDER-Hybrid"}})
	if got := id(Request{Workloads: []string{"astar"}, Schemes: []string{"ladder-hybrid"}, Instr: DefaultInstr}); got != base {
		t.Fatal("scheme spelling and explicit default instr should not change the job ID")
	}
	if got := id(Request{Workloads: []string{"astar"}, Schemes: []string{"LADDER-Hybrid"}, Seed: 1}); got == base {
		t.Fatal("different seed must produce a different job ID")
	}
}

func getJSON(t *testing.T, url string, v any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("GET %s = %d: %s", url, resp.StatusCode, b)
	}
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatalf("decoding %s: %v", url, err)
	}
}

func getBody(t *testing.T, url string) []byte {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("reading %s: %v", url, err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s = %d: %s", url, resp.StatusCode, b)
	}
	return b
}

func getStatusCode(t *testing.T, url string) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	resp.Body.Close()
	return resp.StatusCode
}
