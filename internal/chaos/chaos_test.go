package chaos

import (
	"errors"
	"testing"
	"time"
)

func TestDisarmedHitIsFreeAndUncounted(t *testing.T) {
	Reset()
	if err := Hit("nobody.armed"); err != nil {
		t.Fatalf("disarmed Hit = %v, want nil", err)
	}
	if got := Hits("nobody.armed"); got != 0 {
		t.Fatalf("disarmed hits counted: %d", got)
	}
}

func TestArmedErrorAndCounting(t *testing.T) {
	Reset()
	defer Reset()
	boom := errors.New("disk full")
	Arm("store.append", Action{Err: boom})
	for i := 0; i < 3; i++ {
		if err := Hit("store.append"); !errors.Is(err, boom) {
			t.Fatalf("hit %d = %v, want %v", i, err, boom)
		}
	}
	if got := Hits("store.append"); got != 3 {
		t.Fatalf("hits = %d, want 3", got)
	}
	Disarm("store.append")
	if err := Hit("store.append"); err != nil {
		t.Fatalf("after disarm = %v, want nil", err)
	}
}

func TestTimesSelfDisarms(t *testing.T) {
	Reset()
	defer Reset()
	boom := errors.New("transient")
	Arm("store.append", Action{Err: boom, Times: 2})
	if err := Hit("store.append"); !errors.Is(err, boom) {
		t.Fatal("first hit should fail")
	}
	if err := Hit("store.append"); !errors.Is(err, boom) {
		t.Fatal("second hit should fail")
	}
	if err := Hit("store.append"); err != nil {
		t.Fatalf("third hit = %v, want healed (nil)", err)
	}
}

func TestPanicAction(t *testing.T) {
	Reset()
	defer Reset()
	Arm("scheme.enqueue", Action{Panic: "injected scheme bug"})
	defer func() {
		if r := recover(); r != "injected scheme bug" {
			t.Fatalf("recover() = %v, want the injected value", r)
		}
	}()
	Hit("scheme.enqueue") //nolint:errcheck // panics
	t.Fatal("Hit should have panicked")
}

func TestDelayAction(t *testing.T) {
	Reset()
	defer Reset()
	Arm("job.run", Action{Delay: 30 * time.Millisecond})
	start := time.Now()
	if err := Hit("job.run"); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 30*time.Millisecond {
		t.Fatalf("Hit returned after %v, want >= 30ms", d)
	}
}

func TestConcurrentHitsWithArmDisarm(t *testing.T) {
	Reset()
	defer Reset()
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 200; i++ {
			Arm("racy", Action{Err: errors.New("x")})
			Disarm("racy")
		}
	}()
	for i := 0; i < 2000; i++ {
		Hit("racy") //nolint:errcheck // either outcome is valid mid-race
	}
	<-done
}
