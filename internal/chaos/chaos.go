// Package chaos is the in-tree fault-injection harness for robustness
// tests: named failpoints compiled into production code paths that cost
// one atomic load when nothing is armed, and inject errors, panics or
// delays when a test arms them.
//
// A failpoint is a string name at a call site — "service.journal.append",
// "service.job.run" — hit via Hit (error injection, delays) or Check
// (pure observation). Tests arm actions against names:
//
//	chaos.Arm("service.journal.append", chaos.Action{Err: errDiskFull})
//	defer chaos.Reset()
//
// and the next Hit at that site returns errDiskFull instead of nil. An
// Action can instead Panic (exercising recover paths) or Delay
// (simulating a stalled dependency so watchdogs fire). Times bounds how
// many hits trigger before the failpoint disarms itself, so "fail the
// second append, then heal" scenarios need no test-side choreography.
//
// The registry is global and process-wide, like the failpoint packages
// this models (etcd's gofail, FreeBSD's fail(9)): chaos is for tests
// that own the process. Arm/Disarm/Reset are safe for concurrent use
// with Hit, and Hits reports how many times a site triggered, armed or
// not, so tests can assert a path was actually exercised.
package chaos

import (
	"sync"
	"sync/atomic"
	"time"
)

// Action describes what an armed failpoint does when hit. Exactly the
// set fields apply; a zero Action is a no-op that still counts hits.
type Action struct {
	// Err is returned from Hit (after any Delay).
	Err error
	// Panic, when non-nil, is panicked with from inside Hit — the armed
	// site fails the way a real bug would, stack and all.
	Panic any
	// Delay blocks Hit for the duration before anything else: a slow
	// disk, a stuck scheme, a wedged dependency. Delays do not respond
	// to contexts by design — a genuinely stuck callee would not either.
	Delay time.Duration
	// Times bounds how many hits trigger this action before the
	// failpoint disarms itself (0 = every hit until Disarm).
	Times int
}

// failpoint is one armed site plus its hit accounting.
type failpoint struct {
	act  Action
	left int // remaining triggers when act.Times > 0
}

var reg = struct {
	sync.Mutex
	armed map[string]*failpoint
	hits  map[string]uint64
}{armed: make(map[string]*failpoint), hits: make(map[string]uint64)}

// active is the fast-path gate: zero while nothing is armed, so a Hit
// on the production path is a single atomic load plus a branch.
var active atomic.Int32

// Arm installs an action at a named failpoint, replacing any previous
// action there.
func Arm(name string, a Action) {
	reg.Lock()
	defer reg.Unlock()
	if _, dup := reg.armed[name]; !dup {
		active.Add(1)
	}
	reg.armed[name] = &failpoint{act: a, left: a.Times}
}

// Disarm removes a failpoint's action. Hit counts are preserved.
func Disarm(name string) {
	reg.Lock()
	defer reg.Unlock()
	if _, ok := reg.armed[name]; ok {
		delete(reg.armed, name)
		active.Add(-1)
	}
}

// Reset disarms every failpoint and zeroes all hit counters — the
// deferred cleanup for any test that arms chaos.
func Reset() {
	reg.Lock()
	defer reg.Unlock()
	active.Add(-int32(len(reg.armed)))
	reg.armed = make(map[string]*failpoint)
	reg.hits = make(map[string]uint64)
}

// Hits reports how many times a named site was hit (armed or not).
func Hits(name string) uint64 {
	reg.Lock()
	defer reg.Unlock()
	return reg.hits[name]
}

// Hit marks one pass through a named failpoint. Disarmed — the
// production case — it counts nothing and returns nil at the cost of
// one atomic load. Armed, it counts the hit and applies the action:
// sleep Delay, panic with Panic, or return Err.
func Hit(name string) error {
	if active.Load() == 0 {
		return nil
	}
	reg.Lock()
	reg.hits[name]++
	fp := reg.armed[name]
	if fp == nil {
		reg.Unlock()
		return nil
	}
	act := fp.act
	if act.Times > 0 {
		fp.left--
		if fp.left <= 0 {
			delete(reg.armed, name)
			active.Add(-1)
		}
	}
	reg.Unlock()
	if act.Delay > 0 {
		time.Sleep(act.Delay)
	}
	if act.Panic != nil {
		panic(act.Panic)
	}
	return act.Err
}
