package main

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strings"
	"text/tabwriter"

	"ladder/internal/sim"
)

// speedMetric is the ratcheted headline number: retired instructions per
// wall-clock second. Anchors missing it are malformed — the ratchet has
// nothing to enforce.
const speedMetric = "instr_per_sec"

// Anchor is one committed BENCH_*.json file: the workload/scheme
// configuration to replay and the speed number the fresh run must not
// regress past.
type Anchor struct {
	Path string
	Doc  sim.BenchReport
}

// LoadAnchor reads and validates one committed bench snapshot. Errors
// cover the cases the ratchet must fail loudly on rather than silently
// skip: a missing file, malformed JSON, an unrecognized schema, and a
// snapshot without a usable speed metric.
func LoadAnchor(path string) (Anchor, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return Anchor{}, fmt.Errorf("benchratchet: reading anchor: %w", err)
	}
	var doc sim.BenchReport
	if err := json.Unmarshal(raw, &doc); err != nil {
		return Anchor{}, fmt.Errorf("benchratchet: anchor %s: malformed JSON: %w", path, err)
	}
	if doc.Schema != sim.BenchSchema {
		return Anchor{}, fmt.Errorf("benchratchet: anchor %s: schema %q, want %q", path, doc.Schema, sim.BenchSchema)
	}
	if doc.Workload == "" || doc.Scheme == "" {
		return Anchor{}, fmt.Errorf("benchratchet: anchor %s: missing workload/scheme", path)
	}
	if ips := doc.Metrics[speedMetric]; ips <= 0 {
		return Anchor{}, fmt.Errorf("benchratchet: anchor %s: missing or non-positive %s", path, speedMetric)
	}
	return Anchor{Path: path, Doc: doc}, nil
}

// Verdict classifies one anchor-vs-fresh comparison.
type Verdict int

const (
	// VerdictOK: within the regression threshold of the anchor.
	VerdictOK Verdict = iota
	// VerdictImproved: faster than the anchor by more than the threshold —
	// the anchor is stale and worth refreshing to ratchet the floor up.
	VerdictImproved
	// VerdictRegression: slower than the anchor by more than the
	// threshold. Fails the run.
	VerdictRegression
)

// String returns the verdict's table label.
func (v Verdict) String() string {
	switch v {
	case VerdictOK:
		return "ok"
	case VerdictImproved:
		return "improved (refresh anchor)"
	case VerdictRegression:
		return "REGRESSION"
	}
	return "unknown"
}

// Comparison is one row of the trajectory table.
type Comparison struct {
	Name      string
	AnchorIPS float64
	FreshIPS  float64
	// Ratio is fresh/anchor: >1 is faster than the committed floor.
	Ratio   float64
	Verdict Verdict
}

// Compare judges a fresh speed measurement against its anchor. threshold
// is the fractional regression budget (0.10 = fail below 90% of the
// anchor); the same margin upward marks the anchor stale.
func Compare(name string, anchorIPS, freshIPS, threshold float64) Comparison {
	c := Comparison{
		Name:      name,
		AnchorIPS: anchorIPS,
		FreshIPS:  freshIPS,
		Ratio:     freshIPS / anchorIPS,
	}
	switch {
	case c.Ratio < 1-threshold:
		c.Verdict = VerdictRegression
	case c.Ratio > 1+threshold:
		c.Verdict = VerdictImproved
	}
	return c
}

// AnyRegression reports whether the run must fail.
func AnyRegression(cs []Comparison) bool {
	for _, c := range cs {
		if c.Verdict == VerdictRegression {
			return true
		}
	}
	return false
}

// TrajectoryTable renders the comparisons as the aligned table the CI
// log shows, sorted by name for stable output.
func TrajectoryTable(cs []Comparison) string {
	sorted := append([]Comparison(nil), cs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Name < sorted[j].Name })
	var b strings.Builder
	tw := tabwriter.NewWriter(&b, 2, 0, 2, ' ', 0)
	fmt.Fprintln(tw, "anchor\tcommitted instr/s\tfresh instr/s\tratio\tverdict")
	for _, c := range sorted {
		fmt.Fprintf(tw, "%s\t%.0f\t%.0f\t%.2fx\t%s\n",
			c.Name, c.AnchorIPS, c.FreshIPS, c.Ratio, c.Verdict)
	}
	tw.Flush()
	return b.String()
}
