// Command benchratchet enforces the repo's speed trend. It replays the
// configuration of every committed BENCH_*.json anchor (workload ×
// scheme at the anchors' fixed seed and instruction count), measures
// fresh ladder.bench/v1 snapshots, and compares instr_per_sec against
// the committed numbers: any anchor regressing by more than -threshold
// fails the run with a nonzero exit, otherwise the trajectory table is
// printed. CI runs this as the bench-ratchet job and uploads the fresh
// snapshots as artifacts (see docs/PERFORMANCE.md for the anchor-update
// policy).
//
// Usage:
//
//	benchratchet                  # compare against BENCH_*.json in the repo root
//	benchratchet -out /tmp/fresh  # additionally write fresh snapshots there
//	benchratchet -update          # rewrite the anchors in place (post-campaign refresh)
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"

	"ladder"
	"ladder/internal/sim"
)

func main() {
	var (
		anchors   = flag.String("anchors", "BENCH_*.json", "glob of committed anchor snapshots")
		threshold = flag.Float64("threshold", 0.10, "fractional regression budget (0.10 = fail below 90% of the anchor)")
		runs      = flag.Int("runs", 3, "measured runs per anchor; the fastest counts (damps scheduler noise)")
		instr     = flag.Uint64("instr", 0, "instructions per core (0 = each anchor's own instructions_retired, so replays match the committed scale)")
		seed      = flag.Int64("seed", 42, "simulation seed (matches the committed anchors)")
		outDir    = flag.String("out", "", "write fresh snapshots into this directory (created if missing)")
		update    = flag.Bool("update", false, "rewrite the anchor files in place with the fresh numbers")
		label     = flag.String("label", "", "free-form provenance label stamped into fresh snapshots (e.g. the CI runner class)")
	)
	flag.Parse()
	if err := run(*anchors, *threshold, *runs, *instr, *seed, *outDir, *update, *label); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run(glob string, threshold float64, runs int, instr uint64, seed int64, outDir string, update bool, label string) error {
	paths, err := filepath.Glob(glob)
	if err != nil {
		return fmt.Errorf("benchratchet: bad -anchors glob: %w", err)
	}
	if len(paths) == 0 {
		return fmt.Errorf("benchratchet: no anchors match %q — nothing to ratchet", glob)
	}
	if runs < 1 {
		runs = 1
	}
	if outDir != "" {
		if err := os.MkdirAll(outDir, 0o755); err != nil {
			return fmt.Errorf("benchratchet: %w", err)
		}
	}

	var comparisons []Comparison
	for _, path := range paths {
		anchor, err := LoadAnchor(path)
		if err != nil {
			return err
		}
		fresh, err := measure(anchor, runs, instr, seed, label)
		if err != nil {
			return err
		}
		comparisons = append(comparisons, Compare(
			anchor.Doc.Name,
			anchor.Doc.Metrics[speedMetric],
			fresh.Metrics[speedMetric],
			threshold,
		))
		if outDir != "" {
			dst := filepath.Join(outDir, filepath.Base(path))
			if err := writeBench(dst, fresh); err != nil {
				return err
			}
		}
		if update {
			if err := writeBench(path, fresh); err != nil {
				return err
			}
			fmt.Printf("refreshed %s\n", path)
		}
	}

	fmt.Print(TrajectoryTable(comparisons))
	if AnyRegression(comparisons) {
		return fmt.Errorf("benchratchet: speed regression beyond %.0f%% budget (see table above)", threshold*100)
	}
	return nil
}

// measure replays one anchor's configuration: a warm-up run (timing
// tables, page cache) followed by `runs` measured runs, keeping the
// fastest snapshot — the ratchet compares capability, not scheduler
// luck, and a conservative fresh number only ever under-fails.
func measure(a Anchor, runs int, instr uint64, seed int64, label string) (*sim.BenchReport, error) {
	if instr == 0 {
		// Replay at the anchor's own scale so the measured window matches
		// the committed one (short runs amortize startup differently).
		instr = uint64(a.Doc.Metrics["instructions_retired"])
	}
	if instr == 0 {
		return nil, fmt.Errorf("benchratchet: anchor %s: no instructions_retired and no -instr override", a.Doc.Name)
	}
	cfg := ladder.Config{
		Workload:     a.Doc.Workload,
		Scheme:       a.Doc.Scheme,
		InstrPerCore: instr,
		Seed:         seed,
	}
	warm := cfg
	warm.InstrPerCore = instr / 4
	if warm.InstrPerCore > 0 {
		if _, err := ladder.Run(warm); err != nil {
			return nil, fmt.Errorf("benchratchet: warm-up %s: %w", a.Doc.Name, err)
		}
	}
	var best *sim.BenchReport
	for i := 0; i < runs; i++ {
		res, err := ladder.Run(cfg)
		if err != nil {
			return nil, fmt.Errorf("benchratchet: measuring %s: %w", a.Doc.Name, err)
		}
		doc := ladder.NewReport(res).Bench(a.Doc.Name)
		if best == nil || doc.Metrics[speedMetric] > best.Metrics[speedMetric] {
			best = doc
		}
	}
	// Stamp the environment the numbers were measured under: comparing
	// against an anchor from a different toolchain or core count is
	// comparing different machines, and the snapshot should say so.
	best.Provenance = &sim.BenchProvenance{
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Label:      label,
	}
	return best, nil
}

// writeBench writes one fresh snapshot.
func writeBench(path string, doc *sim.BenchReport) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("benchratchet: %w", err)
	}
	if err := doc.WriteJSON(f); err != nil {
		f.Close()
		return fmt.Errorf("benchratchet: writing %s: %w", path, err)
	}
	return f.Close()
}
