package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ladder/internal/sim"
)

// writeFile drops test anchor content into a temp dir.
func writeFile(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const goodAnchor = `{
  "schema": "ladder.bench/v1",
  "name": "laddersim-lbm-LADDER-Hybrid",
  "workload": "lbm",
  "scheme": "LADDER-Hybrid",
  "metrics": {"instr_per_sec": 1000000, "instructions_retired": 200000}
}`

func TestLoadAnchor(t *testing.T) {
	tests := []struct {
		name    string
		path    func(t *testing.T) string
		wantErr string
	}{
		{
			name: "valid",
			path: func(t *testing.T) string { return writeFile(t, "BENCH_ok.json", goodAnchor) },
		},
		{
			name:    "missing file",
			path:    func(t *testing.T) string { return filepath.Join(t.TempDir(), "BENCH_absent.json") },
			wantErr: "reading anchor",
		},
		{
			name:    "malformed JSON",
			path:    func(t *testing.T) string { return writeFile(t, "BENCH_bad.json", `{"schema": "ladder.bench/v1",`) },
			wantErr: "malformed JSON",
		},
		{
			name: "wrong schema",
			path: func(t *testing.T) string {
				return writeFile(t, "BENCH_schema.json",
					strings.Replace(goodAnchor, "ladder.bench/v1", "ladder.bench/v0", 1))
			},
			wantErr: `schema "ladder.bench/v0"`,
		},
		{
			name: "missing speed metric",
			path: func(t *testing.T) string {
				return writeFile(t, "BENCH_nospeed.json",
					strings.Replace(goodAnchor, "instr_per_sec", "other_metric", 1))
			},
			wantErr: "non-positive instr_per_sec",
		},
		{
			name: "missing workload",
			path: func(t *testing.T) string {
				return writeFile(t, "BENCH_noworkload.json",
					strings.Replace(goodAnchor, `"workload": "lbm"`, `"workload": ""`, 1))
			},
			wantErr: "missing workload/scheme",
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			a, err := LoadAnchor(tt.path(t))
			if tt.wantErr == "" {
				if err != nil {
					t.Fatalf("LoadAnchor: %v", err)
				}
				if a.Doc.Workload != "lbm" || a.Doc.Metrics["instr_per_sec"] != 1e6 {
					t.Fatalf("LoadAnchor decoded %+v", a.Doc)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tt.wantErr) {
				t.Fatalf("LoadAnchor error = %v, want containing %q", err, tt.wantErr)
			}
		})
	}
}

// TestProvenanceRoundTrip pins the provenance stamp through a write/
// load cycle: a stamped snapshot survives as an anchor, and anchors
// from before the stamp existed still load (nil Provenance).
func TestProvenanceRoundTrip(t *testing.T) {
	doc := sim.BenchReport{
		Schema:   sim.BenchSchema,
		Name:     "laddersim-lbm-LADDER-Hybrid",
		Workload: "lbm",
		Scheme:   "LADDER-Hybrid",
		Metrics:  map[string]float64{"instr_per_sec": 1e6, "instructions_retired": 2e5},
		Provenance: &sim.BenchProvenance{
			GoVersion:  "go1.22.0",
			GOMAXPROCS: 8,
			Label:      "ci-standard",
		},
	}
	var buf bytes.Buffer
	if err := doc.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	path := writeFile(t, "BENCH_prov.json", buf.String())
	a, err := LoadAnchor(path)
	if err != nil {
		t.Fatalf("LoadAnchor: %v", err)
	}
	p := a.Doc.Provenance
	if p == nil || p.GoVersion != "go1.22.0" || p.GOMAXPROCS != 8 || p.Label != "ci-standard" {
		t.Fatalf("provenance did not round-trip: %+v", p)
	}

	// Pre-provenance anchors carry no stamp and must still load.
	old, err := LoadAnchor(writeFile(t, "BENCH_old.json", goodAnchor))
	if err != nil {
		t.Fatalf("LoadAnchor(pre-provenance): %v", err)
	}
	if old.Doc.Provenance != nil {
		t.Fatalf("pre-provenance anchor grew a stamp: %+v", old.Doc.Provenance)
	}
}

func TestCompare(t *testing.T) {
	tests := []struct {
		name        string
		anchor      float64
		fresh       float64
		threshold   float64
		wantVerdict Verdict
	}{
		// The acceptance case: an injected 15% slowdown must fail a 10% budget.
		{"regression beyond budget", 1e6, 0.85e6, 0.10, VerdictRegression},
		{"just past the budget", 1e6, 0.8999e6, 0.10, VerdictRegression},
		{"within budget", 1e6, 0.95e6, 0.10, VerdictOK},
		{"exactly at anchor", 1e6, 1e6, 0.10, VerdictOK},
		{"slightly faster", 1e6, 1.05e6, 0.10, VerdictOK},
		{"improvement marks anchor stale", 1e6, 1.72e6, 0.10, VerdictImproved},
		{"tight budget flags small slip", 1e6, 0.97e6, 0.01, VerdictRegression},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			c := Compare("x", tt.anchor, tt.fresh, tt.threshold)
			if c.Verdict != tt.wantVerdict {
				t.Fatalf("Compare(%v, %v, %v) verdict = %v, want %v",
					tt.anchor, tt.fresh, tt.threshold, c.Verdict, tt.wantVerdict)
			}
			if want := tt.fresh / tt.anchor; c.Ratio != want {
				t.Fatalf("ratio = %v, want %v", c.Ratio, want)
			}
		})
	}
}

func TestAnyRegression(t *testing.T) {
	ok := Compare("a", 1e6, 1e6, 0.10)
	bad := Compare("b", 1e6, 0.5e6, 0.10)
	if AnyRegression([]Comparison{ok}) {
		t.Fatal("AnyRegression flagged a clean set")
	}
	if !AnyRegression([]Comparison{ok, bad}) {
		t.Fatal("AnyRegression missed a regression")
	}
}

func TestTrajectoryTable(t *testing.T) {
	table := TrajectoryTable([]Comparison{
		Compare("laddersim-mcf-LADDER-Est", 2e6, 2.1e6, 0.10),
		Compare("laddersim-lbm-LADDER-Hybrid", 1e6, 0.5e6, 0.10),
	})
	// Sorted by name, with the verdict visible per row.
	lbm := strings.Index(table, "laddersim-lbm-LADDER-Hybrid")
	mcf := strings.Index(table, "laddersim-mcf-LADDER-Est")
	if lbm < 0 || mcf < 0 || lbm > mcf {
		t.Fatalf("table rows missing or unsorted:\n%s", table)
	}
	if !strings.Contains(table, "REGRESSION") || !strings.Contains(table, "0.50x") {
		t.Fatalf("table missing regression row:\n%s", table)
	}
}
