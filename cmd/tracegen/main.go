// Command tracegen records a synthetic workload's post-LLC access stream
// to a trace file for deterministic replay (laddersim -trace, or
// sim.Config.TraceFile). Recorded traces decouple workload generation
// from simulation: the same stream can be replayed under every scheme, or
// shared between machines.
//
// Usage:
//
//	tracegen -workload mcf -n 200000 -o mcf.trace
//	tracegen -i mcf.trace -stats        # inspect a trace
package main

import (
	"flag"
	"fmt"
	"os"

	"ladder/internal/compress"
	"ladder/internal/reram"
	"ladder/internal/trace"
)

func main() {
	var (
		workload = flag.String("workload", "lbm", "benchmark to record")
		n        = flag.Uint64("n", 100_000, "number of accesses to record")
		seed     = flag.Int64("seed", 42, "generator seed")
		out      = flag.String("o", "", "output trace file")
		in       = flag.String("i", "", "inspect an existing trace instead of recording")
		stats    = flag.Bool("stats", false, "print trace statistics")
	)
	flag.Parse()

	if *in != "" {
		inspect(*in)
		return
	}
	if *out == "" {
		fmt.Fprintln(os.Stderr, "tracegen: -o required (or -i to inspect)")
		os.Exit(1)
	}
	prof, err := trace.Lookup(*workload)
	if err != nil {
		fatal(err)
	}
	// Bound the footprint the way the simulator does for the default
	// geometry, so recorded traces replay against it.
	geom := reram.DefaultGeometry()
	regionPages := geom.Lines() / reram.BlocksPerRow / 2
	if uint64(prof.WorkingSetPages) > regionPages {
		prof.WorkingSetPages = int(regionPages)
	}
	gen, err := trace.NewGenerator(prof, *seed, 0)
	if err != nil {
		fatal(err)
	}
	f, err := os.Create(*out)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	if err := trace.Record(f, gen, *workload, *seed, *n); err != nil {
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}
	fmt.Printf("recorded %d accesses of %s (seed %d) to %s\n", *n, *workload, *seed, *out)
	if *stats {
		inspect(*out)
	}
}

func inspect(path string) {
	rep, err := trace.LoadFile(path)
	if err != nil {
		fatal(err)
	}
	var reads, writes, gaps uint64
	var ones, compressible int
	pages := map[uint64]bool{}
	for i := 0; i < rep.Len(); i++ {
		a := rep.Next()
		gaps += uint64(a.Gap)
		pages[a.Line/reram.BlocksPerRow] = true
		if a.Write {
			writes++
			ones += trace.CountLineOnes(&a.Data)
			if compress.Compressible(a.Data[:]) {
				compressible++
			}
		} else {
			reads++
		}
	}
	total := reads + writes
	fmt.Printf("trace               %s\n", path)
	fmt.Printf("workload            %s (seed %d)\n", rep.Workload, rep.Seed)
	fmt.Printf("accesses            %d (%d reads, %d writes)\n", total, reads, writes)
	fmt.Printf("instructions        %d (approx, sum of gaps)\n", gaps+total)
	fmt.Printf("pages touched       %d\n", len(pages))
	fmt.Printf("max line address    %d\n", rep.MaxLine())
	if writes > 0 {
		fmt.Printf("write ones density  %.3f\n", float64(ones)/float64(writes*64*8))
		fmt.Printf("compressible        %.1f%%\n", 100*float64(compressible)/float64(writes))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tracegen:", err)
	os.Exit(1)
}
