package main

import (
	"strings"
	"testing"
)

func TestValidateFlags(t *testing.T) {
	type in struct {
		sample, slowest int
		rate            float64
		retry, spares   int
	}
	def := in{sample: 1, slowest: 0, rate: 0, retry: 3, spares: 32}
	cases := []struct {
		name    string
		in      in
		wantErr string // empty = valid
	}{
		{"defaults", def, ""},
		{"typical injection", in{1, 5, 0.01, 3, 32}, ""},
		{"rate just below one", in{1, 0, 0.999, 1, 1}, ""},
		{"zero sample", in{0, 0, 0, 3, 32}, "-trace-sample"},
		{"negative sample", in{-4, 0, 0, 3, 32}, "-trace-sample"},
		{"negative slowest", in{1, -1, 0, 3, 32}, "-trace-slowest"},
		{"rate one", in{1, 0, 1, 3, 32}, "-fault-rate"},
		{"rate negative", in{1, 0, -0.5, 3, 32}, "-fault-rate"},
		{"zero retries", in{1, 0, 0.01, 0, 32}, "-retry-max"},
		{"zero spares", in{1, 0, 0.01, 3, 0}, "-spare-rows"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := validateFlags(c.in.sample, c.in.slowest, c.in.rate, c.in.retry, c.in.spares)
			if c.wantErr == "" {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("expected an error mentioning %q", c.wantErr)
			}
			if !strings.Contains(err.Error(), c.wantErr) {
				t.Fatalf("error %q does not name the offending flag %q", err, c.wantErr)
			}
		})
	}
}

func TestValidateServeFlags(t *testing.T) {
	cases := []struct {
		name                        string
		jobs, queueDepth, cacheSize int
		wantErr                     string // empty = valid
	}{
		{"defaults", 0, 16, 64, ""},
		{"explicit jobs", 8, 1, 1, ""},
		{"negative jobs", -1, 16, 64, "-jobs"},
		{"zero queue", 0, 0, 64, "-queue-depth"},
		{"negative queue", 0, -2, 64, "-queue-depth"},
		{"zero cache", 0, 16, 0, "-cache-size"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := validateServeFlags(c.jobs, c.queueDepth, c.cacheSize)
			if c.wantErr == "" {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), c.wantErr) {
				t.Fatalf("error %v does not name the offending flag %q", err, c.wantErr)
			}
		})
	}
}
