package main

import (
	"strings"
	"testing"
	"time"
)

func TestValidateFlags(t *testing.T) {
	type in struct {
		sample, slowest int
		rate            float64
		retry, spares   int
		penalty         float64
	}
	def := in{sample: 1, slowest: 0, rate: 0, retry: 3, spares: 32, penalty: 2}
	cases := []struct {
		name    string
		in      in
		wantErr string // empty = valid
	}{
		{"defaults", def, ""},
		{"typical injection", in{1, 5, 0.01, 3, 32, 2}, ""},
		{"rate just below one", in{1, 0, 0.999, 1, 1, 2}, ""},
		// Zero is an explicit "off", not an unset default: each of these
		// must validate so the sentinel mapping in flagCount/flagNs can
		// carry the distinction into the simulator config.
		{"zero retries disables reissues", in{1, 0, 0.01, 0, 32, 2}, ""},
		{"zero spares disables remapping", in{1, 0, 0.01, 3, 0, 2}, ""},
		{"zero penalty is free indirection", in{1, 0, 0.01, 3, 32, 0}, ""},
		{"zero sample", in{0, 0, 0, 3, 32, 2}, "-trace-sample"},
		{"negative sample", in{-4, 0, 0, 3, 32, 2}, "-trace-sample"},
		{"negative slowest", in{1, -1, 0, 3, 32, 2}, "-trace-slowest"},
		{"rate one", in{1, 0, 1, 3, 32, 2}, "-fault-rate"},
		{"rate negative", in{1, 0, -0.5, 3, 32, 2}, "-fault-rate"},
		{"negative retries", in{1, 0, 0.01, -1, 32, 2}, "-retry-max"},
		{"negative spares", in{1, 0, 0.01, 3, -1, 2}, "-spare-rows"},
		{"negative penalty", in{1, 0, 0.01, 3, 32, -2}, "-remap-penalty"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := validateFlags(c.in.sample, c.in.slowest, c.in.rate, c.in.retry, c.in.spares, c.in.penalty)
			if c.wantErr == "" {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("expected an error mentioning %q", c.wantErr)
			}
			if !strings.Contains(err.Error(), c.wantErr) {
				t.Fatalf("error %q does not name the offending flag %q", err, c.wantErr)
			}
		})
	}
}

// TestFlagSentinelMapping pins the translation between the CLI
// convention (literal value, 0 = off) and sim.Config's convention
// (0 = default, negative = off): an explicit flag zero must reach the
// simulator as "disabled", never as "use the default".
func TestFlagSentinelMapping(t *testing.T) {
	if got := flagCount(0); got != -1 {
		t.Errorf("flagCount(0) = %d, want -1 (disabled)", got)
	}
	if got := flagCount(3); got != 3 {
		t.Errorf("flagCount(3) = %d, want 3", got)
	}
	if got := flagNs(0); got != -1 {
		t.Errorf("flagNs(0) = %v, want -1 (free)", got)
	}
	if got := flagNs(2.5); got != 2.5 {
		t.Errorf("flagNs(2.5) = %v, want 2.5", got)
	}
}

func TestValidateTimelineFlags(t *testing.T) {
	if err := validateTimelineFlags(0, ""); err != nil {
		t.Errorf("both off: unexpected error %v", err)
	}
	if err := validateTimelineFlags(10_000, "tl.csv"); err != nil {
		t.Errorf("interval with output: unexpected error %v", err)
	}
	if err := validateTimelineFlags(10_000, ""); err != nil {
		t.Errorf("interval without output: unexpected error %v", err)
	}
	if err := validateTimelineFlags(0, "tl.json"); err == nil || !strings.Contains(err.Error(), "-timeline-interval") {
		t.Errorf("output without interval: error %v does not name -timeline-interval", err)
	}
}

func TestValidateServeFlags(t *testing.T) {
	cases := []struct {
		name                        string
		jobs, queueDepth, cacheSize int
		jobTimeout, stallTimeout    time.Duration
		wantErr                     string // empty = valid
	}{
		{"defaults", 0, 16, 64, 0, 0, ""},
		{"explicit jobs", 8, 1, 1, 0, 0, ""},
		{"timeouts on", 0, 16, 64, time.Minute, 10 * time.Second, ""},
		{"negative jobs", -1, 16, 64, 0, 0, "-jobs"},
		{"zero queue", 0, 0, 64, 0, 0, "-queue-depth"},
		{"negative queue", 0, -2, 64, 0, 0, "-queue-depth"},
		{"zero cache", 0, 16, 0, 0, 0, "-cache-size"},
		{"negative job timeout", 0, 16, 64, -time.Second, 0, "-job-timeout"},
		{"negative stall timeout", 0, 16, 64, 0, -time.Second, "-stall-timeout"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := validateServeFlags(c.jobs, c.queueDepth, c.cacheSize, c.jobTimeout, c.stallTimeout)
			if c.wantErr == "" {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), c.wantErr) {
				t.Fatalf("error %v does not name the offending flag %q", err, c.wantErr)
			}
		})
	}
}
