package main

import (
	"context"
	"fmt"
	"log/slog"
	"time"

	"ladder/internal/introspect"
	"ladder/internal/service"
)

// serveConfig carries the -serve mode's resolved flags.
type serveConfig struct {
	addr         string
	jobs         int
	queueDepth   int
	cacheSize    int
	maxInstr     uint64
	stateDir     string
	jobTimeout   time.Duration
	stallTimeout time.Duration
	logger       *slog.Logger
}

// runServe turns the process into the long-running simulation service
// (docs/SERVICE.md): the job-queue API mounted on the introspection
// server — one listener carrying /jobs alongside /debug/pprof/, the
// live /service and /metrics documents, and /stats — until the signal
// context cancels. Returns the process exit code.
func runServe(ctx context.Context, cfg serveConfig) int {
	srv, err := introspect.New(cfg.addr)
	if err != nil {
		cfg.logger.Error("introspection server failed", "addr", cfg.addr, "err", err)
		return 1
	}
	svc, err := service.New(service.Config{
		QueueDepth:   cfg.queueDepth,
		CacheSize:    cfg.cacheSize,
		Jobs:         cfg.jobs,
		MaxInstr:     cfg.maxInstr,
		StateDir:     cfg.stateDir,
		JobTimeout:   cfg.jobTimeout,
		StallTimeout: cfg.stallTimeout,
		Logger:       cfg.logger,
	})
	if err != nil {
		cfg.logger.Error("service failed to start", "state_dir", cfg.stateDir, "err", err)
		_ = srv.Close()
		return 1
	}
	for _, pattern := range svc.Routes() {
		srv.Handle(pattern, svc.Handler())
	}
	// Function-backed documents: re-evaluated per scrape, so queue and
	// cache counters are always current (unlike the per-run snapshots a
	// single simulation publishes at its progress cadence).
	srv.PublishFunc("service", func() any { return svc.StatsSnapshot() })
	srv.PublishFunc("metrics", func() any { return svc.MetricsSnapshot() })

	fmt.Printf("laddersim service   http://%s/jobs (introspection at /, pprof under /debug/pprof/)\n", srv.Addr())
	cfg.logger.Info("service listening", "addr", srv.Addr())
	<-ctx.Done()
	cfg.logger.Info("shutting down", "reason", "signal", "drain", "in-flight job finishes its grid cells")

	// Stop the executor first so no new job starts, then drain HTTP with
	// a bounded grace period.
	svc.Close()
	sctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if err := srv.Shutdown(sctx); err != nil {
		_ = srv.Close()
	}
	return 0
}
