package main

import (
	"fmt"
	"time"
)

// validateFlags rejects out-of-range numeric flags before a run starts:
// a bad sampling rate or fault knob should fail fast with a clear
// message, not surface minutes later from deep inside the simulator
// (or, worse, silently disable the feature it was meant to tune).
//
// Zero is a meaningful value for -retry-max, -spare-rows and
// -remap-penalty — it disables the feature outright rather than falling
// back to the default — so only negatives are rejected there.
func validateFlags(traceSample, traceSlowest int, faultRate float64, retryMax, spareRows int, remapPenalty float64) error {
	switch {
	case traceSample < 1:
		return fmt.Errorf("-trace-sample must be >= 1 (record one in every N transactions), got %d", traceSample)
	case traceSlowest < 0:
		return fmt.Errorf("-trace-slowest must be >= 0 (0 disables the digest), got %d", traceSlowest)
	case faultRate < 0 || faultRate >= 1:
		return fmt.Errorf("-fault-rate must be in [0, 1) (0 disables injection), got %g", faultRate)
	case retryMax < 0:
		return fmt.Errorf("-retry-max must be >= 0 (0 disables reissues), got %d", retryMax)
	case spareRows < 0:
		return fmt.Errorf("-spare-rows must be >= 0 (0 disables spare remapping), got %d", spareRows)
	case remapPenalty < 0:
		return fmt.Errorf("-remap-penalty must be >= 0 ns (0 makes remapped-row indirection free), got %g", remapPenalty)
	}
	return nil
}

// validateTimelineFlags rejects a -timeline-out with no sampling
// cadence: without -timeline-interval the run records no epochs and the
// export would silently write an empty document.
func validateTimelineFlags(interval uint64, out string) error {
	if out != "" && interval == 0 {
		return fmt.Errorf("-timeline-out requires -timeline-interval > 0 (no epochs are recorded otherwise)")
	}
	return nil
}

// flagCount maps the CLI convention (flag value is the literal setting;
// 0 disables) onto sim.Config's backward-compatible convention (0 means
// default, negative means disabled).
func flagCount(v int) int {
	if v == 0 {
		return -1
	}
	return v
}

// flagNs is flagCount for nanosecond-valued float flags.
func flagNs(v float64) float64 {
	if v == 0 {
		return -1
	}
	return v
}

// validateServeFlags rejects out-of-range service-mode knobs (see
// docs/SERVICE.md for their semantics). The timeouts take 0 to disable;
// negatives would silently behave like an already-expired deadline.
func validateServeFlags(jobs, queueDepth, cacheSize int, jobTimeout, stallTimeout time.Duration) error {
	switch {
	case jobs < 0:
		return fmt.Errorf("-jobs must be >= 0 (0 = one worker per CPU), got %d", jobs)
	case queueDepth < 1:
		return fmt.Errorf("-queue-depth must be >= 1, got %d", queueDepth)
	case cacheSize < 1:
		return fmt.Errorf("-cache-size must be >= 1, got %d", cacheSize)
	case jobTimeout < 0:
		return fmt.Errorf("-job-timeout must be >= 0 (0 disables the deadline), got %v", jobTimeout)
	case stallTimeout < 0:
		return fmt.Errorf("-stall-timeout must be >= 0 (0 disables the watchdog), got %v", stallTimeout)
	}
	return nil
}
