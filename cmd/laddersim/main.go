// Command laddersim runs one workload under one write scheme and prints
// the measurements the paper's evaluation reports — or, with -serve,
// stays resident as a simulation service: an HTTP job queue accepting
// grid requests, deduplicating identical configurations and caching
// completed reports (see docs/SERVICE.md).
//
// Usage:
//
//	laddersim -workload lbm -scheme LADDER-Hybrid -instr 200000
//	laddersim -serve -http :8080
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"sync"
	"syscall"
	"time"

	"ladder"
	"ladder/internal/introspect"
	"ladder/internal/logging"
	"ladder/internal/metrics"
	"ladder/internal/timeline"
)

func main() {
	var (
		workload = flag.String("workload", "lbm", "benchmark or mix name (see -list)")
		scheme   = flag.String("scheme", ladder.SchemeHybrid, "write scheme")
		instr    = flag.Uint64("instr", 200_000, "instructions per core")
		seed     = flag.Int64("seed", 42, "simulation seed")
		wear     = flag.Bool("wear", false, "enable segment-based vertical wear leveling")
		shrink   = flag.Float64("shrink", 0, "shrink timing-table dynamic range by this factor (>1)")
		verify   = flag.Bool("verify", false, "verify end-of-run read-back correctness")
		traceIn  = flag.String("trace", "", "replay a recorded trace (see tracegen) instead of synthesizing")
		list     = flag.Bool("list", false, "list workloads and schemes, then exit")
		showMet  = flag.Bool("metrics", false, "print the full metrics dump after the summary")
		report   = flag.String("report", "", "write a structured JSON run report to this file (see docs/METRICS.md)")
		bench    = flag.String("bench", "", "write a BENCH-compatible perf snapshot (JSON) to this file")

		traceOut     = flag.String("trace-out", "", "write a Chrome trace-event JSON (Perfetto-loadable) of sampled transactions to this file (see docs/TRACING.md)")
		traceSample  = flag.Int("trace-sample", 1, "with tracing on, record one in every N memory transactions")
		traceSlowest = flag.Int("trace-slowest", 0, "print the N slowest traced writes after the run (enables tracing)")
		httpAddr     = flag.String("http", "", "serve live introspection (pprof, metrics, progress, spans) on this address, e.g. :6060")

		timelineInterval = flag.Uint64("timeline-interval", 0, "record a telemetry epoch every N simulated cycles (0 disables; see docs/TIMELINE.md)")
		timelineOut      = flag.String("timeline-out", "", "write the run timeline to this file: a .csv extension selects CSV, anything else JSON (requires -timeline-interval)")
		logFormat        = flag.String("log-format", "", "diagnostic log format on stderr: text (the default; -serve defaults to json) or json")

		faultRate     = flag.Float64("fault-rate", 0, "base transient write-fault probability in [0, 1); 0 disables injection (see docs/FAULTS.md)")
		faultSeed     = flag.Int64("fault-seed", 0, "fault-injector PRNG seed (0 = reuse -seed)")
		retryMax      = flag.Int("retry-max", 3, "program-and-verify reissue cap per write (0 disables reissues)")
		spareRows     = flag.Int("spare-rows", 32, "per-bank spare-row pool for remapping failed rows (0 disables remapping)")
		remapPenalty  = flag.Float64("remap-penalty", 2, "extra decoder-indirection latency in ns charged to accesses of remapped rows (0 = free; see docs/REMAP.md)")
		proactiveWear = flag.Uint64("proactive-wear", 0, "proactively retire rows whose effective write count reaches this limit (0 disables; see docs/REMAP.md)")

		serve      = flag.Bool("serve", false, "run as a long-lived simulation service: HTTP job queue on -http (default :8080; see docs/SERVICE.md)")
		jobs       = flag.Int("jobs", 0, "grid cells simulated concurrently per job in -serve mode (0 = one per CPU)")
		queueDepth = flag.Int("queue-depth", 16, "pending-job bound in -serve mode; a full queue rejects submissions with 503")
		cacheSize  = flag.Int("cache-size", 64, "completed jobs retained (LRU) in -serve mode")
		maxInstr   = flag.Uint64("max-instr", 10_000_000, "largest per-core instruction budget a -serve request may ask for")

		stateDir     = flag.String("state-dir", "", "persist -serve job state (journal + completed reports, fsync'd) under this directory and recover it on boot; empty = in-memory only (see docs/SERVICE.md)")
		jobTimeout   = flag.Duration("job-timeout", 0, "wall-clock deadline per -serve job; a job still running at the deadline fails with a structured error (0 disables)")
		stallTimeout = flag.Duration("stall-timeout", 0, "watchdog stall bound per -serve job: a running job with no progress heartbeat for this long is canceled and fails (0 disables)")
	)
	flag.Parse()
	// Service mode defaults to JSON records (log pipelines); interactive
	// runs default to text. Either mode takes an explicit -log-format.
	format := *logFormat
	if *serve && format == "" {
		format = logging.FormatJSON
	}
	lg, err := logging.New(format, os.Stderr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "laddersim:", err)
		os.Exit(2)
	}
	if err := validateFlags(*traceSample, *traceSlowest, *faultRate, *retryMax, *spareRows, *remapPenalty); err != nil {
		lg.Error("invalid flags", "err", err)
		os.Exit(2)
	}
	if err := validateTimelineFlags(*timelineInterval, *timelineOut); err != nil {
		lg.Error("invalid flags", "err", err)
		os.Exit(2)
	}
	if err := validateServeFlags(*jobs, *queueDepth, *cacheSize, *jobTimeout, *stallTimeout); err != nil {
		lg.Error("invalid flags", "err", err)
		os.Exit(2)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *list {
		fmt.Println("workloads:", strings.Join(ladder.Workloads(), " "))
		fmt.Println("schemes:  ", strings.Join(ladder.SchemeNames(), " "))
		return
	}

	if *serve {
		addr := *httpAddr
		if addr == "" {
			addr = ":8080"
		}
		os.Exit(runServe(ctx, serveConfig{
			addr:         addr,
			jobs:         *jobs,
			queueDepth:   *queueDepth,
			cacheSize:    *cacheSize,
			maxInstr:     *maxInstr,
			stateDir:     *stateDir,
			jobTimeout:   *jobTimeout,
			stallTimeout: *stallTimeout,
			logger:       lg,
		}))
	}

	cfg := ladder.Config{
		Workload:     *workload,
		Scheme:       *scheme,
		InstrPerCore: *instr,
		Seed:         *seed,
		WearLeveling: *wear,
		ShrinkRange:  *shrink,
		Verify:       *verify,
		TraceFile:    *traceIn,
		FaultRate:    *faultRate,
		FaultSeed:    *faultSeed,
		RetryMax:     flagCount(*retryMax),
		SpareRows:    flagCount(*spareRows),

		RemapPenaltyNs:     flagNs(*remapPenalty),
		ProactiveWearLimit: *proactiveWear,

		TimelineInterval: *timelineInterval,
	}
	// -http implies tracing so the live /spans feed has content.
	if *traceOut != "" || *traceSlowest > 0 || *httpAddr != "" {
		cfg.TraceSample = *traceSample
		cfg.TraceSlowest = *traceSlowest
	}
	var srv *introspect.Server
	if *httpAddr != "" {
		var err error
		srv, err = introspect.New(*httpAddr)
		if err != nil {
			lg.Error("introspection server failed", "err", err)
			os.Exit(1)
		}
		// Graceful drain with a bounded grace period: in-flight scrapes
		// finish; an interrupt (canceled signal context) collapses the
		// grace to an immediate close.
		defer func() {
			sctx, cancel := context.WithTimeout(ctx, 2*time.Second)
			defer cancel()
			_ = srv.Shutdown(sctx)
		}()
		fmt.Printf("introspection       http://%s/ (pprof under /debug/pprof/)\n", srv.Addr())
		cfg.ProgressDetail = true
		if cfg.ProgressEvery == 0 {
			// Snapshot often enough that short runs are observable too; the
			// default 5M-cycle period outlives many of them.
			cfg.ProgressEvery = 250_000
		}
		// The latest progress snapshot doubles as the Prometheus scrape
		// source: /metrics/prom serves it labeled with the run identity.
		var promMu sync.Mutex
		var promSnap metrics.Snapshot
		runLabel := []metrics.PromLabel{{Name: "run", Value: *workload + "/" + *scheme}}
		srv.Handle("GET /metrics/prom", introspect.PromHandler(func() (metrics.Snapshot, []metrics.PromLabel, []metrics.PromSample) {
			promMu.Lock()
			defer promMu.Unlock()
			return promSnap, runLabel, nil
		}))
		cfg.Progress = func(p ladder.ProgressInfo) {
			srv.Publish("progress", p)
			if p.Metrics != nil {
				srv.Publish("metrics", p.Metrics)
				promMu.Lock()
				promSnap = *p.Metrics
				promMu.Unlock()
			}
			if p.Spans != nil {
				srv.Publish("spans", p.Spans)
			}
		}
		if *timelineInterval > 0 {
			// Live timeline: every closed epoch appends to the /timeline
			// document and streams to /timeline/events subscribers as SSE.
			broker := introspect.NewBroker(0)
			srv.Handle("GET /timeline/events", broker)
			var tlMu sync.Mutex
			var epochs []ladder.TimelineEpoch
			cfg.TimelineOnEpoch = func(e ladder.TimelineEpoch) {
				tlMu.Lock()
				epochs = append(epochs, e)
				tlMu.Unlock()
				if ev, err := json.Marshal(e); err == nil {
					broker.Publish(ev)
				}
			}
			srv.PublishFunc("timeline", func() any {
				tlMu.Lock()
				defer tlMu.Unlock()
				return ladder.Timeline{
					Schema:            timeline.Schema,
					Interval:          *timelineInterval,
					EffectiveInterval: *timelineInterval,
					Epochs:            append([]ladder.TimelineEpoch(nil), epochs...),
				}
			})
		}
	}

	res, err := ladder.Run(cfg)
	if err != nil {
		lg.Error("run failed", "workload", *workload, "scheme", *scheme, "err", err)
		os.Exit(1)
	}

	fmt.Printf("workload            %s\n", res.Workload)
	fmt.Printf("scheme              %s\n", res.Scheme)
	fmt.Printf("simulated time      %.2f us (%d cycles @4GHz)\n", float64(res.Ticks)/4000, res.Ticks)
	for i, ipc := range res.PerCoreIPC {
		fmt.Printf("core %d IPC          %.4f\n", i, ipc)
	}
	st := res.Stats
	fmt.Printf("data reads          %d\n", st.DataReads)
	fmt.Printf("data writes         %d\n", st.DataWrites)
	fmt.Printf("SMB reads           %d\n", st.SMBReads)
	fmt.Printf("metadata reads      %d (cache hits %d, misses %d)\n", st.MetaReads, st.MetaCacheHits, st.MetaCacheMisses)
	fmt.Printf("metadata writes     %d\n", st.MetaWrites)
	fmt.Printf("extra reads         %.1f%%\n", 100*st.ExtraReadFraction())
	fmt.Printf("extra writes        %.1f%%\n", 100*st.ExtraWriteFraction())
	fmt.Printf("avg write service   %.1f ns\n", st.AvgWriteServiceNs())
	fmt.Printf("avg read latency    %.1f ns (p50 ≤ %.0f, p99 ≤ %.0f)\n",
		st.AvgReadLatencyNs(), st.ReadLatencyPercentile(0.5), st.ReadLatencyPercentile(0.99))
	if st.CounterDiffN > 0 {
		fmt.Printf("avg counter gap     %.1f (estimated - accurate C_lrs)\n", st.AvgCounterDiff())
	}
	if st.FNWUnits > 0 {
		fmt.Printf("FNW flips           %.1f%% of units (%.2f%% canceled by constraint)\n",
			100*float64(st.FNWFlips)/float64(st.FNWUnits),
			100*float64(st.FNWCanceled)/float64(st.FNWUnits))
	}
	fmt.Printf("dynamic energy      read %.1f nJ, write %.1f nJ\n", res.ReadNJ, res.WriteNJ)
	if res.GapMoves > 0 {
		fmt.Printf("VWL gap moves       %d\n", res.GapMoves)
	}
	if *verify {
		fmt.Println("verification        PASS (all written lines decode to their logical content)")
	}

	rep := ladder.NewReport(res)
	rl := rep.ResetLatency
	fmt.Printf("RESET latency       n=%d mean %.1f p50 %.1f p95 %.1f p99 %.1f max %.1f ns\n",
		rl.Count, rl.MeanNs, rl.P50Ns, rl.P95Ns, rl.P99Ns, rl.MaxNs)
	if f := rep.Faults; f != nil {
		fmt.Printf("faults              %d injected / %d checked, %d retries (mean %.1f ns), %d exhausted\n",
			f.Injected, f.Checked, f.Retries, f.RetryLatency.MeanNs, f.Exhausted)
	}
	if m := rep.Remap; m != nil {
		fmt.Printf("remap               %d gap moves, %d spare remaps (%d spares used), %d penalty ticks\n",
			m.GapMoves, m.SpareRemaps, m.SparesUsed, m.PenaltyTicks)
	}
	fmt.Printf("wall clock          %.1f ms\n", rep.WallClockMS)
	if *showMet {
		fmt.Println("\nmetrics (see docs/METRICS.md)")
		fmt.Print(rep.Metrics.Text())
	}
	if *report != "" {
		if err := writeJSONFile(*report, rep.WriteJSON); err != nil {
			lg.Error("writing report", "path", *report, "err", err)
			os.Exit(1)
		}
		fmt.Printf("report written      %s\n", *report)
	}
	if *timelineOut != "" && res.Timeline != nil {
		write := res.Timeline.WriteJSON
		if strings.HasSuffix(*timelineOut, ".csv") {
			write = res.Timeline.WriteCSV
		}
		if err := writeJSONFile(*timelineOut, write); err != nil {
			lg.Error("writing timeline", "path", *timelineOut, "err", err)
			os.Exit(1)
		}
		fmt.Printf("timeline written    %s (%d epochs of %d cycles)\n",
			*timelineOut, len(res.Timeline.Epochs), res.Timeline.EffectiveInterval)
	}
	if *bench != "" {
		doc := rep.Bench(fmt.Sprintf("laddersim-%s-%s", res.Workload, res.Scheme))
		if err := writeJSONFile(*bench, doc.WriteJSON); err != nil {
			lg.Error("writing bench snapshot", "path", *bench, "err", err)
			os.Exit(1)
		}
		fmt.Printf("bench written       %s\n", *bench)
	}
	if *traceOut != "" {
		if err := writeJSONFile(*traceOut, res.Trace.WriteChromeTrace); err != nil {
			lg.Error("writing trace", "path", *traceOut, "err", err)
			os.Exit(1)
		}
		sum := res.Trace.Summary()
		fmt.Printf("trace written       %s (%d spans of %d transactions, load in Perfetto/chrome://tracing)\n",
			*traceOut, sum.Completed, sum.Seen)
	}
	if *traceSlowest > 0 {
		fmt.Println()
		if err := res.Trace.WriteSlowestDigest(os.Stdout); err != nil {
			lg.Error("writing slowest-write digest", "err", err)
			os.Exit(1)
		}
	}
	// Leave the final state readable on the introspection server until the
	// process exits (typically immediately; useful under a debugger).
	srv.Publish("report", rep)
}

// writeJSONFile streams one of the report writers into a file.
func writeJSONFile(path string, write func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
