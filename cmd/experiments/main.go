// Command experiments regenerates the paper's evaluation: every figure
// and table of Sections 5–7 (see DESIGN.md's experiment index). Output is
// plain text, one block per experiment, with workloads as rows and
// schemes as series — the same rows the paper plots.
//
// Usage:
//
//	experiments                 # everything (several minutes)
//	experiments -exp fig12      # one experiment
//	experiments -instr 100000   # cheaper runs
//	experiments -jobs 1         # sequential grid cells (default: one per CPU)
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"os"
	"os/signal"
	"sort"
	"strconv"
	"strings"
	"syscall"
	"time"

	"ladder"
	"ladder/internal/core"
	"ladder/internal/introspect"
	"ladder/internal/logging"
	"ladder/internal/sim"
	"ladder/internal/timing"
)

// runCtx is canceled on SIGINT/SIGTERM: in-flight simulations finish,
// but no further grid cell starts, and the run exits with an error
// instead of printing figures from a partial grid.
var runCtx context.Context

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	runCtx = ctx
	var (
		exp    = flag.String("exp", "all", "experiment: fig2 fig4 fig11 fig12 fig13 fig14 fig15 fig16 fig17 table4 storage lifetime ablation wear vwlmode crash cachesize lowrows fnw reliability all")
		instr  = flag.Uint64("instr", 150_000, "instructions per core per run")
		seed   = flag.Int64("seed", 42, "simulation seed")
		jobs   = flag.Int("jobs", 0, "grid cells simulated concurrently (0 = one worker per CPU; 1 = sequential)")
		report = flag.String("report", "", "write a structured JSON grid report (per-cell summaries + merged metrics) to this file")
		http   = flag.String("http", "", "serve live introspection (pprof + grid progress) on this address, e.g. :6060")

		faultRate = flag.Float64("fault-rate", 0, "override the reliability sweep's fault-rate list with this single rate, in (0, 1); see docs/FAULTS.md")
		faultSeed = flag.Int64("fault-seed", 0, "fault-injector PRNG seed for reliability runs (0 = reuse -seed)")
		retryMax  = flag.Int("retry-max", 3, "program-and-verify reissue cap per write in reliability runs (0 disables reissues)")
		spareRows = flag.Int("spare-rows", 32, "per-bank spare-row pool in reliability runs (0 disables remapping)")

		gapPeriods = flag.String("gap-periods", "", "comma-separated gap-move periods for the lifetime sweep (empty = defaults)")
		spareGrid  = flag.String("spare-grid", "", "comma-separated spare-pool sizes for the lifetime sweep (empty = defaults)")

		timelineInterval = flag.Uint64("timeline-interval", 0, "record a telemetry epoch every N simulated cycles in every run (0 disables; see docs/TIMELINE.md)")
		timelineOut      = flag.String("timeline-out", "", "write the merged grid timeline to this file: a .csv extension selects CSV, anything else JSON (requires -timeline-interval and a grid experiment)")
		logFormat        = flag.String("log-format", "", "diagnostic log format on stderr: text (default) or json")
	)
	flag.Parse()
	var err error
	lg, err = logging.New(*logFormat, os.Stderr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
	switch {
	case *faultRate < 0 || *faultRate >= 1:
		fail(fmt.Errorf("-fault-rate must be in [0, 1), got %g", *faultRate))
	case *retryMax < 0:
		fail(fmt.Errorf("-retry-max must be >= 0 (0 disables reissues), got %d", *retryMax))
	case *spareRows < 0:
		fail(fmt.Errorf("-spare-rows must be >= 0 (0 disables remapping), got %d", *spareRows))
	case *jobs < 0:
		fail(fmt.Errorf("-jobs must be >= 0 (0 = one worker per CPU), got %d", *jobs))
	case *timelineOut != "" && *timelineInterval == 0:
		fail(fmt.Errorf("-timeline-out requires -timeline-interval > 0 (no epochs are recorded otherwise)"))
	}
	periods, err := intList(*gapPeriods)
	if err != nil {
		fail(fmt.Errorf("-gap-periods: %w", err))
	}
	spares, err := intList(*spareGrid)
	if err != nil {
		fail(fmt.Errorf("-spare-grid: %w", err))
	}

	if *http != "" {
		srv, err := introspect.New(*http)
		if err != nil {
			fail(err)
		}
		// Graceful drain bounded by a grace period; an interrupt
		// (canceled runCtx) collapses it to an immediate close.
		defer func() {
			sctx, cancel := context.WithTimeout(runCtx, 2*time.Second)
			defer cancel()
			_ = srv.Shutdown(sctx)
		}()
		fmt.Printf("introspection: http://%s/ (pprof under /debug/pprof/)\n", srv.Addr())
		gridProgress = func(p ladder.GridProgress) { srv.Publish("grid", p) }
	}

	opts := ladder.Options{Instr: *instr, Seed: *seed, Jobs: *jobs, TimelineInterval: *timelineInterval}
	want := func(name string) bool { return *exp == "all" || *exp == name }

	// Cheap analytic experiments first.
	if want("table4") {
		printTable4()
	}
	if want("storage") {
		printStorage()
	}
	if want("fig4") || want("fig11") {
		printLatencyModel(want)
	}

	if want("fig2") {
		grid := mustGrid(ladder.Options{Instr: *instr, Seed: *seed, Jobs: *jobs, TimelineInterval: *timelineInterval, Workloads: ladder.SingleWorkloads()},
			[]string{ladder.SchemeBaseline, ladder.SchemeLocAware, ladder.SchemeOracle})
		printRows("Figure 2 — normalized IPC (worst-case vs location-aware vs data/location-aware)",
			grid.Speedup(), grid.Schemes)
	}

	needGrid := want("fig12") || want("fig13") || want("fig14") || want("fig16") || want("fig17") || want("fnw")
	if needGrid {
		schemes := ladder.FigureSchemes()
		grid := mustGrid(opts, schemes)
		mainFigureGrid = grid
		if want("fig12") {
			printRows("Figure 12 — normalized average write service time", grid.WriteServiceTime(), schemes)
		}
		if want("fig13") {
			printRows("Figure 13 — normalized average read latency", grid.ReadLatency(), schemes)
		}
		if want("fig14") {
			ladders := []string{ladder.SchemeBasic, ladder.SchemeEst, ladder.SchemeHybrid}
			printRows("Figure 14a — additional reads (fraction of baseline reads)", grid.ExtraReads(), ladders)
			printRows("Figure 14b — additional writes (fraction of baseline writes)", grid.ExtraWrites(), ladders)
		}
		if want("fig16") {
			printRows("Figure 16 — speedup over baseline (weighted IPC)", grid.Speedup(), schemes)
		}
		if want("fig17") {
			printEnergy(grid)
		}
		if want("fnw") {
			printRows("Section 6.1 — FNW flip cancellations (fraction of units; paper <4%)",
				grid.FNWCancellation(), []string{ladder.SchemeBasic, ladder.SchemeEst, ladder.SchemeHybrid})
		}
	}

	if want("fig15") {
		grid := mustGrid(opts, []string{ladder.SchemeEstNoShift, ladder.SchemeEst})
		printRows("Figure 15 — LRS-counter difference, LADDER-Est minus accurate",
			grid.CounterDiffs(), []string{"without-shift", "with-shift"})
	}

	if want("ablation") {
		rows, err := ladder.RangeAblation(opts, ladder.SchemeEst, 2)
		if err != nil {
			fail(err)
		}
		printRows("Section 7 — benefit retained with 2x shrunk latency range (paper ≈85%)",
			rows, []string{"gain-full", "gain-shrunk", "retained"})
	}

	if want("wear") {
		rows, err := ladder.WearLevelingImpact(opts, ladder.SchemeHybrid)
		if err != nil {
			fail(err)
		}
		printRows("Section 6.4 — IPC with VWL enabled relative to without (paper ≈99%)",
			rows, []string{"ipc-ratio", "gap-moves"})
	}

	if want("lifetime") {
		sub := ladder.Options{Instr: *instr, Seed: *seed, Jobs: *jobs, TimelineInterval: *timelineInterval,
			Workloads: []string{"lbm", "mcf", "mix-7"}}
		study, err := ladder.LifetimeSweep(sub, ladder.SchemeHybrid, periods, spares)
		if err != nil {
			fail(err)
		}
		lifetimeStudy = study
		printRows("Decoder lifetime sweep — relative lifetime and IPC ratio vs gap-move period × spare pool",
			study.Rows(), study.Series())
	}

	if want("vwlmode") {
		rows, err := ladder.VWLModeComparison(opts, ladder.SchemeEst)
		if err != nil {
			fail(err)
		}
		printRows("Section 6.4 — segment vs line VWL (metadata reads per data write, IPC)",
			rows, []string{"segment-metareads", "line-metareads", "segment-ipc", "line-ipc"})
	}

	if want("crash") {
		rows, err := ladder.CrashRecoveryStudy(opts, ladder.SchemeEst)
		if err != nil {
			fail(err)
		}
		printRows("Section 7 — crash recovery with lazy conservative correction",
			rows, []string{"pre-service-ns", "post-service-ns", "post-counter-gap"})
	}

	if want("cachesize") {
		sub := ladder.Options{Instr: *instr, Seed: *seed, Jobs: *jobs, TimelineInterval: *timelineInterval,
			Workloads: []string{"lbm", "mcf", "mix-7"}}
		rows, err := ladder.CacheSizeSweep(sub, ladder.SchemeHybrid, nil)
		if err != nil {
			fail(err)
		}
		printRows("Section 6.3 — metadata cache size ablation (IPC vs default 64KB; paper <2% gain)",
			rows, []string{"16KB", "32KB", "64KB", "128KB", "256KB"})
	}

	if want("reliability") {
		sub := ladder.Options{Instr: *instr, Seed: *seed, Jobs: *jobs, TimelineInterval: *timelineInterval,
			FaultSeed: *faultSeed, RetryMax: *retryMax, SpareRows: *spareRows,
			Workloads: []string{"lbm", "mcf", "mix-7"}}
		rates := []float64{0.001, 0.01}
		if *faultRate > 0 {
			rates = []float64{*faultRate}
		}
		schemes := []string{ladder.SchemeBasic, ladder.SchemeEst, ladder.SchemeHybrid}
		rows, err := ladder.ReliabilitySweep(sub, schemes, rates)
		if err != nil {
			fail(err)
		}
		series := make([]string, 0, len(schemes)*len(rates))
		for _, s := range schemes {
			for _, r := range rates {
				series = append(series, fmt.Sprintf("%s@%g", s, r))
			}
		}
		printRows("Reliability — program-and-verify retries per 1000 data writes (stale-margin effect; see docs/FAULTS.md)",
			rows, series)
	}

	if want("lowrows") {
		sub := ladder.Options{Instr: *instr, Seed: *seed, Jobs: *jobs, TimelineInterval: *timelineInterval,
			Workloads: []string{"lbm", "mcf", "mix-7"}}
		rows, err := ladder.LowPrecisionSweep(sub, nil)
		if err != nil {
			fail(err)
		}
		printRows("Section 4.2 — Hybrid precision-register ablation (avg write service ns)",
			rows, []string{"rows=0 svc", "rows=64 svc", "rows=128 svc", "rows=256 svc", "rows=512 svc"})
	}

	if *report != "" {
		// -exp lifetime serializes the sweep study; every other
		// experiment serializes the grid it built.
		if *exp == "lifetime" {
			if lifetimeStudy == nil {
				fail(fmt.Errorf("-report with -exp lifetime needs the sweep to have run"))
			}
			writeReport(*report, "lifetime report", lifetimeStudy.Report().WriteJSON)
			return
		}
		gr := mustGridReport()
		writeReport(*report, "grid report", gr.WriteJSON)
	}
	if *timelineOut != "" {
		// The grid report carries the cells' timelines merged epoch-by-
		// epoch (cells run the same instruction budget, so epochs align).
		gr := mustGridReport()
		if gr.Timeline == nil {
			fail(fmt.Errorf("-timeline-out: the selected experiment produced no timeline"))
		}
		write := gr.Timeline.WriteJSON
		if strings.HasSuffix(*timelineOut, ".csv") {
			write = gr.Timeline.WriteCSV
		}
		writeReport(*timelineOut, "merged timeline", write)
	}
}

// mustGridReport freezes the grid the selected experiments built, or
// fails if none ran.
func mustGridReport() *ladder.GridReport {
	if mainFigureGrid != nil {
		reportGrid = mainFigureGrid
	}
	if reportGrid == nil {
		fail(fmt.Errorf("-report and -timeline-out need a grid experiment (fig2/fig12..fig17/fig15/fnw or all)"))
	}
	gr, err := ladder.NewGridReport(reportGrid)
	if err != nil {
		fail(err)
	}
	return gr
}

// writeReport creates path and streams a JSON document into it via emit.
func writeReport(path, kind string, emit func(io.Writer) error) {
	f, err := os.Create(path)
	if err != nil {
		fail(err)
	}
	if err := emit(f); err != nil {
		f.Close()
		fail(err)
	}
	if err := f.Close(); err != nil {
		fail(err)
	}
	fmt.Printf("\n%s written to %s\n", kind, path)
}

// intList parses a comma-separated list of non-negative integers; an
// empty string yields nil (caller-defined defaults).
func intList(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, fmt.Errorf("bad value %q: %w", p, err)
		}
		if v < 0 {
			return nil, fmt.Errorf("values must be >= 0, got %d", v)
		}
		out = append(out, v)
	}
	return out, nil
}

// reportGrid is the grid -report serializes: the main figure grid when
// it runs (mainFigureGrid), otherwise the last grid any experiment built.
var reportGrid, mainFigureGrid *ladder.Grid

// lifetimeStudy holds the decoder lifetime sweep when it ran, for
// -report under -exp lifetime.
var lifetimeStudy *ladder.LifetimeStudy

// lg is the process logger (-log-format), set before any experiment
// runs; fail routes every fatal error through it.
var lg *slog.Logger

func fail(err error) {
	lg.Error("experiment failed", "err", err)
	os.Exit(1)
}

// gridProgress, when -http is set, publishes each finished grid cell to
// the introspection server; mustGrid attaches it to every grid run.
var gridProgress func(ladder.GridProgress)

func mustGrid(opts ladder.Options, schemes []string) *ladder.Grid {
	opts.Progress = gridProgress
	grid, err := ladder.RunGridCtx(runCtx, opts, schemes)
	if err != nil {
		fail(err)
	}
	reportGrid = grid
	return grid
}

func printRows(title string, rows []sim.Row, series []string) {
	fmt.Println("\n" + title)
	fmt.Printf("%-10s", "workload")
	for _, s := range series {
		fmt.Printf("%*s", colWidth(s), s)
	}
	fmt.Println()
	all := append(append([]sim.Row(nil), rows...), ladder.Average(rows))
	for _, r := range all {
		fmt.Printf("%-10s", r.Workload)
		for _, s := range series {
			fmt.Printf("%*.3f", colWidth(s), r.Values[s])
		}
		fmt.Println()
	}
}

func colWidth(s string) int {
	if w := len(s) + 2; w > 9 {
		return w
	}
	return 9
}

func printEnergy(grid *ladder.Grid) {
	fmt.Println("\nFigure 17 — dynamic memory energy normalized to baseline (read+write split)")
	schemes := []string{ladder.SchemeSplitReset, ladder.SchemeBLP, ladder.SchemeBasic, ladder.SchemeEst, ladder.SchemeHybrid}
	fmt.Printf("%-10s", "workload")
	for _, s := range schemes {
		fmt.Printf("%*s", colWidth(s), s)
	}
	fmt.Println("   (each cell: total = read+write)")
	splits := grid.DynamicEnergy()
	totals := make(map[string]float64)
	for _, es := range splits {
		fmt.Printf("%-10s", es.Workload)
		for _, s := range schemes {
			t := es.Read[s] + es.Write[s]
			totals[s] += t
			fmt.Printf("%*.3f", colWidth(s), t)
		}
		fmt.Println()
	}
	fmt.Printf("%-10s", "AVG")
	for _, s := range schemes {
		fmt.Printf("%*.3f", colWidth(s), totals[s]/float64(len(splits)))
	}
	fmt.Println()
}

func printTable4() {
	fmt.Println("\nTable 4 — LADDER controller hardware overhead (published synthesis results)")
	fmt.Printf("%-32s %10s %10s %10s\n", "module", "area mm2", "power mW", "latency ns")
	for _, m := range ladder.ControllerOverheads() {
		fmt.Printf("%-32s %10.4f %10.2f %10.2f\n", m.Name, m.AreaMM2, m.PowerMW, m.LatencyNs)
	}
	fmt.Printf("on-chip timing tables: %d bytes\n", core.TimingTableBytes)
}

func printStorage() {
	basic, est, hybrid := ladder.MetadataOverheads()
	fmt.Println("\nSection 6.3 — LRS-metadata storage overhead (fraction of capacity)")
	fmt.Printf("%-16s %8.4f%%  (paper: 3.12%%)\n", "LADDER-Basic", 100*basic)
	fmt.Printf("%-16s %8.4f%%  (paper: 1.56%%)\n", "LADDER-Est", 100*est)
	fmt.Printf("%-16s %8.4f%%  (paper: 0.97%%; see EXPERIMENTS.md)\n", "LADDER-Hybrid", 100*hybrid)
}

func printLatencyModel(want func(string) bool) {
	ts, err := ladder.DefaultTables()
	if err != nil {
		fail(err)
	}
	params := ladder.DefaultCrossbarParams()
	gran := params.N / timing.Buckets
	if want("fig4") {
		fmt.Println("\nFigure 4b — RESET latency (ns) vs WL LRS percentage, near and far cells")
		near := ts.ContentCurve(0, 0)
		far := ts.ContentCurve(params.N-1, params.N-1)
		var b strings.Builder
		fmt.Fprintf(&b, "%-10s %10s %10s\n", "WL LRS %", "near", "far")
		for cb := 0; cb < timing.Buckets; cb++ {
			pct := float64((cb+1)*gran) / float64(params.N) * 100
			fmt.Fprintf(&b, "%-10.0f %10.1f %10.1f\n", pct, near[cb], far[cb])
		}
		fmt.Print(b.String())
	}
	if want("fig11") {
		for _, c := range []struct {
			name   string
			bucket int
		}{{"all-0s", 0}, {"all-1s", timing.Buckets - 1}} {
			fmt.Printf("\nFigure 11 — latency surface (ns), WL pattern %s\n", c.name)
			s := ts.Surface(c.bucket)
			keys := make([]int, 0, timing.Buckets)
			for i := 0; i < timing.Buckets; i++ {
				keys = append(keys, (i+1)*gran-1)
			}
			sort.Ints(keys)
			fmt.Printf("%-8s", "WL\\BL")
			for _, k := range keys {
				fmt.Printf("%8d", k)
			}
			fmt.Println()
			for wb := 0; wb < timing.Buckets; wb++ {
				fmt.Printf("%-8d", keys[wb])
				for bb := 0; bb < timing.Buckets; bb++ {
					fmt.Printf("%8.1f", s[wb][bb])
				}
				fmt.Println()
			}
		}
	}
}
