// Command latmodel generates the RESET latency model from the crossbar
// circuit simulation and prints the data behind Figure 4b (latency versus
// wordline LRS content for near/far cells) and Figure 11 (the latency
// surface over write location for the all-'0's and all-'1's content
// extremes).
//
// Usage:
//
//	latmodel           # default 512x512 crossbar (Table 1)
//	latmodel -n 128    # smaller crossbar, faster
package main

import (
	"flag"
	"fmt"
	"os"

	"ladder"
	"ladder/internal/timing"
)

func main() {
	var (
		n   = flag.Int("n", 512, "crossbar dimension (divisible by 8)")
		spd = flag.Bool("spd", false, "also dump the 512-byte SPD ROM image of the WL table")
	)
	flag.Parse()

	params := ladder.DefaultCrossbarParams()
	params.N = *n
	fmt.Printf("crossbar %dx%d, RLRS=%.0f RHRS=%.0f nonlinearity=%.0f wire=%.1f ohm, Vw=%.1fV\n",
		params.N, params.N, params.RLRS, params.RHRS, params.Nonlinearity, params.RWire, params.VWrite)

	ts, err := ladder.NewTables(params)
	if err != nil {
		fmt.Fprintln(os.Stderr, "latmodel:", err)
		os.Exit(1)
	}
	gran := params.N / timing.Buckets
	fmt.Printf("calibrated model: t = %.3g * exp(-%.3f * Vd) ns, clamped to [%d, %d] ns\n\n",
		ts.Model.C, ts.Model.K, timing.MinLatencyNs, timing.MaxLatencyNs)

	// Figure 4b: latency vs wordline LRS percentage for a near cell
	// (close to both drivers) and a far cell (opposite corner).
	fmt.Println("Figure 4b — RESET latency (ns) vs WL LRS percentage")
	fmt.Printf("%-12s %12s %12s\n", "WL LRS %", "near cell", "far cell")
	near := ts.ContentCurve(0, 0)
	far := ts.ContentCurve(params.N-1, params.N-1)
	for cb := 0; cb < timing.Buckets; cb++ {
		pct := float64((cb+1)*gran) / float64(params.N) * 100
		fmt.Printf("%-12.0f %12.1f %12.1f\n", pct, near[cb], far[cb])
	}

	if *spd {
		rom := ts.WL.EncodeSPD()
		fmt.Printf("\nSPD ROM image (%d bytes; Section 6.3 — programmed by the module vendor):\n", len(rom))
		for i := 0; i < len(rom); i += 32 {
			fmt.Printf("  %03x:", i)
			for j := 0; j < 32; j++ {
				fmt.Printf(" %02x", rom[i+j])
			}
			fmt.Println()
		}
	}

	// Figure 11: latency surfaces at the two content extremes.
	for _, cfg := range []struct {
		name   string
		bucket int
	}{
		{"all '0's (C_lrs bucket 0)", 0},
		{"all '1's (C_lrs bucket 7)", timing.Buckets - 1},
	} {
		fmt.Printf("\nFigure 11 — RESET latency (ns) surface, WL pattern %s\n", cfg.name)
		fmt.Printf("%-10s", "WL \\ BL")
		for bb := 0; bb < timing.Buckets; bb++ {
			fmt.Printf("%8d", (bb+1)*gran-1)
		}
		fmt.Println()
		s := ts.Surface(cfg.bucket)
		for wb := 0; wb < timing.Buckets; wb++ {
			fmt.Printf("%-10d", (wb+1)*gran-1)
			for bb := 0; bb < timing.Buckets; bb++ {
				fmt.Printf("%8.1f", s[wb][bb])
			}
			fmt.Println()
		}
	}
}
