package ladder_test

import (
	"testing"

	"ladder"
	"ladder/internal/circuit"
	"ladder/internal/reram"
	"ladder/internal/timing"
)

func fastConfig(t *testing.T, workload, scheme string) ladder.Config {
	t.Helper()
	p := circuit.DefaultParams()
	p.N = 128
	ts, err := timing.NewTableSet(p)
	if err != nil {
		t.Fatal(err)
	}
	return ladder.Config{
		Workload:     workload,
		Scheme:       scheme,
		InstrPerCore: 20_000,
		Seed:         1,
		Tables:       ts,
		Geom: reram.Geometry{
			Channels: 2, RanksPerChannel: 2, BanksPerRank: 8,
			MatGroupsPerBank: 64, MatRows: 128,
		},
	}
}

func TestPublicRun(t *testing.T) {
	res, err := ladder.Run(fastConfig(t, "astar", ladder.SchemeHybrid))
	if err != nil {
		t.Fatal(err)
	}
	if res.Scheme != ladder.SchemeHybrid || res.AvgIPC() <= 0 {
		t.Fatalf("unexpected result %+v", res)
	}
}

func TestPublicLists(t *testing.T) {
	if got := len(ladder.Workloads()); got != 16 {
		t.Fatalf("workloads = %d, want 16", got)
	}
	if got := len(ladder.SingleWorkloads()); got != 8 {
		t.Fatalf("single workloads = %d, want 8", got)
	}
	if got := len(ladder.SchemeNames()); got != 9 {
		t.Fatalf("schemes = %d, want 9", got)
	}
	if got := len(ladder.FigureSchemes()); got != 7 {
		t.Fatalf("figure schemes = %d, want 7", got)
	}
}

func TestPublicOverheads(t *testing.T) {
	basic, est, hybrid := ladder.MetadataOverheads()
	if !(hybrid < est && est < basic) {
		t.Fatalf("overhead ordering broken: %v %v %v", basic, est, hybrid)
	}
	if mods := ladder.ControllerOverheads(); len(mods) != 3 {
		t.Fatalf("controller overheads = %d entries", len(mods))
	}
}

func TestPublicGeometryAndParams(t *testing.T) {
	if got := ladder.DefaultGeometry().CapacityBytes(); got != 16<<30 {
		t.Fatalf("capacity = %d", got)
	}
	p := ladder.DefaultCrossbarParams()
	if p.N != 512 || p.Nonlinearity != 200 {
		t.Fatalf("unexpected crossbar params %+v", p)
	}
}
